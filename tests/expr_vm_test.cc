// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Differential tests for the predicate bytecode VM (src/cep/pred_vm.h)
// against the tree interpreter (Expr::Eval), which remains the reference
// semantics. Three layers:
//
//  1. targeted unit tests — constant folding, load CSE, typed-opcode
//     fallback on mis-typed payloads, null comparison semantics, the
//     aggregate refusal path;
//  2. a seeded randomized fuzz: random schemas (mixed attribute types),
//     random expression trees over every operator and selector, random
//     events (nulls and type-mismatched payloads included) and Kleene
//     bindings — value, truthiness, AND accumulated cost units must agree
//     exactly (the units feed the cost model's Gamma-, so parity is a hard
//     contract, not an approximation);
//  3. engine-level differentials: the paper's Q1-Q4 replayed with
//     use_pred_vm on vs. off must produce byte-identical match sets and
//     identical stats including total_cost.
//
// The whole suite runs under ASan+UBSan in the debug-asan CI job.

#include "src/cep/pred_vm.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/cep/engine.h"
#include "src/cep/nfa.h"
#include "src/cep/pattern.h"
#include "src/common/rng.h"
#include "src/query/parser.h"
#include "src/workload/ds1.h"
#include "src/workload/ds2.h"
#include "src/workload/queries.h"
#include "tests/test_util.h"

namespace cepshed {
namespace {

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// Exact Value equality: same type, same payload (double compare is exact —
/// both evaluators must perform the identical float operations; NaN == NaN).
void ExpectSameValue(const Value& expected, const Value& actual,
                     const std::string& what) {
  ASSERT_EQ(expected.type(), actual.type()) << what;
  switch (expected.type()) {
    case ValueType::kInt:
      EXPECT_EQ(expected.AsInt(), actual.AsInt()) << what;
      break;
    case ValueType::kDouble: {
      const double e = expected.AsDouble();
      const double a = actual.AsDouble();
      if (std::isnan(e) || std::isnan(a)) {
        EXPECT_TRUE(std::isnan(e) && std::isnan(a)) << what;
      } else {
        EXPECT_EQ(e, a) << what;  // exact, not almost-equal
      }
      break;
    }
    case ValueType::kString:
      EXPECT_EQ(expected.AsString(), actual.AsString()) << what;
      break;
    case ValueType::kNull:
      break;
  }
}

/// Runs interpreter and VM over the same context and requires identical
/// value, truthiness, and cost units. Evaluates the program twice in the
/// same register epoch, so the second run exercises the cached-load path
/// (which must still charge the same units).
void ExpectParity(const Expr& expr, const PredVmModule& module, int prog,
                  const EvalContext& ctx, PredVmContext* vmc,
                  const std::string& what) {
  double ref_cost = 0.0;
  const Value ref = expr.Eval(ctx, &ref_cost);
  double ref_bool_cost = 0.0;
  const bool ref_bool = expr.EvalBool(ctx, &ref_bool_cost);

  vmc->Invalidate();
  for (int pass = 0; pass < 2; ++pass) {
    const std::string tag = what + (pass == 0 ? " [cold]" : " [cached]");
    double vm_cost = 0.0;
    const Value got = module.Eval(prog, ctx, vmc, &vm_cost);
    ExpectSameValue(ref, got, tag);
    EXPECT_EQ(ref_cost, vm_cost) << tag;  // exact: sums of small integers
    double vm_bool_cost = 0.0;
    EXPECT_EQ(ref_bool, module.EvalBool(prog, ctx, vmc, &vm_bool_cost)) << tag;
    EXPECT_EQ(ref_bool_cost, vm_bool_cost) << tag;
  }
}

// ---------------------------------------------------------------------------
// 1. Targeted unit tests (ABCD schema from test_util)
// ---------------------------------------------------------------------------

class PredVmTest : public ::testing::Test {
 protected:
  PredVmTest() : schema_(testing::MakeAbcdSchema()) {
    elements_ = {
        {"a", "A", 0, false, false, 1, 1},
        {"b", "B", 1, true, false, 1, 100},
        {"c", "C", 2, false, false, 1, 1},
    };
  }

  ExprPtr Resolved(ExprPtr e) {
    EXPECT_TRUE(e->Resolve(elements_, schema_).ok());
    return e;
  }

  Schema schema_;
  std::vector<PatternElement> elements_;
};

TEST_F(PredVmTest, ConstantPredicateFoldsToOneConstWithInterpreterCost) {
  using E = Expr;
  // (1 + 2) = 3  ->  one kConst carrying the interpreter's 2 units.
  ExprPtr e = Resolved(E::Compare(CmpOp::kEq,
                                  E::Binary(BinOp::kAdd, E::Literal(Value(int64_t{1})),
                                            E::Literal(Value(int64_t{2}))),
                                  E::Literal(Value(int64_t{3}))));
  PredVmBuilder builder(&schema_);
  const int prog = builder.Add(*e);
  ASSERT_GE(prog, 0);
  auto module = builder.Build();
  ASSERT_NE(module, nullptr);
  // Folded: the program is kConst + kHalt, no arithmetic left.
  EXPECT_NE(module->Disassemble(prog).find("const"), std::string::npos);
  PredVmContext vmc;
  vmc.Prepare(module->num_loads());
  EvalContext ctx;
  ExpectParity(*e, *module, prog, ctx, &vmc, "const fold");
}

TEST_F(PredVmTest, AttributeLoadsAreSharedAcrossPrograms) {
  using E = Expr;
  ExprPtr p1 = Resolved(E::Compare(CmpOp::kGt, E::Attr("a", RefSelector::kSingle, "V"),
                                   E::Literal(Value(int64_t{3}))));
  ExprPtr p2 = Resolved(E::Compare(CmpOp::kLt, E::Attr("a", RefSelector::kSingle, "V"),
                                   E::Literal(Value(int64_t{9}))));
  PredVmBuilder builder(&schema_);
  ASSERT_GE(builder.Add(*p1), 0);
  ASSERT_GE(builder.Add(*p2), 0);
  auto module = builder.Build();
  // One (elem, selector, attr) triple -> one shared register.
  EXPECT_EQ(module->num_loads(), 1u);
}

TEST_F(PredVmTest, AggregatePredicatesAreRefused) {
  ExprPtr e = Expr::Compare(CmpOp::kLe, Expr::Aggregate(AggKind::kAvg, "b", "V"),
                            Expr::Literal(Value(int64_t{5})));
  ASSERT_TRUE(e->Resolve(elements_, schema_).ok());
  PredVmBuilder builder(&schema_);
  EXPECT_EQ(builder.Add(*e), -1);
  // The builder remains usable for the compilable predicates of the query.
  ExprPtr ok = Resolved(Expr::Compare(CmpOp::kEq, Expr::Attr("a", RefSelector::kSingle, "ID"),
                                      Expr::Attr("c", RefSelector::kSingle, "ID")));
  EXPECT_GE(builder.Add(*ok), 0);
}

TEST_F(PredVmTest, TypedOpcodeFallsBackOnMistypedPayload) {
  using E = Expr;
  // ID is declared kInt, so the compiler specializes to int opcodes; feed a
  // double payload through the same program.
  ExprPtr e = Resolved(E::Compare(CmpOp::kEq, E::Attr("a", RefSelector::kSingle, "ID"),
                                  E::Literal(Value(int64_t{7}))));
  PredVmBuilder builder(&schema_);
  const int prog = builder.Add(*e);
  ASSERT_GE(prog, 0);
  auto module = builder.Build();
  PredVmContext vmc;
  vmc.Prepare(module->num_loads());

  std::vector<Value> attrs = {Value(7.0), Value()};  // double ID, null V
  auto ev = std::make_shared<Event>(0, 1, 0, std::move(attrs));
  const Event* store[] = {ev.get()};
  EvalContext ctx;
  ctx.num_elements = 3;
  ctx.bindings[0] = {store, 1};
  ExpectParity(*e, *module, prog, ctx, &vmc, "mistyped payload");
}

TEST_F(PredVmTest, NullComparisonSemanticsMatchInterpreter) {
  using E = Expr;
  PredVmBuilder builder(&schema_);
  // V of an unbound element is null.
  auto null_ref = [&] { return E::Attr("c", RefSelector::kSingle, "V"); };
  std::vector<ExprPtr> exprs;
  exprs.push_back(Resolved(E::Compare(CmpOp::kEq, null_ref(), E::Literal(Value(int64_t{1})))));
  exprs.push_back(Resolved(E::Compare(CmpOp::kNe, null_ref(), E::Literal(Value(int64_t{1})))));
  exprs.push_back(Resolved(E::Compare(CmpOp::kLt, null_ref(), E::Literal(Value(int64_t{1})))));
  exprs.push_back(Resolved(E::Binary(BinOp::kAdd, null_ref(), E::Literal(Value(int64_t{1})))));
  exprs.push_back(Resolved(E::Func(FuncKind::kSqrt, null_ref())));
  std::vector<int> progs;
  for (const ExprPtr& e : exprs) progs.push_back(builder.Add(*e));
  auto module = builder.Build();
  PredVmContext vmc;
  vmc.Prepare(module->num_loads());
  EvalContext ctx;
  ctx.num_elements = 3;  // nothing bound: every load is null
  for (size_t i = 0; i < exprs.size(); ++i) {
    ASSERT_GE(progs[i], 0);
    ExpectParity(*exprs[i], *module, progs[i], ctx, &vmc,
                 "null semantics #" + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// 2. Seeded randomized fuzz
// ---------------------------------------------------------------------------

/// Generates random expression trees over a random mixed-type schema, and
/// random contexts (bindings, current event, negation witness) with null
/// and type-mismatched attribute payloads.
class VmFuzzer {
 public:
  explicit VmFuzzer(uint64_t seed) : rng_(seed) {
    (void)schema_.AddEventType("A");
    (void)schema_.AddEventType("B");
    (void)schema_.AddEventType("C");
    const int num_attrs = static_cast<int>(rng_.UniformInt(4, 8));
    for (int i = 0; i < num_attrs; ++i) {
      static const ValueType kTypes[] = {ValueType::kInt, ValueType::kDouble,
                                         ValueType::kString};
      attr_types_.push_back(kTypes[rng_.UniformInt(0, 2)]);
      (void)schema_.AddAttribute("f" + std::to_string(i), attr_types_.back());
    }
    elements_ = {
        {"a", "A", 0, false, false, 1, 1},
        {"b", "B", 1, true, false, 1, 100},  // the Kleene element
        {"c", "C", 2, false, false, 1, 1},
    };
  }

  const Schema& schema() const { return schema_; }

  /// A resolved random expression, or null when the draw was structurally
  /// invalid (rejected by Resolve).
  ExprPtr RandomResolvedExpr(int max_depth) {
    ExprPtr e = RandomExpr(max_depth);
    if (!e->Resolve(elements_, schema_).ok()) return nullptr;
    return e;
  }

  /// Fills `ctx` with random bindings. `owners` keeps the events alive and
  /// `stores` the per-element span storage; both must outlive the context.
  void RandomContext(EvalContext* ctx, std::vector<EventPtr>* owners,
                     std::vector<std::vector<const Event*>>* stores) {
    owners->clear();
    stores->assign(3, {});
    ctx->num_elements = 3;
    for (int e = 0; e < 3; ++e) ctx->bindings[e] = ElemBinding{};
    for (int e = 0; e < 3; ++e) {
      const int max_count = e == 1 ? 4 : 1;
      const int count = static_cast<int>(rng_.UniformInt(0, max_count));
      for (int i = 0; i < count; ++i) {
        owners->push_back(RandomEvent(e));
        (*stores)[static_cast<size_t>(e)].push_back(owners->back().get());
      }
      if (count > 0) {
        ctx->bindings[e] = ElemBinding{(*stores)[static_cast<size_t>(e)].data(),
                                       static_cast<uint32_t>(count)};
      }
    }
    ctx->current = nullptr;
    ctx->current_elem = -1;
    ctx->negated = nullptr;
    ctx->negated_elem = -1;
    if (rng_.Bernoulli(0.6)) {
      ctx->current_elem = static_cast<int>(rng_.UniformInt(0, 2));
      owners->push_back(RandomEvent(ctx->current_elem));
      ctx->current = owners->back().get();
    }
    if (rng_.Bernoulli(0.2)) {
      // A stand-in witness on some element (the veto path substitutes it
      // for the negated component's binding).
      ctx->negated_elem = static_cast<int>(rng_.UniformInt(0, 2));
      owners->push_back(RandomEvent(ctx->negated_elem));
      ctx->negated = owners->back().get();
    }
  }

 private:
  /// Magnitudes are kept tiny so that even adversarial mul towers stay far
  /// from int64 overflow (signed overflow would be UB in both evaluators).
  Value RandomValueOfType(ValueType t) {
    switch (t) {
      case ValueType::kInt:
        return Value(rng_.UniformInt(-4, 4));
      case ValueType::kDouble:
        return Value(rng_.UniformDouble(-4.0, 4.0));
      case ValueType::kString: {
        static const char* const kStrings[] = {"", "x", "y", "zz"};
        return Value(std::string(kStrings[rng_.UniformInt(0, 3)]));
      }
      case ValueType::kNull:
        break;
    }
    return Value();
  }

  Value RandomLiteral() {
    static const ValueType kTypes[] = {ValueType::kInt, ValueType::kDouble,
                                       ValueType::kString, ValueType::kNull};
    return RandomValueOfType(kTypes[rng_.Categorical({5, 4, 2, 1})]);
  }

  EventPtr RandomEvent(int elem) {
    std::vector<Value> attrs;
    for (ValueType t : attr_types_) {
      if (rng_.Bernoulli(0.15)) {
        attrs.emplace_back();  // null payload
      } else if (rng_.Bernoulli(0.10)) {
        // Payload of a type other than the schema-declared one: the typed
        // opcodes' guards must catch this and fall back.
        static const ValueType kTypes[] = {ValueType::kInt, ValueType::kDouble,
                                           ValueType::kString};
        attrs.push_back(RandomValueOfType(kTypes[rng_.UniformInt(0, 2)]));
      } else {
        attrs.push_back(RandomValueOfType(t));
      }
    }
    const int64_t ts = ++ts_;
    return std::make_shared<Event>(elem, ts, ts, std::move(attrs));
  }

  ExprPtr RandomAttrRef() {
    const int elem = static_cast<int>(rng_.UniformInt(0, 2));
    static const char* const kVars[] = {"a", "b", "c"};
    RefSelector sel = RefSelector::kSingle;
    if (elem == 1) {
      static const RefSelector kSels[] = {RefSelector::kSingle, RefSelector::kIterPrev,
                                          RefSelector::kIterCurr, RefSelector::kFirst,
                                          RefSelector::kLast};
      sel = kSels[rng_.UniformInt(0, 4)];
    }
    const std::string attr = "f" + std::to_string(rng_.UniformInt(
                                       0, static_cast<int64_t>(attr_types_.size()) - 1));
    return Expr::Attr(kVars[elem], sel, attr);
  }

  ExprPtr RandomExpr(int max_depth) {
    if (max_depth <= 0 || rng_.Bernoulli(0.25)) {
      return rng_.Bernoulli(0.55) ? RandomAttrRef() : Expr::Literal(RandomLiteral());
    }
    switch (rng_.Categorical({4, 5, 2, 2, 1.5, 1.5, 1.5, 1.5})) {
      case 0:
        return Expr::Binary(static_cast<BinOp>(rng_.UniformInt(0, 4)),
                            RandomExpr(max_depth - 1), RandomExpr(max_depth - 1));
      case 1:
        return Expr::Compare(static_cast<CmpOp>(rng_.UniformInt(0, 5)),
                             RandomExpr(max_depth - 1), RandomExpr(max_depth - 1));
      case 2:
      case 3: {
        std::vector<ExprPtr> kids;
        const int n = static_cast<int>(rng_.UniformInt(2, 3));
        for (int i = 0; i < n; ++i) kids.push_back(RandomExpr(max_depth - 1));
        return rng_.Bernoulli(0.5) ? Expr::And(std::move(kids)) : Expr::Or(std::move(kids));
      }
      case 4:
        return Expr::Not(RandomExpr(max_depth - 1));
      case 5:
        return Expr::Func(rng_.Bernoulli(0.5) ? FuncKind::kSqrt : FuncKind::kAbs,
                          RandomExpr(max_depth - 1));
      case 6: {
        std::vector<ExprPtr> kids;
        const int n = static_cast<int>(rng_.UniformInt(2, 3));
        for (int i = 0; i < n; ++i) kids.push_back(RandomExpr(max_depth - 1));
        return Expr::AvgN(std::move(kids));
      }
      default: {
        std::vector<Value> set;
        const int n = static_cast<int>(rng_.UniformInt(1, 4));
        for (int i = 0; i < n; ++i) set.push_back(RandomLiteral());
        return Expr::InSet(RandomExpr(max_depth - 1), std::move(set));
      }
    }
  }

  Rng rng_;
  Schema schema_;
  std::vector<ValueType> attr_types_;
  std::vector<PatternElement> elements_;
  Timestamp ts_ = 0;
};

TEST(PredVmFuzzTest, RandomExpressionsAgreeWithInterpreterExactly) {
  constexpr uint64_t kSeeds[] = {1, 2026, 0xfeedbeef};
  constexpr int kExprsPerSeed = 120;
  constexpr int kContextsPerExpr = 12;
  int evaluated = 0;
  for (const uint64_t seed : kSeeds) {
    VmFuzzer fuzz(seed);
    for (int i = 0; i < kExprsPerSeed; ++i) {
      ExprPtr e = fuzz.RandomResolvedExpr(/*max_depth=*/5);
      if (e == nullptr) continue;
      PredVmBuilder builder(&fuzz.schema());
      const int prog = builder.Add(*e);
      ASSERT_GE(prog, 0) << e->ToString();  // no aggregates are generated
      auto module = builder.Build();
      ASSERT_NE(module, nullptr);
      PredVmContext vmc;
      vmc.Prepare(module->num_loads());
      EvalContext ctx;
      std::vector<EventPtr> owners;
      std::vector<std::vector<const Event*>> stores;
      for (int k = 0; k < kContextsPerExpr; ++k) {
        fuzz.RandomContext(&ctx, &owners, &stores);
        ExpectParity(*e, *module, prog, ctx, &vmc,
                     "seed=" + std::to_string(seed) + " expr=" + e->ToString());
        ++evaluated;
        if (::testing::Test::HasFailure()) return;  // first divergence only
      }
    }
  }
  // The rejection sampling must not have starved the fuzz.
  EXPECT_GT(evaluated, 1000);
}

// ---------------------------------------------------------------------------
// 3. Engine-level differentials: VM on vs. off
// ---------------------------------------------------------------------------

struct CanonMatch {
  Timestamp ts;
  std::string key;
  bool operator==(const CanonMatch& o) const = default;
  bool operator<(const CanonMatch& o) const {
    if (ts != o.ts) return ts < o.ts;
    return key < o.key;
  }
};

std::vector<CanonMatch> Canon(const std::vector<Match>& matches) {
  std::vector<CanonMatch> out;
  out.reserve(matches.size());
  for (const Match& m : matches) out.push_back({m.detected_at, m.Key()});
  std::sort(out.begin(), out.end());
  return out;
}

void RunEngineDifferential(const std::string& label, Query query, const Schema& schema,
                           const EventStream& stream, bool index_expression_keys = false) {
  SCOPED_TRACE(label);
  EngineStats stats[2];
  std::vector<Match> matches[2];
  double total_cost[2] = {0.0, 0.0};
  for (int use_vm = 0; use_vm < 2; ++use_vm) {
    auto nfa = Nfa::Compile(query, &schema);
    ASSERT_TRUE(nfa.ok()) << nfa.status().ToString();
    EngineOptions options;
    options.use_pred_vm = use_vm == 1;
    options.index_expression_keys = index_expression_keys;
    Engine engine(*nfa, options);
    for (size_t i = 0; i < stream.size(); ++i) {
      total_cost[use_vm] += engine.Process(stream[i], &matches[use_vm]);
    }
    stats[use_vm] = engine.stats();
  }
  // Byte-identical output and *exactly* equal accounting.
  EXPECT_EQ(Canon(matches[0]), Canon(matches[1]));
  EXPECT_EQ(stats[0].matches_emitted, stats[1].matches_emitted);
  EXPECT_EQ(stats[0].matches_vetoed, stats[1].matches_vetoed);
  EXPECT_EQ(stats[0].pms_created, stats[1].pms_created);
  EXPECT_EQ(stats[0].predicate_evals, stats[1].predicate_evals);
  EXPECT_EQ(stats[0].candidates_scanned, stats[1].candidates_scanned);
  EXPECT_EQ(stats[0].index_probes, stats[1].index_probes);
  EXPECT_EQ(stats[0].total_cost, stats[1].total_cost);
  EXPECT_EQ(total_cost[0], total_cost[1]);
  EXPECT_GT(stats[0].predicate_evals, 0u);
}

class PredVmEngineTest : public ::testing::Test {
 protected:
  PredVmEngineTest()
      : ds1_schema_(MakeDs1Schema()), ds2_schema_(MakeDs2Schema()) {
    Ds1Options opts1;
    opts1.num_events = 12000;
    ds1_ = std::make_unique<EventStream>(GenerateDs1(ds1_schema_, opts1));
    Ds2Options opts2;
    opts2.num_events = 12000;
    ds2_ = std::make_unique<EventStream>(GenerateDs2(ds2_schema_, opts2));
  }

  Schema ds1_schema_;
  Schema ds2_schema_;
  std::unique_ptr<EventStream> ds1_;
  std::unique_ptr<EventStream> ds2_;
};

TEST_F(PredVmEngineTest, Q1MatchesAndCostsAreIdentical) {
  auto q = queries::Q1();
  ASSERT_TRUE(q.ok());
  RunEngineDifferential("Q1", *q, ds1_schema_, *ds1_);
}

TEST_F(PredVmEngineTest, Q1WithExpressionKeysExercisesVmBuildKeys) {
  auto q = queries::Q1();
  ASSERT_TRUE(q.ok());
  RunEngineDifferential("Q1+exprkeys", *q, ds1_schema_, *ds1_,
                        /*index_expression_keys=*/true);
}

TEST_F(PredVmEngineTest, Q2KleeneIterationPredicatesAreIdentical) {
  auto q = queries::Q2(/*kleene_reps=*/3);
  ASSERT_TRUE(q.ok());
  RunEngineDifferential("Q2", *q, ds1_schema_, *ds1_);
}

TEST_F(PredVmEngineTest, Q3AggregateFallbackCoexistsWithCompiledPredicates) {
  // Q3's AVG-over-binding conjunct keeps the interpreter; everything else
  // (div, sqrt, double comparisons) runs compiled. Output must not care.
  auto q = queries::Q3();
  ASSERT_TRUE(q.ok());
  RunEngineDifferential("Q3", *q, ds2_schema_, *ds2_);
}

TEST_F(PredVmEngineTest, Q4NegationWitnessEvaluationIsIdentical) {
  auto q = queries::Q4();
  ASSERT_TRUE(q.ok());
  RunEngineDifferential("Q4", *q, ds1_schema_, *ds1_);
}

TEST_F(PredVmEngineTest, MembershipDisjunctionAndSqrtQueryIsIdentical) {
  auto q = ParseQuery(
      "PATTERN SEQ(A a, B b, C c) "
      "WHERE a.ID = b.ID AND b.ID = c.ID "
      "AND a.V IN {1, 2, 3, 5, 8} "
      "AND (SQRT(b.V) < 3 OR NOT c.V % 2 = 0 OR b.V - a.V IN {0, -1}) "
      "WITHIN 8ms");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  RunEngineDifferential("inset-or-sqrt", *q, ds1_schema_, *ds1_);
}

}  // namespace
}  // namespace cepshed
