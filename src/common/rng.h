// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Deterministic random number generation. All workload generators and
// randomized strategies draw from Rng so that experiments are reproducible
// from a seed.

#ifndef CEPSHED_COMMON_RNG_H_
#define CEPSHED_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cepshed {

/// \brief A seedable pseudo-random generator (xoshiro256**) with the
/// distribution helpers the workloads need.
///
/// xoshiro256** is used instead of std::mt19937_64 because its output is
/// stable across standard library implementations, keeping generated
/// datasets bit-identical everywhere.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed (SplitMix64 expansion).
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit draw.
  uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Standard normal draw (Box-Muller).
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential draw with the given rate (mean 1/rate).
  double Exponential(double rate);

  /// Poisson draw with the given mean (Knuth for small, normal approx for
  /// large means).
  int64_t Poisson(double mean);

  /// Draws an index in [0, weights.size()) proportionally to weights.
  /// Requires a non-empty vector with non-negative entries and positive sum.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffles the given indices in place.
  void Shuffle(std::vector<size_t>* indices);

  /// Derives an independent child generator (for parallel substreams).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace cepshed

#endif  // CEPSHED_COMMON_RNG_H_
