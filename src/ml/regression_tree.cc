// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/ml/regression_tree.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

namespace cepshed {

Status RegressionTree::Fit(const std::vector<std::vector<double>>& x,
                           const std::vector<std::vector<double>>& y,
                           const Options& options) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("regression tree: empty or mismatched data");
  }
  num_features_ = x[0].size();
  num_targets_ = y[0].size();
  if (num_targets_ == 0) {
    return Status::InvalidArgument("regression tree: no targets");
  }
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i].size() != num_features_ || y[i].size() != num_targets_) {
      return Status::InvalidArgument("regression tree: ragged data");
    }
  }

  // Normalize targets to unit variance so each counts equally.
  std::vector<double> mean(num_targets_, 0.0);
  std::vector<double> scale(num_targets_, 1.0);
  for (const auto& row : y) {
    for (size_t t = 0; t < num_targets_; ++t) mean[t] += row[t];
  }
  for (auto& m : mean) m /= static_cast<double>(y.size());
  for (const auto& row : y) {
    for (size_t t = 0; t < num_targets_; ++t) {
      const double d = row[t] - mean[t];
      scale[t] += d * d;
    }
  }
  for (auto& s : scale) s = std::sqrt(s / static_cast<double>(y.size()));
  std::vector<std::vector<double>> y_norm(y.size(), std::vector<double>(num_targets_));
  for (size_t i = 0; i < y.size(); ++i) {
    for (size_t t = 0; t < num_targets_; ++t) {
      y_norm[i][t] = scale[t] > 0.0 ? y[i][t] / scale[t] : 0.0;
    }
  }

  nodes_.clear();
  leaves_.clear();
  training_leaves_.assign(x.size(), 0);
  std::vector<uint32_t> indices(x.size());
  std::iota(indices.begin(), indices.end(), 0u);
  Build(x, y_norm, indices, 0, indices.size(), 0, options, y);
  return Status::OK();
}

int RegressionTree::Build(const std::vector<std::vector<double>>& x,
                          const std::vector<std::vector<double>>& y_norm,
                          std::vector<uint32_t>& indices, size_t begin, size_t end,
                          int depth, const Options& options,
                          const std::vector<std::vector<double>>& y_raw) {
  const size_t n = end - begin;
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});

  // Node impurity: total SSE over normalized targets.
  std::vector<double> sum(num_targets_, 0.0);
  std::vector<double> sum_sq(num_targets_, 0.0);
  for (size_t i = begin; i < end; ++i) {
    const auto& row = y_norm[indices[i]];
    for (size_t t = 0; t < num_targets_; ++t) {
      sum[t] += row[t];
      sum_sq[t] += row[t] * row[t];
    }
  }
  double node_sse = 0.0;
  for (size_t t = 0; t < num_targets_; ++t) {
    node_sse += sum_sq[t] - sum[t] * sum[t] / static_cast<double>(n);
  }

  auto make_leaf = [&]() {
    Leaf leaf;
    leaf.count = n;
    leaf.mean.assign(num_targets_, 0.0);
    for (size_t i = begin; i < end; ++i) {
      const auto& row = y_raw[indices[i]];
      for (size_t t = 0; t < num_targets_; ++t) leaf.mean[t] += row[t];
    }
    for (auto& m : leaf.mean) m /= static_cast<double>(n);
    const int leaf_index = static_cast<int>(leaves_.size());
    for (size_t i = begin; i < end; ++i) {
      training_leaves_[indices[i]] = leaf_index;
    }
    nodes_[static_cast<size_t>(node_id)].leaf_index = leaf_index;
    leaves_.push_back(std::move(leaf));
    return node_id;
  };

  if (depth >= options.max_depth ||
      n < 2 * static_cast<size_t>(options.min_samples_leaf) || node_sse <= 1e-12) {
    return make_leaf();
  }

  // Best split by SSE reduction.
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_sse = node_sse * (1.0 - options.min_gain);
  std::vector<std::pair<double, uint32_t>> column(n);
  std::vector<double> left_sum(num_targets_);
  std::vector<double> left_sq(num_targets_);
  for (size_t f = 0; f < num_features_; ++f) {
    for (size_t i = 0; i < n; ++i) {
      const uint32_t idx = indices[begin + i];
      column[i] = {x[idx][f], idx};
    }
    std::sort(column.begin(), column.end());
    std::fill(left_sum.begin(), left_sum.end(), 0.0);
    std::fill(left_sq.begin(), left_sq.end(), 0.0);
    for (size_t i = 0; i + 1 < n; ++i) {
      const auto& row = y_norm[column[i].second];
      for (size_t t = 0; t < num_targets_; ++t) {
        left_sum[t] += row[t];
        left_sq[t] += row[t] * row[t];
      }
      if (column[i].first == column[i + 1].first) continue;
      const size_t nl = i + 1;
      const size_t nr = n - nl;
      if (nl < static_cast<size_t>(options.min_samples_leaf) ||
          nr < static_cast<size_t>(options.min_samples_leaf)) {
        continue;
      }
      double sse = 0.0;
      for (size_t t = 0; t < num_targets_; ++t) {
        const double rl = left_sq[t] - left_sum[t] * left_sum[t] / static_cast<double>(nl);
        const double rs = sum[t] - left_sum[t];
        const double rq = sum_sq[t] - left_sq[t];
        const double rr = rq - rs * rs / static_cast<double>(nr);
        sse += rl + rr;
      }
      if (sse < best_sse) {
        best_sse = sse;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (column[i].first + column[i + 1].first);
      }
    }
  }
  if (best_feature < 0) return make_leaf();

  auto mid_it = std::partition(indices.begin() + static_cast<ptrdiff_t>(begin),
                               indices.begin() + static_cast<ptrdiff_t>(end),
                               [&](uint32_t idx) {
                                 return x[idx][static_cast<size_t>(best_feature)] <=
                                        best_threshold;
                               });
  const size_t mid = static_cast<size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return make_leaf();

  nodes_[static_cast<size_t>(node_id)].feature = best_feature;
  nodes_[static_cast<size_t>(node_id)].threshold = best_threshold;
  const int left = Build(x, y_norm, indices, begin, mid, depth + 1, options, y_raw);
  nodes_[static_cast<size_t>(node_id)].left = left;
  const int right = Build(x, y_norm, indices, mid, end, depth + 1, options, y_raw);
  nodes_[static_cast<size_t>(node_id)].right = right;
  return node_id;
}

int RegressionTree::PredictLeaf(const double* x, size_t n) const {
  if (nodes_.empty()) return 0;
  int node = 0;
  while (nodes_[static_cast<size_t>(node)].feature >= 0) {
    const Node& nd = nodes_[static_cast<size_t>(node)];
    if (static_cast<size_t>(nd.feature) >= n) break;
    node = x[static_cast<size_t>(nd.feature)] <= nd.threshold ? nd.left : nd.right;
  }
  const int leaf = nodes_[static_cast<size_t>(node)].leaf_index;
  return leaf >= 0 ? leaf : 0;
}

int RegressionTree::Depth() const {
  if (nodes_.empty()) return 0;
  std::function<int(int)> depth_of = [&](int node_id) -> int {
    const Node& node = nodes_[static_cast<size_t>(node_id)];
    if (node.feature < 0) return 1;
    return 1 + std::max(depth_of(node.left), depth_of(node.right));
  };
  return depth_of(0);
}

}  // namespace cepshed
