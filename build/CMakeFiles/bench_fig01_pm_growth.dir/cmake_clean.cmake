file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_pm_growth.dir/bench/bench_fig01_pm_growth.cpp.o"
  "CMakeFiles/bench_fig01_pm_growth.dir/bench/bench_fig01_pm_growth.cpp.o.d"
  "bench/bench_fig01_pm_growth"
  "bench/bench_fig01_pm_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_pm_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
