// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Unit tests for the shedding framework: offline estimation, cost model,
// shedding-set selection, baselines, and the hybrid strategy.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/obs/metrics.h"
#include "src/runtime/experiment.h"
#include "src/shed/baselines.h"
#include "src/shed/pspice.h"
#include "src/shed/cost_model.h"
#include "src/shed/hybrid.h"
#include "src/shed/offline_estimator.h"
#include "src/shed/shedding_set.h"
#include "src/workload/ds1.h"
#include "src/workload/queries.h"

namespace cepshed {
namespace {

class ShedTest : public ::testing::Test {
 protected:
  ShedTest() : schema_(MakeDs1Schema()) {}

  EventStream MakeStream(uint64_t seed, size_t n = 8000) {
    Ds1Options opts;
    opts.num_events = n;
    opts.seed = seed;
    return GenerateDs1(schema_, opts);
  }

  std::shared_ptr<const Nfa> CompileQ1() {
    auto nfa = Nfa::Compile(*queries::Q1(), &schema_);
    EXPECT_TRUE(nfa.ok());
    return *nfa;
  }

  Schema schema_;
};

TEST_F(ShedTest, OfflineEstimatorProducesConsistentStats) {
  auto nfa = CompileQ1();
  auto stats = EstimateOffline(nfa, MakeStream(21), 4, true);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats->records.size(), 0u);
  EXPECT_GT(stats->num_matches, 0u);
  EXPECT_EQ(stats->num_slices, 4);

  // Type utilities are probabilities; D events never participate in Q1.
  for (double u : stats->type_utility) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
  EXPECT_DOUBLE_EQ(stats->type_utility[static_cast<size_t>(schema_.EventTypeId("D"))],
                   0.0);
  EXPECT_GT(stats->type_utility[static_cast<size_t>(schema_.EventTypeId("A"))], 0.0);

  // Type shares sum to ~1.
  double share = 0.0;
  for (double s : stats->type_share) share += s;
  EXPECT_NEAR(share, 1.0, 1e-9);

  // State completion probabilities in [0, 1].
  for (double c : stats->state_completion) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }

  // Total contribution at the last positive state equals the number of
  // matches (each match credits exactly its direct state-2 ancestor once).
  double state2_contrib = 0.0;
  for (const PmRecord& rec : stats->records) {
    if (rec.state != 2) continue;
    for (float c : rec.contrib_by_slice) state2_contrib += c;
  }
  EXPECT_DOUBLE_EQ(state2_contrib, static_cast<double>(stats->num_matches));
}

TEST_F(ShedTest, OfflineEstimatorChargesConsumptionToAncestors) {
  auto nfa = CompileQ1();
  auto stats = EstimateOffline(nfa, MakeStream(22), 4, true);
  ASSERT_TRUE(stats.ok());
  double state1_consum = 0.0;
  size_t state1_count = 0;
  for (const PmRecord& rec : stats->records) {
    if (rec.state != 1) continue;
    ++state1_count;
    for (float w : rec.consum_by_slice) state1_consum += w;
  }
  ASSERT_GT(state1_count, 0u);
  // Every state-1 match at least carries its own footprint.
  EXPECT_GT(state1_consum, static_cast<double>(state1_count));
}

TEST_F(ShedTest, CostModelLearnsWorthlessClass) {
  auto nfa = CompileQ1();
  auto stats = EstimateOffline(nfa, MakeStream(23, 20000), 4, true);
  ASSERT_TRUE(stats.ok());
  CostModelOptions opts;
  opts.fixed_k_per_state = {4, 8, 8};
  CostModel model(nfa, opts);
  Rng rng(1);
  ASSERT_TRUE(model.Train(*stats, &rng).ok());
  EXPECT_TRUE(model.trained());
  EXPECT_GT(model.train_seconds(), 0.0);

  // A state-2 partial match with a.V + b.V > 10 can never complete: its
  // class contribution estimate must be (near) zero. A match with
  // a.V + b.V = 4 is promising: clearly positive estimate.
  BindingArena arena;  // outlives the matches built below
  auto make_pm = [&](int64_t av, int64_t bv) {
    PartialMatch pm;
    pm.state = 2;
    pm.Append(&arena, std::make_shared<Event>(schema_.EventTypeId("A"), 0, 0,
                                              std::vector<Value>{Value(1), Value(av)}));
    pm.CloseSlot();
    pm.Append(&arena, std::make_shared<Event>(schema_.EventTypeId("B"), 1, 1,
                                              std::vector<Value>{Value(1), Value(bv)}));
    pm.CloseSlot();
    pm.start_ts = 0;
    pm.last_ts = 1;
    return pm;
  };
  const PartialMatch worthless = make_pm(9, 9);
  const PartialMatch promising = make_pm(2, 2);
  const int32_t w_cls = model.Classify(worthless);
  const int32_t p_cls = model.Classify(promising);
  EXPECT_LT(model.Contribution(2, w_cls, 0), 0.2);
  EXPECT_GT(model.Contribution(2, p_cls, 0), 0.5);
}

TEST_F(ShedTest, CostModelEstimatesDecayWithAgeSlice) {
  auto nfa = CompileQ1();
  auto stats = EstimateOffline(nfa, MakeStream(24, 15000), 4, true);
  ASSERT_TRUE(stats.ok());
  CostModel model(nfa, CostModelOptions{});
  Rng rng(2);
  ASSERT_TRUE(model.Train(*stats, &rng).ok());
  // Future consumption must be non-increasing in the age slice (suffix
  // sums), for every class of every state.
  for (int s = 0; s < model.num_states(); ++s) {
    for (int c = 0; c < model.NumClasses(s); ++c) {
      for (int sl = 0; sl + 1 < model.num_slices(); ++sl) {
        EXPECT_GE(model.Consumption(s, c, sl) + 1e-9, model.Consumption(s, c, sl + 1));
      }
    }
  }
}

TEST_F(ShedTest, CostModelResultStates) {
  auto nfa = CompileQ1();
  CostModel model(nfa, CostModelOptions{});
  // A -> new match at state 1; B -> extension to state 2; C completes (no
  // stored state); D is irrelevant.
  EXPECT_EQ(model.ResultStatesForType(schema_.EventTypeId("A")),
            (std::vector<int>{1}));
  EXPECT_EQ(model.ResultStatesForType(schema_.EventTypeId("B")),
            (std::vector<int>{2}));
  EXPECT_TRUE(model.ResultStatesForType(schema_.EventTypeId("C")).empty());
  EXPECT_TRUE(model.ResultStatesForType(schema_.EventTypeId("D")).empty());
}

TEST_F(ShedTest, SheddingSetCoversViolationAndPrefersWorthless) {
  auto nfa = CompileQ1();
  auto stats = EstimateOffline(nfa, MakeStream(25, 15000), 4, true);
  ASSERT_TRUE(stats.ok());
  CostModel model(nfa, CostModelOptions{});
  Rng rng(3);
  ASSERT_TRUE(model.Train(*stats, &rng).ok());

  Engine engine(nfa, EngineOptions{});
  engine.set_classifier([&](const PartialMatch& pm) { return model.Classify(pm); });
  const EventStream stream = MakeStream(26, 3000);
  std::vector<Match> out;
  for (const EventPtr& e : stream) engine.Process(e, &out);
  ASSERT_GT(engine.NumPartialMatches(), 100u);

  const Timestamp now = stream[stream.size() - 1]->timestamp();
  const auto set = SelectSheddingSet(&engine, model, 0.3, now, KnapsackMode::kDP);
  ASSERT_FALSE(set.empty());
  double covered = 0.0;
  for (const auto& item : set) covered += item.delta_minus;
  EXPECT_GT(covered, 0.3);

  // No violation -> nothing selected.
  EXPECT_TRUE(SelectSheddingSet(&engine, model, 0.0, now, KnapsackMode::kDP).empty());

  // Greedy also covers.
  const auto greedy = SelectSheddingSet(&engine, model, 0.3, now, KnapsackMode::kGreedy);
  double greedy_cov = 0.0;
  for (const auto& item : greedy) greedy_cov += item.delta_minus;
  EXPECT_GT(greedy_cov, 0.3);
}

TEST_F(ShedTest, FixedRatioRandomInputDropsExpectedFraction) {
  RandomInputShedder shedder(0.3, /*seed=*/77);
  Schema schema = MakeDs1Schema();
  const EventStream stream = MakeStream(27, 10000);
  size_t dropped = 0;
  for (const EventPtr& e : stream) {
    if (shedder.FilterEvent(*e)) ++dropped;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / 10000.0, 0.3, 0.03);
}

TEST_F(ShedTest, FixedRatioSelectivityInputDropsUselessTypesFirst) {
  auto nfa = CompileQ1();
  auto stats = EstimateOffline(nfa, MakeStream(28), 4, true);
  ASSERT_TRUE(stats.ok());
  // D has zero utility and ~25% share: at a 20% target only D is dropped.
  SelectivityInputShedder shedder(*stats, 0.2, /*seed=*/5);
  const EventStream stream = MakeStream(29, 8000);
  size_t dropped_d = 0;
  size_t dropped_other = 0;
  for (const EventPtr& e : stream) {
    if (shedder.FilterEvent(*e)) {
      if (e->type() == schema_.EventTypeId("D")) {
        ++dropped_d;
      } else {
        ++dropped_other;
      }
    }
  }
  EXPECT_GT(dropped_d, 1000u);
  EXPECT_EQ(dropped_other, 0u);
}

TEST_F(ShedTest, FixedRatioStateSheddersRemoveRequestedShare) {
  auto nfa = CompileQ1();
  Engine engine(nfa, EngineOptions{});
  RandomStateShedder shedder(FixedRatioMode{0.5, /*period=*/1000000}, 9);
  shedder.Bind(&engine);
  const EventStream stream = MakeStream(30, 2000);
  std::vector<Match> out;
  for (const EventPtr& e : stream) engine.Process(e, &out);
  const size_t before = engine.NumPartialMatches();
  ASSERT_GT(before, 200u);
  // Trigger one periodic shed manually via the fraction helper path.
  RandomStateShedder once(FixedRatioMode{0.5, /*period=*/1}, 10);
  once.Bind(&engine);
  once.AfterEvent(0, 0.0);
  const size_t after = engine.NumPartialMatches();
  EXPECT_NEAR(static_cast<double>(after) / static_cast<double>(before), 0.5, 0.1);
}

TEST_F(ShedTest, UtilityThresholdCalibration) {
  auto nfa = CompileQ1();
  auto stats = EstimateOffline(nfa, MakeStream(31, 15000), 4, true);
  ASSERT_TRUE(stats.ok());
  CostModel model(nfa, CostModelOptions{});
  Rng rng(4);
  ASSERT_TRUE(model.Train(*stats, &rng).ok());

  const EventStream train = MakeStream(31, 15000);
  for (double f : {0.1, 0.3, 0.5}) {
    const auto [thr, tie] = ComputeUtilityThreshold(model, train, f);
    HybridFixedInputShedder shedder(&model, thr, tie, 11);
    size_t dropped = 0;
    for (const EventPtr& e : train) {
      if (shedder.FilterEvent(*e)) ++dropped;
    }
    EXPECT_NEAR(static_cast<double>(dropped) / static_cast<double>(train.size()), f,
                0.05)
        << "fraction " << f;
  }
}

TEST_F(ShedTest, StateShedFractionFloorsAtTinyPopulations) {
  auto nfa = CompileQ1();
  auto stats = EstimateOffline(nfa, MakeStream(32), 4, true);
  ASSERT_TRUE(stats.ok());
  PspiceModel pspice;
  ASSERT_TRUE(pspice.Train(nfa, *stats).ok());

  // floor(fraction * alive): rounding instead of flooring would kill the
  // only live match at alive=1, fraction=0.9 — the regression this pins.
  struct Case {
    size_t alive;
    double fraction;
    uint64_t expected;
  };
  for (const Case& c : {Case{1, 0.9, 0}, Case{2, 0.6, 1}, Case{3, 0.5, 1}}) {
    for (const bool use_pspice : {false, true}) {
      Engine engine(nfa, EngineOptions{});
      std::vector<Match> out;
      for (size_t i = 0; i < c.alive; ++i) {
        // Each A event with a fresh ID opens one partial match.
        engine.Process(std::make_shared<Event>(
                           schema_.EventTypeId("A"), i, static_cast<Timestamp>(i),
                           std::vector<Value>{Value(static_cast<int64_t>(i) + 1),
                                              Value(3)}),
                       &out);
      }
      ASSERT_EQ(engine.NumPartialMatches(), c.alive);
      std::unique_ptr<Shedder> shedder;
      if (use_pspice) {
        shedder = std::make_unique<PspiceShedder>(pspice, FixedRatioMode{c.fraction, 1});
      } else {
        shedder = std::make_unique<SelectivityStateShedder>(
            *stats, FixedRatioMode{c.fraction, 1}, 3);
      }
      shedder->Bind(&engine);
      shedder->AfterEvent(0, 0.0);  // period=1: sheds immediately
      EXPECT_EQ(shedder->pms_shed(), c.expected)
          << (use_pspice ? "pSPICE" : "SS") << " at alive=" << c.alive
          << " fraction=" << c.fraction;
    }
  }
}

TEST_F(ShedTest, InputSheddersRecordPerClassDropsAndAudit) {
  // RI and SI must thread the event's type, the smoothed latency, and the
  // event identity into the drop audit (the regression: drops used to be
  // recorded unclassified with mu=0).
  auto nfa = CompileQ1();
  auto stats = EstimateOffline(nfa, MakeStream(33), 4, true);
  ASSERT_TRUE(stats.ok());

  for (const bool selectivity : {false, true}) {
    std::unique_ptr<Shedder> shedder;
    if (selectivity) {
      // 60% target: with D's ~25% zero-utility share exhausted, useful
      // types are dropped too, so several classes appear.
      shedder = std::make_unique<SelectivityInputShedder>(*stats, 0.6, /*seed=*/6);
    } else {
      shedder = std::make_unique<RandomInputShedder>(/*fraction=*/0.5, /*seed=*/6);
    }
    obs::MetricsRegistry metrics(1);
    obs::ShardObs* obs = metrics.shard(0);
    shedder->set_obs(obs, /*shard=*/3);

    const EventStream stream = MakeStream(34, 3000);
    for (const EventPtr& e : stream) {
      shedder->FilterEvent(*e);
      shedder->AfterEvent(e->timestamp(), 77.0);
    }
    ASSERT_GT(shedder->events_dropped(), 0u);
    const obs::RegistrySnapshot snap = metrics.Snapshot();
    EXPECT_EQ(snap.total.events_dropped_shedder, shedder->events_dropped());
    uint64_t by_class = 0;
    for (uint64_t c : snap.total.shed_by_class) by_class += c;
    EXPECT_EQ(by_class, shedder->events_dropped());
    // Every type a DS1 stream carries shows up as its own class (type ids
    // are small, so no clamping); nothing lands in "unclassified" beyond
    // type 0's own drops.
    ASSERT_FALSE(snap.total.audit.empty());
    for (const obs::AuditEntry& e : snap.total.audit) {
      EXPECT_EQ(e.kind, obs::AuditKind::kDropEvent);
      EXPECT_EQ(e.shard, 3);
      EXPECT_GE(e.class_label, 0);
      EXPECT_LT(e.class_label, 4);
      EXPECT_DOUBLE_EQ(e.mu, 77.0);  // the mu of the preceding AfterEvent
    }
  }
}

TEST_F(ShedTest, OverloadTriggerHonorsDelay) {
  OverloadTrigger trigger(100.0, 10);
  EXPECT_GT(trigger.Check(200.0), 0.0);  // fires
  for (int i = 0; i < 9; ++i) {
    EXPECT_LT(trigger.Check(200.0), 0.0);  // suppressed by delay
  }
  EXPECT_GT(trigger.Check(200.0), 0.0);  // fires again
  EXPECT_LT(trigger.Check(50.0), 0.0);   // no violation
}

TEST_F(ShedTest, DropRateControllerRampsAndReleases) {
  DropRateController controller(100.0, 2);
  EXPECT_DOUBLE_EQ(controller.Update(50.0), 0.0);
  const double r1 = controller.Update(200.0);
  EXPECT_GT(r1, 0.0);
  controller.Update(200.0);
  const double r2 = controller.Update(200.0);
  EXPECT_GE(r2, r1);
  EXPECT_DOUBLE_EQ(controller.Update(80.0), 0.0);
}

}  // namespace
}  // namespace cepshed
