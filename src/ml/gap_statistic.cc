// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/ml/gap_statistic.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/ml/kmeans.h"

namespace cepshed {

namespace {

// log of the within-cluster dispersion W_k (inertia), guarded for zero.
double LogDispersion(double inertia) {
  return std::log(std::max(inertia, 1e-12));
}

}  // namespace

Result<GapStatisticResult> EstimateClusters(
    const std::vector<std::vector<double>>& points, const GapStatisticOptions& options,
    Rng* rng) {
  if (points.empty()) return Status::InvalidArgument("gap statistic: no points");
  if (options.k_min < 1 || options.k_max < options.k_min) {
    return Status::InvalidArgument("gap statistic: bad k range");
  }
  const size_t n = points.size();
  const size_t d = points[0].size();

  // Bounding box for the uniform reference distribution.
  std::vector<double> lo(d, std::numeric_limits<double>::max());
  std::vector<double> hi(d, std::numeric_limits<double>::lowest());
  for (const auto& p : points) {
    if (p.size() != d) return Status::InvalidArgument("gap statistic: ragged input");
    for (size_t j = 0; j < d; ++j) {
      lo[j] = std::min(lo[j], p[j]);
      hi[j] = std::max(hi[j], p[j]);
    }
  }

  const int k_hi = std::min<int>(options.k_max, static_cast<int>(n));
  GapStatisticResult result;

  std::vector<double> log_wk;
  for (int k = options.k_min; k <= k_hi; ++k) {
    CEPSHED_ASSIGN_OR_RETURN(KMeansResult km,
                             KMeans(points, k, rng, options.kmeans_max_iters));
    log_wk.push_back(LogDispersion(km.inertia));
  }

  // Reference dispersions.
  std::vector<std::vector<double>> ref(n, std::vector<double>(d));
  std::vector<std::vector<double>> ref_log_wk(
      log_wk.size(), std::vector<double>(static_cast<size_t>(options.num_references)));
  for (int r = 0; r < options.num_references; ++r) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < d; ++j) {
        ref[i][j] = hi[j] > lo[j] ? rng->UniformDouble(lo[j], hi[j]) : lo[j];
      }
    }
    for (int k = options.k_min; k <= k_hi; ++k) {
      CEPSHED_ASSIGN_OR_RETURN(KMeansResult km,
                               KMeans(ref, k, rng, options.kmeans_max_iters));
      ref_log_wk[static_cast<size_t>(k - options.k_min)][static_cast<size_t>(r)] =
          LogDispersion(km.inertia);
    }
  }

  result.gap.resize(log_wk.size());
  result.s_k.resize(log_wk.size());
  for (size_t i = 0; i < log_wk.size(); ++i) {
    double mean = 0.0;
    for (double v : ref_log_wk[i]) mean += v;
    mean /= static_cast<double>(options.num_references);
    double var = 0.0;
    for (double v : ref_log_wk[i]) var += (v - mean) * (v - mean);
    var /= static_cast<double>(options.num_references);
    result.gap[i] = mean - log_wk[i];
    result.s_k[i] = std::sqrt(var) * std::sqrt(1.0 + 1.0 / options.num_references);
  }

  // First k with gap(k) >= gap(k+1) - s(k+1).
  result.best_k = options.k_min + static_cast<int>(log_wk.size()) - 1;
  for (size_t i = 0; i + 1 < result.gap.size(); ++i) {
    if (result.gap[i] >= result.gap[i + 1] - result.s_k[i + 1]) {
      result.best_k = options.k_min + static_cast<int>(i);
      break;
    }
  }
  return result;
}

}  // namespace cepshed
