// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/runtime/shard_runtime.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "src/runtime/ring_queue.h"
#include "src/shed/controller.h"

namespace cepshed {

namespace {

/// SplitMix64 finalizer: decorrelates Value::Hash before the modulo so
/// that consecutive integer keys spread over all shards.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

/// Flattens top-level conjunctions into individual predicates.
void FlattenConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind() == ExprKind::kAnd) {
    for (const ExprPtr& c : e->children()) FlattenConjuncts(c.get(), out);
  } else {
    out->push_back(e);
  }
}

struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(int n) : parent(static_cast<size_t>(n)) {
    for (int i = 0; i < n; ++i) parent[static_cast<size_t>(i)] = i;
  }
  int Find(int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  }
  void Union(int a, int b) { parent[static_cast<size_t>(Find(a))] = Find(b); }
};

void SumStats(const EngineStats& in, EngineStats* out) {
  out->events_processed += in.events_processed;
  out->pms_created += in.pms_created;
  out->witnesses_created += in.witnesses_created;
  out->matches_emitted += in.matches_emitted;
  out->matches_vetoed += in.matches_vetoed;
  out->pms_evicted += in.pms_evicted;
  out->predicate_evals += in.predicate_evals;
  out->candidates_scanned += in.candidates_scanned;
  out->index_probes += in.index_probes;
  out->peak_pms += in.peak_pms;
  out->total_cost += in.total_cost;
}

/// Events a worker pops (and the sequential drain processes) per
/// Engine::BeginBatch window: large enough to amortize the batched
/// predicate-mask precompute, small enough to keep the SoA scratch
/// columns cache-resident.
constexpr size_t kConsumeBatch = 64;
/// Events the router stages per shard before a TryPushBatch flush.
constexpr size_t kRouterBatch = 32;

}  // namespace

bool ShardRuntime::IsPartitionCorrelated(const Nfa& nfa, int attr) {
  const Query& q = nfa.query();
  const int n = static_cast<int>(q.elements.size());
  if (attr < 0 || n == 0) return false;
  if (n == 1) return true;

  // Equality links on `attr` extracted from the WHERE conjuncts.
  struct Link {
    int e1;
    RefSelector s1;
    int e2;
    RefSelector s2;
  };
  std::vector<Link> links;
  /// Kleene elements whose iterations are chained equal on attr
  /// (a[i+1].K = a[i].K): all bound events share one value.
  std::vector<bool> self_chain(static_cast<size_t>(n), false);

  std::vector<const Expr*> conjuncts;
  for (const ExprPtr& p : q.predicates) FlattenConjuncts(p.get(), &conjuncts);
  for (const Expr* c : conjuncts) {
    if (c->kind() != ExprKind::kCompare || c->cmp_op() != CmpOp::kEq) continue;
    const Expr* lhs = c->children()[0].get();
    const Expr* rhs = c->children()[1].get();
    if (lhs->kind() != ExprKind::kAttrRef || rhs->kind() != ExprKind::kAttrRef) continue;
    if (lhs->attr_index() != attr || rhs->attr_index() != attr) continue;
    const int e1 = lhs->elem_index();
    const int e2 = rhs->elem_index();
    if (e1 < 0 || e2 < 0) continue;
    if (e1 == e2) {
      const bool chain = (lhs->selector() == RefSelector::kIterPrev &&
                          rhs->selector() == RefSelector::kIterCurr) ||
                         (lhs->selector() == RefSelector::kIterCurr &&
                          rhs->selector() == RefSelector::kIterPrev);
      if (chain) self_chain[static_cast<size_t>(e1)] = true;
    } else {
      links.push_back({e1, lhs->selector(), e2, rhs->selector()});
    }
  }

  // Uniformity: all events an element binds carry one attr value. Single-
  // event elements (non-Kleene positives and negation witnesses) are
  // trivially uniform; a Kleene element is uniform if its iterations are
  // chained equal, or if a cross-element equality pins *every* iteration.
  // That is the case for an x[i+1] reference (the event being bound,
  // checked on each bind) and equally for a cross-element x[i] reference:
  // the NFA compiler rewrites `x[i]` with no `x[i+1]` in the same
  // predicate to the current event (`b[i].V = a.V` style, see
  // nfa.cc), so it too is enforced per iteration. x[first]/x[last] pin
  // only one edge of the binding and do not qualify.
  std::vector<bool> uniform(static_cast<size_t>(n));
  for (int e = 0; e < n; ++e) {
    uniform[static_cast<size_t>(e)] =
        !q.elements[static_cast<size_t>(e)].kleene || self_chain[static_cast<size_t>(e)];
  }
  const auto pins_every_iteration = [](RefSelector s) {
    return s == RefSelector::kIterCurr || s == RefSelector::kIterPrev;
  };
  for (const Link& l : links) {
    if (q.elements[static_cast<size_t>(l.e1)].kleene && pins_every_iteration(l.s1)) {
      uniform[static_cast<size_t>(l.e1)] = true;
    }
    if (q.elements[static_cast<size_t>(l.e2)].kleene && pins_every_iteration(l.s2)) {
      uniform[static_cast<size_t>(l.e2)] = true;
    }
  }
  for (int e = 0; e < n; ++e) {
    if (!uniform[static_cast<size_t>(e)]) return false;
  }

  // With all elements uniform, each equality link equates the elements'
  // (single) attr values; the query is partition-correlated iff the links
  // connect every element into one component.
  UnionFind uf(n);
  for (const Link& l : links) uf.Union(l.e1, l.e2);
  const int root = uf.Find(0);
  for (int e = 1; e < n; ++e) {
    if (uf.Find(e) != root) return false;
  }
  return true;
}

Status ShardRuntime::ValidatePlan() const {
  if (opts_.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (Elastic()) {
    // Elasticity is validated even for num_shards == 1 (a resize can grow
    // past one shard) and even under skip_validation for the structural
    // requirements: resharding a window-sliced plan would need slice
    // re-ownership, which the migration protocol does not implement.
    if (opts_.routing != ShardRouting::kHashPartition) {
      return Status::InvalidArgument(
          "elastic resharding requires hash routing; window slices are "
          "pinned to their owner shards");
    }
    if (opts_.reshard.min_shards < 1) {
      return Status::InvalidArgument("reshard.min_shards must be >= 1");
    }
    if (opts_.partition_attr < 0) {
      return Status::InvalidArgument(
          "elastic resharding requires partition_attr: migration ownership "
          "is decided by the partition key of each partial match");
    }
    if (!opts_.skip_validation) {
      if (nfa_->query().policy == SelectionPolicy::kStrictContiguity) {
        return Status::InvalidArgument(
            "strict contiguity depends on stream-adjacent events of every "
            "partition; it cannot be hash-sharded");
      }
      if (!IsPartitionCorrelated(*nfa_, opts_.partition_attr)) {
        return Status::InvalidArgument(
            "query is not equality-correlated on the partition attribute; "
            "resharding would split matches across owners");
      }
    }
  }
  if (opts_.num_shards == 1 || opts_.skip_validation) return Status::OK();
  const Query& q = nfa_->query();
  if (opts_.routing == ShardRouting::kHashPartition) {
    if (q.policy == SelectionPolicy::kStrictContiguity) {
      return Status::InvalidArgument(
          "strict contiguity depends on stream-adjacent events of every "
          "partition; it cannot be hash-sharded");
    }
    if (opts_.partition_attr < 0) {
      return Status::InvalidArgument("hash routing requires partition_attr");
    }
    if (!IsPartitionCorrelated(*nfa_, opts_.partition_attr)) {
      return Status::InvalidArgument(
          "query is not equality-correlated on the partition attribute; "
          "hash sharding would change the match set");
    }
  } else {
    if (q.policy != SelectionPolicy::kSkipTillAnyMatch) {
      return Status::InvalidArgument(
          "window-slice routing is only exact under skip-till-any-match");
    }
    if (q.count_window > 0) {
      return Status::InvalidArgument(
          "window-slice routing requires a time window (count windows are "
          "anchored to absolute stream positions)");
    }
    if (q.window <= 0) {
      return Status::InvalidArgument("window-slice routing requires a window");
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<ShardRuntime>> ShardRuntime::Create(
    std::shared_ptr<const Nfa> nfa, ShardRuntimeOptions opts) {
  std::unique_ptr<ShardRuntime> rt(new ShardRuntime(std::move(nfa), opts));
  CEPSHED_RETURN_NOT_OK(rt->ValidatePlan());
  return rt;
}

Duration ShardRuntime::SliceStride() const {
  if (opts_.slice_stride > 0) return opts_.slice_stride;
  return std::max<Duration>(1, nfa_->window());
}

int ShardRuntime::ShardOfKey(const Value& key, int num_shards) {
  if (num_shards == 1) return 0;
  // Null partition keys fail every equality predicate, so their events
  // can only ever matter as state-0 creations; pin them to shard 0.
  if (key.is_null()) return 0;
  return static_cast<int>(Mix64(static_cast<uint64_t>(key.Hash())) %
                          static_cast<uint64_t>(num_shards));
}

int ShardRuntime::HashShardOf(const Event& event) const {
  return ShardOfKey(event.attr(opts_.partition_attr), live_shards_);
}

bool ShardRuntime::Elastic() const {
  return opts_.reshard.enabled ||
         (opts_.faults != nullptr && opts_.faults->has_resizes());
}

int ShardRuntime::EffectiveMaxShards() const {
  if (!Elastic()) return opts_.num_shards;
  return std::max(opts_.num_shards, opts_.reshard.max_shards);
}

int ShardRuntime::EffectiveMinShards() const {
  // A min above the initial count would make the starting state illegal;
  // the floor is what the run actually started with.
  return std::max(1, std::min(opts_.reshard.min_shards, opts_.num_shards));
}

int ShardRuntime::ClampLiveShards(int want) const {
  return std::min(EffectiveMaxShards(), std::max(EffectiveMinShards(), want));
}

void ShardRuntime::RouteEvent(const Event& event, std::vector<int>* out) const {
  out->clear();
  if (opts_.routing == ShardRouting::kHashPartition) {
    // Routes against the *live* shard count, which elastic resizes change
    // mid-run; with no resizes this is num_shards for the whole run.
    if (live_shards_ == 1) {
      out->push_back(0);
      return;
    }
    out->push_back(HashShardOf(event));
    return;
  }
  if (opts_.num_shards == 1) {
    out->push_back(0);
    return;
  }
  // Window-slice: slice j covers event times [j*L, j*L + L + W); the event
  // goes to the owner shard of every covering slice.
  const Duration l = SliceStride();
  const Duration w = nfa_->window();
  const Timestamp t = event.timestamp();
  const int64_t j_hi = FloorDiv(t, l);
  const int64_t j_lo = std::max<int64_t>(0, FloorDiv(t - l - w, l) + 1);
  for (int64_t j = j_lo; j <= j_hi; ++j) {
    const int shard = static_cast<int>(j % opts_.num_shards);
    if (std::find(out->begin(), out->end(), shard) == out->end()) {
      out->push_back(shard);
    }
    if (static_cast<int>(out->size()) == opts_.num_shards) break;
  }
}

/// All state one shard's worker touches. Engines, monitors, shedders, and
/// guards are confined to the owning worker thread between queue handoff
/// points; the join at the end of Run publishes the results to the caller.
/// The router additionally writes events_rejected (a member the worker
/// never touches) and takes the shard over entirely once the worker thread
/// has been observed dead and joined.
struct ShardRuntime::ShardState {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<Shedder> shedder;
  std::unique_ptr<OverloadGuard> guard;
  /// Observability slot of this shard (not owned; null = disabled).
  obs::ShardObs* obs = nullptr;
  /// Matches already counted into obs->matches_emitted.
  size_t obs_matches_seen = 0;
  /// Store expiry-wheel totals already published to the obs counters.
  uint64_t obs_expiry_reaped_seen = 0;
  uint64_t obs_wheel_cascades_seen = 0;
  /// Not owned; null when no faults target this run.
  const FaultInjector* faults = nullptr;
  LatencyMonitor monitor;
  size_t monitor_window = 0;
  std::vector<Match> matches;
  ShardResult result;
  std::unique_ptr<RingQueue<EventPtr>> queue;
  /// In-flight consume batch: popped from the queue in one PopBatch and
  /// handed to Engine::BeginBatch, with batch_pos marking the next
  /// unconsumed entry. It survives worker death so a restarted worker (or
  /// the router, via FinishDeadShard / AbandonShard) resumes exactly where
  /// the dead worker stopped — the engine's active batch masks index into
  /// this vector by pointer identity, so it must stay put until every
  /// entry is consumed or accounted lost.
  std::vector<EventPtr> batch;
  size_t batch_pos = 0;
  /// Canonical-owner filter for window-slice routing (see Finish).
  bool slice_filter = false;
  int shard_id = 0;
  int num_shards = 1;
  Duration slice_stride = 0;
  /// Ordinal of the next event this shard consumes (fault anchor).
  uint64_t consumed = 0;
  /// Events the router has accepted for delivery to this shard: stage
  /// appends in Run (counted when the routing decision lands, before the
  /// batched queue flush), buffer appends in RunSequential. Router-owned;
  /// together with `handled` it forms the migration drain barrier and
  /// anchors scoped `resize` fault entries. A staged event that is later
  /// rejected because the shard was abandoned mid-flush stays counted —
  /// harmless, since abandoned shards are excluded from the barrier.
  uint64_t pushed = 0;
  /// Delivered events fully handled by the consumer (incremented at the
  /// END of Consume, release order, on both the normal and the death
  /// path). The router's acquire read of handled == pushed proves the
  /// queue is empty, the worker is parked in Pop, and every engine write
  /// is visible — the quiescence the migration protocol needs.
  std::atomic<uint64_t> handled{0};
  /// Guard ladder level published for the router's reshard controller
  /// (relaxed; an advisory pressure signal, not a synchronization edge).
  std::atomic<int> guard_level_pub{0};
  /// Restarts spent so far (router-owned; compared to the budget).
  int restarts = 0;
  /// RunSequential death mirroring: once the restart budget is spent the
  /// rest of every buffer drains as lost. Persists across the buffer
  /// drains that resize anchors split the run into.
  bool seq_draining = false;
  bool finished = false;
  /// Worker-thread exit protocol: the worker sets clean_exit (after a
  /// normal drain + Finish) and then worker_exited with release order; the
  /// router reads worker_exited with acquire before touching anything else.
  bool clean_exit = false;
  std::atomic<bool> worker_exited{false};
  std::thread worker;

  explicit ShardState(LatencyMonitor::Options latency)
      : monitor(latency), monitor_window(latency.window) {}

  /// Handles one delivered event. Returns true when an injected death
  /// fault fires: the event is counted lost and the caller must terminate
  /// (or restart) the worker without further consumption.
  bool Consume(const EventPtr& event) {
    ActiveFaults injected;
    if (faults != nullptr) injected = faults->OnConsume(shard_id, consumed);
    ++consumed;
    ++result.events_routed;
    if (obs != nullptr) obs->events_routed.Add();
    if (injected.die) {
      ++result.events_lost;
      if (obs != nullptr) obs->events_lost.Add();
      handled.fetch_add(1, std::memory_order_release);
      return true;
    }
    if (injected.stall_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(injected.stall_us));
    }
    double cost;
    if (guard != nullptr && guard->ShouldDropInput(event->seq())) {
      // Guard rho_I: counted as a drop like any other input shedding.
      ++result.events_dropped;
      cost = ShedRunner::kDroppedEventCost;
      if (obs != nullptr) {
        obs->events_dropped_guard.Add();
        obs->audit.Record(obs::AuditKind::kGuardDrop,
                          static_cast<uint8_t>(shard_id), event->timestamp(),
                          -1, monitor.Current(), event->seq());
      }
    } else if (shedder != nullptr && shedder->FilterEvent(*event)) {
      ++result.events_dropped;
      cost = ShedRunner::kDroppedEventCost;
    } else {
      cost = engine->Process(event, &matches);
      ++result.events_processed;
      if (obs != nullptr) {
        obs->events_processed.Add();
        if (matches.size() != obs_matches_seen) {
          obs->matches_emitted.Add(matches.size() - obs_matches_seen);
          obs_matches_seen = matches.size();
        }
      }
    }
    if (obs != nullptr) obs->event_cost.Record(cost * injected.cost_multiplier);
    monitor.Record(cost * injected.cost_multiplier);
    if (shedder != nullptr) {
      const double theta = shedder->theta();
      if (theta > 0.0 && monitor.Count() >= monitor_window) {
        ++result.bound_checked;
        if (monitor.Current() > theta) ++result.bound_violations;
      }
      shedder->AfterEvent(event->timestamp(), monitor.Current());
    }
    if (guard != nullptr) {
      guard->Observe(monitor.Current(), queue != nullptr ? queue->SizeApprox() : 0,
                     queue != nullptr ? queue->capacity() : 0,
                     event->timestamp() + injected.clock_skew_us);
      guard_level_pub.store(static_cast<int>(guard->level()),
                            std::memory_order_relaxed);
    }
    if (obs != nullptr) {
      // Footprint gauges live here — code shared by Run and RunSequential —
      // so the parallel/sequential snapshot-equality property holds for
      // them too (engine state is a pure function of the shard substream).
      obs->state_bytes.Set(static_cast<int64_t>(engine->ApproxStateBytes()));
      obs->arena_live_bytes.Set(
          static_cast<int64_t>(engine->store().arena().LiveBytes()));
      obs->arena_capacity_bytes.Set(
          static_cast<int64_t>(engine->store().arena().CapacityBytes()));
      obs->flat_cache_entries.Set(static_cast<int64_t>(engine->FlatCacheSize()));
      obs->wheel_entries.Set(static_cast<int64_t>(engine->store().WheelEntries()));
      // Expiry-wheel counters are maintained by the store as totals;
      // publish the delta since the last consume (same pattern as
      // obs_matches_seen) so the obs counter stays monotone across
      // worker restarts, which hand the same engine to a fresh worker.
      const uint64_t reaped = engine->store().ExpiryReapedTotal();
      if (reaped > obs_expiry_reaped_seen) {
        obs->expiry_reaped.Add(reaped - obs_expiry_reaped_seen);
        obs_expiry_reaped_seen = reaped;
      }
      const uint64_t cascades = engine->store().WheelCascadesTotal();
      if (cascades > obs_wheel_cascades_seen) {
        obs->wheel_cascades.Add(cascades - obs_wheel_cascades_seen);
        obs_wheel_cascades_seen = cascades;
      }
    }
    handled.fetch_add(1, std::memory_order_release);
    return false;
  }

  /// Worker-thread body (also the entry point of a restarted worker).
  ///
  /// Consumes the queue in batches: each PopBatch run is announced to the
  /// engine with BeginBatch so batchable predicates evaluate from the
  /// precomputed column masks. The worker deliberately never calls
  /// EndBatch — after the last Consume of a drained queue it must not
  /// touch the engine again (the router's handled == pushed barrier takes
  /// the engine over for migration), and the next BeginBatch supersedes
  /// the previous window anyway. A restarted worker finds the remainder
  /// of the batch its predecessor died in and resumes it under a fresh
  /// BeginBatch before popping anything new.
  void WorkerMain() {
    for (;;) {
      if (batch_pos < batch.size()) {
        engine->BeginBatch(batch.data() + batch_pos, batch.size() - batch_pos);
        while (batch_pos < batch.size()) {
          const size_t i = batch_pos++;
          if (Consume(batch[i])) {
            // Simulated worker death: leave the queue open and Finish
            // unrun; the router detects the exit and restarts or abandons
            // the shard. The batch remainder stays for the successor.
            worker_exited.store(true, std::memory_order_release);
            return;
          }
        }
      }
      batch.clear();
      batch_pos = 0;
      batch.resize(kConsumeBatch);
      const size_t n = queue->PopBatch(batch.data(), kConsumeBatch);
      if (n == 0) break;
      batch.resize(n);
    }
    batch.clear();
    batch_pos = 0;
    Finish();
    clean_exit = true;
    worker_exited.store(true, std::memory_order_release);
  }

  void Finish() {
    if (finished) return;
    finished = true;
    result.avg_latency = monitor.OverallAverage();
    result.shed_pms = shedder != nullptr ? shedder->pms_shed() : 0;
    if (guard != nullptr) {
      const OverloadGuard::Stats& g = guard->stats();
      result.guard_input_drops = g.input_drops;
      result.guard_trims = g.trims;
      result.guard_evictions = g.emergency_evictions;
      result.guard_escalations = g.escalations;
      result.guard_final_level = static_cast<int>(g.level);
      result.guard_peak_level = static_cast<int>(g.peak_level);
      result.guard_peak_state_bytes = g.peak_state_bytes;
    }
    result.stats = engine->stats();
    if (slice_filter) FilterToOwnedSlices();
  }

  /// Window-slice routing: every match is kept only by its canonical
  /// owner — the shard owning the slice of the match's first event, whose
  /// coverage [j0*L, j0*L + L + W) provably contains the whole match and
  /// every witness able to veto it. A shard owns several *disjoint*
  /// coverage intervals (slices j, j+N, ...), so its engine can also form
  /// phantom copies bridging the gap between two of them; such a copy may
  /// miss the negation witnesses lying in the gap and must not be emitted.
  void FilterToOwnedSlices() {
    size_t kept = 0;
    for (size_t i = 0; i < matches.size(); ++i) {
      const Timestamp t0 = matches[i].events.front()->timestamp();
      const int64_t j0 = FloorDiv(t0, slice_stride);
      if (static_cast<int>(j0 % num_shards) == shard_id) {
        if (kept != i) matches[kept] = std::move(matches[i]);
        ++kept;
      } else {
        // A copy of a match owned (and correctly vetoed) elsewhere.
        --result.stats.matches_emitted;
      }
    }
    matches.resize(kept);
  }
};

void ShardRuntime::ReviveOrAbandon(ShardState* s) const {
  s->worker.join();
  if (s->clean_exit) return;  // normal drain raced the timeout; nothing to do
  if (s->restarts < opts_.max_worker_restarts) {
    ++s->restarts;
    ++s->result.worker_restarts;
    s->worker_exited.store(false, std::memory_order_relaxed);
    // The restarted worker resumes the same queue and engine: only the
    // death-poisoned event is lost, so recall degrades by exactly one
    // event per death.
    s->worker = std::thread(&ShardState::WorkerMain, s);
  } else {
    AbandonShard(s);
  }
}

void ShardRuntime::AbandonShard(ShardState* s) const {
  s->result.abandoned = true;
  s->queue->Close();
  // The remainder of the batch the dead worker popped but never consumed
  // drains first — those events already left the queue, so the queue loop
  // below would otherwise silently drop them from the accounting.
  for (size_t i = s->batch_pos; i < s->batch.size(); ++i) {
    ++s->result.events_routed;
    ++s->result.events_lost;
    if (s->obs != nullptr) {
      s->obs->events_routed.Add();
      s->obs->events_lost.Add();
    }
  }
  s->batch.clear();
  s->batch_pos = 0;
  EventPtr event;
  while (s->queue->Pop(&event)) {
    ++s->result.events_routed;
    ++s->result.events_lost;
    if (s->obs != nullptr) {
      s->obs->events_routed.Add();
      s->obs->events_lost.Add();
    }
  }
  s->Finish();
}

void ShardRuntime::FinishDeadShard(ShardState* s) const {
  bool draining;
  if (s->restarts < opts_.max_worker_restarts) {
    ++s->restarts;
    ++s->result.worker_restarts;
    draining = false;
  } else {
    s->result.abandoned = true;
    draining = true;
  }
  const auto deliver = [&](const EventPtr& event) {
    if (draining) {
      ++s->result.events_routed;
      ++s->result.events_lost;
      if (s->obs != nullptr) {
        s->obs->events_routed.Add();
        s->obs->events_lost.Add();
      }
      return;
    }
    if (s->Consume(event)) {
      if (s->restarts < opts_.max_worker_restarts) {
        ++s->restarts;
        ++s->result.worker_restarts;
      } else {
        s->result.abandoned = true;
        draining = true;
      }
    }
  };
  // The dead worker's unconsumed batch remainder comes before the queue:
  // those events were popped first, and the engine's still-active batch
  // masks cover exactly these events, so Consume keeps the batched fast
  // path (further injected deaths are honored mid-remainder).
  while (s->batch_pos < s->batch.size()) {
    const size_t i = s->batch_pos++;
    deliver(s->batch[i]);
  }
  s->batch.clear();
  s->batch_pos = 0;
  EventPtr event;
  while (s->queue->Pop(&event)) deliver(event);
  s->Finish();
}

/// Scripted resize anchors for one run. Each fault-DSL `resize` entry
/// fires exactly once: an unscoped entry (shard == -1) immediately before
/// the router handles the first event with global sequence >= `at`, a
/// scoped entry (shard == S) immediately before the router's `at`-th
/// delivery to shard S while S is among the event's targets. Fire returns
/// one entry at a time; the router executes the resize, re-routes (the
/// flip changes ownership), and asks again — the loop terminates because
/// fired entries never re-fire.
struct ShardRuntime::ResizeScript {
  struct Entry {
    const FaultSpec* spec;
    bool fired = false;
  };
  std::vector<Entry> entries;

  explicit ResizeScript(const FaultInjector* faults) {
    if (faults == nullptr) return;
    for (const FaultSpec& f : faults->specs()) {
      if (f.kind == FaultKind::kResize) entries.push_back({&f});
    }
  }

  bool empty() const { return entries.empty(); }

  /// Delta of the first unfired entry anchored at or before this routing
  /// decision (0 = none). Marks the entry fired.
  int Fire(uint64_t seq, const std::vector<int>& targets,
           const std::vector<std::unique_ptr<ShardState>>& shards) {
    for (Entry& e : entries) {
      if (e.fired) continue;
      const FaultSpec& f = *e.spec;
      bool hit;
      if (f.shard < 0) {
        hit = seq >= f.at;
      } else {
        hit = false;
        for (int t : targets) {
          if (t == f.shard) {
            hit = shards[static_cast<size_t>(t)]->pushed >= f.at;
            break;
          }
        }
      }
      if (hit) {
        e.fired = true;
        return f.delta;
      }
    }
    return 0;
  }
};

void ShardRuntime::MigrateState(std::vector<std::unique_ptr<ShardState>>* shards,
                                int old_live, int new_live,
                                ShardRunResult* result) const {
  const int attr = opts_.partition_attr;
  // Donors are the previously live shards — including retiring ones, whose
  // entire state leaves because ShardOfKey under new_live never maps to an
  // id >= new_live. Growing shards start empty: a shard that retired
  // earlier donated everything on the way out. Extraction is grouped per
  // recipient so adoption happens in donor order 0..old_live-1 — a
  // deterministic function of the engines' states, independent of thread
  // scheduling.
  std::vector<std::vector<MigratedState>> transfer(shards->size());
  for (int d = 0; d < old_live; ++d) {
    ShardState& donor = *(*shards)[static_cast<size_t>(d)];
    for (int r = 0; r < new_live; ++r) {
      if (r == d) continue;
      MigratedState moved = donor.engine->ExtractPartialMatches(
          [attr, r, new_live](const PartialMatch& pm) {
            // Partition correlation guarantees every bound event of the
            // match (or witness) carries the same key, so any one event
            // determines the owner. A chainless match cannot exist live
            // in the store; keep it put defensively.
            const Event* e = pm.LastEvent();
            if (e == nullptr) return false;
            return ShardOfKey(e->attr(attr), new_live) == r;
          });
      if (moved.empty()) continue;
      const uint64_t n = moved.size();
      donor.result.pms_migrated_out += n;
      (*shards)[static_cast<size_t>(r)]->result.pms_migrated_in += n;
      result->migrated_pms += n;
      result->migrated_bytes += moved.approx_bytes;
      if (donor.obs != nullptr) {
        donor.obs->migrated_pms.Add(n);
        donor.obs->migrated_bytes.Add(moved.approx_bytes);
      }
      transfer[static_cast<size_t>(r)].push_back(std::move(moved));
    }
  }
  for (size_t r = 0; r < transfer.size(); ++r) {
    for (MigratedState& moved : transfer[r]) {
      (*shards)[r]->engine->AdoptPartialMatches(std::move(moved));
    }
  }
}

void ShardRuntime::RecordResize(std::vector<std::unique_ptr<ShardState>>* shards,
                                int old_live, int new_live, uint64_t seq,
                                Timestamp now, double pause_us,
                                ShardRunResult* result) const {
  ++result->resizes;
  obs::ShardObs* obs0 = (*shards)[0]->obs;
  if (obs0 != nullptr) {
    // Run-level reshard series live on shard 0's slot; every worker is
    // parked at this barrier, so the router is the only writer.
    obs0->migrations_total.Add();
    obs0->migration_us.Record(pause_us);
    obs0->live_shards.Set(new_live);
    int64_t legacy = 0;
    for (size_t i = static_cast<size_t>(new_live); i < shards->size(); ++i) {
      legacy +=
          static_cast<int64_t>((*shards)[i]->engine->store().arena().LiveBytes());
    }
    obs0->arena_legacy_bytes.Set(legacy);
    obs0->audit.Record(obs::AuditKind::kResize, 0, now,
                       old_live | (new_live << 8), 0.0, seq);
  }
  if (opts_.resize_tap) opts_.resize_tap(seq, old_live, new_live);
}

void ShardRuntime::ExecuteResize(std::vector<std::unique_ptr<ShardState>>* shards,
                                 int new_live, uint64_t seq, Timestamp now,
                                 ShardRunResult* result) {
  const int old_live = live_shards_;
  if (new_live == old_live) return;
  const auto t0 = std::chrono::steady_clock::now();
  // Seal: stop routing (the caller already holds the router thread) and
  // drain every live shard to quiescence. A worker that dies mid-drain is
  // restarted (it resumes the same queue; only the poisoned event is
  // lost) or abandoned (its backlog drains as lost but its engine remains
  // extractable) — either way the barrier resolves and the migration's
  // loss accounting stays exact.
  for (int i = 0; i < old_live; ++i) {
    ShardState& s = *(*shards)[static_cast<size_t>(i)];
    for (;;) {
      if (s.result.abandoned) break;
      if (s.handled.load(std::memory_order_acquire) == s.pushed) break;
      if (s.worker_exited.load(std::memory_order_acquire)) {
        ReviveOrAbandon(&s);
        continue;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  MigrateState(shards, old_live, new_live, result);
  live_shards_ = new_live;
  const double pause_us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  RecordResize(shards, old_live, new_live, seq, now, pause_us, result);
}

void ShardRuntime::Merge(std::vector<std::unique_ptr<ShardState>>* shards,
                         ShardRunResult* result) const {
  size_t total_matches = 0;
  for (std::unique_ptr<ShardState>& sp : *shards) {
    ShardState& s = *sp;
    result->shards.push_back(s.result);
    SumStats(s.result.stats, &result->stats);
    result->dropped_events += s.result.events_dropped;
    result->shed_pms += s.result.shed_pms;
    result->lost_events += s.result.events_lost + s.result.events_rejected;
    result->worker_restarts += s.result.worker_restarts;
    if (s.result.abandoned) ++result->shards_abandoned;
    result->guard_input_drops += s.result.guard_input_drops;
    result->guard_trims += s.result.guard_trims;
    result->guard_evictions += s.result.guard_evictions;
    total_matches += s.matches.size();
  }

  // Deterministic total order independent of shard interleaving:
  // (detection timestamp, event-sequence identity). Matches are already
  // unique — hash routing assigns each one partition, and slice routing
  // keeps each match only in its canonical owner shard (FilterToOwnedSlices).
  struct Keyed {
    Timestamp detected_at;
    std::string key;
    Match* match;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(total_matches);
  for (std::unique_ptr<ShardState>& s : *shards) {
    for (Match& m : s->matches) keyed.push_back({m.detected_at, m.Key(), &m});
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.detected_at != b.detected_at) return a.detected_at < b.detected_at;
    return a.key < b.key;
  });
  result->matches.reserve(keyed.size());
  for (const Keyed& k : keyed) result->matches.push_back(std::move(*k.match));
}

Result<ShardRunResult> ShardRuntime::Run(const EventStream& stream,
                                         const ShedderFactory& make_shedder) {
  CEPSHED_RETURN_NOT_OK(ValidatePlan());
  // An empty fault schedule costs nothing: the per-event hook stays null.
  const FaultInjector* faults =
      (opts_.faults != nullptr && !opts_.faults->empty()) ? opts_.faults : nullptr;
  // Elastic runs provision workers, queues, and metrics slots for the
  // maximum shard count up front; shards beyond the live count just park
  // in Pop on their empty queues until a grow routes to them (and after a
  // retire, until re-grown). Thread spawn never happens mid-stream.
  const int total_shards = EffectiveMaxShards();
  live_shards_ = opts_.num_shards;
  std::vector<std::unique_ptr<ShardState>> shards;
  shards.reserve(static_cast<size_t>(total_shards));
  if (opts_.metrics != nullptr) {
    opts_.metrics->EnsureShards(total_shards);
  }
  for (int i = 0; i < total_shards; ++i) {
    auto s = std::make_unique<ShardState>(opts_.latency);
    s->slice_filter = opts_.routing == ShardRouting::kWindowSlice;
    s->shard_id = i;
    s->num_shards = opts_.num_shards;
    s->slice_stride = SliceStride();
    s->faults = faults;
    if (opts_.metrics != nullptr) s->obs = opts_.metrics->shard(i);
    s->engine = std::make_unique<Engine>(nfa_, opts_.engine);
    if (make_shedder) {
      s->shedder = make_shedder(i);
      if (s->shedder != nullptr) {
        s->shedder->Bind(s->engine.get());
        if (s->obs != nullptr) s->shedder->set_obs(s->obs, i);
      }
    }
    if (opts_.guard.enabled) {
      s->guard = std::make_unique<OverloadGuard>(opts_.guard);
      s->guard->Attach(s->engine.get());
      if (s->obs != nullptr) s->guard->set_obs(s->obs, i);
    }
    s->queue = std::make_unique<RingQueue<EventPtr>>(opts_.queue_capacity);
    shards.push_back(std::move(s));
  }

  ShardRunResult result;
  result.final_live_shards = live_shards_;
  if (Elastic() && opts_.metrics != nullptr) {
    shards[0]->obs->live_shards.Set(live_shards_);
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::unique_ptr<ShardState>& s : shards) {
    s->worker = std::thread(&ShardState::WorkerMain, s.get());
  }

  ResizeScript script(faults);
  ReshardController controller(opts_.reshard);
  uint64_t since_check = 0;
  std::vector<int> targets;
  // Per-shard staging buffers: routing decisions append here and the
  // buffer is flushed to the shard queue with one TryPushBatch claim once
  // it reaches kRouterBatch (and at every resize barrier and at stream
  // end), amortizing the queue's CAS/fence traffic over the batch.
  std::vector<std::vector<EventPtr>> stage(shards.size());
  const auto flush_shard = [&](int t) {
    ShardState& s = *shards[static_cast<size_t>(t)];
    std::vector<EventPtr>& buf = stage[static_cast<size_t>(t)];
    size_t i = 0;
    while (i < buf.size()) {
      if (s.result.abandoned) {
        s.result.events_rejected += static_cast<uint64_t>(buf.size() - i);
        break;
      }
      const size_t k = s.queue->TryPushBatch(buf.data() + i, buf.size() - i);
      result.routed_events += k;
      i += k;
      if (i == buf.size()) break;
      // Queue full (or closed): fall back to the bounded-wait push for one
      // element so the dead-consumer recovery below still runs. Queue-wait
      // is timed only once a push has actually blocked past the first
      // timeout: the uncontended fast path stays clock-free.
      bool waited = false;
      std::chrono::steady_clock::time_point wait_start;
      bool settled = false;
      while (!settled) {
        const QueuePushResult r =
            s.queue->PushForRef(buf[i], opts_.push_timeout_us);
        if (r != QueuePushResult::kTimedOut && waited && s.obs != nullptr) {
          s.obs->queue_wait_us.Record(std::chrono::duration<double, std::micro>(
                                          std::chrono::steady_clock::now() - wait_start)
                                          .count());
        }
        if (r == QueuePushResult::kOk) {
          ++result.routed_events;
          ++i;
          settled = true;
        } else if (r == QueuePushResult::kClosed) {
          ++s.result.events_rejected;
          ++i;
          settled = true;
        } else {
          if (!waited) {
            waited = true;
            wait_start = std::chrono::steady_clock::now();
            if (s.obs != nullptr) s.obs->queue_push_timeouts.Add();
          }
          // Timed out on a full queue: either the consumer is merely slow
          // (keep waiting) or its thread is gone (restart or abandon). This
          // bounded-wait loop is what turns a dead shard into degraded
          // recall instead of a deadlocked router.
          if (s.worker_exited.load(std::memory_order_acquire)) {
            ReviveOrAbandon(&s);
            if (s.result.abandoned) settled = true;  // loop top rejects the rest
          }
        }
      }
    }
    buf.clear();
  };
  const auto flush_all = [&] {
    for (size_t t = 0; t < stage.size(); ++t) {
      if (!stage[t].empty()) flush_shard(static_cast<int>(t));
    }
  };
  for (const EventPtr& event : stream) {
    ++result.total_events;
    // Dynamic elasticity: sample the pressure signals every check_every
    // events and let the hysteresis ladder decide. Load-dependent, hence
    // not replay-deterministic by itself — the resize tap records every
    // executed resize so replay can re-apply it as a script.
    if (opts_.reshard.enabled && ++since_check >= opts_.reshard.check_every) {
      since_check = 0;
      ReshardController::Signals sig;
      for (int i = 0; i < live_shards_; ++i) {
        const ShardState& s = *shards[static_cast<size_t>(i)];
        if (s.result.abandoned) continue;
        if (s.queue->capacity() > 0) {
          sig.max_queue_fill = std::max(
              sig.max_queue_fill, static_cast<double>(s.queue->SizeApprox()) /
                                      static_cast<double>(s.queue->capacity()));
        }
        sig.max_guard_level =
            std::max(sig.max_guard_level,
                     s.guard_level_pub.load(std::memory_order_relaxed));
      }
      const int delta = controller.Decide(event->seq(), sig, live_shards_,
                                          EffectiveMaxShards());
      if (delta != 0) {
        // Staged events must reach the queues before the drain barrier:
        // the barrier proves quiescence via handled == pushed, and pushed
        // already counts them.
        flush_all();
        ExecuteResize(&shards, ClampLiveShards(live_shards_ + delta),
                      event->seq(), event->timestamp(), &result);
      }
    }
    // Scripted anchors: a fired resize changes the routing function, so
    // the triggering event re-routes and the anchors re-check until quiet.
    for (;;) {
      RouteEvent(*event, &targets);
      const int delta = script.Fire(event->seq(), targets, shards);
      if (delta == 0) break;
      flush_all();
      ExecuteResize(&shards, ClampLiveShards(live_shards_ + delta),
                    event->seq(), event->timestamp(), &result);
    }
    if (opts_.ingest_tap) opts_.ingest_tap(event, targets);
    for (int t : targets) {
      ShardState& s = *shards[static_cast<size_t>(t)];
      if (s.result.abandoned) {
        ++s.result.events_rejected;
        continue;
      }
      if (faults != nullptr && faults->SaturatePush(t, event->seq())) {
        ++s.result.events_rejected;
        continue;
      }
      // Accepted for delivery: `pushed` counts at stage time so scoped
      // resize anchors (pushed >= at) keep firing immediately before the
      // at-th delivery even though the physical push is deferred.
      stage[static_cast<size_t>(t)].push_back(event);
      ++s.pushed;
      if (stage[static_cast<size_t>(t)].size() >= kRouterBatch) flush_shard(t);
    }
  }
  flush_all();
  for (std::unique_ptr<ShardState>& s : shards) s->queue->Close();
  for (std::unique_ptr<ShardState>& s : shards) {
    if (s->worker.joinable()) s->worker.join();
  }
  // Workers that died close enough to the end of the stream never stalled
  // a push, so the router meets them here for the first time: resume their
  // backlog inline (their restart) or drain it as lost.
  for (std::unique_ptr<ShardState>& s : shards) {
    if (s->clean_exit || s->result.abandoned) continue;
    FinishDeadShard(s.get());
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  result.final_live_shards = live_shards_;
  if (Elastic() && opts_.metrics != nullptr) {
    // Post-run legacy-arena reading: chains migrated out of retired shards
    // drain back into their home arenas as recipients expire them, so this
    // is the value the soak harness bounds.
    int64_t legacy = 0;
    for (size_t i = static_cast<size_t>(live_shards_); i < shards.size(); ++i) {
      legacy += static_cast<int64_t>(shards[i]->engine->store().arena().LiveBytes());
    }
    shards[0]->obs->arena_legacy_bytes.Set(legacy);
  }
  Merge(&shards, &result);
  if (result.shards_abandoned >= live_shards_ && opts_.num_shards > 0 &&
      result.total_events > 0) {
    return Status::Unavailable(
        "every shard worker died and exhausted its restart budget");
  }
  return result;
}

Result<ShardRunResult> ShardRuntime::RunSequential(
    const EventStream& stream, const ShedderFactory& make_shedder) {
  CEPSHED_RETURN_NOT_OK(ValidatePlan());
  const FaultInjector* faults =
      (opts_.faults != nullptr && !opts_.faults->empty()) ? opts_.faults : nullptr;
  const int total_shards = EffectiveMaxShards();
  live_shards_ = opts_.num_shards;
  std::vector<std::unique_ptr<ShardState>> shards;
  shards.reserve(static_cast<size_t>(total_shards));
  if (opts_.metrics != nullptr) {
    opts_.metrics->EnsureShards(total_shards);
  }
  for (int i = 0; i < total_shards; ++i) {
    auto s = std::make_unique<ShardState>(opts_.latency);
    s->slice_filter = opts_.routing == ShardRouting::kWindowSlice;
    s->shard_id = i;
    s->num_shards = opts_.num_shards;
    s->slice_stride = SliceStride();
    s->faults = faults;
    if (opts_.metrics != nullptr) s->obs = opts_.metrics->shard(i);
    s->engine = std::make_unique<Engine>(nfa_, opts_.engine);
    if (make_shedder) {
      s->shedder = make_shedder(i);
      if (s->shedder != nullptr) {
        s->shedder->Bind(s->engine.get());
        if (s->obs != nullptr) s->shedder->set_obs(s->obs, i);
      }
    }
    if (opts_.guard.enabled) {
      s->guard = std::make_unique<OverloadGuard>(opts_.guard);
      s->guard->Attach(s->engine.get());
      if (s->obs != nullptr) s->guard->set_obs(s->obs, i);
    }
    shards.push_back(std::move(s));
  }

  ShardRunResult result;
  result.final_live_shards = live_shards_;
  if (Elastic() && opts_.metrics != nullptr) {
    shards[0]->obs->live_shards.Set(live_shards_);
  }
  const auto t0 = std::chrono::steady_clock::now();
  // Buffer each shard's substream in routing order — exactly the sequence
  // the parallel worker would pop from its queue. Saturation faults refuse
  // delivery here just as they refuse the parallel push. Resize anchors
  // segment the run: each anchor drains every buffer (the sequential
  // mirror of the parallel drain barrier — same engine states at the same
  // logical point), migrates, flips, and buffering resumes under the new
  // routing. Death faults mirror the parallel path with persistent
  // per-shard restart budgets across segments; the one deliberate
  // asymmetry stays as before: after abandonment, the parallel router
  // rejects events while the sequential path routes them and loses them.
  std::vector<std::vector<EventPtr>> buffers(shards.size());
  // Chunked like the parallel worker's PopBatch loop so the engine takes
  // the same batched predicate fast path; single-threaded, so the closing
  // EndBatch is safe here (the parallel worker must leave it to the next
  // BeginBatch).
  const auto drain_buffer = [&](ShardState& s, std::vector<EventPtr>* buffer) {
    for (size_t base = 0; base < buffer->size(); base += kConsumeBatch) {
      const size_t n = std::min(kConsumeBatch, buffer->size() - base);
      s.engine->BeginBatch(buffer->data() + base, n);
      for (size_t i = base; i < base + n; ++i) {
        const EventPtr& event = (*buffer)[i];
        if (s.seq_draining) {
          ++s.result.events_routed;
          ++s.result.events_lost;
          if (s.obs != nullptr) {
            s.obs->events_routed.Add();
            s.obs->events_lost.Add();
          }
          continue;
        }
        if (s.Consume(event)) {
          if (s.restarts < opts_.max_worker_restarts) {
            ++s.restarts;
            ++s.result.worker_restarts;
          } else {
            s.result.abandoned = true;
            s.seq_draining = true;
          }
        }
      }
    }
    s.engine->EndBatch();
    buffer->clear();
  };
  ResizeScript script(faults);
  std::vector<int> targets;
  for (const EventPtr& event : stream) {
    ++result.total_events;
    for (;;) {
      RouteEvent(*event, &targets);
      const int delta = script.Fire(event->seq(), targets, shards);
      if (delta == 0) break;
      const int new_live = ClampLiveShards(live_shards_ + delta);
      if (new_live == live_shards_) continue;
      const auto m0 = std::chrono::steady_clock::now();
      for (size_t i = 0; i < shards.size(); ++i) {
        drain_buffer(*shards[i], &buffers[i]);
      }
      const int old_live = live_shards_;
      MigrateState(&shards, old_live, new_live, &result);
      live_shards_ = new_live;
      const double pause_us = std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - m0)
                                  .count();
      RecordResize(&shards, old_live, new_live, event->seq(),
                   event->timestamp(), pause_us, &result);
    }
    if (opts_.ingest_tap) opts_.ingest_tap(event, targets);
    for (int t : targets) {
      ShardState& s = *shards[static_cast<size_t>(t)];
      if (faults != nullptr && faults->SaturatePush(t, event->seq())) {
        ++s.result.events_rejected;
        continue;
      }
      buffers[static_cast<size_t>(t)].push_back(event);
      ++s.pushed;
      ++result.routed_events;
    }
  }
  for (size_t i = 0; i < shards.size(); ++i) {
    drain_buffer(*shards[i], &buffers[i]);
    shards[i]->Finish();
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  result.final_live_shards = live_shards_;
  if (Elastic() && opts_.metrics != nullptr) {
    int64_t legacy = 0;
    for (size_t i = static_cast<size_t>(live_shards_); i < shards.size(); ++i) {
      legacy += static_cast<int64_t>(shards[i]->engine->store().arena().LiveBytes());
    }
    shards[0]->obs->arena_legacy_bytes.Set(legacy);
  }
  Merge(&shards, &result);
  if (result.shards_abandoned >= live_shards_ && opts_.num_shards > 0 &&
      result.total_events > 0) {
    return Status::Unavailable(
        "every shard worker died and exhausted its restart budget");
  }
  return result;
}

}  // namespace cepshed
