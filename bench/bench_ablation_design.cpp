// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Ablation benches for the design choices DESIGN.md calls out:
//  (a) exact DP vs. greedy shedding-set selection (§V-C approximation);
//  (b) hash-join indexes on/off, and expression keys on/off (§VI-A);
//  (c) online adaptation on/off under distribution drift (§V-B);
//  (d) the standing zero-class filter vs. trigger-only state shedding.

#include <chrono>

#include "bench/bench_util.h"
#include "src/shed/hybrid.h"

using namespace cepshed;
using namespace cepshed::bench;

namespace {

double WallSeconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
  // (a) DP vs greedy knapsack.
  {
    Header("Ablation (a)", "shedding-set solver: exact DP vs greedy (DS1/Q1, 50% bound)",
           "solver,recall,throughput_eps");
    for (KnapsackMode mode : {KnapsackMode::kDP, KnapsackMode::kGreedy}) {
      Ds1Options gen;
      gen.num_events = 20000;
      HarnessOptions opts;
      opts.solver = mode;
      auto exp = PrepareDs1(*queries::Q1("8ms"), gen, opts);
      const ExperimentResult r = exp.harness->RunBound(StrategyKind::kHybrid, 0.5);
      std::printf("%s,%.4f,%.0f\n", mode == KnapsackMode::kDP ? "DP" : "greedy",
                  r.quality.recall, r.throughput_eps);
    }
  }

  // (b) join indexes.
  {
    Header("Ablation (b)", "join indexes (DS1/Q1, exhaustive run)",
           "index_mode,wall_seconds,matches");
    const Schema schema = MakeDs1Schema();
    Ds1Options gen;
    gen.num_events = 20000;
    const EventStream stream = GenerateDs1(schema, gen);
    auto nfa = Nfa::Compile(*queries::Q1("8ms"), &schema);
    for (auto [label, use, expr] :
         {std::tuple{"none", false, false}, std::tuple{"attribute", true, false},
          std::tuple{"attribute+expression", true, true}}) {
      EngineOptions eopts;
      eopts.use_join_index = use;
      eopts.index_expression_keys = expr;
      size_t matches = 0;
      const double secs = WallSeconds([&] {
        Engine engine(*nfa, eopts);
        std::vector<Match> out;
        for (const EventPtr& e : stream) engine.Process(e, &out);
        matches = out.size();
      });
      std::printf("%s,%.3f,%zu\n", label, secs, matches);
    }
  }

  // (c) online adaptation under drift (the Fig. 12 setting, summarized).
  {
    Header("Ablation (c)", "online adaptation under a C.V distribution flip",
           "adaptation,post_flip_recall");
    for (bool adapt : {true, false}) {
      const Schema schema = MakeDs1Schema();
      Ds1Options gen;
      gen.num_events = 30000;
      gen.c_v_min = 2;
      gen.c_v_max = 10;
      gen.flip_at = 15000;
      Ds1Options train_gen = gen;
      train_gen.flip_at = 0;
      train_gen.num_events = 15000;
      train_gen.seed = 11;
      gen.seed = 12;
      const EventStream train = GenerateDs1(schema, train_gen);
      const EventStream test = GenerateDs1(schema, gen);
      HarnessOptions opts;
      opts.cost_model.enable_online_adaptation = adapt;
      ExperimentHarness harness(&schema, *queries::Q1("8ms"), opts);
      if (!harness.Prepare(train, test).ok()) return 1;
      const ExperimentResult r = harness.RunBound(StrategyKind::kHybrid, 0.4);
      // Recall over the post-flip half only.
      const auto q =
          ComputeQualityInRange(r.raw.matches, harness.truth(), 16000 * 10, 30000 * 10);
      std::printf("%s,%.4f\n", adapt ? "on" : "off", q.recall);
    }
  }

  // (d) standing zero-class filter vs trigger-only shedding.
  {
    Header("Ablation (d)", "standing zero-class filter (DS1/Q1, 50% bound)",
           "mode,recall,avg_latency");
    Ds1Options gen;
    gen.num_events = 20000;
    auto exp = PrepareDs1(*queries::Q1("8ms"), gen);
    // Full hybrid (standing filter on) via the harness.
    const ExperimentResult full = exp.harness->RunBound(StrategyKind::kHybrid, 0.5);
    std::printf("standing-filter,%.4f,%.0f\n", full.quality.recall, full.avg_latency);
    // Zero-release = hysteresis: the standing filter is dropped as soon as
    // the bound holds, reverting to trigger-only behaviour.
    CostModel model = exp.harness->model();
    HybridOptions hopts;
    hopts.theta = 0.5 * exp.harness->BaselineLatency();
    hopts.zero_release = 10.0;  // release immediately once mu <= theta*10... i.e. always
    HybridShedder shedder(&model, hopts);
    Engine engine(exp.harness->nfa(), exp.harness->options().engine);
    engine.set_classifier([&](const PartialMatch& pm) { return model.Classify(pm); });
    engine.set_pm_created_hook([&](const PartialMatch& pm, const PartialMatch* parent) {
      model.OnPmCreated(pm, parent, pm.last_ts);
    });
    engine.set_match_hook([&](const Match& m, const PartialMatch* parent) {
      model.OnMatch(m, parent, m.detected_at);
    });
    ShedRunner runner(&engine, &shedder, exp.harness->options().latency);
    const RunResult rr = runner.Run(*exp.test);
    const auto q = ComputeQuality(rr.matches, exp.harness->truth());
    std::printf("trigger-only,%.4f,%.0f\n", q.recall, rr.avg_latency);
  }
  return 0;
}
