// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Unit tests for the OverloadGuard degradation ladder: hysteresis
// (streaks, dead zone), hard memory budget, hash-drop determinism, and
// the eviction contract (utility order, witnesses untouchable).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/cep/engine.h"
#include "src/cep/nfa.h"
#include "src/cep/stream.h"
#include "src/runtime/overload_guard.h"
#include "src/workload/ds1.h"
#include "src/workload/queries.h"

namespace cepshed {
namespace {

/// Ladder driven purely by the queue signal: theta off, memory off,
/// every event is a check, short streaks.
OverloadGuard::Options LadderOptions() {
  OverloadGuard::Options o;
  o.enabled = true;
  o.theta = 0.0;
  o.check_every = 1;
  o.escalate_after = 2;
  o.recover_after = 3;
  o.shedding_drop_rate = 0.5;
  return o;
}

void ObserveN(OverloadGuard* guard, int n, size_t queue_size) {
  for (int i = 0; i < n; ++i) guard->Observe(0.0, queue_size, 100, 0);
}

TEST(OverloadGuardTest, DisabledGuardIsInert) {
  OverloadGuard guard(OverloadGuard::Options{});
  ASSERT_FALSE(guard.enabled());
  ObserveN(&guard, 100, 100);  // queue 100% full
  EXPECT_EQ(guard.level(), GuardLevel::kNormal);
  EXPECT_FALSE(guard.ShouldDropInput(1));
  EXPECT_EQ(guard.stats().events_observed, 0u);
  EXPECT_EQ(guard.stats().input_drops, 0u);
}

TEST(OverloadGuardTest, EscalatesOneRungPerHotStreak) {
  OverloadGuard guard(LadderOptions());
  ObserveN(&guard, 1, 100);
  EXPECT_EQ(guard.level(), GuardLevel::kNormal);  // streak of 1 < 2
  ObserveN(&guard, 1, 100);
  EXPECT_EQ(guard.level(), GuardLevel::kShedding);
  ObserveN(&guard, 2, 100);
  EXPECT_EQ(guard.level(), GuardLevel::kPanic);
  ObserveN(&guard, 2, 100);
  EXPECT_EQ(guard.level(), GuardLevel::kEmergency);
  ObserveN(&guard, 10, 100);  // the ladder tops out
  EXPECT_EQ(guard.level(), GuardLevel::kEmergency);
  EXPECT_EQ(guard.stats().escalations, 3u);
  EXPECT_EQ(guard.stats().peak_level, GuardLevel::kEmergency);
  EXPECT_EQ(guard.drop_rate(), 1.0);  // panic_drop_rate
}

TEST(OverloadGuardTest, RecoversStepwiseAfterCoolStreaks) {
  OverloadGuard guard(LadderOptions());
  ObserveN(&guard, 6, 100);  // up to emergency
  ASSERT_EQ(guard.level(), GuardLevel::kEmergency);
  ObserveN(&guard, 2, 0);
  EXPECT_EQ(guard.level(), GuardLevel::kEmergency);  // streak of 2 < 3
  ObserveN(&guard, 1, 0);
  EXPECT_EQ(guard.level(), GuardLevel::kPanic);
  ObserveN(&guard, 3, 0);
  EXPECT_EQ(guard.level(), GuardLevel::kShedding);
  ObserveN(&guard, 3, 0);
  EXPECT_EQ(guard.level(), GuardLevel::kNormal);
  EXPECT_EQ(guard.stats().de_escalations, 3u);
  EXPECT_EQ(guard.drop_rate(), 0.0);
  EXPECT_FALSE(guard.ShouldDropInput(42));
}

TEST(OverloadGuardTest, DeadZoneHoldsTheCurrentRung) {
  OverloadGuard guard(LadderOptions());
  ObserveN(&guard, 2, 100);
  ASSERT_EQ(guard.level(), GuardLevel::kShedding);
  const uint64_t esc = guard.stats().escalations;
  // Fill 0.5 sits between queue_low=0.25 and queue_high=0.75: neither
  // streak advances, however long the signal lingers there.
  ObserveN(&guard, 500, 50);
  EXPECT_EQ(guard.level(), GuardLevel::kShedding);
  EXPECT_EQ(guard.stats().escalations, esc);
  EXPECT_EQ(guard.stats().de_escalations, 0u);
  // An interrupted cool streak restarts from zero.
  ObserveN(&guard, 2, 0);
  ObserveN(&guard, 1, 50);
  ObserveN(&guard, 2, 0);
  EXPECT_EQ(guard.level(), GuardLevel::kShedding);
}

TEST(OverloadGuardTest, PanicDropsEveryInput) {
  OverloadGuard guard(LadderOptions());
  ObserveN(&guard, 4, 100);
  ASSERT_EQ(guard.level(), GuardLevel::kPanic);
  for (uint64_t seq = 0; seq < 1000; ++seq) EXPECT_TRUE(guard.ShouldDropInput(seq));
  EXPECT_EQ(guard.stats().input_drops, 1000u);
}

TEST(OverloadGuardTest, SheddingDropsAreAHashOfSeedAndSequence) {
  OverloadGuard::Options options = LadderOptions();
  options.shedding_drop_rate = 0.5;
  OverloadGuard a(options);
  OverloadGuard b(options);
  ObserveN(&a, 2, 100);
  ObserveN(&b, 2, 100);
  ASSERT_EQ(a.level(), GuardLevel::kShedding);
  ASSERT_EQ(b.level(), GuardLevel::kShedding);
  uint64_t drops = 0;
  for (uint64_t seq = 0; seq < 10000; ++seq) {
    const bool drop = a.ShouldDropInput(seq);
    EXPECT_EQ(drop, b.ShouldDropInput(seq)) << "seq " << seq;
    drops += drop ? 1 : 0;
  }
  // An unbiased hash at rate 0.5 stays well inside (0.4, 0.6) over 10k.
  EXPECT_GT(drops, 4000u);
  EXPECT_LT(drops, 6000u);
}

TEST(OverloadGuardTest, ResetReturnsToNormal) {
  OverloadGuard guard(LadderOptions());
  ObserveN(&guard, 6, 100);
  ASSERT_EQ(guard.level(), GuardLevel::kEmergency);
  guard.Reset();
  EXPECT_EQ(guard.level(), GuardLevel::kNormal);
  EXPECT_EQ(guard.drop_rate(), 0.0);
  EXPECT_EQ(guard.stats().escalations, 0u);
  EXPECT_FALSE(guard.ShouldDropInput(7));
}

// ---------------------------------------------------------------------------
// Engine-backed behavior: budget enforcement and the eviction contract.

class GuardEvictionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = MakeDs1Schema();
    Ds1Options ds1;
    ds1.num_events = 2000;
    ds1.event_gap = 10;
    ds1.seed = 11;
    stream_ = std::make_unique<EventStream>(GenerateDs1(schema_, ds1));
  }

  std::shared_ptr<const Nfa> CompileOrDie(const Result<Query>& q) {
    EXPECT_TRUE(q.ok());
    auto nfa = Nfa::Compile(*q, &schema_);
    EXPECT_TRUE(nfa.ok()) << nfa.status().message();
    return *nfa;
  }

  Schema schema_;
  std::unique_ptr<EventStream> stream_;
};

TEST_F(GuardEvictionTest, HardBudgetIsEnforcedEveryEvent) {
  Engine engine(CompileOrDie(queries::Q1()), EngineOptions{});

  // Find the natural peak first, then replay against a quarter of it.
  size_t natural_peak = 0;
  std::vector<Match> sink;
  for (const EventPtr& e : *stream_) {
    engine.Process(e, &sink);
    natural_peak = std::max(natural_peak, engine.ApproxStateBytes());
  }
  ASSERT_GT(natural_peak, 0u);

  Engine bounded(CompileOrDie(queries::Q1()), EngineOptions{});
  OverloadGuard::Options options;
  options.enabled = true;
  options.memory_budget_bytes = natural_peak / 4;
  options.check_every = 1u << 30;  // ladder checks out of the picture
  OverloadGuard guard(options);
  guard.Attach(&bounded);

  sink.clear();
  for (const EventPtr& e : *stream_) {
    bounded.Process(e, &sink);
    guard.Observe(0.0, 0, 0, e->timestamp());
    // The hard cap runs every event: state never *stays* over budget.
    ASSERT_LE(bounded.ApproxStateBytes(), options.memory_budget_bytes);
  }
  EXPECT_GT(guard.stats().budget_trips, 0u);
  EXPECT_GT(guard.stats().emergency_evictions, 0u);
  EXPECT_EQ(guard.level(), GuardLevel::kEmergency);  // ladder never ran
  EXPECT_GT(guard.stats().peak_state_bytes, options.memory_budget_bytes);
  EXPECT_LE(guard.stats().peak_state_bytes, natural_peak);
}

TEST_F(GuardEvictionTest, EvictionFollowsTheUtilityOrder) {
  Engine engine(CompileOrDie(queries::Q1()), EngineOptions{});
  std::vector<Match> sink;
  for (size_t i = 0; i < stream_->size() && engine.NumPartialMatches() < 16; ++i) {
    engine.Process((*stream_)[i], &sink);
  }
  ASSERT_GE(engine.NumPartialMatches(), 16u);

  std::vector<uint64_t> ids;
  engine.store().ForEachAlive([&](PartialMatch* pm) { ids.push_back(pm->id); });
  std::sort(ids.begin(), ids.end());

  // Utility = id, so the three lowest ids must die first.
  const size_t killed = engine.ShedLowestUtility(
      3, 0, [](const PartialMatch& pm) { return static_cast<double>(pm.id); });
  EXPECT_EQ(killed, 3u);

  std::vector<uint64_t> alive;
  engine.store().ForEachAlive([&](PartialMatch* pm) { alive.push_back(pm->id); });
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(std::count(alive.begin(), alive.end(), ids[i]), 0)
        << "lowest-utility pm " << ids[i] << " survived";
  }
  EXPECT_EQ(alive.size(), ids.size() - 3);
}

TEST_F(GuardEvictionTest, NegationWitnessesAreNeverEvicted) {
  Engine engine(CompileOrDie(queries::Q4()), EngineOptions{});
  std::vector<Match> sink;
  for (const EventPtr& e : *stream_) engine.Process(e, &sink);
  // Q4 carries a negated component, so the store holds witnesses.
  ASSERT_GT(engine.NumWitnesses(), 0u);
  const size_t witnesses = engine.NumWitnesses();

  // The most aggressive eviction the guard can issue: kill everything.
  engine.ShedLowestUtility(engine.NumPartialMatches(), 0);
  EXPECT_EQ(engine.NumPartialMatches(), 0u);
  EXPECT_EQ(engine.NumWitnesses(), witnesses);
}

}  // namespace
}  // namespace cepshed
