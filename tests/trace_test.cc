// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Trace recorder/replayer tests: exact round-trips over every value type,
// the headline record→replay determinism property (a faulted, shedded,
// guarded multi-shard run captured via the ingest tap replays bit-for-bit
// — matches, stats, and metrics snapshots — across two independent
// replays), prefix reads for trace minimization, and rejection of
// corrupted, truncated, and never-finalized captures. Plus structural
// checks of the hostile generators the lab records.

#include "src/workload/lab/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/runtime/shard_runtime.h"
#include "src/shed/shedder.h"
#include "src/workload/ds1.h"
#include "src/workload/lab/hostile.h"
#include "src/workload/queries.h"

namespace cepshed {
namespace lab {
namespace {

/// Unique-ish temp path per test; files are small and removed on success.
std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Representation equality — stricter than Value::operator==, which has
/// SQL semantics (null != null, cross-type numeric promotion). Replay
/// fidelity is about bits: -0.0 must stay -0.0, null must stay null.
void ExpectValueIdentical(const Value& x, const Value& y) {
  ASSERT_EQ(x.type(), y.type());
  switch (x.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      EXPECT_EQ(x.AsInt(), y.AsInt());
      break;
    case ValueType::kDouble: {
      const double xd = x.AsDouble(), yd = y.AsDouble();
      uint64_t xb, yb;
      std::memcpy(&xb, &xd, sizeof(xb));
      std::memcpy(&yb, &yd, sizeof(yb));
      EXPECT_EQ(xb, yb);
      break;
    }
    case ValueType::kString:
      EXPECT_EQ(x.AsString(), y.AsString());
      break;
  }
}

void ExpectStreamsEqual(const EventStream& a, const EventStream& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    const Event& ea = *a[i];
    const Event& eb = *b[i];
    EXPECT_EQ(ea.type(), eb.type());
    EXPECT_EQ(ea.timestamp(), eb.timestamp());
    EXPECT_EQ(ea.seq(), eb.seq());
    ASSERT_EQ(ea.num_attrs(), eb.num_attrs());
    for (size_t k = 0; k < ea.num_attrs(); ++k) {
      ExpectValueIdentical(ea.attr(static_cast<int>(k)),
                           eb.attr(static_cast<int>(k)));
    }
  }
}

TEST(TraceTest, RoundTripsEveryValueType) {
  Schema schema;
  (void)schema.AddEventType("T");
  (void)schema.AddEventType("U");
  (void)schema.AddAttribute("i", ValueType::kInt);
  (void)schema.AddAttribute("d", ValueType::kDouble);
  (void)schema.AddAttribute("s", ValueType::kString);

  EventStream stream(&schema);
  const auto emit = [&](int type, Timestamp ts, Value i, Value d, Value s) {
    ASSERT_TRUE(stream.Emit(type, ts, {std::move(i), std::move(d), std::move(s)}).ok());
  };
  emit(0, -500, Value(int64_t{-42}), Value(3.25), Value(std::string("hello")));
  emit(1, -500, Value(std::numeric_limits<int64_t>::min()), Value(-0.0),
       Value(std::string()));  // empty string, negative zero
  emit(0, 0, Value(), Value(), Value());  // all null
  emit(1, 7,
       Value(std::numeric_limits<int64_t>::max()),
       Value(std::numeric_limits<double>::infinity()),
       Value(std::string("line\nbreak\0x", 12)));  // embedded NUL + newline

  const std::string path = TempPath("roundtrip.trace");
  ASSERT_TRUE(WriteTrace(stream, path).ok());
  auto replayed = ReadTrace(path);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();

  // The embedded schema reconstructs exactly.
  ASSERT_EQ(replayed->schema->num_event_types(), schema.num_event_types());
  EXPECT_EQ(replayed->schema->EventTypeName(1), "U");
  ASSERT_EQ(replayed->schema->num_attributes(), schema.num_attributes());
  EXPECT_EQ(replayed->schema->AttributeIndex("d"), 1);

  ExpectStreamsEqual(stream, replayed->stream);
  std::remove(path.c_str());
}

TEST(TraceTest, EmptyClosedTraceIsValid) {
  const Schema schema = MakeDs1Schema();
  const std::string path = TempPath("empty.trace");
  auto writer = TraceWriter::Open(path, schema);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Close().ok());
  auto replayed = ReadTrace(path);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed->stream.size(), 0u);
  std::remove(path.c_str());
}

TEST(TraceTest, PrefixReadSupportsMinimization) {
  const Schema schema = MakeDs1Schema();
  Ds1Options ds1;
  ds1.num_events = 500;
  ds1.seed = 3;
  const EventStream stream = GenerateDs1(schema, ds1);
  const std::string path = TempPath("prefix.trace");
  ASSERT_TRUE(WriteTrace(stream, path).ok());

  auto prefix = ReadTrace(path, 100);
  ASSERT_TRUE(prefix.ok()) << prefix.status().ToString();
  ASSERT_EQ(prefix->stream.size(), 100u);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(prefix->stream[i]->seq(), stream[i]->seq());
    EXPECT_EQ(prefix->stream[i]->timestamp(), stream[i]->timestamp());
  }
  // Asking for more events than recorded returns them all.
  auto all = ReadTrace(path, 10'000);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->stream.size(), 500u);
  std::remove(path.c_str());
}

TEST(TraceTest, RejectsCorruptionTruncationAndBadMagic) {
  const Schema schema = MakeDs1Schema();
  Ds1Options ds1;
  ds1.num_events = 200;
  ds1.seed = 5;
  const EventStream stream = GenerateDs1(schema, ds1);
  const std::string path = TempPath("corrupt.trace");
  ASSERT_TRUE(WriteTrace(stream, path).ok());

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 64u);

  const auto write_and_read = [&](const std::string& data) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << data;
    out.close();
    return ReadTrace(path);
  };

  {  // flip one byte deep in the event section -> checksum mismatch
    std::string bad = bytes;
    bad[bad.size() - 10] = static_cast<char>(bad[bad.size() - 10] ^ 0x40);
    EXPECT_FALSE(write_and_read(bad).ok());
  }
  {  // truncate mid-event
    EXPECT_FALSE(write_and_read(bytes.substr(0, bytes.size() - 7)).ok());
  }
  {  // bad magic
    std::string bad = bytes;
    bad[0] = 'X';
    EXPECT_FALSE(write_and_read(bad).ok());
  }
  std::remove(path.c_str());
}

TEST(TraceTest, RejectsNeverFinalizedCapture) {
  const Schema schema = MakeDs1Schema();
  Ds1Options ds1;
  ds1.num_events = 50;
  const EventStream stream = GenerateDs1(schema, ds1);
  const std::string path = TempPath("unfinalized.trace");
  {
    auto writer = TraceWriter::Open(path, schema);
    ASSERT_TRUE(writer.ok());
    for (const EventPtr& e : stream) ASSERT_TRUE((*writer)->Append(*e).ok());
    // No Close(): simulates a crash mid-capture.
  }
  auto replayed = ReadTrace(path);
  EXPECT_FALSE(replayed.ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// The headline property: record a hostile, faulted, shedded, guarded
// multi-shard run through the ingest tap; replay the capture twice through
// fresh runtimes; everything observable must agree bit for bit.

uint64_t MixSeq(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Content-hash shedder (the differential suite's): decisions are pure
/// functions of event seqs, so they survive record/replay unchanged.
class HashDropShedder : public Shedder {
 public:
  explicit HashDropShedder(uint64_t seed) : seed_(seed) {}
  std::string Name() const override { return "HashDrop"; }
  bool FilterEvent(const Event& event) override {
    if (MixSeq(seed_ ^ event.seq()) < kCut) return DropEvent();
    return false;
  }
  void AfterEvent(Timestamp, double) override {}

 private:
  static constexpr uint64_t kCut =
      static_cast<uint64_t>(0.10 * static_cast<double>(
                                       std::numeric_limits<uint64_t>::max()));
  uint64_t seed_;
};

void ExpectStatsEqual(const EngineStats& a, const EngineStats& b) {
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.pms_created, b.pms_created);
  EXPECT_EQ(a.matches_emitted, b.matches_emitted);
  EXPECT_EQ(a.matches_vetoed, b.matches_vetoed);
  EXPECT_EQ(a.pms_evicted, b.pms_evicted);
  EXPECT_EQ(a.predicate_evals, b.predicate_evals);
  EXPECT_EQ(a.total_cost, b.total_cost);
}

void ExpectRunsIdentical(const ShardRunResult& a, const ShardRunResult& b) {
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.routed_events, b.routed_events);
  EXPECT_EQ(a.dropped_events, b.dropped_events);
  EXPECT_EQ(a.shed_pms, b.shed_pms);
  EXPECT_EQ(a.lost_events, b.lost_events);
  EXPECT_EQ(a.worker_restarts, b.worker_restarts);
  EXPECT_EQ(a.resizes, b.resizes);
  EXPECT_EQ(a.migrated_pms, b.migrated_pms);
  EXPECT_EQ(a.migrated_bytes, b.migrated_bytes);
  EXPECT_EQ(a.final_live_shards, b.final_live_shards);
  EXPECT_EQ(a.guard_input_drops, b.guard_input_drops);
  EXPECT_EQ(a.guard_trims, b.guard_trims);
  EXPECT_EQ(a.guard_evictions, b.guard_evictions);
  ExpectStatsEqual(a.stats, b.stats);
  ASSERT_EQ(a.matches.size(), b.matches.size());
  for (size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].detected_at, b.matches[i].detected_at);
    EXPECT_EQ(a.matches[i].Key(), b.matches[i].Key());
  }
}

/// Wall-clock-free equality of two metrics snapshots: counters, gauges,
/// the (cost-unit) event-cost histogram, and the full audit trail. The
/// wall-time histograms are inherently nondeterministic and excluded.
void ExpectSnapshotsEqual(const obs::RegistrySnapshot& a,
                          const obs::RegistrySnapshot& b) {
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (size_t i = 0; i < a.shards.size(); ++i) {
    SCOPED_TRACE("shard " + std::to_string(i));
    const obs::ShardObsSnapshot& x = a.shards[i];
    const obs::ShardObsSnapshot& y = b.shards[i];
    EXPECT_EQ(x.events_routed, y.events_routed);
    EXPECT_EQ(x.events_processed, y.events_processed);
    EXPECT_EQ(x.events_dropped_shedder, y.events_dropped_shedder);
    EXPECT_EQ(x.events_dropped_guard, y.events_dropped_guard);
    EXPECT_EQ(x.events_lost, y.events_lost);
    EXPECT_EQ(x.matches_emitted, y.matches_emitted);
    EXPECT_EQ(x.pms_shed, y.pms_shed);
    EXPECT_EQ(x.guard_transitions, y.guard_transitions);
    EXPECT_EQ(x.guard_level, y.guard_level);
    EXPECT_EQ(x.state_bytes, y.state_bytes);
    EXPECT_EQ(x.arena_live_bytes, y.arena_live_bytes);
    EXPECT_EQ(x.arena_capacity_bytes, y.arena_capacity_bytes);
    EXPECT_EQ(x.flat_cache_entries, y.flat_cache_entries);
    EXPECT_EQ(x.migrations_total, y.migrations_total);
    EXPECT_EQ(x.migrated_pms, y.migrated_pms);
    EXPECT_EQ(x.migrated_bytes, y.migrated_bytes);
    EXPECT_EQ(x.live_shards, y.live_shards);
    EXPECT_EQ(x.arena_legacy_bytes, y.arena_legacy_bytes);
    EXPECT_EQ(x.event_cost.buckets, y.event_cost.buckets);
    EXPECT_EQ(x.event_cost.count, y.event_cost.count);
    EXPECT_EQ(x.event_cost.sum, y.event_cost.sum);
    ASSERT_EQ(x.audit.size(), y.audit.size());
    for (size_t k = 0; k < x.audit.size(); ++k) {
      EXPECT_EQ(x.audit[k].index, y.audit[k].index);
      EXPECT_EQ(x.audit[k].timestamp, y.audit[k].timestamp);
      EXPECT_EQ(x.audit[k].kind, y.audit[k].kind);
      EXPECT_EQ(x.audit[k].class_label, y.audit[k].class_label);
      EXPECT_EQ(x.audit[k].mu, y.audit[k].mu);
      EXPECT_EQ(x.audit[k].detail, y.audit[k].detail);
    }
  }
}

TEST(TraceReplayTest, FaultedSheddedShardedRunReplaysBitForBit) {
  const Schema schema = MakeDs1Schema();
  // A hostile burst stream aimed at shard 2 of 4 — the recording subject.
  BurstOptions burst;
  burst.num_events = 4000;
  burst.num_ids = 16;
  burst.num_shards = 4;
  burst.target_shard = 2;
  burst.anchor_schedule = "burst:at=1000,count=1500,factor=6";
  burst.seed = 29;
  auto hostile = GenerateBurstStream(schema, burst);
  ASSERT_TRUE(hostile.ok()) << hostile.status().ToString();

  auto q = queries::Q1();
  ASSERT_TRUE(q.ok());
  auto nfa = Nfa::Compile(*q, &schema);
  ASSERT_TRUE(nfa.ok());

  auto faults = FaultInjector::Parse(
      "burst:shard=2,at=1200,count=900,factor=4;"
      "skew:shard=1,at=500,count=600,us=250",
      77);
  ASSERT_TRUE(faults.ok()) << faults.status().ToString();

  const auto make_options = [&](obs::MetricsRegistry* metrics) {
    ShardRuntimeOptions opts;
    opts.num_shards = 4;
    opts.partition_attr = schema.AttributeIndex("ID");
    opts.faults = &*faults;
    opts.metrics = metrics;
    opts.guard.enabled = true;
    opts.guard.memory_budget_bytes = 1u << 20;
    return opts;
  };
  const ShardRuntime::ShedderFactory factory = [](int) {
    return std::make_unique<HashDropShedder>(17);
  };

  // --- record ---
  const std::string path = TempPath("sharded.trace");
  obs::MetricsRegistry record_metrics;
  ShardRuntimeOptions opts = make_options(&record_metrics);
  auto writer = TraceWriter::Open(path, schema, /*with_routes=*/true);
  ASSERT_TRUE(writer.ok());
  opts.ingest_tap = [&](const EventPtr& event, const std::vector<int>& targets) {
    ASSERT_TRUE((*writer)->Append(*event, targets).ok());
  };
  auto runtime = ShardRuntime::Create(*nfa, opts);
  ASSERT_TRUE(runtime.ok()) << runtime.status().message();
  auto recorded = (*runtime)->RunSequential(*hostile, factory);
  ASSERT_TRUE(recorded.ok()) << recorded.status().message();
  ASSERT_TRUE((*writer)->Close().ok());
  EXPECT_EQ((*writer)->num_events(), hostile->size());
  ASSERT_GT(recorded->matches.size(), 0u) << "degenerate recording";
  EXPECT_GT(recorded->dropped_events, 0u) << "shedding never engaged";

  // --- replay twice, each through a fresh runtime and registry ---
  auto capture = ReadTrace(path);
  ASSERT_TRUE(capture.ok()) << capture.status().ToString();
  ASSERT_EQ(capture->stream.size(), hostile->size());
  ASSERT_EQ(capture->routes.size(), hostile->size());
  ExpectStreamsEqual(*hostile, capture->stream);

  obs::RegistrySnapshot snapshots[2];
  ShardRunResult results[2];
  for (int r = 0; r < 2; ++r) {
    obs::MetricsRegistry metrics;
    ShardRuntimeOptions replay_opts = make_options(&metrics);
    auto replay_runtime = ShardRuntime::Create(*nfa, replay_opts);
    ASSERT_TRUE(replay_runtime.ok());
    auto replayed = (*replay_runtime)->RunSequential(capture->stream, factory);
    ASSERT_TRUE(replayed.ok()) << replayed.status().message();
    results[r] = std::move(*replayed);
    snapshots[r] = metrics.Snapshot();

    // Recorded routes must be exactly what a fresh runtime computes.
    std::vector<int> targets;
    for (size_t i = 0; i < capture->stream.size(); ++i) {
      targets.clear();
      (*replay_runtime)->RouteEvent(*capture->stream[i], &targets);
      ASSERT_EQ(capture->routes[i], targets) << "event " << i;
    }
  }

  ExpectRunsIdentical(results[0], results[1]);
  ExpectRunsIdentical(results[0], *recorded);
  ExpectSnapshotsEqual(snapshots[0], snapshots[1]);
  ExpectSnapshotsEqual(snapshots[0], record_metrics.Snapshot());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// The elastic twin of the headline property: a faulted run that resizes
// mid-stream records its scale schedule into the trace; replaying the
// capture — recorded resizes re-applied as scripted anchors — reproduces
// the run bit for bit, metrics snapshots included.

TEST(TraceReplayTest, ResizedRunReplaysViaTheRecordedScaleSchedule) {
  const Schema schema = MakeDs1Schema();
  Ds1Options ds1;
  ds1.num_events = 3000;
  ds1.event_gap = 10;
  ds1.seed = 11;
  const EventStream stream = GenerateDs1(schema, ds1);

  auto q = queries::Q1();
  ASSERT_TRUE(q.ok());
  auto nfa = Nfa::Compile(*q, &schema);
  ASSERT_TRUE(nfa.ok());

  // Non-resize chaos shared by the recording and the replay.
  const std::string kChaos = "skew:at=100,count=500,us=250;death:shard=1,at=50";
  auto record_faults =
      FaultInjector::Parse(kChaos + ";resize:at=900,delta=+2;resize:at=2000,delta=-1");
  ASSERT_TRUE(record_faults.ok()) << record_faults.status().ToString();

  const auto make_options = [&](const FaultInjector* faults,
                                obs::MetricsRegistry* metrics) {
    ShardRuntimeOptions opts;
    opts.num_shards = 2;
    opts.partition_attr = schema.AttributeIndex("ID");
    opts.reshard.max_shards = 4;
    opts.faults = faults;
    opts.metrics = metrics;
    return opts;
  };
  const ShardRuntime::ShedderFactory factory = [](int) {
    return std::make_unique<HashDropShedder>(23);
  };

  // --- record: events + routes via the ingest tap, resizes via the
  // resize tap ---
  const std::string path = TempPath("resized.trace");
  obs::MetricsRegistry record_metrics;
  ShardRuntimeOptions opts = make_options(&*record_faults, &record_metrics);
  auto writer = TraceWriter::Open(path, schema, /*with_routes=*/true);
  ASSERT_TRUE(writer.ok());
  opts.ingest_tap = [&](const EventPtr& event, const std::vector<int>& targets) {
    ASSERT_TRUE((*writer)->Append(*event, targets).ok());
  };
  opts.resize_tap = [&](uint64_t seq, int old_shards, int new_shards) {
    (*writer)->RecordResize(seq, old_shards, new_shards);
  };
  auto runtime = ShardRuntime::Create(*nfa, opts);
  ASSERT_TRUE(runtime.ok()) << runtime.status().message();
  auto recorded = (*runtime)->RunSequential(stream, factory);
  ASSERT_TRUE(recorded.ok()) << recorded.status().message();
  ASSERT_TRUE((*writer)->Close().ok());
  ASSERT_EQ(recorded->resizes, 2u);
  ASSERT_GT(recorded->migrated_pms, 0u);
  ASSERT_GT(recorded->matches.size(), 0u) << "degenerate recording";

  // --- the capture carries the executed schedule ---
  auto capture = ReadTrace(path);
  ASSERT_TRUE(capture.ok()) << capture.status().ToString();
  const std::vector<TraceResize> expected = {{900, 2, 4}, {2000, 4, 3}};
  ASSERT_EQ(capture->resizes, expected);
  EXPECT_EQ(ResizeScheduleSpec(capture->resizes),
            "resize:at=900,delta=2;resize:at=2000,delta=-1");
  ExpectStreamsEqual(stream, capture->stream);

  // --- replay: recorded resizes become scripted anchors; route choices
  // must retrace the capture through both flips ---
  auto replay_faults =
      FaultInjector::Parse(kChaos + ";" + ResizeScheduleSpec(capture->resizes));
  ASSERT_TRUE(replay_faults.ok()) << replay_faults.status().ToString();
  obs::MetricsRegistry replay_metrics;
  ShardRuntimeOptions replay_opts = make_options(&*replay_faults, &replay_metrics);
  size_t at = 0;
  replay_opts.ingest_tap = [&](const EventPtr&, const std::vector<int>& targets) {
    ASSERT_LT(at, capture->routes.size());
    ASSERT_EQ(targets, capture->routes[at]) << "event " << at;
    ++at;
  };
  auto replay_runtime = ShardRuntime::Create(*nfa, replay_opts);
  ASSERT_TRUE(replay_runtime.ok());
  auto replayed = (*replay_runtime)->RunSequential(capture->stream, factory);
  ASSERT_TRUE(replayed.ok()) << replayed.status().message();
  EXPECT_EQ(at, capture->routes.size());

  ExpectRunsIdentical(*recorded, *replayed);
  ExpectSnapshotsEqual(record_metrics.Snapshot(), replay_metrics.Snapshot());
  std::remove(path.c_str());
}

TEST(TraceTest, ResizeSectionCorruptionIsCaughtByTheChecksum) {
  const Schema schema = MakeDs1Schema();
  Ds1Options ds1;
  ds1.num_events = 20;
  const EventStream stream = GenerateDs1(schema, ds1);
  const std::string path = TempPath("resized_corrupt.trace");
  {
    auto writer = TraceWriter::Open(path, schema);
    ASSERT_TRUE(writer.ok());
    for (const EventPtr& e : stream) ASSERT_TRUE((*writer)->Append(*e).ok());
    (*writer)->RecordResize(10, 2, 3);
    ASSERT_TRUE((*writer)->Close().ok());
  }
  ASSERT_TRUE(ReadTrace(path).ok());

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  // The resize section is the last four bytes (count, seq, old, new);
  // flip the seq byte: the entry stays well-formed, so only the checksum
  // can catch it.
  std::string bad = bytes;
  bad[bad.size() - 3] = static_cast<char>(bad[bad.size() - 3] ^ 0x01);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bad;
  }
  auto replayed = ReadTrace(path);
  EXPECT_FALSE(replayed.ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Hostile generator structure.

TEST(HostileTest, DriftMovesTheCvRange) {
  const Schema schema = MakeDs1Schema();
  DriftOptions options;
  options.num_events = 10000;
  options.drift_begin = 3000;
  options.drift_end = 7000;
  const EventStream stream = GenerateDriftStream(schema, options);
  ASSERT_EQ(stream.size(), options.num_events);
  const int c_type = schema.EventTypeId("C");
  const int v_attr = schema.AttributeIndex("V");
  for (size_t i = 0; i < stream.size(); ++i) {
    const Event& e = *stream[i];
    if (e.type() != c_type) continue;
    const int64_t v = e.attr(v_attr).AsInt();
    if (i < options.drift_begin) {
      EXPECT_GE(v, options.c_v_min_start);
      EXPECT_LE(v, options.c_v_max_start);
    } else if (i >= options.drift_end) {
      EXPECT_GE(v, options.c_v_min_end);
      EXPECT_LE(v, options.c_v_max_end);
    }
  }
  // Determinism: same options, same stream.
  ExpectStreamsEqual(stream, GenerateDriftStream(schema, options));
}

TEST(HostileTest, BurstConcentratesOnVictimShard) {
  const Schema schema = MakeDs1Schema();
  BurstOptions options;
  options.num_events = 12000;
  options.num_shards = 4;
  options.target_shard = 3;
  options.anchor_schedule = "burst:at=4000,count=4000,factor=10";
  const auto stream = GenerateBurstStream(schema, options);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  const int id_attr = schema.AttributeIndex("ID");
  size_t on_victim = 0;
  for (size_t i = 4000; i < 8000; ++i) {
    if (ShardRuntime::ShardOfKey((*stream)[i]->attr(id_attr), 4) == 3) {
      ++on_victim;
    }
  }
  // bias 0.95 says ~95% of burst events hash to the victim shard.
  EXPECT_GT(on_victim, 3500u);
  // Burst windows compress time: the burst segment must span far less
  // event time than the same-length calm prefix.
  const Timestamp calm_span = (*stream)[4000]->timestamp() - (*stream)[0]->timestamp();
  const Timestamp burst_span =
      (*stream)[8000]->timestamp() - (*stream)[4000]->timestamp();
  EXPECT_LT(burst_span * 4, calm_span);
}

TEST(HostileTest, BurstRejectsBadScheduleAndGeometry) {
  const Schema schema = MakeDs1Schema();
  {
    BurstOptions options;
    options.anchor_schedule = "burst:at=nope";
    EXPECT_FALSE(GenerateBurstStream(schema, options).ok());
  }
  {
    BurstOptions options;
    options.anchor_schedule = "stall:shard=0,at=10,us=5";  // no burst entry
    EXPECT_FALSE(GenerateBurstStream(schema, options).ok());
  }
  {
    BurstOptions options;
    options.target_shard = 9;
    options.num_shards = 4;
    EXPECT_FALSE(GenerateBurstStream(schema, options).ok());
  }
}

TEST(HostileTest, KleeneBombBuildsCorrelatedRuns) {
  const Schema schema = MakeDs1Schema();
  KleeneBombOptions options;
  options.num_events = 5000;
  const EventStream stream = GenerateKleeneBomb(schema, options);
  ASSERT_EQ(stream.size(), options.num_events);
  const int a_type = schema.EventTypeId("A");
  size_t a_count = 0;
  size_t longest_same_key_run = 0, current = 0;
  int64_t last_id = -1, last_v = -1;
  const int id_attr = schema.AttributeIndex("ID");
  const int v_attr = schema.AttributeIndex("V");
  for (const EventPtr& e : stream) {
    if (e->type() != a_type) continue;
    ++a_count;
    const int64_t id = e->attr(id_attr).AsInt();
    const int64_t v = e->attr(v_attr).AsInt();
    if (id == last_id && v == last_v) {
      ++current;
    } else {
      current = 1;
      last_id = id;
      last_v = v;
    }
    longest_same_key_run = std::max(longest_same_key_run, current);
  }
  // A events dominate and arrive in long same-(ID,V) runs.
  EXPECT_GT(a_count, stream.size() * 8 / 10);
  EXPECT_GE(longest_same_key_run, options.run_length);
}

}  // namespace
}  // namespace lab
}  // namespace cepshed
