// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Recursive-descent parser for the SASE-style query language used in the
// paper's listings. Produces an unresolved Query; name resolution happens
// in Query::Validate / Nfa::Compile against a schema.
//
// Grammar sketch:
//   query    := PATTERN SEQ '(' elem (',' elem)* ')' [WHERE disj] WITHIN dur
//   elem     := ['!'|'¬'|NOT] TYPE ['+' ['{' INT [',' [INT]] '}']] VAR ['[' ']']
//   disj     := conj (OR conj)*
//   conj     := cmp (AND cmp)*
//   cmp      := [NOT] add [ ('='|'!='|'<'|'<='|'>'|'>=') add
//                          | (IN|'∈') '{' literal (',' literal)* '}' ]
//   add      := mul (('+'|'-') mul)*
//   mul      := unary (('*'|'/'|'%') unary)*
//   unary    := ['-'] primary
//   primary  := literal | '(' disj ')' | SQRT '(' disj ')' | ABS '(' disj ')'
//             | (AVG|SUM|MIN|MAX|COUNT) '(' aggarg ')' | attr
//   aggarg   := VAR '[' ']' '.' ATTR          (Kleene aggregate)
//             | disj (',' disj)*              (AVG only: n-ary mean)
//   attr     := VAR ['[' (i | i'+'1 | first | last) ']'] '.' ATTR
//   dur      := NUMBER (us|ms|s|min|m|h)

#ifndef CEPSHED_QUERY_PARSER_H_
#define CEPSHED_QUERY_PARSER_H_

#include <string_view>

#include "src/cep/pattern.h"
#include "src/common/result.h"

namespace cepshed {

/// \brief Parses a SASE-style query string into an (unresolved) Query.
Result<Query> ParseQuery(std::string_view text);

}  // namespace cepshed

#endif  // CEPSHED_QUERY_PARSER_H_
