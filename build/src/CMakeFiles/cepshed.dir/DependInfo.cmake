
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cep/engine.cc" "src/CMakeFiles/cepshed.dir/cep/engine.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/cep/engine.cc.o.d"
  "/root/repo/src/cep/event.cc" "src/CMakeFiles/cepshed.dir/cep/event.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/cep/event.cc.o.d"
  "/root/repo/src/cep/expr.cc" "src/CMakeFiles/cepshed.dir/cep/expr.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/cep/expr.cc.o.d"
  "/root/repo/src/cep/nfa.cc" "src/CMakeFiles/cepshed.dir/cep/nfa.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/cep/nfa.cc.o.d"
  "/root/repo/src/cep/partial_match.cc" "src/CMakeFiles/cepshed.dir/cep/partial_match.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/cep/partial_match.cc.o.d"
  "/root/repo/src/cep/pattern.cc" "src/CMakeFiles/cepshed.dir/cep/pattern.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/cep/pattern.cc.o.d"
  "/root/repo/src/cep/schema.cc" "src/CMakeFiles/cepshed.dir/cep/schema.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/cep/schema.cc.o.d"
  "/root/repo/src/cep/stream.cc" "src/CMakeFiles/cepshed.dir/cep/stream.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/cep/stream.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/cepshed.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/cepshed.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/cepshed.dir/common/status.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/common/status.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/cepshed.dir/common/value.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/common/value.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/CMakeFiles/cepshed.dir/ml/decision_tree.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/ml/decision_tree.cc.o.d"
  "/root/repo/src/ml/gap_statistic.cc" "src/CMakeFiles/cepshed.dir/ml/gap_statistic.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/ml/gap_statistic.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/CMakeFiles/cepshed.dir/ml/kmeans.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/ml/kmeans.cc.o.d"
  "/root/repo/src/ml/regression_tree.cc" "src/CMakeFiles/cepshed.dir/ml/regression_tree.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/ml/regression_tree.cc.o.d"
  "/root/repo/src/opt/knapsack.cc" "src/CMakeFiles/cepshed.dir/opt/knapsack.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/opt/knapsack.cc.o.d"
  "/root/repo/src/query/lexer.cc" "src/CMakeFiles/cepshed.dir/query/lexer.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/query/lexer.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/cepshed.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/query/parser.cc.o.d"
  "/root/repo/src/runtime/experiment.cc" "src/CMakeFiles/cepshed.dir/runtime/experiment.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/runtime/experiment.cc.o.d"
  "/root/repo/src/runtime/latency_monitor.cc" "src/CMakeFiles/cepshed.dir/runtime/latency_monitor.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/runtime/latency_monitor.cc.o.d"
  "/root/repo/src/runtime/metrics.cc" "src/CMakeFiles/cepshed.dir/runtime/metrics.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/runtime/metrics.cc.o.d"
  "/root/repo/src/runtime/multi_query.cc" "src/CMakeFiles/cepshed.dir/runtime/multi_query.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/runtime/multi_query.cc.o.d"
  "/root/repo/src/shed/baselines.cc" "src/CMakeFiles/cepshed.dir/shed/baselines.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/shed/baselines.cc.o.d"
  "/root/repo/src/shed/controller.cc" "src/CMakeFiles/cepshed.dir/shed/controller.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/shed/controller.cc.o.d"
  "/root/repo/src/shed/cost_model.cc" "src/CMakeFiles/cepshed.dir/shed/cost_model.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/shed/cost_model.cc.o.d"
  "/root/repo/src/shed/hybrid.cc" "src/CMakeFiles/cepshed.dir/shed/hybrid.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/shed/hybrid.cc.o.d"
  "/root/repo/src/shed/offline_estimator.cc" "src/CMakeFiles/cepshed.dir/shed/offline_estimator.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/shed/offline_estimator.cc.o.d"
  "/root/repo/src/shed/positional.cc" "src/CMakeFiles/cepshed.dir/shed/positional.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/shed/positional.cc.o.d"
  "/root/repo/src/shed/shedding_set.cc" "src/CMakeFiles/cepshed.dir/shed/shedding_set.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/shed/shedding_set.cc.o.d"
  "/root/repo/src/sketch/count_min.cc" "src/CMakeFiles/cepshed.dir/sketch/count_min.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/sketch/count_min.cc.o.d"
  "/root/repo/src/sketch/p2_quantile.cc" "src/CMakeFiles/cepshed.dir/sketch/p2_quantile.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/sketch/p2_quantile.cc.o.d"
  "/root/repo/src/workload/citibike.cc" "src/CMakeFiles/cepshed.dir/workload/citibike.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/workload/citibike.cc.o.d"
  "/root/repo/src/workload/csv.cc" "src/CMakeFiles/cepshed.dir/workload/csv.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/workload/csv.cc.o.d"
  "/root/repo/src/workload/ds1.cc" "src/CMakeFiles/cepshed.dir/workload/ds1.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/workload/ds1.cc.o.d"
  "/root/repo/src/workload/ds2.cc" "src/CMakeFiles/cepshed.dir/workload/ds2.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/workload/ds2.cc.o.d"
  "/root/repo/src/workload/google_trace.cc" "src/CMakeFiles/cepshed.dir/workload/google_trace.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/workload/google_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
