// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Micro benchmarks (google-benchmark): engine throughput with and without
// join indexes, per query, plus parser speed. Complements the figure
// benches with wall-clock numbers.

#include <benchmark/benchmark.h>

#include "src/cep/engine.h"
#include "src/obs/metrics.h"
#include "src/query/parser.h"
#include "src/workload/ds1.h"
#include "src/workload/queries.h"

namespace cepshed {
namespace {

void BM_EngineQ1(benchmark::State& state) {
  const Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = 20000;
  const EventStream stream = GenerateDs1(schema, gen);
  auto nfa = Nfa::Compile(*queries::Q1("4ms"), &schema);
  EngineOptions opts;
  opts.use_join_index = state.range(0) != 0;
  for (auto _ : state) {
    Engine engine(*nfa, opts);
    std::vector<Match> out;
    for (const EventPtr& e : stream) engine.Process(e, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_EngineQ1)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// BM_EngineQ1 with the full per-event obs record path enabled — exactly
/// what ShedRunner/ShardState add per event: two counters, the cost
/// histogram, and the matches-emitted delta. The CI overhead gate compares
/// this against BM_EngineQ1 (same Arg) and fails above 5%.
void BM_EngineQ1Metrics(benchmark::State& state) {
  const Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = 20000;
  const EventStream stream = GenerateDs1(schema, gen);
  auto nfa = Nfa::Compile(*queries::Q1("4ms"), &schema);
  EngineOptions opts;
  opts.use_join_index = state.range(0) != 0;
  obs::MetricsRegistry registry;
  registry.EnsureShards(1);
  obs::ShardObs* obs = registry.shard(0);
  for (auto _ : state) {
    Engine engine(*nfa, opts);
    std::vector<Match> out;
    size_t matches_seen = 0;
    for (const EventPtr& e : stream) {
      const double cost = engine.Process(e, &out);
      obs->events_routed.Add();
      obs->events_processed.Add();
      obs->event_cost.Record(cost);
      if (out.size() != matches_seen) {
        obs->matches_emitted.Add(out.size() - matches_seen);
        matches_seen = out.size();
      }
    }
    benchmark::DoNotOptimize(out.size());
    benchmark::DoNotOptimize(obs->events_processed.Load());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_EngineQ1Metrics)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_EngineQ2Kleene(benchmark::State& state) {
  const Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = 10000;
  gen.event_gap = 2;
  const EventStream stream = GenerateDs1(schema, gen);
  auto nfa = Nfa::Compile(*queries::Q2(static_cast<int>(state.range(0)), "1ms"), &schema);
  for (auto _ : state) {
    Engine engine(*nfa, EngineOptions{});
    std::vector<Match> out;
    for (const EventPtr& e : stream) engine.Process(e, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_EngineQ2Kleene)->Arg(1)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

/// Clone-path microbenchmark: bursts of same-ID A events drive a Kleene
/// pattern under skip-till-any-match, so every event extends every open
/// match — TryBind's clone path dominates. No completing B ever arrives
/// (emission cost is absent) and bursts are separated by a full window so
/// eviction clears the store between them. The arg is the Kleene cap,
/// i.e. the chain length the workload reaches: with the shared-prefix
/// representation a clone is O(1) in the parent length, so clones/sec
/// should stay nearly flat as the cap grows; a flat-vector copy degrades
/// linearly. scripts/check_clone_path.py gates on exactly that ratio.
void BM_EngineKleeneClone(benchmark::State& state) {
  const Schema schema = MakeDs1Schema();
  const int reps = static_cast<int>(state.range(0));
  // Every event anchors a fresh match and extends every open chain: event
  // s carries ID=s and V=s+1, and the bare-attribute join keys
  // (b[first].ID = a.V, b[i+1].ID = b[i].V) chain consecutive events, so
  // each chain grows by exactly one binding per event until the Kleene
  // cap. Keys are globally unique, so the hash-join probes are exact (no
  // tombstone scanning) and per-event work is ~cap clones of parent
  // lengths 1..cap — the clone path at real chain depth.
  auto q = ParseQuery(
      "PATTERN SEQ(A a, A+{1," + std::to_string(reps) +
      "} b[], B c) WHERE b[first].ID = a.V AND b[i+1].ID = b[i].V "
      "AND a.ID = c.ID WITHIN 1ms");
  auto nfa = Nfa::Compile(*q, &schema);
  const int id_attr = schema.AttributeIndex("ID");
  const int v_attr = schema.AttributeIndex("V");
  std::vector<EventPtr> stream;
  const uint64_t kEvents = 4000;
  // Chains only grow while their anchor is inside the 1ms window, so the
  // event spacing must leave room for `reps` extensions before expiry.
  const Timestamp step = reps <= 64 ? 10 : 2;
  for (uint64_t s = 0; s < kEvents; ++s) {
    std::vector<Value> attrs(schema.num_attributes());
    attrs[static_cast<size_t>(id_attr)] = Value(static_cast<int64_t>(s));
    attrs[static_cast<size_t>(v_attr)] = Value(static_cast<int64_t>(s + 1));
    stream.push_back(std::make_shared<Event>(
        schema.EventTypeId("A"), static_cast<Timestamp>(s) * step, s,
        std::move(attrs)));
  }
  uint64_t clones = 0;
  for (auto _ : state) {
    Engine engine(*nfa, EngineOptions{});
    std::vector<Match> out;
    for (const EventPtr& e : stream) engine.Process(e, &out);
    clones = engine.stats().pms_created;
    benchmark::DoNotOptimize(clones);
  }
  // Throughput in clones (not events), so arms with different caps and
  // thus different fan-outs stay comparable.
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(clones));
  state.counters["pms_created"] = static_cast<double>(clones);
}
BENCHMARK(BM_EngineKleeneClone)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_ParseQuery(benchmark::State& state) {
  const std::string text =
      "PATTERN SEQ(A a, A+{1,4} b[], B c, C d) "
      "WHERE a.ID = b[i].ID AND a.ID = c.ID AND b[i].V = a.V AND a.V + c.V = d.V "
      "WITHIN 1ms";
  for (auto _ : state) {
    auto q = ParseQuery(text);
    benchmark::DoNotOptimize(q.ok());
  }
}
BENCHMARK(BM_ParseQuery);

void BM_NfaCompile(benchmark::State& state) {
  const Schema schema = MakeDs1Schema();
  const Query query = *queries::Q1("4ms");
  for (auto _ : state) {
    auto nfa = Nfa::Compile(query, &schema);
    benchmark::DoNotOptimize(nfa.ok());
  }
}
BENCHMARK(BM_NfaCompile);

}  // namespace
}  // namespace cepshed

BENCHMARK_MAIN();
