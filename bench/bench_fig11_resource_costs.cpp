// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Fig. 11 of the paper: impact of explicit resource costs of partial
// matches. DS2/Q3 (heterogeneous per-match predicate costs via the
// Euclidean-distance expression): hybrid shedding with the full resource
// cost Omega in the consumption model versus the plain count abstraction,
// across average-latency bounds 80%-20%.

#include "bench/bench_util.h"

using namespace cepshed;
using namespace cepshed::bench;

int main() {
  Header("Fig. 11a+11b", "DS2/Q3, hybrid with vs. without explicit resource costs",
         kResultColumns);
  for (bool use_cost : {true, false}) {
    Ds2Options gen;
    gen.num_events = 25000;
    HarnessOptions opts;
    opts.cost_model.use_resource_cost = use_cost;
    auto exp = PrepareDs2(*queries::Q3("8ms"), gen, opts);
    for (double bound : {0.8, 0.6, 0.4, 0.2}) {
      ExperimentResult r = exp.harness->RunBound(StrategyKind::kHybrid, bound);
      r.name = use_cost ? "PM-resource-cost" : "w/o-PM-resource-cost";
      PrintResultRow(std::to_string(bound).substr(0, 3), r);
    }
  }
  return 0;
}
