// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Partition-parallel execution: events are routed to N shards, each shard
// runs one thread-confined Engine (plus its own LatencyMonitor and
// Shedder) behind a bounded ring queue, and the per-shard outputs are
// merged deterministically. Because the paper's shedding functions rho_I /
// rho_S and the cost model Gamma+/Gamma- are per-event and per-partial-
// match, sharding changes no shedding semantics: each shard adapts its own
// throttle against its own latency signal.
//
// Two routing modes:
//  - kHashPartition: shard = hash(event[partition_attr]) % N. Exact (the
//    sharded match set equals the sequential engine's) when every pattern
//    element — including negated ones — is equality-correlated on the
//    partition attribute (see IsPartitionCorrelated), for the any-match
//    and next-match policies. Strict contiguity is inherently global
//    (survival depends on *adjacent* stream events of all partitions) and
//    is rejected for N > 1.
// Overload & failure model: each shard may carry an OverloadGuard
// (src/runtime/overload_guard.h) that watches its latency headroom, queue
// fill, and partial-match memory and degrades it through shedding → panic
// input drop → emergency state eviction, recovering once the pressure
// clears. A FaultInjector (src/fault/fault_injector.h) can deterministically
// stall, slow, saturate, skew, or kill shards; a dead worker thread is
// detected by the router through bounded-wait pushes and restarted on the
// same queue and engine, or — once its restart budget is spent — abandoned:
// its backlog is counted as lost and the run completes with degraded recall
// instead of deadlocking. Only when every shard has been abandoned does Run
// fail, with Status::Unavailable.
//
//  - kWindowSlice: the stream is cut into overlapping time slices of
//    stride L covering [j*L, j*L + L + window); slice j is owned by shard
//    j % N, so every event is replicated to at most 1 + ceil(window/L)
//    shards. Any match spans at most `window`, hence lies entirely within
//    the coverage of the slice containing its first event — as does every
//    negation witness able to veto it. Each shard therefore keeps only the
//    matches whose first-event slice it owns (the canonical owner); copies
//    formed elsewhere are discarded before the merge. This makes slice
//    routing exact for skip-till-any-match time-window queries including
//    negation (selective policies and count windows are rejected: their
//    semantics depend on the absolute stream, not the window contents).

#ifndef CEPSHED_RUNTIME_SHARD_RUNTIME_H_
#define CEPSHED_RUNTIME_SHARD_RUNTIME_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/cep/engine.h"
#include "src/cep/nfa.h"
#include "src/cep/stream.h"
#include "src/common/result.h"
#include "src/fault/fault_injector.h"
#include "src/obs/metrics.h"
#include "src/runtime/latency_monitor.h"
#include "src/runtime/overload_guard.h"
#include "src/runtime/reshard_controller.h"
#include "src/shed/shedder.h"

namespace cepshed {

/// \brief How events are assigned to shards.
enum class ShardRouting : int {
  kHashPartition = 0,  ///< hash of a partition attribute (exact for
                       ///< partition-correlated queries)
  kWindowSlice = 1,    ///< round-robin overlapping window slices (exact for
                       ///< any-match time-window queries)
};

/// \brief Observes every event the router accepts, with the shard targets
/// chosen for it — the trace-recorder hook (src/workload/lab/trace.h).
/// Called identically by Run and RunSequential, before any push, so a
/// capture of either path replays through both.
using IngestTap =
    std::function<void(const EventPtr& event, const std::vector<int>& targets)>;

/// \brief Observes every *executed* elastic resize: the global stream
/// sequence number of the triggering event and the live shard count before
/// and after. The trace recorder persists these so a dynamically resized
/// run replays deterministically as a scripted schedule. Called on the
/// routing thread at the migration barrier, in Run and RunSequential.
using ResizeTap =
    std::function<void(uint64_t seq, int old_shards, int new_shards)>;

/// \brief Sharded-runtime configuration.
struct ShardRuntimeOptions {
  int num_shards = 1;
  ShardRouting routing = ShardRouting::kHashPartition;
  /// Schema attribute index events are hash-partitioned on (required for
  /// kHashPartition with more than one shard).
  int partition_attr = -1;
  /// Slice stride L in microseconds for kWindowSlice; 0 = the query window
  /// (duplication factor 2).
  Duration slice_stride = 0;
  /// Per-shard ring-queue capacity (rounded up to a power of two).
  size_t queue_capacity = 4096;
  /// Skip the static partition-correlation / policy validation (for tests
  /// that deliberately run inexact plans).
  bool skip_validation = false;
  EngineOptions engine;
  LatencyMonitor::Options latency;
  /// Per-shard overload guard (guard.enabled turns it on). Every shard
  /// gets its own instance with these options; drop decisions hash the
  /// globally unique event sequence numbers, so shards shed consistently.
  OverloadGuard::Options guard;
  /// Optional fault schedule (not owned, may be null; immutable and shared
  /// read-only by all shards).
  const FaultInjector* faults = nullptr;
  /// Optional observability registry (not owned, may be null). The runtime
  /// grows it to num_shards slots before workers start; each shard then
  /// records into its own slot lock-free, and the router/exporter read
  /// mergeable snapshots at any time.
  obs::MetricsRegistry* metrics = nullptr;
  /// How long a router push waits on a full shard queue before checking
  /// consumer liveness (and restarting/abandoning a dead worker). Must be
  /// positive for dead-shard detection; the push itself retries until the
  /// queue accepts or the shard is abandoned.
  int64_t push_timeout_us = 50'000;
  /// Worker-death restarts granted per shard before it is abandoned
  /// (abandonment loses the shard's unconsumed events, degrading recall;
  /// the run itself always completes).
  int max_worker_restarts = 1;
  /// Optional trace-recorder tap (may be empty). Invoked on the routing
  /// thread for every stream event after RouteEvent, before saturation
  /// checks and pushes, in both Run and RunSequential.
  IngestTap ingest_tap;
  /// Elastic resharding. Scripted `resize` fault entries and the dynamic
  /// controller (reshard.enabled) both change the live shard count at
  /// runtime via a stop-the-world migration: seal, drain every live
  /// queue, move each partial match whose hash owner changes (chains are
  /// shared with the donor arena — no deep copy), flip the routing, and
  /// resume. Requires hash routing on a partition-correlated query — even
  /// with num_shards == 1, since the run can grow past one shard. The
  /// dynamic controller runs only in Run (its signals are queue depths);
  /// RunSequential honors scripted resizes, which is how a recorded
  /// dynamic run replays.
  ReshardOptions reshard;
  /// Optional resize-recorder tap (may be empty); see ResizeTap.
  ResizeTap resize_tap;
};

/// \brief Per-shard outcome of one sharded run.
struct ShardResult {
  /// Events routed to this shard (slice routing counts replicas).
  uint64_t events_routed = 0;
  /// Events the shard's rho_I discarded.
  uint64_t events_dropped = 0;
  uint64_t events_processed = 0;
  /// Partial matches the shard's rho_S discarded.
  uint64_t shed_pms = 0;
  /// Overall average per-event latency (cost units) of this shard.
  double avg_latency = 0.0;
  /// Bound-violation accounting against the shard shedder's theta.
  uint64_t bound_violations = 0;
  uint64_t bound_checked = 0;
  /// Events delivered to the shard but lost unprocessed — consumed by a
  /// worker death or drained after abandonment. Included in events_routed:
  /// events_routed == events_processed + events_dropped + events_lost.
  uint64_t events_lost = 0;
  /// Router-side refusals (saturation fault, abandoned shard, closed
  /// queue); these never reached the queue and are NOT in events_routed.
  uint64_t events_rejected = 0;
  /// Times a dead worker thread was restarted on this shard.
  uint64_t worker_restarts = 0;
  /// Partial matches (regulars + witnesses) this shard received from /
  /// handed to other shards across all elastic resizes of the run.
  uint64_t pms_migrated_in = 0;
  uint64_t pms_migrated_out = 0;
  /// The shard exhausted its restart budget; its tail of events was lost.
  bool abandoned = false;
  /// Overload-guard telemetry (all zero when the guard is disabled).
  /// guard_input_drops is the subset of events_dropped decided by the
  /// guard rather than the shard's shedder.
  uint64_t guard_input_drops = 0;
  uint64_t guard_trims = 0;
  uint64_t guard_evictions = 0;
  uint64_t guard_escalations = 0;
  int guard_final_level = 0;
  int guard_peak_level = 0;
  size_t guard_peak_state_bytes = 0;
  EngineStats stats;
};

/// \brief Merged outcome of one sharded run.
struct ShardRunResult {
  /// All matches, ordered by (detection timestamp, event sequence numbers)
  /// — a deterministic total order independent of shard interleaving.
  /// Already unique: hash routing confines a match to one partition and
  /// slice routing keeps each match only in its canonical owner shard.
  std::vector<Match> matches;
  /// Element-wise sum of the per-shard engine stats. peak_pms is the sum
  /// of per-shard peaks: an upper bound on the true simultaneous global
  /// state size (shards peak at different times).
  EngineStats stats;
  std::vector<ShardResult> shards;
  uint64_t total_events = 0;
  /// Queue pushes; exceeds total_events under slice routing (replicas).
  uint64_t routed_events = 0;
  uint64_t dropped_events = 0;
  uint64_t shed_pms = 0;
  /// Sum of per-shard events_lost + events_rejected: every routed-to event
  /// that was neither processed nor deliberately dropped.
  uint64_t lost_events = 0;
  uint64_t worker_restarts = 0;
  int shards_abandoned = 0;
  /// Elastic resizes executed (scripted + dynamic; no-op clamps excluded).
  uint64_t resizes = 0;
  /// Partial matches / estimated bytes moved across shards by resizes.
  uint64_t migrated_pms = 0;
  uint64_t migrated_bytes = 0;
  /// Live shard count when the run ended (== num_shards without resizes).
  int final_live_shards = 0;
  uint64_t guard_input_drops = 0;
  uint64_t guard_trims = 0;
  uint64_t guard_evictions = 0;
  double wall_seconds = 0.0;
};

/// \brief Runs one query over N shard-confined engines.
class ShardRuntime {
 public:
  /// Creates one shedder per shard (called with the shard id before the
  /// workers start; the shedder is bound to the shard's engine and used
  /// only from that shard's thread). A null factory disables shedding.
  using ShedderFactory = std::function<std::unique_ptr<Shedder>(int shard)>;

  /// Validates the plan (unless opts.skip_validation) and builds the
  /// runtime. The NFA is shared read-only by all shards.
  static Result<std::unique_ptr<ShardRuntime>> Create(
      std::shared_ptr<const Nfa> nfa, ShardRuntimeOptions opts);

  /// Parallel execution: one worker thread per shard behind a bounded ring
  /// queue; the calling thread routes. Engines are rebuilt per call, so a
  /// runtime can be reused across streams.
  Result<ShardRunResult> Run(const EventStream& stream,
                             const ShedderFactory& make_shedder = {});

  /// Reference execution of the *same* sharded plan on the calling thread,
  /// shard by shard, with identical routing, engines, and shedders. The
  /// differential harness compares Run against RunSequential byte for
  /// byte: any divergence is nondeterminism introduced by the parallel
  /// path itself.
  Result<ShardRunResult> RunSequential(const EventStream& stream,
                                       const ShedderFactory& make_shedder = {});

  int num_shards() const { return opts_.num_shards; }
  const ShardRuntimeOptions& options() const { return opts_; }
  /// Shards currently receiving events. Equals num_shards outside a run
  /// and changes only at executed resizes.
  int live_shards() const { return live_shards_; }

  /// Hash-routing target of an event under the *current* live shard count
  /// (kHashPartition).
  int HashShardOf(const Event& event) const;

  /// The shard a partition-key value hashes to — the exact function
  /// HashShardOf applies to the event's partition attribute. Exposed so
  /// adversarial generators (src/workload/lab/hostile.h) can precompute
  /// key values that all land on one victim shard.
  static int ShardOfKey(const Value& key, int num_shards);

  /// Appends the target shard ids of an event (deduplicated, increasing
  /// slice order) to *out. Works for both routing modes.
  void RouteEvent(const Event& event, std::vector<int>* out) const;

  /// True when every pattern element (positive and negated) of the query
  /// is equality-correlated on schema attribute `attr`, i.e. all events of
  /// any match (and any witness able to veto it) carry one attribute
  /// value. Under this condition hash partitioning on `attr` is exact for
  /// the any-match and next-match policies.
  static bool IsPartitionCorrelated(const Nfa& nfa, int attr);

 private:
  struct ShardState;
  struct ResizeScript;

  ShardRuntime(std::shared_ptr<const Nfa> nfa, ShardRuntimeOptions opts)
      : nfa_(std::move(nfa)), opts_(opts), live_shards_(opts.num_shards) {}

  Status ValidatePlan() const;
  Duration SliceStride() const;

  /// True when this run may resize (dynamic controller or scripted
  /// `resize` fault entries).
  bool Elastic() const;
  /// Upper / lower bounds of the live shard count for this run. Workers
  /// (and metrics slots) are provisioned for the maximum up front, so a
  /// grow never spawns threads mid-stream.
  int EffectiveMaxShards() const;
  int EffectiveMinShards() const;
  int ClampLiveShards(int want) const;

  /// Stop-the-world resize to `new_live` shards (no-op when equal to the
  /// current live count): waits for every live shard to drain its queue
  /// (handling worker deaths mid-drain), migrates ownership-changing
  /// partial matches, flips the routing, and records metrics, audit, and
  /// the resize tap. Parallel path only; the sequential mirror drains its
  /// buffers first and shares MigrateState.
  void ExecuteResize(std::vector<std::unique_ptr<ShardState>>* shards,
                     int new_live, uint64_t seq, Timestamp now,
                     ShardRunResult* result);
  /// Moves every partial match whose ShardOfKey owner under `new_live`
  /// differs from its current shard, donor by donor in shard order —
  /// deterministic given the engines' states. Chains move by reference:
  /// the recipient pins the donor's arena and nodes return to it when the
  /// chains die. Requires every worker parked (quiescence).
  void MigrateState(std::vector<std::unique_ptr<ShardState>>* shards,
                    int old_live, int new_live, ShardRunResult* result) const;
  /// Shared metrics/audit/tap bookkeeping of one executed resize.
  void RecordResize(std::vector<std::unique_ptr<ShardState>>* shards,
                    int old_live, int new_live, uint64_t seq, Timestamp now,
                    double pause_us, ShardRunResult* result) const;

  /// Router-side handling of a dead worker thread (detected by a push
  /// timeout): join it, then either restart it on the same queue/engine or
  /// abandon the shard once the restart budget is spent.
  void ReviveOrAbandon(ShardState* s) const;
  /// Marks the shard abandoned: closes its queue, drains the backlog as
  /// lost events, and finalizes the shard's partial results.
  void AbandonShard(ShardState* s) const;
  /// Post-join recovery of a worker that died near the end of the stream
  /// without the router noticing: consumes the shard's remaining queue
  /// inline (this is its restart), honoring any further death faults.
  void FinishDeadShard(ShardState* s) const;

  /// Merges per-shard matches/stats into `result` (sorts into the
  /// deterministic total order, sums stats).
  void Merge(std::vector<std::unique_ptr<ShardState>>* shards,
             ShardRunResult* result) const;

  std::shared_ptr<const Nfa> nfa_;
  ShardRuntimeOptions opts_;
  /// Current routable shard count; reset to num_shards at the start of
  /// each run and changed only at executed resizes (router thread only).
  int live_shards_ = 1;
};

}  // namespace cepshed

#endif  // CEPSHED_RUNTIME_SHARD_RUNTIME_H_
