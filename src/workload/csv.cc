// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/workload/csv.h"

#include <fstream>
#include <string_view>
#include <vector>

#include "src/workload/csv_cursor.h"

namespace cepshed {

namespace {

/// Writes one cell, quoting RFC-4180-style when the text contains a
/// comma, quote, or line break (doubled quotes escape embedded quotes).
/// Plain cells — every numeric cell, and most names — go out verbatim.
void WriteCsvCell(std::string_view cell, std::ostream* out) {
  if (cell.find_first_of(",\"\n\r") == std::string_view::npos) {
    *out << cell;
    return;
  }
  out->put('"');
  for (const char ch : cell) {
    if (ch == '"') out->put('"');
    out->put(ch);
  }
  out->put('"');
}

}  // namespace

Status WriteCsv(const EventStream& stream, std::ostream* out) {
  const Schema& schema = stream.schema();
  *out << "type,timestamp";
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    *out << ",";
    WriteCsvCell(schema.attribute(static_cast<int>(a)).name, out);
  }
  *out << "\n";
  for (const EventPtr& e : stream) {
    WriteCsvCell(schema.EventTypeName(e->type()), out);
    *out << "," << e->timestamp();
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      const Value& v = e->attr(static_cast<int>(a));
      *out << ",";
      if (v.is_null()) continue;
      if (v.type() == ValueType::kString) {
        WriteCsvCell(v.AsString(), out);
      } else {
        *out << v.ToString();
      }
    }
    *out << "\n";
  }
  if (!out->good()) return Status::Internal("CSV write failed");
  return Status::OK();
}

Status WriteCsvFile(const EventStream& stream, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::InvalidArgument("cannot open " + path);
  return WriteCsv(stream, &out);
}

namespace {

/// Views `line` with a trailing CRLF '\r' stripped — std::getline only
/// consumes the '\n', so Windows-authored traces otherwise leak the '\r'
/// into the last cell.
std::string_view StripCr(const std::string& line) {
  std::string_view v(line);
  if (!v.empty() && v.back() == '\r') v.remove_suffix(1);
  return v;
}

}  // namespace

Result<EventStream> ReadCsv(const Schema& schema, std::istream* in,
                            const CsvReadOptions& options, CsvReadStats* stats) {
  std::string line;
  if (!std::getline(*in, line)) {
    return Status::InvalidArgument("CSV input is empty");
  }
  CsvRowSplitter splitter;
  std::vector<std::string_view> cells;
  if (!splitter.Split(StripCr(line), &cells)) {
    return Status::InvalidArgument("CSV header does not match the schema");
  }
  CEPSHED_RETURN_NOT_OK(ValidateCsvHeader(schema, cells));
  const size_t expected_cells = cells.size();

  EventStream stream(&schema);
  CsvReadStats local;
  CsvReadStats* counters = stats != nullptr ? stats : &local;
  size_t line_no = 1;
  while (std::getline(*in, line)) {
    ++line_no;
    const std::string_view row = StripCr(line);
    if (row.empty()) continue;
    ++counters->rows_read;
    int type = -1;
    Timestamp ts = 0;
    std::vector<Value> attrs;
    Status st = Status::OK();
    if (!splitter.Split(row, &cells)) {
      st = Status::ParseError("CSV line " + std::to_string(line_no) +
                              ": unterminated quoted cell");
    } else {
      st = ParseCsvRow(schema, cells, expected_cells, line_no, &type, &ts,
                       &attrs);
    }
    // Emit can also reject the row (timestamps must be non-decreasing);
    // that is a property of the row's data, handled like any parse error.
    if (st.ok()) st = stream.Emit(type, ts, std::move(attrs));
    if (!st.ok()) {
      if (!options.lenient) return st;
      ++counters->malformed_rows;
    }
  }
  return stream;
}

Result<EventStream> ReadCsvFile(const Schema& schema, const std::string& path,
                                const CsvReadOptions& options, CsvReadStats* stats) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::InvalidArgument("cannot open " + path);
  return ReadCsv(schema, &in, options, stats);
}

}  // namespace cepshed
