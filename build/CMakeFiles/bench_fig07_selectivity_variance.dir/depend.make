# Empty dependencies file for bench_fig07_selectivity_variance.
# This may be replaced when dependencies are built.
