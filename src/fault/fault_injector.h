// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Deterministic fault injection for the sharded runtime. A FaultInjector
// holds a parsed schedule of faults, each anchored to an exact per-shard
// event ordinal (or router-side stream sequence number), so a given
// schedule reproduces the same fault at the same logical point on every
// run — the chaos suite's properties are replayable from the schedule
// alone. The injector itself is immutable after Parse: every query is a
// pure function of (shard, event index), so N shard threads can consult
// one instance without synchronization.
//
// Schedule DSL: semicolon-separated entries of the form
//   kind:key=value,key=value
// with kinds
//   stall    - one-shot consumer sleep        (shard, at, ms)
//   slow     - per-event consumer sleep       (shard, at, count, us)
//   burst    - latency-cost multiplier window (shard, at, count, factor)
//              simulating an arrival burst: each event appears `factor`
//              times as expensive to the latency monitor, which is what a
//              rate spike looks like to the shedding machinery
//   saturate - router-side queue saturation   (shard, at, count): pushes
//              of stream seq in [at, at+count) to the shard report full
//   skew     - guard-clock skew window        (shard, at, count, us):
//              the watchdog sees event time offset by `us` (negative =
//              out-of-order timestamps); engine semantics are untouched
//   death    - the shard's worker thread exits before consuming its
//              at-th event (shard, at)
//   resize   - elastic-reshard action (shard, at, delta): the runtime
//              changes the live shard count by `delta` (+n spawn / -n
//              retire, clamped to its configured bounds) at a
//              deterministic router-side anchor — immediately before
//              routing global stream sequence `at` (shard=-1), or before
//              the at-th push to shard `shard`. Each resize entry fires
//              exactly once.
// `shard=-1` (the default) applies the fault to every shard. `at` counts
// consumed events of the shard for consumer-side faults, global stream
// sequence numbers for `saturate` and unscoped `resize`, and router-side
// routed-event ordinals of the target shard for scoped `resize`.
//
// Duplicate anchors — two entries of the same kind at the same
// (shard, at) — are rejected at parse time with the offending line
// number: a schedule that would silently last-wins (or double-apply) is a
// chaos experiment that does not mean what it says.
//
// Example: "stall:shard=0,at=200,ms=30;death:shard=1,at=500;resize:at=900,delta=+2"

#ifndef CEPSHED_FAULT_FAULT_INJECTOR_H_
#define CEPSHED_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/time.h"

namespace cepshed {

/// \brief Kinds of injectable faults.
enum class FaultKind : int {
  kStall = 0,     ///< one-shot consumer sleep
  kSlowdown = 1,  ///< per-event consumer sleep over a window
  kBurst = 2,     ///< latency-cost multiplier over a window
  kSaturate = 3,  ///< router-side queue saturation over a seq window
  kSkew = 4,      ///< guard-clock skew over a window
  kDeath = 5,     ///< worker-thread death at an event ordinal
  kResize = 6,    ///< elastic reshard (live shard count += delta)
};

/// Short DSL name of a fault kind ("stall", "death", ...).
const char* FaultKindName(FaultKind kind);

/// \brief One parsed schedule entry.
struct FaultSpec {
  FaultKind kind = FaultKind::kStall;
  /// Target shard, or -1 for all shards.
  int shard = -1;
  /// First affected event ordinal (consumed-event index of the shard, or
  /// stream sequence number for kSaturate).
  uint64_t at = 0;
  /// Events affected for windowed kinds (kSlowdown/kBurst/kSaturate/kSkew).
  uint64_t count = 1;
  /// Sleep duration (kStall: total; kSlowdown: per event) or clock offset
  /// (kSkew) in microseconds.
  int64_t micros = 0;
  /// Cost multiplier (kBurst).
  double factor = 1.0;
  /// Signed live-shard-count change (kResize; never 0 for parsed entries).
  int delta = 0;
};

/// \brief What the injector wants done before/while consuming one event.
struct ActiveFaults {
  /// Sleep this long before consuming (stall + slowdown contributions).
  int64_t stall_us = 0;
  /// Multiply the latency cost recorded for this event.
  double cost_multiplier = 1.0;
  /// Offset applied to the overload guard's event-time clock.
  int64_t clock_skew_us = 0;
  /// The worker must exit before consuming this event.
  bool die = false;
};

/// \brief An immutable, seeded fault schedule (see file comment).
class FaultInjector {
 public:
  FaultInjector() = default;

  /// Parses the schedule DSL. Entries are separated by ';' or newlines
  /// (so a schedule can be a file, one entry per line). Unknown kinds/keys
  /// and malformed numbers are errors — a chaos schedule that silently
  /// no-ops is worse than one that fails loudly — and every error message
  /// carries the 1-based line number of the offending entry. An empty spec
  /// yields an empty injector.
  static Result<FaultInjector> Parse(const std::string& spec, uint64_t seed = 0);

  /// Consumer-side faults for the shard's `index`-th consumed event.
  ActiveFaults OnConsume(int shard, uint64_t index) const;

  /// True when the router must treat a push of stream sequence `seq` to
  /// `shard` as hitting a full queue.
  bool SaturatePush(int shard, uint64_t seq) const;

  bool empty() const { return specs_.empty(); }
  const std::vector<FaultSpec>& specs() const { return specs_; }
  /// True when the schedule contains at least one resize action (the
  /// runtime then validates and provisions for elasticity up front).
  bool has_resizes() const {
    for (const FaultSpec& f : specs_) {
      if (f.kind == FaultKind::kResize) return true;
    }
    return false;
  }
  /// Schedule seed (also the default hash seed of guard drop decisions,
  /// so one seed reproduces the whole degraded run).
  uint64_t seed() const { return seed_; }

  /// Canonical round-trippable rendering of the schedule.
  std::string ToString() const;

 private:
  std::vector<FaultSpec> specs_;
  uint64_t seed_ = 0;
};

}  // namespace cepshed

#endif  // CEPSHED_FAULT_FAULT_INJECTOR_H_
