// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/sketch/count_min.h"

#include <algorithm>
#include <limits>

namespace cepshed {

namespace {

// 64-bit mix (SplitMix64 finalizer) applied to key ^ row seed.
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

CountMinSketch::CountMinSketch(size_t width, size_t depth, uint64_t seed)
    : width_(width == 0 ? 1 : width), depth_(depth == 0 ? 1 : depth) {
  row_seeds_.resize(depth_);
  uint64_t s = seed;
  for (size_t r = 0; r < depth_; ++r) {
    s += 0x9e3779b97f4a7c15ULL;
    row_seeds_[r] = Mix(s);
  }
  cells_.assign(width_ * depth_, 0.0);
}

size_t CountMinSketch::CellIndex(size_t row, uint64_t key) const {
  return row * width_ + static_cast<size_t>(Mix(key ^ row_seeds_[row]) % width_);
}

void CountMinSketch::Add(uint64_t key, double count) {
  for (size_t r = 0; r < depth_; ++r) {
    cells_[CellIndex(r, key)] += count;
  }
}

double CountMinSketch::Estimate(uint64_t key) const {
  double est = std::numeric_limits<double>::max();
  for (size_t r = 0; r < depth_; ++r) {
    est = std::min(est, cells_[CellIndex(r, key)]);
  }
  return est;
}

void CountMinSketch::Scale(double factor) {
  for (double& c : cells_) c *= factor;
}

void CountMinSketch::Clear() { std::fill(cells_.begin(), cells_.end(), 0.0); }

double CountMinSketch::TotalMass() const {
  double total = 0.0;
  for (size_t i = 0; i < width_; ++i) total += cells_[i];
  return total;
}

}  // namespace cepshed
