// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/runtime/overload_guard.h"

#include <algorithm>
#include <cmath>

namespace cepshed {

namespace {

// splitmix64 finalizer; same construction as the runtime's routing hash
// but an independent instantiation so guard drops and shard routing never
// correlate.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t RateToCut(double rate) {
  if (rate <= 0.0) return 0;
  if (rate >= 1.0) return UINT64_MAX;
  return static_cast<uint64_t>(rate * 18446744073709551615.0);
}

}  // namespace

const char* GuardLevelName(GuardLevel level) {
  switch (level) {
    case GuardLevel::kNormal:
      return "normal";
    case GuardLevel::kShedding:
      return "shedding";
    case GuardLevel::kPanic:
      return "panic";
    case GuardLevel::kEmergency:
      return "emergency";
  }
  return "unknown";
}

OverloadGuard::OverloadGuard(Options options) : options_(options) {
  if (options_.theta > 0.0) {
    controller_.emplace(options_.theta, options_.trigger_delay);
  }
}

bool OverloadGuard::ShouldDropInput(uint64_t seq) {
  if (!options_.enabled || drop_cut_ == 0) return false;
  if (drop_cut_ == UINT64_MAX || Mix64(options_.seed ^ seq) < drop_cut_) {
    ++stats_.input_drops;
    return true;
  }
  return false;
}

void OverloadGuard::Observe(double mu, size_t queue_size, size_t queue_capacity,
                            Timestamp now) {
  if (!options_.enabled) return;
  // Event time is accepted (and may be skewed/non-monotonic); all guard
  // decisions key off event counts and signals. It is kept, with mu, as
  // audit context for ladder transitions.
  last_mu_ = mu;
  last_now_ = now;
  ++stats_.events_observed;

  const size_t bytes = engine_ != nullptr ? engine_->ApproxStateBytes() : 0;
  stats_.peak_state_bytes = std::max(stats_.peak_state_bytes, bytes);

  // Hard budget: an O(1) check every event, because a burst can blow the
  // budget well inside a check interval.
  if (options_.memory_budget_bytes > 0 && bytes > options_.memory_budget_bytes) {
    ++stats_.budget_trips;
    if (stats_.level != GuardLevel::kEmergency) SetLevel(GuardLevel::kEmergency);
    hot_streak_ = 0;
    cool_streak_ = 0;
    EvictToBudget();
  }

  // The latency-bound controller adapts every event even though the ladder
  // only moves at checks — mirrors how the baseline shedders run it. At
  // kShedding the drop rate tracks it per event too.
  if (controller_.has_value() && stats_.level >= GuardLevel::kShedding) {
    controller_->Update(mu);
    if (stats_.level == GuardLevel::kShedding) {
      drop_rate_ = controller_->rate();
      drop_cut_ = RateToCut(drop_rate_);
    }
  }

  if (++since_check_ < options_.check_every) return;
  since_check_ = 0;
  const double fill =
      queue_capacity > 0 ? static_cast<double>(queue_size) / static_cast<double>(queue_capacity)
                         : 0.0;
  Evaluate(mu, fill);
}

void OverloadGuard::Evaluate(double mu, double queue_fill) {
  const size_t bytes = engine_ != nullptr ? engine_->ApproxStateBytes() : 0;
  const double budget = static_cast<double>(options_.memory_budget_bytes);

  const bool latency_hot = options_.theta > 0.0 && mu > options_.theta;
  const bool latency_cool =
      options_.theta <= 0.0 || mu <= options_.theta * options_.latency_hysteresis;
  const bool queue_hot = queue_fill > options_.queue_high;
  const bool queue_cool = queue_fill <= options_.queue_low;
  const bool memory_hot =
      budget > 0.0 && static_cast<double>(bytes) > budget * options_.memory_high;
  const bool memory_cool =
      budget <= 0.0 || static_cast<double>(bytes) <= budget * options_.memory_low;

  const bool hot = latency_hot || queue_hot || memory_hot;
  const bool cool = latency_cool && queue_cool && memory_cool;

  if (hot) {
    cool_streak_ = 0;
    ++hot_streak_;
    if (hot_streak_ >= options_.escalate_after && stats_.level != GuardLevel::kEmergency) {
      SetLevel(static_cast<GuardLevel>(static_cast<int>(stats_.level) + 1));
      hot_streak_ = 0;
    }
    // Already degraded and still hot: keep relieving state pressure.
    if (stats_.level >= GuardLevel::kShedding) TrimState();
    if (stats_.level == GuardLevel::kEmergency) EvictToBudget();
  } else if (cool) {
    hot_streak_ = 0;
    ++cool_streak_;
    if (cool_streak_ >= options_.recover_after && stats_.level != GuardLevel::kNormal) {
      SetLevel(static_cast<GuardLevel>(static_cast<int>(stats_.level) - 1));
      cool_streak_ = 0;
    }
  } else {
    // Dead zone between the watermarks: neither streak advances, so a
    // borderline signal holds the current rung instead of flapping.
    hot_streak_ = 0;
    cool_streak_ = 0;
  }

  UpdateDropRate(mu);
}

void OverloadGuard::SetLevel(GuardLevel level) {
  if (level == stats_.level) return;
  if (static_cast<int>(level) > static_cast<int>(stats_.level)) {
    ++stats_.escalations;
  } else {
    ++stats_.de_escalations;
  }
  if (obs_ != nullptr) {
    obs_->guard_transitions.Add();
    obs_->guard_level.Set(static_cast<int64_t>(level));
    // class_label packs from|to<<8; detail is the transition ordinal.
    obs_->audit.Record(obs::AuditKind::kGuardTransition,
                       static_cast<uint8_t>(obs_shard_), last_now_,
                       static_cast<int32_t>(stats_.level) |
                           (static_cast<int32_t>(level) << 8),
                       last_mu_, stats_.escalations + stats_.de_escalations);
  }
  stats_.level = level;
  stats_.peak_level = std::max(stats_.peak_level, level);
  stats_.last_level_change_event = stats_.events_observed;
  if (level == GuardLevel::kNormal && controller_.has_value()) controller_->Reset();
}

void OverloadGuard::UpdateDropRate(double mu) {
  (void)mu;  // the controller was already fed this event's mu in Observe
  double rate = 0.0;
  switch (stats_.level) {
    case GuardLevel::kNormal:
      rate = 0.0;
      break;
    case GuardLevel::kShedding:
      rate = controller_.has_value() ? controller_->rate() : options_.shedding_drop_rate;
      break;
    case GuardLevel::kPanic:
    case GuardLevel::kEmergency:
      rate = options_.panic_drop_rate;
      break;
  }
  drop_rate_ = rate;
  drop_cut_ = RateToCut(rate);
}

void OverloadGuard::EvictToBudget() {
  if (engine_ == nullptr || options_.memory_budget_bytes == 0) return;
  // ApproxStateBytes counts each shared-prefix chain node exactly once,
  // so the budget tracks real footprint even when thousands of matches
  // share long prefixes. The eviction loop credits each kill with its
  // *marginal* (exclusive-suffix) bytes — a shared node is only freed,
  // and only credited, once its last referencing match dies — and the
  // per-event budget check re-trips if one pass undershoots.
  const size_t bytes = engine_->ApproxStateBytes();
  const size_t target =
      static_cast<size_t>(static_cast<double>(options_.memory_budget_bytes) * options_.memory_low);
  if (bytes <= target) return;
  const size_t killed =
      engine_->ShedLowestUtility(engine_->NumPartialMatches(), bytes - target, utility_);
  stats_.emergency_evictions += killed;
}

void OverloadGuard::TrimState() {
  if (engine_ == nullptr || options_.trim_fraction <= 0.0) return;
  const size_t alive = engine_->NumPartialMatches();
  const size_t kill = static_cast<size_t>(
      std::ceil(static_cast<double>(alive) * options_.trim_fraction));
  if (kill == 0) return;
  stats_.trims += engine_->ShedLowestUtility(kill, 0, utility_);
}

void OverloadGuard::Reset() {
  if (controller_.has_value()) controller_->Reset();
  drop_rate_ = 0.0;
  drop_cut_ = 0;
  hot_streak_ = 0;
  cool_streak_ = 0;
  since_check_ = 0;
  stats_ = Stats{};
}

}  // namespace cepshed
