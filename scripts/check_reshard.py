#!/usr/bin/env python3
"""CI gate over BENCH_reshard.json (bench_resharding output).

Checks the invariants the resharding design promises rather than raw
throughput (CI machines are too noisy for absolute numbers):

  * exactness — every arm emits the identical match count; a resize must
    never change the answer;
  * the elastic arm actually resized (all scheduled resizes executed) and
    actually moved state (migrated_pms > 0 — a ladder that migrates
    nothing is not exercising the migration path);
  * one pause sample per resize, and the pause p99 stays under a generous
    ceiling (default 2s) that only catches pathological stalls, not noise.

Usage: check_reshard.py [BENCH_reshard.json] [--max-pause-p99-us N]
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("report", nargs="?", default="BENCH_reshard.json")
    ap.add_argument("--max-pause-p99-us", type=float, default=2_000_000.0)
    args = ap.parse_args()

    with open(args.report) as f:
        data = json.load(f)
    arms = data["arms"]
    expected_resizes = data["resize_schedule"].count("resize:")

    failures = []

    matches = {name: arm["matches"] for name, arm in arms.items()}
    if len(set(matches.values())) != 1:
        failures.append(f"match counts diverge across arms: {matches}")

    elastic = arms["elastic"]
    if elastic["resizes"] != expected_resizes:
        failures.append(
            f"elastic arm executed {elastic['resizes']} resizes, schedule "
            f"has {expected_resizes}")
    if elastic["migrated_pms"] <= 0:
        failures.append("elastic arm migrated no partial matches")
    pause = elastic["pause_us"]
    if pause["count"] != elastic["resizes"]:
        failures.append(
            f"pause histogram has {pause['count']} samples for "
            f"{elastic['resizes']} resizes")
    if pause["p99"] > args.max_pause_p99_us:
        failures.append(
            f"migration pause p99 {pause['p99']:.0f}us exceeds "
            f"{args.max_pause_p99_us:.0f}us")
    for name in ("static2", "static4"):
        if arms[name]["resizes"] != 0 or arms[name]["migrated_pms"] != 0:
            failures.append(f"static arm {name} unexpectedly resized")

    for f_ in failures:
        print(f"FAIL: {f_}")
    if not failures:
        print(f"OK: {len(arms)} arms, {matches['elastic']} matches each, "
              f"{elastic['resizes']} resizes, "
              f"{elastic['migrated_pms']} PMs migrated, "
              f"pause p99 {pause['p99']:.0f}us")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
