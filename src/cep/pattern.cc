// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/cep/pattern.h"

#include <sstream>
#include <unordered_set>

namespace cepshed {

Status Query::Validate(const Schema& schema) {
  if (elements.empty()) {
    return Status::InvalidArgument("query has no pattern elements");
  }
  if (elements.size() > static_cast<size_t>(EvalContext::kMaxElements)) {
    return Status::InvalidArgument("pattern too long (max " +
                                   std::to_string(EvalContext::kMaxElements) + ")");
  }
  if (window <= 0) {
    return Status::InvalidArgument("query window must be positive");
  }
  std::unordered_set<std::string> vars;
  for (size_t i = 0; i < elements.size(); ++i) {
    PatternElement& el = elements[i];
    if (el.variable.empty()) {
      return Status::InvalidArgument("pattern element " + std::to_string(i) +
                                     " lacks a variable name");
    }
    if (!vars.insert(el.variable).second) {
      return Status::InvalidArgument("duplicate pattern variable '" + el.variable + "'");
    }
    el.event_type_id = schema.EventTypeId(el.event_type);
    if (el.event_type_id < 0) {
      return Status::InvalidArgument("unknown event type '" + el.event_type + "'");
    }
    if (el.kleene && el.negated) {
      return Status::Unimplemented("negated Kleene components are not supported");
    }
    if (el.kleene) {
      if (el.min_reps < 1) {
        return Status::InvalidArgument("Kleene min_reps must be >= 1");
      }
      if (el.max_reps < el.min_reps) {
        return Status::InvalidArgument("Kleene max_reps < min_reps");
      }
    }
    if (el.negated && (i == 0 || i + 1 == elements.size())) {
      return Status::Unimplemented(
          "negated components must appear between positive components");
    }
  }
  if (NumPositiveElements() == 0) {
    return Status::InvalidArgument("pattern has no positive components");
  }
  for (const ExprPtr& pred : predicates) {
    CEPSHED_RETURN_NOT_OK(pred->Resolve(elements, schema));
  }
  return Status::OK();
}

int Query::ElemIndex(const std::string& variable) const {
  for (size_t i = 0; i < elements.size(); ++i) {
    if (elements[i].variable == variable) return static_cast<int>(i);
  }
  return -1;
}

int Query::NumPositiveElements() const {
  int n = 0;
  for (const auto& el : elements) {
    if (!el.negated) ++n;
  }
  return n;
}

std::vector<int> Query::PositiveSlots() const {
  std::vector<int> slots(elements.size(), -1);
  int next = 0;
  for (size_t i = 0; i < elements.size(); ++i) {
    if (!elements[i].negated) slots[i] = next++;
  }
  return slots;
}

std::string Query::ToString() const {
  std::ostringstream os;
  os << "PATTERN SEQ(";
  for (size_t i = 0; i < elements.size(); ++i) {
    if (i > 0) os << ", ";
    const auto& el = elements[i];
    if (el.negated) os << "!";
    os << el.event_type;
    if (el.kleene) {
      os << "+";
      if (el.min_reps != 1 || el.max_reps != INT_MAX) {
        os << "{" << el.min_reps << ",";
        if (el.max_reps != INT_MAX) os << el.max_reps;
        os << "}";
      }
    }
    os << " " << el.variable;
    if (el.kleene) os << "[]";
  }
  os << ")";
  if (!predicates.empty()) {
    os << " WHERE ";
    for (size_t i = 0; i < predicates.size(); ++i) {
      if (i > 0) os << " AND ";
      os << predicates[i]->ToString();
    }
  }
  if (policy == SelectionPolicy::kSkipTillNextMatch) {
    os << " POLICY next";
  } else if (policy == SelectionPolicy::kStrictContiguity) {
    os << " POLICY strict";
  }
  os << " WITHIN " << window << "us";
  return os.str();
}

}  // namespace cepshed
