file(REMOVE_RECURSE
  "CMakeFiles/shed_test.dir/shed_test.cc.o"
  "CMakeFiles/shed_test.dir/shed_test.cc.o.d"
  "shed_test"
  "shed_test.pdb"
  "shed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
