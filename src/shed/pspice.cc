// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/shed/pspice.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "src/cep/engine.h"
#include "src/shed/registry.h"

namespace cepshed {

// --- PspiceModel --------------------------------------------------------

Status PspiceModel::Train(std::shared_ptr<const Nfa> nfa,
                          const OfflineStats& stats) {
  if (nfa == nullptr) return Status::InvalidArgument("pspice: null nfa");
  nfa_ = std::move(nfa);
  const int num_states = nfa_->num_states();
  if (num_states <= 0) return Status::InvalidArgument("pspice: empty nfa");
  states_.assign(static_cast<size_t>(num_states), StateModel{});
  for (int s = 0; s < num_states; ++s) {
    states_[static_cast<size_t>(s)].prior =
        s < static_cast<int>(stats.state_completion.size())
            ? stats.state_completion[static_cast<size_t>(s)]
            : 0.0;
  }

  RegressionTree::Options tree_options;
  tree_options.max_depth = 6;
  tree_options.min_samples_leaf = 25;

  std::vector<std::vector<std::vector<double>>> x(
      static_cast<size_t>(num_states));
  std::vector<std::vector<std::vector<double>>> y(
      static_cast<size_t>(num_states));
  for (const PmRecord& rec : stats.records) {
    if (rec.state < 0 || rec.state >= num_states) continue;
    std::vector<double> features(rec.features.begin(), rec.features.end());
    const float contrib = std::accumulate(rec.contrib_by_slice.begin(),
                                          rec.contrib_by_slice.end(), 0.0f);
    x[static_cast<size_t>(rec.state)].push_back(std::move(features));
    y[static_cast<size_t>(rec.state)].push_back({contrib > 0.0f ? 1.0 : 0.0});
  }
  for (int s = 0; s < num_states; ++s) {
    auto& sx = x[static_cast<size_t>(s)];
    if (sx.size() < 2 * static_cast<size_t>(tree_options.min_samples_leaf)) {
      continue;  // too thin to split on: the prior carries the state
    }
    StateModel& sm = states_[static_cast<size_t>(s)];
    // A failed fit (e.g. constant features) is not an error: the state
    // simply keeps its prior.
    if (sm.tree.Fit(sx, y[static_cast<size_t>(s)], tree_options).ok()) {
      sm.leaf_override.assign(sm.tree.num_leaves(), -1.0);
    }
  }
  return Status::OK();
}

int PspiceModel::LeafOf(const PartialMatch& pm) const {
  if (pm.state < 0 || pm.state >= num_states()) return -1;
  const StateModel& sm = states_[static_cast<size_t>(pm.state)];
  if (!sm.tree.fitted()) return -1;
  const std::vector<float> raw = ExtractStateFeatures(pm, *nfa_);
  const std::vector<double> features(raw.begin(), raw.end());
  return sm.tree.PredictLeaf(features);
}

size_t PspiceModel::NumLeaves(int state) const {
  if (state < 0 || state >= num_states()) return 0;
  return states_[static_cast<size_t>(state)].tree.num_leaves();
}

double PspiceModel::LeafValue(int state, int leaf) const {
  const StateModel& sm = states_[static_cast<size_t>(state)];
  if (leaf < 0 || static_cast<size_t>(leaf) >= sm.tree.num_leaves()) {
    return sm.prior;
  }
  const double override_p = sm.leaf_override[static_cast<size_t>(leaf)];
  return override_p >= 0.0 ? override_p : sm.tree.leaf(leaf).mean[0];
}

void PspiceModel::SetLeafValue(int state, int leaf, double p) {
  if (state < 0 || state >= num_states()) return;
  StateModel& sm = states_[static_cast<size_t>(state)];
  if (leaf < 0 || static_cast<size_t>(leaf) >= sm.leaf_override.size()) return;
  sm.leaf_override[static_cast<size_t>(leaf)] = p;
}

double PspiceModel::CompletionProbability(const PartialMatch& pm) const {
  if (pm.state < 0 || pm.state >= num_states()) return 0.0;
  const StateModel& sm = states_[static_cast<size_t>(pm.state)];
  if (!sm.tree.fitted()) return sm.prior;
  return LeafValue(pm.state, LeafOf(pm));
}

// --- PspiceShedder ------------------------------------------------------

PspiceShedder::PspiceShedder(const PspiceModel& model, LatencyBoundMode mode)
    : model_(model), trigger_(OverloadTrigger(mode.theta, mode.trigger_delay)) {
  created_.assign(static_cast<size_t>(model_.num_states()), {});
  completed_.assign(static_cast<size_t>(model_.num_states()), {});
}

PspiceShedder::PspiceShedder(const PspiceModel& model, FixedRatioMode mode)
    : model_(model),
      fixed_fraction_(mode.fraction),
      period_(mode.period == 0 ? 1 : mode.period) {
  created_.assign(static_cast<size_t>(model_.num_states()), {});
  completed_.assign(static_cast<size_t>(model_.num_states()), {});
}

double PspiceShedder::theta() const {
  return trigger_ ? trigger_->theta() : -1.0;
}

void PspiceShedder::Bind(Engine* engine) {
  Shedder::Bind(engine);
  for (int s = 0; s < model_.num_states(); ++s) {
    created_[static_cast<size_t>(s)].assign(
        std::max<size_t>(1, model_.NumLeaves(s)), 0.0);
    completed_[static_cast<size_t>(s)].assign(
        std::max<size_t>(1, model_.NumLeaves(s)), 0.0);
  }
  // The classifier stamps the tree leaf onto each partial match: the kill
  // audit's per-class counters then break down by leaf, and the hooks
  // below read the stamp back instead of re-extracting features.
  engine->set_classifier(
      [this](const PartialMatch& pm) { return model_.LeafOf(pm); });
  engine->set_pm_created_hook(
      [this](const PartialMatch& pm, const PartialMatch*) {
        if (pm.is_witness || pm.state < 0 || pm.state >= model_.num_states()) {
          return;
        }
        auto& row = created_[static_cast<size_t>(pm.state)];
        const size_t leaf =
            pm.class_label >= 0 &&
                    static_cast<size_t>(pm.class_label) < row.size()
                ? static_cast<size_t>(pm.class_label)
                : 0;
        row[leaf] += 1.0;
      });
  engine->set_match_hook([this](const Match&, const PartialMatch* parent) {
    if (parent == nullptr || parent->is_witness || parent->state < 0 ||
        parent->state >= model_.num_states()) {
      return;
    }
    auto& row = completed_[static_cast<size_t>(parent->state)];
    const size_t leaf =
        parent->class_label >= 0 &&
                static_cast<size_t>(parent->class_label) < row.size()
            ? static_cast<size_t>(parent->class_label)
            : 0;
    row[leaf] += 1.0;
  });
}

void PspiceShedder::ShedFraction(double fraction) {
  if (fraction <= 0.0 || engine_ == nullptr) return;
  PartialMatchStore& store = engine_->store();
  const size_t alive = store.NumAlive() + store.NumAliveWitnesses();
  // Same floor-and-clamp convention as the SS baseline: never exceed the
  // requested fraction by a whole match at tiny populations.
  size_t target =
      static_cast<size_t>(fraction * static_cast<double>(alive) + 1e-9);
  if (target > alive) target = alive;
  if (target == 0) return;

  // Witnesses cannot complete by construction: shed them first.
  store.ForEachAliveWitness([&](PartialMatch* pm) {
    if (target == 0) return;
    KillPm(pm, last_mu_, last_now_);
    --target;
  });
  if (target == 0) return;

  // Rank every live match by predicted completion probability, lowest
  // first; ties break on id so runs are deterministic.
  std::vector<std::pair<double, PartialMatch*>> ranked;
  ranked.reserve(store.NumAlive());
  store.ForEachAlive([&](PartialMatch* pm) {
    ranked.emplace_back(model_.CompletionProbability(*pm), pm);
  });
  if (obs_ != nullptr) obs_->pms_ranked.Add(ranked.size());
  std::sort(ranked.begin(), ranked.end(),
            [](const std::pair<double, PartialMatch*>& a,
               const std::pair<double, PartialMatch*>& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second->id < b.second->id;
            });
  for (const auto& [p, pm] : ranked) {
    if (target == 0) break;
    KillPm(pm, last_mu_, last_now_);
    --target;
  }
}

void PspiceShedder::MaybeFold() {
  bool changed = false;
  for (int s = 0; s < model_.num_states(); ++s) {
    auto& created = created_[static_cast<size_t>(s)];
    auto& completed = completed_[static_cast<size_t>(s)];
    for (size_t leaf = 0; leaf < model_.NumLeaves(s); ++leaf) {
      if (leaf >= created.size() || created[leaf] < kMinFoldObservations) {
        continue;
      }
      const double p_online = std::min(1.0, completed[leaf] / created[leaf]);
      model_.SetLeafValue(
          s, static_cast<int>(leaf),
          (1.0 - kFoldWeight) * model_.LeafValue(s, static_cast<int>(leaf)) +
              kFoldWeight * p_online);
      created[leaf] = 0.0;
      completed[leaf] = 0.0;
      changed = true;
    }
  }
  if (changed && obs_ != nullptr) obs_->shed_adapt_folds.Add();
}

void PspiceShedder::AfterEvent(Timestamp now, double mu) {
  last_now_ = now;
  last_mu_ = mu;
  ++events_seen_;
  if (events_seen_ % kFoldPeriod == 0) MaybeFold();
  if (trigger_) {
    const double v = trigger_->Check(mu);
    if (v > 0.0) ShedFraction(v);
    return;
  }
  if (events_seen_ % period_ == 0) ShedFraction(fixed_fraction_);
}

void PspiceShedder::Reset() {
  Shedder::Reset();
  events_seen_ = 0;
  last_now_ = 0;
  last_mu_ = 0.0;
  for (auto& row : created_) std::fill(row.begin(), row.end(), 0.0);
  for (auto& row : completed_) std::fill(row.begin(), row.end(), 0.0);
  if (trigger_) trigger_->Reset();
}

// --- Registry ----------------------------------------------------------

CEPSHED_SHEDDER_LINK_TOKEN(Pspice)

namespace {

const ShedderRegistrar kPspiceRegistrar{
    "pspice", [](const ShedderConfig& config,
                 const ShedderContext& ctx) -> Result<std::unique_ptr<Shedder>> {
      CEPSHED_RETURN_NOT_OK(
          config.ExpectKeys({"theta", "fraction", "delay", "period"}));
      CEPSHED_ASSIGN_OR_RETURN(ResolvedMode mode, ResolveMode(config, ctx));
      if (!mode.fixed() && !mode.bound()) {
        return Status::InvalidArgument(
            "shedder \"pspice\" needs a latency bound (theta=...) or a "
            "fixed ratio (fraction=...)");
      }
      if (ctx.pspice == nullptr || !ctx.pspice->trained()) {
        return Status::InvalidArgument(
            "shedder \"pspice\" needs a trained completion-probability "
            "model (construct it through a prepared harness)");
      }
      if (mode.fixed()) {
        return std::unique_ptr<Shedder>(new PspiceShedder(
            *ctx.pspice, FixedRatioMode{mode.fraction, mode.period}));
      }
      return std::unique_ptr<Shedder>(new PspiceShedder(
          *ctx.pspice, LatencyBoundMode{mode.theta, mode.delay}));
    }};

}  // namespace

}  // namespace cepshed
