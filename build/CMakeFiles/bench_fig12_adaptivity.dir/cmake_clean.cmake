file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_adaptivity.dir/bench/bench_fig12_adaptivity.cpp.o"
  "CMakeFiles/bench_fig12_adaptivity.dir/bench/bench_fig12_adaptivity.cpp.o.d"
  "bench/bench_fig12_adaptivity"
  "bench/bench_fig12_adaptivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_adaptivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
