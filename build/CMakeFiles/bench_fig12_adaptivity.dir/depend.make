# Empty dependencies file for bench_fig12_adaptivity.
# This may be replaced when dependencies are built.
