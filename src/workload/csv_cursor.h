// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// The CSV parsing core shared by the istream reader (csv.cc) and the
// memory-mapped reader (csv_mmap.cc): a zero-copy line cursor, an
// RFC-4180-style quote-aware row splitter, strict std::from_chars numeric
// parsing, and the header/row validation both readers apply. Everything
// operates on string_views into the caller's buffer — no per-row heap
// allocation on the fast (unquoted) path.

#ifndef CEPSHED_WORKLOAD_CSV_CURSOR_H_
#define CEPSHED_WORKLOAD_CSV_CURSOR_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "src/cep/schema.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/common/value.h"

namespace cepshed {

/// \brief Iterates the lines of a CSV buffer without copying.
///
/// Yields one line at a time with the terminator stripped — including the
/// `\r` of a CRLF terminator, so Windows-authored traces parse cleanly.
/// Views point into the caller's buffer and stay valid as long as it does.
class CsvCursor {
 public:
  explicit CsvCursor(std::string_view buffer) : buf_(buffer) {}

  /// Advances to the next line. Returns false at end of buffer. Empty
  /// lines are returned (callers skip them, as the istream reader does).
  bool NextRow(std::string_view* row) {
    if (pos_ >= buf_.size()) return false;
    ++line_no_;
    const size_t nl = buf_.find('\n', pos_);
    const size_t begin = pos_;
    size_t end;
    if (nl == std::string_view::npos) {
      end = buf_.size();
      pos_ = buf_.size();
    } else {
      end = nl;
      pos_ = nl + 1;
    }
    if (end > begin && buf_[end - 1] == '\r') --end;
    *row = buf_.substr(begin, end - begin);
    return true;
  }

  /// 1-based line number of the last row returned by NextRow.
  size_t line_no() const { return line_no_; }

 private:
  std::string_view buf_;
  size_t pos_ = 0;
  size_t line_no_ = 0;
};

/// \brief Splits one CSV row (line terminator already stripped) into cells.
///
/// RFC-4180 semantics: a cell that starts with `"` is quoted and may
/// contain commas and quote characters; `""` inside a quoted cell is an
/// escaped quote. Unquoted cells are returned as zero-copy views into the
/// row. Quoted cells without escapes are also zero-copy (the view drops
/// the surrounding quotes); only cells carrying `""` escapes are
/// materialized, into a scratch arena reused across rows. All returned
/// views are valid until the next Split call.
class CsvRowSplitter {
 public:
  /// Returns false on a malformed row: an unterminated quoted cell, or
  /// text between a closing quote and the next comma.
  bool Split(std::string_view row, std::vector<std::string_view>* cells);

 private:
  std::string& NextScratch();

  // deque: growing never relocates already-handed-out cell storage.
  std::deque<std::string> scratch_;
  size_t scratch_used_ = 0;
};

/// Strict integer parse: the entire cell must be a base-10 integer with an
/// optional leading '-'. Rejects whitespace, a leading '+', and trailing
/// junk — uniformly, unlike std::stoll (locale-dependent, accepts leading
/// whitespace and '+').
bool ParseCsvInt(std::string_view cell, int64_t* out);

/// Strict double parse via std::from_chars (locale-independent, decimal or
/// scientific notation). Rejects whitespace, a leading '+', and the hex
/// float forms std::stod accepts.
bool ParseCsvDouble(std::string_view cell, double* out);

/// Checks a split header row against `schema`: `type,timestamp,<attrs...>`
/// in schema order. A mismatch is the wrong file, not a bad row — hard
/// error in both read modes.
Status ValidateCsvHeader(const Schema& schema,
                         const std::vector<std::string_view>& header);

/// Parses one split data row into (type, ts, attrs). Attribute cells are
/// typed by the schema; empty cells become nulls. Any failure is returned
/// as ParseError; the caller decides whether that fails the read or just
/// skips the row.
Status ParseCsvRow(const Schema& schema,
                   const std::vector<std::string_view>& cells,
                   size_t expected_cells, size_t line_no, int* type,
                   Timestamp* ts, std::vector<Value>* attrs);

}  // namespace cepshed

#endif  // CEPSHED_WORKLOAD_CSV_CURSOR_H_
