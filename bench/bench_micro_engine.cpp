// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Micro benchmarks (google-benchmark): engine throughput with and without
// join indexes, per query, plus parser speed. Complements the figure
// benches with wall-clock numbers.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/cep/engine.h"
#include "src/cep/pred_vm.h"
#include "src/common/rng.h"
#include "src/obs/metrics.h"
#include "src/query/parser.h"
#include "src/workload/csv.h"
#include "src/workload/csv_mmap.h"
#include "src/workload/ds1.h"
#include "src/workload/ds2.h"
#include "src/workload/queries.h"

namespace cepshed {
namespace {

/// Predicate-evaluation kernel shared by the BM_PredicateEval pair: Arg(0)
/// walks the Expr trees (interpreter), Arg(1) runs the compiled bytecode.
/// Each outer step replays `contexts` evaluation contexts; every context
/// change invalidates the VM's load registers, exactly as Engine::
/// FillContext does, so the measured VM includes its cache-maintenance
/// cost. Items processed = predicate evaluations, so the reported rate is
/// predicate-eval throughput (scripts/check_predicate_vm.py gates the /1
/// vs /0 ratio in CI).
void RunPredicateEvalBench(benchmark::State& state, const Nfa& nfa,
                           const std::vector<EvalContext>& contexts) {
  const bool use_vm = state.range(0) != 0;
  // Only predicates the compiler accepts take part, in both arms — Q3's
  // AVG-over-binding conjunct would run the interpreter either way and
  // dilute the comparison.
  std::vector<const CompiledPredicate*> preds;
  for (int s = 0; s < nfa.num_states(); ++s) {
    for (const CompiledPredicate* cp : nfa.state(s).bind_preds) {
      if (cp->vm_program >= 0) preds.push_back(cp);
    }
    for (const CompiledPredicate* cp : nfa.state(s).iter_preds) {
      if (cp->vm_program >= 0) preds.push_back(cp);
    }
  }
  const PredVmModule& module = *nfa.vm_module();
  PredVmContext vmc;
  vmc.Prepare(module.num_loads());
  double checksum = 0.0;
  for (auto _ : state) {
    for (const EvalContext& ctx : contexts) {
      double cost = 0.0;
      int passed = 0;
      if (use_vm) {
        vmc.Invalidate();
        for (const CompiledPredicate* cp : preds) {
          passed += module.EvalBool(cp->vm_program, ctx, &vmc, &cost) ? 1 : 0;
        }
      } else {
        for (const CompiledPredicate* cp : preds) {
          passed += cp->expr->EvalBool(ctx, &cost) ? 1 : 0;
        }
      }
      checksum += cost + passed;
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(contexts.size()) *
                          static_cast<int64_t>(preds.size()));
  state.counters["preds"] = static_cast<double>(preds.size());
}

/// One query's predicate workload: its compiled NFA plus synthetic
/// evaluation contexts (the events are kept alive by `owners`).
struct PredWorkload {
  std::shared_ptr<Nfa> nfa;
  std::vector<EventPtr> owners;
  std::vector<EvalContext> contexts;
};

/// Q1's integer predicate mix (equality joins + an arithmetic equality)
/// over edge-form contexts: a and b bound, a C event under test.
PredWorkload BuildQ1Workload() {
  PredWorkload w;
  const Schema schema = MakeDs1Schema();
  w.nfa = *Nfa::Compile(*queries::Q1("4ms"), &schema);
  Rng rng(7);
  const size_t num_ctx = 256;
  w.owners.reserve(num_ctx * 3);
  w.contexts.resize(num_ctx);
  for (EvalContext& ctx : w.contexts) {
    ctx.num_elements = 3;
    for (int e = 0; e < 3; ++e) {
      std::vector<Value> attrs(schema.num_attributes());
      attrs[0] = Value(rng.UniformInt(0, 4));   // ID: joins pass ~20%
      attrs[1] = Value(rng.UniformInt(1, 10));  // V
      w.owners.push_back(std::make_shared<Event>(e, 1, 0, std::move(attrs)));
      if (e < 2) {
        ElemBinding& b = ctx.bindings[e];
        b.count = 1;
        b.first = b.last = w.owners.back().get();
      } else {
        ctx.current = w.owners.back().get();
        ctx.current_elem = 2;
      }
    }
  }
  return w;
}

/// Q3's double predicate mix (division, range comparisons, sqrt inside the
/// n-ary AVG is excluded as an aggregate-free conjunct set) over DS2-shaped
/// events: a, b, c bound, a D event under test.
PredWorkload BuildQ3Workload() {
  PredWorkload w;
  const Schema schema = MakeDs2Schema();
  w.nfa = *Nfa::Compile(*queries::Q3("8ms"), &schema);
  Rng rng(11);
  const size_t num_ctx = 256;
  w.owners.reserve(num_ctx * 4);
  w.contexts.resize(num_ctx);
  for (EvalContext& ctx : w.contexts) {
    ctx.num_elements = 4;
    for (int e = 0; e < 4; ++e) {
      std::vector<Value> attrs(schema.num_attributes());
      attrs[0] = Value(static_cast<double>(rng.UniformInt(0, 4)));  // ID
      attrs[1] = Value(rng.UniformDouble(0.0, 4.0));                // x
      attrs[2] = Value(rng.UniformDouble(0.0, 4.0));                // y
      attrs[3] = Value(rng.UniformDouble(0.0, 4.0));                // v
      w.owners.push_back(std::make_shared<Event>(e, 1, 0, std::move(attrs)));
      if (e < 3) {
        ElemBinding& b = ctx.bindings[e];
        b.count = 1;
        b.first = b.last = w.owners.back().get();
      } else {
        ctx.current = w.owners.back().get();
        ctx.current_elem = 3;
      }
    }
  }
  return w;
}

/// The paper-query predicate mix (Q1's integer joins + Q3's double
/// arithmetic): the headline number the CI gate enforces.
void BM_PredicateEval(benchmark::State& state) {
  const PredWorkload q1 = BuildQ1Workload();
  const PredWorkload q3 = BuildQ3Workload();
  const bool use_vm = state.range(0) != 0;
  std::vector<std::vector<const CompiledPredicate*>> preds(2);
  const PredWorkload* workloads[] = {&q1, &q3};
  PredVmContext vmcs[2];
  int64_t items_per_iter = 0;
  for (int w = 0; w < 2; ++w) {
    const Nfa& nfa = *workloads[w]->nfa;
    for (int s = 0; s < nfa.num_states(); ++s) {
      for (const CompiledPredicate* cp : nfa.state(s).bind_preds) {
        if (cp->vm_program >= 0) preds[w].push_back(cp);
      }
      for (const CompiledPredicate* cp : nfa.state(s).iter_preds) {
        if (cp->vm_program >= 0) preds[w].push_back(cp);
      }
    }
    vmcs[w].Prepare(nfa.vm_module()->num_loads());
    items_per_iter += static_cast<int64_t>(workloads[w]->contexts.size()) *
                      static_cast<int64_t>(preds[w].size());
  }
  double checksum = 0.0;
  for (auto _ : state) {
    for (int w = 0; w < 2; ++w) {
      const PredVmModule& module = *workloads[w]->nfa->vm_module();
      for (const EvalContext& ctx : workloads[w]->contexts) {
        double cost = 0.0;
        int passed = 0;
        if (use_vm) {
          vmcs[w].Invalidate();
          for (const CompiledPredicate* cp : preds[w]) {
            passed += module.EvalBool(cp->vm_program, ctx, &vmcs[w], &cost) ? 1 : 0;
          }
        } else {
          for (const CompiledPredicate* cp : preds[w]) {
            passed += cp->expr->EvalBool(ctx, &cost) ? 1 : 0;
          }
        }
        checksum += cost + passed;
      }
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          items_per_iter);
}
BENCHMARK(BM_PredicateEval)->Arg(0)->Arg(1);

void BM_PredicateEvalQ1(benchmark::State& state) {
  const PredWorkload w = BuildQ1Workload();
  RunPredicateEvalBench(state, *w.nfa, w.contexts);
}
BENCHMARK(BM_PredicateEvalQ1)->Arg(0)->Arg(1);

void BM_PredicateEvalQ3(benchmark::State& state) {
  const PredWorkload w = BuildQ3Workload();
  RunPredicateEvalBench(state, *w.nfa, w.contexts);
}
BENCHMARK(BM_PredicateEvalQ3)->Arg(0)->Arg(1);

/// End-to-end engine pair for the same toggle: the whole Q1 pipeline with
/// the interpreter (Arg 0) vs. the VM (Arg 1).
void BM_EngineQ1PredVm(benchmark::State& state) {
  const Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = 20000;
  const EventStream stream = GenerateDs1(schema, gen);
  auto nfa = Nfa::Compile(*queries::Q1("4ms"), &schema);
  EngineOptions opts;
  opts.use_pred_vm = state.range(0) != 0;
  for (auto _ : state) {
    Engine engine(*nfa, opts);
    std::vector<Match> out;
    for (const EventPtr& e : stream) engine.Process(e, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_EngineQ1PredVm)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_EngineQ1(benchmark::State& state) {
  const Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = 20000;
  const EventStream stream = GenerateDs1(schema, gen);
  auto nfa = Nfa::Compile(*queries::Q1("4ms"), &schema);
  EngineOptions opts;
  opts.use_join_index = state.range(0) != 0;
  for (auto _ : state) {
    Engine engine(*nfa, opts);
    std::vector<Match> out;
    for (const EventPtr& e : stream) engine.Process(e, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_EngineQ1)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// BM_EngineQ1 with the full per-event obs record path enabled — exactly
/// what ShedRunner/ShardState add per event: two counters, the cost
/// histogram, and the matches-emitted delta. The CI overhead gate compares
/// this against BM_EngineQ1 (same Arg) and fails above 5%.
void BM_EngineQ1Metrics(benchmark::State& state) {
  const Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = 20000;
  const EventStream stream = GenerateDs1(schema, gen);
  auto nfa = Nfa::Compile(*queries::Q1("4ms"), &schema);
  EngineOptions opts;
  opts.use_join_index = state.range(0) != 0;
  obs::MetricsRegistry registry;
  registry.EnsureShards(1);
  obs::ShardObs* obs = registry.shard(0);
  for (auto _ : state) {
    Engine engine(*nfa, opts);
    std::vector<Match> out;
    size_t matches_seen = 0;
    for (const EventPtr& e : stream) {
      const double cost = engine.Process(e, &out);
      obs->events_routed.Add();
      obs->events_processed.Add();
      obs->event_cost.Record(cost);
      if (out.size() != matches_seen) {
        obs->matches_emitted.Add(out.size() - matches_seen);
        matches_seen = out.size();
      }
    }
    benchmark::DoNotOptimize(out.size());
    benchmark::DoNotOptimize(obs->events_processed.Load());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_EngineQ1Metrics)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_EngineQ2Kleene(benchmark::State& state) {
  const Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = 10000;
  gen.event_gap = 2;
  const EventStream stream = GenerateDs1(schema, gen);
  auto nfa = Nfa::Compile(*queries::Q2(static_cast<int>(state.range(0)), "1ms"), &schema);
  for (auto _ : state) {
    Engine engine(*nfa, EngineOptions{});
    std::vector<Match> out;
    for (const EventPtr& e : stream) engine.Process(e, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_EngineQ2Kleene)->Arg(1)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

/// Clone-path microbenchmark: bursts of same-ID A events drive a Kleene
/// pattern under skip-till-any-match, so every event extends every open
/// match — TryBind's clone path dominates. No completing B ever arrives
/// (emission cost is absent) and bursts are separated by a full window so
/// eviction clears the store between them. The arg is the Kleene cap,
/// i.e. the chain length the workload reaches: with the shared-prefix
/// representation a clone is O(1) in the parent length, so clones/sec
/// should stay nearly flat as the cap grows; a flat-vector copy degrades
/// linearly. scripts/check_clone_path.py gates on exactly that ratio.
void BM_EngineKleeneClone(benchmark::State& state) {
  const Schema schema = MakeDs1Schema();
  const int reps = static_cast<int>(state.range(0));
  // Every event anchors a fresh match and extends every open chain: event
  // s carries ID=s and V=s+1, and the bare-attribute join keys
  // (b[first].ID = a.V, b[i+1].ID = b[i].V) chain consecutive events, so
  // each chain grows by exactly one binding per event until the Kleene
  // cap. Keys are globally unique, so the hash-join probes are exact (no
  // tombstone scanning) and per-event work is ~cap clones of parent
  // lengths 1..cap — the clone path at real chain depth.
  auto q = ParseQuery(
      "PATTERN SEQ(A a, A+{1," + std::to_string(reps) +
      "} b[], B c) WHERE b[first].ID = a.V AND b[i+1].ID = b[i].V "
      "AND a.ID = c.ID WITHIN 1ms");
  auto nfa = Nfa::Compile(*q, &schema);
  const int id_attr = schema.AttributeIndex("ID");
  const int v_attr = schema.AttributeIndex("V");
  std::vector<EventPtr> stream;
  const uint64_t kEvents = 4000;
  // Chains only grow while their anchor is inside the 1ms window, so the
  // event spacing must leave room for `reps` extensions before expiry.
  const Timestamp step = reps <= 64 ? 10 : 2;
  for (uint64_t s = 0; s < kEvents; ++s) {
    std::vector<Value> attrs(schema.num_attributes());
    attrs[static_cast<size_t>(id_attr)] = Value(static_cast<int64_t>(s));
    attrs[static_cast<size_t>(v_attr)] = Value(static_cast<int64_t>(s + 1));
    stream.push_back(std::make_shared<Event>(
        schema.EventTypeId("A"), static_cast<Timestamp>(s) * step, s,
        std::move(attrs)));
  }
  uint64_t clones = 0;
  for (auto _ : state) {
    Engine engine(*nfa, EngineOptions{});
    std::vector<Match> out;
    for (const EventPtr& e : stream) engine.Process(e, &out);
    clones = engine.stats().pms_created;
    benchmark::DoNotOptimize(clones);
  }
  // Throughput in clones (not events), so arms with different caps and
  // thus different fan-outs stay comparable.
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(clones));
  state.counters["pms_created"] = static_cast<double>(clones);
}
BENCHMARK(BM_EngineKleeneClone)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

/// Expiry-path pair: Arg(0) finds expired matches with the O(live) window
/// sweep, Arg(1) with the hierarchical timing wheel (deadline-ordered
/// reaping, DESIGN.md §3.9). The workload is the wheel's target regime —
/// Kleene state under a window spanning thousands of events, so the live
/// set the scan arm walks every `evict_interval` events is ~100x larger
/// than the handful of matches that actually expired in the stride. IDs
/// repeat only a few times per window, keeping the hash-join probe work
/// (identical in both arms) small relative to the sweeps. Kill sets,
/// stats, and cost units are byte-identical by the parity contract
/// (expiry_wheel_test/differential_test pin it; the bench aborts if the
/// arms' emitted-match counts ever disagree), so the wall-clock ratio is
/// pure sweep savings. scripts/check_expiry.py gates the ratio in CI.
void BM_ExpirySweep(benchmark::State& state) {
  const Schema schema = MakeDs1Schema();
  const int id_attr = schema.AttributeIndex("ID");
  const int v_attr = schema.AttributeIndex("V");
  // 90% A (anchors + Kleene binds), 8% B (closers), 2% C; one event per
  // microsecond against a 25ms window => the live set climbs past 40k
  // matches while each sweep stride expires only a few hundred.
  std::vector<EventPtr> stream;
  const uint64_t kEvents = 30000;
  const uint64_t kIdUniverse = 16384;
  Rng rng(1234);
  for (uint64_t s = 0; s < kEvents; ++s) {
    const uint64_t roll = rng.Next() % 100;
    const char* type = roll < 90 ? "A" : (roll < 98 ? "B" : "C");
    std::vector<Value> attrs(schema.num_attributes());
    attrs[static_cast<size_t>(id_attr)] =
        Value(static_cast<int64_t>(rng.Next() % kIdUniverse));
    attrs[static_cast<size_t>(v_attr)] = Value(static_cast<int64_t>(s % 10));
    stream.push_back(std::make_shared<Event>(schema.EventTypeId(type),
                                             static_cast<Timestamp>(s), s,
                                             std::move(attrs)));
  }
  auto q = ParseQuery(
      "PATTERN SEQ(A a, A+{1,2} b[], B c) "
      "WHERE a.ID = b[i].ID AND a.ID = c.ID WITHIN 25ms");
  auto nfa = Nfa::Compile(*q, &schema);
  EngineOptions opts;
  opts.use_expiry_wheel = state.range(0) != 0;
  // Parity guard: both arms must emit the identical match count. The
  // reference is computed once, from the scan arm's configuration.
  static uint64_t expected_matches = 0;
  if (expected_matches == 0) {
    EngineOptions scan = opts;
    scan.use_expiry_wheel = false;
    Engine ref(*nfa, scan);
    std::vector<Match> out;
    for (const EventPtr& e : stream) ref.Process(e, &out);
    expected_matches = ref.stats().matches_emitted;
  }
  for (auto _ : state) {
    Engine engine(*nfa, opts);
    std::vector<Match> out;
    for (const EventPtr& e : stream) engine.Process(e, &out);
    if (engine.stats().matches_emitted != expected_matches) {
      state.SkipWithError("wheel/scan arms disagree on emitted matches");
      break;
    }
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_ExpirySweep)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Shared fixture for the ingest benches: a DS1 trace serialized to CSV
/// once, plus the fused attr-vs-constant predicates of a literal filter
/// prefix compiled over the DS1 schema. The paper queries themselves are
/// join-only (every conjunct references two elements, so none fuse — see
/// batch_ingest_test's PaperQ1 case); real traces are screened by literal
/// predicates long before the joins, and that screening prefix is the
/// shape both ingest arms evaluate.
struct BatchIngestFixture {
  struct FusedPred {
    int prog;
    PredVmModule::FusedAcSpec spec;
  };

  Schema schema;
  std::string path;
  std::shared_ptr<const Nfa> nfa;
  std::vector<FusedPred> preds;
  size_t num_events = 0;

  BatchIngestFixture() : schema(MakeDs1Schema()) {
    Ds1Options gen;
    gen.num_events = 50000;
    gen.event_gap = 10;
    gen.seed = 7;
    const EventStream stream = GenerateDs1(schema, gen);
    num_events = stream.size();
    path = "/tmp/cepshed_bench_batch_ingest.csv";
    if (!WriteCsvFile(stream, path).ok()) std::abort();
    auto q = ParseQuery(
        "PATTERN SEQ(A a, B b) WHERE a.V > 3 AND a.V < 9 AND a.ID != 3 AND "
        "b.V >= 2 AND b.V <= 8 AND b.ID > 1 AND a.ID = b.ID WITHIN 2ms");
    nfa = *Nfa::Compile(*q, &schema);
    const PredVmModule& module = *nfa->vm_module();
    for (int s = 0; s < nfa->num_states(); ++s) {
      for (const CompiledPredicate* cp : nfa->state(s).bind_preds) {
        PredVmModule::FusedAcSpec spec;
        if (cp->vm_program >= 0 &&
            module.FusedAcProgram(cp->vm_program, &spec)) {
          preds.push_back({cp->vm_program, spec});
        }
      }
    }
    if (preds.empty()) std::abort();
  }

  static const BatchIngestFixture& Get() {
    static BatchIngestFixture fixture;
    return fixture;
  }
};

/// The ingest+eval hot-path pair the CI gate enforces. Arg(0) is the
/// classic front end: ReadCsvFile (istream, one line copy per row)
/// followed by a per-event pred-VM evaluation of each fused filter
/// predicate — exactly the work Engine::FillContext + EvalBool do per
/// bind attempt. Arg(1) is the batched front end this measures: Mapped-
/// CsvReader::NextBatch (zero-copy parse out of the mapping) followed by
/// SoA column extraction and one typed compare loop per predicate — the
/// same kernel shape Engine::BeginBatch uses for its batch masks (whose
/// bit-for-bit agreement with EvalBool is pinned by batch_ingest_test;
/// here the two arms' pass counts are asserted equal every iteration).
/// Items processed = events, so the /1 : /0 items_per_second ratio is the
/// ingest+eval speedup scripts/check_batch_ingest.py gates in CI.
void BM_BatchIngest(benchmark::State& state) {
  const BatchIngestFixture& f = BatchIngestFixture::Get();
  const PredVmModule& module = *f.nfa->vm_module();
  const bool batched = state.range(0) != 0;
  const int num_attrs = static_cast<int>(f.schema.num_attributes());
  uint64_t passed = 0;
  for (auto _ : state) {
    passed = 0;
    if (batched) {
      auto reader = MappedCsvReader::Open(f.schema, f.path);
      if (!reader.ok()) std::abort();
      std::vector<EventPtr> buf;
      buf.reserve(256);
      std::vector<int64_t> col;
      std::vector<uint8_t> ok;
      for (;;) {
        buf.clear();
        auto n = reader->NextBatch(256, &buf);
        if (!n.ok()) std::abort();
        if (*n == 0) break;
        for (int attr = 0; attr < num_attrs; ++attr) {
          col.resize(*n);
          ok.resize(*n);
          for (size_t i = 0; i < *n; ++i) {
            const Value& v = buf[i]->attr(attr);
            ok[i] = !v.is_null() && v.type() == ValueType::kInt;
            col[i] = ok[i] ? v.AsInt() : 0;
          }
          for (const BatchIngestFixture::FusedPred& p : f.preds) {
            if (p.spec.attr != attr) continue;
            const int64_t k = p.spec.constant.i;
            uint64_t acc = 0;
            switch (p.spec.op) {
              case CmpOp::kEq: for (size_t i = 0; i < *n; ++i) acc += ok[i] & (col[i] == k); break;
              case CmpOp::kNe: for (size_t i = 0; i < *n; ++i) acc += ok[i] & (col[i] != k); break;
              case CmpOp::kLt: for (size_t i = 0; i < *n; ++i) acc += ok[i] & (col[i] < k); break;
              case CmpOp::kLe: for (size_t i = 0; i < *n; ++i) acc += ok[i] & (col[i] <= k); break;
              case CmpOp::kGt: for (size_t i = 0; i < *n; ++i) acc += ok[i] & (col[i] > k); break;
              case CmpOp::kGe: for (size_t i = 0; i < *n; ++i) acc += ok[i] & (col[i] >= k); break;
            }
            passed += acc;
          }
        }
      }
    } else {
      auto stream = ReadCsvFile(f.schema, f.path);
      if (!stream.ok()) std::abort();
      PredVmContext vmc;
      vmc.Prepare(module.num_loads());
      EvalContext ctx;
      ctx.num_elements = 2;
      double cost = 0.0;
      for (const EventPtr& e : *stream) {
        ctx.current = e.get();
        vmc.Invalidate();
        for (const BatchIngestFixture::FusedPred& p : f.preds) {
          ctx.current_elem = p.spec.elem;
          passed += module.EvalBool(p.prog, ctx, &vmc, &cost) ? 1 : 0;
        }
      }
    }
    benchmark::DoNotOptimize(passed);
  }
  // Both arms must agree on every predicate outcome; a kernel that drifts
  // from EvalBool semantics would otherwise post a fraudulent speedup.
  static uint64_t expected_passed = 0;
  if (expected_passed == 0) expected_passed = passed;
  if (passed != expected_passed) std::abort();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.num_events));
  state.counters["preds"] = static_cast<double>(f.preds.size());
}
BENCHMARK(BM_BatchIngest)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// End-to-end companion (not gated): the same trace through the whole
/// engine — ReadCsvFile + per-event Process vs. MappedCsvReader +
/// ProcessBatch. Match-store and join work dominates here and is
/// identical in both arms by the parity contract, so the ratio shows how
/// much of the front-end win survives in a full pipeline rather than the
/// kernel speedup itself.
void BM_EngineBatchPipeline(benchmark::State& state) {
  const BatchIngestFixture& f = BatchIngestFixture::Get();
  const bool batched = state.range(0) != 0;
  size_t matches = 0;
  for (auto _ : state) {
    Engine engine(f.nfa, EngineOptions{});
    std::vector<Match> out;
    if (batched) {
      auto reader = MappedCsvReader::Open(f.schema, f.path);
      if (!reader.ok()) std::abort();
      std::vector<EventPtr> buf;
      buf.reserve(256);
      for (;;) {
        buf.clear();
        auto n = reader->NextBatch(256, &buf);
        if (!n.ok()) std::abort();
        if (*n == 0) break;
        engine.ProcessBatch(buf.data(), *n, &out);
      }
    } else {
      auto stream = ReadCsvFile(f.schema, f.path);
      if (!stream.ok()) std::abort();
      for (const EventPtr& e : *stream) engine.Process(e, &out);
    }
    matches = out.size();
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.num_events));
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_EngineBatchPipeline)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_ParseQuery(benchmark::State& state) {
  const std::string text =
      "PATTERN SEQ(A a, A+{1,4} b[], B c, C d) "
      "WHERE a.ID = b[i].ID AND a.ID = c.ID AND b[i].V = a.V AND a.V + c.V = d.V "
      "WITHIN 1ms";
  for (auto _ : state) {
    auto q = ParseQuery(text);
    benchmark::DoNotOptimize(q.ok());
  }
}
BENCHMARK(BM_ParseQuery);

void BM_NfaCompile(benchmark::State& state) {
  const Schema schema = MakeDs1Schema();
  const Query query = *queries::Q1("4ms");
  for (auto _ : state) {
    auto nfa = Nfa::Compile(query, &schema);
    benchmark::DoNotOptimize(nfa.ok());
  }
}
BENCHMARK(BM_NfaCompile);

}  // namespace
}  // namespace cepshed

BENCHMARK_MAIN();
