// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/shed/baselines.h"

#include <algorithm>
#include <numeric>

#include "src/shed/registry.h"

namespace cepshed {

// --- RI ----------------------------------------------------------------

RandomInputShedder::RandomInputShedder(double theta, uint64_t trigger_delay,
                                       uint64_t seed)
    : controller_(DropRateController(theta, trigger_delay)), rng_(seed) {}

RandomInputShedder::RandomInputShedder(double fraction, uint64_t seed)
    : fixed_fraction_(fraction), rng_(seed) {}

double RandomInputShedder::theta() const {
  return controller_ ? controller_->theta() : -1.0;
}

bool RandomInputShedder::FilterEvent(const Event& event) {
  const double p = fixed_fraction_ >= 0.0 ? fixed_fraction_ : rate_;
  if (p > 0.0 && rng_.Bernoulli(p)) {
    // RI has no model class; the event type is the audit class, so the
    // per-class counters resolve to per-type drop counts.
    return DropEvent(static_cast<int>(event.type()), last_mu_, event.seq(),
                     event.timestamp());
  }
  return false;
}

void RandomInputShedder::AfterEvent(Timestamp, double mu) {
  last_mu_ = mu;
  if (controller_) rate_ = controller_->Update(mu);
}

void RandomInputShedder::Reset() {
  Shedder::Reset();
  rate_ = 0.0;
  last_mu_ = 0.0;
  if (controller_) controller_->Reset();
}

// --- SI ----------------------------------------------------------------

SelectivityInputShedder::SelectivityInputShedder(const OfflineStats& stats,
                                                 double theta, uint64_t trigger_delay,
                                                 uint64_t seed)
    : type_utility_(stats.type_utility),
      type_share_(stats.type_share),
      controller_(DropRateController(theta, trigger_delay)),
      rng_(seed) {
  drop_prob_.assign(type_utility_.size(), 0.0);
}

SelectivityInputShedder::SelectivityInputShedder(const OfflineStats& stats,
                                                 double fraction, uint64_t seed)
    : type_utility_(stats.type_utility),
      type_share_(stats.type_share),
      fixed_fraction_(fraction),
      rng_(seed) {
  drop_prob_.assign(type_utility_.size(), 0.0);
  RebuildPlan(fraction);
}

double SelectivityInputShedder::theta() const {
  return controller_ ? controller_->theta() : -1.0;
}

void SelectivityInputShedder::RebuildPlan(double fraction) {
  planned_fraction_ = fraction;
  std::fill(drop_prob_.begin(), drop_prob_.end(), 0.0);
  if (fraction <= 0.0) return;
  // Types in increasing utility order; drop whole low-utility types first,
  // then a probabilistic share of the marginal type.
  std::vector<size_t> order(type_utility_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (type_utility_[a] != type_utility_[b]) {
      return type_utility_[a] < type_utility_[b];
    }
    return type_share_[a] > type_share_[b];
  });
  double remaining = fraction;
  for (size_t t : order) {
    if (remaining <= 0.0) break;
    const double share = type_share_[t];
    if (share <= 0.0) continue;
    if (share <= remaining) {
      drop_prob_[t] = 1.0;
      remaining -= share;
    } else {
      drop_prob_[t] = remaining / share;
      remaining = 0.0;
    }
  }
}

bool SelectivityInputShedder::FilterEvent(const Event& event) {
  const size_t t = static_cast<size_t>(event.type());
  if (t >= drop_prob_.size()) return false;
  const double p = drop_prob_[t];
  if (p >= 1.0 || (p > 0.0 && rng_.Bernoulli(p))) {
    return DropEvent(static_cast<int>(event.type()), last_mu_, event.seq(),
                     event.timestamp());
  }
  return false;
}

void SelectivityInputShedder::AfterEvent(Timestamp, double mu) {
  last_mu_ = mu;
  if (!controller_) return;
  const double rate = controller_->Update(mu);
  if (rate != planned_fraction_) RebuildPlan(rate);
}

void SelectivityInputShedder::Reset() {
  Shedder::Reset();
  last_mu_ = 0.0;
  if (controller_) {
    controller_->Reset();
    RebuildPlan(0.0);
  } else {
    RebuildPlan(fixed_fraction_);
  }
}

// --- RS ----------------------------------------------------------------

RandomStateShedder::RandomStateShedder(LatencyBoundMode mode, uint64_t seed)
    : trigger_(OverloadTrigger(mode.theta, mode.trigger_delay)), rng_(seed) {}

RandomStateShedder::RandomStateShedder(FixedRatioMode mode, uint64_t seed)
    : fixed_fraction_(mode.fraction),
      period_(mode.period == 0 ? 1 : mode.period),
      rng_(seed) {}

double RandomStateShedder::theta() const {
  return trigger_ ? trigger_->theta() : -1.0;
}

void RandomStateShedder::ShedFraction(double fraction) {
  if (fraction <= 0.0) return;
  engine_->store().ForEachAlive([&](PartialMatch* pm) {
    if (rng_.Bernoulli(fraction)) KillPm(pm);
  });
  engine_->store().ForEachAliveWitness([&](PartialMatch* pm) {
    if (rng_.Bernoulli(fraction)) KillPm(pm);
  });
}

void RandomStateShedder::AfterEvent(Timestamp, double mu) {
  if (trigger_) {
    const double v = trigger_->Check(mu);
    if (v > 0.0) ShedFraction(v);
    return;
  }
  if (++events_seen_ % period_ == 0) ShedFraction(fixed_fraction_);
}

void RandomStateShedder::Reset() {
  Shedder::Reset();
  events_seen_ = 0;
  if (trigger_) trigger_->Reset();
}

// --- SS ----------------------------------------------------------------

SelectivityStateShedder::SelectivityStateShedder(const OfflineStats& stats,
                                                 LatencyBoundMode mode, uint64_t seed)
    : state_completion_(stats.state_completion),
      trigger_(OverloadTrigger(mode.theta, mode.trigger_delay)),
      rng_(seed) {}

SelectivityStateShedder::SelectivityStateShedder(const OfflineStats& stats,
                                                 FixedRatioMode mode, uint64_t seed)
    : state_completion_(stats.state_completion),
      fixed_fraction_(mode.fraction),
      period_(mode.period == 0 ? 1 : mode.period),
      rng_(seed) {}

double SelectivityStateShedder::theta() const {
  return trigger_ ? trigger_->theta() : -1.0;
}

void SelectivityStateShedder::ShedFraction(double fraction) {
  if (fraction <= 0.0) return;
  const size_t alive =
      engine_->store().NumAlive() + engine_->store().NumAliveWitnesses();
  // Floor, not round: rounding up can exceed the requested fraction by a
  // whole match at tiny populations (alive=1, fraction=0.9 must kill 0,
  // not 1). The epsilon keeps exact products like 0.2*5 from flooring one
  // short; the clamp guards fraction > 1 (relative violations can be).
  size_t target =
      static_cast<size_t>(fraction * static_cast<double>(alive) + 1e-9);
  if (target > alive) target = alive;
  if (target == 0) return;

  // Witnesses have zero completion probability: shed them first.
  engine_->store().ForEachAliveWitness([&](PartialMatch* pm) {
    if (target == 0) return;
    KillPm(pm);
    --target;
  });
  if (target == 0) return;

  // States in increasing completion probability.
  std::vector<int> order(state_completion_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return state_completion_[static_cast<size_t>(a)] <
           state_completion_[static_cast<size_t>(b)];
  });
  for (int s : order) {
    if (target == 0) break;
    for (auto& pm : engine_->store().bucket(s)) {
      if (target == 0) break;
      if (!pm->alive) continue;
      KillPm(pm.get());
      --target;
    }
  }
}

void SelectivityStateShedder::AfterEvent(Timestamp, double mu) {
  if (trigger_) {
    const double v = trigger_->Check(mu);
    if (v > 0.0) ShedFraction(v);
    return;
  }
  if (++events_seen_ % period_ == 0) ShedFraction(fixed_fraction_);
}

void SelectivityStateShedder::Reset() {
  Shedder::Reset();
  events_seen_ = 0;
  if (trigger_) trigger_->Reset();
}

// --- Registry ----------------------------------------------------------

CEPSHED_SHEDDER_LINK_TOKEN(Baselines)

namespace {

Status NeedMode(const char* name, const ResolvedMode& mode) {
  if (mode.fixed() || mode.bound()) return Status::OK();
  return Status::InvalidArgument(std::string("shedder \"") + name +
                                 "\" needs a latency bound (theta=...) or a "
                                 "fixed ratio (fraction=...)");
}

Status NeedOffline(const char* name, const ShedderContext& ctx) {
  if (ctx.offline != nullptr) return Status::OK();
  return Status::InvalidArgument(std::string("shedder \"") + name +
                                 "\" needs offline selectivity statistics "
                                 "(construct it through a prepared harness)");
}

const ShedderRegistrar kRiRegistrar{
    "ri", [](const ShedderConfig& config,
             const ShedderContext& ctx) -> Result<std::unique_ptr<Shedder>> {
      CEPSHED_RETURN_NOT_OK(config.ExpectKeys({"theta", "fraction", "delay", "seed"}));
      CEPSHED_ASSIGN_OR_RETURN(ResolvedMode mode, ResolveMode(config, ctx));
      CEPSHED_RETURN_NOT_OK(NeedMode("ri", mode));
      if (mode.fixed()) {
        return std::unique_ptr<Shedder>(
            new RandomInputShedder(mode.fraction, mode.seed));
      }
      return std::unique_ptr<Shedder>(
          new RandomInputShedder(mode.theta, mode.delay, mode.seed));
    }};

const ShedderRegistrar kSiRegistrar{
    "si", [](const ShedderConfig& config,
             const ShedderContext& ctx) -> Result<std::unique_ptr<Shedder>> {
      CEPSHED_RETURN_NOT_OK(config.ExpectKeys({"theta", "fraction", "delay", "seed"}));
      CEPSHED_ASSIGN_OR_RETURN(ResolvedMode mode, ResolveMode(config, ctx));
      CEPSHED_RETURN_NOT_OK(NeedMode("si", mode));
      CEPSHED_RETURN_NOT_OK(NeedOffline("si", ctx));
      if (mode.fixed()) {
        return std::unique_ptr<Shedder>(
            new SelectivityInputShedder(*ctx.offline, mode.fraction, mode.seed));
      }
      return std::unique_ptr<Shedder>(new SelectivityInputShedder(
          *ctx.offline, mode.theta, mode.delay, mode.seed));
    }};

const ShedderRegistrar kRsRegistrar{
    "rs", [](const ShedderConfig& config,
             const ShedderContext& ctx) -> Result<std::unique_ptr<Shedder>> {
      CEPSHED_RETURN_NOT_OK(
          config.ExpectKeys({"theta", "fraction", "delay", "period", "seed"}));
      CEPSHED_ASSIGN_OR_RETURN(ResolvedMode mode, ResolveMode(config, ctx));
      CEPSHED_RETURN_NOT_OK(NeedMode("rs", mode));
      if (mode.fixed()) {
        return std::unique_ptr<Shedder>(new RandomStateShedder(
            FixedRatioMode{mode.fraction, mode.period}, mode.seed));
      }
      return std::unique_ptr<Shedder>(new RandomStateShedder(
          LatencyBoundMode{mode.theta, mode.delay}, mode.seed));
    }};

const ShedderRegistrar kSsRegistrar{
    "ss", [](const ShedderConfig& config,
             const ShedderContext& ctx) -> Result<std::unique_ptr<Shedder>> {
      CEPSHED_RETURN_NOT_OK(
          config.ExpectKeys({"theta", "fraction", "delay", "period", "seed"}));
      CEPSHED_ASSIGN_OR_RETURN(ResolvedMode mode, ResolveMode(config, ctx));
      CEPSHED_RETURN_NOT_OK(NeedMode("ss", mode));
      CEPSHED_RETURN_NOT_OK(NeedOffline("ss", ctx));
      if (mode.fixed()) {
        return std::unique_ptr<Shedder>(new SelectivityStateShedder(
            *ctx.offline, FixedRatioMode{mode.fraction, mode.period}, mode.seed));
      }
      return std::unique_ptr<Shedder>(new SelectivityStateShedder(
          *ctx.offline, LatencyBoundMode{mode.theta, mode.delay}, mode.seed));
    }};

}  // namespace

}  // namespace cepshed
