// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/cep/engine.h"

#include <algorithm>
#include <cassert>

namespace cepshed {

Engine::Engine(std::shared_ptr<const Nfa> nfa, EngineOptions options)
    : nfa_(std::move(nfa)),
      options_(options),
      store_(nfa_->num_states(), static_cast<int>(nfa_->query().elements.size())),
      indexes_(static_cast<size_t>(nfa_->num_states())) {
  ctx_.num_elements = static_cast<int>(nfa_->query().elements.size());
  // Aggregates fold every bound event, so queries containing one keep the
  // flatten-based evaluation context; everything else evaluates off the
  // chain's slot edges without ever materializing the bindings.
  for (int s = 0; s < nfa_->num_states() && !span_context_; ++s) {
    const NfaState& st = nfa_->state(s);
    auto any_agg = [](const std::vector<const CompiledPredicate*>& preds) {
      for (const CompiledPredicate* cp : preds) {
        if (cp->expr->HasAggregate()) return true;
      }
      return false;
    };
    span_context_ = any_agg(st.bind_preds) || any_agg(st.iter_preds) ||
                    any_agg(st.close_preds) ||
                    (st.fill_index.build_expr != nullptr &&
                     st.fill_index.build_expr->HasAggregate());
  }
  if (options_.use_pred_vm && nfa_->vm_module() != nullptr) {
    vm_ = nfa_->vm_module().get();
    vm_ctx_.Prepare(vm_->num_loads());
  }
  store_.ConfigureExpiry(nfa_->window(), nfa_->query().count_window,
                         options_.use_expiry_wheel);
  strict_gen_enabled_ = options_.use_strict_gen_list &&
                        nfa_->query().policy == SelectionPolicy::kStrictContiguity;
  BuildIndexLayout();
  BuildBatchPlan();
}

void Engine::BuildBatchPlan() {
  if (vm_ == nullptr) return;
  batch_plan_of_prog_.assign(static_cast<size_t>(vm_->num_programs()), 0);
  auto try_add = [&](const NfaState& st, const CompiledPredicate* cp) {
    if (cp->vm_program < 0) return;
    if (batch_plan_of_prog_[static_cast<size_t>(cp->vm_program)] != 0) return;
    PredVmModule::FusedAcSpec spec;
    if (!vm_->FusedAcProgram(cp->vm_program, &spec)) return;
    // Only loads that read the current event whenever this predicate runs
    // with current_elem == elem are precomputable per event. kFirst reads
    // the current event only on the first bind into a Kleene slot, and
    // kIterPrev never reads it.
    if (spec.elem != st.pattern_elem) return;
    if (spec.selector != RefSelector::kSingle &&
        spec.selector != RefSelector::kIterCurr &&
        spec.selector != RefSelector::kLast) {
      return;
    }
    if (spec.attr < 0) return;
    batch_plan_.push_back(
        {cp->vm_program, spec.elem, spec.attr, spec.op, spec.constant});
    batch_plan_of_prog_[static_cast<size_t>(cp->vm_program)] =
        static_cast<int>(batch_plan_.size());
  };
  for (int s = 0; s < nfa_->num_states(); ++s) {
    const NfaState& st = nfa_->state(s);
    for (const CompiledPredicate* cp : st.bind_preds) try_add(st, cp);
    for (const CompiledPredicate* cp : st.iter_preds) try_add(st, cp);
  }
}

void Engine::ComputeBatchMasks() {
  const size_t n = batch_n_;
  batch_masks_.resize(batch_plan_.size());
  // Attributes repeat across plan entries (several literal filters on one
  // column); extract each attribute's SoA column once and reuse it.
  int extracted_attr = -1;
  for (size_t k = 0; k < batch_plan_.size(); ++k) {
    const BatchProgram& bp = batch_plan_[k];
    if (bp.attr != extracted_attr) {
      batch_col_i_.resize(n);
      batch_col_d_.resize(n);
      batch_col_tag_.assign(n, VmSlot::kNull);
      for (size_t i = 0; i < n; ++i) {
        const Value& v = batch_events_[i]->attr(bp.attr);
        switch (v.type()) {
          case ValueType::kInt:
            batch_col_i_[i] = v.AsInt();
            batch_col_tag_[i] = VmSlot::kInt;
            break;
          case ValueType::kDouble:
            batch_col_d_[i] = v.AsDouble();
            batch_col_tag_[i] = VmSlot::kDouble;
            break;
          default:
            break;  // strings and nulls take the generic row path below
        }
      }
      extracted_attr = bp.attr;
    }
    std::vector<uint8_t>& mask = batch_masks_[k];
    mask.resize(n);
    bool all_int = bp.constant.tag == VmSlot::kInt;
    bool all_dbl = bp.constant.tag == VmSlot::kDouble;
    for (size_t i = 0; i < n && (all_int || all_dbl); ++i) {
      all_int = all_int && batch_col_tag_[i] == VmSlot::kInt;
      all_dbl = all_dbl && batch_col_tag_[i] == VmSlot::kDouble;
    }
    if (all_int) {
      const int64_t c = bp.constant.i;
      const int64_t* col = batch_col_i_.data();
      switch (bp.op) {
        case CmpOp::kEq: for (size_t i = 0; i < n; ++i) mask[i] = col[i] == c; break;
        case CmpOp::kNe: for (size_t i = 0; i < n; ++i) mask[i] = col[i] != c; break;
        case CmpOp::kLt: for (size_t i = 0; i < n; ++i) mask[i] = col[i] < c; break;
        case CmpOp::kLe: for (size_t i = 0; i < n; ++i) mask[i] = col[i] <= c; break;
        case CmpOp::kGt: for (size_t i = 0; i < n; ++i) mask[i] = col[i] > c; break;
        case CmpOp::kGe: for (size_t i = 0; i < n; ++i) mask[i] = col[i] >= c; break;
      }
    } else if (all_dbl) {
      const double c = bp.constant.d;
      const double* col = batch_col_d_.data();
      switch (bp.op) {
        case CmpOp::kEq: for (size_t i = 0; i < n; ++i) mask[i] = col[i] == c; break;
        case CmpOp::kNe: for (size_t i = 0; i < n; ++i) mask[i] = col[i] != c; break;
        case CmpOp::kLt: for (size_t i = 0; i < n; ++i) mask[i] = col[i] < c; break;
        case CmpOp::kLe: for (size_t i = 0; i < n; ++i) mask[i] = col[i] <= c; break;
        case CmpOp::kGt: for (size_t i = 0; i < n; ++i) mask[i] = col[i] > c; break;
        case CmpOp::kGe: for (size_t i = 0; i < n; ++i) mask[i] = col[i] >= c; break;
      }
    } else {
      // Mixed/null/string rows: the reference tag-dispatch per row, so the
      // verdicts stay bit-identical to FusedCompare's generic fallback.
      for (size_t i = 0; i < n; ++i) {
        VmSlot l;
        l.tag = batch_col_tag_[i];
        if (l.tag == VmSlot::kInt) {
          l.i = batch_col_i_[i];
        } else if (l.tag == VmSlot::kDouble) {
          l.d = batch_col_d_[i];
        } else {
          const Value& v = batch_events_[i]->attr(bp.attr);
          if (v.type() == ValueType::kString) {
            l.tag = VmSlot::kStr;
            l.s = &v.AsString();
          } else {
            l.tag = VmSlot::kNull;
            l.i = 0;
          }
        }
        mask[i] = PredVmModule::FusedAcResult(l, bp.constant, bp.op) ? 1 : 0;
      }
    }
  }
}

void Engine::BeginBatch(const EventPtr* events, size_t n) {
  batch_n_ = 0;
  batch_cursor_ = 0;
  batch_cur_ = -1;
  if (batch_plan_.empty() || n == 0) return;
  batch_events_.resize(n);
  for (size_t i = 0; i < n; ++i) batch_events_[i] = events[i].get();
  batch_n_ = n;
  // Mask precompute charges nothing: the full scalar cost (load + compare)
  // is charged at each consult in EvalPreds, preserving exact cost-unit
  // parity with unbatched execution.
  ComputeBatchMasks();
}

void Engine::EndBatch() {
  batch_n_ = 0;
  batch_cursor_ = 0;
  batch_cur_ = -1;
}

double Engine::ProcessBatch(const EventPtr* events, size_t n,
                            std::vector<Match>* out) {
  BeginBatch(events, n);
  double cost = 0.0;
  for (size_t i = 0; i < n; ++i) cost += Process(events[i], out);
  EndBatch();
  return cost;
}

void Engine::BuildIndexLayout() {
  const bool use = options_.use_join_index;
  auto usable = [&](const JoinIndexSpec& spec) {
    return use && spec.valid() &&
           (options_.index_expression_keys || !spec.expression_key);
  };
  for (int s = 0; s < nfa_->num_states(); ++s) {
    const NfaState& st = nfa_->state(s);
    StateIndexes& idx = indexes_[static_cast<size_t>(s)];
    if (usable(st.fill_index)) {
      idx.fresh.enabled = true;
      idx.fresh.spec = &st.fill_index;
    }
    if (st.kleene) {
      const JoinIndexSpec* ext_spec =
          usable(st.extend_index) ? &st.extend_index
                                  : (usable(st.fill_index) ? &st.fill_index : nullptr);
      if (ext_spec != nullptr) {
        idx.ext.enabled = true;
        idx.ext.spec = ext_spec;
      }
    }
    if (s > 0 && nfa_->state(s - 1).kleene && usable(st.fill_index)) {
      idx.proceed.enabled = true;
      idx.proceed.spec = &st.fill_index;
    }
  }
  // Distinct probe attributes, for the per-event hoist in Process.
  int max_attr = -1;
  auto note = [&](const HashIndex& hi) {
    if (!hi.enabled) return;
    const int attr = hi.spec->probe_attr;
    if (std::find(probe_attrs_.begin(), probe_attrs_.end(), attr) ==
        probe_attrs_.end()) {
      probe_attrs_.push_back(attr);
    }
    max_attr = std::max(max_attr, attr);
  };
  for (const StateIndexes& idx : indexes_) {
    note(idx.fresh);
    note(idx.ext);
    note(idx.proceed);
  }
  probe_keys_.assign(static_cast<size_t>(max_attr + 1), nullptr);
}

const std::vector<const Event*>& Engine::FlatEvents(const PartialMatch* pm) {
  auto it = flat_cache_.find(pm->id);
  if (it != flat_cache_.end() && it->second.size() == pm->Length()) {
    return it->second;
  }
  if (flat_cache_.size() >= kFlatCacheMaxEntries) flat_cache_.clear();
  std::vector<const Event*>& flat = flat_cache_[pm->id];
  pm->FlattenTo(&flat);
  return flat;
}

void Engine::FillContext(const PartialMatch* pm, const Event* current, int current_elem) {
  vm_ctx_.Invalidate();
  for (int e = 0; e < ctx_.num_elements; ++e) {
    ctx_.bindings[e] = ElemBinding{};
  }
  ctx_.current = current;
  ctx_.current_elem = current_elem;
  ctx_.negated = nullptr;
  ctx_.negated_elem = -1;
  if (pm == nullptr || pm->Length() == 0) return;
  const size_t closed = pm->slot_end.size();
  const uint32_t total = pm->Length();
  if (span_context_) {
    // Aggregate query: materialize full spans from the flattened view.
    const std::vector<const Event*>& flat = FlatEvents(pm);
    uint32_t begin = 0;
    for (size_t slot = 0; slot < closed; ++slot) {
      const uint32_t end = pm->slot_end[slot];
      const int elem = nfa_->ElemOfSlot(static_cast<int>(slot));
      ctx_.bindings[elem] = ElemBinding{flat.data() + begin, end - begin};
      begin = end;
    }
    if (begin < total) {
      // Open (in-progress Kleene) component.
      const int elem = nfa_->ElemOfSlot(static_cast<int>(closed));
      ctx_.bindings[elem] = ElemBinding{flat.data() + begin, total - begin};
    }
    return;
  }
  // Edge form: predicates only ever read the first, last, or second-to-last
  // event of a binding, all O(1) reachable from the chain via slot_start.
  // Walk the slot segments newest-to-oldest — O(#slots), independent of the
  // match length. Empty closed slots (zero-rep Kleene) have no segment and
  // keep their zeroed binding.
  const BindingNode* node = pm->tail();
  auto fill_one = [&](int slot, uint32_t begin, uint32_t end) {
    if (end == begin) return;
    const BindingNode* first = node->slot_start;
    ElemBinding& b = ctx_.bindings[nfa_->ElemOfSlot(slot)];
    b.count = end - begin;
    assert(b.count == node->depth - first->depth + 1);
    b.first = first->event.get();
    b.last = node->event.get();
    if (b.count >= 2) b.prev_last = node->prev->event.get();
    node = first->prev;
  };
  const uint32_t closed_end = closed == 0 ? 0 : pm->slot_end.back();
  if (closed_end < total) {
    fill_one(static_cast<int>(closed), closed_end, total);
  }
  for (int slot = static_cast<int>(closed) - 1; slot >= 0; --slot) {
    fill_one(slot, slot > 0 ? pm->slot_end[static_cast<size_t>(slot) - 1] : 0,
             pm->slot_end[static_cast<size_t>(slot)]);
  }
  assert(node == nullptr);
}

bool Engine::EvalPreds(const std::vector<const CompiledPredicate*>& preds, double* cost) {
  for (const CompiledPredicate* cp : preds) {
    double pred_cost = 0.0;
    bool pass;
    int plan;
    if (batch_cur_ >= 0 && cp->vm_program >= 0 &&
        (plan = batch_plan_of_prog_[static_cast<size_t>(cp->vm_program)]) !=
            0 &&
        ctx_.current == batch_events_[static_cast<size_t>(batch_cur_)] &&
        ctx_.current_elem == batch_plan_[static_cast<size_t>(plan - 1)].elem &&
        ctx_.negated == nullptr) {
      // Precomputed batch verdict. The scalar dispatch for this program is
      // a single fused AC compare: one register-cached load (basic, hit or
      // miss) plus the compare (basic) — charge exactly that.
      pass = batch_masks_[static_cast<size_t>(plan - 1)]
                         [static_cast<size_t>(batch_cur_)] != 0;
      pred_cost = 2.0 * kExprCostBasic;
    } else {
      pass = (vm_ != nullptr && cp->vm_program >= 0)
                 ? vm_->EvalBool(cp->vm_program, ctx_, &vm_ctx_, &pred_cost)
                 : cp->expr->EvalBool(ctx_, &pred_cost);
    }
    *cost += pred_cost * options_.costs.pred_weight;
    ++stats_.predicate_evals;
    if (!pass) return false;
  }
  return true;
}

Value Engine::BuildKey(const HashIndex& index, const PartialMatch& pm) {
  if (!index.enabled) return Value();
  FillContext(&pm, nullptr, -1);
  if (vm_ != nullptr && index.spec->vm_build_program >= 0) {
    return vm_->Eval(index.spec->vm_build_program, ctx_, &vm_ctx_, nullptr);
  }
  return index.spec->build_expr->Eval(ctx_, nullptr);
}

void Engine::IndexAdd(HashIndex* index, PartialMatch* pm, const Value& key) {
  if (!index->enabled || key.is_null()) {
    index->unkeyed.push_back(pm);
  } else {
    index->map[key].push_back(pm);
  }
}

void Engine::IndexInsert(PartialMatch* pm) {
  const int s = pm->state;
  const NfaState& st = nfa_->state(s);
  StateIndexes& idx = indexes_[static_cast<size_t>(s)];
  if (pm->OpenCount() == 0) {
    IndexAdd(&idx.fresh, pm, BuildKey(idx.fresh, *pm));
  } else {
    IndexAdd(&idx.ext, pm, BuildKey(idx.ext, *pm));
  }
  if (st.kleene && pm->OpenCount() >= static_cast<uint32_t>(st.min_reps) &&
      s + 1 < nfa_->num_states()) {
    StateIndexes& next = indexes_[static_cast<size_t>(s + 1)];
    IndexAdd(&next.proceed, pm, BuildKey(next.proceed, *pm));
  }
}

bool Engine::TryBind(PartialMatch* pm, int state, const EventPtr& event, bool is_proceed,
                     double* cost, std::vector<Match>* out) {
  const NfaState& st = nfa_->state(state);
  const int elem = st.pattern_elem;
  const uint32_t open_before = (pm != nullptr && !is_proceed) ? pm->OpenCount() : 0;
  const bool is_extension = st.kleene && !is_proceed && open_before >= 1;

  FillContext(pm, event.get(), elem);
  if (is_proceed) {
    // The previous (Kleene) component is closing: enforce its deferred
    // aggregate predicates over the finished binding.
    const NfaState& prev = nfa_->state(state - 1);
    if (!EvalPreds(prev.close_preds, cost)) return false;
  }
  if (!EvalPreds(st.bind_preds, cost)) return false;
  if (is_extension && !EvalPreds(st.iter_preds, cost)) return false;

  // Clone and bind: the clone shares the parent's entire binding chain
  // and adds exactly one node — O(1) regardless of match length. (The
  // *virtual* cost formula below is unchanged: it models the engine the
  // paper measures, and differential runs compare it exactly.)
  auto clone = std::make_unique<PartialMatch>();
  clone->id = next_pm_id_++;
  clone->parent_id = pm != nullptr ? pm->id : 0;
  clone->ExtendFrom(&store_.arena(), pm, event, /*new_slot=*/!is_extension);
  if (is_proceed) {
    // The newly closed (Kleene) slot ends just before the event bound here.
    clone->slot_end.push_back(clone->Length() - 1);
  }
  *cost += options_.costs.per_clone_base +
           options_.costs.per_clone_event * static_cast<double>(clone->Length());

  bool complete = false;
  bool store_clone = true;
  if (!st.kleene) {
    clone->CloseSlot();
    clone->state = state + 1;
    complete = clone->state == nfa_->num_states();
    store_clone = !complete;
  } else {
    clone->state = state;
    const uint32_t k = clone->OpenCount();
    const bool trailing = state + 1 == nfa_->num_states();
    if (trailing && k >= static_cast<uint32_t>(st.min_reps)) {
      bool close_ok = true;
      if (!st.close_preds.empty()) {
        FillContext(clone.get(), nullptr, -1);
        close_ok = EvalPreds(st.close_preds, cost);
      }
      if (close_ok) EmitMatch(*clone, pm, event, cost, out);
    }
    const bool can_extend = k < static_cast<uint32_t>(st.max_reps);
    const bool can_proceed = !trailing;
    store_clone = can_extend || can_proceed;
  }
  if (pm != nullptr) {
    // Same window anchor as the parent: the first bound event is shared.
    clone->start_ts = pm->start_ts;
    clone->start_seq = pm->start_seq;
  } else {
    clone->start_ts = event->timestamp();
    clone->start_seq = event->seq();
  }
  clone->last_ts = event->timestamp();

  if (complete) {
    EmitMatch(*clone, pm, event, cost, out);
    return true;
  }
  if (store_clone) {
    pending_.push_back(std::move(clone));
    pending_parents_.push_back(pm);
  }
  return true;
}

void Engine::EmitMatch(const PartialMatch& closed, const PartialMatch* parent,
                       const EventPtr& last_event, double* cost, std::vector<Match>* out) {
  Match match;
  closed.FlattenTo(&match.events);
  match.slot_end = closed.slot_end;
  if (match.slot_end.size() < static_cast<size_t>(nfa_->num_states())) {
    match.slot_end.push_back(static_cast<uint32_t>(match.events.size()));
  }
  match.detected_at = last_event->timestamp();
  match.from_pm = parent != nullptr ? parent->id : 0;
  *cost += options_.costs.per_match_emit;
  if (IsVetoed(match, cost)) {
    ++stats_.matches_vetoed;
    return;
  }
  ++stats_.matches_emitted;
  if (match_hook_) match_hook_(match, parent);
  if (out != nullptr) out->push_back(std::move(match));
}

bool Engine::IsVetoed(const Match& match, double* cost) {
  bool scratch_filled = false;
  for (const NegationSpec& neg : nfa_->negations()) {
    // Veto interval: strictly between the last event of the preceding slot
    // and the first event of the following slot.
    const uint32_t prev_end = match.slot_end[static_cast<size_t>(neg.prev_state)];
    const Timestamp t_lo = match.events[prev_end - 1]->timestamp();
    const uint32_t next_begin =
        neg.next_state == 0 ? 0 : match.slot_end[static_cast<size_t>(neg.next_state) - 1];
    const Timestamp t_hi = match.events[next_begin]->timestamp();
    if (t_hi <= t_lo) continue;

    const auto& bucket = store_.witnesses(neg.pattern_elem);
    // Witnesses are stored in arrival (= timestamp) order.
    auto it = std::partition_point(bucket.begin(), bucket.end(),
                                   [t_lo](const std::unique_ptr<PartialMatch>& w) {
                                     return w->last_ts <= t_lo;
                                   });
    for (; it != bucket.end() && (*it)->last_ts < t_hi; ++it) {
      const PartialMatch* w = it->get();
      if (!w->alive) continue;
      *cost += options_.costs.per_witness_check;
      // Evaluate negation predicates with the witness standing in for the
      // negated component.
      if (!scratch_filled) {
        veto_scratch_.clear();
        veto_scratch_.reserve(match.events.size());
        for (const EventPtr& e : match.events) veto_scratch_.push_back(e.get());
        scratch_filled = true;
      }
      // The context changes per witness without going through FillContext:
      // drop the VM's cached attribute loads explicitly.
      vm_ctx_.Invalidate();
      for (int e = 0; e < ctx_.num_elements; ++e) ctx_.bindings[e] = ElemBinding{};
      uint32_t begin = 0;
      for (size_t slot = 0; slot < match.slot_end.size(); ++slot) {
        const uint32_t end = match.slot_end[slot];
        const int elem = nfa_->ElemOfSlot(static_cast<int>(slot));
        ctx_.bindings[elem] = ElemBinding{veto_scratch_.data() + begin, end - begin};
        begin = end;
      }
      ctx_.current = nullptr;
      ctx_.current_elem = -1;
      ctx_.negated = w->LastEvent();
      ctx_.negated_elem = neg.pattern_elem;
      bool all_pass = true;
      for (const CompiledPredicate* cp : neg.preds) {
        double pred_cost = 0.0;
        const bool pass =
            (vm_ != nullptr && cp->vm_program >= 0)
                ? vm_->EvalBool(cp->vm_program, ctx_, &vm_ctx_, &pred_cost)
                : cp->expr->EvalBool(ctx_, &pred_cost);
        *cost += pred_cost * options_.costs.pred_weight;
        ++stats_.predicate_evals;
        if (!pass) {
          all_pass = false;
          break;
        }
      }
      if (all_pass) return true;
    }
  }
  return false;
}

void Engine::StorePending(std::vector<Match>* out, double* cost) {
  (void)out;
  (void)cost;
  for (size_t i = 0; i < pending_.size(); ++i) {
    std::unique_ptr<PartialMatch>& pm = pending_[i];
    const PartialMatch* parent = pending_parents_[i];
    PartialMatch* stored;
    if (pm->is_witness) {
      stored = store_.AddWitness(std::move(pm));
      ++stats_.witnesses_created;
    } else {
      if (classifier_) pm->class_label = classifier_(*pm);
      if (creation_filter_ && creation_filter_(*pm)) {
        ++stats_.pms_created;  // it existed; shedding discarded it
        continue;
      }
      stored = store_.Add(std::move(pm));
      ++stats_.pms_created;
      IndexInsert(stored);
      if (strict_gen_enabled_) strict_next_gen_.push_back(stored);
    }
    if (pm_created_hook_) pm_created_hook_(*stored, parent);
  }
  pending_.clear();
  pending_parents_.clear();
}

double Engine::Process(const EventPtr& event, std::vector<Match>* out) {
  if (batch_n_ != 0) {
    // Locate the event in the active batch. Events arrive in batch order,
    // possibly with gaps (shed or guard-dropped upstream), so a monotone
    // scan from the previous position suffices; an event not in the batch
    // (or a stale batch after a consumer restart) simply runs unmasked.
    while (batch_cursor_ < batch_n_ &&
           batch_events_[batch_cursor_] != event.get()) {
      ++batch_cursor_;
    }
    if (batch_cursor_ < batch_n_) {
      batch_cur_ = static_cast<int>(batch_cursor_);
      ++batch_cursor_;
    } else {
      batch_cur_ = -1;
    }
  }
  double cost = options_.costs.per_event_base;
  const Timestamp now = event->timestamp();
  const Duration window = nfa_->window();
  const uint64_t count_window = nfa_->query().count_window;
  const uint64_t seq = event->seq();
  auto expired = [&](const PartialMatch& pm) {
    return count_window > 0 ? pm.ExpiredByCount(seq, count_window)
                            : pm.Expired(now, window);
  };

  if (++events_since_evict_ >= options_.evict_interval) {
    events_since_evict_ = 0;
    // Cost parity: whichever mechanism finds the expired matches, the
    // sweep is booked as the state-size-proportional maintenance the cost
    // model charges — per_sweep_scan for every live match, taken from the
    // O(1) live counters. The wheel changes how the expired set is found
    // (O(expired) instead of O(live)), never what is killed, when, or
    // what is accounted (DESIGN.md §3.9).
    const size_t scanned = store_.NumAlive() + store_.NumAliveWitnesses();
    cost += options_.costs.per_sweep_scan * static_cast<double>(scanned);
    size_t evicted = 0;
    if (store_.wheel_enabled()) {
      evicted = store_.ReapExpired(now, seq);
    } else if (count_window > 0) {
      auto sweep = [&](PartialMatch* pm) {
        if (pm->ExpiredByCount(seq, count_window)) {
          store_.Kill(pm);
          ++evicted;
        }
      };
      store_.ForEachAlive(sweep);
      store_.ForEachAliveWitness(sweep);
    } else {
      evicted = store_.EvictExpired(now, window);
    }
    stats_.pms_evicted += evicted;
    cost += options_.costs.per_eviction * static_cast<double>(evicted);
    const size_t dead =
        store_.NumDead();
    if (dead >= options_.compact_min_dead &&
        store_.DeadFraction() >= options_.compact_dead_fraction) {
      store_.Compact();
      RebuildIndexes();
    }
  }

  const SelectionPolicy policy = nfa_->query().policy;
  auto probe = [&](HashIndex& index, int state, bool is_proceed) {
    const NfaState& st = nfa_->state(state);
    auto consider = [&](PartialMatch* pm) {
      ++stats_.candidates_scanned;
      cost += options_.costs.per_candidate;
      if (!pm->alive) return;
      if (expired(*pm)) {
        store_.Kill(pm);
        ++stats_.pms_evicted;
        return;
      }
      if (!is_proceed && st.kleene && pm->OpenCount() >= static_cast<uint32_t>(st.max_reps)) {
        return;
      }
      bool bound;
      if (pm_probed_hook_) {
        const double before = cost;
        bound = TryBind(pm, state, event, is_proceed, &cost, out);
        pm_probed_hook_(*pm, options_.costs.per_candidate + (cost - before), now);
      } else {
        bound = TryBind(pm, state, event, is_proceed, &cost, out);
      }
      if (bound && policy == SelectionPolicy::kSkipTillNextMatch) {
        // Selective: the match takes this event and does not branch.
        store_.Kill(pm);
      }
    };
    if (index.enabled) {
      ++stats_.index_probes;
      cost += options_.costs.per_index_probe;
      const Value& key = *probe_keys_[static_cast<size_t>(index.spec->probe_attr)];
      if (!key.is_null()) {
        auto it = index.map.find(key);
        if (it != index.map.end()) {
          for (PartialMatch* pm : it->second) consider(pm);
        }
      }
      for (PartialMatch* pm : index.unkeyed) consider(pm);
    } else {
      for (PartialMatch* pm : index.unkeyed) consider(pm);
    }
  };

  // Hoist the probe-key attribute reads: one reference per distinct
  // attribute per event, instead of a deep Value copy per probed state
  // (string keys made that copy an allocation on the hot path).
  for (int a : probe_attrs_) {
    probe_keys_[static_cast<size_t>(a)] = &event->attr(a);
  }

  for (int s : nfa_->StatesForType(event->type())) {
    StateIndexes& idx = indexes_[static_cast<size_t>(s)];
    probe(idx.fresh, s, /*is_proceed=*/false);
    if (nfa_->state(s).kleene) probe(idx.ext, s, /*is_proceed=*/false);
    if (s > 0 && nfa_->state(s - 1).kleene) probe(idx.proceed, s, /*is_proceed=*/true);
  }

  // Stream-created match at state 0.
  if (nfa_->state(0).event_type == event->type()) {
    cost += options_.costs.per_create;
    TryBind(nullptr, 0, event, /*is_proceed=*/false, &cost, out);
  }

  // Negation witnesses.
  for (int neg_elem : nfa_->NegationsForType(event->type())) {
    auto witness = std::make_unique<PartialMatch>();
    witness->id = next_pm_id_++;
    witness->state = 0;
    witness->is_witness = true;
    witness->negated_elem = neg_elem;
    witness->ExtendFrom(&store_.arena(), nullptr, event);
    witness->start_ts = witness->last_ts = now;
    witness->start_seq = event->seq();
    cost += options_.costs.per_witness_store;
    pending_.push_back(std::move(witness));
    pending_parents_.push_back(nullptr);
  }

  StorePending(out, &cost);

  if (policy == SelectionPolicy::kStrictContiguity) {
    // Strict contiguity: a stored match survives only if this very event
    // extended it (its newest clone carries the event's sequence number);
    // everything older dies.
    if (strict_gen_enabled_) {
      // The previous generation is exactly the live set the full scan
      // would walk (every older generation already died here), so killing
      // off the list is the same kill set at O(generation) instead of
      // O(live store incl. tombstones).
      for (PartialMatch* pm : strict_gen_) {
        if (pm->alive && pm->LastEvent()->seq() != event->seq()) {
          store_.Kill(pm);
        }
      }
      strict_gen_.swap(strict_next_gen_);
      strict_next_gen_.clear();
    } else {
      store_.ForEachAlive([&](PartialMatch* pm) {
        if (pm->LastEvent()->seq() != event->seq()) store_.Kill(pm);
      });
    }
  }

  ++stats_.events_processed;
  last_seq_ = seq;
  stats_.total_cost += cost;
  const size_t live = store_.NumAlive() + store_.NumAliveWitnesses();
  if (live > stats_.peak_pms) stats_.peak_pms = live;
  return cost;
}

void Engine::Vacuum(Timestamp now) {
  // Mirror the per-event sweep's window semantics. Count-window queries
  // alias `window()` to the count, so the time-based EvictExpired would
  // misread the count as a duration and evict matches that are still
  // inside the count window (or keep ones that are out of it).
  const uint64_t count_window = nfa_->query().count_window;
  size_t evicted = 0;
  if (store_.wheel_enabled()) {
    evicted = store_.ReapExpired(now, last_seq_);
  } else if (count_window > 0) {
    auto sweep = [&](PartialMatch* pm) {
      if (pm->ExpiredByCount(last_seq_, count_window)) {
        store_.Kill(pm);
        ++evicted;
      }
    };
    store_.ForEachAlive(sweep);
    store_.ForEachAliveWitness(sweep);
  } else {
    evicted = store_.EvictExpired(now, nfa_->window());
  }
  stats_.pms_evicted += evicted;
  // No tombstones means compaction would move nothing and the rebuild
  // would recreate the indexes it just tore down; stored-match pointers
  // (and the indexes into them) survive a vacuous Vacuum untouched.
  if (store_.NumDead() == 0) return;
  store_.Compact();
  RebuildIndexes();
}

size_t Engine::ShedLowestUtility(size_t max_kill, size_t min_bytes_freed,
                                 const PmUtilityFn& utility) {
  if (max_kill == 0) return 0;
  struct Candidate {
    double utility;
    PartialMatch* pm;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(store_.NumAlive());
  store_.ForEachAlive([&](PartialMatch* pm) {
    candidates.push_back(
        {utility ? utility(*pm) : DefaultPmUtility(*pm), pm});
  });
  // Lowest utility first; among equals evict the newest (its peers have
  // had longer to accumulate extensions, so the newest carries the least
  // sunk work). The id tiebreak also makes the order fully deterministic.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.utility != b.utility) return a.utility < b.utility;
              return a.pm->id > b.pm->id;
            });
  size_t killed = 0;
  size_t bytes_freed = 0;
  for (const Candidate& c : candidates) {
    if (killed >= max_kill) break;
    if (min_bytes_freed > 0 && bytes_freed >= min_bytes_freed) break;
    // Marginal estimate: only the chain suffix exclusively owned by this
    // match counts (shared prefix nodes stay resident for its siblings).
    // Killing a match can promote a sibling's prefix to exclusive, so the
    // per-kill estimates self-correct as the loop proceeds.
    bytes_freed += PartialMatchStore::ApproxBytes(*c.pm);
    store_.Kill(c.pm);
    ++killed;
  }
  stats_.pms_evicted += killed;
  return killed;
}

MigratedState Engine::ExtractPartialMatches(
    const std::function<bool(const PartialMatch&)>& pred) {
  MigratedState out;
  store_.ExtractIf(pred, &out.regulars, &out.witnesses);
  if (out.empty()) return out;
  out.arenas.push_back(store_.shared_arena());
  for (const std::shared_ptr<BindingArena>& a : store_.foreign_arenas()) {
    out.arenas.push_back(a);
  }
  for (const auto& pm : out.regulars) {
    out.approx_bytes += PartialMatchStore::ApproxBytes(*pm);
  }
  for (const auto& pm : out.witnesses) {
    out.approx_bytes += PartialMatchStore::ApproxBytes(*pm);
  }
  // The index raw pointers to extracted matches are dead, and the flatten
  // cache holds raw event pointers into chains another engine will free.
  RebuildIndexes();
  flat_cache_.clear();
  return out;
}

void Engine::AdoptPartialMatches(MigratedState state) {
  if (state.empty()) return;
  store_.AdoptForeignArenas(state.arenas);
  for (auto& pm : state.regulars) {
    pm->id = next_pm_id_++;
    pm->parent_id = 0;
    store_.Add(std::move(pm));
  }
  const bool adopted_witnesses = !state.witnesses.empty();
  for (auto& pm : state.witnesses) {
    pm->id = next_pm_id_++;
    pm->parent_id = 0;
    store_.AddWitness(std::move(pm));
  }
  if (adopted_witnesses) {
    // Adopted witnesses interleave arbitrarily with resident ones in event
    // time; IsVetoed's partition_point needs each bucket ascending by
    // last_ts. stable_sort keeps the (deterministic) donor order among
    // equal timestamps.
    for (int e = 0; e < store_.num_witness_buckets(); ++e) {
      auto& bucket = store_.witnesses(e);
      std::stable_sort(bucket.begin(), bucket.end(),
                       [](const std::unique_ptr<PartialMatch>& a,
                          const std::unique_ptr<PartialMatch>& b) {
                         return a->last_ts < b->last_ts;
                       });
    }
  }
  RebuildIndexes();
  flat_cache_.clear();
}

void Engine::Reset() {
  store_.Clear();
  for (auto& idx : indexes_) {
    idx.fresh.Clear();
    idx.ext.Clear();
    idx.proceed.Clear();
  }
  stats_ = EngineStats{};
  next_pm_id_ = 1;
  events_since_evict_ = 0;
  last_seq_ = 0;
  strict_gen_.clear();
  strict_next_gen_.clear();
  EndBatch();
  // Ids restart at 1, so stale flatten entries must not survive a reset.
  flat_cache_.clear();
  pending_.clear();
  pending_parents_.clear();
}

void Engine::RebuildIndexes() {
  for (auto& idx : indexes_) {
    idx.fresh.Clear();
    idx.ext.Clear();
    idx.proceed.Clear();
  }
  for (int s = 0; s < store_.num_states(); ++s) {
    for (auto& pm : store_.bucket(s)) {
      if (pm->alive) IndexInsert(pm.get());
    }
  }
  // Everything that invalidates index pointers (compaction, migration)
  // funnels through here, and the generation list holds the same kind of
  // raw store pointers — rebuild it from the live set alongside them.
  // Under strict contiguity the live regulars are exactly the previous
  // generation, so content is preserved; order becomes bucket order,
  // which only permutes kill order within one event's reap.
  if (strict_gen_enabled_) {
    strict_gen_.clear();
    for (int s = 0; s < store_.num_states(); ++s) {
      for (auto& pm : store_.bucket(s)) {
        if (pm->alive) strict_gen_.push_back(pm.get());
      }
    }
  }
}

}  // namespace cepshed
