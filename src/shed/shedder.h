// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// The shedding strategy interface: every strategy implements the paper's
// two shedding functions —
//   rho_I (input-based):  FilterEvent() decides per arriving event whether
//                         to discard it without processing;
//   rho_S (state-based):  AfterEvent() may tombstone partial matches in
//                         the bound engine's store.
// Strategies see the smoothed latency mu(k) after every event and decide
// when/what/how much to shed (questions Q1-Q3 of the paper).

#ifndef CEPSHED_SHED_SHEDDER_H_
#define CEPSHED_SHED_SHEDDER_H_

#include <cstdint>
#include <string>

#include "src/cep/engine.h"
#include "src/obs/metrics.h"

namespace cepshed {

/// \brief Base class of all shedding strategies.
class Shedder {
 public:
  virtual ~Shedder() = default;

  /// Strategy name for reports ("RI", "SI", "RS", "SS", "Hybrid", ...).
  virtual std::string Name() const = 0;

  /// The latency bound the strategy enforces, or a negative value for
  /// fixed-ratio / no-op strategies (used for bound-violation accounting).
  virtual double theta() const { return -1.0; }

  /// rho_I: return true to discard the arriving event unprocessed.
  /// Implementations must count drops via DropEvent().
  virtual bool FilterEvent(const Event& event) = 0;

  /// Called after every stream event (processed or dropped) with the
  /// current smoothed latency mu (cost units) and the event time. This is
  /// where rho_S runs.
  virtual void AfterEvent(Timestamp now, double mu) = 0;

  /// Binds the engine whose state the strategy sheds. Must be called
  /// before the run starts.
  virtual void Bind(Engine* engine) { engine_ = engine; }

  /// Clears per-run counters (between experiment repetitions).
  virtual void Reset() {
    events_dropped_ = 0;
    pms_shed_ = 0;
  }

  /// Input events discarded by rho_I so far.
  uint64_t events_dropped() const { return events_dropped_; }
  /// Partial matches (incl. witnesses) discarded by rho_S so far.
  uint64_t pms_shed() const { return pms_shed_; }

  /// Attaches the shard's observability sink (optional; not owned). Drop
  /// and kill decisions are then counted per class and recorded in the
  /// shed-decision audit ring, tagged with `shard`. Virtual so composite
  /// strategies can forward the sink to their parts.
  virtual void set_obs(obs::ShardObs* o, int shard = 0) {
    obs_ = o;
    obs_shard_ = static_cast<uint8_t>(shard);
  }

 protected:
  /// Bookkeeping helper for rho_I implementations. `cls` is the event's
  /// model class (negative = unclassified); `mu` the smoothed latency and
  /// `seq`/`now` the event identity, for the audit trail.
  bool DropEvent(int cls = -1, double mu = 0.0, uint64_t seq = 0,
                 Timestamp now = 0) {
    ++events_dropped_;
    if (obs_ != nullptr) {
      obs_->events_dropped_shedder.Add();
      obs_->CountShedClass(cls);
      obs_->audit.Record(obs::AuditKind::kDropEvent, obs_shard_, now, cls, mu, seq);
    }
    return true;
  }
  /// Bookkeeping helper for rho_S implementations.
  void KillPm(PartialMatch* pm, double mu = 0.0, Timestamp now = 0) {
    if (pm->alive) {
      engine_->store().Kill(pm);
      ++pms_shed_;
      if (obs_ != nullptr) {
        obs_->pms_shed.Add();
        obs_->CountShedClass(pm->class_label);
        // Length() stays valid after Kill released the binding chain.
        obs_->audit.Record(obs::AuditKind::kKillPm, obs_shard_, now,
                           pm->class_label, mu, pm->Length());
      }
    }
  }

  Engine* engine_ = nullptr;
  obs::ShardObs* obs_ = nullptr;
  uint8_t obs_shard_ = 0;
  uint64_t events_dropped_ = 0;
  uint64_t pms_shed_ = 0;
};

/// \brief The no-op strategy (ground-truth runs).
class NoShedder : public Shedder {
 public:
  std::string Name() const override { return "None"; }
  bool FilterEvent(const Event&) override { return false; }
  void AfterEvent(Timestamp, double) override {}
};

/// \brief Shared trigger logic for latency-bound strategies: shedding
/// fires when mu exceeds the bound theta, with a post-trigger delay of j
/// events so the effect of shedding can materialize first (§IV-C).
class OverloadTrigger {
 public:
  OverloadTrigger(double theta, uint64_t delay_events)
      : theta_(theta), delay_events_(delay_events) {}

  /// Returns the relative latency violation (mu - theta)/mu when shedding
  /// should trigger now, or a negative value otherwise.
  double Check(double mu) {
    ++events_seen_;
    if (mu <= theta_) return -1.0;
    if (events_seen_ - last_trigger_ < delay_events_ && last_trigger_ != 0) {
      return -1.0;
    }
    last_trigger_ = events_seen_;
    return (mu - theta_) / mu;
  }

  double theta() const { return theta_; }
  void Reset() {
    events_seen_ = 0;
    last_trigger_ = 0;
  }

 private:
  double theta_;
  uint64_t delay_events_;
  uint64_t events_seen_ = 0;
  uint64_t last_trigger_ = 0;
};

}  // namespace cepshed

#endif  // CEPSHED_SHED_SHEDDER_H_
