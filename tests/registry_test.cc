// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Unit tests for the shedding-strategy plug-in registry: spec parsing,
// error surfaces, round-trips of every registered strategy, differential
// registry-vs-direct construction, the learned shedders end to end, and
// the registry path through the shard runtime with the observability
// audit attached.

#include "src/shed/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/runtime/experiment.h"
#include "src/runtime/shard_runtime.h"
#include "src/shed/baselines.h"
#include "src/shed/controller.h"
#include "src/shed/hspice.h"
#include "src/shed/hybrid.h"
#include "src/shed/offline_estimator.h"
#include "src/shed/pspice.h"
#include "src/workload/ds1.h"
#include "src/workload/queries.h"

namespace cepshed {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest() : schema_(MakeDs1Schema()) {}

  EventStream MakeStream(uint64_t seed, size_t n = 8000) {
    Ds1Options opts;
    opts.num_events = n;
    opts.seed = seed;
    return GenerateDs1(schema_, opts);
  }

  std::shared_ptr<const Nfa> CompileQ1() {
    auto nfa = Nfa::Compile(*queries::Q1(), &schema_);
    EXPECT_TRUE(nfa.ok());
    return *nfa;
  }

  /// A prepared harness whose MakeContext carries every substrate.
  std::unique_ptr<ExperimentHarness> PrepareHarness() {
    auto harness = std::make_unique<ExperimentHarness>(&schema_, *queries::Q1(),
                                                       HarnessOptions{});
    const EventStream train = MakeStream(41, 12000);
    const EventStream test = MakeStream(42, 12000);
    EXPECT_TRUE(harness->Prepare(train, test).ok());
    return harness;
  }

  Schema schema_;
};

TEST_F(RegistryTest, ParseSpecSplitsNameAndConfig) {
  auto parsed = ShedderConfig::ParseSpec("Hybrid:theta=12.5,seed=3");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->first, "hybrid");  // names are case-insensitive
  EXPECT_TRUE(parsed->second.Has("theta"));
  EXPECT_TRUE(parsed->second.Has("seed"));
  ASSERT_TRUE(parsed->second.GetDouble("theta", 0).ok());
  EXPECT_DOUBLE_EQ(*parsed->second.GetDouble("theta", 0), 12.5);
  EXPECT_EQ(*parsed->second.GetUint("seed", 0), 3u);
  // Absent key -> default.
  EXPECT_DOUBLE_EQ(*parsed->second.GetDouble("fraction", -1.0), -1.0);
}

TEST_F(RegistryTest, ParseSpecRejectsMalformedSpecs) {
  EXPECT_FALSE(ShedderConfig::ParseSpec("").ok());
  EXPECT_FALSE(ShedderConfig::ParseSpec(":theta=1").ok());      // empty name
  EXPECT_FALSE(ShedderConfig::ParseSpec("ri:theta").ok());      // no '='
  EXPECT_FALSE(ShedderConfig::ParseSpec("ri:=5").ok());         // empty key
  EXPECT_FALSE(ShedderConfig::ParseSpec("ri:a=1,a=2").ok());    // duplicate
}

TEST_F(RegistryTest, BadValuesAndUnknownKeysFailLoudly) {
  ShedderContext ctx;
  ctx.theta = 10.0;
  // Unknown key: ExpectKeys rejects it and names the offender.
  auto r = ShedderRegistry::Instance().Create("ri:junk=1", ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("junk"), std::string::npos);
  // Unparsable value.
  EXPECT_FALSE(ShedderRegistry::Instance().Create("ri:theta=abc", ctx).ok());
  // Neither a bound nor a ratio.
  EXPECT_FALSE(ShedderRegistry::Instance().Create("ri", ShedderContext{}).ok());
}

TEST_F(RegistryTest, UnknownNameListsAlternatives) {
  auto r = ShedderRegistry::Instance().Create("nope", ShedderContext{});
  ASSERT_FALSE(r.ok());
  const std::string msg = r.status().message();
  EXPECT_NE(msg.find("nope"), std::string::npos);
  // The error enumerates what is registered.
  EXPECT_NE(msg.find("ri"), std::string::npos);
  EXPECT_NE(msg.find("hspice"), std::string::npos);
}

TEST_F(RegistryTest, AllExpectedStrategiesAreRegistered) {
  const std::vector<std::string> names = ShedderRegistry::Instance().Names();
  for (const char* expected : {"none", "ri", "si", "rs", "ss", "hybrid", "hyi",
                               "hys", "pi", "hspice", "pspice"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing strategy: " << expected;
  }
}

TEST_F(RegistryTest, EveryRegisteredStrategyRoundTripsThroughAContext) {
  auto harness = PrepareHarness();
  const ShedderContext bound_ctx = harness->MakeContext(
      /*theta=*/harness->BaselineLatency() * 0.5, /*fraction=*/-1.0, /*seed=*/7);
  const ShedderContext fixed_ctx =
      harness->MakeContext(/*theta=*/-1.0, /*fraction=*/0.3, /*seed=*/7);
  for (const std::string& name : ShedderRegistry::Instance().Names()) {
    auto bound = ShedderRegistry::Instance().Create(name, bound_ctx);
    ASSERT_TRUE(bound.ok()) << name << " (bound): " << bound.status();
    EXPECT_FALSE((*bound)->Name().empty()) << name;
    auto fixed = ShedderRegistry::Instance().Create(name, fixed_ctx);
    ASSERT_TRUE(fixed.ok()) << name << " (fixed): " << fixed.status();
    EXPECT_FALSE((*fixed)->Name().empty()) << name;
  }
}

TEST_F(RegistryTest, StrategiesNeedingSubstrateFailWithoutIt) {
  ShedderContext bare;
  bare.theta = 10.0;  // a valid operating point, but no trained substrate
  for (const char* name : {"si", "ss", "hybrid", "hyi", "hys", "pi", "hspice",
                           "pspice"}) {
    auto r = ShedderRegistry::Instance().Create(name, bare);
    EXPECT_FALSE(r.ok()) << name << " built without its trained substrate";
  }
  // The substrate-free strategies still construct.
  for (const char* name : {"none", "ri", "rs"}) {
    auto r = ShedderRegistry::Instance().Create(name, bare);
    EXPECT_TRUE(r.ok()) << name << ": " << r.status();
  }
}

// Differential: the registry-built RI must make byte-identical drop
// decisions to a directly constructed RandomInputShedder with the same
// parameters (the registry is wiring, not behavior).
TEST_F(RegistryTest, RegistryRiMatchesDirectConstruction) {
  ShedderContext ctx;  // spec carries the full operating point
  auto from_registry =
      ShedderRegistry::Instance().Create("ri:theta=50,delay=10,seed=99", ctx);
  ASSERT_TRUE(from_registry.ok()) << from_registry.status();
  RandomInputShedder direct(/*theta=*/50.0, /*trigger_delay=*/10, /*seed=*/99);

  const EventStream stream = MakeStream(43, 4000);
  // Synthetic latency profile: overloaded for the first half, idle after.
  for (size_t i = 0; i < stream.size(); ++i) {
    const Event& e = *stream[i];
    EXPECT_EQ((*from_registry)->FilterEvent(e), direct.FilterEvent(e))
        << "divergence at event " << i;
    const double mu = i < stream.size() / 2 ? 120.0 : 5.0;
    (*from_registry)->AfterEvent(e.timestamp(), mu);
    direct.AfterEvent(e.timestamp(), mu);
  }
  EXPECT_GT(direct.events_dropped(), 0u);
  EXPECT_EQ((*from_registry)->events_dropped(), direct.events_dropped());
}

// Differential: a registry-built SS run produces byte-identical matches
// and shed counts to the direct constructor over a full engine run.
TEST_F(RegistryTest, RegistrySsMatchesDirectConstruction) {
  auto nfa = CompileQ1();
  auto stats = EstimateOffline(nfa, MakeStream(44), 4, true);
  ASSERT_TRUE(stats.ok());

  ShedderContext ctx;
  ctx.offline = &*stats;
  auto from_registry =
      ShedderRegistry::Instance().Create("ss:fraction=0.4,period=200,seed=5", ctx);
  ASSERT_TRUE(from_registry.ok()) << from_registry.status();
  SelectivityStateShedder direct(*stats, FixedRatioMode{0.4, 200}, 5);

  const EventStream stream = MakeStream(45, 6000);
  Engine engine_a(nfa, EngineOptions{});
  ShedRunner runner_a(&engine_a, from_registry->get(), LatencyMonitor::Options{});
  const RunResult a = runner_a.Run(stream);
  Engine engine_b(nfa, EngineOptions{});
  ShedRunner runner_b(&engine_b, &direct, LatencyMonitor::Options{});
  const RunResult b = runner_b.Run(stream);

  EXPECT_GT(a.shed_pms, 0u);
  EXPECT_EQ(a.shed_pms, b.shed_pms);
  ASSERT_EQ(a.matches.size(), b.matches.size());
  for (size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].Key(), b.matches[i].Key()) << "match " << i;
  }
}

// Differential: SI and RS over full engine runs.
TEST_F(RegistryTest, RegistrySiAndRsMatchDirectConstruction) {
  auto nfa = CompileQ1();
  auto stats = EstimateOffline(nfa, MakeStream(47), 4, true);
  ASSERT_TRUE(stats.ok());
  const EventStream stream = MakeStream(48, 6000);

  ShedderContext ctx;
  ctx.offline = &*stats;
  const struct {
    const char* spec;
    std::unique_ptr<Shedder> direct;
  } cases[] = {
      {"si:fraction=0.4,seed=5",
       std::make_unique<SelectivityInputShedder>(*stats, 0.4, 5)},
      {"rs:fraction=0.4,period=200,seed=5",
       std::make_unique<RandomStateShedder>(FixedRatioMode{0.4, 200}, 5)},
  };
  for (const auto& c : cases) {
    auto from_registry = ShedderRegistry::Instance().Create(c.spec, ctx);
    ASSERT_TRUE(from_registry.ok()) << c.spec << ": " << from_registry.status();
    Engine engine_a(nfa, EngineOptions{});
    ShedRunner runner_a(&engine_a, from_registry->get(), LatencyMonitor::Options{});
    const RunResult a = runner_a.Run(stream);
    Engine engine_b(nfa, EngineOptions{});
    ShedRunner runner_b(&engine_b, c.direct.get(), LatencyMonitor::Options{});
    const RunResult b = runner_b.Run(stream);

    EXPECT_GT(a.dropped_events + a.shed_pms, 0u) << c.spec;
    EXPECT_EQ(a.dropped_events, b.dropped_events) << c.spec;
    EXPECT_EQ(a.shed_pms, b.shed_pms) << c.spec;
    ASSERT_EQ(a.matches.size(), b.matches.size()) << c.spec;
    for (size_t i = 0; i < a.matches.size(); ++i) {
      EXPECT_EQ(a.matches[i].Key(), b.matches[i].Key()) << c.spec;
    }
  }
}

// Differential: the registry's hybrid (model-owning wrapper) against the
// pre-registry wiring — a CostModel copy with hand-wired engine hooks.
TEST_F(RegistryTest, RegistryHybridMatchesDirectConstruction) {
  auto harness = PrepareHarness();
  const EventStream stream = MakeStream(49, 6000);
  const EventStream train = MakeStream(41, 12000);
  const double theta = harness->BaselineLatency() * 0.5;

  const ShedderContext ctx = harness->MakeContext(theta, -1.0, /*seed=*/7);
  auto from_registry = ShedderRegistry::Instance().Create("hybrid", ctx);
  ASSERT_TRUE(from_registry.ok()) << from_registry.status();
  Engine engine_a(harness->nfa(), EngineOptions{});
  ShedRunner runner_a(&engine_a, from_registry->get(), LatencyMonitor::Options{});
  const RunResult a = runner_a.Run(stream);

  // The legacy wiring: per-run model copy, hooks, HybridShedder with the
  // defaults the registry context carries (trigger_delay 1000, seed 1234).
  CostModel model(harness->model());
  Engine engine_b(harness->nfa(), EngineOptions{});
  engine_b.set_classifier(
      [&model](const PartialMatch& pm) { return model.Classify(pm); });
  engine_b.set_pm_created_hook(
      [&model](const PartialMatch& pm, const PartialMatch* parent) {
        model.OnPmCreated(pm, parent, pm.last_ts);
      });
  engine_b.set_match_hook([&model](const Match& m, const PartialMatch* parent) {
    model.OnMatch(m, parent, m.detected_at);
  });
  HybridOptions opts;
  opts.theta = theta;
  opts.utility_samples = ComputeTrainingUtilities(harness->model(), train);
  HybridShedder direct(&model, opts);
  ShedRunner runner_b(&engine_b, &direct, LatencyMonitor::Options{});
  const RunResult b = runner_b.Run(stream);

  EXPECT_EQ(a.dropped_events, b.dropped_events);
  EXPECT_EQ(a.shed_pms, b.shed_pms);
  ASSERT_EQ(a.matches.size(), b.matches.size());
  for (size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].Key(), b.matches[i].Key()) << "match " << i;
  }
}

TEST_F(RegistryTest, LearnedSheddersRunEndToEndThroughTheHarness) {
  auto harness = PrepareHarness();
  for (const char* spec : {"hspice", "pspice"}) {
    auto r = harness->RunBoundSpec(spec, 0.5);
    ASSERT_TRUE(r.ok()) << spec << ": " << r.status();
    EXPECT_GE(r->quality.recall, 0.0);
    EXPECT_LE(r->quality.recall, 1.0);
    EXPECT_GT(r->shed_event_ratio + r->shed_pm_ratio, 0.0)
        << spec << " shed nothing under a 0.5 bound";
  }
  // Fixed-ratio mode: hSPICE drops events, pSPICE kills partial matches.
  auto hs = harness->RunFixedSpec("hspice", 0.3);
  ASSERT_TRUE(hs.ok()) << hs.status();
  EXPECT_GT(hs->shed_event_ratio, 0.0);
  EXPECT_EQ(hs->shed_pm_ratio, 0.0);
  auto ps = harness->RunFixedSpec("pspice", 0.3);
  ASSERT_TRUE(ps.ok()) << ps.status();
  EXPECT_EQ(ps->shed_event_ratio, 0.0);
  EXPECT_GT(ps->shed_pm_ratio, 0.0);
}

TEST_F(RegistryTest, BoundSpecRunsAreDeterministic) {
  auto harness = PrepareHarness();
  for (const char* spec : {"ri", "hspice", "pspice"}) {
    auto r1 = harness->RunBoundSpec(spec, 0.5);
    auto r2 = harness->RunBoundSpec(spec, 0.5);
    ASSERT_TRUE(r1.ok() && r2.ok()) << spec;
    EXPECT_EQ(r1->raw.dropped_events, r2->raw.dropped_events) << spec;
    EXPECT_EQ(r1->raw.shed_pms, r2->raw.shed_pms) << spec;
    ASSERT_EQ(r1->raw.matches.size(), r2->raw.matches.size()) << spec;
    for (size_t i = 0; i < r1->raw.matches.size(); ++i) {
      EXPECT_EQ(r1->raw.matches[i].Key(), r2->raw.matches[i].Key());
    }
  }
}

// The registry path through the shard runtime, with observability: a
// registry-built RI per shard must feed the per-class shed counters and
// the audit ring exactly as the direct wiring did.
TEST_F(RegistryTest, ShardRuntimeRegistryShedderFeedsObsAudit) {
  auto nfa = CompileQ1();
  ShardRuntimeOptions opts;
  opts.num_shards = 2;
  opts.routing = ShardRouting::kHashPartition;
  opts.partition_attr = schema_.AttributeIndex("ID");
  obs::MetricsRegistry metrics;
  opts.metrics = &metrics;
  auto runtime = ShardRuntime::Create(nfa, opts);
  ASSERT_TRUE(runtime.ok()) << runtime.status();

  ShardRuntime::ShedderFactory factory = [](int shard) {
    ShedderContext ctx;
    ctx.seed = 7 + static_cast<uint64_t>(shard);
    // A tight bound in cost units so the controller actually drops.
    auto shedder = ShedderRegistry::Instance().Create("ri:theta=2,delay=50", ctx);
    EXPECT_TRUE(shedder.ok()) << shedder.status();
    return std::move(*shedder);
  };
  auto result = (*runtime)->RunSequential(MakeStream(46, 6000), factory);
  ASSERT_TRUE(result.ok()) << result.status();

  const obs::RegistrySnapshot snap = metrics.Snapshot();
  EXPECT_GT(snap.total.events_dropped_shedder, 0u);
  uint64_t by_class = 0;
  for (uint64_t c : snap.total.shed_by_class) by_class += c;
  EXPECT_EQ(by_class, snap.total.events_dropped_shedder);
  ASSERT_FALSE(snap.total.audit.empty());
  size_t drops = 0;
  for (const obs::AuditEntry& e : snap.total.audit) {
    if (e.kind != obs::AuditKind::kDropEvent) continue;
    ++drops;
    EXPECT_GE(e.class_label, 0);  // RI stamps the event type
    EXPECT_LT(e.shard, 2);
  }
  EXPECT_GT(drops, 0u);
}

}  // namespace
}  // namespace cepshed
