// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// The dynamically typed attribute value carried by events and evaluated by
// query predicates.

#ifndef CEPSHED_COMMON_VALUE_H_
#define CEPSHED_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace cepshed {

/// \brief Runtime type tag of a Value.
enum class ValueType : int {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
};

/// \brief Returns a short human-readable name for a ValueType.
const char* ValueTypeName(ValueType type);

/// \brief A dynamically typed attribute value: null, int64, double, or string.
///
/// Numeric comparisons and arithmetic promote int to double where needed.
/// Null compares unequal to everything (including null), mirroring SQL
/// three-valued logic collapsed to false.
class Value {
 public:
  /// Constructs a null value.
  Value() : rep_(std::monostate{}) {}
  /// Constructs an integer value.
  Value(int64_t v) : rep_(v) {}  // NOLINT: implicit by design
  /// Constructs an integer value from int (avoids variant ambiguity).
  Value(int v) : rep_(static_cast<int64_t>(v)) {}  // NOLINT
  /// Constructs a floating-point value.
  Value(double v) : rep_(v) {}  // NOLINT
  /// Constructs a string value.
  Value(std::string v) : rep_(std::move(v)) {}  // NOLINT
  /// Constructs a string value from a literal.
  Value(const char* v) : rep_(std::string(v)) {}  // NOLINT

  /// The runtime type of this value.
  ValueType type() const {
    return static_cast<ValueType>(rep_.index());
  }
  /// True iff the value is null.
  bool is_null() const { return type() == ValueType::kNull; }
  /// True iff the value is an int or a double.
  bool is_numeric() const {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }

  /// The int64 payload. Requires type() == kInt.
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  /// The double payload. Requires type() == kDouble.
  double AsDouble() const { return std::get<double>(rep_); }
  /// The string payload. Requires type() == kString.
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// The value as a double, promoting ints. Returns 0.0 for non-numerics.
  double ToDouble() const;

  /// Strict equality with numeric promotion; null == anything is false.
  bool Equals(const Value& other) const;

  /// Three-way numeric/string comparison: -1, 0, +1. Null or mixed
  /// string/numeric operands yield -2 (incomparable).
  int Compare(const Value& other) const;

  /// Renders the value for debugging and CSV output.
  std::string ToString() const;

  /// A hash suitable for use in unordered containers and join indexes.
  /// Numerically equal int/double values hash identically.
  size_t Hash() const;

  bool operator==(const Value& other) const { return Equals(other); }
  bool operator!=(const Value& other) const { return !Equals(other); }

 private:
  std::variant<std::monostate, int64_t, double, std::string> rep_;
};

/// \brief Hash functor for Value usable with unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace cepshed

#endif  // CEPSHED_COMMON_VALUE_H_
