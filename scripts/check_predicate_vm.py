#!/usr/bin/env python3
"""CI gate: the predicate bytecode VM must beat the tree interpreter.

Reads a google-benchmark JSON file containing BM_PredicateEval*/{0,1}
rows (raw repetitions or aggregates): /0 is the Expr-tree interpreter,
/1 the compiled bytecode VM, both reporting predicate evaluations per
second over identical workloads, so the /1 : /0 ratio is the VM speedup.

Every pair found is gated (BM_PredicateEval is the paper-query predicate
mix — the headline number; BM_PredicateEvalQ1/Q3 are the per-query
breakdowns), and the run fails if any pair's speedup drops below the
threshold. Per-arm maxima over repetitions are used: the statistic least
sensitive to noisy-neighbour drift on shared CI runners.

Usage: check_predicate_vm.py BENCH_JSON [--min-speedup 1.2]
"""

import argparse
import json
import re
import sys


def collect(benchmarks):
    """Map benchmark base name -> {arg: max items_per_second}."""
    best = {}
    for b in benchmarks:
        m = re.match(r"^(BM_PredicateEval\w*)/([01])(?:_(\w+))?$", b["name"])
        if not m:
            continue
        name, arg, agg = m.group(1), int(m.group(2)), m.group(3)
        if agg in ("stddev", "cv"):
            continue
        ips = b.get("items_per_second")
        if ips is None:
            continue
        ips = float(ips)
        arms = best.setdefault(name, {})
        if arg not in arms or ips > arms[arg]:
            arms[arg] = ips
    return best


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("bench_json")
    ap.add_argument("--min-speedup", type=float, default=1.2)
    args = ap.parse_args()

    with open(args.bench_json) as f:
        data = json.load(f)
    best = collect(data.get("benchmarks", []))

    pairs = {n: arms for n, arms in best.items() if 0 in arms and 1 in arms}
    if "BM_PredicateEval" not in pairs:
        print("error: no complete BM_PredicateEval/{0,1} pair in input",
              file=sys.stderr)
        return 2

    ok = True
    for name in sorted(pairs):
        interp, vm = pairs[name][0], pairs[name][1]
        speedup = vm / interp
        verdict = "OK" if speedup >= args.min_speedup else "FAIL"
        if speedup < args.min_speedup:
            ok = False
        print(f"{name}: interpreter {interp / 1e6:.2f}M/s, "
              f"VM {vm / 1e6:.2f}M/s -> {speedup:.2f}x "
              f"(threshold {args.min_speedup:.2f}) [{verdict}]")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
