// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// The paper's evaluation queries (Listings 1-3 and Q1-Q4 of §VI-A),
// expressed in the SASE-style surface syntax and parsed by the query
// front end. Header-only so that benches and examples share one source of
// truth.

#ifndef CEPSHED_WORKLOAD_QUERIES_H_
#define CEPSHED_WORKLOAD_QUERIES_H_

#include <string>

#include "src/cep/pattern.h"
#include "src/common/result.h"
#include "src/query/parser.h"

namespace cepshed::queries {

/// Q1 over DS1: SEQ(A a, B b, C c), ID-correlated, a.V + b.V = c.V.
inline Result<Query> Q1(const std::string& window = "8ms") {
  auto q = ParseQuery(
      "PATTERN SEQ(A a, B b, C c) "
      "WHERE a.ID = b.ID AND a.ID = c.ID AND a.V + b.V = c.V "
      "WITHIN " + window);
  if (q.ok()) q->name = "Q1";
  return q;
}

/// Q2 over DS1: Kleene closure with per-iteration correlation. The paper
/// varies the Kleene limit to obtain pattern lengths 4-8 (§VI-D);
/// `kleene_reps` is that limit.
inline Result<Query> Q2(int kleene_reps = 1, const std::string& window = "1ms") {
  auto q = ParseQuery(
      "PATTERN SEQ(A a, A+{1," + std::to_string(kleene_reps) + "} b[], B c, C d) "
      "WHERE a.ID = b[i].ID AND a.ID = c.ID AND b[i].V = a.V AND a.V + c.V = d.V "
      "WITHIN " + window);
  if (q.ok()) q->name = "Q2";
  return q;
}

/// Q3 over DS2: the Euclidean-distance query whose partial matches have
/// heterogeneous resource costs (§VI-E).
inline Result<Query> Q3(const std::string& window = "8ms") {
  auto q = ParseQuery(
      "PATTERN SEQ(A a, B b, C c, D d) "
      "WHERE a.ID = b.ID AND a.x >= b.v / 2 AND a.x <= b.v "
      "AND a.y >= b.v / 2 AND a.y <= b.v "
      "AND b.ID = c.ID AND c.ID = d.ID AND b.v = d.v "
      "AND AVG(SQRT(a.x * a.x + a.y * a.y), SQRT(b.x * b.x + b.y * b.y)) <= c.v "
      "WITHIN " + window);
  if (q.ok()) q->name = "Q3";
  return q;
}

/// Q4 over DS1: the non-monotonic query with a negated component (§VI-H).
inline Result<Query> Q4(const std::string& window = "8ms") {
  auto q = ParseQuery(
      "PATTERN SEQ(A a, !B b, C c) "
      "WHERE a.ID = c.ID AND b.ID = a.ID AND a.V + b.V = c.V "
      "WITHIN " + window);
  if (q.ok()) q->name = "Q4";
  return q;
}

/// Listing 1: citibike 'hot paths' — several subsequent trips of one bike,
/// chained by station, ending at the hot stations {7,8,9}. The paper
/// configures paths of at least five stations.
inline Result<Query> CitibikeHotPaths(int min_path = 5, int max_path = 12,
                                      const std::string& window = "1h") {
  auto q = ParseQuery(
      "PATTERN SEQ(BikeTrip+{" + std::to_string(min_path) + "," +
      std::to_string(max_path) + "} a[], BikeTrip b) "
      "WHERE a[i+1].bike = a[i].bike AND b.end IN {7,8,9} "
      "AND a[last].bike = b.bike AND a[i+1].start = a[i].end "
      "WITHIN " + window);
  if (q.ok()) q->name = "citibike-hot-paths";
  return q;
}

/// Listing 3: Google cluster task churn — a task is submitted, scheduled
/// and evicted on one machine, rescheduled and evicted on another, then
/// rescheduled on a third machine and fails; within 1h.
inline Result<Query> GoogleTaskChurn(const std::string& window = "1h") {
  auto q = ParseQuery(
      "PATTERN SEQ(Submit su, Schedule sc1, Evict ev1, Schedule sc2, Evict ev2, "
      "Schedule sc3, Fail fa) "
      "WHERE su.task = sc1.task AND sc1.task = ev1.task AND ev1.task = sc2.task "
      "AND sc2.task = ev2.task AND ev2.task = sc3.task AND sc3.task = fa.task "
      "AND sc1.machine = ev1.machine AND sc2.machine = ev2.machine "
      "AND sc2.machine != sc1.machine AND sc3.machine != sc2.machine "
      "AND sc3.machine = fa.machine "
      "WITHIN " + window);
  if (q.ok()) q->name = "google-task-churn";
  return q;
}

}  // namespace cepshed::queries

#endif  // CEPSHED_WORKLOAD_QUERIES_H_
