# Benchmark harness: one binary per paper figure plus micro benchmarks.
# Included from the top-level CMakeLists so that build/bench/ contains
# nothing but the benchmark executables (the canonical run is
# `for b in build/bench/*; do $b; done`).

function(cepshed_add_bench name)
  add_executable(${name} bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE cepshed)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

cepshed_add_bench(bench_fig01_pm_growth)
cepshed_add_bench(bench_fig04_latency_bounds)
cepshed_add_bench(bench_fig05_hybrid_details)
cepshed_add_bench(bench_fig06_shed_selection)
cepshed_add_bench(bench_fig07_selectivity_variance)
cepshed_add_bench(bench_fig08_window_size)
cepshed_add_bench(bench_fig09_pattern_length)
cepshed_add_bench(bench_fig10_time_slices)
cepshed_add_bench(bench_fig11_resource_costs)
cepshed_add_bench(bench_fig12_adaptivity)
cepshed_add_bench(bench_fig13_cluster_grid)
cepshed_add_bench(bench_fig14_negation)
cepshed_add_bench(bench_fig15_citibike)
cepshed_add_bench(bench_fig16_cluster)
cepshed_add_bench(bench_datasets)
cepshed_add_bench(bench_shard_scaling)
cepshed_add_bench(bench_overload_recovery)
cepshed_add_bench(bench_lab_adversarial)
cepshed_add_bench(bench_resharding)
cepshed_add_bench(bench_strategy_grid)

cepshed_add_bench(bench_micro_engine)
target_link_libraries(bench_micro_engine PRIVATE benchmark::benchmark)
cepshed_add_bench(bench_micro_model)
target_link_libraries(bench_micro_model PRIVATE benchmark::benchmark)
cepshed_add_bench(bench_ablation_design)
