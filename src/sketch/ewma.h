// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Exponentially weighted moving average, used for smoothed latency and the
// paper's cost-model fold Gamma_new = (1-w) Gamma_old + w Gamma_incremented.

#ifndef CEPSHED_SKETCH_EWMA_H_
#define CEPSHED_SKETCH_EWMA_H_

namespace cepshed {

/// \brief Exponentially weighted moving average with weight `w` on the
/// newest observation.
class Ewma {
 public:
  explicit Ewma(double w = 0.5) : w_(w) {}

  /// Folds in one observation.
  void Add(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = (1.0 - w_) * value_ + w_ * x;
    }
  }

  /// The current average (0 before any observation).
  double value() const { return value_; }
  bool initialized() const { return initialized_; }
  void Reset() {
    value_ = 0.0;
    initialized_ = false;
  }

 private:
  double w_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace cepshed

#endif  // CEPSHED_SKETCH_EWMA_H_
