// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Time representation. All event timestamps and windows are expressed as
// int64 microseconds; helpers construct durations from the units used in
// the paper's queries (WITHIN 8ms, WITHIN 1h, ...).

#ifndef CEPSHED_COMMON_TIME_H_
#define CEPSHED_COMMON_TIME_H_

#include <cstdint>

namespace cepshed {

/// Event time and duration unit: microseconds since stream start.
using Timestamp = int64_t;
using Duration = int64_t;

/// Constructs a duration of `n` microseconds.
constexpr Duration Micros(int64_t n) { return n; }
/// Constructs a duration of `n` milliseconds.
constexpr Duration Millis(int64_t n) { return n * 1000; }
/// Constructs a duration of `n` seconds.
constexpr Duration Seconds(int64_t n) { return n * 1000 * 1000; }
/// Constructs a duration of `n` minutes.
constexpr Duration Minutes(int64_t n) { return Seconds(n * 60); }
/// Constructs a duration of `n` hours.
constexpr Duration Hours(int64_t n) { return Minutes(n * 60); }

}  // namespace cepshed

#endif  // CEPSHED_COMMON_TIME_H_
