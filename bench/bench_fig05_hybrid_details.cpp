// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Fig. 5 of the paper: absolute numbers of shed events and shed partial
// matches of the hybrid strategy across latency bounds, for (a) average
// and (b) 95th-percentile bounds — exhibiting the turning point where
// input-based shedding takes over and the shed-PM ratio flattens.

#include "bench/bench_util.h"

using namespace cepshed;
using namespace cepshed::bench;

int main() {
  Ds1Options gen;
  gen.num_events = 30000;
  auto exp = PrepareDs1(*queries::Q1("8ms"), gen);

  for (auto [stat, name] : {std::pair{LatencyStat::kAverage, "Fig. 5a"},
                            std::pair{LatencyStat::kP95, "Fig. 5b"}}) {
    Header(name,
           std::string("hybrid shed volumes, bounds on the ") +
               (stat == LatencyStat::kAverage ? "average" : "95th-percentile") +
               " latency",
           "bound,shed_events,shed_pms,recall");
    for (double bound : {0.9, 0.7, 0.5, 0.3, 0.1}) {
      const ExperimentResult r = exp.harness->RunBound(StrategyKind::kHybrid, bound, stat);
      std::printf("%.1f,%llu,%llu,%.4f\n", bound,
                  static_cast<unsigned long long>(r.raw.dropped_events),
                  static_cast<unsigned long long>(r.raw.shed_pms), r.quality.recall);
    }
  }
  return 0;
}
