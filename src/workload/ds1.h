// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Dataset DS1 of the paper (Table II): events with a categorical type in
// {A,B,C,D}, a numeric ID ~ U(1,10), and a numeric attribute V ~ U(1,10).
// The V distribution of C events can be controlled (Fig. 7's selectivity
// variance sweep) and flipped mid-stream (Fig. 12's adaptivity test).

#ifndef CEPSHED_WORKLOAD_DS1_H_
#define CEPSHED_WORKLOAD_DS1_H_

#include <string>

#include "src/cep/schema.h"
#include "src/cep/stream.h"
#include "src/common/rng.h"
#include "src/workload/csv.h"

namespace cepshed {

/// Builds the DS1/DS2-compatible ABCD schema (attributes ID, V).
Schema MakeDs1Schema();

/// \brief DS1 generator configuration.
struct Ds1Options {
  size_t num_events = 50000;
  /// Microseconds between consecutive events (uniform rate).
  Duration event_gap = 10;
  int num_ids = 10;
  int v_min = 1;
  int v_max = 10;
  /// Distribution of V for C events; negative = same as v_min/v_max.
  int c_v_min = -1;
  int c_v_max = -1;
  /// Event index at which the C.V distribution switches to
  /// [c_v_min2, c_v_max2] (0 = never; Fig. 12's worst-case flip).
  size_t flip_at = 0;
  int c_v_min2 = 12;
  int c_v_max2 = 20;
  /// Relative frequency of the types A,B,C,D.
  double type_weights[4] = {1.0, 1.0, 1.0, 1.0};
  uint64_t seed = 1;
};

/// Generates a DS1 stream over `schema` (must come from MakeDs1Schema).
EventStream GenerateDs1(const Schema& schema, const Ds1Options& options);

/// Loads a DS1-layout CSV (WriteCsv over MakeDs1Schema()) leniently:
/// malformed rows are skipped and counted in *stats (may be null).
/// `schema` must outlive the stream.
Result<EventStream> LoadDs1Csv(const Schema& schema, const std::string& path,
                               CsvReadStats* stats = nullptr);

}  // namespace cepshed

#endif  // CEPSHED_WORKLOAD_DS1_H_
