// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Fig. 12 of the paper: adaptivity of the cost model. The distribution of
// C.V flips from U(2,10) to U(12,20) mid-stream (reversing which partial
// matches are valuable — the worst case for the trained model). Under a
// 40% average-latency bound, the recall per stream segment shows the drop
// at the change point and the recovery driven by online adaptation, for
// window sizes of 1K-8K events.

#include "bench/bench_util.h"

using namespace cepshed;
using namespace cepshed::bench;

int main() {
  Header("Fig. 12", "DS1/Q1 with C.V flip at event 15000, 40% avg-latency bound",
         "window_events,offset_bucket,recall");

  for (int window_kevents : {1, 2, 4, 8}) {
    // 1 event per 10us: a K-events window is K*10us of event time.
    Ds1Options gen;
    gen.num_events = 30000;
    gen.c_v_min = 2;
    gen.c_v_max = 10;
    gen.flip_at = 15000;
    gen.c_v_min2 = 12;
    gen.c_v_max2 = 20;
    const std::string window = std::to_string(window_kevents * 10) + "ms";

    // Train on the pre-flip distribution only.
    Ds1Options train_gen = gen;
    train_gen.flip_at = 0;
    train_gen.num_events = 20000;

    PreparedExperiment exp;
    exp.schema = MakeDs1Schema();
    train_gen.seed = 11;
    exp.train = std::make_unique<EventStream>(GenerateDs1(exp.schema, train_gen));
    gen.seed = 12;
    exp.test = std::make_unique<EventStream>(GenerateDs1(exp.schema, gen));
    exp.harness = std::make_unique<ExperimentHarness>(&exp.schema, *queries::Q1(window),
                                                      HarnessOptions{});
    if (!exp.harness->Prepare(*exp.train, *exp.test).ok()) return 1;

    const ExperimentResult r = exp.harness->RunBound(StrategyKind::kHybrid, 0.4);

    // Recall per 2000-event segment of detection time.
    const Timestamp seg = 2000 * 10;  // 2000 events of 10us
    for (Timestamp t = 0; t < 30000 * 10; t += seg) {
      const auto q = ComputeQualityInRange(r.raw.matches, exp.harness->truth(), t, t + seg);
      if (q.truth_size == 0) continue;
      std::printf("%dK,%lld,%.4f\n", window_kevents,
                  static_cast<long long>(t / 10), q.recall);
    }
  }
  return 0;
}
