// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/cep/partial_match.h"

#include <bit>
#include <limits>

namespace cepshed {

namespace {

/// Order-preserving map from signed event time to a wheel key: flipping
/// the sign bit shifts int64 order onto uint64 order, so `deadline key <
/// threshold key` is exactly `deadline < now` even for negative
/// timestamps.
constexpr uint64_t kTimeKeySignFlip = uint64_t{1} << 63;
uint64_t TimeKey(Timestamp t) {
  return static_cast<uint64_t>(t) ^ kTimeKeySignFlip;
}

}  // namespace

void ExpiryWheel::PushBack(Slot* slot, PartialMatch* pm) {
  pm->wheel_prev = slot->tail;
  pm->wheel_next = nullptr;
  if (slot->tail != nullptr) {
    slot->tail->wheel_next = pm;
  } else {
    slot->head = pm;
  }
  slot->tail = pm;
}

void ExpiryWheel::Place(PartialMatch* pm) {
  // Coarsest level where the deadline still disagrees with the current
  // time; level 0 when they agree (deadline == now_, due immediately).
  const uint64_t diff = pm->wheel_deadline ^ now_;
  const int level =
      diff == 0 ? 0 : (63 - std::countl_zero(diff)) / kSlotBits;
  const int slot = static_cast<int>(
      (pm->wheel_deadline >> (level * kSlotBits)) & (kSlots - 1));
  pm->wheel_level = static_cast<int8_t>(level);
  pm->wheel_slot = static_cast<uint16_t>(slot);
  PushBack(&slots_[level][slot], pm);
  occupied_[level][slot >> 6] |= uint64_t{1} << (slot & 63);
}

void ExpiryWheel::Enqueue(PartialMatch* pm, uint64_t deadline) {
  assert(pm->wheel_level == PartialMatch::kWheelNotQueued);
  pm->wheel_deadline = deadline;
  ++entries_;
  if (deadline < now_) {
    // Deadline already behind the wheel (out-of-order event time): park
    // on the overdue list, which every reap rechecks exactly.
    pm->wheel_level = PartialMatch::kWheelOverdue;
    PushBack(&overdue_, pm);
    return;
  }
  Place(pm);
}

void ExpiryWheel::Unlink(PartialMatch* pm) {
  if (pm->wheel_level == PartialMatch::kWheelNotQueued) return;
  Slot* slot = pm->wheel_level == PartialMatch::kWheelOverdue
                   ? &overdue_
                   : &slots_[pm->wheel_level][pm->wheel_slot];
  if (pm->wheel_prev != nullptr) {
    pm->wheel_prev->wheel_next = pm->wheel_next;
  } else {
    slot->head = pm->wheel_next;
  }
  if (pm->wheel_next != nullptr) {
    pm->wheel_next->wheel_prev = pm->wheel_prev;
  } else {
    slot->tail = pm->wheel_prev;
  }
  if (slot->head == nullptr && pm->wheel_level >= 0) {
    occupied_[pm->wheel_level][pm->wheel_slot >> 6] &=
        ~(uint64_t{1} << (pm->wheel_slot & 63));
  }
  pm->wheel_next = pm->wheel_prev = nullptr;
  pm->wheel_level = PartialMatch::kWheelNotQueued;
  --entries_;
}

size_t ExpiryWheel::Reap(uint64_t threshold, std::vector<PartialMatch*>* out) {
  size_t reaped = 0;
  for (PartialMatch* pm = overdue_.head; pm != nullptr;) {
    PartialMatch* next = pm->wheel_next;
    if (pm->wheel_deadline < threshold) {
      Unlink(pm);
      out->push_back(pm);
      ++reaped;
    }
    pm = next;
  }
  if (threshold <= now_) return reaped;
  const uint64_t from = now_;
  now_ = threshold;
  // Walk only the slots the time hands crossed, coarse levels included.
  // Detached survivors (slot aliasing, or the threshold's own partially
  // expired slot) are re-placed relative to the new time only after the
  // walk, so no entry is visited twice within one reap.
  cascade_scratch_.clear();
  for (int level = 0; level < kLevels; ++level) {
    const int shift = level * kSlotBits;
    const uint64_t lo = from >> shift;
    const uint64_t hi = threshold >> shift;
    if (lo == hi) break;
    const uint64_t span = hi - lo;
    const uint64_t touch =
        span >= static_cast<uint64_t>(kSlots) ? kSlots : span + 1;
    for (uint64_t i = 0; i < touch; ++i) {
      const int slot = static_cast<int>((lo + i) & (kSlots - 1));
      if ((occupied_[level][slot >> 6] >> (slot & 63) & 1) == 0) continue;
      PartialMatch* pm = slots_[level][slot].head;
      slots_[level][slot].head = slots_[level][slot].tail = nullptr;
      occupied_[level][slot >> 6] &= ~(uint64_t{1} << (slot & 63));
      while (pm != nullptr) {
        PartialMatch* next = pm->wheel_next;
        pm->wheel_next = pm->wheel_prev = nullptr;
        pm->wheel_level = PartialMatch::kWheelNotQueued;
        if (pm->wheel_deadline < threshold) {
          --entries_;
          out->push_back(pm);
          ++reaped;
        } else {
          cascade_scratch_.push_back(pm);
        }
        pm = next;
      }
    }
  }
  for (PartialMatch* pm : cascade_scratch_) {
    ++cascades_;
    Place(pm);
  }
  cascade_scratch_.clear();
  return reaped;
}

void ExpiryWheel::Clear() {
  for (auto& level : slots_) {
    for (Slot& slot : level) slot = Slot{};
  }
  for (auto& level : occupied_) {
    for (uint64_t& word : level) word = 0;
  }
  overdue_ = Slot{};
  now_ = 0;
  entries_ = 0;
  cascade_scratch_.clear();
}

PartialMatchStore::PartialMatchStore(int num_states, int num_elements)
    : buckets_(static_cast<size_t>(num_states)),
      witness_buckets_(static_cast<size_t>(num_elements)) {}

void PartialMatchStore::ConfigureExpiry(Duration window, uint64_t count_window,
                                        bool use_wheel) {
  assert(num_alive_ + num_alive_witnesses_ == 0);
  expiry_window_ = window;
  expiry_count_window_ = count_window;
  wheel_enabled_ = use_wheel;
}

uint64_t PartialMatchStore::DeadlineKey(const PartialMatch& pm) const {
  if (expiry_count_window_ > 0) {
    const uint64_t deadline = pm.start_seq + expiry_count_window_;
    return deadline < pm.start_seq ? std::numeric_limits<uint64_t>::max()
                                   : deadline;  // saturate
  }
  // Saturating start_ts + window: a deadline past the representable range
  // simply never comes due, matching the scan path's `now - start > w`.
  constexpr Timestamp kMaxTs = std::numeric_limits<Timestamp>::max();
  const Timestamp deadline =
      (expiry_window_ >= 0 && pm.start_ts > kMaxTs - expiry_window_)
          ? kMaxTs
          : pm.start_ts + expiry_window_;
  return TimeKey(deadline);
}

size_t PartialMatchStore::ReapExpired(Timestamp now, uint64_t seq) {
  assert(wheel_enabled_);
  const uint64_t threshold = expiry_count_window_ > 0 ? seq : TimeKey(now);
  reap_scratch_.clear();
  const size_t reaped = wheel_.Reap(threshold, &reap_scratch_);
  for (PartialMatch* pm : reap_scratch_) Kill(pm);
  reap_scratch_.clear();
  expiry_reaped_total_ += reaped;
  return reaped;
}

PartialMatch* PartialMatchStore::Add(std::unique_ptr<PartialMatch> pm) {
  PartialMatch* raw = pm.get();
  fixed_live_bytes_ += FixedBytes(*pm);
  buckets_[static_cast<size_t>(pm->state)].push_back(std::move(pm));
  ++num_alive_;
  if (wheel_enabled_) wheel_.Enqueue(raw, DeadlineKey(*raw));
  return raw;
}

PartialMatch* PartialMatchStore::AddWitness(std::unique_ptr<PartialMatch> pm) {
  PartialMatch* raw = pm.get();
  pm->is_witness = true;
  fixed_live_bytes_ += FixedBytes(*pm);
  witness_buckets_[static_cast<size_t>(pm->negated_elem)].push_back(std::move(pm));
  ++num_alive_witnesses_;
  if (wheel_enabled_) wheel_.Enqueue(raw, DeadlineKey(*raw));
  return raw;
}

void PartialMatchStore::Kill(PartialMatch* pm) {
  if (!pm->alive) return;
  if (wheel_enabled_) wheel_.Unlink(pm);
  pm->alive = false;
  ++num_dead_;
  const size_t bytes = FixedBytes(*pm);
  fixed_live_bytes_ -= bytes <= fixed_live_bytes_ ? bytes : fixed_live_bytes_;
  // Release the chain now so the memory signal (and the arena's free
  // list) reflect the kill immediately; Length()/slot_end stay readable
  // for audit consumers that inspect a match after shedding it.
  pm->ReleaseChain();
  if (pm->is_witness) {
    --num_alive_witnesses_;
  } else {
    --num_alive_;
  }
}

size_t PartialMatchStore::EvictExpired(Timestamp now, Duration window) {
  size_t evicted = 0;
  auto sweep = [&](Bucket& bucket) {
    for (auto& pm : bucket) {
      if (pm->alive && pm->Expired(now, window)) {
        Kill(pm.get());
        ++evicted;
      }
    }
  };
  for (auto& bucket : buckets_) sweep(bucket);
  for (auto& bucket : witness_buckets_) sweep(bucket);
  return evicted;
}

void PartialMatchStore::ForEachAlive(const std::function<void(PartialMatch*)>& fn) {
  for (auto& bucket : buckets_) {
    for (auto& pm : bucket) {
      if (pm->alive) fn(pm.get());
    }
  }
}

void PartialMatchStore::ForEachAliveWitness(
    const std::function<void(PartialMatch*)>& fn) {
  for (auto& bucket : witness_buckets_) {
    for (auto& pm : bucket) {
      if (pm->alive) fn(pm.get());
    }
  }
}

void PartialMatchStore::Compact() {
  auto compact_bucket = [](Bucket& bucket) {
    size_t keep = 0;
    for (size_t i = 0; i < bucket.size(); ++i) {
      if (bucket[i]->alive) {
        if (keep != i) bucket[keep] = std::move(bucket[i]);
        ++keep;
      }
    }
    bucket.resize(keep);
  };
  for (auto& bucket : buckets_) compact_bucket(bucket);
  for (auto& bucket : witness_buckets_) compact_bucket(bucket);
  num_dead_ = 0;
}

void PartialMatchStore::AdoptForeignArenas(
    const std::vector<std::shared_ptr<BindingArena>>& arenas) {
  for (const std::shared_ptr<BindingArena>& a : arenas) {
    if (a == nullptr || a == arena_) continue;
    bool known = false;
    for (const std::shared_ptr<BindingArena>& have : foreign_arenas_) {
      if (have == a) {
        known = true;
        break;
      }
    }
    if (!known) foreign_arenas_.push_back(a);
  }
  PruneForeignArenas();
}

void PartialMatchStore::PruneForeignArenas() {
  size_t keep = 0;
  for (size_t i = 0; i < foreign_arenas_.size(); ++i) {
    if (foreign_arenas_[i]->live_nodes() > 0) {
      if (keep != i) foreign_arenas_[keep] = std::move(foreign_arenas_[i]);
      ++keep;
    }
  }
  foreign_arenas_.resize(keep);
}

size_t PartialMatchStore::ForeignArenaLiveBytes() const {
  size_t bytes = 0;
  for (const std::shared_ptr<BindingArena>& a : foreign_arenas_) {
    bytes += a->LiveBytes();
  }
  return bytes;
}

void PartialMatchStore::ExtractIf(
    const std::function<bool(const PartialMatch&)>& pred,
    std::vector<std::unique_ptr<PartialMatch>>* regulars,
    std::vector<std::unique_ptr<PartialMatch>>* witnesses) {
  auto extract_bucket = [&](Bucket& bucket, bool witness_bucket) {
    size_t keep = 0;
    for (size_t i = 0; i < bucket.size(); ++i) {
      std::unique_ptr<PartialMatch>& pm = bucket[i];
      if (pm->alive && pred(*pm)) {
        // The match leaves this store's jurisdiction; the adopter's
        // Add/AddWitness re-enqueues it on its own wheel in donor order.
        if (wheel_enabled_) wheel_.Unlink(pm.get());
        const size_t bytes = FixedBytes(*pm);
        fixed_live_bytes_ -= bytes <= fixed_live_bytes_ ? bytes : fixed_live_bytes_;
        if (witness_bucket) {
          --num_alive_witnesses_;
          witnesses->push_back(std::move(pm));
        } else {
          --num_alive_;
          regulars->push_back(std::move(pm));
        }
        continue;
      }
      if (keep != i) bucket[keep] = std::move(bucket[i]);
      ++keep;
    }
    bucket.resize(keep);
  };
  for (auto& bucket : buckets_) extract_bucket(bucket, false);
  for (auto& bucket : witness_buckets_) extract_bucket(bucket, true);
}

double PartialMatchStore::DeadFraction() const {
  const size_t total = num_alive_ + num_alive_witnesses_ + num_dead_;
  return total == 0 ? 0.0 : static_cast<double>(num_dead_) / static_cast<double>(total);
}

void PartialMatchStore::Clear() {
  // Reset the wheel before destroying the matches it links; intrusive
  // pointers die with their owners, so a wholesale structural reset is
  // all the consistency this needs. The wheel clock restarts at zero —
  // runs after a Clear replay stream time from the beginning.
  wheel_.Clear();
  for (auto& bucket : buckets_) bucket.clear();
  for (auto& bucket : witness_buckets_) bucket.clear();
  num_alive_ = num_alive_witnesses_ = num_dead_ = 0;
  fixed_live_bytes_ = 0;
  PruneForeignArenas();
}

}  // namespace cepshed
