// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Elastic-resharding benchmark: what does a stop-the-world resize cost,
// and what does the resulting shard count buy? Three arms over one DS1/Q1
// stream, hash-partitioned on ID:
//
//   static2 / static4 — fixed shard counts, the before/after envelopes a
//       resize moves between;
//   elastic — starts at 2 shards and executes a scripted ladder of
//       resizes (2→3→4→3→2→3→4→3→2) so the migration-pause histogram has
//       enough samples for a meaningful p99.
//
// The JSON written to argv[1] (default BENCH_reshard.json) records the
// throughput of each arm, the elastic arm's migration counters, and the
// pause distribution (p50/p95/p99/max microseconds). Pauses are
// wall-clock: the pause histogram is for sizing, not for byte-identity.
// Match counts are emitted per arm so an exactness regression in the
// migration path is visible in the same artifact that gates its cost
// (all arms must agree — resizing must never change the answer).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "src/cep/nfa.h"
#include "src/fault/fault_injector.h"
#include "src/obs/export.h"
#include "src/runtime/shard_runtime.h"

namespace cepshed {
namespace {

struct ArmResult {
  double eps = 0.0;
  size_t matches = 0;
  uint64_t resizes = 0;
  uint64_t migrated_pms = 0;
  uint64_t migrated_bytes = 0;
  double pause_p50 = 0.0;
  double pause_p95 = 0.0;
  double pause_p99 = 0.0;
  double pause_max = 0.0;
  uint64_t pause_count = 0;
};

ArmResult RunArm(const Schema& schema, const EventStream& stream,
                 const Query& query, int shards, int max_shards,
                 const FaultInjector* faults) {
  auto nfa = Nfa::Compile(query, &schema);
  if (!nfa.ok()) std::abort();
  ShardRuntimeOptions opts;
  opts.num_shards = shards;
  opts.routing = ShardRouting::kHashPartition;
  opts.partition_attr = schema.AttributeIndex("ID");
  opts.faults = faults;
  opts.reshard.min_shards = 1;
  opts.reshard.max_shards = max_shards;
  obs::MetricsRegistry registry;
  opts.metrics = &registry;
  auto runtime = ShardRuntime::Create(*nfa, opts);
  if (!runtime.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 runtime.status().ToString().c_str());
    std::abort();
  }
  auto result = (*runtime)->Run(stream);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  const obs::RegistrySnapshot snap = registry.Snapshot();
  ArmResult arm;
  arm.eps = static_cast<double>(stream.size()) / result->wall_seconds;
  arm.matches = result->matches.size();
  arm.resizes = result->resizes;
  arm.migrated_pms = result->migrated_pms;
  arm.migrated_bytes = result->migrated_bytes;
  arm.pause_count = snap.total.migration_us.count;
  arm.pause_p50 = snap.total.migration_us.Quantile(0.50);
  arm.pause_p95 = snap.total.migration_us.Quantile(0.95);
  arm.pause_p99 = snap.total.migration_us.Quantile(0.99);
  arm.pause_max = snap.total.migration_us.max;
  return arm;
}

void AppendArm(std::string* json, const char* name, const ArmResult& arm,
               bool last) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    \"%s\": {\"events_per_sec\": %.0f, \"matches\": %zu, "
      "\"resizes\": %llu, \"migrated_pms\": %llu, \"migrated_bytes\": %llu, "
      "\"pause_us\": {\"count\": %llu, \"p50\": %.1f, \"p95\": %.1f, "
      "\"p99\": %.1f, \"max\": %.1f}}%s\n",
      name, arm.eps, arm.matches, static_cast<unsigned long long>(arm.resizes),
      static_cast<unsigned long long>(arm.migrated_pms),
      static_cast<unsigned long long>(arm.migrated_bytes),
      static_cast<unsigned long long>(arm.pause_count), arm.pause_p50,
      arm.pause_p95, arm.pause_p99, arm.pause_max, last ? "" : ",");
  *json += buf;
}

}  // namespace
}  // namespace cepshed

int main(int argc, char** argv) {
  using namespace cepshed;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_reshard.json";
  std::printf("# resharding — %u hardware threads\n",
              std::thread::hardware_concurrency());
  bench::Header("Elastic resharding", "migration pause + throughput envelope",
                "arm,shards,events_per_sec,matches,resizes,pause_p99_us");

  const Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = 60000;
  gen.seed = 53;
  const EventStream stream = GenerateDs1(schema, gen);
  const Query q1 = *queries::Q1("4ms");

  const ArmResult static2 = RunArm(schema, stream, q1, 2, 0, nullptr);
  const ArmResult static4 = RunArm(schema, stream, q1, 4, 0, nullptr);

  // Eight resizes, evenly spaced, walking 2→4 and back twice. Anchors are
  // global routed-event sequence numbers, so the ladder is deterministic.
  std::string spec;
  const int deltas[] = {+1, +1, -1, -1, +1, +1, -1, -1};
  for (int i = 0; i < 8; ++i) {
    char entry[64];
    std::snprintf(entry, sizeof(entry), "%sresize:at=%d,delta=%+d",
                  i > 0 ? ";" : "", 6000 * (i + 1), deltas[i]);
    spec += entry;
  }
  auto faults = FaultInjector::Parse(spec);
  if (!faults.ok()) {
    std::fprintf(stderr, "fault spec: %s\n", faults.status().ToString().c_str());
    return 1;
  }
  const ArmResult elastic = RunArm(schema, stream, q1, 2, 4, &*faults);

  std::printf("static,2,%.0f,%zu,0,0\n", static2.eps, static2.matches);
  std::printf("static,4,%.0f,%zu,0,0\n", static4.eps, static4.matches);
  std::printf("elastic,2..4,%.0f,%zu,%llu,%.1f\n", elastic.eps,
              elastic.matches, static_cast<unsigned long long>(elastic.resizes),
              elastic.pause_p99);

  if (static2.matches != static4.matches ||
      static2.matches != elastic.matches) {
    std::fprintf(stderr,
                 "EXACTNESS VIOLATION: match counts diverge across arms "
                 "(%zu / %zu / %zu)\n",
                 static2.matches, static4.matches, elastic.matches);
    return 1;
  }

  std::string json = "{\n";
  json += "  \"bench\": \"resharding\",\n";
  json += "  \"events\": 60000,\n";
  json += "  \"resize_schedule\": \"" + spec + "\",\n";
  json += "  \"arms\": {\n";
  AppendArm(&json, "static2", static2, false);
  AppendArm(&json, "static4", static4, false);
  AppendArm(&json, "elastic", elastic, true);
  json += "  }\n}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("# wrote %s\n", out_path.c_str());
  return 0;
}
