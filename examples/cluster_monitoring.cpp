// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Cluster-monitoring example (the paper's §VI-J case study, Listing 3):
// detect tasks that churn through the cluster — submitted, scheduled and
// evicted on one machine, rescheduled and evicted on a second, finally
// rescheduled on a third machine where they fail — within one hour.
// During eviction storms the pattern state explodes; hybrid shedding keeps
// the monitoring pipeline inside its latency budget.
//
//   $ ./examples/cluster_monitoring

#include <cstdio>

#include "src/runtime/experiment.h"
#include "src/workload/google_trace.h"
#include "src/workload/queries.h"

using namespace cepshed;

int main() {
  const Schema schema = MakeGoogleTraceSchema();
  GoogleTraceOptions gen;
  gen.num_events = 20000;
  gen.seed = 3;
  const EventStream train = GenerateGoogleTrace(schema, gen);
  gen.seed = 4;
  const EventStream live = GenerateGoogleTrace(schema, gen);

  Result<Query> query = queries::GoogleTaskChurn();
  if (!query.ok()) {
    std::fprintf(stderr, "query error: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("Query (Listing 3): %s\n\n", query->ToString().c_str());

  ExperimentHarness harness(&schema, *query, HarnessOptions{});
  if (Status st = harness.Prepare(train, live); !st.ok()) {
    std::fprintf(stderr, "prepare error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Exhaustive processing: %zu churn chains, avg latency %.0f units, "
              "peak state %zu partial matches.\n\n",
              harness.truth().size(), harness.BaselineLatency(),
              harness.truth_run().engine_stats.peak_pms);

  std::printf("Monitoring at 40%% of the exhaustive latency:\n");
  std::printf("%-8s %8s %12s %12s\n", "strategy", "recall", "throughput", "shed PMs");
  for (StrategyKind kind :
       {StrategyKind::kSI, StrategyKind::kSS, StrategyKind::kHybrid}) {
    const ExperimentResult r = harness.RunBound(kind, 0.4);
    std::printf("%-8s %7.1f%% %9.0f/s %12llu\n", r.name.c_str(),
                100.0 * r.quality.recall, r.throughput_eps,
                static_cast<unsigned long long>(r.raw.shed_pms));
  }
  std::printf(
      "\nChains whose task already finished or whose machines repeat can\n"
      "never complete the pattern — the cost model sheds exactly those.\n");
  return 0;
}
