// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Tests of the bounded ring queue behind the sharded runtime: FIFO
// semantics, capacity/fullness behaviour, close-and-drain, and
// producer/consumer stress in the SPSC shape the runtime uses plus the
// MPMC shape the Vyukov slot-sequencing supports.

#include "src/runtime/ring_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace cepshed {
namespace {

TEST(RingQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(RingQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(RingQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(RingQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(RingQueue<int>(1000).capacity(), 1024u);
}

TEST(RingQueueTest, FifoOrderSingleThread) {
  RingQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.TryPush(i));
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.TryPop(&out));
}

TEST(RingQueueTest, TryPushFailsWhenFull) {
  RingQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(99));
  int out = -1;
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(q.TryPush(99));
}

TEST(RingQueueTest, WrapAroundKeepsFifo) {
  RingQueue<int> q(4);
  int out = -1;
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(q.TryPush(2 * round));
    EXPECT_TRUE(q.TryPush(2 * round + 1));
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, 2 * round);
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, 2 * round + 1);
  }
}

TEST(RingQueueTest, CloseDrainsThenFails) {
  RingQueue<int> q(8);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  q.Close();
  EXPECT_FALSE(q.Push(3));
  int out = -1;
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.Pop(&out));
}

TEST(RingQueueTest, PopUnblocksOnClose) {
  RingQueue<int> q(8);
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    int out = -1;
    EXPECT_FALSE(q.Pop(&out));
    done.store(true);
  });
  // Give the consumer a moment to block on the empty queue, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
  EXPECT_TRUE(done.load());
}

TEST(RingQueueTest, MoveOnlyPayload) {
  RingQueue<std::unique_ptr<int>> q(4);
  EXPECT_TRUE(q.Push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.Pop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

TEST(RingQueueTest, SpscStressPreservesOrder) {
  constexpr int kCount = 200000;
  RingQueue<int> q(64);  // small capacity forces constant wrap + blocking
  std::vector<int> received;
  received.reserve(kCount);
  std::thread consumer([&] {
    int v = -1;
    while (q.Pop(&v)) received.push_back(v);
  });
  for (int i = 0; i < kCount; ++i) ASSERT_TRUE(q.Push(i));
  q.Close();
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) ASSERT_EQ(received[static_cast<size_t>(i)], i);
}

TEST(RingQueueTest, BlockingPushRetriesPreserveMoveOnlyPayload) {
  // A tiny queue guarantees blocking Push has to retry constantly. With a
  // move-only payload, a Push that moves from its argument on a *failed*
  // attempt would deliver nulls (the bug class this pins down).
  constexpr int kCount = 50000;
  RingQueue<std::unique_ptr<int>> q(2);
  std::vector<int> received;
  received.reserve(kCount);
  std::thread consumer([&] {
    std::unique_ptr<int> v;
    while (q.Pop(&v)) {
      ASSERT_NE(v, nullptr) << "Push delivered a moved-from element";
      received.push_back(*v);
    }
  });
  for (int i = 0; i < kCount; ++i) ASSERT_TRUE(q.Push(std::make_unique<int>(i)));
  q.Close();
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) ASSERT_EQ(received[static_cast<size_t>(i)], i);
}

TEST(RingQueueTest, PushForTimesOutOnAFullQueueWithoutConsumingTheValue) {
  RingQueue<std::unique_ptr<int>> q(2);
  ASSERT_TRUE(q.Push(std::make_unique<int>(0)));
  ASSERT_TRUE(q.Push(std::make_unique<int>(1)));
  // Nobody pops: the bounded wait must expire instead of spinning forever
  // (the dead-consumer detection path of the sharded router)...
  auto value = std::make_unique<int>(2);
  EXPECT_EQ(q.PushForRef(value, 2000), QueuePushResult::kTimedOut);
  // ...and a failed push must not have moved from the argument, so the
  // caller can retry with the same element.
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, 2);

  std::unique_ptr<int> out;
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_EQ(*out, 0);
  EXPECT_EQ(q.PushForRef(value, 2000), QueuePushResult::kOk);
  EXPECT_EQ(value, nullptr);  // consumed on success
}

TEST(RingQueueTest, PushForReportsClosedImmediately) {
  RingQueue<int> q(4);
  q.Close();
  EXPECT_EQ(q.PushFor(7, 2000), QueuePushResult::kClosed);
  // Also when the queue fills up and is closed mid-wait.
  RingQueue<int> full(2);
  ASSERT_TRUE(full.Push(1));
  ASSERT_TRUE(full.Push(2));
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    full.Close();
  });
  EXPECT_EQ(full.PushFor(3, -1), QueuePushResult::kClosed);  // unbounded wait
  closer.join();
}

TEST(RingQueueTest, PushForSucceedsOnceAConsumerFreesASlot) {
  RingQueue<int> q(2);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    int out = -1;
    ASSERT_TRUE(q.Pop(&out));
  });
  // Generous deadline: the push lands as soon as the pop frees a slot.
  EXPECT_EQ(q.PushFor(3, 5'000'000), QueuePushResult::kOk);
  consumer.join();
}

TEST(RingQueueTest, MpmcStressLosesNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 40000;
  RingQueue<int> q(128);
  std::vector<std::vector<int>> received(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      int v = -1;
      while (q.Pop(&v)) received[static_cast<size_t>(c)].push_back(v);
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  std::vector<int> all;
  for (const auto& r : received) all.insert(all.end(), r.begin(), r.end());
  ASSERT_EQ(all.size(), static_cast<size_t>(kProducers * kPerProducer));
  std::sort(all.begin(), all.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ASSERT_EQ(all[static_cast<size_t>(i)], i);  // every element exactly once
  }
  // Per-producer subsequences must stay FIFO within one consumer only under
  // SPSC; under MPMC only global multiset integrity is guaranteed.
}

TEST(RingQueueTest, SealDrainStressAtTheCapacityBoundary) {
  // The elastic-reshard migration protocol seals a donor (producers stop
  // offering), then drains the ring to empty before touching engine state.
  // This stresses exactly that handoff on a tiny ring, so the seal lands
  // while the queue is full, producers are parked mid-PushFor, and the
  // drain races slot reuse at the wrap boundary. Every element whose push
  // succeeded must be observed exactly once, in per-producer FIFO order —
  // a miss here would surface in the runtime as a lost or duplicated
  // event across a resize barrier.
  constexpr int kRounds = 8;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  for (int round = 0; round < kRounds; ++round) {
    RingQueue<uint64_t> queue(8);  // tiny: every push contends with wrap
    std::atomic<bool> seal{false};
    std::array<std::atomic<int>, kProducers> pushed{};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          uint64_t value = static_cast<uint64_t>(p) << 32 |
                           static_cast<uint32_t>(i);
          QueuePushResult result;
          do {
            if (seal.load(std::memory_order_acquire)) return;
            result = queue.PushFor(value, 100);
          } while (result == QueuePushResult::kTimedOut);
          if (result != QueuePushResult::kOk) return;
          pushed[static_cast<size_t>(p)].fetch_add(1,
                                                   std::memory_order_release);
        }
      });
    }

    // Consume roughly half the stream concurrently (capacity 8 guarantees
    // producers cannot run ahead, so this loop always terminates), then
    // seal mid-flight.
    std::vector<uint64_t> consumed;
    const size_t half = kProducers * kPerProducer / 2;
    while (consumed.size() < half) {
      uint64_t v = 0;
      if (queue.TryPop(&v)) consumed.push_back(v);
    }
    seal.store(true, std::memory_order_release);
    for (auto& t : producers) t.join();

    // Drain to empty: the barrier guarantee is that after the join,
    // everything successfully pushed is poppable with no residue.
    uint64_t v = 0;
    while (queue.TryPop(&v)) consumed.push_back(v);
    EXPECT_FALSE(queue.TryPop(&v));

    std::array<int, kProducers> next{};
    for (uint64_t val : consumed) {
      const size_t p = static_cast<size_t>(val >> 32);
      const int i = static_cast<int>(val & 0xffffffffu);
      ASSERT_LT(p, static_cast<size_t>(kProducers));
      EXPECT_EQ(i, next[p]++) << "round " << round << " producer " << p;
    }
    size_t total = 0;
    for (int p = 0; p < kProducers; ++p) {
      EXPECT_EQ(next[static_cast<size_t>(p)],
                pushed[static_cast<size_t>(p)].load())
          << "round " << round << " producer " << p;
      total += static_cast<size_t>(next[static_cast<size_t>(p)]);
    }
    EXPECT_EQ(consumed.size(), total);
  }
}

}  // namespace
}  // namespace cepshed
