// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Property-based tests of the paper's formal foundations (§III-A):
//  - monotonicity in the stream: evaluating over a projection of the
//    stream (input shedding) yields a subset of the original matches;
//  - monotonicity in the partial matches: removing partial matches (state
//    shedding) yields a subset of the complete matches;
//  - join-index transparency: the engine with and without indexes
//    produces identical match sets;
//  - the false-positive behaviour of non-monotonic (negation) queries.

#include <gtest/gtest.h>

#include <set>

#include "src/cep/engine.h"
#include "src/cep/nfa.h"
#include "src/workload/ds1.h"
#include "src/workload/queries.h"
#include "tests/test_util.h"

namespace cepshed {
namespace {

std::set<std::string> MatchKeys(const std::vector<Match>& matches) {
  std::set<std::string> keys;
  for (const Match& m : matches) keys.insert(m.Key());
  return keys;
}

std::vector<Match> RunStream(const std::shared_ptr<const Nfa>& nfa,
                             const std::vector<EventPtr>& events,
                             EngineOptions opts = {}) {
  Engine engine(nfa, opts);
  std::vector<Match> out;
  for (const EventPtr& e : events) engine.Process(e, &out);
  return out;
}

class MonotonicityTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  MonotonicityTest() : schema_(MakeDs1Schema()) {}

  std::vector<EventPtr> MakeStream(uint64_t seed, size_t n = 600) {
    Ds1Options opts;
    opts.num_events = n;
    opts.event_gap = 5;
    opts.seed = seed;
    const EventStream stream = GenerateDs1(schema_, opts);
    return {stream.begin(), stream.end()};
  }

  Schema schema_;
};

TEST_P(MonotonicityTest, StreamProjectionYieldsMatchSubsetQ1) {
  auto nfa = Nfa::Compile(*queries::Q1("4ms"), &schema_);
  ASSERT_TRUE(nfa.ok());
  const auto events = MakeStream(GetParam());
  const auto full = MatchKeys(RunStream(*nfa, events));

  // Drop every third event (an order-preserving projection).
  std::vector<EventPtr> projected;
  for (size_t i = 0; i < events.size(); ++i) {
    if (i % 3 != 0) projected.push_back(events[i]);
  }
  const auto reduced = MatchKeys(RunStream(*nfa, projected));
  for (const auto& key : reduced) {
    EXPECT_TRUE(full.count(key) > 0) << "projection created a new match";
  }
  EXPECT_LE(reduced.size(), full.size());
}

TEST_P(MonotonicityTest, StreamProjectionYieldsMatchSubsetKleene) {
  auto nfa = Nfa::Compile(*queries::Q2(4, "2ms"), &schema_);
  ASSERT_TRUE(nfa.ok());
  const auto events = MakeStream(GetParam() + 77);
  const auto full = MatchKeys(RunStream(*nfa, events));

  Rng rng(GetParam());
  std::vector<EventPtr> projected;
  for (const auto& e : events) {
    if (!rng.Bernoulli(0.3)) projected.push_back(e);
  }
  const auto reduced = MatchKeys(RunStream(*nfa, projected));
  for (const auto& key : reduced) {
    EXPECT_TRUE(full.count(key) > 0) << "projection created a new match";
  }
}

TEST_P(MonotonicityTest, StateSheddingYieldsMatchSubset) {
  auto nfa = Nfa::Compile(*queries::Q1("4ms"), &schema_);
  ASSERT_TRUE(nfa.ok());
  const auto events = MakeStream(GetParam() + 1234);
  const auto full = MatchKeys(RunStream(*nfa, events));

  // Kill a random subset of partial matches after every event.
  Engine engine(*nfa, EngineOptions{});
  Rng rng(GetParam());
  std::vector<Match> out;
  for (const EventPtr& e : events) {
    engine.Process(e, &out);
    engine.store().ForEachAlive([&](PartialMatch* pm) {
      if (rng.Bernoulli(0.2)) engine.store().Kill(pm);
    });
  }
  const auto reduced = MatchKeys(out);
  for (const auto& key : reduced) {
    EXPECT_TRUE(full.count(key) > 0) << "state shedding created a new match";
  }
  EXPECT_LT(reduced.size(), full.size());
}

TEST_P(MonotonicityTest, IndexOnOffProduceIdenticalMatches) {
  for (const auto& query :
       {*queries::Q1("4ms"), *queries::Q2(3, "2ms"), *queries::Q4("4ms")}) {
    auto nfa = Nfa::Compile(query, &schema_);
    ASSERT_TRUE(nfa.ok());
    const auto events = MakeStream(GetParam() + 555);
    EngineOptions on;
    on.use_join_index = true;
    EngineOptions expr_keys = on;
    expr_keys.index_expression_keys = true;
    EngineOptions off;
    off.use_join_index = false;
    const auto a = MatchKeys(RunStream(*nfa, events, on));
    const auto b = MatchKeys(RunStream(*nfa, events, off));
    const auto c = MatchKeys(RunStream(*nfa, events, expr_keys));
    EXPECT_EQ(a, b) << query.name;
    EXPECT_EQ(a, c) << query.name;
  }
}

TEST_P(MonotonicityTest, CompactionPreservesMatches) {
  auto nfa = Nfa::Compile(*queries::Q1("4ms"), &schema_);
  ASSERT_TRUE(nfa.ok());
  const auto events = MakeStream(GetParam() + 999);

  EngineOptions eager;
  eager.evict_interval = 8;
  eager.compact_min_dead = 1;
  eager.compact_dead_fraction = 0.0;
  EngineOptions lazy;
  lazy.evict_interval = 512;
  lazy.compact_min_dead = 1u << 30;

  const auto a = MatchKeys(RunStream(*nfa, events, eager));
  const auto b = MatchKeys(RunStream(*nfa, events, lazy));
  EXPECT_EQ(a, b);
}

TEST_P(MonotonicityTest, NegationSheddingOnlyAddsFalsePositives) {
  auto nfa = Nfa::Compile(*queries::Q4("4ms"), &schema_);
  ASSERT_TRUE(nfa.ok());
  const auto events = MakeStream(GetParam() + 321);
  const auto truth = MatchKeys(RunStream(*nfa, events));

  // Shed witnesses only: every true match must still be found (recall 1);
  // extra matches may appear (precision < 1) — the paper's Fig. 14.
  Engine engine(*nfa, EngineOptions{});
  Rng rng(GetParam());
  std::vector<Match> out;
  for (const EventPtr& e : events) {
    engine.Process(e, &out);
    engine.store().ForEachAliveWitness([&](PartialMatch* pm) {
      if (rng.Bernoulli(0.5)) engine.store().Kill(pm);
    });
  }
  const auto shed = MatchKeys(out);
  for (const auto& key : truth) {
    EXPECT_TRUE(shed.count(key) > 0) << "witness shedding lost a true match";
  }
  EXPECT_GE(shed.size(), truth.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicityTest, ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace cepshed
