// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// A positional input shedder in the spirit of eSPICE (Slo, Bhowmik &
// Rothermel, Middleware 2019), which the paper discusses as related work
// (§VII): the utility of an event is assessed from its type and its
// *relative position within the query window*, learned from historic
// matches. Provided as an additional baseline beyond the paper's RI/SI —
// positioned between type-level SI and the attribute-level cost model.

#ifndef CEPSHED_SHED_POSITIONAL_H_
#define CEPSHED_SHED_POSITIONAL_H_

#include <vector>

#include "src/cep/nfa.h"
#include "src/cep/stream.h"
#include "src/common/rng.h"
#include "src/shed/baselines.h"
#include "src/shed/shedder.h"

namespace cepshed {

/// \brief Per-(type, window-position-bucket) utility table learned from a
/// historic stream: the probability that an event of a type at that
/// relative window position participates in a complete match. Positions
/// are cyclic (`timestamp mod window`), which captures periodic structure
/// (rush hours, storms) without tracking open pattern instances.
class PositionalUtility {
 public:
  /// `buckets` splits the window into relative-position bins.
  PositionalUtility(int num_types, int buckets, Duration window);

  /// Learns the table by replaying `history` through an engine for `nfa`.
  Status Train(const std::shared_ptr<const Nfa>& nfa, const EventStream& history);

  /// Utility of an event with the given timestamp (cyclic position).
  double Utility(int type, Timestamp ts) const;

  /// Sorted utilities over the training events (quantile calibration).
  const std::vector<double>& sorted_utilities() const { return sorted_utilities_; }

  int buckets() const { return buckets_; }

 private:
  size_t Index(int type, Duration offset) const;

  int num_types_;
  int buckets_;
  Duration window_;
  std::vector<double> hits_;
  std::vector<double> totals_;
  std::vector<double> sorted_utilities_;
};

/// \brief PI: drops arriving events whose positional utility falls below a
/// quantile threshold. Latency-bound mode adapts the drop rate like the
/// other input baselines; fixed-ratio mode drops a calibrated fraction.
class PositionalInputShedder : public Shedder {
 public:
  /// Latency-bound mode.
  PositionalInputShedder(const PositionalUtility* utility, double theta,
                         uint64_t trigger_delay, uint64_t seed);
  /// Fixed-ratio mode.
  PositionalInputShedder(const PositionalUtility* utility, double fraction,
                         uint64_t seed);

  std::string Name() const override { return "PI"; }
  double theta() const override;
  bool FilterEvent(const Event& event) override;
  void AfterEvent(Timestamp now, double mu) override;
  void Reset() override;

 private:
  double ThresholdFor(double fraction) const;

  const PositionalUtility* utility_;
  std::optional<DropRateController> controller_;
  double fixed_fraction_ = -1.0;
  double threshold_ = -1.0;
  double planned_fraction_ = 0.0;
  /// Smoothed latency of the last AfterEvent (audit context for drops).
  double last_mu_ = 0.0;
  Rng rng_;
};

}  // namespace cepshed

#endif  // CEPSHED_SHED_POSITIONAL_H_
