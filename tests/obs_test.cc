// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Observability-layer tests: counter/histogram exactness under concurrent
// recording, quantile error bounds of the log-bucketed histogram, merge
// associativity (merge == recording the union), audit-ring ordering,
// wraparound and seqlock consistency under a concurrent reader (run under
// TSan in CI), exporter output, and snapshot determinism of the sharded
// runtime's parallel path against its sequential replay.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/scoped_timer.h"
#include "src/runtime/shard_runtime.h"
#include "src/workload/ds1.h"
#include "src/workload/queries.h"

namespace cepshed {
namespace obs {
namespace {

/// Deterministic 31-bit stream, portable across platforms.
uint64_t LcgNext(uint64_t* state) {
  *state = *state * 6364136223846793005ULL + 1442695040888963407ULL;
  return *state >> 33;
}

TEST(CounterTest, ConcurrentAddsAreExact) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Load(), kThreads * kPerThread);
}

TEST(LogHistogramTest, ConcurrentRecordsAreExact) {
  LogHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      uint64_t state = 1000 + static_cast<uint64_t>(t);
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(1.0 + static_cast<double>(LcgNext(&state) % 1000));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

/// Quantile estimates use the bucket's geometric midpoint; with 32
/// sub-buckets per octave the relative bucket width is ~3.1%, so the
/// estimate must agree with the exact sample quantile within 5%.
TEST(LogHistogramTest, QuantileWithinRelativeBound) {
  const auto check = [](const std::vector<double>& values) {
    LogHistogram h;
    for (double v : values) h.Record(v);
    const HistogramSnapshot snap = h.Snapshot();
    for (double q : {0.50, 0.95, 0.99}) {
      std::vector<double> copy = values;
      const size_t idx = std::min(
          copy.size() - 1,
          static_cast<size_t>(q * static_cast<double>(copy.size() - 1) + 0.5));
      std::nth_element(copy.begin(), copy.begin() + static_cast<ptrdiff_t>(idx),
                       copy.end());
      const double exact = copy[idx];
      EXPECT_NEAR(snap.Quantile(q), exact, 0.05 * exact)
          << "q=" << q << " exact=" << exact;
    }
  };

  uint64_t state = 7;
  std::vector<double> uniform;
  for (int i = 0; i < 20'000; ++i) {
    uniform.push_back(1.0 + static_cast<double>(LcgNext(&state) % 100'000) / 1000.0);
  }
  check(uniform);

  std::vector<double> exponential;
  for (int i = 0; i < 20'000; ++i) {
    const double u =
        (static_cast<double>(LcgNext(&state) % 1'000'000) + 0.5) / 1'000'000.0;
    exponential.push_back(-std::log(u));
  }
  check(exponential);
}

TEST(LogHistogramTest, MergeEqualsRecordingTheUnion) {
  LogHistogram a;
  LogHistogram b;
  LogHistogram all;
  uint64_t state = 42;
  for (int i = 0; i < 10'000; ++i) {
    const double low = 0.01 + static_cast<double>(LcgNext(&state) % 1000) / 500.0;
    a.Record(low);
    all.Record(low);
  }
  for (int i = 0; i < 10'000; ++i) {
    const double high = 100.0 + static_cast<double>(LcgNext(&state) % 100'000);
    b.Record(high);
    all.Record(high);
  }
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  const HistogramSnapshot expected = all.Snapshot();
  EXPECT_EQ(merged.buckets, expected.buckets);
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.max, expected.max);
  EXPECT_NEAR(merged.sum, expected.sum, 1e-6 * expected.sum);
}

TEST(LogHistogramTest, TracksMaxAndMean) {
  LogHistogram h;
  h.Record(2.0);
  h.Record(4.0);
  h.Record(600.0);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_DOUBLE_EQ(snap.max, 600.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 202.0);
  // The quantile estimate is capped at the observed maximum.
  EXPECT_LE(snap.Quantile(0.999), 600.0);
}

TEST(ScopedTimerTest, NullHistogramIsANoOp) {
  { ScopedTimerUs timer(nullptr); }  // must not crash or record
  LogHistogram h;
  {
    ScopedTimerUs timer(&h);
  }
  EXPECT_EQ(h.Count(), 1u);
}

TEST(AuditRingTest, RetainsMostRecentEntriesInOrder) {
  AuditRing ring;
  constexpr uint64_t kTotal = 3 * AuditRing::kCapacity - 17;
  for (uint64_t i = 0; i < kTotal; ++i) {
    ring.Record(AuditKind::kDropEvent, 2, static_cast<int64_t>(10 * i),
                static_cast<int32_t>(i % 5), 0.5, i);
  }
  EXPECT_EQ(ring.TotalRecorded(), kTotal);
  const std::vector<AuditEntry> entries = ring.Snapshot();
  ASSERT_EQ(entries.size(), AuditRing::kCapacity);
  for (size_t i = 0; i < entries.size(); ++i) {
    const AuditEntry& e = entries[i];
    EXPECT_EQ(e.index, kTotal - AuditRing::kCapacity + i);
    EXPECT_EQ(e.detail, e.index);
    EXPECT_EQ(e.timestamp, static_cast<int64_t>(10 * e.index));
    EXPECT_EQ(e.class_label, static_cast<int32_t>(e.index % 5));
    EXPECT_EQ(e.shard, 2);
    EXPECT_EQ(e.kind, AuditKind::kDropEvent);
  }
}

/// Seqlock consistency: a reader racing the writer must never observe a
/// torn entry — every returned entry's fields belong to one Record call.
/// (This is the TSan target for the ring.)
TEST(AuditRingTest, ConcurrentReaderSeesOnlyConsistentEntries) {
  AuditRing ring;
  std::atomic<bool> done{false};
  std::thread writer([&ring, &done] {
    for (uint64_t i = 0; i < 100'000; ++i) {
      ring.Record(AuditKind::kKillPm, static_cast<uint8_t>(i % 7),
                  static_cast<int64_t>(i), static_cast<int32_t>(i % 11),
                  static_cast<double>(i), i);
    }
    done.store(true, std::memory_order_release);
  });
  uint64_t validated = 0;
  const auto validate_all = [&] {
    for (const AuditEntry& e : ring.Snapshot()) {
      // All fields derive from the entry's index: any torn read surfaces
      // as a field mismatch.
      ASSERT_EQ(e.detail, e.index);
      ASSERT_EQ(e.timestamp, static_cast<int64_t>(e.index));
      ASSERT_EQ(e.mu, static_cast<double>(e.index));
      ASSERT_EQ(e.shard, static_cast<uint8_t>(e.index % 7));
      ASSERT_EQ(e.class_label, static_cast<int32_t>(e.index % 11));
      ++validated;
    }
  };
  while (!done.load(std::memory_order_acquire)) {
    validate_all();  // races the writer — the interleaving TSan watches
  }
  writer.join();
  // On a single-core host the writer can finish before the loop ever runs;
  // this post-join pass guarantees the full ring is validated regardless.
  validate_all();
  EXPECT_GT(validated, 0u);
}

TEST(ExportTest, PrometheusRenderHasRequiredSeriesAndCumulativeBuckets) {
  MetricsRegistry registry(2);
  ShardObs* s0 = registry.shard(0);
  s0->events_routed.Add(100);
  s0->events_processed.Add(90);
  s0->events_dropped_shedder.Add(10);
  s0->CountShedClass(3);
  s0->guard_transitions.Add();
  s0->guard_level.Set(1);
  uint64_t state = 5;
  for (int i = 0; i < 1000; ++i) {
    s0->event_cost.Record(0.5 + static_cast<double>(LcgNext(&state) % 100));
  }
  registry.shard(1)->events_routed.Add(7);

  const std::string text = RenderPrometheus(registry.Snapshot());
  for (const char* series :
       {"cepshed_events_routed_total{shard=\"0\"} 100",
        "cepshed_events_routed_total{shard=\"1\"} 7",
        "cepshed_events_processed_total{shard=\"0\"} 90",
        "cepshed_events_dropped_shedder_total{shard=\"0\"} 10",
        "cepshed_shed_by_class_total{shard=\"0\",class=\"3\"} 1",
        "cepshed_guard_transitions_total{shard=\"0\"} 1",
        "cepshed_guard_level{shard=\"0\"} 1",
        "cepshed_event_cost_count{shard=\"0\"} 1000",
        "cepshed_event_cost_bucket{shard=\"0\",le=\"+Inf\"} 1000"}) {
    EXPECT_NE(text.find(series), std::string::npos) << "missing: " << series;
  }

  // Cumulative `le` buckets must be non-decreasing and end at count.
  uint64_t prev = 0;
  uint64_t last = 0;
  size_t pos = 0;
  while ((pos = text.find("cepshed_event_cost_bucket{shard=\"0\",le=", pos)) !=
         std::string::npos) {
    const size_t space = text.find(' ', pos);
    last = std::stoull(text.substr(space + 1));
    EXPECT_GE(last, prev);
    prev = last;
    pos = space;
  }
  EXPECT_EQ(last, 1000u);
}

TEST(ExportTest, JsonRenderCarriesDecodedAuditTrail) {
  MetricsRegistry registry(1);
  registry.shard(0)->audit.Record(AuditKind::kGuardTransition, 0, 12345,
                                  /*from|to<<8=*/0 | (2 << 8), 1.5, 1);
  const std::string json = RenderJson(registry.Snapshot());
  EXPECT_NE(json.find("\"kind\":\"guard_transition\""), std::string::npos);
  EXPECT_NE(json.find("\"timestamp\":12345"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"total\":"), std::string::npos);
}

/// Deterministic test shedder: drops every 7th event by global sequence
/// number and records the decision (class, mu, seq, event time) in the
/// audit ring — exercising the audit path without a trained cost model.
class EverySeventhShedder : public Shedder {
 public:
  std::string Name() const override { return "every7"; }
  bool FilterEvent(const Event& event) override {
    if (event.seq() % 7 == 0) {
      return DropEvent(static_cast<int>(event.seq() % 3), 0.25, event.seq(),
                       event.timestamp());
    }
    return false;
  }
  void AfterEvent(Timestamp, double) override {}
};

/// The parallel path and its sequential replay must produce identical
/// per-shard observability snapshots for every deterministic field:
/// counters, cost-histogram buckets, and the full audit trail. (Wall-clock
/// histograms and queue signals are inherently timing-dependent and are
/// not compared.)
TEST(ObsDeterminismTest, RunMatchesRunSequentialSnapshot) {
  const Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = 20'000;
  gen.seed = 31;
  const EventStream stream = GenerateDs1(schema, gen);
  auto nfa = Nfa::Compile(*queries::Q1("4ms"), &schema);
  ASSERT_TRUE(nfa.ok());

  const auto run = [&](bool parallel, MetricsRegistry* registry) {
    ShardRuntimeOptions opts;
    opts.num_shards = 2;
    opts.routing = ShardRouting::kHashPartition;
    opts.partition_attr = schema.AttributeIndex("ID");
    opts.metrics = registry;
    auto runtime = ShardRuntime::Create(*nfa, opts);
    ASSERT_TRUE(runtime.ok());
    const ShardRuntime::ShedderFactory factory = [](int) {
      return std::make_unique<EverySeventhShedder>();
    };
    auto result = parallel ? (*runtime)->Run(stream, factory)
                           : (*runtime)->RunSequential(stream, factory);
    ASSERT_TRUE(result.ok());
  };

  MetricsRegistry par_registry;
  MetricsRegistry seq_registry;
  run(true, &par_registry);
  run(false, &seq_registry);
  const RegistrySnapshot par = par_registry.Snapshot();
  const RegistrySnapshot seq = seq_registry.Snapshot();
  ASSERT_EQ(par.shards.size(), seq.shards.size());
  ASSERT_EQ(par.shards.size(), 2u);
  EXPECT_GT(par.total.events_dropped_shedder, 0u);

  for (size_t i = 0; i < par.shards.size(); ++i) {
    const ShardObsSnapshot& p = par.shards[i];
    const ShardObsSnapshot& s = seq.shards[i];
    EXPECT_EQ(p.events_routed, s.events_routed) << "shard " << i;
    EXPECT_EQ(p.events_processed, s.events_processed) << "shard " << i;
    EXPECT_EQ(p.events_dropped_shedder, s.events_dropped_shedder) << "shard " << i;
    EXPECT_EQ(p.matches_emitted, s.matches_emitted) << "shard " << i;
    for (int c = 0; c < ShardObs::kNumClasses; ++c) {
      EXPECT_EQ(p.shed_by_class[c], s.shed_by_class[c]) << "shard " << i;
    }
    EXPECT_EQ(p.event_cost.buckets, s.event_cost.buckets) << "shard " << i;
    EXPECT_EQ(p.event_cost.count, s.event_cost.count) << "shard " << i;
    EXPECT_EQ(p.event_cost.max, s.event_cost.max) << "shard " << i;
    ASSERT_EQ(p.audit.size(), s.audit.size()) << "shard " << i;
    for (size_t a = 0; a < p.audit.size(); ++a) {
      EXPECT_EQ(p.audit[a].index, s.audit[a].index);
      EXPECT_EQ(p.audit[a].timestamp, s.audit[a].timestamp);
      EXPECT_EQ(p.audit[a].kind, s.audit[a].kind);
      EXPECT_EQ(p.audit[a].class_label, s.audit[a].class_label);
      EXPECT_EQ(p.audit[a].detail, s.audit[a].detail);
    }
  }
}

}  // namespace
}  // namespace obs
}  // namespace cepshed
