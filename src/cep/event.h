// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Events: the elements of the input stream. An event carries its type, a
// timestamp, a monotonically increasing sequence number (its position in
// the stream), and one Value per schema attribute.

#ifndef CEPSHED_CEP_EVENT_H_
#define CEPSHED_CEP_EVENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/cep/schema.h"
#include "src/common/time.h"
#include "src/common/value.h"

namespace cepshed {

/// The shared null returned for out-of-range attribute reads. A namespace-
/// scope inline constant: a function-local static would pay the thread-safe
/// init-guard check on every Event::attr call, which is the engine's hottest
/// read.
inline const Value kNullValue{};

/// \brief An immutable stream element.
///
/// Events are shared between the stream buffer and partial matches via
/// shared_ptr<const Event>; a discarded event whose partial matches were
/// all evicted is freed automatically.
class Event {
 public:
  /// Constructs an event. `attrs` must be indexed by schema attribute
  /// index; types absent from the event's payload hold null Values.
  Event(int type, Timestamp timestamp, uint64_t seq, std::vector<Value> attrs)
      : type_(type), timestamp_(timestamp), seq_(seq), attrs_(std::move(attrs)) {}

  /// The event type id (see Schema::EventTypeId).
  int type() const { return type_; }
  /// The event timestamp in microseconds.
  Timestamp timestamp() const { return timestamp_; }
  /// The position of the event in its stream (0-based).
  uint64_t seq() const { return seq_; }
  /// The attribute value at the given schema index (null if out of range).
  const Value& attr(int index) const {
    if (index < 0 || static_cast<size_t>(index) >= attrs_.size()) return kNullValue;
    return attrs_[static_cast<size_t>(index)];
  }
  /// Number of stored attribute slots.
  size_t num_attrs() const { return attrs_.size(); }

  /// Renders "type@ts{a1,...}" using the given schema for names.
  std::string ToString(const Schema& schema) const;

 private:
  int type_;
  Timestamp timestamp_;
  uint64_t seq_;
  std::vector<Value> attrs_;
};

using EventPtr = std::shared_ptr<const Event>;

}  // namespace cepshed

#endif  // CEPSHED_CEP_EVENT_H_
