// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// A CART-style decision-tree classifier. The paper trains one balanced
// decision tree per NFA state, mapping the query-predicate attributes of a
// partial match to its cost-model class ("we employ balanced decision
// trees, setting the maximal depths to the number of clusters", §V-B).
// The root-to-leaf paths double as the class predicates used to derive the
// input-based shedding filter rho_I (§V-A).

#ifndef CEPSHED_ML_DECISION_TREE_H_
#define CEPSHED_ML_DECISION_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"

namespace cepshed {

/// \brief Decision-tree classifier over dense double features.
class DecisionTree {
 public:
  struct Options {
    int max_depth = 8;
    int min_samples_leaf = 2;
    /// Stop splitting once a node is this pure (majority fraction).
    double purity_stop = 0.999;
  };

  /// One condition along a root-to-leaf path: feature <= threshold if
  /// `less_equal`, else feature > threshold.
  struct PathCondition {
    int feature = -1;
    double threshold = 0.0;
    bool less_equal = true;
  };

  DecisionTree() = default;

  /// Fits the tree on X (n x d) with integer labels y (n). Labels must be
  /// in [0, num_classes).
  Status Fit(const std::vector<std::vector<double>>& x, const std::vector<int>& y,
             const Options& options);

  /// Predicted class for a feature vector. Requires a fitted tree.
  int Predict(const double* x, size_t n) const;
  int Predict(const std::vector<double>& x) const { return Predict(x.data(), x.size()); }

  /// All root-to-leaf condition chains whose leaf predicts `label` — the
  /// disjunction of these conjunctions is the class predicate.
  std::vector<std::vector<PathCondition>> PathsToClass(int label) const;

  /// True once Fit succeeded.
  bool fitted() const { return !nodes_.empty(); }
  size_t num_nodes() const { return nodes_.size(); }
  int num_classes() const { return num_classes_; }
  /// Depth of the deepest leaf.
  int Depth() const;

  /// Fraction of training samples classified correctly (set by Fit).
  double training_accuracy() const { return training_accuracy_; }

 private:
  struct Node {
    int feature = -1;      // -1 for leaves
    double threshold = 0.0;
    int left = -1;         // feature <= threshold
    int right = -1;        // feature > threshold
    int label = 0;         // majority class (valid for all nodes)
  };

  int Build(const std::vector<std::vector<double>>& x, const std::vector<int>& y,
            std::vector<uint32_t>& indices, size_t begin, size_t end, int depth,
            const Options& options);

  std::vector<Node> nodes_;
  int num_classes_ = 0;
  size_t num_features_ = 0;
  double training_accuracy_ = 0.0;
};

}  // namespace cepshed

#endif  // CEPSHED_ML_DECISION_TREE_H_
