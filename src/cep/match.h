// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Complete matches emitted by the engine.

#ifndef CEPSHED_CEP_MATCH_H_
#define CEPSHED_CEP_MATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cep/event.h"
#include "src/common/time.h"

namespace cepshed {

/// \brief A complete match: the events bound per positive pattern slot.
struct Match {
  /// All bound events, grouped by positive slot (contiguous).
  std::vector<EventPtr> events;
  /// Prefix end offsets into `events`, one per positive slot.
  std::vector<uint32_t> slot_end;
  /// Timestamp of the final event (detection time in event time).
  Timestamp detected_at = 0;
  /// Id of the partial match the final extension was derived from
  /// (0 for single-element patterns).
  uint64_t from_pm = 0;

  /// A canonical identity of the match (the sequence numbers of its
  /// events), used to compare shedding runs against ground truth.
  std::string Key() const {
    std::string key;
    key.reserve(events.size() * sizeof(uint64_t));
    for (const EventPtr& e : events) {
      const uint64_t seq = e->seq();
      key.append(reinterpret_cast<const char*>(&seq), sizeof(seq));
    }
    return key;
  }

  /// Events bound to the given positive slot: [begin, end) into `events`.
  std::pair<uint32_t, uint32_t> SlotRange(size_t slot) const {
    const uint32_t begin = slot == 0 ? 0 : slot_end[slot - 1];
    return {begin, slot_end[slot]};
  }
};

}  // namespace cepshed

#endif  // CEPSHED_CEP_MATCH_H_
