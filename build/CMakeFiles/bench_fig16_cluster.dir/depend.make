# Empty dependencies file for bench_fig16_cluster.
# This may be replaced when dependencies are built.
