// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Fig. 4 of the paper: DS1/Q1 under decreasing average-latency bounds —
// (a) recall, (b) throughput, (c) ratio of shed events, (d) ratio of shed
// partial matches, for RI, SI, RS, SS, and Hybrid.

#include "bench/bench_util.h"

using namespace cepshed;
using namespace cepshed::bench;

int main() {
  Ds1Options gen;
  gen.num_events = 30000;
  auto exp = PrepareDs1(*queries::Q1("8ms"), gen);

  std::printf("# no-shedding avg latency = %.1f cost units, truth = %zu matches\n",
              exp.harness->BaselineLatency(), exp.harness->truth().size());

  Header("Fig. 4a-d", "DS1/Q1, bounds as fractions of the no-shedding average latency",
         kResultColumns);
  for (double bound : {0.9, 0.7, 0.5, 0.3, 0.1}) {
    for (StrategyKind kind : BoundStrategies()) {
      const ExperimentResult r =
          exp.harness->RunBound(kind, bound, LatencyStat::kAverage);
      PrintResultRow(std::to_string(bound).substr(0, 3), r);
    }
  }

  // The paper repeats the experiment with the 95th-percentile latency and
  // reports the same trends.
  Header("Fig. 4 (repetition)", "DS1/Q1, bounds on the 95th-percentile latency",
         kResultColumns);
  for (double bound : {0.9, 0.5, 0.1}) {
    for (StrategyKind kind : BoundStrategies()) {
      const ExperimentResult r = exp.harness->RunBound(kind, bound, LatencyStat::kP95);
      PrintResultRow(std::to_string(bound).substr(0, 3), r);
    }
  }
  return 0;
}
