// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>

namespace cepshed {

namespace {

double Gini(const std::vector<double>& counts, double total) {
  if (total <= 0.0) return 0.0;
  double g = 1.0;
  for (double c : counts) {
    const double p = c / total;
    g -= p * p;
  }
  return g;
}

}  // namespace

Status DecisionTree::Fit(const std::vector<std::vector<double>>& x,
                         const std::vector<int>& y, const Options& options) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("decision tree: empty or mismatched training data");
  }
  num_features_ = x[0].size();
  num_classes_ = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i].size() != num_features_) {
      return Status::InvalidArgument("decision tree: ragged features");
    }
    if (y[i] < 0) return Status::InvalidArgument("decision tree: negative label");
    num_classes_ = std::max(num_classes_, y[i] + 1);
  }
  nodes_.clear();
  std::vector<uint32_t> indices(x.size());
  std::iota(indices.begin(), indices.end(), 0u);
  Build(x, y, indices, 0, indices.size(), 0, options);

  size_t correct = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (Predict(x[i]) == y[i]) ++correct;
  }
  training_accuracy_ = static_cast<double>(correct) / static_cast<double>(x.size());
  return Status::OK();
}

int DecisionTree::Build(const std::vector<std::vector<double>>& x,
                        const std::vector<int>& y, std::vector<uint32_t>& indices,
                        size_t begin, size_t end, int depth, const Options& options) {
  const size_t n = end - begin;
  std::vector<double> counts(static_cast<size_t>(num_classes_), 0.0);
  for (size_t i = begin; i < end; ++i) counts[static_cast<size_t>(y[indices[i]])] += 1.0;
  int majority = 0;
  for (int c = 1; c < num_classes_; ++c) {
    if (counts[static_cast<size_t>(c)] > counts[static_cast<size_t>(majority)]) majority = c;
  }
  const double purity = counts[static_cast<size_t>(majority)] / static_cast<double>(n);

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[static_cast<size_t>(node_id)].label = majority;

  if (depth >= options.max_depth || purity >= options.purity_stop ||
      n < 2 * static_cast<size_t>(options.min_samples_leaf)) {
    return node_id;
  }

  // Best (feature, threshold) by Gini impurity decrease.
  const double parent_gini = Gini(counts, static_cast<double>(n));
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_score = parent_gini - 1e-9;
  std::vector<std::pair<double, int>> column(n);
  std::vector<double> left_counts(static_cast<size_t>(num_classes_));
  for (size_t f = 0; f < num_features_; ++f) {
    for (size_t i = 0; i < n; ++i) {
      const uint32_t idx = indices[begin + i];
      column[i] = {x[idx][f], y[idx]};
    }
    std::sort(column.begin(), column.end());
    std::fill(left_counts.begin(), left_counts.end(), 0.0);
    std::vector<double> right_counts = counts;
    for (size_t i = 0; i + 1 < n; ++i) {
      left_counts[static_cast<size_t>(column[i].second)] += 1.0;
      right_counts[static_cast<size_t>(column[i].second)] -= 1.0;
      if (column[i].first == column[i + 1].first) continue;
      const size_t nl = i + 1;
      const size_t nr = n - nl;
      if (nl < static_cast<size_t>(options.min_samples_leaf) ||
          nr < static_cast<size_t>(options.min_samples_leaf)) {
        continue;
      }
      const double score =
          (static_cast<double>(nl) * Gini(left_counts, static_cast<double>(nl)) +
           static_cast<double>(nr) * Gini(right_counts, static_cast<double>(nr))) /
          static_cast<double>(n);
      if (score < best_score) {
        best_score = score;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (column[i].first + column[i + 1].first);
      }
    }
  }
  if (best_feature < 0) return node_id;

  // Partition indices in place.
  auto mid_it = std::partition(indices.begin() + static_cast<ptrdiff_t>(begin),
                               indices.begin() + static_cast<ptrdiff_t>(end),
                               [&](uint32_t idx) {
                                 return x[idx][static_cast<size_t>(best_feature)] <=
                                        best_threshold;
                               });
  const size_t mid = static_cast<size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return node_id;  // degenerate split

  nodes_[static_cast<size_t>(node_id)].feature = best_feature;
  nodes_[static_cast<size_t>(node_id)].threshold = best_threshold;
  const int left = Build(x, y, indices, begin, mid, depth + 1, options);
  nodes_[static_cast<size_t>(node_id)].left = left;
  const int right = Build(x, y, indices, mid, end, depth + 1, options);
  nodes_[static_cast<size_t>(node_id)].right = right;
  return node_id;
}

int DecisionTree::Predict(const double* x, size_t n) const {
  if (nodes_.empty()) return 0;
  int node = 0;
  while (nodes_[static_cast<size_t>(node)].feature >= 0) {
    const Node& nd = nodes_[static_cast<size_t>(node)];
    if (static_cast<size_t>(nd.feature) >= n) return nd.label;
    node = x[static_cast<size_t>(nd.feature)] <= nd.threshold ? nd.left : nd.right;
  }
  return nodes_[static_cast<size_t>(node)].label;
}

std::vector<std::vector<DecisionTree::PathCondition>> DecisionTree::PathsToClass(
    int label) const {
  std::vector<std::vector<PathCondition>> paths;
  if (nodes_.empty()) return paths;
  std::vector<PathCondition> current;
  // Depth-first traversal carrying the condition chain.
  std::function<void(int)> walk = [&](int node_id) {
    const Node& node = nodes_[static_cast<size_t>(node_id)];
    if (node.feature < 0) {
      if (node.label == label) paths.push_back(current);
      return;
    }
    current.push_back(PathCondition{node.feature, node.threshold, true});
    walk(node.left);
    current.back().less_equal = false;
    walk(node.right);
    current.pop_back();
  };
  walk(0);
  return paths;
}

int DecisionTree::Depth() const {
  if (nodes_.empty()) return 0;
  std::function<int(int)> depth_of = [&](int node_id) -> int {
    const Node& node = nodes_[static_cast<size_t>(node_id)];
    if (node.feature < 0) return 1;
    return 1 + std::max(depth_of(node.left), depth_of(node.right));
  };
  return depth_of(0);
}

}  // namespace cepshed
