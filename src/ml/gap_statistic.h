// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// The gap statistic of Tibshirani, Walther & Hastie (2001), used by the
// paper to estimate the number of cost-model clusters per NFA state
// (§V-B: "We employ the gap statistic technique to estimate an optimal
// number of clusters").

#ifndef CEPSHED_ML_GAP_STATISTIC_H_
#define CEPSHED_ML_GAP_STATISTIC_H_

#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"

namespace cepshed {

/// \brief Configuration for the gap-statistic search.
struct GapStatisticOptions {
  int k_min = 1;
  int k_max = 10;
  /// Reference datasets drawn uniformly over the data's bounding box.
  int num_references = 8;
  int kmeans_max_iters = 30;
};

/// \brief Per-k diagnostics of the search.
struct GapStatisticResult {
  int best_k = 1;
  std::vector<double> gap;     ///< gap(k) for k in [k_min, k_max]
  std::vector<double> s_k;     ///< reference dispersion std errors
};

/// \brief Estimates the number of clusters in `points` by the first k with
/// gap(k) >= gap(k+1) - s_{k+1}.
Result<GapStatisticResult> EstimateClusters(const std::vector<std::vector<double>>& points,
                                            const GapStatisticOptions& options, Rng* rng);

}  // namespace cepshed

#endif  // CEPSHED_ML_GAP_STATISTIC_H_
