// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Result-quality metrics: the recall loss delta(k) of Problem 1 is
// measured by comparing a shedding run's complete matches against the
// ground truth produced by an identical run without shedding. For
// monotonic queries precision is always 1; for non-monotonic queries
// (negation) false positives are counted too.

#ifndef CEPSHED_RUNTIME_METRICS_H_
#define CEPSHED_RUNTIME_METRICS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/cep/match.h"

namespace cepshed {

/// \brief The complete matches of an exhaustive (no-shedding) run, keyed
/// by match identity, with detection timestamps for windowed analyses.
class GroundTruth {
 public:
  GroundTruth() = default;
  explicit GroundTruth(const std::vector<Match>& matches);

  size_t size() const { return detected_at_.size(); }
  bool Contains(const std::string& key) const { return detected_at_.count(key) > 0; }
  /// Detection timestamp of a truth match (requires Contains).
  Timestamp DetectedAt(const std::string& key) const { return detected_at_.at(key); }
  const std::unordered_map<std::string, Timestamp>& entries() const {
    return detected_at_;
  }

 private:
  std::unordered_map<std::string, Timestamp> detected_at_;
};

/// \brief Recall / precision of a shedding run against ground truth.
struct QualityMetrics {
  double recall = 1.0;
  double precision = 1.0;
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t truth_size = 0;
  size_t found = 0;
};

/// Computes recall and precision. With an empty truth, recall is 1; with
/// no found matches, precision is 1.
QualityMetrics ComputeQuality(const std::vector<Match>& found, const GroundTruth& truth);

/// Recall over a time bucket [t_begin, t_end) of detection timestamps
/// (Fig. 12's recall-over-offset series).
QualityMetrics ComputeQualityInRange(const std::vector<Match>& found,
                                     const GroundTruth& truth, Timestamp t_begin,
                                     Timestamp t_end);

}  // namespace cepshed

#endif  // CEPSHED_RUNTIME_METRICS_H_
