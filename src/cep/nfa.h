// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Compilation of a Query into the automaton evaluated by the engine
// (the computational model of Fig. 2 in the paper). State s of the
// automaton fills the s-th positive pattern component; predicates are
// anchored at the state where all their references are bound; equality
// predicates yield join-index specs used to avoid full bucket scans
// ("we rely on indexes over the attribute values of events", §VI-A).

#ifndef CEPSHED_CEP_NFA_H_
#define CEPSHED_CEP_NFA_H_

#include <memory>
#include <vector>

#include "src/cep/expr.h"
#include "src/cep/pattern.h"
#include "src/cep/pred_vm.h"
#include "src/cep/schema.h"
#include "src/common/result.h"

namespace cepshed {

/// \brief A WHERE conjunct anchored to the pattern position where it
/// becomes fully bound.
struct CompiledPredicate {
  ExprPtr expr;
  /// Pattern element index at which the predicate is evaluated.
  int anchor_elem = -1;
  /// True if the predicate references a negated component (then
  /// anchor_elem is that component and evaluation happens at match
  /// completion, against witnesses).
  bool is_negation = false;
  /// True if the predicate contains `x[i]` previous-iteration references
  /// on its anchor; such predicates are skipped on the first iteration.
  bool needs_iter_prev = false;
  /// True if the predicate aggregates over its (Kleene) anchor and is
  /// therefore deferred until the component closes (non-monotone
  /// aggregates like AVG must not prune prefixes eagerly).
  bool is_close = false;
  /// True if the predicate only reads the event being bound — evaluable on
  /// an input event in isolation (used by input shedding and baselines).
  bool event_only = false;
  /// Static work units of one evaluation (resource cost Omega component).
  double static_cost = 0.0;
  /// Bytecode program in the query's PredVmModule, or -1 when the predicate
  /// is not compilable (aggregates) and keeps the tree interpreter.
  int vm_program = -1;
};

/// \brief An equality-derived hash-join key: probe with an attribute of the
/// incoming event, build by evaluating an expression over a stored match.
struct JoinIndexSpec {
  int probe_attr = -1;
  ExprPtr build_expr;
  /// True when the build side is a computed expression rather than a bare
  /// attribute. The engine only uses such keys when explicitly enabled:
  /// the paper's engine indexes attribute values (§VI-A), so expression
  /// predicates are evaluated per candidate match.
  bool expression_key = false;
  /// Bytecode program computing the build key (-1: interpreter).
  int vm_build_program = -1;
  bool valid() const { return probe_attr >= 0 && build_expr != nullptr; }
};

/// \brief One automaton state: the positive component it fills plus the
/// predicates and index specs that guard the fill.
struct NfaState {
  /// Pattern element index filled by this state.
  int pattern_elem = -1;
  /// Event type id the component accepts.
  int event_type = -1;
  bool kleene = false;
  int min_reps = 1;
  int max_reps = INT_MAX;
  /// Predicates evaluated on every bind into this component.
  std::vector<const CompiledPredicate*> bind_preds;
  /// Kleene-only: predicates additionally evaluated from the second
  /// iteration on (previous-iteration references).
  std::vector<const CompiledPredicate*> iter_preds;
  /// Kleene-only: predicates over the finished component (aggregates such
  /// as AVG over the binding), evaluated when the component closes —
  /// at proceed time or, for a trailing component, at emission.
  std::vector<const CompiledPredicate*> close_preds;
  /// Index for binding an event as the first event of this component
  /// (equality against earlier components).
  JoinIndexSpec fill_index;
  /// Kleene-only: index for extending the component (iteration equality,
  /// keyed over the last bound event).
  JoinIndexSpec extend_index;
  /// Total static cost of bind_preds + iter_preds (resource cost Omega in
  /// predicate-count mode).
  double bind_cost = 0.0;
};

/// \brief A negated component: vetoes candidate matches at completion.
struct NegationSpec {
  int pattern_elem = -1;
  int event_type = -1;
  /// The positive state preceding / following the negated component; the
  /// veto interval is (last event of prev slot, first event of next slot).
  int prev_state = -1;
  int next_state = -1;
  std::vector<const CompiledPredicate*> preds;
};

/// \brief The compiled query. Immutable after Compile.
class Nfa {
 public:
  /// Compiles (a copy of) the query. Validates and resolves it first.
  static Result<std::shared_ptr<Nfa>> Compile(Query query, const Schema* schema);

  int num_states() const { return static_cast<int>(states_.size()); }
  const NfaState& state(int s) const { return states_[static_cast<size_t>(s)]; }
  const std::vector<NegationSpec>& negations() const { return negations_; }
  const Query& query() const { return query_; }
  const Schema& schema() const { return *schema_; }
  Duration window() const { return query_.window; }

  /// Positive slot of a pattern element (-1 for negated components).
  int SlotOfElem(int elem) const { return slot_of_elem_[static_cast<size_t>(elem)]; }
  /// Pattern element of a positive slot.
  int ElemOfSlot(int slot) const { return states_[static_cast<size_t>(slot)].pattern_elem; }

  /// States whose component accepts events of the given type (by fill).
  const std::vector<int>& StatesForType(int type) const {
    static const std::vector<int> kEmpty;
    if (type < 0 || static_cast<size_t>(type) >= states_for_type_.size()) return kEmpty;
    return states_for_type_[static_cast<size_t>(type)];
  }

  /// Negated pattern elements accepting the given type.
  const std::vector<int>& NegationsForType(int type) const {
    static const std::vector<int> kEmpty;
    if (type < 0 || static_cast<size_t>(type) >= negations_for_type_.size()) return kEmpty;
    return negations_for_type_[static_cast<size_t>(type)];
  }

  /// Schema attribute indices referenced anywhere in the query's
  /// predicates — the predictor variables of the cost model classifiers.
  const std::vector<int>& PredicateAttrs() const { return predicate_attrs_; }

  /// The query's compiled predicate programs (null only if every predicate
  /// refused compilation). Shared by all engines evaluating this NFA.
  const std::shared_ptr<const PredVmModule>& vm_module() const {
    return vm_module_;
  }

 private:
  Nfa() = default;

  Query query_;
  const Schema* schema_ = nullptr;
  std::vector<std::unique_ptr<CompiledPredicate>> predicates_;
  std::vector<NfaState> states_;
  std::vector<NegationSpec> negations_;
  std::vector<int> slot_of_elem_;
  std::vector<std::vector<int>> states_for_type_;
  std::vector<std::vector<int>> negations_for_type_;
  std::vector<int> predicate_attrs_;
  std::shared_ptr<const PredVmModule> vm_module_;
};

}  // namespace cepshed

#endif  // CEPSHED_CEP_NFA_H_
