// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Event schema: the set of event types and the set of named, typed
// attributes shared by the events of a stream (see §III-A of the paper:
// events are instances e = <a1, ..., an> of a schema A = <A1, ..., An>).

#ifndef CEPSHED_CEP_SCHEMA_H_
#define CEPSHED_CEP_SCHEMA_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/common/value.h"

namespace cepshed {

/// \brief A named, typed attribute of the event schema.
struct AttributeDef {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// \brief The schema of an event stream: event type names plus the union of
/// attributes events may carry. Events of a type that lacks an attribute
/// store null for it.
///
/// The schema is immutable once handed to an Engine; build it fully first.
class Schema {
 public:
  Schema() = default;

  /// Registers an event type name; returns its dense id.
  /// Fails with AlreadyExists on duplicates.
  Result<int> AddEventType(std::string name);

  /// Registers an attribute; returns its dense index.
  /// Fails with AlreadyExists on duplicates.
  Result<int> AddAttribute(std::string name, ValueType type);

  /// Returns the id of an event type, or -1 if unknown.
  int EventTypeId(std::string_view name) const;
  /// Returns the name of an event type id. Requires a valid id.
  const std::string& EventTypeName(int id) const { return event_types_.at(static_cast<size_t>(id)); }
  /// Number of registered event types.
  size_t num_event_types() const { return event_types_.size(); }

  /// Returns the index of an attribute, or -1 if unknown.
  int AttributeIndex(std::string_view name) const;
  /// Returns the attribute definition at `index`. Requires a valid index.
  const AttributeDef& attribute(int index) const { return attributes_.at(static_cast<size_t>(index)); }
  /// Number of registered attributes.
  size_t num_attributes() const { return attributes_.size(); }

 private:
  std::vector<std::string> event_types_;
  std::unordered_map<std::string, int> type_ids_;
  std::vector<AttributeDef> attributes_;
  std::unordered_map<std::string, int> attr_indexes_;
};

}  // namespace cepshed

#endif  // CEPSHED_CEP_SCHEMA_H_
