# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/sketch_test[1]_include.cmake")
include("/root/repo/build/tests/knapsack_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/shed_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/controller_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/positional_test[1]_include.cmake")
include("/root/repo/build/tests/multi_query_test[1]_include.cmake")
