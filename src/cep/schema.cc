// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/cep/schema.h"

namespace cepshed {

Result<int> Schema::AddEventType(std::string name) {
  if (type_ids_.count(name) > 0) {
    return Status::AlreadyExists("event type '" + name + "' already registered");
  }
  const int id = static_cast<int>(event_types_.size());
  type_ids_.emplace(name, id);
  event_types_.push_back(std::move(name));
  return id;
}

Result<int> Schema::AddAttribute(std::string name, ValueType type) {
  if (attr_indexes_.count(name) > 0) {
    return Status::AlreadyExists("attribute '" + name + "' already registered");
  }
  const int index = static_cast<int>(attributes_.size());
  attr_indexes_.emplace(name, index);
  attributes_.push_back(AttributeDef{std::move(name), type});
  return index;
}

int Schema::EventTypeId(std::string_view name) const {
  auto it = type_ids_.find(std::string(name));
  return it == type_ids_.end() ? -1 : it->second;
}

int Schema::AttributeIndex(std::string_view name) const {
  auto it = attr_indexes_.find(std::string(name));
  return it == attr_indexes_.end() ? -1 : it->second;
}

}  // namespace cepshed
