#!/usr/bin/env python3
"""CI gate: every exported metric has a doc page, and no page is stale.

Extracts the full metric name set from src/obs/export.cc — both the
string-literal names passed to the Append*Series/AppendHistogram helpers
and the names introduced inline via "# HELP <name> ..." blocks — and
requires a non-trivial docs/metrics/<name>.md for each. Also fails on
orphaned doc pages whose metric no longer exists, so renames can't leave
dead documentation behind.

Usage: check_metrics_docs.py [--repo ROOT]
"""

import argparse
import os
import re
import sys

MIN_DOC_BYTES = 200  # a title line alone does not count as documentation


def exported_metrics(export_cc):
    with open(export_cc) as f:
        src = f.read()
    names = set(re.findall(r'"(cepshed_[a-z0-9_]+)"', src))
    names |= set(re.findall(r"# HELP (cepshed_[a-z0-9_]+) ", src))
    # Derived Prometheus series (_bucket/_sum/_count) share the base
    # histogram's page; the regexes above only ever see base names.
    return names


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--repo", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    args = ap.parse_args()

    export_cc = os.path.join(args.repo, "src", "obs", "export.cc")
    docs_dir = os.path.join(args.repo, "docs", "metrics")
    metrics = exported_metrics(export_cc)
    if not metrics:
        print(f"error: no cepshed_* metrics found in {export_cc}",
              file=sys.stderr)
        return 2

    docs = {f[:-3] for f in os.listdir(docs_dir)} if os.path.isdir(
        docs_dir) else set()
    docs = {d for d in docs if os.path.isfile(
        os.path.join(docs_dir, d + ".md"))}

    failed = False
    for name in sorted(metrics):
        path = os.path.join(docs_dir, name + ".md")
        if name not in docs:
            print(f"MISSING: {name} has no docs/metrics/{name}.md")
            failed = True
            continue
        size = os.path.getsize(path)
        with open(path) as f:
            head = f.readline()
        if size < MIN_DOC_BYTES:
            print(f"TOO-THIN: docs/metrics/{name}.md is {size} bytes "
                  f"(< {MIN_DOC_BYTES})")
            failed = True
        elif name not in head:
            print(f"BAD-TITLE: docs/metrics/{name}.md first line does not "
                  f"name the metric: {head.strip()!r}")
            failed = True
        else:
            print(f"OK: {name}")

    for orphan in sorted(docs - metrics):
        print(f"ORPHAN: docs/metrics/{orphan}.md documents a metric not "
              f"exported by src/obs/export.cc")
        failed = True

    print(f"{len(metrics)} exported metrics, {len(docs)} doc pages")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
