file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_hybrid_details.dir/bench/bench_fig05_hybrid_details.cpp.o"
  "CMakeFiles/bench_fig05_hybrid_details.dir/bench/bench_fig05_hybrid_details.cpp.o.d"
  "bench/bench_fig05_hybrid_details"
  "bench/bench_fig05_hybrid_details.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_hybrid_details.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
