// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/shed/registry.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace cepshed {

namespace {

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

Result<std::pair<std::string, ShedderConfig>> ShedderConfig::ParseSpec(
    const std::string& spec) {
  const size_t colon = spec.find(':');
  std::string name = Lower(spec.substr(0, colon));
  if (name.empty()) {
    return Status::InvalidArgument("empty shedder name in spec \"" + spec + "\"");
  }
  ShedderConfig config;
  if (colon == std::string::npos) return std::make_pair(std::move(name), config);

  std::string rest = spec.substr(colon + 1);
  size_t pos = 0;
  while (pos <= rest.size()) {
    const size_t comma = rest.find(',', pos);
    const std::string pair =
        rest.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? rest.size() + 1 : comma + 1;
    if (pair.empty()) {
      return Status::InvalidArgument("empty key=value pair in shedder spec \"" +
                                     spec + "\"");
    }
    const size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("shedder config entry \"" + pair +
                                     "\" is not key=value (spec \"" + spec + "\")");
    }
    const std::string key = Lower(pair.substr(0, eq));
    for (const auto& [k, v] : config.entries_) {
      if (k == key) {
        return Status::InvalidArgument("duplicate shedder config key \"" + key +
                                       "\" (spec \"" + spec + "\")");
      }
    }
    config.entries_.emplace_back(key, pair.substr(eq + 1));
  }
  return std::make_pair(std::move(name), std::move(config));
}

bool ShedderConfig::Has(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return true;
  }
  return false;
}

Result<double> ShedderConfig::GetDouble(const std::string& key, double def) const {
  for (const auto& [k, v] : entries_) {
    if (k != key) continue;
    char* end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0') {
      return Status::InvalidArgument("shedder config key \"" + key +
                                     "\" has non-numeric value \"" + v + "\"");
    }
    return parsed;
  }
  return def;
}

Result<uint64_t> ShedderConfig::GetUint(const std::string& key, uint64_t def) const {
  for (const auto& [k, v] : entries_) {
    if (k != key) continue;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0' || v[0] == '-') {
      return Status::InvalidArgument("shedder config key \"" + key +
                                     "\" has non-integer value \"" + v + "\"");
    }
    return static_cast<uint64_t>(parsed);
  }
  return def;
}

Status ShedderConfig::ExpectKeys(std::initializer_list<const char*> allowed) const {
  for (const auto& [k, v] : entries_) {
    bool found = false;
    for (const char* a : allowed) {
      if (k == a) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::string msg = "unknown shedder config key \"" + k + "\" (allowed:";
      for (const char* a : allowed) msg += std::string(" ") + a;
      msg += ")";
      return Status::InvalidArgument(msg);
    }
  }
  return Status::OK();
}

Result<ResolvedMode> ResolveMode(const ShedderConfig& config,
                                 const ShedderContext& ctx) {
  ResolvedMode mode;
  CEPSHED_ASSIGN_OR_RETURN(mode.theta, config.GetDouble("theta", ctx.theta));
  CEPSHED_ASSIGN_OR_RETURN(mode.fraction,
                           config.GetDouble("fraction", ctx.fixed_fraction));
  CEPSHED_ASSIGN_OR_RETURN(mode.delay, config.GetUint("delay", ctx.trigger_delay));
  CEPSHED_ASSIGN_OR_RETURN(mode.period,
                           config.GetUint("period", ctx.state_shed_period));
  CEPSHED_ASSIGN_OR_RETURN(mode.seed, config.GetUint("seed", ctx.seed));
  return mode;
}

ShedderRegistry& ShedderRegistry::Instance() {
  static ShedderRegistry* instance = new ShedderRegistry();
  return *instance;
}

void ShedderRegistry::Register(const std::string& name, Factory factory) {
  const std::string key = Lower(name);
  if (!factories_.emplace(key, std::move(factory)).second) {
    std::fprintf(stderr, "fatal: duplicate shedder registration \"%s\"\n",
                 key.c_str());
    std::abort();
  }
}

Result<std::unique_ptr<Shedder>> ShedderRegistry::Create(
    const std::string& spec, const ShedderContext& ctx) const {
  CEPSHED_ASSIGN_OR_RETURN(auto parsed, ShedderConfig::ParseSpec(spec));
  const auto it = factories_.find(parsed.first);
  if (it == factories_.end()) {
    std::string msg = "unknown shedder \"" + parsed.first + "\" (registered:";
    for (const std::string& n : Names()) msg += " " + n;
    msg += ")";
    return Status::InvalidArgument(msg);
  }
  return it->second(parsed.second, ctx);
}

bool ShedderRegistry::Has(const std::string& name) const {
  return factories_.count(Lower(name)) > 0;
}

std::vector<std::string> ShedderRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

// --- Built-in registration -------------------------------------------------

namespace {

const ShedderRegistrar kNoneRegistrar{
    "none", [](const ShedderConfig& config,
               const ShedderContext&) -> Result<std::unique_ptr<Shedder>> {
      CEPSHED_RETURN_NOT_OK(config.ExpectKeys({}));
      return std::unique_ptr<Shedder>(new NoShedder());
    }};

}  // namespace

// Force the strategy TUs (and their registrars) into every link that pulls
// in the registry — see CEPSHED_SHEDDER_LINK_TOKEN.
bool CepshedShedderLink_Baselines();
bool CepshedShedderLink_Positional();
bool CepshedShedderLink_Hybrid();
bool CepshedShedderLink_Hspice();
bool CepshedShedderLink_Pspice();

namespace {
const bool kStrategyTusLinked =
    CepshedShedderLink_Baselines() && CepshedShedderLink_Positional() &&
    CepshedShedderLink_Hybrid() && CepshedShedderLink_Hspice() &&
    CepshedShedderLink_Pspice();
}  // namespace

}  // namespace cepshed
