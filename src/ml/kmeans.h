// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// k-means clustering (Lloyd's algorithm with k-means++ seeding). The cost
// model clusters partial matches by their (contribution, consumption)
// values per NFA state (§V-B of the paper).

#ifndef CEPSHED_ML_KMEANS_H_
#define CEPSHED_ML_KMEANS_H_

#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"

namespace cepshed {

/// \brief Outcome of a k-means run.
struct KMeansResult {
  /// Cluster centers, k x d.
  std::vector<std::vector<double>> centroids;
  /// Cluster label per input point.
  std::vector<int> labels;
  /// Sum of squared distances of points to their assigned centroid.
  double inertia = 0.0;
  int iterations = 0;
};

/// \brief Runs k-means on `points` (n x d). `k` is clamped to n. Fails on
/// empty input, k < 1, or ragged rows.
Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& points, int k,
                            Rng* rng, int max_iters = 50);

/// \brief Weighted k-means: point i carries weight `weights[i]` > 0 in the
/// seeding and the centroid updates. Used to cluster feature groups of
/// partial matches by their mean contribution/consumption, weighted by
/// group size.
Result<KMeansResult> KMeansWeighted(const std::vector<std::vector<double>>& points,
                                    const std::vector<double>& weights, int k,
                                    Rng* rng, int max_iters = 50);

/// Squared Euclidean distance between equally sized vectors.
double SquaredDistance(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace cepshed

#endif  // CEPSHED_ML_KMEANS_H_
