// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Unit tests for schema, events, streams, CSV round trips, and the
// workload generators.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "src/cep/schema.h"
#include "src/cep/stream.h"
#include "src/workload/citibike.h"
#include "src/workload/csv.h"
#include "src/workload/ds1.h"
#include "src/workload/ds2.h"
#include "src/workload/google_trace.h"

namespace cepshed {
namespace {

TEST(SchemaTest, RegistersTypesAndAttributes) {
  Schema schema;
  auto t = schema.AddEventType("A");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, 0);
  EXPECT_EQ(schema.EventTypeId("A"), 0);
  EXPECT_EQ(schema.EventTypeId("B"), -1);
  auto a = schema.AddAttribute("x", ValueType::kDouble);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(schema.AttributeIndex("x"), 0);
  EXPECT_EQ(schema.attribute(0).type, ValueType::kDouble);
}

TEST(SchemaTest, RejectsDuplicates) {
  Schema schema;
  ASSERT_TRUE(schema.AddEventType("A").ok());
  EXPECT_FALSE(schema.AddEventType("A").ok());
  ASSERT_TRUE(schema.AddAttribute("x", ValueType::kInt).ok());
  EXPECT_FALSE(schema.AddAttribute("x", ValueType::kInt).ok());
}

TEST(StreamTest, EnforcesTimestampOrder) {
  Schema schema = MakeDs1Schema();
  EventStream stream(&schema);
  EXPECT_TRUE(stream.Emit(0, 10, {Value(1), Value(2)}).ok());
  EXPECT_TRUE(stream.Emit(0, 10, {Value(1), Value(2)}).ok());  // equal is fine
  EXPECT_FALSE(stream.Emit(0, 5, {Value(1), Value(2)}).ok());
}

TEST(StreamTest, SequenceNumbersAreDense) {
  Schema schema = MakeDs1Schema();
  EventStream stream(&schema);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(stream.Emit(0, i, {Value(1), Value(2)}).ok());
  }
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i]->seq(), i);
  }
}

TEST(StreamTest, PrefixSharesEvents) {
  Schema schema = MakeDs1Schema();
  EventStream stream(&schema);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(stream.Emit(0, i, {Value(1), Value(2)}).ok());
  }
  EventStream prefix = stream.Prefix(4);
  EXPECT_EQ(prefix.size(), 4u);
  EXPECT_EQ(prefix[0].get(), stream[0].get());
}

TEST(CsvTest, RoundTripsGeneratedStream) {
  Schema schema = MakeDs1Schema();
  Ds1Options opts;
  opts.num_events = 200;
  const EventStream original = GenerateDs1(schema, opts);
  std::stringstream buffer;
  ASSERT_TRUE(WriteCsv(original, &buffer).ok());
  auto restored = ReadCsv(schema, &buffer);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*restored)[i]->type(), original[i]->type());
    EXPECT_EQ((*restored)[i]->timestamp(), original[i]->timestamp());
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      EXPECT_TRUE(
          (*restored)[i]->attr(static_cast<int>(a)).Equals(original[i]->attr(static_cast<int>(a))))
          << "event " << i << " attr " << a;
    }
  }
}

TEST(CsvTest, RejectsWrongHeader) {
  Schema schema = MakeDs1Schema();
  std::stringstream buffer("nope,header\n");
  EXPECT_FALSE(ReadCsv(schema, &buffer).ok());
  // A wrong header is a hard error even in lenient mode: the file is the
  // wrong shape, not a stream with some bad rows.
  std::stringstream again("nope,header\n");
  CsvReadOptions lenient;
  lenient.lenient = true;
  EXPECT_FALSE(ReadCsv(schema, &again, lenient).ok());
}

// One well-formed DS1 CSV with every malformed-row class in the middle:
// wrong arity, unknown type, unparsable timestamp, trailing garbage on an
// int, and a timestamp regression.
constexpr char kDirtyCsv[] =
    "type,timestamp,ID,V\n"
    "A,10,1,2\n"
    "A,20,1\n"           // wrong number of cells
    "Z,30,1,2\n"         // unknown event type
    "B,banana,1,2\n"     // bad timestamp
    "B,40,1,2x\n"        // trailing garbage on an int attribute
    "C,50,3,4\n"
    "C,5,3,4\n"          // timestamp goes backwards
    "D,60,5,6\n";

TEST(CsvTest, StrictModeFailsOnTheFirstMalformedRow) {
  Schema schema = MakeDs1Schema();
  std::stringstream buffer(kDirtyCsv);
  auto read = ReadCsv(schema, &buffer);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, LenientModeSkipsAndCountsMalformedRows) {
  Schema schema = MakeDs1Schema();
  std::stringstream buffer(kDirtyCsv);
  CsvReadOptions options;
  options.lenient = true;
  CsvReadStats stats;
  auto read = ReadCsv(schema, &buffer, options, &stats);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(stats.rows_read, 8u);
  EXPECT_EQ(stats.malformed_rows, 5u);
  ASSERT_EQ(read->size(), 3u);
  EXPECT_EQ((*read)[0]->timestamp(), 10);
  EXPECT_EQ((*read)[1]->timestamp(), 50);
  EXPECT_EQ((*read)[2]->timestamp(), 60);
}

TEST(CsvTest, WorkloadLoadersAreLenient) {
  const std::string path = ::testing::TempDir() + "/cepshed_dirty_ds1.csv";
  {
    std::ofstream out(path);
    out << kDirtyCsv;
  }
  Schema schema = MakeDs1Schema();
  CsvReadStats stats;
  auto read = LoadDs1Csv(schema, path, &stats);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->size(), 3u);
  EXPECT_EQ(stats.malformed_rows, 5u);
  // The stats pointer is optional.
  auto again = LoadDs1Csv(schema, path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->size(), 3u);
}

TEST(Ds1Test, DeterministicPerSeed) {
  Schema schema = MakeDs1Schema();
  Ds1Options opts;
  opts.num_events = 500;
  const EventStream a = GenerateDs1(schema, opts);
  const EventStream b = GenerateDs1(schema, opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i]->type(), b[i]->type());
    EXPECT_TRUE(a[i]->attr(0).Equals(b[i]->attr(0)));
  }
}

TEST(Ds1Test, RespectsTableIIDistributions) {
  Schema schema = MakeDs1Schema();
  Ds1Options opts;
  opts.num_events = 20000;
  const EventStream stream = GenerateDs1(schema, opts);
  const int id_attr = schema.AttributeIndex("ID");
  const int v_attr = schema.AttributeIndex("V");
  size_t type_counts[4] = {0, 0, 0, 0};
  for (const EventPtr& e : stream) {
    ++type_counts[e->type()];
    const int64_t id = e->attr(id_attr).AsInt();
    const int64_t v = e->attr(v_attr).AsInt();
    ASSERT_GE(id, 1);
    ASSERT_LE(id, 10);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 10);
  }
  for (size_t c : type_counts) {
    EXPECT_NEAR(static_cast<double>(c) / 20000.0, 0.25, 0.02);
  }
}

TEST(Ds1Test, ControlledCvDistributionAndFlip) {
  Schema schema = MakeDs1Schema();
  Ds1Options opts;
  opts.num_events = 10000;
  opts.c_v_min = 2;
  opts.c_v_max = 4;
  opts.flip_at = 5000;
  opts.c_v_min2 = 12;
  opts.c_v_max2 = 20;
  const EventStream stream = GenerateDs1(schema, opts);
  const int c_type = schema.EventTypeId("C");
  const int v_attr = schema.AttributeIndex("V");
  for (const EventPtr& e : stream) {
    if (e->type() != c_type) continue;
    const int64_t v = e->attr(v_attr).AsInt();
    if (e->seq() < 5000) {
      EXPECT_GE(v, 2);
      EXPECT_LE(v, 4);
    } else {
      EXPECT_GE(v, 12);
      EXPECT_LE(v, 20);
    }
  }
}

TEST(Ds2Test, RespectsTableIIDistributions) {
  Schema schema = MakeDs2Schema();
  Ds2Options opts;
  opts.num_events = 20000;
  const EventStream stream = GenerateDs2(schema, opts);
  const int x_attr = schema.AttributeIndex("x");
  const int v_attr = schema.AttributeIndex("v");
  size_t b_low_v = 0;
  size_t b_count = 0;
  for (const EventPtr& e : stream) {
    const Value& x = e->attr(x_attr);
    if (!x.is_null()) {
      EXPECT_GT(x.ToDouble(), 0.0);
      EXPECT_LE(x.ToDouble(), 4.0);
    }
    if (e->type() == schema.EventTypeId("B")) {
      ++b_count;
      const double v = e->attr(v_attr).ToDouble();
      EXPECT_TRUE(v == 2.0 || v == 5.0);
      if (v == 2.0) ++b_low_v;
    }
  }
  ASSERT_GT(b_count, 0u);
  EXPECT_NEAR(static_cast<double>(b_low_v) / static_cast<double>(b_count), 0.33, 0.03);
}

TEST(CitibikeTest, SubscriberTripsChainByStation) {
  Schema schema = MakeCitibikeSchema();
  CitibikeOptions opts;
  opts.num_events = 5000;
  opts.subscriber_fraction = 1.0;  // all chains
  const EventStream stream = GenerateCitibike(schema, opts);
  const int bike_attr = schema.AttributeIndex("bike");
  const int start_attr = schema.AttributeIndex("start");
  const int end_attr = schema.AttributeIndex("end");
  std::unordered_map<int64_t, int64_t> last_end;
  for (const EventPtr& e : stream) {
    const int64_t bike = e->attr(bike_attr).AsInt();
    auto it = last_end.find(bike);
    if (it != last_end.end()) {
      EXPECT_EQ(e->attr(start_attr).AsInt(), it->second);
    }
    last_end[bike] = e->attr(end_attr).AsInt();
  }
}

TEST(CitibikeTest, RushHoursRaiseHotEndings) {
  Schema schema = MakeCitibikeSchema();
  CitibikeOptions opts;
  opts.num_events = 30000;
  const EventStream stream = GenerateCitibike(schema, opts);
  const int end_attr = schema.AttributeIndex("end");
  size_t rush_hot = 0;
  size_t rush_total = 0;
  size_t calm_hot = 0;
  size_t calm_total = 0;
  for (const EventPtr& e : stream) {
    const bool rush = (e->timestamp() % opts.rush_period) < opts.rush_length;
    const int64_t end = e->attr(end_attr).AsInt();
    const bool hot = end >= 7 && end <= 9;
    if (rush) {
      ++rush_total;
      rush_hot += hot;
    } else {
      ++calm_total;
      calm_hot += hot;
    }
  }
  ASSERT_GT(rush_total, 100u);
  ASSERT_GT(calm_total, 100u);
  EXPECT_GT(static_cast<double>(rush_hot) / rush_total,
            static_cast<double>(calm_hot) / calm_total);
}

TEST(GoogleTraceTest, LifecycleIsConsistent) {
  Schema schema = MakeGoogleTraceSchema();
  GoogleTraceOptions opts;
  opts.num_events = 10000;
  const EventStream stream = GenerateGoogleTrace(schema, opts);
  const int task_attr = schema.AttributeIndex("task");
  const int t_submit = schema.EventTypeId("Submit");
  const int t_schedule = schema.EventTypeId("Schedule");
  const int t_evict = schema.EventTypeId("Evict");
  const int t_fail = schema.EventTypeId("Fail");
  const int t_finish = schema.EventTypeId("Finish");

  // Per task: schedule requires submitted/evicted state; evict/fail/finish
  // require running state.
  std::unordered_map<int64_t, int> phase;  // 0 pending, 1 running
  for (const EventPtr& e : stream) {
    const int64_t task = e->attr(task_attr).AsInt();
    if (e->type() == t_submit) {
      EXPECT_EQ(phase.count(task), 0u);
      phase[task] = 0;
    } else if (e->type() == t_schedule) {
      ASSERT_EQ(phase.count(task), 1u);
      EXPECT_EQ(phase[task], 0);
      phase[task] = 1;
    } else if (e->type() == t_evict) {
      ASSERT_EQ(phase.count(task), 1u);
      EXPECT_EQ(phase[task], 1);
      phase[task] = 0;
    } else if (e->type() == t_fail || e->type() == t_finish) {
      ASSERT_EQ(phase.count(task), 1u);
      EXPECT_EQ(phase[task], 1);
      phase.erase(task);
    }
  }
}

TEST(GoogleTraceTest, ReschedulesLandOnDifferentMachines) {
  Schema schema = MakeGoogleTraceSchema();
  GoogleTraceOptions opts;
  opts.num_events = 10000;
  const EventStream stream = GenerateGoogleTrace(schema, opts);
  const int task_attr = schema.AttributeIndex("task");
  const int machine_attr = schema.AttributeIndex("machine");
  const int t_schedule = schema.EventTypeId("Schedule");
  std::unordered_map<int64_t, int64_t> last_machine;
  size_t reschedules = 0;
  for (const EventPtr& e : stream) {
    if (e->type() != t_schedule) continue;
    const int64_t task = e->attr(task_attr).AsInt();
    const int64_t machine = e->attr(machine_attr).AsInt();
    auto it = last_machine.find(task);
    if (it != last_machine.end()) {
      ++reschedules;
      EXPECT_NE(machine, it->second);
    }
    last_machine[task] = machine;
  }
  EXPECT_GT(reschedules, 0u);
}

}  // namespace
}  // namespace cepshed
