// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Text exporters for a metrics snapshot: the Prometheus exposition format
// (per-shard series under a `shard` label, histograms as cumulative `le`
// buckets) and a JSON document (which additionally carries the decoded
// shed-decision audit trail). See DESIGN.md §3.3 for the metric and label
// scheme.

#ifndef CEPSHED_OBS_EXPORT_H_
#define CEPSHED_OBS_EXPORT_H_

#include <string>

#include "src/obs/metrics.h"

namespace cepshed {
namespace obs {

/// Renders the snapshot in the Prometheus text exposition format.
std::string RenderPrometheus(const RegistrySnapshot& snap);

/// Renders the snapshot (including the audit trail) as a JSON document.
std::string RenderJson(const RegistrySnapshot& snap);

/// Writes `RenderPrometheus` or `RenderJson` output to `path`, chosen by
/// the file extension (".json" selects JSON). Returns false on I/O error.
bool WriteMetricsFile(const std::string& path, const RegistrySnapshot& snap);

}  // namespace obs
}  // namespace cepshed

#endif  // CEPSHED_OBS_EXPORT_H_
