// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/common/rng.h"

#include <cassert>
#include <cmath>

namespace cepshed {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t draw;
  do {
    draw = Next();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % span);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

int64_t Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    int64_t k = 0;
    double prod = UniformDouble();
    while (prod > limit) {
      ++k;
      prod *= UniformDouble();
    }
    return k;
  }
  // Normal approximation with continuity correction for large means.
  const double draw = Normal(mean, std::sqrt(mean));
  return draw < 0.0 ? 0 : static_cast<int64_t>(draw + 0.5);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double draw = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;
}

void Rng::Shuffle(std::vector<size_t>* indices) {
  for (size_t i = indices->size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
    std::swap((*indices)[i - 1], (*indices)[j]);
  }
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace cepshed
