// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Micro benchmarks for the shedding machinery. The paper's §V/§VI report
// two feasibility numbers these benches check on this machine:
//  - shedding-set selection via dynamic programming over tens of classes
//    is fast enough for online use;
//  - offline cost-model estimation takes on the order of seconds.

#include <benchmark/benchmark.h>

#include "src/ml/kmeans.h"
#include "src/opt/knapsack.h"
#include "src/shed/cost_model.h"
#include "src/shed/offline_estimator.h"
#include "src/sketch/count_min.h"
#include "src/workload/ds1.h"
#include "src/workload/queries.h"

namespace cepshed {
namespace {

std::vector<KnapsackItem> MakeItems(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<KnapsackItem> items(n);
  for (auto& it : items) {
    it.value = rng.UniformDouble(0, 1);
    it.weight = rng.UniformDouble(0.001, 2.0 / static_cast<double>(n));
  }
  return items;
}

void BM_KnapsackDP(benchmark::State& state) {
  const auto items = MakeItems(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    auto sel = SolveCoveringKnapsackDP(items, 0.4);
    benchmark::DoNotOptimize(sel.size());
  }
}
BENCHMARK(BM_KnapsackDP)->Arg(16)->Arg(64)->Arg(256);

void BM_KnapsackGreedy(benchmark::State& state) {
  const auto items = MakeItems(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    auto sel = SolveCoveringKnapsackGreedy(items, 0.4);
    benchmark::DoNotOptimize(sel.size());
  }
}
BENCHMARK(BM_KnapsackGreedy)->Arg(16)->Arg(64)->Arg(256);

void BM_KMeans(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 2000; ++i) {
    points.push_back({rng.UniformDouble(0, 1), rng.UniformDouble(0, 1)});
  }
  for (auto _ : state) {
    Rng r2(4);
    auto km = KMeans(points, static_cast<int>(state.range(0)), &r2);
    benchmark::DoNotOptimize(km.ok());
  }
}
BENCHMARK(BM_KMeans)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_CountMin(benchmark::State& state) {
  CountMinSketch sketch(2048, 3);
  uint64_t key = 0;
  for (auto _ : state) {
    sketch.Add(key++, 1.0);
    benchmark::DoNotOptimize(sketch.Estimate(key / 2));
  }
}
BENCHMARK(BM_CountMin);

void BM_OfflineEstimation(benchmark::State& state) {
  const Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = static_cast<size_t>(state.range(0));
  const EventStream stream = GenerateDs1(schema, gen);
  auto nfa = Nfa::Compile(*queries::Q1("4ms"), &schema);
  for (auto _ : state) {
    auto stats = EstimateOffline(*nfa, stream, 4, true);
    benchmark::DoNotOptimize(stats.ok());
  }
}
BENCHMARK(BM_OfflineEstimation)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_CostModelTrain(benchmark::State& state) {
  const Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = 20000;
  const EventStream stream = GenerateDs1(schema, gen);
  auto nfa = Nfa::Compile(*queries::Q1("4ms"), &schema);
  auto stats = EstimateOffline(*nfa, stream, 4, true);
  for (auto _ : state) {
    CostModel model(*nfa, CostModelOptions{});
    Rng rng(5);
    auto st = model.Train(*stats, &rng);
    benchmark::DoNotOptimize(st.ok());
  }
}
BENCHMARK(BM_CostModelTrain)->Unit(benchmark::kMillisecond);

void BM_CostModelClassifyEvent(benchmark::State& state) {
  const Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = 20000;
  const EventStream stream = GenerateDs1(schema, gen);
  auto nfa = Nfa::Compile(*queries::Q1("4ms"), &schema);
  auto stats = EstimateOffline(*nfa, stream, 4, true);
  CostModel model(*nfa, CostModelOptions{});
  Rng rng(6);
  if (!model.Train(*stats, &rng).ok()) return;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.EventUtility(*stream[i % stream.size()]));
    ++i;
  }
}
BENCHMARK(BM_CostModelClassifyEvent);

}  // namespace
}  // namespace cepshed

BENCHMARK_MAIN();
