// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/cep/pred_vm.h"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace cepshed {

namespace {

/// VM stack capacity. The compiler tracks the exact depth each program
/// needs and refuses (interpreter fallback) anything deeper.
constexpr int kMaxVmStack = 64;
/// Pool / code-size ceiling: operands are uint16.
constexpr size_t kMaxPool = 65000;

constexpr ElemBinding kEmptyBinding{};

inline VmSlot MakeNull() {
  VmSlot s;
  s.i = 0;
  s.tag = VmSlot::kNull;
  return s;
}

inline VmSlot MakeInt(int64_t v) {
  VmSlot s;
  s.i = v;
  s.tag = VmSlot::kInt;
  return s;
}

inline VmSlot MakeDouble(double v) {
  VmSlot s;
  s.d = v;
  s.tag = VmSlot::kDouble;
  return s;
}

inline VmSlot MakeBool(bool b) { return MakeInt(b ? 1 : 0); }

inline bool IsNum(const VmSlot& s) {
  return s.tag == VmSlot::kInt || s.tag == VmSlot::kDouble;
}

/// Mirrors Value::ToDouble (non-numerics read as 0.0).
inline double SlotToDouble(const VmSlot& s) {
  if (s.tag == VmSlot::kInt) return static_cast<double>(s.i);
  if (s.tag == VmSlot::kDouble) return s.d;
  return 0.0;
}

/// Mirrors Expr::EvalBool truthiness: null and strings are false.
inline bool Truthy(const VmSlot& s) {
  if (s.tag == VmSlot::kInt) return s.i != 0;
  if (s.tag == VmSlot::kDouble) return s.d != 0.0;
  return false;
}

inline VmSlot FromValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt:
      return MakeInt(v.AsInt());
    case ValueType::kDouble:
      return MakeDouble(v.AsDouble());
    case ValueType::kString: {
      VmSlot s;
      s.s = &v.AsString();
      s.tag = VmSlot::kStr;
      return s;
    }
    case ValueType::kNull:
      break;
  }
  return MakeNull();
}

/// Mirrors Value::Equals.
bool SlotEquals(const VmSlot& a, const VmSlot& b) {
  if (a.tag == VmSlot::kNull || b.tag == VmSlot::kNull) return false;
  if (a.tag == VmSlot::kStr || b.tag == VmSlot::kStr) {
    if (a.tag != b.tag) return false;
    return *a.s == *b.s;
  }
  if (a.tag == VmSlot::kInt && b.tag == VmSlot::kInt) return a.i == b.i;
  return SlotToDouble(a) == SlotToDouble(b);
}

/// Mirrors Value::Compare: -1/0/+1, or -2 for null or string/numeric mixes.
int SlotCompare(const VmSlot& a, const VmSlot& b) {
  if (a.tag == VmSlot::kNull || b.tag == VmSlot::kNull) return -2;
  const bool as = a.tag == VmSlot::kStr;
  const bool bs = b.tag == VmSlot::kStr;
  if (as != bs) return -2;
  if (as) {
    const int c = a.s->compare(*b.s);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a.tag == VmSlot::kInt && b.tag == VmSlot::kInt) {
    return a.i < b.i ? -1 : (a.i > b.i ? 1 : 0);
  }
  const double x = SlotToDouble(a);
  const double y = SlotToDouble(b);
  return x < y ? -1 : (x > y ? 1 : 0);
}

/// Mirrors the kBinary arm of Expr::Eval (the node's cost is charged by the
/// dispatch loop): int path when both operands are ints, double promotion
/// otherwise, null on null/string operands and division by zero.
VmSlot SlotBinary(BinOp op, const VmSlot& l, const VmSlot& r) {
  if (l.tag == VmSlot::kNull || r.tag == VmSlot::kNull) return MakeNull();
  if (l.tag == VmSlot::kInt && r.tag == VmSlot::kInt) {
    const int64_t a = l.i;
    const int64_t b = r.i;
    switch (op) {
      case BinOp::kAdd: return MakeInt(a + b);
      case BinOp::kSub: return MakeInt(a - b);
      case BinOp::kMul: return MakeInt(a * b);
      case BinOp::kDiv: return b == 0 ? MakeNull() : MakeInt(a / b);
      case BinOp::kMod: return b == 0 ? MakeNull() : MakeInt(a % b);
    }
    return MakeNull();
  }
  if (!IsNum(l) || !IsNum(r)) return MakeNull();
  const double a = SlotToDouble(l);
  const double b = SlotToDouble(r);
  switch (op) {
    case BinOp::kAdd: return MakeDouble(a + b);
    case BinOp::kSub: return MakeDouble(a - b);
    case BinOp::kMul: return MakeDouble(a * b);
    case BinOp::kDiv: return b == 0.0 ? MakeNull() : MakeDouble(a / b);
    case BinOp::kMod: return b == 0.0 ? MakeNull() : MakeDouble(std::fmod(a, b));
  }
  return MakeNull();
}

/// Mirrors Expr::EvalAttr over the engine-filled context, including the
/// negation-witness substitution and current-event overlay.
VmSlot LoadAttrSlot(const VmAttrLoad& load, const EvalContext& ctx) {
  const int e = load.elem;
  if (e == ctx.negated_elem && ctx.negated != nullptr) {
    return FromValue(ctx.negated->attr(load.attr));
  }
  const ElemBinding& b =
      (e >= 0 && e < ctx.num_elements) ? ctx.bindings[e] : kEmptyBinding;
  if (e == ctx.current_elem && ctx.current != nullptr) {
    switch (load.selector) {
      case RefSelector::kSingle:
      case RefSelector::kIterCurr:
      case RefSelector::kLast:
        return FromValue(ctx.current->attr(load.attr));
      case RefSelector::kIterPrev:
        if (b.count == 0) return MakeNull();
        return FromValue(b.Last()->attr(load.attr));
      case RefSelector::kFirst:
        if (b.count == 0) return FromValue(ctx.current->attr(load.attr));
        return FromValue(b.First()->attr(load.attr));
    }
    return MakeNull();
  }
  if (b.count == 0) return MakeNull();
  switch (load.selector) {
    case RefSelector::kSingle:
    case RefSelector::kFirst:
      return FromValue(b.First()->attr(load.attr));
    case RefSelector::kLast:
    case RefSelector::kIterCurr:
      return FromValue(b.Last()->attr(load.attr));
    case RefSelector::kIterPrev:
      return FromValue(b.PrevLast()->attr(load.attr));
  }
  return MakeNull();
}

// The generic arithmetic opcodes map positionally onto BinOp.
static_assert(static_cast<int>(VmOp::kMod) - static_cast<int>(VmOp::kAdd) ==
                  static_cast<int>(BinOp::kMod) - static_cast<int>(BinOp::kAdd),
              "generic arithmetic opcodes must mirror BinOp order");
// The fused compare families map positionally onto CmpOp.
static_assert(static_cast<int>(VmOp::kFGeAA) - static_cast<int>(VmOp::kFEqAA) ==
                      static_cast<int>(CmpOp::kGe) - static_cast<int>(CmpOp::kEq) &&
                  static_cast<int>(VmOp::kFGeAC) - static_cast<int>(VmOp::kFEqAC) ==
                      static_cast<int>(CmpOp::kGe) - static_cast<int>(CmpOp::kEq),
              "fused compare opcodes must mirror CmpOp order");

/// The compare tail shared by FusedCompare and FusedAcResult: typed fast
/// paths when both tags agree, interpreter-equivalent generic fallback
/// otherwise (nulls compare to null, which Truthy maps to false).
VmSlot CompareSlots(const VmSlot& l, const VmSlot& r, CmpOp op) {
  if (l.tag == VmSlot::kInt && r.tag == VmSlot::kInt) {
    switch (op) {
      case CmpOp::kEq: return MakeBool(l.i == r.i);
      case CmpOp::kNe: return MakeBool(l.i != r.i);
      case CmpOp::kLt: return MakeBool(l.i < r.i);
      case CmpOp::kLe: return MakeBool(l.i <= r.i);
      case CmpOp::kGt: return MakeBool(l.i > r.i);
      case CmpOp::kGe: return MakeBool(l.i >= r.i);
    }
    return MakeNull();
  }
  if (l.tag == VmSlot::kDouble && r.tag == VmSlot::kDouble) {
    switch (op) {
      case CmpOp::kEq: return MakeBool(l.d == r.d);
      case CmpOp::kNe: return MakeBool(l.d != r.d);
      case CmpOp::kLt: return MakeBool(l.d < r.d);
      case CmpOp::kLe: return MakeBool(l.d <= r.d);
      case CmpOp::kGt: return MakeBool(l.d > r.d);
      case CmpOp::kGe: return MakeBool(l.d >= r.d);
    }
    return MakeNull();
  }
  switch (op) {
    case CmpOp::kEq:
      return MakeBool(SlotEquals(l, r));
    case CmpOp::kNe:
      if (l.tag == VmSlot::kNull || r.tag == VmSlot::kNull) return MakeNull();
      return MakeBool(!SlotEquals(l, r));
    default: {
      const int cmp = SlotCompare(l, r);
      if (cmp == -2) return MakeNull();
      switch (op) {
        case CmpOp::kLt: return MakeBool(cmp < 0);
        case CmpOp::kLe: return MakeBool(cmp <= 0);
        case CmpOp::kGt: return MakeBool(cmp > 0);
        default: return MakeBool(cmp >= 0);
      }
    }
  }
}

}  // namespace

// Register-cached attribute load; charges basic whether or not it hits,
// matching the interpreter (which re-walks the binding every time).
inline VmSlot PredVmModule::CachedLoad(uint16_t r, const EvalContext& ctx,
                                       PredVmContext* vmc, double* c) const {
  *c += kExprCostBasic;
  if (vmc->epochs_[r] == vmc->epoch_) return vmc->regs_[r];
  const VmSlot s = LoadAttrSlot(loads_[r], ctx);
  vmc->regs_[r] = s;
  vmc->epochs_[r] = vmc->epoch_;
  return s;
}

// One fused compare: both loads, the tag-guarded compare, and the unfused
// sequence's exact cost. Shared by the dispatch loop and the EvalBool fast
// path for single-compare programs.
inline VmSlot PredVmModule::FusedCompare(const VmInsn& in,
                                         const EvalContext& ctx,
                                         PredVmContext* vmc, double* c) const {
  const bool ac = in.op >= VmOp::kFEqAC;
  const VmSlot l = CachedLoad(in.a, ctx, vmc, c);
  const VmSlot r = ac ? const_slots_[in.b] : CachedLoad(in.b, ctx, vmc, c);
  *c += kExprCostBasic;
  const CmpOp op = static_cast<CmpOp>(
      static_cast<int>(in.op) -
      static_cast<int>(ac ? VmOp::kFEqAC : VmOp::kFEqAA));
  return CompareSlots(l, r, op);
}

bool PredVmModule::FusedAcProgram(int prog, FusedAcSpec* spec) const {
  const Program& p = programs_[static_cast<size_t>(prog)];
  if (p.code.size() != 2) return false;
  const VmInsn& in = p.code[0];
  if (in.op < VmOp::kFEqAC || in.op > VmOp::kFGeAC) return false;
  const VmAttrLoad& load = loads_[in.a];
  spec->elem = load.elem;
  spec->attr = load.attr;
  spec->selector = load.selector;
  spec->op = static_cast<CmpOp>(static_cast<int>(CmpOp::kEq) +
                                static_cast<int>(in.op) -
                                static_cast<int>(VmOp::kFEqAC));
  spec->constant = const_slots_[in.b];
  return true;
}

bool PredVmModule::FusedAcResult(const VmSlot& lhs, const VmSlot& constant,
                                 CmpOp op) {
  return Truthy(CompareSlots(lhs, constant, op));
}

VmSlot PredVmModule::Run(const Program& p, const EvalContext& ctx,
                         PredVmContext* vmc, double* cost) const {
  VmSlot stack[kMaxVmStack];
  VmSlot* sp = stack;
  double c = 0.0;
  const VmInsn* const code = p.code.data();
  const VmInsn* pc = code;
  const auto load = [&](uint16_t r) -> VmSlot {
    return CachedLoad(r, ctx, vmc, &c);
  };
  for (;;) {
    const VmInsn in = *pc++;
    switch (in.op) {
      case VmOp::kConst:
        c += costs_[in.b];
        *sp++ = const_slots_[in.a];
        break;
      case VmOp::kPushNull:
        *sp++ = MakeNull();
        break;
      case VmOp::kPushBool:
        *sp++ = MakeInt(in.a);
        break;
      case VmOp::kAddCost:
        c += costs_[in.b];
        break;
      case VmOp::kLoadAttr:
        *sp++ = load(in.a);
        break;
      case VmOp::kAdd:
      case VmOp::kSub:
      case VmOp::kMul:
      case VmOp::kDiv:
      case VmOp::kMod: {
        c += kExprCostBasic;
        const VmSlot r = *--sp;
        sp[-1] = SlotBinary(static_cast<BinOp>(static_cast<int>(in.op) -
                                               static_cast<int>(VmOp::kAdd)),
                            sp[-1], r);
        break;
      }
// Typed fast paths: the tag guard falls back to the interpreter-equivalent
// generic handler, so mis-typed payloads keep reference semantics.
#define CEPSHED_VM_BIN_II(BOP, EXPR)                              \
  {                                                               \
    c += kExprCostBasic;                                          \
    const VmSlot r = *--sp;                                       \
    const VmSlot l = sp[-1];                                      \
    if (l.tag == VmSlot::kInt && r.tag == VmSlot::kInt) {         \
      sp[-1] = (EXPR);                                            \
    } else {                                                      \
      sp[-1] = SlotBinary(BOP, l, r);                             \
    }                                                             \
    break;                                                        \
  }
#define CEPSHED_VM_BIN_DD(BOP, EXPR)                              \
  {                                                               \
    c += kExprCostBasic;                                          \
    const VmSlot r = *--sp;                                       \
    const VmSlot l = sp[-1];                                      \
    if (l.tag == VmSlot::kDouble && r.tag == VmSlot::kDouble) {   \
      sp[-1] = (EXPR);                                            \
    } else {                                                      \
      sp[-1] = SlotBinary(BOP, l, r);                             \
    }                                                             \
    break;                                                        \
  }
      case VmOp::kAddII:
        CEPSHED_VM_BIN_II(BinOp::kAdd, MakeInt(l.i + r.i))
      case VmOp::kSubII:
        CEPSHED_VM_BIN_II(BinOp::kSub, MakeInt(l.i - r.i))
      case VmOp::kMulII:
        CEPSHED_VM_BIN_II(BinOp::kMul, MakeInt(l.i * r.i))
      case VmOp::kDivII:
        CEPSHED_VM_BIN_II(BinOp::kDiv,
                          r.i == 0 ? MakeNull() : MakeInt(l.i / r.i))
      case VmOp::kModII:
        CEPSHED_VM_BIN_II(BinOp::kMod,
                          r.i == 0 ? MakeNull() : MakeInt(l.i % r.i))
      case VmOp::kAddDD:
        CEPSHED_VM_BIN_DD(BinOp::kAdd, MakeDouble(l.d + r.d))
      case VmOp::kSubDD:
        CEPSHED_VM_BIN_DD(BinOp::kSub, MakeDouble(l.d - r.d))
      case VmOp::kMulDD:
        CEPSHED_VM_BIN_DD(BinOp::kMul, MakeDouble(l.d * r.d))
      case VmOp::kDivDD:
        CEPSHED_VM_BIN_DD(BinOp::kDiv,
                          r.d == 0.0 ? MakeNull() : MakeDouble(l.d / r.d))
#undef CEPSHED_VM_BIN_II
#undef CEPSHED_VM_BIN_DD
      case VmOp::kEq: {
        c += kExprCostBasic;
        const VmSlot r = *--sp;
        sp[-1] = MakeBool(SlotEquals(sp[-1], r));
        break;
      }
      case VmOp::kNe: {
        c += kExprCostBasic;
        const VmSlot r = *--sp;
        const VmSlot l = sp[-1];
        sp[-1] = (l.tag == VmSlot::kNull || r.tag == VmSlot::kNull)
                     ? MakeNull()
                     : MakeBool(!SlotEquals(l, r));
        break;
      }
#define CEPSHED_VM_CMP_ORD(REL)                                   \
  {                                                               \
    c += kExprCostBasic;                                          \
    const VmSlot r = *--sp;                                       \
    const int cmp = SlotCompare(sp[-1], r);                       \
    sp[-1] = cmp == -2 ? MakeNull() : MakeBool(cmp REL 0);        \
    break;                                                        \
  }
      case VmOp::kLt:
        CEPSHED_VM_CMP_ORD(<)
      case VmOp::kLe:
        CEPSHED_VM_CMP_ORD(<=)
      case VmOp::kGt:
        CEPSHED_VM_CMP_ORD(>)
      case VmOp::kGe:
        CEPSHED_VM_CMP_ORD(>=)
#undef CEPSHED_VM_CMP_ORD
      case VmOp::kEqII: {
        c += kExprCostBasic;
        const VmSlot r = *--sp;
        const VmSlot l = sp[-1];
        sp[-1] = (l.tag == VmSlot::kInt && r.tag == VmSlot::kInt)
                     ? MakeBool(l.i == r.i)
                     : MakeBool(SlotEquals(l, r));
        break;
      }
      case VmOp::kNeII: {
        c += kExprCostBasic;
        const VmSlot r = *--sp;
        const VmSlot l = sp[-1];
        if (l.tag == VmSlot::kInt && r.tag == VmSlot::kInt) {
          sp[-1] = MakeBool(l.i != r.i);
        } else {
          sp[-1] = (l.tag == VmSlot::kNull || r.tag == VmSlot::kNull)
                       ? MakeNull()
                       : MakeBool(!SlotEquals(l, r));
        }
        break;
      }
      case VmOp::kEqDD: {
        c += kExprCostBasic;
        const VmSlot r = *--sp;
        const VmSlot l = sp[-1];
        sp[-1] = (l.tag == VmSlot::kDouble && r.tag == VmSlot::kDouble)
                     ? MakeBool(l.d == r.d)
                     : MakeBool(SlotEquals(l, r));
        break;
      }
      case VmOp::kNeDD: {
        c += kExprCostBasic;
        const VmSlot r = *--sp;
        const VmSlot l = sp[-1];
        if (l.tag == VmSlot::kDouble && r.tag == VmSlot::kDouble) {
          sp[-1] = MakeBool(l.d != r.d);
        } else {
          sp[-1] = (l.tag == VmSlot::kNull || r.tag == VmSlot::kNull)
                       ? MakeNull()
                       : MakeBool(!SlotEquals(l, r));
        }
        break;
      }
#define CEPSHED_VM_CMP_II(REL)                                    \
  {                                                               \
    c += kExprCostBasic;                                          \
    const VmSlot r = *--sp;                                       \
    const VmSlot l = sp[-1];                                      \
    if (l.tag == VmSlot::kInt && r.tag == VmSlot::kInt) {         \
      sp[-1] = MakeBool(l.i REL r.i);                             \
    } else {                                                      \
      const int cmp = SlotCompare(l, r);                          \
      sp[-1] = cmp == -2 ? MakeNull() : MakeBool(cmp REL 0);      \
    }                                                             \
    break;                                                        \
  }
#define CEPSHED_VM_CMP_DD(REL)                                    \
  {                                                               \
    c += kExprCostBasic;                                          \
    const VmSlot r = *--sp;                                       \
    const VmSlot l = sp[-1];                                      \
    if (l.tag == VmSlot::kDouble && r.tag == VmSlot::kDouble) {   \
      sp[-1] = MakeBool(l.d REL r.d);                             \
    } else {                                                      \
      const int cmp = SlotCompare(l, r);                          \
      sp[-1] = cmp == -2 ? MakeNull() : MakeBool(cmp REL 0);      \
    }                                                             \
    break;                                                        \
  }
      case VmOp::kLtII:
        CEPSHED_VM_CMP_II(<)
      case VmOp::kLeII:
        CEPSHED_VM_CMP_II(<=)
      case VmOp::kGtII:
        CEPSHED_VM_CMP_II(>)
      case VmOp::kGeII:
        CEPSHED_VM_CMP_II(>=)
      case VmOp::kLtDD:
        CEPSHED_VM_CMP_DD(<)
      case VmOp::kLeDD:
        CEPSHED_VM_CMP_DD(<=)
      case VmOp::kGtDD:
        CEPSHED_VM_CMP_DD(>)
      case VmOp::kGeDD:
        CEPSHED_VM_CMP_DD(>=)
#undef CEPSHED_VM_CMP_II
#undef CEPSHED_VM_CMP_DD
      case VmOp::kNot:
        sp[-1] = MakeBool(!Truthy(sp[-1]));
        break;
      case VmOp::kJmp:
        pc = code + in.a;
        break;
      case VmOp::kJmpFalse:
        if (!Truthy(*--sp)) pc = code + in.a;
        break;
      case VmOp::kJmpTrue:
        if (Truthy(*--sp)) pc = code + in.a;
        break;
      case VmOp::kSqrt: {
        VmSlot& t = sp[-1];
        if (!IsNum(t)) {
          t = MakeNull();
          break;
        }
        c += kExprCostSqrt;
        const double d = SlotToDouble(t);
        t = d < 0.0 ? MakeNull() : MakeDouble(std::sqrt(d));
        break;
      }
      case VmOp::kAbs: {
        VmSlot& t = sp[-1];
        if (!IsNum(t)) {
          t = MakeNull();
          break;
        }
        c += kExprCostBasic;
        t = t.tag == VmSlot::kInt ? MakeInt(std::abs(t.i))
                                  : MakeDouble(std::fabs(SlotToDouble(t)));
        break;
      }
      case VmOp::kCheckNumJmp:
        if (!IsNum(sp[-1])) {
          sp -= 1 + in.b;
          pc = code + in.a;
        }
        break;
      case VmOp::kAvgFin: {
        const int n = in.a;
        double sum = 0.0;
        // Child order, matching the interpreter's fold (double addition is
        // order-sensitive).
        for (int k = n; k >= 1; --k) sum += SlotToDouble(sp[-k]);
        sp -= n;
        *sp++ = MakeDouble(sum / static_cast<double>(n));
        break;
      }
      case VmOp::kInSet: {
        c += kExprCostBasic;
        const VmSlot v = *--sp;
        if (v.tag == VmSlot::kNull) {
          *sp++ = MakeNull();
          break;
        }
        int64_t hit = 0;
        for (const VmSlot& m : set_slots_[in.a]) {
          if (SlotEquals(v, m)) {
            hit = 1;
            break;
          }
        }
        *sp++ = MakeInt(hit);
        break;
      }
      case VmOp::kFEqAA:
      case VmOp::kFNeAA:
      case VmOp::kFLtAA:
      case VmOp::kFLeAA:
      case VmOp::kFGtAA:
      case VmOp::kFGeAA:
      case VmOp::kFEqAC:
      case VmOp::kFNeAC:
      case VmOp::kFLtAC:
      case VmOp::kFLeAC:
      case VmOp::kFGtAC:
      case VmOp::kFGeAC:
        *sp++ = FusedCompare(in, ctx, vmc, &c);
        break;
      case VmOp::kHalt:
        if (cost != nullptr) *cost += c;
        return sp[-1];
    }
  }
}

bool PredVmModule::EvalBool(int prog, const EvalContext& ctx, PredVmContext* vmc,
                            double* cost) const {
  const Program& p = programs_[static_cast<size_t>(prog)];
  // A single fused compare (the dominant paper-query predicate shape) skips
  // the dispatch loop and its stack entirely.
  if (p.code.size() == 2 && p.code[0].op >= VmOp::kFEqAA &&
      p.code[0].op <= VmOp::kFGeAC) {
    double c = 0.0;
    const VmSlot s = FusedCompare(p.code[0], ctx, vmc, &c);
    if (cost != nullptr) *cost += c;
    return Truthy(s);
  }
  return Truthy(Run(p, ctx, vmc, cost));
}

Value PredVmModule::Eval(int prog, const EvalContext& ctx, PredVmContext* vmc,
                         double* cost) const {
  const Program& p = programs_[static_cast<size_t>(prog)];
  // Join-index build keys are usually one bare attribute load.
  if (p.code.size() == 2 && p.code[0].op == VmOp::kLoadAttr) {
    double c = 0.0;
    const VmSlot s = CachedLoad(p.code[0].a, ctx, vmc, &c);
    if (cost != nullptr) *cost += c;
    switch (s.tag) {
      case VmSlot::kInt:
        return Value(s.i);
      case VmSlot::kDouble:
        return Value(s.d);
      case VmSlot::kStr:
        return Value(*s.s);
      default:
        return Value();
    }
  }
  const VmSlot s = Run(p, ctx, vmc, cost);
  switch (s.tag) {
    case VmSlot::kInt:
      return Value(s.i);
    case VmSlot::kDouble:
      return Value(s.d);
    case VmSlot::kStr:
      return Value(*s.s);
    default:
      return Value();
  }
}

std::string PredVmModule::Disassemble(int prog) const {
  static const char* const kNames[] = {
      "const",  "pushnull", "pushbool", "addcost", "loadattr", "add",   "sub",
      "mul",    "div",      "mod",      "add.ii",  "sub.ii",   "mul.ii", "div.ii",
      "mod.ii", "add.dd",   "sub.dd",   "mul.dd",  "div.dd",   "eq",    "ne",
      "lt",     "le",       "gt",       "ge",      "eq.ii",    "ne.ii", "lt.ii",
      "le.ii",  "gt.ii",    "ge.ii",    "eq.dd",   "ne.dd",    "lt.dd", "le.dd",
      "gt.dd",  "ge.dd",    "not",      "jmp",     "jmp.false", "jmp.true",
      "sqrt",   "abs",      "checknum", "avgfin",  "inset",
      "feq.aa", "fne.aa",   "flt.aa",   "fle.aa",  "fgt.aa",   "fge.aa",
      "feq.ac", "fne.ac",   "flt.ac",   "fle.ac",  "fgt.ac",   "fge.ac",
      "halt"};
  std::ostringstream os;
  const Program& p = programs_[static_cast<size_t>(prog)];
  for (size_t i = 0; i < p.code.size(); ++i) {
    const VmInsn& in = p.code[i];
    os << i << ": " << kNames[static_cast<size_t>(in.op)] << " " << in.a << " "
       << in.b;
    if (in.op == VmOp::kConst) os << "  ; " << const_values_[in.a].ToString();
    if (in.op == VmOp::kLoadAttr) {
      const VmAttrLoad& l = loads_[in.a];
      os << "  ; elem=" << l.elem << " attr=" << l.attr << " sel="
         << static_cast<int>(l.selector);
    }
    os << "\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

struct PredVmBuilder::EmitState {
  std::vector<VmInsn> code;
  int depth = 0;
  int max_depth = 0;
  bool ok = true;

  size_t Emit(VmOp op, uint16_t a = 0, uint16_t b = 0) {
    code.push_back(VmInsn{op, a, b});
    return code.size() - 1;
  }
  void Push(int n = 1) {
    depth += n;
    if (depth > max_depth) max_depth = depth;
  }
  void Pop(int n = 1) { depth -= n; }
  /// Points jump instruction `at` at the next emitted instruction.
  void PatchJump(size_t at) { code[at].a = static_cast<uint16_t>(code.size()); }
};

namespace {

bool IsConstExpr(const Expr& e) {
  if (e.kind() == ExprKind::kAttrRef || e.kind() == ExprKind::kAggregate) {
    return false;
  }
  for (const ExprPtr& child : e.children()) {
    if (!IsConstExpr(*child)) return false;
  }
  return true;
}

}  // namespace

uint16_t PredVmBuilder::InternLoad(const Expr& ref) {
  const auto key = std::make_tuple(ref.elem_index(),
                                   static_cast<int>(ref.selector()),
                                   ref.attr_index());
  const auto [it, inserted] =
      load_ids_.try_emplace(key, static_cast<uint16_t>(module_->loads_.size()));
  if (inserted) {
    module_->loads_.push_back(VmAttrLoad{static_cast<int16_t>(ref.elem_index()),
                                         static_cast<int16_t>(ref.attr_index()),
                                         ref.selector()});
  }
  return it->second;
}

uint16_t PredVmBuilder::InternCost(double cost) {
  for (size_t i = 0; i < module_->costs_.size(); ++i) {
    if (module_->costs_[i] == cost) return static_cast<uint16_t>(i);
  }
  module_->costs_.push_back(cost);
  return static_cast<uint16_t>(module_->costs_.size() - 1);
}

void PredVmBuilder::EmitConst(Value v, double folded_cost, EmitState* st) {
  const uint16_t cost_idx = InternCost(folded_cost);
  module_->const_values_.push_back(std::move(v));
  st->Emit(VmOp::kConst,
           static_cast<uint16_t>(module_->const_values_.size() - 1), cost_idx);
  st->Push();
}

PredVmBuilder::StaticType PredVmBuilder::EmitExpr(const Expr& e, EmitState* st) {
  if (!st->ok) return StaticType::kUnknown;

  if (IsConstExpr(e)) {
    // Fold through the interpreter itself: value and accumulated cost are
    // exactly what Expr::Eval would produce (constant subtrees read nothing
    // from the context, so an empty one is sound).
    EvalContext empty;
    double folded = 0.0;
    Value v = e.Eval(empty, &folded);
    StaticType t = StaticType::kUnknown;
    if (v.type() == ValueType::kInt) t = StaticType::kInt;
    if (v.type() == ValueType::kDouble) t = StaticType::kDouble;
    if (v.type() == ValueType::kString) t = StaticType::kString;
    EmitConst(std::move(v), folded, st);
    return t;
  }

  switch (e.kind()) {
    case ExprKind::kLiteral:
      break;  // constant; handled above
    case ExprKind::kAttrRef: {
      if (e.elem_index() < 0 || e.attr_index() < 0 ||
          static_cast<size_t>(e.attr_index()) >= schema_->num_attributes()) {
        st->ok = false;  // unresolved reference: keep the interpreter
        return StaticType::kUnknown;
      }
      st->Emit(VmOp::kLoadAttr, InternLoad(e));
      st->Push();
      // The declared type is a specialization hint; events may still carry
      // null or a mismatched payload, which the typed opcodes guard against.
      switch (schema_->attribute(e.attr_index()).type) {
        case ValueType::kInt: return StaticType::kInt;
        case ValueType::kDouble: return StaticType::kDouble;
        case ValueType::kString: return StaticType::kString;
        default: return StaticType::kUnknown;
      }
    }
    case ExprKind::kBinary: {
      const StaticType lt = EmitExpr(*e.children()[0], st);
      const StaticType rt = EmitExpr(*e.children()[1], st);
      const int generic = static_cast<int>(VmOp::kAdd) +
                          (static_cast<int>(e.bin_op()) -
                           static_cast<int>(BinOp::kAdd));
      VmOp op = static_cast<VmOp>(generic);
      if (lt == StaticType::kInt && rt == StaticType::kInt) {
        op = static_cast<VmOp>(static_cast<int>(VmOp::kAddII) +
                               (generic - static_cast<int>(VmOp::kAdd)));
      } else if (lt == StaticType::kDouble && rt == StaticType::kDouble &&
                 e.bin_op() != BinOp::kMod) {
        op = static_cast<VmOp>(static_cast<int>(VmOp::kAddDD) +
                               (generic - static_cast<int>(VmOp::kAdd)));
      }
      st->Emit(op);
      st->Pop();
      if (lt == StaticType::kInt && rt == StaticType::kInt) return StaticType::kInt;
      const bool lnum = lt == StaticType::kInt || lt == StaticType::kDouble;
      const bool rnum = rt == StaticType::kInt || rt == StaticType::kDouble;
      return lnum && rnum ? StaticType::kDouble : StaticType::kUnknown;
    }
    case ExprKind::kCompare: {
      // Superinstruction fusion for the dominant shapes `attr CMP attr` and
      // `attr CMP literal`: one dispatch instead of three. `literal CMP attr`
      // canonicalizes via the mirrored operator. Constants must carry zero
      // folded cost (plain literals do) so the fused cost stays exact.
      const Expr& le = *e.children()[0];
      const Expr& re = *e.children()[1];
      const int foff = static_cast<int>(e.cmp_op()) - static_cast<int>(CmpOp::kEq);
      const auto fusable = [this](const Expr& x) {
        return x.kind() == ExprKind::kAttrRef && x.elem_index() >= 0 &&
               x.attr_index() >= 0 &&
               static_cast<size_t>(x.attr_index()) < schema_->num_attributes();
      };
      if (fusable(le) && fusable(re)) {
        const uint16_t ll = InternLoad(le);
        const uint16_t rl = InternLoad(re);
        st->Emit(static_cast<VmOp>(static_cast<int>(VmOp::kFEqAA) + foff), ll, rl);
        st->Push();
        return StaticType::kInt;
      }
      // Eq/Ne are symmetric; Lt<->Gt and Le<->Ge swap when the attr moves left.
      static constexpr int kMirror[6] = {0, 1, 4, 5, 2, 3};
      const bool ac = fusable(le) && IsConstExpr(re);
      const bool ca = !ac && fusable(re) && IsConstExpr(le);
      if (ac || ca) {
        EvalContext empty;
        double folded = 0.0;
        Value v = (ac ? re : le).Eval(empty, &folded);
        if (folded == 0.0 && module_->const_values_.size() < kMaxPool) {
          module_->const_values_.push_back(std::move(v));
          const uint16_t ci =
              static_cast<uint16_t>(module_->const_values_.size() - 1);
          st->Emit(static_cast<VmOp>(static_cast<int>(VmOp::kFEqAC) +
                                     (ac ? foff : kMirror[foff])),
                   InternLoad(ac ? le : re), ci);
          st->Push();
          return StaticType::kInt;
        }
      }
      const StaticType lt = EmitExpr(*e.children()[0], st);
      const StaticType rt = EmitExpr(*e.children()[1], st);
      const int off = static_cast<int>(e.cmp_op()) - static_cast<int>(CmpOp::kEq);
      VmOp op = static_cast<VmOp>(static_cast<int>(VmOp::kEq) + off);
      if (lt == StaticType::kInt && rt == StaticType::kInt) {
        op = static_cast<VmOp>(static_cast<int>(VmOp::kEqII) + off);
      } else if (lt == StaticType::kDouble && rt == StaticType::kDouble) {
        op = static_cast<VmOp>(static_cast<int>(VmOp::kEqDD) + off);
      }
      st->Emit(op);
      st->Pop();
      return StaticType::kInt;
    }
    case ExprKind::kAnd: {
      std::vector<size_t> fixups;
      for (const ExprPtr& child : e.children()) {
        EmitExpr(*child, st);
        fixups.push_back(st->Emit(VmOp::kJmpFalse));
        st->Pop();
      }
      st->Emit(VmOp::kPushBool, 1);
      st->Push();
      const size_t jend = st->Emit(VmOp::kJmp);
      for (const size_t f : fixups) st->PatchJump(f);
      st->Emit(VmOp::kPushBool, 0);  // converges to the same depth
      st->PatchJump(jend);
      return StaticType::kInt;
    }
    case ExprKind::kOr: {
      std::vector<size_t> fixups;
      for (const ExprPtr& child : e.children()) {
        EmitExpr(*child, st);
        fixups.push_back(st->Emit(VmOp::kJmpTrue));
        st->Pop();
      }
      st->Emit(VmOp::kPushBool, 0);
      st->Push();
      const size_t jend = st->Emit(VmOp::kJmp);
      for (const size_t f : fixups) st->PatchJump(f);
      st->Emit(VmOp::kPushBool, 1);
      st->PatchJump(jend);
      return StaticType::kInt;
    }
    case ExprKind::kNot:
      EmitExpr(*e.children()[0], st);
      st->Emit(VmOp::kNot);
      return StaticType::kInt;
    case ExprKind::kFunc: {
      if (e.func() == FuncKind::kAvgN) {
        st->Emit(VmOp::kAddCost, 0, InternCost(kExprCostBasic));
        const int n = static_cast<int>(e.children().size());
        if (n == 0) {  // unreachable via the parser; constant-folded anyway
          st->Emit(VmOp::kPushNull);
          st->Push();
          return StaticType::kUnknown;
        }
        std::vector<size_t> fixups;
        for (int i = 0; i < n; ++i) {
          EmitExpr(*e.children()[static_cast<size_t>(i)], st);
          fixups.push_back(st->Emit(VmOp::kCheckNumJmp, 0,
                                    static_cast<uint16_t>(i)));
        }
        st->Emit(VmOp::kAvgFin, static_cast<uint16_t>(n));
        st->Pop(n);
        st->Push();
        const size_t jend = st->Emit(VmOp::kJmp);
        for (const size_t f : fixups) st->PatchJump(f);
        st->Emit(VmOp::kPushNull);  // the non-numeric bailout path
        st->PatchJump(jend);
        return StaticType::kDouble;
      }
      const StaticType at = EmitExpr(*e.children()[0], st);
      st->Emit(e.func() == FuncKind::kSqrt ? VmOp::kSqrt : VmOp::kAbs);
      if (e.func() == FuncKind::kSqrt) return StaticType::kDouble;
      return at == StaticType::kInt || at == StaticType::kDouble
                 ? at
                 : StaticType::kUnknown;
    }
    case ExprKind::kInSet: {
      EmitExpr(*e.children()[0], st);
      module_->set_values_.push_back(e.set_values());
      st->Emit(VmOp::kInSet,
               static_cast<uint16_t>(module_->set_values_.size() - 1));
      return StaticType::kInt;
    }
    case ExprKind::kAggregate:
      st->ok = false;  // aggregates keep the interpreter (span folds)
      return StaticType::kUnknown;
  }
  st->ok = false;
  return StaticType::kUnknown;
}

int PredVmBuilder::Add(const Expr& expr) {
  if (built_ || module_ == nullptr) return -1;
  if (expr.HasAggregate()) return -1;
  EmitState st;
  EmitExpr(expr, &st);
  st.Emit(VmOp::kHalt);
  if (!st.ok || st.depth != 1 || st.max_depth > kMaxVmStack ||
      st.code.size() > kMaxPool || module_->loads_.size() > kMaxPool ||
      module_->const_values_.size() > kMaxPool ||
      module_->set_values_.size() > kMaxPool ||
      module_->costs_.size() > kMaxPool) {
    return -1;  // interned pool entries are retained but harmless
  }
  assert(st.depth == 1);
  module_->programs_.push_back(PredVmModule::Program{std::move(st.code)});
  return module_->num_programs() - 1;
}

std::shared_ptr<const PredVmModule> PredVmBuilder::Build() {
  if (built_ || module_ == nullptr) return nullptr;
  built_ = true;
  // Unbox the pools only now: string slots borrow the pooled std::string
  // storage, whose addresses are stable once the vectors stop growing.
  module_->const_slots_.reserve(module_->const_values_.size());
  for (const Value& v : module_->const_values_) {
    module_->const_slots_.push_back(FromValue(v));
  }
  module_->set_slots_.reserve(module_->set_values_.size());
  for (const std::vector<Value>& set : module_->set_values_) {
    std::vector<VmSlot> slots;
    slots.reserve(set.size());
    for (const Value& v : set) slots.push_back(FromValue(v));
    module_->set_slots_.push_back(std::move(slots));
  }
  return std::shared_ptr<const PredVmModule>(std::move(module_));
}

}  // namespace cepshed
