file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_resource_costs.dir/bench/bench_fig11_resource_costs.cpp.o"
  "CMakeFiles/bench_fig11_resource_costs.dir/bench/bench_fig11_resource_costs.cpp.o.d"
  "bench/bench_fig11_resource_costs"
  "bench/bench_fig11_resource_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_resource_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
