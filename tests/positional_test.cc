// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Tests for the eSPICE-style positional input shedder (related work §VII).

#include "src/shed/positional.h"

#include <gtest/gtest.h>

#include "src/workload/citibike.h"
#include "src/workload/ds1.h"
#include "src/workload/queries.h"
#include "src/runtime/metrics.h"
#include "src/shed/controller.h"

namespace cepshed {
namespace {

TEST(PositionalUtilityTest, LearnsTypeLevelUtilities) {
  const Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = 8000;
  gen.seed = 61;
  const EventStream history = GenerateDs1(schema, gen);
  auto nfa = Nfa::Compile(*queries::Q1(), &schema);
  ASSERT_TRUE(nfa.ok());

  PositionalUtility utility(static_cast<int>(schema.num_event_types()), 8, Millis(8));
  ASSERT_TRUE(utility.Train(*nfa, history).ok());
  // D never participates in Q1; A does.
  EXPECT_DOUBLE_EQ(utility.Utility(schema.EventTypeId("D"), 0), 0.0);
  double a_any = 0.0;
  for (int b = 0; b < 8; ++b) {
    a_any += utility.Utility(schema.EventTypeId("A"), b * Millis(1));
  }
  EXPECT_GT(a_any, 0.0);
}

TEST(PositionalUtilityTest, CapturesPeriodicStructure) {
  // Citibike rush hours recur cyclically; hot-ending trips concentrate in
  // the rush buckets, so positional utilities must vary across buckets.
  const Schema schema = MakeCitibikeSchema();
  CitibikeOptions gen;
  gen.num_events = 12000;
  gen.seed = 62;
  const EventStream history = GenerateCitibike(schema, gen);
  auto nfa = Nfa::Compile(*queries::CitibikeHotPaths(3, 6), &schema);
  ASSERT_TRUE(nfa.ok());

  // Buckets over the rush period (3h), not the 1h window, to align with
  // the generator's cycle.
  PositionalUtility utility(static_cast<int>(schema.num_event_types()), 6,
                            gen.rush_period);
  ASSERT_TRUE(utility.Train(*nfa, history).ok());
  const int trip = schema.EventTypeId("BikeTrip");
  double lo = 1.0;
  double hi = 0.0;
  for (int b = 0; b < 6; ++b) {
    const double u = utility.Utility(trip, b * gen.rush_period / 6);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_GT(hi, lo * 1.2) << "expected positional variation across the cycle";
}

TEST(PositionalShedderTest, FixedRatioDropsApproximateFraction) {
  const Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = 10000;
  gen.seed = 63;
  const EventStream history = GenerateDs1(schema, gen);
  auto nfa = Nfa::Compile(*queries::Q1(), &schema);
  ASSERT_TRUE(nfa.ok());
  PositionalUtility utility(static_cast<int>(schema.num_event_types()), 8, Millis(8));
  ASSERT_TRUE(utility.Train(*nfa, history).ok());

  PositionalInputShedder shedder(&utility, /*fraction=*/0.25, /*seed=*/3);
  size_t dropped = 0;
  for (const EventPtr& e : history) {
    if (shedder.FilterEvent(*e)) ++dropped;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / static_cast<double>(history.size()), 0.25,
              0.12);
}

TEST(PositionalShedderTest, BeatsRandomInputAtEqualRatio) {
  const Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = 12000;
  gen.seed = 64;
  const EventStream train = GenerateDs1(schema, gen);
  gen.seed = 65;
  const EventStream test = GenerateDs1(schema, gen);
  auto nfa = Nfa::Compile(*queries::Q1(), &schema);
  ASSERT_TRUE(nfa.ok());
  PositionalUtility utility(static_cast<int>(schema.num_event_types()), 8, Millis(8));
  ASSERT_TRUE(utility.Train(*nfa, train).ok());

  auto run = [&](Shedder* shedder) {
    Engine engine(*nfa, EngineOptions{});
    ShedRunner runner(&engine, shedder, LatencyMonitor::Options{});
    return runner.Run(test);
  };
  NoShedder none;
  const GroundTruth truth(run(&none).matches);

  PositionalInputShedder pi(&utility, 0.25, 4);
  RandomInputShedder ri(0.25, 4);
  const auto pi_quality = ComputeQuality(run(&pi).matches, truth);
  const auto ri_quality = ComputeQuality(run(&ri).matches, truth);
  // PI at least drops the useless D events before anything else.
  EXPECT_GT(pi_quality.recall, ri_quality.recall);
}

TEST(PositionalShedderTest, LatencyBoundModeActivatesUnderOverload) {
  const Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = 6000;
  gen.seed = 66;
  const EventStream stream = GenerateDs1(schema, gen);
  auto nfa = Nfa::Compile(*queries::Q1(), &schema);
  ASSERT_TRUE(nfa.ok());
  PositionalUtility utility(static_cast<int>(schema.num_event_types()), 8, Millis(8));
  ASSERT_TRUE(utility.Train(*nfa, stream).ok());

  PositionalInputShedder shedder(&utility, /*theta=*/1.0, /*trigger_delay=*/100,
                                 /*seed=*/5);
  Engine engine(*nfa, EngineOptions{});
  ShedRunner runner(&engine, &shedder, LatencyMonitor::Options{});
  const RunResult r = runner.Run(stream);
  EXPECT_GT(r.dropped_events, 0u);  // bound is unreachable: must shed
}

}  // namespace
}  // namespace cepshed
