// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/shed/hybrid.h"

#include "src/obs/scoped_timer.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "src/cep/engine.h"
#include "src/shed/registry.h"

namespace cepshed {

// --- HybridShedder -------------------------------------------------------

HybridShedder::HybridShedder(CostModel* model, HybridOptions options)
    : model_(model),
      options_(options),
      trigger_(options.theta, options.trigger_delay),
      rng_(options.seed) {}

std::string HybridShedder::Name() const {
  if (options_.enable_input && options_.enable_state) return "Hybrid";
  return options_.enable_input ? "Hybrid(I)" : "Hybrid(S)";
}

void HybridShedder::Bind(Engine* engine) {
  Shedder::Bind(engine);
  if (options_.enable_state) {
    // rho_S of the formal model applies to P(k) at every step: while the
    // shedding set is in force, matches of shed classes are discarded the
    // moment they are (re)created.
    // Only zero-contribution classes stay in force between triggers: the
    // knapsack sizes contribution-bearing selections for a one-shot
    // removal, so filtering those continuously would shed far more recall
    // than the selection accounted for.
    engine->set_creation_filter([this](const PartialMatch& pm) {
      if (!state_filter_active_) return false;
      const int32_t cls = pm.class_label < 0 ? 0 : pm.class_label;
      const int slice = model_->SliceOfAge(pm.last_ts - pm.start_ts);
      if (zero_keys_.count({pm.state, cls, slice}) == 0) return false;
      if (options_.exploration > 0.0 && rng_.Bernoulli(options_.exploration)) {
        return false;  // exploration: keep a sample of the "worthless" class
      }
      ++pms_shed_;
      if (obs_ != nullptr) {
        // Standing-filter discards are consequences of the last trigger's
        // decision: counted per class, but not re-audited one by one.
        obs_->pms_shed.Add();
        obs_->CountShedClass(cls);
      }
      return true;
    });
  }
}

bool HybridShedder::FilterEvent(const Event& event) {
  if (!input_active_) return false;
  // Discard the event if its assessed utility — the expected contribution
  // of the match it would create, from the cost model's event-value
  // estimators — falls below the current cutoff.
  if (model_->EventUtility(event) <= utility_cutoff_) {
    if (options_.exploration > 0.0 && rng_.Bernoulli(options_.exploration)) {
      return false;  // exploration: admit a sample of "worthless" events
    }
    return DropEvent(-1, last_mu_, event.seq(), event.timestamp());
  }
  return false;
}

void HybridShedder::AfterEvent(Timestamp now, double mu) {
  last_mu_ = mu;
  model_->MaybeFold(now, engine_);
  if (mu <= options_.hysteresis * options_.theta) {
    // Comfortably within the bound: rho_I stops (§IV-C) and escalation
    // resets. The hysteresis margin prevents flip-flopping right at theta.
    input_active_ = false;
    lossy_keys_.clear();
    utility_cutoff_ = -1.0;
    escalation_level_ = 0;
    last_violation_ = 0.0;
  }
  if (mu <= options_.zero_release * options_.theta) {
    // Deep recovery: lift the standing zero-class filter too.
    state_filter_active_ = false;
    zero_keys_.clear();
  }
  const double violation = trigger_.Check(mu);
  if (violation <= 0.0) return;
  ++triggers_;
  obs::ScopedTimerUs trigger_timer(obs_ != nullptr ? &obs_->shed_trigger_us
                                                   : nullptr);
  if (obs_ != nullptr) obs_->shed_triggers.Add();
  // State shedding alone is not bringing the latency down: escalate the
  // input filter one utility class at a time; back off when improving.
  if (last_violation_ > 0.0 && violation >= 0.8 * last_violation_) {
    ++escalation_level_;
  } else if (last_violation_ > 0.0 && violation < 0.5 * last_violation_) {
    escalation_level_ = std::max(0, escalation_level_ - 1);
  }
  last_violation_ = violation;

  std::vector<SheddingSetItem> shed_set;
  {
    obs::ScopedTimerUs knapsack_timer(obs_ != nullptr ? &obs_->knapsack_us
                                                      : nullptr);
    if (obs_ != nullptr) obs_->knapsack_solves.Add();
    shed_set = SelectSheddingSet(engine_, *model_, violation, now, options_.solver);
  }
  if (shed_set.empty()) return;

  if (options_.enable_state) {
    // rho_S: remove the selected classes of partial matches now, and keep
    // the set in force (creation filter) until the bound holds again.
    // The zero-contribution classes come straight from the current model
    // estimates (they are free riders of the knapsack objective and their
    // live population says nothing once the filter holds them down);
    // contribution-bearing keys are transient and re-decided per trigger.
    std::set<int> kill_witnesses;
    lossy_keys_.clear();
    zero_keys_.clear();
    // A key is recall-free only if (a) its adapted estimate is zero AND
    // (b) no training member of the class/slice ever contributed — the
    // percentile alone would also starve classes whose value sits in a
    // rare minority of their members.
    auto is_zero_key = [&](int s, int c, int sl) {
      return model_->Contribution(s, c, sl) <= 1e-9 &&
             model_->ContributionMax(s, c, sl) <= 1e-9;
    };
    for (int s = 0; s < model_->num_states(); ++s) {
      for (int c = 0; c < model_->NumClasses(s); ++c) {
        for (int sl = 0; sl < model_->num_slices(); ++sl) {
          if (is_zero_key(s, c, sl)) zero_keys_.insert({s, c, sl});
        }
      }
    }
    double zero_coverage = 0.0;
    double lossy_coverage = 0.0;
    for (const auto& item : shed_set) {
      if (item.is_witness_group) {
        kill_witnesses.insert(item.negated_elem);
      } else if (is_zero_key(item.state, item.cls, item.slice)) {
        zero_keys_.insert({item.state, item.cls, item.slice});
        zero_coverage += item.delta_minus;
      } else if (!options_.state_zero_only &&
                 (!options_.enable_input || escalation_level_ == 0)) {
        // One-shot removals of contribution-bearing classes only help
        // while their latency relief lasts; under sustained violation the
        // relief decays before the next trigger and repeating the kill
        // churns valuable state. Then input shedding takes over instead
        // (the flattening of shed-PM ratios in the paper's Fig. 5).
        lossy_keys_.insert({item.state, item.cls, item.slice});
        lossy_coverage += item.delta_minus;
      }
    }
    // Contribution-bearing classes are killed only fractionally: just
    // enough, together with the (free) zero classes, to cover the
    // violation. When classes are coarse (few informative attributes),
    // killing whole classes would wipe entire states at once.
    lossy_fraction_ =
        lossy_coverage > 0.0
            ? std::clamp((violation - zero_coverage) / lossy_coverage, 0.0, 1.0)
            : 0.0;
    state_filter_active_ = !zero_keys_.empty();
    engine_->store().ForEachAlive([&](PartialMatch* pm) {
      const int32_t cls = pm->class_label < 0 ? 0 : pm->class_label;
      const int slice = model_->SliceOfAge(now - pm->start_ts);
      const std::tuple<int, int32_t, int> key{pm->state, cls, slice};
      if (zero_keys_.count(key) > 0) {
        KillPm(pm, mu, now);
      } else if (lossy_fraction_ > 0.0 && lossy_keys_.count(key) > 0 &&
                 rng_.Bernoulli(lossy_fraction_)) {
        KillPm(pm, mu, now);
      }
    });
    if (!kill_witnesses.empty()) {
      engine_->store().ForEachAliveWitness([&](PartialMatch* pm) {
        if (kill_witnesses.count(pm->negated_elem) > 0) KillPm(pm, mu, now);
      });
    }
  }
  if (options_.enable_input) {
    // rho_I: active while the bound is violated. The base cutoff drops
    // only events whose utility is assessably zero; every non-improving
    // trigger escalates the cutoff by one step of the training utility
    // distribution, and improvement steps back — trading recall for
    // throughput gradually (the turning point of the paper's Fig. 5).
    const std::vector<double>& samples = options_.utility_samples;
    if (samples.empty() || escalation_level_ == 0) {
      utility_cutoff_ = 1e-12;
    } else {
      const double zero_frac =
          static_cast<double>(std::upper_bound(samples.begin(), samples.end(), 1e-12) -
                              samples.begin()) /
          static_cast<double>(samples.size());
      const double p = std::min(
          0.95, zero_frac + options_.input_escalation_step * escalation_level_);
      const size_t idx = std::min(
          samples.size() - 1, static_cast<size_t>(p * static_cast<double>(samples.size())));
      utility_cutoff_ = std::max(1e-12, samples[idx]);
    }
    input_active_ = true;
  }
}

void HybridShedder::Reset() {
  Shedder::Reset();
  trigger_.Reset();
  input_active_ = false;
  state_filter_active_ = false;
  utility_cutoff_ = -1.0;
  zero_keys_.clear();
  lossy_keys_.clear();
  triggers_ = 0;
  last_violation_ = 0.0;
  escalation_level_ = 0;
}

// --- HyI (fixed ratio) -----------------------------------------------------

HybridFixedInputShedder::HybridFixedInputShedder(const CostModel* model,
                                                 double threshold,
                                                 double tie_probability, uint64_t seed)
    : model_(model),
      threshold_(threshold),
      tie_probability_(tie_probability),
      rng_(seed) {}

bool HybridFixedInputShedder::FilterEvent(const Event& event) {
  const double u = model_->EventUtility(event);
  if (u < threshold_) return DropEvent();
  if (u == threshold_ && tie_probability_ > 0.0 && rng_.Bernoulli(tie_probability_)) {
    return DropEvent();
  }
  return false;
}

// --- HyS (fixed ratio) -----------------------------------------------------

HybridFixedStateShedder::HybridFixedStateShedder(const CostModel* model,
                                                 double fraction, uint64_t period,
                                                 uint64_t seed)
    : model_(model), fraction_(fraction), period_(period == 0 ? 1 : period), rng_(seed) {}

void HybridFixedStateShedder::AfterEvent(Timestamp now, double mu) {
  if (++events_seen_ % period_ != 0 || fraction_ <= 0.0) return;

  // Rank live (state, class, slice) groups by the recall lost per unit of
  // consumption saved, then shed whole groups until the fraction is met.
  struct Group {
    int state;
    int32_t cls;
    int slice;
    size_t count = 0;
    double ratio = 0.0;
  };
  std::map<std::tuple<int, int32_t, int>, size_t> counts;
  size_t alive = 0;
  engine_->store().ForEachAlive([&](PartialMatch* pm) {
    const int32_t cls = pm->class_label < 0 ? 0 : pm->class_label;
    ++counts[{pm->state, cls, model_->SliceOfAge(now - pm->start_ts)}];
    ++alive;
  });
  size_t witness_alive = engine_->store().NumAliveWitnesses();
  size_t target = static_cast<size_t>(
      fraction_ * static_cast<double>(alive + witness_alive) + 0.5);
  if (target == 0) return;

  // Witnesses first: zero contribution.
  engine_->store().ForEachAliveWitness([&](PartialMatch* pm) {
    if (target == 0) return;
    KillPm(pm, mu, now);
    --target;
  });
  if (target == 0) return;

  std::vector<Group> groups;
  for (const auto& [key, n] : counts) {
    Group g;
    std::tie(g.state, g.cls, g.slice) = key;
    g.count = n;
    const double plus = model_->Contribution(g.state, g.cls, g.slice);
    const double minus = std::max(1e-9, model_->Consumption(g.state, g.cls, g.slice));
    g.ratio = plus / minus;
    groups.push_back(g);
  }
  std::sort(groups.begin(), groups.end(),
            [](const Group& a, const Group& b) { return a.ratio < b.ratio; });

  std::set<std::tuple<int, int32_t, int>> kill_keys;
  double partial_prob = 0.0;
  std::tuple<int, int32_t, int> partial_key{-1, -1, -1};
  size_t planned = 0;
  for (const Group& g : groups) {
    if (planned >= target) break;
    if (planned + g.count <= target) {
      kill_keys.insert({g.state, g.cls, g.slice});
      planned += g.count;
    } else {
      partial_key = {g.state, g.cls, g.slice};
      partial_prob = static_cast<double>(target - planned) / static_cast<double>(g.count);
      planned = target;
    }
  }
  engine_->store().ForEachAlive([&](PartialMatch* pm) {
    const int32_t cls = pm->class_label < 0 ? 0 : pm->class_label;
    const std::tuple<int, int32_t, int> key{pm->state, cls,
                                            model_->SliceOfAge(now - pm->start_ts)};
    if (kill_keys.count(key) > 0) {
      KillPm(pm, mu, now);
    } else if (key == partial_key && rng_.Bernoulli(partial_prob)) {
      KillPm(pm, mu, now);
    }
  });
}

void HybridFixedStateShedder::Reset() {
  Shedder::Reset();
  events_seen_ = 0;
}

// --- Threshold calibration ---------------------------------------------------

std::vector<double> ComputeTrainingUtilities(const CostModel& model,
                                             const EventStream& train) {
  std::vector<double> utilities;
  utilities.reserve(train.size());
  for (const EventPtr& e : train) utilities.push_back(model.EventUtility(*e));
  std::sort(utilities.begin(), utilities.end());
  return utilities;
}

std::pair<double, double> ComputeUtilityThreshold(const CostModel& model,
                                                  const EventStream& train,
                                                  double fraction) {
  if (train.empty() || fraction <= 0.0) return {-1.0, 0.0};
  std::vector<double> utilities;
  utilities.reserve(train.size());
  for (const EventPtr& e : train) utilities.push_back(model.EventUtility(*e));
  std::sort(utilities.begin(), utilities.end());
  const size_t n = utilities.size();
  size_t idx = static_cast<size_t>(fraction * static_cast<double>(n));
  if (idx >= n) idx = n - 1;
  const double thr = utilities[idx];
  // P(u < thr) and P(u == thr) give the tie-breaking probability that makes
  // the expected drop rate equal `fraction` under discrete utilities.
  const size_t below =
      static_cast<size_t>(std::lower_bound(utilities.begin(), utilities.end(), thr) -
                          utilities.begin());
  const size_t ties =
      static_cast<size_t>(std::upper_bound(utilities.begin(), utilities.end(), thr) -
                          utilities.begin()) -
      below;
  const double p_below = static_cast<double>(below) / static_cast<double>(n);
  const double p_tie =
      ties == 0 ? 0.0
                : std::clamp((fraction - p_below) /
                                 (static_cast<double>(ties) / static_cast<double>(n)),
                             0.0, 1.0);
  return {thr, p_tie};
}

// --- Composite fixed-ratio hybrid -------------------------------------------

HybridFixedShedder::HybridFixedShedder(const CostModel* model,
                                       double input_threshold,
                                       double tie_probability,
                                       double state_fraction, uint64_t period,
                                       uint64_t input_seed, uint64_t state_seed)
    : input_(model, input_threshold, tie_probability, input_seed),
      state_(model, state_fraction, period, state_seed) {}

void HybridFixedShedder::Bind(Engine* engine) {
  Shedder::Bind(engine);
  input_.Bind(engine);
  state_.Bind(engine);
}

bool HybridFixedShedder::FilterEvent(const Event& event) {
  if (input_.FilterEvent(event)) {
    // The parts keep their own counters (they do the dropping); mirror them
    // so callers reading this shedder see the combined totals.
    events_dropped_ = input_.events_dropped();
    return true;
  }
  return false;
}

void HybridFixedShedder::AfterEvent(Timestamp now, double mu) {
  state_.AfterEvent(now, mu);
  pms_shed_ = state_.pms_shed();
}

void HybridFixedShedder::Reset() {
  Shedder::Reset();
  input_.Reset();
  state_.Reset();
}

void HybridFixedShedder::set_obs(obs::ShardObs* o, int shard) {
  Shedder::set_obs(o, shard);
  input_.set_obs(o, shard);
  state_.set_obs(o, shard);
}

// --- Registry adapter for model-backed strategies ----------------------------

ModelOwningShedder::ModelOwningShedder(std::unique_ptr<CostModel> model,
                                       std::unique_ptr<Shedder> inner)
    : model_(std::move(model)), inner_(std::move(inner)) {}

void ModelOwningShedder::Bind(Engine* engine) {
  Shedder::Bind(engine);
  CostModel* model = model_.get();
  // The same wiring ExperimentHarness::RunWith installs for model-backed
  // strategies: the classifier stamps class labels onto partial matches,
  // and the creation/match hooks feed online adaptation.
  engine->set_classifier(
      [model](const PartialMatch& pm) { return model->Classify(pm); });
  engine->set_pm_created_hook(
      [model](const PartialMatch& pm, const PartialMatch* parent) {
        model->OnPmCreated(pm, parent, pm.last_ts);
      });
  engine->set_match_hook([model](const Match& m, const PartialMatch* parent) {
    model->OnMatch(m, parent, m.detected_at);
  });
  inner_->Bind(engine);
}

void ModelOwningShedder::AfterEvent(Timestamp now, double mu) {
  inner_->AfterEvent(now, mu);
  events_dropped_ = inner_->events_dropped();
  pms_shed_ = inner_->pms_shed();
}

void ModelOwningShedder::Reset() {
  Shedder::Reset();
  inner_->Reset();
}

void ModelOwningShedder::set_obs(obs::ShardObs* o, int shard) {
  Shedder::set_obs(o, shard);
  inner_->set_obs(o, shard);
}

// --- Registry ----------------------------------------------------------

CEPSHED_SHEDDER_LINK_TOKEN(Hybrid)

namespace {

Status NeedModel(const char* name, const ShedderContext& ctx) {
  if (ctx.model == nullptr || !ctx.model->trained()) {
    return Status::InvalidArgument(
        std::string("shedder \"") + name +
        "\" needs a trained cost model (construct it through a prepared "
        "harness)");
  }
  return Status::OK();
}

/// Latency-bound hybrid family: a HybridShedder over a per-run copy of the
/// context's cost model. The default seed stays HybridOptions' own (1234),
/// not the context seed — the harness historically never overrode it for
/// the bound mode, and byte-identical parity with that path matters for
/// the differential tests.
Result<std::unique_ptr<Shedder>> MakeHybridBound(const ShedderConfig& config,
                                                 const ShedderContext& ctx,
                                                 const ResolvedMode& mode,
                                                 bool enable_input,
                                                 bool enable_state) {
  HybridOptions opts;
  opts.theta = mode.theta;
  CEPSHED_ASSIGN_OR_RETURN(
      opts.trigger_delay,
      config.GetUint("delay", ctx.hybrid_trigger_delay));
  opts.enable_input = enable_input;
  opts.enable_state = enable_state;
  opts.solver = ctx.solver;
  if (ctx.utility_samples != nullptr) opts.utility_samples = *ctx.utility_samples;
  CEPSHED_ASSIGN_OR_RETURN(opts.seed, config.GetUint("seed", opts.seed));
  auto model = std::make_unique<CostModel>(*ctx.model);
  auto inner = std::make_unique<HybridShedder>(model.get(), opts);
  return std::unique_ptr<Shedder>(
      new ModelOwningShedder(std::move(model), std::move(inner)));
}

const ShedderRegistrar kHybridRegistrar{
    "hybrid", [](const ShedderConfig& config,
                 const ShedderContext& ctx) -> Result<std::unique_ptr<Shedder>> {
      CEPSHED_RETURN_NOT_OK(
          config.ExpectKeys({"theta", "fraction", "delay", "period", "seed"}));
      CEPSHED_ASSIGN_OR_RETURN(ResolvedMode mode, ResolveMode(config, ctx));
      CEPSHED_RETURN_NOT_OK(NeedModel("hybrid", ctx));
      if (mode.fixed()) {
        if (ctx.train == nullptr) {
          return Status::InvalidArgument(
              "shedder \"hybrid\" in fixed-ratio mode needs the training "
              "stream for threshold calibration (construct it through a "
              "prepared harness)");
        }
        // Split the ratio evenly between the input and state sides, the
        // same way the harness's fixed-ratio grid always has.
        const double half = mode.fraction * 0.5;
        auto model = std::make_unique<CostModel>(*ctx.model);
        const auto [thr, tie] = ComputeUtilityThreshold(*model, *ctx.train, half);
        auto inner = std::make_unique<HybridFixedShedder>(
            model.get(), thr, tie, half, mode.period, mode.seed, mode.seed + 1);
        return std::unique_ptr<Shedder>(
            new ModelOwningShedder(std::move(model), std::move(inner)));
      }
      if (!mode.bound()) {
        return Status::InvalidArgument(
            "shedder \"hybrid\" needs a latency bound (theta=...) or a "
            "fixed ratio (fraction=...)");
      }
      return MakeHybridBound(config, ctx, mode, /*enable_input=*/true,
                             /*enable_state=*/true);
    }};

const ShedderRegistrar kHyiRegistrar{
    "hyi", [](const ShedderConfig& config,
              const ShedderContext& ctx) -> Result<std::unique_ptr<Shedder>> {
      CEPSHED_RETURN_NOT_OK(
          config.ExpectKeys({"theta", "fraction", "delay", "seed"}));
      CEPSHED_ASSIGN_OR_RETURN(ResolvedMode mode, ResolveMode(config, ctx));
      CEPSHED_RETURN_NOT_OK(NeedModel("hyi", ctx));
      if (mode.fixed()) {
        if (ctx.train == nullptr) {
          return Status::InvalidArgument(
              "shedder \"hyi\" in fixed-ratio mode needs the training "
              "stream for threshold calibration (construct it through a "
              "prepared harness)");
        }
        auto model = std::make_unique<CostModel>(*ctx.model);
        const auto [thr, tie] =
            ComputeUtilityThreshold(*model, *ctx.train, mode.fraction);
        auto inner =
            std::make_unique<HybridFixedInputShedder>(model.get(), thr, tie, mode.seed);
        return std::unique_ptr<Shedder>(
            new ModelOwningShedder(std::move(model), std::move(inner)));
      }
      if (!mode.bound()) {
        return Status::InvalidArgument(
            "shedder \"hyi\" needs a latency bound (theta=...) or a fixed "
            "ratio (fraction=...)");
      }
      return MakeHybridBound(config, ctx, mode, /*enable_input=*/true,
                             /*enable_state=*/false);
    }};

const ShedderRegistrar kHysRegistrar{
    "hys", [](const ShedderConfig& config,
              const ShedderContext& ctx) -> Result<std::unique_ptr<Shedder>> {
      CEPSHED_RETURN_NOT_OK(
          config.ExpectKeys({"theta", "fraction", "delay", "period", "seed"}));
      CEPSHED_ASSIGN_OR_RETURN(ResolvedMode mode, ResolveMode(config, ctx));
      CEPSHED_RETURN_NOT_OK(NeedModel("hys", ctx));
      if (mode.fixed()) {
        auto model = std::make_unique<CostModel>(*ctx.model);
        auto inner = std::make_unique<HybridFixedStateShedder>(
            model.get(), mode.fraction, mode.period, mode.seed);
        return std::unique_ptr<Shedder>(
            new ModelOwningShedder(std::move(model), std::move(inner)));
      }
      if (!mode.bound()) {
        return Status::InvalidArgument(
            "shedder \"hys\" needs a latency bound (theta=...) or a fixed "
            "ratio (fraction=...)");
      }
      return MakeHybridBound(config, ctx, mode, /*enable_input=*/false,
                             /*enable_state=*/true);
    }};

}  // namespace

}  // namespace cepshed
