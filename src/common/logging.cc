// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/common/logging.h"

#include <atomic>
#include <cstdio>

namespace cepshed {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) > g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[cepshed %s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace cepshed
