// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace cepshed {
namespace obs {
namespace {

void AppendNumber(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out->append(buf);
}

void AppendCounterSeries(std::string* out, const char* name, const char* help,
                         const RegistrySnapshot& snap,
                         uint64_t ShardObsSnapshot::*field) {
  out->append("# HELP ").append(name).append(" ").append(help).append("\n");
  out->append("# TYPE ").append(name).append(" counter\n");
  char buf[160];
  for (size_t i = 0; i < snap.shards.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s{shard=\"%zu\"} %" PRIu64 "\n", name, i,
                  snap.shards[i].*field);
    out->append(buf);
  }
}

void AppendGaugeSeries(std::string* out, const char* name, const char* help,
                       const RegistrySnapshot& snap,
                       int64_t ShardObsSnapshot::*field) {
  out->append("# HELP ").append(name).append(" ").append(help).append("\n");
  out->append("# TYPE ").append(name).append(" gauge\n");
  char buf[160];
  for (size_t i = 0; i < snap.shards.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s{shard=\"%zu\"} %" PRId64 "\n", name, i,
                  snap.shards[i].*field);
    out->append(buf);
  }
}

void AppendHistogram(std::string* out, const char* name, const char* help,
                     const RegistrySnapshot& snap,
                     HistogramSnapshot ShardObsSnapshot::*field) {
  out->append("# HELP ").append(name).append(" ").append(help).append("\n");
  out->append("# TYPE ").append(name).append(" histogram\n");
  char buf[200];
  for (size_t i = 0; i < snap.shards.size(); ++i) {
    const HistogramSnapshot& h = snap.shards[i].*field;
    uint64_t cumulative = 0;
    // Sparse cumulative rendering: one `le` line per occupied bucket (its
    // upper bound) plus the mandatory +Inf line.
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      cumulative += h.buckets[b];
      std::snprintf(buf, sizeof(buf), "%s_bucket{shard=\"%zu\",le=\"%.9g\"} %" PRIu64 "\n",
                    name, i, LogHistogram::BucketUpper(static_cast<int>(b)),
                    cumulative);
      out->append(buf);
    }
    std::snprintf(buf, sizeof(buf), "%s_bucket{shard=\"%zu\",le=\"+Inf\"} %" PRIu64 "\n",
                  name, i, h.count);
    out->append(buf);
    std::snprintf(buf, sizeof(buf), "%s_sum{shard=\"%zu\"} ", name, i);
    out->append(buf);
    AppendNumber(out, h.sum);
    out->append("\n");
    std::snprintf(buf, sizeof(buf), "%s_count{shard=\"%zu\"} %" PRIu64 "\n", name, i,
                  h.count);
    out->append(buf);
  }
}

void AppendJsonHistogram(std::ostringstream* out, const char* name,
                         const HistogramSnapshot& h) {
  *out << "\"" << name << "\":{\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"max\":" << h.max << ",\"p50\":" << h.Quantile(0.50)
       << ",\"p95\":" << h.Quantile(0.95) << ",\"p99\":" << h.Quantile(0.99)
       << "}";
}

void AppendJsonShard(std::ostringstream* out, const ShardObsSnapshot& s) {
  *out << "{\"events_routed\":" << s.events_routed
       << ",\"events_processed\":" << s.events_processed
       << ",\"events_dropped_shedder\":" << s.events_dropped_shedder
       << ",\"events_dropped_guard\":" << s.events_dropped_guard
       << ",\"events_lost\":" << s.events_lost
       << ",\"matches_emitted\":" << s.matches_emitted
       << ",\"pms_shed\":" << s.pms_shed
       << ",\"shed_triggers\":" << s.shed_triggers
       << ",\"shed_adapt_folds\":" << s.shed_adapt_folds
       << ",\"pms_ranked\":" << s.pms_ranked
       << ",\"knapsack_solves\":" << s.knapsack_solves
       << ",\"guard_transitions\":" << s.guard_transitions
       << ",\"queue_push_timeouts\":" << s.queue_push_timeouts
       << ",\"migrations_total\":" << s.migrations_total
       << ",\"migrated_pms\":" << s.migrated_pms
       << ",\"migrated_bytes\":" << s.migrated_bytes
       << ",\"expiry_reaped\":" << s.expiry_reaped
       << ",\"wheel_cascades\":" << s.wheel_cascades
       << ",\"guard_level\":" << s.guard_level
       << ",\"live_shards\":" << s.live_shards
       << ",\"arena_legacy_bytes\":" << s.arena_legacy_bytes
       << ",\"state_bytes\":" << s.state_bytes
       << ",\"arena_live_bytes\":" << s.arena_live_bytes
       << ",\"arena_capacity_bytes\":" << s.arena_capacity_bytes
       << ",\"flat_cache_entries\":" << s.flat_cache_entries
       << ",\"wheel_entries\":" << s.wheel_entries
       << ",\"shed_by_class\":[";
  for (int c = 0; c < ShardObs::kNumClasses; ++c) {
    if (c > 0) *out << ",";
    *out << s.shed_by_class[c];
  }
  *out << "],";
  AppendJsonHistogram(out, "event_cost", s.event_cost);
  *out << ",";
  AppendJsonHistogram(out, "migration_us", s.migration_us);
  *out << ",";
  AppendJsonHistogram(out, "queue_wait_us", s.queue_wait_us);
  *out << ",";
  AppendJsonHistogram(out, "shed_trigger_us", s.shed_trigger_us);
  *out << ",";
  AppendJsonHistogram(out, "knapsack_us", s.knapsack_us);
  *out << ",\"audit\":[";
  for (size_t i = 0; i < s.audit.size(); ++i) {
    const AuditEntry& e = s.audit[i];
    if (i > 0) *out << ",";
    *out << "{\"index\":" << e.index << ",\"timestamp\":" << e.timestamp
         << ",\"kind\":\"" << AuditKindName(e.kind)
         << "\",\"shard\":" << static_cast<int>(e.shard)
         << ",\"class\":" << e.class_label << ",\"mu\":" << e.mu
         << ",\"detail\":" << e.detail << "}";
  }
  *out << "]}";
}

}  // namespace

std::string RenderPrometheus(const RegistrySnapshot& snap) {
  std::string out;
  out.reserve(16 * 1024);
  AppendCounterSeries(&out, "cepshed_events_routed_total",
                      "Events delivered to the shard",
                      snap, &ShardObsSnapshot::events_routed);
  AppendCounterSeries(&out, "cepshed_events_processed_total",
                      "Events the engine fully processed", snap,
                      &ShardObsSnapshot::events_processed);
  AppendCounterSeries(&out, "cepshed_events_dropped_shedder_total",
                      "Events discarded by the shedding strategy (rho_I)", snap,
                      &ShardObsSnapshot::events_dropped_shedder);
  AppendCounterSeries(&out, "cepshed_events_dropped_guard_total",
                      "Events discarded by the overload guard", snap,
                      &ShardObsSnapshot::events_dropped_guard);
  AppendCounterSeries(&out, "cepshed_events_lost_total",
                      "Events lost to worker death or abandonment", snap,
                      &ShardObsSnapshot::events_lost);
  AppendCounterSeries(&out, "cepshed_matches_emitted_total",
                      "Complete matches emitted", snap,
                      &ShardObsSnapshot::matches_emitted);
  AppendCounterSeries(&out, "cepshed_pms_shed_total",
                      "Partial matches discarded by rho_S", snap,
                      &ShardObsSnapshot::pms_shed);
  AppendCounterSeries(&out, "cepshed_shed_triggers_total",
                      "Shedder re-plan activations", snap,
                      &ShardObsSnapshot::shed_triggers);
  AppendCounterSeries(&out, "cepshed_shed_adapt_folds_total",
                      "Online-adaptation folds executed by learned shedders",
                      snap, &ShardObsSnapshot::shed_adapt_folds);
  AppendCounterSeries(&out, "cepshed_pms_ranked_total",
                      "Partial matches scored by rank-based state shedding",
                      snap, &ShardObsSnapshot::pms_ranked);
  AppendCounterSeries(&out, "cepshed_knapsack_solves_total",
                      "Knapsack shedding-set solves", snap,
                      &ShardObsSnapshot::knapsack_solves);
  AppendCounterSeries(&out, "cepshed_guard_transitions_total",
                      "Overload-guard ladder level changes", snap,
                      &ShardObsSnapshot::guard_transitions);
  AppendCounterSeries(&out, "cepshed_queue_push_timeouts_total",
                      "Router pushes that timed out on a full shard queue", snap,
                      &ShardObsSnapshot::queue_push_timeouts);
  AppendCounterSeries(&out, "cepshed_migrations_total",
                      "Elastic reshard operations executed", snap,
                      &ShardObsSnapshot::migrations_total);
  AppendCounterSeries(&out, "cepshed_migrated_pms_total",
                      "Partial matches migrated off this shard", snap,
                      &ShardObsSnapshot::migrated_pms);
  AppendCounterSeries(&out, "cepshed_migrated_bytes_total",
                      "Estimated bytes of partial-match state migrated off "
                      "this shard",
                      snap, &ShardObsSnapshot::migrated_bytes);
  AppendCounterSeries(&out, "cepshed_expiry_reaped_total",
                      "Partial matches killed by the deadline-ordered "
                      "expiry reap (timing wheel)",
                      snap, &ShardObsSnapshot::expiry_reaped);
  AppendCounterSeries(&out, "cepshed_wheel_cascades_total",
                      "Expiry-wheel cascade re-placements while advancing",
                      snap, &ShardObsSnapshot::wheel_cascades);

  out.append(
      "# HELP cepshed_shed_by_class_total Shed decisions per event/pm class\n"
      "# TYPE cepshed_shed_by_class_total counter\n");
  char buf[160];
  for (size_t i = 0; i < snap.shards.size(); ++i) {
    for (int c = 0; c < ShardObs::kNumClasses; ++c) {
      std::snprintf(buf, sizeof(buf),
                    "cepshed_shed_by_class_total{shard=\"%zu\",class=\"%d\"} %" PRIu64
                    "\n",
                    i, c, snap.shards[i].shed_by_class[c]);
      out.append(buf);
    }
  }

  out.append(
      "# HELP cepshed_guard_level Current overload-guard ladder level\n"
      "# TYPE cepshed_guard_level gauge\n");
  for (size_t i = 0; i < snap.shards.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "cepshed_guard_level{shard=\"%zu\"} %" PRId64 "\n",
                  i, snap.shards[i].guard_level);
    out.append(buf);
  }

  AppendGaugeSeries(&out, "cepshed_state_bytes",
                    "Estimated bytes of live partial-match state", snap,
                    &ShardObsSnapshot::state_bytes);
  AppendGaugeSeries(&out, "cepshed_arena_live_bytes",
                    "Live binding-arena chain-node bytes", snap,
                    &ShardObsSnapshot::arena_live_bytes);
  AppendGaugeSeries(&out, "cepshed_arena_capacity_bytes",
                    "Binding-arena bytes held from the allocator", snap,
                    &ShardObsSnapshot::arena_capacity_bytes);
  AppendGaugeSeries(&out, "cepshed_flat_cache_entries",
                    "Engine flatten-cache population", snap,
                    &ShardObsSnapshot::flat_cache_entries);
  AppendGaugeSeries(&out, "cepshed_wheel_entries",
                    "Matches currently queued on the expiry wheel", snap,
                    &ShardObsSnapshot::wheel_entries);
  AppendGaugeSeries(&out, "cepshed_live_shards",
                    "Current number of live (routable) shards", snap,
                    &ShardObsSnapshot::live_shards);
  AppendGaugeSeries(&out, "cepshed_arena_legacy_bytes",
                    "Live chain-node bytes still held by retired shards' "
                    "arenas",
                    snap, &ShardObsSnapshot::arena_legacy_bytes);

  AppendHistogram(&out, "cepshed_event_cost",
                  "Per-event engine latency in cost units", snap,
                  &ShardObsSnapshot::event_cost);
  AppendHistogram(&out, "cepshed_migration_microseconds",
                  "Stop-the-world pause of one elastic reshard", snap,
                  &ShardObsSnapshot::migration_us);
  AppendHistogram(&out, "cepshed_queue_wait_microseconds",
                  "Router wait on a full shard queue", snap,
                  &ShardObsSnapshot::queue_wait_us);
  AppendHistogram(&out, "cepshed_shed_trigger_microseconds",
                  "Wall-clock duration of shedder re-plans", snap,
                  &ShardObsSnapshot::shed_trigger_us);
  AppendHistogram(&out, "cepshed_knapsack_microseconds",
                  "Wall-clock duration of knapsack solves", snap,
                  &ShardObsSnapshot::knapsack_us);

  out.append(
      "# HELP cepshed_audit_entries_total Shed/guard decisions recorded in "
      "the audit ring\n"
      "# TYPE cepshed_audit_entries_total counter\n");
  for (size_t i = 0; i < snap.shards.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "cepshed_audit_entries_total{shard=\"%zu\"} %zu\n",
                  i, snap.shards[i].audit.size());
    out.append(buf);
  }
  return out;
}

std::string RenderJson(const RegistrySnapshot& snap) {
  std::ostringstream out;
  out << "{\"shards\":[";
  for (size_t i = 0; i < snap.shards.size(); ++i) {
    if (i > 0) out << ",";
    AppendJsonShard(&out, snap.shards[i]);
  }
  out << "],\"total\":";
  AppendJsonShard(&out, snap.total);
  out << "}";
  return out.str();
}

bool WriteMetricsFile(const std::string& path, const RegistrySnapshot& snap) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  file << (json ? RenderJson(snap) : RenderPrometheus(snap));
  return static_cast<bool>(file);
}

}  // namespace obs
}  // namespace cepshed
