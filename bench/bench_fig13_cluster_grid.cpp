// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Fig. 13 of the paper: sensitivity of the cost model estimation to the
// number of clusters. Q1 has two intermediate states; the cluster counts
// of both are varied (the paper scans 2-10 each; we scan {2,4,6,8,10} to
// bound the grid's runtime) under a 50% average-latency bound, reporting
// the recall heatmap.

#include "bench/bench_util.h"

using namespace cepshed;
using namespace cepshed::bench;

int main() {
  Header("Fig. 13", "recall over cluster counts (state1 x state2), DS1/Q1, 50% avg bound",
         "clusters_state1,clusters_state2,recall");
  const std::vector<int> grid = {2, 4, 6, 8, 10};
  for (int k1 : grid) {
    for (int k2 : grid) {
      Ds1Options gen;
      gen.num_events = 15000;
      HarnessOptions opts;
      opts.cost_model.fixed_k_per_state = {1, k1, k2};
      opts.cost_model.tree_max_depth = 10;  // the paper's §VI-G setting
      auto exp = PrepareDs1(*queries::Q1("8ms"), gen, opts);
      const ExperimentResult r = exp.harness->RunBound(StrategyKind::kHybrid, 0.5);
      std::printf("%d,%d,%.4f\n", k1, k2, r.quality.recall);
    }
  }
  return 0;
}
