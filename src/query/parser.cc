// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/query/parser.h"

#include <climits>

#include "src/query/lexer.h"

namespace cepshed {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Parse() {
    Query query;
    CEPSHED_RETURN_NOT_OK(ExpectKeyword("PATTERN"));
    CEPSHED_RETURN_NOT_OK(ExpectKeyword("SEQ"));
    CEPSHED_RETURN_NOT_OK(Expect(TokenKind::kLParen, "("));
    while (true) {
      CEPSHED_ASSIGN_OR_RETURN(PatternElement elem, ParseElement());
      query.elements.push_back(std::move(elem));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    CEPSHED_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));

    if (IsKeyword(Peek(), "WHERE")) {
      Advance();
      // Top-level conjunction becomes the predicate list.
      while (true) {
        CEPSHED_ASSIGN_OR_RETURN(ExprPtr pred, ParseCmp());
        query.predicates.push_back(std::move(pred));
        if (IsKeyword(Peek(), "AND")) {
          Advance();
          continue;
        }
        break;
      }
    }

    if (IsKeyword(Peek(), "POLICY")) {
      Advance();
      const Token& t = Peek();
      if (IsKeyword(t, "any") || IsKeyword(t, "skip_till_any_match")) {
        query.policy = SelectionPolicy::kSkipTillAnyMatch;
      } else if (IsKeyword(t, "next") || IsKeyword(t, "skip_till_next_match")) {
        query.policy = SelectionPolicy::kSkipTillNextMatch;
      } else if (IsKeyword(t, "strict") || IsKeyword(t, "contiguity")) {
        query.policy = SelectionPolicy::kStrictContiguity;
      } else {
        return Err("unknown selection policy '" + t.text + "'");
      }
      Advance();
    }

    CEPSHED_RETURN_NOT_OK(ExpectKeyword("WITHIN"));
    // Either a duration (8ms, 1h) or an event-count window (1000 EVENTS).
    if (Peek().kind == TokenKind::kInt && IsKeyword(Peek(1), "EVENTS")) {
      query.count_window = static_cast<uint64_t>(Advance().int_value);
      Advance();  // EVENTS
      // Time slices etc. still need a duration scale; callers replaying
      // one event per time unit get an equivalent window.
      query.window = static_cast<Duration>(query.count_window);
    } else {
      CEPSHED_ASSIGN_OR_RETURN(query.window, ParseDuration());
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Err("trailing input after WITHIN clause");
    }
    return query;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " (near offset " + std::to_string(Peek().offset) + ")");
  }

  Status Expect(TokenKind kind, const char* what) {
    if (Peek().kind != kind) return Err(std::string("expected '") + what + "'");
    Advance();
    return Status::OK();
  }

  Status ExpectKeyword(const char* kw) {
    if (!IsKeyword(Peek(), kw)) return Err(std::string("expected keyword ") + kw);
    Advance();
    return Status::OK();
  }

  Result<PatternElement> ParseElement() {
    PatternElement elem;
    if (Peek().kind == TokenKind::kBang || IsKeyword(Peek(), "NOT")) {
      elem.negated = true;
      Advance();
    }
    if (Peek().kind != TokenKind::kIdent) return Err("expected event type name");
    elem.event_type = Advance().text;
    if (Peek().kind == TokenKind::kPlus) {
      Advance();
      elem.kleene = true;
      elem.min_reps = 1;
      elem.max_reps = INT_MAX;
      if (Peek().kind == TokenKind::kLBrace) {
        // Optional repetition bounds: {min}, {min,}, {min,max}.
        Advance();
        if (Peek().kind != TokenKind::kInt) return Err("expected Kleene min bound");
        elem.min_reps = static_cast<int>(Advance().int_value);
        elem.max_reps = elem.min_reps;
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          elem.max_reps = INT_MAX;
          if (Peek().kind == TokenKind::kInt) {
            elem.max_reps = static_cast<int>(Advance().int_value);
          }
        }
        CEPSHED_RETURN_NOT_OK(Expect(TokenKind::kRBrace, "}"));
      }
    }
    if (Peek().kind != TokenKind::kIdent) return Err("expected pattern variable name");
    elem.variable = Advance().text;
    if (Peek().kind == TokenKind::kLBracket) {
      // Array marker `a[]` on Kleene variables.
      Advance();
      CEPSHED_RETURN_NOT_OK(Expect(TokenKind::kRBracket, "]"));
      if (!elem.kleene) return Err("array marker on non-Kleene variable");
    }
    return elem;
  }

  Result<ExprPtr> ParseDisj() {
    CEPSHED_ASSIGN_OR_RETURN(ExprPtr lhs, ParseConj());
    if (!IsKeyword(Peek(), "OR")) return lhs;
    std::vector<ExprPtr> children = {std::move(lhs)};
    while (IsKeyword(Peek(), "OR")) {
      Advance();
      CEPSHED_ASSIGN_OR_RETURN(ExprPtr rhs, ParseConj());
      children.push_back(std::move(rhs));
    }
    return Expr::Or(std::move(children));
  }

  Result<ExprPtr> ParseConj() {
    CEPSHED_ASSIGN_OR_RETURN(ExprPtr lhs, ParseCmp());
    if (!IsKeyword(Peek(), "AND")) return lhs;
    std::vector<ExprPtr> children = {std::move(lhs)};
    while (IsKeyword(Peek(), "AND")) {
      Advance();
      CEPSHED_ASSIGN_OR_RETURN(ExprPtr rhs, ParseCmp());
      children.push_back(std::move(rhs));
    }
    return Expr::And(std::move(children));
  }

  Result<ExprPtr> ParseCmp() {
    if (IsKeyword(Peek(), "NOT")) {
      Advance();
      CEPSHED_ASSIGN_OR_RETURN(ExprPtr inner, ParseCmp());
      return Expr::Not(std::move(inner));
    }
    CEPSHED_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdd());
    const TokenKind k = Peek().kind;
    if (k == TokenKind::kIn || IsKeyword(Peek(), "IN")) {
      Advance();
      CEPSHED_RETURN_NOT_OK(Expect(TokenKind::kLBrace, "{"));
      std::vector<Value> values;
      while (true) {
        CEPSHED_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        values.push_back(std::move(v));
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      CEPSHED_RETURN_NOT_OK(Expect(TokenKind::kRBrace, "}"));
      return Expr::InSet(std::move(lhs), std::move(values));
    }
    CmpOp op;
    switch (k) {
      case TokenKind::kEq: op = CmpOp::kEq; break;
      case TokenKind::kNe: op = CmpOp::kNe; break;
      case TokenKind::kLt: op = CmpOp::kLt; break;
      case TokenKind::kLe: op = CmpOp::kLe; break;
      case TokenKind::kGt: op = CmpOp::kGt; break;
      case TokenKind::kGe: op = CmpOp::kGe; break;
      default:
        return lhs;  // bare expression (boolean context)
    }
    Advance();
    CEPSHED_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdd());
    return Expr::Compare(op, std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> ParseAdd() {
    CEPSHED_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMul());
    while (Peek().kind == TokenKind::kPlus || Peek().kind == TokenKind::kMinus) {
      const BinOp op = Advance().kind == TokenKind::kPlus ? BinOp::kAdd : BinOp::kSub;
      CEPSHED_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMul());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMul() {
    CEPSHED_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (Peek().kind == TokenKind::kStar || Peek().kind == TokenKind::kSlash ||
           Peek().kind == TokenKind::kPercent) {
      const TokenKind k = Advance().kind;
      const BinOp op = k == TokenKind::kStar
                           ? BinOp::kMul
                           : (k == TokenKind::kSlash ? BinOp::kDiv : BinOp::kMod);
      CEPSHED_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (Peek().kind == TokenKind::kMinus) {
      Advance();
      CEPSHED_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
      return Expr::Binary(BinOp::kSub, Expr::Literal(Value(static_cast<int64_t>(0))),
                          std::move(inner));
    }
    return ParsePrimary();
  }

  Result<Value> ParseLiteral() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInt: {
        const int64_t v = t.int_value;
        Advance();
        return Value(v);
      }
      case TokenKind::kDouble: {
        const double v = t.double_value;
        Advance();
        return Value(v);
      }
      case TokenKind::kString: {
        std::string s = t.text;
        Advance();
        return Value(std::move(s));
      }
      case TokenKind::kMinus: {
        Advance();
        CEPSHED_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        if (v.type() == ValueType::kInt) return Value(-v.AsInt());
        if (v.type() == ValueType::kDouble) return Value(-v.AsDouble());
        return Err("cannot negate a string literal");
      }
      default:
        return Err("expected literal");
    }
  }

  // Parses an attribute reference starting at the current identifier.
  Result<ExprPtr> ParseAttrRef() {
    const std::string var = Advance().text;
    RefSelector selector = RefSelector::kSingle;
    if (Peek().kind == TokenKind::kLBracket) {
      Advance();
      const Token& sel = Peek();
      if (IsKeyword(sel, "i")) {
        Advance();
        if (Peek().kind == TokenKind::kPlus) {
          Advance();
          if (Peek().kind != TokenKind::kInt || Peek().int_value != 1) {
            return Err("only [i+1] iteration references are supported");
          }
          Advance();
          selector = RefSelector::kIterCurr;
        } else {
          selector = RefSelector::kIterPrev;
        }
      } else if (IsKeyword(sel, "first")) {
        Advance();
        selector = RefSelector::kFirst;
      } else if (IsKeyword(sel, "last")) {
        Advance();
        selector = RefSelector::kLast;
      } else {
        return Err("expected i, i+1, first, or last in [] selector");
      }
      CEPSHED_RETURN_NOT_OK(Expect(TokenKind::kRBracket, "]"));
    }
    CEPSHED_RETURN_NOT_OK(Expect(TokenKind::kDot, "."));
    if (Peek().kind != TokenKind::kIdent) return Err("expected attribute name");
    const std::string attr = Advance().text;
    return Expr::Attr(var, selector, attr);
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kInt || t.kind == TokenKind::kDouble ||
        t.kind == TokenKind::kString) {
      CEPSHED_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      return Expr::Literal(std::move(v));
    }
    if (t.kind == TokenKind::kLParen) {
      Advance();
      CEPSHED_ASSIGN_OR_RETURN(ExprPtr inner, ParseDisj());
      CEPSHED_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
      return inner;
    }
    if (t.kind != TokenKind::kIdent) return Err("expected expression");

    if (IsKeyword(t, "SQRT") || IsKeyword(t, "ABS")) {
      const FuncKind fn = IsKeyword(t, "SQRT") ? FuncKind::kSqrt : FuncKind::kAbs;
      Advance();
      CEPSHED_RETURN_NOT_OK(Expect(TokenKind::kLParen, "("));
      CEPSHED_ASSIGN_OR_RETURN(ExprPtr arg, ParseDisj());
      CEPSHED_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
      return Expr::Func(fn, std::move(arg));
    }

    if (IsKeyword(t, "AVG") || IsKeyword(t, "SUM") || IsKeyword(t, "MIN") ||
        IsKeyword(t, "MAX") || IsKeyword(t, "COUNT")) {
      AggKind agg = AggKind::kAvg;
      if (IsKeyword(t, "SUM")) agg = AggKind::kSum;
      if (IsKeyword(t, "MIN")) agg = AggKind::kMin;
      if (IsKeyword(t, "MAX")) agg = AggKind::kMax;
      if (IsKeyword(t, "COUNT")) agg = AggKind::kCount;
      const bool is_avg = IsKeyword(t, "AVG");
      Advance();
      CEPSHED_RETURN_NOT_OK(Expect(TokenKind::kLParen, "("));
      // Kleene aggregate form: VAR [] . ATTR
      if (Peek().kind == TokenKind::kIdent && Peek(1).kind == TokenKind::kLBracket &&
          Peek(2).kind == TokenKind::kRBracket) {
        const std::string var = Advance().text;
        Advance();  // [
        Advance();  // ]
        CEPSHED_RETURN_NOT_OK(Expect(TokenKind::kDot, "."));
        if (Peek().kind != TokenKind::kIdent) return Err("expected attribute name");
        const std::string attr = Advance().text;
        CEPSHED_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
        return Expr::Aggregate(agg, var, attr);
      }
      if (!is_avg) {
        return Err("SUM/MIN/MAX/COUNT require a Kleene argument var[].attr");
      }
      // n-ary AVG over scalar expressions (the paper's Q3).
      std::vector<ExprPtr> args;
      while (true) {
        CEPSHED_ASSIGN_OR_RETURN(ExprPtr arg, ParseDisj());
        args.push_back(std::move(arg));
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      CEPSHED_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
      return Expr::AvgN(std::move(args));
    }

    return ParseAttrRef();
  }

  Result<Duration> ParseDuration() {
    if (Peek().kind != TokenKind::kInt && Peek().kind != TokenKind::kDouble) {
      return Err("expected duration");
    }
    const Token num = Advance();
    const double amount =
        num.kind == TokenKind::kInt ? static_cast<double>(num.int_value) : num.double_value;
    if (Peek().kind != TokenKind::kIdent) return Err("expected duration unit");
    const Token unit = Advance();
    double factor;
    if (IsKeyword(unit, "us")) {
      factor = 1;
    } else if (IsKeyword(unit, "ms")) {
      factor = 1000;
    } else if (IsKeyword(unit, "s") || IsKeyword(unit, "sec")) {
      factor = 1000 * 1000;
    } else if (IsKeyword(unit, "m") || IsKeyword(unit, "min")) {
      factor = 60.0 * 1000 * 1000;
    } else if (IsKeyword(unit, "h")) {
      factor = 3600.0 * 1000 * 1000;
    } else {
      return Err("unknown duration unit '" + unit.text + "'");
    }
    return static_cast<Duration>(amount * factor);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  CEPSHED_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace cepshed
