// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Property tests for pointer stability and accounting of the shared-prefix
// partial-match store. Shedders, the cost model, and the audit trail all
// hold raw PartialMatch* across engine activity, so the store guarantees:
//
//  - a pointer to a *live* match is never invalidated by insertions,
//    state-based shedding, window eviction, or compaction;
//  - a killed match stays readable (Length, slot_end, tombstone) until the
//    next compaction even though its binding chain returned to the arena;
//  - the arena's live-node count always equals the number of distinct
//    chain nodes reachable from live matches — shared prefixes are never
//    double-counted and never freed while a sibling still needs them.
//
// The whole suite runs under AddressSanitizer in CI, so any stale read or
// premature chain free fails loudly rather than by luck.

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "src/cep/engine.h"
#include "src/cep/nfa.h"
#include "src/common/rng.h"
#include "src/query/parser.h"
#include "tests/test_util.h"

namespace cepshed {
namespace {

using testing::MakeAbcdSchema;
using testing::MakeEvent;

// Collects every chain node reachable from live matches and witnesses and
// cross-checks the arena's incremental accounting against it.
void CheckArenaInvariant(Engine* engine) {
  std::unordered_set<const BindingNode*> reachable;
  auto walk = [&](PartialMatch* pm) {
    for (const BindingNode* n = pm->tail(); n != nullptr; n = n->prev) {
      if (!reachable.insert(n).second) break;  // shared prefix already seen
    }
  };
  engine->store().ForEachAlive(walk);
  engine->store().ForEachAliveWitness(walk);
  ASSERT_EQ(reachable.size(), engine->store().arena().live_nodes());

  size_t fixed = 0;
  auto add_fixed = [&](PartialMatch* pm) {
    fixed += PartialMatchStore::FixedBytes(*pm);
  };
  engine->store().ForEachAlive(add_fixed);
  engine->store().ForEachAliveWitness(add_fixed);
  ASSERT_EQ(engine->store().ApproxLiveBytes(),
            fixed + reachable.size() * sizeof(BindingNode));
}

TEST(StoreStabilityTest, LivePointersSurviveSheddingEvictionAndCompaction) {
  Schema schema = MakeAbcdSchema();
  auto q = ParseQuery(
      "PATTERN SEQ(A a, A+{1,5} b[], B c) "
      "WHERE a.ID = b[i].ID AND a.ID = c.ID WITHIN 4ms");
  ASSERT_TRUE(q.ok());
  auto nfa = Nfa::Compile(*q, &schema);
  ASSERT_TRUE(nfa.ok()) << nfa.status();

  EngineOptions opts;
  opts.evict_interval = 7;          // frequent sweeps
  opts.compact_min_dead = 4;        // frequent compactions
  opts.compact_dead_fraction = 0.1;
  Engine engine(*nfa, opts);

  // Address of every match at creation, by id. For a live id the address
  // must never change; entries whose match died are pruned (compaction is
  // allowed to recycle those) and never dereferenced.
  std::unordered_map<uint64_t, const PartialMatch*> created_at;
  engine.set_pm_created_hook(
      [&](const PartialMatch& pm, const PartialMatch*) { created_at[pm.id] = &pm; });

  Rng rng(2026);
  std::vector<Match> out;
  Timestamp ts = 0;
  for (int step = 0; step < 600; ++step) {
    const uint64_t roll = rng.UniformInt(0, 9);
    const char* type = roll < 7 ? "A" : (roll < 9 ? "B" : "C");
    ts += rng.UniformInt(1, 300);
    engine.Process(MakeEvent(schema, type, ts, static_cast<uint64_t>(step),
                             static_cast<int64_t>(rng.UniformInt(1, 2)), 1),
                   &out);

    if (step % 13 == 5) engine.ShedLowestUtility(3, 0);
    if (step % 71 == 17) engine.Vacuum(ts);

    // Every live match must still sit exactly where it was created, with
    // an internally consistent chain.
    engine.store().ForEachAlive([&](PartialMatch* pm) {
      auto it = created_at.find(pm->id);
      ASSERT_NE(it, created_at.end());
      ASSERT_EQ(it->second, pm);
      uint32_t expect_depth = pm->Length();
      for (const BindingNode* n = pm->tail(); n != nullptr; n = n->prev) {
        ASSERT_EQ(n->depth, expect_depth--);
        ASSERT_GE(n->refs, 1u);
        ASSERT_NE(n->event, nullptr);
      }
      ASSERT_EQ(expect_depth, 0u);
      if (!pm->slot_end.empty()) {
        ASSERT_LE(pm->slot_end.back(), pm->Length());
      }
    });
    CheckArenaInvariant(&engine);

    if (step % 50 == 49) {
      // Prune dead ids so the map never holds a pointer compaction could
      // have recycled.
      std::unordered_set<uint64_t> alive_ids;
      engine.store().ForEachAlive(
          [&](PartialMatch* pm) { alive_ids.insert(pm->id); });
      for (auto it = created_at.begin(); it != created_at.end();) {
        it = alive_ids.count(it->first) ? std::next(it) : created_at.erase(it);
      }
    }
  }
  EXPECT_GT(engine.stats().pms_created, 100u);
}

TEST(StoreStabilityTest, KilledMatchStaysAuditableUntilCompaction) {
  Schema schema = MakeAbcdSchema();
  auto nfa = Nfa::Compile(testing::MakeQ1(Millis(8)), &schema);
  ASSERT_TRUE(nfa.ok());
  Engine engine(*nfa, EngineOptions{});
  std::vector<Match> out;
  engine.Process(MakeEvent(schema, "A", 0, 0, 1, 2), &out);
  engine.Process(MakeEvent(schema, "B", 10, 1, 1, 3), &out);

  PartialMatch* target = nullptr;
  engine.store().ForEachAlive([&](PartialMatch* pm) {
    if (pm->Length() == 2) target = pm;
  });
  ASSERT_NE(target, nullptr);
  const uint64_t id = target->id;

  engine.store().Kill(target);
  // The chain returned to the arena, but the audit surface is intact.
  EXPECT_FALSE(target->alive);
  EXPECT_EQ(target->id, id);
  EXPECT_EQ(target->Length(), 2u);
  EXPECT_EQ(target->slot_end.size(), 2u);
  EXPECT_EQ(target->tail(), nullptr);
  EXPECT_EQ(target->LastEvent(), nullptr);
}

}  // namespace
}  // namespace cepshed
