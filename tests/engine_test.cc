// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Matching semantics of the engine: sequencing, correlation predicates,
// windows, skip-till-any-match, Kleene closure, negation, aggregates.

#include "src/cep/engine.h"

#include <gtest/gtest.h>

#include <set>

#include "src/cep/nfa.h"
#include "src/query/parser.h"
#include "tests/test_util.h"

namespace cepshed {
namespace {

using testing::MakeAbcdSchema;
using testing::MakeEvent;
using testing::MakeQ1;
using testing::RunAll;

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : schema_(MakeAbcdSchema()) {}

  EventPtr Ev(const std::string& type, Timestamp ts, int64_t id, int64_t v) {
    return MakeEvent(schema_, type, ts, seq_++, id, v);
  }

  Schema schema_;
  uint64_t seq_ = 0;
};

TEST_F(EngineTest, SimpleSequenceMatches) {
  auto matches = RunAll(schema_, MakeQ1(),
                        {Ev("A", 0, 1, 2), Ev("B", 10, 1, 3), Ev("C", 20, 1, 5)});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].events.size(), 3u);
  EXPECT_EQ(matches[0].detected_at, 20);
}

TEST_F(EngineTest, PredicateIdMismatchBlocksMatch) {
  auto matches = RunAll(schema_, MakeQ1(),
                        {Ev("A", 0, 1, 2), Ev("B", 10, 2, 3), Ev("C", 20, 1, 5)});
  EXPECT_TRUE(matches.empty());
}

TEST_F(EngineTest, ArithmeticPredicateBlocksMismatchedSum) {
  auto matches = RunAll(schema_, MakeQ1(),
                        {Ev("A", 0, 1, 2), Ev("B", 10, 1, 3), Ev("C", 20, 1, 6)});
  EXPECT_TRUE(matches.empty());
}

TEST_F(EngineTest, OutOfOrderTypesDoNotMatch) {
  auto matches = RunAll(schema_, MakeQ1(),
                        {Ev("B", 0, 1, 3), Ev("A", 10, 1, 2), Ev("C", 20, 1, 5)});
  EXPECT_TRUE(matches.empty());
}

TEST_F(EngineTest, WindowExpiryBlocksLateCompletion) {
  // Window is 8ms = 8000us; C arrives 9000us after A.
  auto matches = RunAll(schema_, MakeQ1(Millis(8)),
                        {Ev("A", 0, 1, 2), Ev("B", 10, 1, 3), Ev("C", 9000, 1, 5)});
  EXPECT_TRUE(matches.empty());
}

TEST_F(EngineTest, CompletionExactlyAtWindowBoundaryMatches) {
  auto matches = RunAll(schema_, MakeQ1(Millis(8)),
                        {Ev("A", 0, 1, 2), Ev("B", 10, 1, 3), Ev("C", 8000, 1, 5)});
  EXPECT_EQ(matches.size(), 1u);
}

TEST_F(EngineTest, SkipTillAnyMatchEnumeratesAllCombinations) {
  // 2 As x 2 Bs x 2 Cs, all compatible: 8 matches.
  std::vector<EventPtr> events;
  events.push_back(Ev("A", 0, 1, 2));
  events.push_back(Ev("A", 1, 1, 2));
  events.push_back(Ev("B", 10, 1, 3));
  events.push_back(Ev("B", 11, 1, 3));
  events.push_back(Ev("C", 20, 1, 5));
  events.push_back(Ev("C", 21, 1, 5));
  auto matches = RunAll(schema_, MakeQ1(), events);
  EXPECT_EQ(matches.size(), 8u);
  // All matches distinct.
  std::set<std::string> keys;
  for (const auto& m : matches) keys.insert(m.Key());
  EXPECT_EQ(keys.size(), 8u);
}

TEST_F(EngineTest, IndexAndScanProduceIdenticalMatches) {
  std::vector<EventPtr> events;
  for (int i = 0; i < 200; ++i) {
    const int64_t id = i % 7;
    const int64_t v = i % 9 + 1;
    const char* type = i % 3 == 0 ? "A" : (i % 3 == 1 ? "B" : "C");
    events.push_back(Ev(type, i * 10, id, v));
  }
  EngineOptions with_index;
  with_index.use_join_index = true;
  EngineOptions no_index;
  no_index.use_join_index = false;

  auto m1 = RunAll(schema_, MakeQ1(), events, with_index);
  auto m2 = RunAll(schema_, MakeQ1(), events, no_index);
  std::set<std::string> k1, k2;
  for (const auto& m : m1) k1.insert(m.Key());
  for (const auto& m : m2) k2.insert(m.Key());
  EXPECT_EQ(k1, k2);
  EXPECT_FALSE(k1.empty());
}

// --- Kleene closure ---------------------------------------------------------

Query MakeKleeneQuery(int min_reps, int max_reps, Duration window = Millis(8)) {
  // SEQ(A+ a[], B b) WHERE a[i+1].V = a[i].V AND a[last].ID = b.ID
  Query q;
  q.name = "kleene";
  q.elements = {
      {"a", "A", -1, true, false, min_reps, max_reps},
      {"b", "B", -1, false, false, 1, 1},
  };
  using E = Expr;
  q.predicates.push_back(E::Compare(CmpOp::kEq,
                                    E::Attr("a", RefSelector::kIterCurr, "V"),
                                    E::Attr("a", RefSelector::kIterPrev, "V")));
  q.predicates.push_back(E::Compare(CmpOp::kEq, E::Attr("a", RefSelector::kLast, "ID"),
                                    E::Attr("b", RefSelector::kSingle, "ID")));
  q.window = window;
  return q;
}

TEST_F(EngineTest, KleeneEnumeratesAllSubsequences) {
  // Three As with equal V, one B: subsequences of the As that end anywhere
  // and satisfy a[i+1].V=a[i].V — skip-till-any-match enumerates every
  // non-empty subsequence: 2^3 - 1 = 7 matches.
  std::vector<EventPtr> events = {
      Ev("A", 0, 1, 5),
      Ev("A", 1, 1, 5),
      Ev("A", 2, 1, 5),
      Ev("B", 10, 1, 9),
  };
  auto matches = RunAll(schema_, MakeKleeneQuery(1, 100), events);
  EXPECT_EQ(matches.size(), 7u);
}

TEST_F(EngineTest, KleeneMinRepsFiltersShortMatches) {
  std::vector<EventPtr> events = {
      Ev("A", 0, 1, 5),
      Ev("A", 1, 1, 5),
      Ev("A", 2, 1, 5),
      Ev("B", 10, 1, 9),
  };
  // min 2: subsequences of length >= 2: C(3,2) + C(3,3) = 4.
  auto matches = RunAll(schema_, MakeKleeneQuery(2, 100), events);
  EXPECT_EQ(matches.size(), 4u);
}

TEST_F(EngineTest, KleeneMaxRepsCapsLength) {
  std::vector<EventPtr> events = {
      Ev("A", 0, 1, 5),
      Ev("A", 1, 1, 5),
      Ev("A", 2, 1, 5),
      Ev("B", 10, 1, 9),
  };
  // max 1: exactly the three singleton subsequences.
  auto matches = RunAll(schema_, MakeKleeneQuery(1, 1), events);
  EXPECT_EQ(matches.size(), 3u);
}

TEST_F(EngineTest, KleeneIterationPredicateFiltersChains) {
  // V values 5,5,6: chains with equal consecutive V.
  std::vector<EventPtr> events = {
      Ev("A", 0, 1, 5),
      Ev("A", 1, 1, 5),
      Ev("A", 2, 1, 6),
      Ev("B", 10, 1, 9),
  };
  // Valid a[] bindings: {1},{2},{3},{1,2}: 4 matches.
  auto matches = RunAll(schema_, MakeKleeneQuery(1, 100), events);
  EXPECT_EQ(matches.size(), 4u);
}

TEST_F(EngineTest, TrailingKleeneEmitsOnEachExtension) {
  // SEQ(B b, A+ a[]) — trailing Kleene emits every valid prefix.
  Query q;
  q.name = "trailing";
  q.elements = {
      {"b", "B", -1, false, false, 1, 1},
      {"a", "A", -1, true, false, 1, 100},
  };
  q.predicates.push_back(Expr::Compare(CmpOp::kEq,
                                       Expr::Attr("b", RefSelector::kSingle, "ID"),
                                       Expr::Attr("a", RefSelector::kIterCurr, "ID")));
  q.window = Millis(8);
  std::vector<EventPtr> events = {
      Ev("B", 0, 1, 0),
      Ev("A", 1, 1, 1),
      Ev("A", 2, 1, 2),
  };
  auto matches = RunAll(schema_, q, events);
  // a[] in { {e1}, {e2}, {e1,e2} } = 3 matches.
  EXPECT_EQ(matches.size(), 3u);
}

// --- Negation ---------------------------------------------------------------

Query MakeNegationQuery(Duration window = Millis(8)) {
  // SEQ(A a, !B b, C c) WHERE a.ID=c.ID AND b.ID=a.ID
  Query q;
  q.name = "neg";
  q.elements = {
      {"a", "A", -1, false, false, 1, 1},
      {"b", "B", -1, false, true, 1, 1},
      {"c", "C", -1, false, false, 1, 1},
  };
  using E = Expr;
  q.predicates.push_back(E::Compare(CmpOp::kEq, E::Attr("a", RefSelector::kSingle, "ID"),
                                    E::Attr("c", RefSelector::kSingle, "ID")));
  q.predicates.push_back(E::Compare(CmpOp::kEq, E::Attr("b", RefSelector::kSingle, "ID"),
                                    E::Attr("a", RefSelector::kSingle, "ID")));
  q.window = window;
  return q;
}

TEST_F(EngineTest, NegationVetoesMatchWithInterveningEvent) {
  auto matches = RunAll(schema_, MakeNegationQuery(),
                        {Ev("A", 0, 1, 1), Ev("B", 5, 1, 1), Ev("C", 10, 1, 1)});
  EXPECT_TRUE(matches.empty());
}

TEST_F(EngineTest, NegationIgnoresNonMatchingWitness) {
  // B with a different ID does not veto.
  auto matches = RunAll(schema_, MakeNegationQuery(),
                        {Ev("A", 0, 1, 1), Ev("B", 5, 2, 1), Ev("C", 10, 1, 1)});
  EXPECT_EQ(matches.size(), 1u);
}

TEST_F(EngineTest, NegationIgnoresWitnessOutsideInterval) {
  // B before A does not veto.
  auto matches = RunAll(schema_, MakeNegationQuery(),
                        {Ev("B", 0, 1, 1), Ev("A", 5, 1, 1), Ev("C", 10, 1, 1)});
  EXPECT_EQ(matches.size(), 1u);
}

TEST_F(EngineTest, SheddingWitnessProducesFalsePositive) {
  // The mechanism behind the paper's Fig. 14: discarding witness state
  // turns vetoed candidates into (false positive) matches.
  Query q = MakeNegationQuery();
  auto nfa = Nfa::Compile(q, &schema_);
  ASSERT_TRUE(nfa.ok());
  Engine engine(*nfa, EngineOptions{});
  std::vector<Match> out;
  engine.Process(Ev("A", 0, 1, 1), &out);
  engine.Process(Ev("B", 5, 1, 1), &out);
  // Shed all witnesses (state-based shedding of negation state).
  engine.store().ForEachAliveWitness(
      [&](PartialMatch* w) { engine.store().Kill(w); });
  engine.Process(Ev("C", 10, 1, 1), &out);
  EXPECT_EQ(out.size(), 1u);  // false positive, as the paper predicts
}

// --- Aggregates ---------------------------------------------------------

TEST_F(EngineTest, KleeneAverageAggregatePredicate) {
  // SEQ(A+ a[], B b) WHERE AVG(a[].V) >= 4 AND a[last].ID=b.ID
  Query q;
  q.name = "agg";
  q.elements = {
      {"a", "A", -1, true, false, 1, 100},
      {"b", "B", -1, false, false, 1, 1},
  };
  q.predicates.push_back(Expr::Compare(CmpOp::kGe, Expr::Aggregate(AggKind::kAvg, "a", "V"),
                                       Expr::Literal(Value(4))));
  q.predicates.push_back(Expr::Compare(CmpOp::kEq, Expr::Attr("a", RefSelector::kLast, "ID"),
                                       Expr::Attr("b", RefSelector::kSingle, "ID")));
  q.window = Millis(8);
  std::vector<EventPtr> events = {
      Ev("A", 0, 1, 2),
      Ev("A", 1, 1, 6),
      Ev("B", 10, 1, 0),
  };
  // Subsequences: {2}: avg 2 (no), {6}: avg 6 (yes), {2,6}: avg 4 (yes).
  auto matches = RunAll(schema_, q, events);
  EXPECT_EQ(matches.size(), 2u);
}

// --- Stats and store behaviour ---------------------------------------------

TEST_F(EngineTest, StatsCountCreatedAndEvicted) {
  auto nfa = Nfa::Compile(MakeQ1(Millis(1)), &schema_);
  ASSERT_TRUE(nfa.ok());
  EngineOptions opts;
  opts.evict_interval = 1;
  Engine engine(*nfa, opts);
  std::vector<Match> out;
  engine.Process(Ev("A", 0, 1, 2), &out);
  EXPECT_EQ(engine.NumPartialMatches(), 1u);
  // 2ms later the A-match is expired and swept.
  engine.Process(Ev("A", 2000, 2, 2), &out);
  EXPECT_EQ(engine.stats().pms_evicted, 1u);
  EXPECT_EQ(engine.NumPartialMatches(), 1u);
}

TEST_F(EngineTest, SweepAndProbeCountAnEvictionOnce) {
  // Regression audit of the two eviction call sites: the periodic sweep
  // kills and counts an expired match; the hash-join probe then sees the
  // same (now dead) match in the index. The probe must skip it via the
  // tombstone *before* its own expiry check, or the eviction is counted
  // twice in stats().pms_evicted.
  auto nfa = Nfa::Compile(MakeQ1(Millis(1)), &schema_);
  ASSERT_TRUE(nfa.ok());
  EngineOptions opts;
  opts.evict_interval = 1;
  Engine engine(*nfa, opts);
  std::vector<Match> out;
  engine.Process(Ev("A", 0, 1, 2), &out);
  // B with a matching ID probes the state-1 index where the expired A-match
  // sits; the sweep (evict_interval=1) runs first in the same Process call.
  engine.Process(Ev("B", 2000, 1, 3), &out);
  EXPECT_EQ(engine.stats().pms_evicted, 1u);
  EXPECT_EQ(engine.NumPartialMatches(), 0u);
}

TEST_F(EngineTest, VacuumAtExactWindowBoundaryKeepsMatchesCompletable) {
  // WITHIN is inclusive (a completion exactly at the boundary matches), so
  // eviction must be strict (`>`): a Vacuum at exactly start_ts + window
  // may not kill the match that a same-timestamp completion would finish.
  auto nfa = Nfa::Compile(MakeQ1(Millis(8)), &schema_);
  ASSERT_TRUE(nfa.ok());
  Engine engine(*nfa, EngineOptions{});
  std::vector<Match> out;
  engine.Process(Ev("A", 0, 1, 2), &out);
  engine.Process(Ev("B", 10, 1, 3), &out);
  engine.Vacuum(8000);
  EXPECT_EQ(engine.stats().pms_evicted, 0u);
  engine.Process(Ev("C", 8000, 1, 5), &out);
  EXPECT_EQ(out.size(), 1u);
  // One microsecond past the boundary the other pending prefix expires.
  engine.Vacuum(8001);
  EXPECT_GT(engine.stats().pms_evicted, 0u);
}

TEST_F(EngineTest, VacuumRespectsCountWindows) {
  // Regression: count-window queries alias nfa->window() to the count, so
  // the old Vacuum — which always ran the *time*-based EvictExpired — read
  // "3 events" as "3 microseconds" and evicted matches that were well
  // inside the count window whenever timestamps outpace sequence numbers.
  auto q = ParseQuery("PATTERN SEQ(A a, B b) WHERE a.ID = b.ID WITHIN 3 EVENTS");
  ASSERT_TRUE(q.ok());
  auto nfa = Nfa::Compile(*q, &schema_);
  ASSERT_TRUE(nfa.ok());
  Engine engine(*nfa, EngineOptions{});
  std::vector<Match> out;
  engine.Process(Ev("A", 0, 1, 2), &out);
  engine.Process(Ev("C", 1000, 9, 0), &out);   // advances the stream clock
  engine.Process(Ev("C", 2000, 9, 0), &out);
  engine.Vacuum(2000);  // seq distance 2 <= 3: must survive
  EXPECT_EQ(engine.stats().pms_evicted, 0u);
  engine.Process(Ev("B", 3000, 1, 3), &out);  // span 3 events: still inside
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(EngineTest, ResetClearsState) {
  auto nfa = Nfa::Compile(MakeQ1(), &schema_);
  ASSERT_TRUE(nfa.ok());
  Engine engine(*nfa, EngineOptions{});
  std::vector<Match> out;
  engine.Process(Ev("A", 0, 1, 2), &out);
  engine.Process(Ev("B", 1, 1, 3), &out);
  EXPECT_GT(engine.NumPartialMatches(), 0u);
  engine.Reset();
  EXPECT_EQ(engine.NumPartialMatches(), 0u);
  EXPECT_EQ(engine.stats().events_processed, 0u);
  // Engine is usable after Reset.
  engine.Process(Ev("A", 0, 10, 2), &out);
  EXPECT_EQ(engine.NumPartialMatches(), 1u);
}

TEST_F(EngineTest, ProcessReturnsPositiveCost) {
  auto nfa = Nfa::Compile(MakeQ1(), &schema_);
  ASSERT_TRUE(nfa.ok());
  Engine engine(*nfa, EngineOptions{});
  std::vector<Match> out;
  const double c = engine.Process(Ev("A", 0, 1, 2), &out);
  EXPECT_GT(c, 0.0);
  EXPECT_DOUBLE_EQ(engine.stats().total_cost, c);
}

TEST_F(EngineTest, CostGrowsWithStateSize) {
  auto nfa = Nfa::Compile(MakeQ1(Millis(100)), &schema_);
  ASSERT_TRUE(nfa.ok());
  EngineOptions opts;
  opts.use_join_index = false;  // make scan cost visible
  Engine engine(*nfa, opts);
  std::vector<Match> out;
  for (int i = 0; i < 50; ++i) {
    engine.Process(Ev("A", i, 1, 2), &out);
  }
  const double cost_small = engine.Process(Ev("B", 100, 1, 3), &out);
  for (int i = 0; i < 200; ++i) {
    engine.Process(Ev("A", 200 + i, 1, 2), &out);
  }
  const double cost_large = engine.Process(Ev("B", 500, 1, 3), &out);
  EXPECT_GT(cost_large, cost_small);
}

}  // namespace
}  // namespace cepshed
