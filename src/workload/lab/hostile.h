// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Hostile workload generators: streams built to break the assumptions the
// shedding machinery was trained under. The paper's datasets (DS1/DS2,
// citibike, google) are statistically stationary; every offline-estimated
// utility class and selectivity inherits that stationarity. These
// generators attack it from three directions:
//
//  - GenerateDriftStream: the attribute distribution (C.V range and the
//    type mix) drifts continuously mid-stream, so utility classes learned
//    on the prefix mis-rank events on the suffix. Unlike DS1's single
//    flip, the drift is gradual — there is no one change point an online
//    detector could simply reset at.
//  - GenerateBurstStream: coordinated burst + skew. During schedule-
//    anchored windows the arrival rate multiplies AND the partition keys
//    are drawn from the set that hashes to one victim shard
//    (ShardRuntime::ShardOfKey), so a "balanced" hash-partitioned runtime
//    sees one shard absorb nearly the whole burst.
//  - GenerateKleeneBomb: long runs of mutually correlated A events, each
//    of which extends every open Kleene binding — the partial-match
//    fan-out worst case for the shared-prefix arena.
//
// All three use the DS1 schema (types A-D, attributes ID and V) so every
// existing query, shedder, and harness runs over them unchanged, and all
// are pure functions of their options (deterministic Rng) so hostile runs
// are replayable from the option struct alone. Burst windows reuse the
// fault-schedule DSL (src/fault/fault_injector.h) as the anchoring
// language: one schedule string can drive the generator and the runtime's
// fault injector to the same logical instants.

#ifndef CEPSHED_WORKLOAD_LAB_HOSTILE_H_
#define CEPSHED_WORKLOAD_LAB_HOSTILE_H_

#include <string>

#include "src/cep/schema.h"
#include "src/cep/stream.h"
#include "src/common/result.h"
#include "src/common/rng.h"

namespace cepshed {
namespace lab {

/// \brief Mid-stream attribute-distribution drift (DS1 schema).
///
/// C.V is uniform on a range that interpolates linearly from
/// [c_v_min_start, c_v_max_start] to [c_v_min_end, c_v_max_end] across
/// the drift window, and the type mix interpolates likewise. Before
/// drift_begin the stream is stationary (the regime an offline estimator
/// trains on); after drift_end it is stationary again — but different.
struct DriftOptions {
  size_t num_events = 50000;
  /// Microseconds between consecutive events.
  Duration event_gap = 10;
  int num_ids = 10;
  /// V range of the non-C types (stationary).
  int v_min = 1;
  int v_max = 10;
  /// Event index where the drift starts / completes.
  size_t drift_begin = 15000;
  size_t drift_end = 35000;
  /// C.V range at the start / end of the drift.
  int c_v_min_start = 2;
  int c_v_max_start = 10;
  int c_v_min_end = 12;
  int c_v_max_end = 20;
  /// Type mix (A,B,C,D) at the start / end of the drift.
  double type_weights_start[4] = {1.0, 1.0, 1.0, 1.0};
  double type_weights_end[4] = {1.0, 1.0, 1.0, 1.0};
  /// Timestamp of event 0 (lets the soak harness chain cycles into one
  /// continuous event-time axis so windows keep expiring).
  Timestamp ts_origin = 0;
  uint64_t seed = 101;
};

EventStream GenerateDriftStream(const Schema& schema, const DriftOptions& options);

/// \brief Coordinated burst + skew against one shard's hash range
/// (DS1 schema).
///
/// Burst windows come from `anchor_schedule`, a fault-DSL string whose
/// `burst` entries are reinterpreted over *generator* event indexes:
/// events [at, at+count) arrive `factor` times faster (gap divided) and
/// draw their ID from the precomputed set of keys that
/// ShardRuntime::ShardOfKey maps to `target_shard` with probability
/// `burst_target_bias`. Off-window the stream is uniform over all IDs.
struct BurstOptions {
  size_t num_events = 50000;
  /// Microseconds between events outside burst windows.
  Duration base_gap = 10;
  int num_ids = 64;
  int v_min = 1;
  int v_max = 10;
  /// The victim: all burst keys hash here under `num_shards` partitions.
  int target_shard = 0;
  int num_shards = 4;
  /// P(event ID is drawn from the victim-shard key set) inside a burst.
  double burst_target_bias = 0.95;
  /// Fault-DSL schedule; only `burst` entries are used (at/count/factor).
  std::string anchor_schedule = "burst:at=15000,count=10000,factor=8";
  /// Type mix off-window / inside a burst (A-heavy bursts start the most
  /// partial matches).
  double type_weights[4] = {1.0, 1.0, 1.0, 1.0};
  double burst_type_weights[4] = {3.0, 1.0, 1.0, 1.0};
  Timestamp ts_origin = 0;
  uint64_t seed = 102;
};

/// Fails with ParseError when the anchor schedule is malformed, and with
/// InvalidArgument when it contains no burst entry or the shard geometry
/// is out of range.
Result<EventStream> GenerateBurstStream(const Schema& schema,
                                        const BurstOptions& options);

/// \brief Kleene fan-out bomb (DS1 schema).
///
/// The stream is a sequence of runs: `run_length` consecutive A events
/// sharing one (ID, V), so under `SEQ(A a, A+ b[], ...)` with ID- and
/// V-correlation every new A of the run extends all open bindings —
/// partial matches grow combinatorially in run_length within the window.
/// B and C completions are sprinkled in with matching payloads
/// (B.V = run V, C.V = 2x run V satisfies a.V + c.V = d.V chains) so the
/// bomb also exercises emission, not just state growth.
struct KleeneBombOptions {
  size_t num_events = 20000;
  Duration event_gap = 10;
  /// Distinct run keys; small = runs recorrelate across windows.
  int num_ids = 2;
  /// Consecutive same-key A events per run.
  size_t run_length = 24;
  /// Per-event probability of a B / C completion event inside a run.
  double b_prob = 0.05;
  double c_prob = 0.05;
  int v_min = 1;
  int v_max = 5;
  Timestamp ts_origin = 0;
  uint64_t seed = 103;
};

EventStream GenerateKleeneBomb(const Schema& schema,
                               const KleeneBombOptions& options);

}  // namespace lab
}  // namespace cepshed

#endif  // CEPSHED_WORKLOAD_LAB_HOSTILE_H_
