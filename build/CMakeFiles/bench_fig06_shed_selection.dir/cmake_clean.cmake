file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_shed_selection.dir/bench/bench_fig06_shed_selection.cpp.o"
  "CMakeFiles/bench_fig06_shed_selection.dir/bench/bench_fig06_shed_selection.cpp.o.d"
  "bench/bench_fig06_shed_selection"
  "bench/bench_fig06_shed_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_shed_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
