// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Unit tests for the runtime pieces: latency monitor, partial-match store,
// metrics, NFA compilation details.

#include <gtest/gtest.h>

#include "src/cep/engine.h"
#include "src/cep/nfa.h"
#include "src/cep/partial_match.h"
#include "src/runtime/latency_monitor.h"
#include "src/runtime/metrics.h"
#include "src/workload/citibike.h"
#include "src/workload/ds1.h"
#include "src/query/parser.h"
#include "src/workload/queries.h"
#include "tests/test_util.h"

namespace cepshed {
namespace {

TEST(LatencyMonitorTest, SlidingAverage) {
  LatencyMonitor::Options opts;
  opts.stat = LatencyStat::kAverage;
  opts.window = 4;
  LatencyMonitor monitor(opts);
  monitor.Record(1);
  monitor.Record(2);
  monitor.Record(3);
  monitor.Record(4);
  EXPECT_DOUBLE_EQ(monitor.Current(), 2.5);
  monitor.Record(5);  // evicts the 1
  EXPECT_DOUBLE_EQ(monitor.Current(), 3.5);
}

TEST(LatencyMonitorTest, OverallAverageIsExact) {
  LatencyMonitor monitor;
  for (int i = 1; i <= 100; ++i) monitor.Record(i);
  EXPECT_DOUBLE_EQ(monitor.OverallAverage(), 50.5);
}

TEST(LatencyMonitorTest, PercentileTracksWindow) {
  LatencyMonitor::Options opts;
  opts.stat = LatencyStat::kP95;
  opts.window = 100;
  opts.refresh_every = 1;
  LatencyMonitor monitor(opts);
  for (int i = 1; i <= 100; ++i) monitor.Record(i);
  EXPECT_NEAR(monitor.Current(), 95.0, 2.0);
  // A burst of large values shifts the percentile up.
  for (int i = 0; i < 50; ++i) monitor.Record(1000);
  EXPECT_GE(monitor.Current(), 900.0);
}

TEST(LatencyMonitorTest, AverageResistsLongRunDrift) {
  // Regression: the incremental window_sum_ add/subtract accumulates
  // floating-point residue. While a 1e15 spike sits in the window every
  // 0.1 added rounds to a multiple of 0.125, and that residue survives the
  // spike's eviction; before the periodic exact recompute the reported
  // average converged to ~0.125 instead of 0.1 (25% off).
  LatencyMonitor::Options opts;
  opts.stat = LatencyStat::kAverage;
  opts.window = 1000;
  LatencyMonitor monitor(opts);
  std::vector<double> reference(opts.window, 0.0);
  size_t ref_head = 0;
  const size_t total = 2'000'000;
  for (size_t i = 0; i < total; ++i) {
    const double v = (i % 10'000 == 0) ? 1e15 : 0.1;
    monitor.Record(v);
    reference[ref_head] = v;
    ref_head = (ref_head + 1) % opts.window;
  }
  double naive = 0.0;
  for (double v : reference) naive += v;
  naive /= static_cast<double>(opts.window);
  EXPECT_NEAR(monitor.Current(), naive, 1e-6);
}

TEST(LatencyMonitorTest, ResetClears) {
  LatencyMonitor monitor;
  monitor.Record(10);
  monitor.Reset();
  EXPECT_EQ(monitor.Count(), 0u);
  EXPECT_DOUBLE_EQ(monitor.Current(), 0.0);
}

TEST(PartialMatchStoreTest, CountsAliveAndDead) {
  PartialMatchStore store(3, 3);
  auto pm = std::make_unique<PartialMatch>();
  pm->state = 1;
  pm->start_ts = 0;
  PartialMatch* raw = store.Add(std::move(pm));
  EXPECT_EQ(store.NumAlive(), 1u);
  store.Kill(raw);
  store.Kill(raw);  // idempotent
  EXPECT_EQ(store.NumAlive(), 0u);
  EXPECT_EQ(store.NumDead(), 1u);
  store.Compact();
  EXPECT_EQ(store.NumDead(), 0u);
  EXPECT_TRUE(store.bucket(1).empty());
}

TEST(PartialMatchStoreTest, EvictExpired) {
  PartialMatchStore store(2, 2);
  for (int i = 0; i < 5; ++i) {
    auto pm = std::make_unique<PartialMatch>();
    pm->state = 0;
    pm->start_ts = i * 100;
    store.Add(std::move(pm));
  }
  // Window 250 at now=500: PMs with start_ts < 250 expire (0,100,200).
  EXPECT_EQ(store.EvictExpired(500, 250), 3u);
  EXPECT_EQ(store.NumAlive(), 2u);
}

TEST(PartialMatchStoreTest, FixedBytesChargesSlotEndCapacityNotSize) {
  // Regression: the old estimate charged slot_end.size() * sizeof(uint32_t).
  // Vectors grow by doubling, so a match whose slot vector reserved 8 slots
  // but filled 1 was under-counted by 28 bytes — across a million partial
  // matches the guard's budget drifted tens of MB below the real footprint.
  PartialMatch pm;
  pm.slot_end.reserve(8);
  pm.slot_end.push_back(0);
  ASSERT_GE(pm.slot_end.capacity(), 8u);
  const size_t bytes = PartialMatchStore::FixedBytes(pm);
  EXPECT_GE(bytes, sizeof(PartialMatch) + 8 * sizeof(uint32_t));
}

TEST(PartialMatchStoreTest, LiveBytesCountsSharedPrefixOnce) {
  PartialMatchStore store(3, 3);
  const size_t empty_bytes = store.ApproxLiveBytes();

  // A parent with a 6-event chain.
  auto parent = std::make_unique<PartialMatch>();
  for (uint64_t i = 0; i < 6; ++i) {
    parent->Append(&store.arena(), std::make_shared<Event>(0, static_cast<Timestamp>(i), i, std::vector<Value>{}));
  }
  PartialMatch* p = store.Add(std::move(parent));
  const size_t after_parent = store.ApproxLiveBytes();
  EXPECT_EQ(store.arena().live_nodes(), 6u);

  // Two children share the parent's whole chain: each adds exactly one
  // arena node plus its own fixed footprint — not 7 nodes each.
  for (int c = 0; c < 2; ++c) {
    auto child = std::make_unique<PartialMatch>();
    child->ExtendFrom(&store.arena(), p, std::make_shared<Event>(0, static_cast<Timestamp>(10 + c),
                                              static_cast<uint64_t>(10 + c),
                                              std::vector<Value>{}));
    store.Add(std::move(child));
  }
  EXPECT_EQ(store.arena().live_nodes(), 8u);
  const size_t per_child = (store.ApproxLiveBytes() - after_parent) / 2;
  EXPECT_LE(per_child, PartialMatchStore::FixedBytes(*p) + 2 * sizeof(BindingNode));

  // Killing everything returns the signal to the empty baseline.
  store.ForEachAlive([&](PartialMatch* pm) { store.Kill(pm); });
  EXPECT_EQ(store.arena().live_nodes(), 0u);
  EXPECT_EQ(store.ApproxLiveBytes(), empty_bytes);
}

TEST(PartialMatchStoreTest, ApproxBytesIsMarginalUnderSharing) {
  PartialMatchStore store(3, 3);
  auto parent = std::make_unique<PartialMatch>();
  for (uint64_t i = 0; i < 5; ++i) {
    parent->Append(&store.arena(), std::make_shared<Event>(0, static_cast<Timestamp>(i), i, std::vector<Value>{}));
  }
  PartialMatch* p = store.Add(std::move(parent));
  auto child = std::make_unique<PartialMatch>();
  child->ExtendFrom(&store.arena(), p, std::make_shared<Event>(0, 9, 9, std::vector<Value>{}));
  PartialMatch* c = store.Add(std::move(child));

  // While the parent is alive its whole chain is shared with the child, so
  // the child's marginal estimate covers only its one exclusive node.
  EXPECT_EQ(PartialMatchStore::ApproxBytes(*c),
            PartialMatchStore::FixedBytes(*c) + sizeof(BindingNode));
  // The parent's tail is referenced by the child chain too: zero exclusive.
  EXPECT_EQ(PartialMatchStore::ApproxBytes(*p), PartialMatchStore::FixedBytes(*p));

  // Once the parent dies the prefix belongs to the child alone and its
  // marginal estimate grows to the full chain — the shedder's kill loop
  // sees the true reclaim for the last owner.
  store.Kill(p);
  EXPECT_EQ(PartialMatchStore::ApproxBytes(*c),
            PartialMatchStore::FixedBytes(*c) + 6 * sizeof(BindingNode));
  store.Kill(c);
  EXPECT_EQ(store.arena().live_nodes(), 0u);
}

TEST(PartialMatchStoreTest, WitnessesTrackedSeparately) {
  PartialMatchStore store(2, 3);
  auto w = std::make_unique<PartialMatch>();
  w->negated_elem = 1;
  w->start_ts = 0;
  PartialMatch* raw = store.AddWitness(std::move(w));
  EXPECT_EQ(store.NumAliveWitnesses(), 1u);
  EXPECT_EQ(store.NumAlive(), 0u);
  EXPECT_TRUE(raw->is_witness);
  size_t seen = 0;
  store.ForEachAliveWitness([&](PartialMatch*) { ++seen; });
  EXPECT_EQ(seen, 1u);
}

TEST(MetricsTest, RecallAndPrecision) {
  Schema schema = MakeDs1Schema();
  auto ev = [&](uint64_t seq) {
    return std::make_shared<Event>(0, static_cast<Timestamp>(seq), seq,
                                   std::vector<Value>{Value(1), Value(1)});
  };
  Match m1;
  m1.events = {ev(1), ev(2)};
  m1.slot_end = {1, 2};
  m1.detected_at = 2;
  Match m2;
  m2.events = {ev(3), ev(4)};
  m2.slot_end = {1, 2};
  m2.detected_at = 4;
  Match fake;
  fake.events = {ev(9), ev(10)};
  fake.slot_end = {1, 2};
  fake.detected_at = 10;

  GroundTruth truth(std::vector<Match>{m1, m2});
  const auto q = ComputeQuality({m1, fake}, truth);
  EXPECT_DOUBLE_EQ(q.recall, 0.5);
  EXPECT_DOUBLE_EQ(q.precision, 0.5);
  EXPECT_EQ(q.true_positives, 1u);
  EXPECT_EQ(q.false_positives, 1u);

  const auto range = ComputeQualityInRange({m1, m2}, truth, 0, 3);
  EXPECT_EQ(range.truth_size, 1u);  // only m1 detected before ts 3
  EXPECT_DOUBLE_EQ(range.recall, 1.0);
}

TEST(MetricsTest, BoundaryStraddlingMatchIsNotABucketTruePositive) {
  // Regression: under shedding-induced detection delay a match can be found
  // in a later bucket than the truth detected it in. It must count as a
  // false positive for that bucket, not a true positive — otherwise
  // true_positives can exceed truth_size and recall exceeds 1.0.
  Schema schema = MakeDs1Schema();
  auto ev = [&](uint64_t seq) {
    return std::make_shared<Event>(0, static_cast<Timestamp>(seq), seq,
                                   std::vector<Value>{Value(1), Value(1)});
  };
  Match m1;
  m1.events = {ev(1), ev(2)};
  m1.slot_end = {1, 2};
  m1.detected_at = 2;  // truth: detected in bucket [0, 3)
  Match m2;
  m2.events = {ev(3), ev(4)};
  m2.slot_end = {1, 2};
  m2.detected_at = 4;  // truth: detected in bucket [3, 6)
  GroundTruth truth(std::vector<Match>{m1, m2});

  Match m1_delayed = m1;
  m1_delayed.detected_at = 5;  // same match, found late, straddles boundary

  const auto late = ComputeQualityInRange({m1_delayed, m2}, truth, 3, 6);
  EXPECT_EQ(late.truth_size, 1u);  // only m2's truth detection is in range
  EXPECT_EQ(late.true_positives, 1u);
  EXPECT_EQ(late.false_positives, 1u);
  EXPECT_DOUBLE_EQ(late.recall, 1.0);  // pre-fix: 2.0
  EXPECT_DOUBLE_EQ(late.precision, 0.5);

  // The bucket the truth detection belongs to simply misses the match.
  const auto early = ComputeQualityInRange({m1_delayed, m2}, truth, 0, 3);
  EXPECT_EQ(early.truth_size, 1u);
  EXPECT_EQ(early.true_positives, 0u);
  EXPECT_DOUBLE_EQ(early.recall, 0.0);
}

TEST(MetricsTest, EmptyEdgeCases) {
  GroundTruth empty;
  const auto q = ComputeQuality({}, empty);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
}

TEST(NfaTest, Q1CompilesWithExpectedStructure) {
  Schema schema = MakeDs1Schema();
  auto nfa = Nfa::Compile(*queries::Q1(), &schema);
  ASSERT_TRUE(nfa.ok()) << nfa.status();
  EXPECT_EQ((*nfa)->num_states(), 3);
  // b and c have ID-equality join keys on bare attributes.
  EXPECT_TRUE((*nfa)->state(1).fill_index.valid());
  EXPECT_FALSE((*nfa)->state(1).fill_index.expression_key);
  EXPECT_TRUE((*nfa)->state(2).fill_index.valid());
  // Predicates anchored: none at state 0, one at state 1, two at state 2.
  EXPECT_EQ((*nfa)->state(0).bind_preds.size(), 0u);
  EXPECT_EQ((*nfa)->state(1).bind_preds.size(), 1u);
  EXPECT_EQ((*nfa)->state(2).bind_preds.size(), 2u);
  // Predictor attributes: only V — ID is a pure cross-element join key
  // (value-agnostic, excluded to keep the classifiers from memorizing
  // individual ids).
  ASSERT_EQ((*nfa)->PredicateAttrs().size(), 1u);
  EXPECT_EQ((*nfa)->PredicateAttrs()[0], schema.AttributeIndex("V"));
}

TEST(NfaTest, KleeneIterationPredicatesSplit) {
  Schema schema = MakeCitibikeSchema();
  auto nfa = Nfa::Compile(*queries::CitibikeHotPaths(2, 5), &schema);
  ASSERT_TRUE(nfa.ok()) << nfa.status();
  const NfaState& kleene = (*nfa)->state(0);
  EXPECT_TRUE(kleene.kleene);
  EXPECT_EQ(kleene.min_reps, 2);
  EXPECT_EQ(kleene.max_reps, 5);
  // a[i+1].bike=a[i].bike and a[i+1].start=a[i].end are iteration preds.
  EXPECT_EQ(kleene.iter_preds.size(), 2u);
  // The extension index keys on the previous trip's attribute.
  EXPECT_TRUE(kleene.extend_index.valid());
}

TEST(NfaTest, NegationSpecsForQ4) {
  Schema schema = MakeDs1Schema();
  auto nfa = Nfa::Compile(*queries::Q4(), &schema);
  ASSERT_TRUE(nfa.ok()) << nfa.status();
  ASSERT_EQ((*nfa)->negations().size(), 1u);
  const NegationSpec& neg = (*nfa)->negations()[0];
  EXPECT_EQ(neg.pattern_elem, 1);
  EXPECT_EQ(neg.prev_state, 0);
  EXPECT_EQ(neg.next_state, 1);
  // Both b-referencing predicates attach to the negation.
  EXPECT_EQ(neg.preds.size(), 2u);
  // The NFA itself has only the two positive states.
  EXPECT_EQ((*nfa)->num_states(), 2);
}

TEST(NfaTest, RejectsNegationAtPatternEdge) {
  Schema schema = MakeDs1Schema();
  auto q = ParseQuery("PATTERN SEQ(!A a, B b) WITHIN 1ms");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(Nfa::Compile(*q, &schema).ok());
}

TEST(NfaTest, EventOnlyPredicateFlag) {
  Schema schema = MakeCitibikeSchema();
  auto nfa = Nfa::Compile(*queries::CitibikeHotPaths(2, 5), &schema);
  ASSERT_TRUE(nfa.ok());
  // b.end IN {7,8,9} is evaluable on the event alone.
  bool found_event_only = false;
  for (const auto* cp : (*nfa)->state(1).bind_preds) {
    if (cp->event_only) found_event_only = true;
  }
  EXPECT_TRUE(found_event_only);
}

TEST(CountWindowTest, ParserAcceptsEventsWindow) {
  auto q = ParseQuery("PATTERN SEQ(A a, B b) WITHIN 1000 EVENTS");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->count_window, 1000u);
  EXPECT_GT(q->window, 0);
}

TEST(CountWindowTest, EngineExpiresBySequenceDistance) {
  Schema schema = MakeDs1Schema();
  auto q = ParseQuery("PATTERN SEQ(A a, B b) WHERE a.ID = b.ID WITHIN 3 EVENTS");
  ASSERT_TRUE(q.ok());
  auto nfa = Nfa::Compile(*q, &schema);
  ASSERT_TRUE(nfa.ok());
  Engine engine(*nfa, EngineOptions{});
  std::vector<Match> out;
  auto ev = [&](const char* type, uint64_t seq) {
    std::vector<Value> attrs(schema.num_attributes());
    attrs[0] = Value(1);
    attrs[1] = Value(1);
    // Identical timestamps: only the sequence distance can expire matches.
    return std::make_shared<Event>(schema.EventTypeId(type), 0, seq, attrs);
  };
  engine.Process(ev("A", 0), &out);
  engine.Process(ev("C", 1), &out);
  engine.Process(ev("C", 2), &out);
  engine.Process(ev("B", 3), &out);  // span 3 events: still inside
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  engine.Process(ev("A", 4), &out);
  engine.Process(ev("C", 5), &out);
  engine.Process(ev("C", 6), &out);
  engine.Process(ev("C", 7), &out);
  engine.Process(ev("B", 8), &out);  // span 4 events: expired
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace cepshed
