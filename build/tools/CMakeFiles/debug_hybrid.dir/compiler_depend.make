# Empty compiler generated dependencies file for debug_hybrid.
# This may be replaced when dependencies are built.
