// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Multi-query processing under one latency budget — the setting of the
// prior CEP-shedding work the paper discusses ([24] He, Barman & Naughton,
// which "optimizes shedding decisions for a set of queries based on
// pre-defined weights"), realized on top of this library's per-query
// hybrid shedders: the global budget is divided across the queries in
// proportion to their weighted no-shedding costs, and each query's hybrid
// strategy enforces its slice.

#ifndef CEPSHED_RUNTIME_MULTI_QUERY_H_
#define CEPSHED_RUNTIME_MULTI_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cep/engine.h"
#include "src/obs/metrics.h"
#include "src/runtime/latency_monitor.h"
#include "src/runtime/metrics.h"
#include "src/shed/cost_model.h"
#include "src/shed/hspice.h"
#include "src/shed/hybrid.h"
#include "src/shed/offline_estimator.h"
#include "src/shed/pspice.h"

namespace cepshed {

/// \brief One query of the workload, with its share weight.
struct WeightedQuery {
  Query query;
  /// Relative importance: a query with twice the weight receives twice the
  /// per-unit-cost budget (pre-defined weights in the sense of [24]).
  double weight = 1.0;
};

/// \brief Per-query outcome of a multi-query run.
struct PerQueryResult {
  std::string name;
  std::vector<Match> matches;
  double avg_latency = 0.0;     ///< this query's per-event cost share
  uint64_t dropped_events = 0;  ///< events its rho_I discarded
  uint64_t shed_pms = 0;
};

/// \brief Outcome of a multi-query run.
struct MultiQueryResult {
  std::vector<PerQueryResult> queries;
  /// Total per-event latency (sum over queries), overall average.
  double total_avg_latency = 0.0;
};

/// \brief Evaluates several queries over one stream, sharing a latency
/// budget theta (in cost units per event across all queries).
class MultiQueryRunner {
 public:
  /// The schema must outlive the runner.
  MultiQueryRunner(const Schema* schema, std::vector<WeightedQuery> queries,
                   HybridOptions shed_options = {}, CostModelOptions model_options = {},
                   EngineOptions engine_options = {});

  /// Compiles all queries and trains each query's cost model on `train`.
  Status Prepare(const EventStream& train);

  /// Processes `stream`. With `theta` <= 0 no shedding happens (the
  /// exhaustive multi-query baseline); otherwise the budget is split
  /// theta_q = theta * w_q c_q / sum(w c) where c_q is query q's
  /// no-shedding average cost on the training stream, and each query's
  /// hybrid shedder enforces its slice.
  Result<MultiQueryResult> Run(const EventStream& stream, double theta);

  size_t num_queries() const { return queries_.size(); }
  /// Training-stream average per-event cost of one query (post-Prepare).
  double BaselineCost(size_t q) const { return baseline_cost_[q]; }

  /// Attaches an observability registry (optional; not owned): each query
  /// then records into its own slot — slot q for query q — so the exported
  /// "shard" label identifies the query.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Selects the per-query shedding strategy by registry spec
  /// (`name[:key=value,...]`, see ShedderRegistry) instead of the default
  /// hybrid. Each query still receives its own budget slice as the spec's
  /// latency bound and its own trained substrate. Empty (the default)
  /// keeps the hybrid path.
  void set_shedder_spec(std::string spec) { shedder_spec_ = std::move(spec); }

 private:
  const Schema* schema_;
  std::vector<WeightedQuery> queries_;
  HybridOptions shed_options_;
  CostModelOptions model_options_;
  EngineOptions engine_options_;
  std::vector<std::shared_ptr<const Nfa>> nfas_;
  std::vector<std::unique_ptr<CostModel>> models_;
  std::vector<std::vector<double>> utility_samples_;
  std::vector<double> baseline_cost_;
  /// Per-query trained substrate beyond the cost model, retained so
  /// registry-spec runs can construct any strategy (SI/SS need the offline
  /// statistics, hSPICE/pSPICE their learned tables).
  std::vector<OfflineStats> offline_;
  std::vector<std::unique_ptr<HspiceTable>> hspice_;
  std::vector<std::unique_ptr<PspiceModel>> pspice_;
  /// Training stream (fixed-ratio threshold calibration in spec runs).
  EventStream train_;
  std::string shedder_spec_;
  obs::MetricsRegistry* metrics_ = nullptr;
  bool prepared_ = false;
};

}  // namespace cepshed

#endif  // CEPSHED_RUNTIME_MULTI_QUERY_H_
