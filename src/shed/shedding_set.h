// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Shedding-set selection (§IV-B): group the live partial matches into
// cost-model classes per (state, class, time slice), compute each group's
// relative contribution Delta+ and consumption Delta-, and solve the
// covering-knapsack problem
//     minimize sum Delta+(D)  s.t.  sum Delta-(D) > (mu - theta)/mu
// to decide what to shed. Negation witnesses form their own zero-
// contribution groups, so a utility-driven shedder discards them first
// (which is what produces the paper's Fig. 14 precision behaviour).

#ifndef CEPSHED_SHED_SHEDDING_SET_H_
#define CEPSHED_SHED_SHEDDING_SET_H_

#include <vector>

#include "src/cep/engine.h"
#include "src/shed/cost_model.h"

namespace cepshed {

/// \brief Which knapsack solver selects the shedding set (§V-C).
enum class KnapsackMode : int { kDP, kGreedy };

/// \brief One selected group of partial matches.
struct SheddingSetItem {
  int state = -1;
  int32_t cls = 0;
  int slice = 0;
  double delta_plus = 0.0;
  double delta_minus = 0.0;
  size_t pm_count = 0;
  /// Witness group (negation state) instead of a regular class.
  bool is_witness_group = false;
  int negated_elem = -1;
};

/// \brief Computes the shedding set for the given relative latency
/// violation over the engine's current live matches.
std::vector<SheddingSetItem> SelectSheddingSet(Engine* engine, const CostModel& model,
                                               double violation, Timestamp now,
                                               KnapsackMode mode);

}  // namespace cepshed

#endif  // CEPSHED_SHED_SHEDDING_SET_H_
