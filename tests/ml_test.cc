// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Unit tests for the ML substrate: k-means, gap statistic, decision tree,
// regression tree.

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/ml/decision_tree.h"
#include "src/ml/gap_statistic.h"
#include "src/ml/kmeans.h"
#include "src/ml/regression_tree.h"

namespace cepshed {
namespace {

// Three well-separated 2D blobs.
std::vector<std::vector<double>> MakeBlobs(Rng* rng, int per_blob = 60) {
  std::vector<std::vector<double>> points;
  const double centers[3][2] = {{0, 0}, {10, 0}, {5, 10}};
  for (const auto& c : centers) {
    for (int i = 0; i < per_blob; ++i) {
      points.push_back({c[0] + rng->Normal(0, 0.5), c[1] + rng->Normal(0, 0.5)});
    }
  }
  return points;
}

TEST(KMeansTest, RecoversSeparatedBlobs) {
  Rng rng(1);
  auto points = MakeBlobs(&rng);
  auto result = KMeans(points, 3, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->centroids.size(), 3u);
  // All points of one blob share a label.
  for (int blob = 0; blob < 3; ++blob) {
    const int label = result->labels[static_cast<size_t>(blob * 60)];
    for (int i = 0; i < 60; ++i) {
      EXPECT_EQ(result->labels[static_cast<size_t>(blob * 60 + i)], label);
    }
  }
  EXPECT_LT(result->inertia, 200.0);
}

TEST(KMeansTest, KClampedToPointCount) {
  Rng rng(2);
  std::vector<std::vector<double>> points = {{0.0}, {1.0}};
  auto result = KMeans(points, 10, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->centroids.size(), 2u);
}

TEST(KMeansTest, RejectsBadInput) {
  Rng rng(3);
  EXPECT_FALSE(KMeans({}, 2, &rng).ok());
  EXPECT_FALSE(KMeans({{1.0}}, 0, &rng).ok());
  EXPECT_FALSE(KMeans({{1.0}, {1.0, 2.0}}, 1, &rng).ok());
}

TEST(KMeansTest, WeightedPullsCentroidTowardHeavyPoint) {
  Rng rng(4);
  // Two points, one with 99x the weight; k=1 centroid must sit close to it.
  std::vector<std::vector<double>> points = {{0.0}, {10.0}};
  auto result = KMeansWeighted(points, {99.0, 1.0}, 1, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->centroids[0][0], 1.0);
}

TEST(GapStatisticTest, FindsThreeBlobs) {
  Rng rng(5);
  auto points = MakeBlobs(&rng);
  GapStatisticOptions opts;
  opts.k_min = 1;
  opts.k_max = 6;
  auto result = EstimateClusters(points, opts, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->best_k, 2);
  EXPECT_LE(result->best_k, 4);
}

TEST(GapStatisticTest, SingleBlobYieldsOneCluster) {
  Rng rng(6);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 100; ++i) {
    points.push_back({rng.Normal(0, 1), rng.Normal(0, 1)});
  }
  GapStatisticOptions opts;
  opts.k_min = 1;
  opts.k_max = 5;
  auto result = EstimateClusters(points, opts, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->best_k, 2);
}

TEST(DecisionTreeTest, LearnsAxisAlignedBoundary) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    const double a = rng.UniformDouble(0, 10);
    const double b = rng.UniformDouble(0, 10);
    x.push_back({a, b});
    y.push_back(a + b <= 10.0 ? 0 : 1);
  }
  DecisionTree tree;
  DecisionTree::Options opts;
  opts.max_depth = 8;
  ASSERT_TRUE(tree.Fit(x, y, opts).ok());
  EXPECT_GT(tree.training_accuracy(), 0.95);
  EXPECT_EQ(tree.Predict({1.0, 1.0}), 0);
  EXPECT_EQ(tree.Predict({9.0, 9.0}), 1);
}

TEST(DecisionTreeTest, DepthIsBounded) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    x.push_back({rng.UniformDouble(0, 1)});
    y.push_back(static_cast<int>(rng.UniformInt(0, 3)));
  }
  DecisionTree tree;
  DecisionTree::Options opts;
  opts.max_depth = 3;
  ASSERT_TRUE(tree.Fit(x, y, opts).ok());
  EXPECT_LE(tree.Depth(), 4);  // depth counts nodes on path incl. leaf
}

TEST(DecisionTreeTest, PathsToClassAreConsistentWithPredict) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 100; ++i) {
    const double v = static_cast<double>(i);
    x.push_back({v});
    y.push_back(v < 50 ? 0 : 1);
  }
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, y, DecisionTree::Options{}).ok());
  const auto paths = tree.PathsToClass(0);
  ASSERT_FALSE(paths.empty());
  // A point satisfying a class-0 path must predict class 0.
  for (const auto& path : paths) {
    double probe = 25.0;
    bool satisfied = true;
    for (const auto& cond : path) {
      satisfied &= cond.less_equal ? probe <= cond.threshold : probe > cond.threshold;
    }
    if (satisfied) {
      EXPECT_EQ(tree.Predict({probe}), 0);
    }
  }
}

TEST(DecisionTreeTest, RejectsBadInput) {
  DecisionTree tree;
  EXPECT_FALSE(tree.Fit({}, {}, DecisionTree::Options{}).ok());
  EXPECT_FALSE(tree.Fit({{1.0}}, {0, 1}, DecisionTree::Options{}).ok());
  EXPECT_FALSE(tree.Fit({{1.0}}, {-1}, DecisionTree::Options{}).ok());
}

TEST(RegressionTreeTest, RecoversPiecewiseMeans) {
  std::vector<std::vector<double>> x;
  std::vector<std::vector<double>> y;
  Rng rng(9);
  for (int i = 0; i < 600; ++i) {
    const double a = rng.UniformDouble(0, 10);
    x.push_back({a});
    y.push_back({a < 5 ? 100.0 : 200.0});
  }
  RegressionTree tree;
  RegressionTree::Options opts;
  opts.min_samples_leaf = 20;
  ASSERT_TRUE(tree.Fit(x, y, opts).ok());
  EXPECT_NEAR(tree.Predict({2.0})[0], 100.0, 1.0);
  EXPECT_NEAR(tree.Predict({8.0})[0], 200.0, 1.0);
}

TEST(RegressionTreeTest, IgnoresIrrelevantFeature) {
  std::vector<std::vector<double>> x;
  std::vector<std::vector<double>> y;
  Rng rng(10);
  for (int i = 0; i < 800; ++i) {
    const double useful = rng.UniformDouble(0, 10);
    const double noise = rng.UniformDouble(0, 10);
    x.push_back({noise, useful});
    y.push_back({useful < 5 ? 1.0 : 2.0});
  }
  RegressionTree tree;
  RegressionTree::Options opts;
  opts.max_depth = 2;
  opts.min_samples_leaf = 50;
  ASSERT_TRUE(tree.Fit(x, y, opts).ok());
  // With a single split available, it must pick the informative feature:
  // leaves separated by the useful dimension.
  EXPECT_NEAR(tree.Predict({0.0, 2.0})[0], 1.0, 0.2);
  EXPECT_NEAR(tree.Predict({9.9, 8.0})[0], 2.0, 0.2);
}

TEST(RegressionTreeTest, MultiTargetLeavesCarryBothMeans) {
  std::vector<std::vector<double>> x;
  std::vector<std::vector<double>> y;
  for (int i = 0; i < 200; ++i) {
    const double a = static_cast<double>(i % 2);
    x.push_back({a});
    y.push_back({a * 10.0, 5.0 - a * 5.0});
  }
  RegressionTree tree;
  RegressionTree::Options opts;
  opts.min_samples_leaf = 10;
  ASSERT_TRUE(tree.Fit(x, y, opts).ok());
  const auto& lo = tree.Predict({0.0});
  const auto& hi = tree.Predict({1.0});
  EXPECT_NEAR(lo[0], 0.0, 0.01);
  EXPECT_NEAR(lo[1], 5.0, 0.01);
  EXPECT_NEAR(hi[0], 10.0, 0.01);
  EXPECT_NEAR(hi[1], 0.0, 0.01);
}

TEST(RegressionTreeTest, TrainingLeavesMatchPredictLeaf) {
  std::vector<std::vector<double>> x;
  std::vector<std::vector<double>> y;
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    const double a = rng.UniformDouble(0, 10);
    x.push_back({a});
    y.push_back({a});
  }
  RegressionTree tree;
  RegressionTree::Options opts;
  opts.min_samples_leaf = 10;
  ASSERT_TRUE(tree.Fit(x, y, opts).ok());
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(tree.PredictLeaf(x[i]), tree.training_leaves()[i]);
  }
}

}  // namespace
}  // namespace cepshed
