// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/runtime/multi_query.h"

#include "src/shed/offline_estimator.h"
#include "src/shed/registry.h"

namespace cepshed {

MultiQueryRunner::MultiQueryRunner(const Schema* schema,
                                   std::vector<WeightedQuery> queries,
                                   HybridOptions shed_options,
                                   CostModelOptions model_options,
                                   EngineOptions engine_options)
    : schema_(schema),
      queries_(std::move(queries)),
      shed_options_(shed_options),
      model_options_(model_options),
      engine_options_(engine_options),
      train_(schema) {}

Status MultiQueryRunner::Prepare(const EventStream& train) {
  if (queries_.empty()) {
    return Status::InvalidArgument("multi-query runner needs at least one query");
  }
  nfas_.clear();
  models_.clear();
  utility_samples_.clear();
  baseline_cost_.clear();
  offline_.clear();
  hspice_.clear();
  pspice_.clear();
  train_ = train;
  for (const WeightedQuery& wq : queries_) {
    if (wq.weight <= 0.0) {
      return Status::InvalidArgument("query weights must be positive");
    }
    CEPSHED_ASSIGN_OR_RETURN(auto nfa, Nfa::Compile(wq.query, schema_));
    CEPSHED_ASSIGN_OR_RETURN(
        OfflineStats stats,
        EstimateOffline(nfa, train, model_options_.num_time_slices,
                        model_options_.use_resource_cost, engine_options_));
    auto model = std::make_unique<CostModel>(nfa, model_options_);
    Rng rng(17 + models_.size());
    CEPSHED_RETURN_NOT_OK(model->Train(stats, &rng));
    utility_samples_.push_back(ComputeTrainingUtilities(*model, train));

    auto hspice = std::make_unique<HspiceTable>();
    CEPSHED_RETURN_NOT_OK(hspice->Train(nfa, stats));
    hspice_.push_back(std::move(hspice));
    auto pspice = std::make_unique<PspiceModel>();
    CEPSHED_RETURN_NOT_OK(pspice->Train(nfa, stats));
    pspice_.push_back(std::move(pspice));

    // The query's no-shedding per-event cost on the training stream sizes
    // its budget share.
    Engine probe(nfa, engine_options_);
    double total = 0.0;
    std::vector<Match> sink;
    for (const EventPtr& e : train) {
      total += probe.Process(e, &sink);
      sink.clear();
    }
    baseline_cost_.push_back(train.empty() ? 1.0
                                           : total / static_cast<double>(train.size()));

    nfas_.push_back(std::move(nfa));
    models_.push_back(std::move(model));
    offline_.push_back(std::move(stats));
  }
  prepared_ = true;
  return Status::OK();
}

Result<MultiQueryResult> MultiQueryRunner::Run(const EventStream& stream, double theta) {
  if (!prepared_) return Status::Internal("Prepare must be called first");

  // Budget split: theta_q proportional to w_q * baseline cost.
  double denom = 0.0;
  for (size_t q = 0; q < queries_.size(); ++q) {
    denom += queries_[q].weight * baseline_cost_[q];
  }

  struct PerQuery {
    std::unique_ptr<Engine> engine;
    std::unique_ptr<CostModel> model;
    std::unique_ptr<Shedder> shedder;
    std::unique_ptr<LatencyMonitor> monitor;
    obs::ShardObs* obs = nullptr;
    size_t obs_matches_seen = 0;
    double total_cost = 0.0;
  };
  std::vector<PerQuery> running(queries_.size());
  if (metrics_ != nullptr) metrics_->EnsureShards(static_cast<int>(queries_.size()));
  MultiQueryResult result;
  result.queries.resize(queries_.size());

  for (size_t q = 0; q < queries_.size(); ++q) {
    PerQuery& query_run = running[q];
    query_run.engine = std::make_unique<Engine>(nfas_[q], engine_options_);
    const double theta_q =
        theta > 0.0 ? theta * queries_[q].weight * baseline_cost_[q] / denom : -1.0;
    if (theta > 0.0 && !shedder_spec_.empty()) {
      // Registry path: any named strategy over this query's slice and
      // substrate. Model-backed strategies wire their own engine hooks at
      // Bind, so nothing is wired here.
      ShedderContext ctx;
      ctx.theta = theta_q;
      ctx.hybrid_trigger_delay = shed_options_.trigger_delay;
      ctx.seed = shed_options_.seed + q;
      ctx.solver = shed_options_.solver;
      ctx.offline = &offline_[q];
      ctx.model = models_[q].get();
      ctx.hspice = hspice_[q].get();
      ctx.pspice = pspice_[q].get();
      ctx.utility_samples = &utility_samples_[q];
      ctx.train = &train_;
      CEPSHED_ASSIGN_OR_RETURN(
          query_run.shedder,
          ShedderRegistry::Instance().Create(shedder_spec_, ctx));
      query_run.shedder->Bind(query_run.engine.get());
    } else {
      query_run.model = std::make_unique<CostModel>(*models_[q]);
      CostModel* model = query_run.model.get();
      query_run.engine->set_classifier(
          [model](const PartialMatch& pm) { return model->Classify(pm); });
      query_run.engine->set_pm_created_hook(
          [model](const PartialMatch& pm, const PartialMatch* parent) {
            model->OnPmCreated(pm, parent, pm.last_ts);
          });
      query_run.engine->set_match_hook(
          [model](const Match& m, const PartialMatch* parent) {
            model->OnMatch(m, parent, m.detected_at);
          });
      if (theta > 0.0) {
        HybridOptions opts = shed_options_;
        opts.theta = theta_q;
        opts.utility_samples = utility_samples_[q];
        opts.seed = shed_options_.seed + q;
        query_run.shedder = std::make_unique<HybridShedder>(model, opts);
        query_run.shedder->Bind(query_run.engine.get());
      }
    }
    if (metrics_ != nullptr) {
      query_run.obs = metrics_->shard(static_cast<int>(q));
      if (query_run.shedder != nullptr) {
        query_run.shedder->set_obs(query_run.obs, static_cast<int>(q));
      }
    }
    query_run.monitor = std::make_unique<LatencyMonitor>();
    if (queries_[q].query.name.empty()) {
      result.queries[q].name = "q";
      result.queries[q].name += std::to_string(q);
    } else {
      result.queries[q].name = queries_[q].query.name;
    }
  }

  for (const EventPtr& event : stream) {
    for (size_t q = 0; q < queries_.size(); ++q) {
      PerQuery& query_run = running[q];
      double cost;
      if (query_run.shedder != nullptr && query_run.shedder->FilterEvent(*event)) {
        cost = 0.05;
      } else {
        cost = query_run.engine->Process(event, &result.queries[q].matches);
        if (query_run.obs != nullptr) {
          query_run.obs->events_processed.Add();
          const size_t n = result.queries[q].matches.size();
          if (n != query_run.obs_matches_seen) {
            query_run.obs->matches_emitted.Add(n - query_run.obs_matches_seen);
            query_run.obs_matches_seen = n;
          }
        }
      }
      if (query_run.obs != nullptr) {
        query_run.obs->events_routed.Add();
        query_run.obs->event_cost.Record(cost);
      }
      query_run.monitor->Record(cost);
      query_run.total_cost += cost;
      if (query_run.shedder != nullptr) {
        query_run.shedder->AfterEvent(event->timestamp(), query_run.monitor->Current());
      }
    }
  }

  for (size_t q = 0; q < queries_.size(); ++q) {
    PerQueryResult& out = result.queries[q];
    out.avg_latency = stream.empty()
                          ? 0.0
                          : running[q].total_cost / static_cast<double>(stream.size());
    if (running[q].shedder != nullptr) {
      out.dropped_events = running[q].shedder->events_dropped();
      out.shed_pms = running[q].shedder->pms_shed();
    }
    result.total_avg_latency += out.avg_latency;
  }
  return result;
}

}  // namespace cepshed
