// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Count-min sketch (Cormode & Muthukrishnan) over double-valued counts.
// The online adaptation of the cost model maintains streaming contribution
// and consumption increments per (state, class, time slice) in sketches
// (§V-B: "adaptation is based on sketches for efficient streaming counts").

#ifndef CEPSHED_SKETCH_COUNT_MIN_H_
#define CEPSHED_SKETCH_COUNT_MIN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cepshed {

/// \brief A count-min sketch with conservative point estimates.
///
/// Uses double counters so fractional resource costs can be accumulated.
/// Estimate() never underestimates the true count of a key (for
/// non-negative increments).
class CountMinSketch {
 public:
  /// `width` cells per row, `depth` independent rows.
  CountMinSketch(size_t width, size_t depth, uint64_t seed = 0x5eed);

  /// Adds `count` to `key`.
  void Add(uint64_t key, double count = 1.0);

  /// Point estimate for `key` (min over rows).
  double Estimate(uint64_t key) const;

  /// Multiplies every cell by `factor` — implements the paper's exponential
  /// fold Gamma_new = (1-w) Gamma_old + w Gamma_incremented when combined
  /// with a fresh increment sketch.
  void Scale(double factor);

  /// Zeroes all cells.
  void Clear();

  size_t width() const { return width_; }
  size_t depth() const { return depth_; }
  /// Total mass added to row 0 (equal across rows for non-negative adds).
  double TotalMass() const;

 private:
  size_t CellIndex(size_t row, uint64_t key) const;

  size_t width_;
  size_t depth_;
  std::vector<uint64_t> row_seeds_;
  std::vector<double> cells_;  // depth x width, row-major
};

}  // namespace cepshed

#endif  // CEPSHED_SKETCH_COUNT_MIN_H_
