// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Pins the deterministic-RNG contract (src/common/rng.h) end to end: every
// layer that draws randomness — workload generators, shedding strategies,
// knapsack selection, the full experiment harness, the sharded runtime —
// must reproduce its output bit-for-bit from a seed. Each test runs a
// stage twice from identical seeds and asserts identical outcomes.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/opt/knapsack.h"
#include "src/runtime/experiment.h"
#include "src/runtime/shard_runtime.h"
#include "src/workload/ds1.h"
#include "src/workload/google_trace.h"
#include "src/workload/queries.h"

namespace cepshed {
namespace {

TEST(DeterminismTest, RngReproducesFromSeed) {
  Rng a(123), b(123), c(456);
  bool any_diff = false;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t va = a.Next();
    ASSERT_EQ(va, b.Next());
    if (va != c.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff) << "different seeds must give different streams";

  // Distribution helpers consume the same underlying draws.
  Rng d(9), e(9);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(d.UniformInt(0, 1000), e.UniformInt(0, 1000));
    EXPECT_EQ(d.UniformDouble(), e.UniformDouble());
    EXPECT_EQ(d.Normal(), e.Normal());
    EXPECT_EQ(d.Poisson(5.0), e.Poisson(5.0));
  }

  // Forked children are deterministic too.
  Rng f1 = d.Fork();
  Rng f2 = e.Fork();
  for (int i = 0; i < 200; ++i) EXPECT_EQ(f1.Next(), f2.Next());
}

void ExpectStreamsIdentical(const EventStream& a, const EventStream& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const Event& ea = *a[i];
    const Event& eb = *b[i];
    ASSERT_EQ(ea.type(), eb.type()) << "event " << i;
    ASSERT_EQ(ea.timestamp(), eb.timestamp()) << "event " << i;
    ASSERT_EQ(ea.seq(), eb.seq()) << "event " << i;
    for (int att = 0; att < static_cast<int>(a.schema().num_attributes()); ++att) {
      ASSERT_TRUE(ea.attr(att) == eb.attr(att)) << "event " << i << " attr " << att;
    }
  }
}

TEST(DeterminismTest, GeneratorsReproduceFromSeed) {
  const Schema ds1_schema = MakeDs1Schema();
  Ds1Options ds1;
  ds1.num_events = 5000;
  ds1.seed = 11;
  ExpectStreamsIdentical(GenerateDs1(ds1_schema, ds1), GenerateDs1(ds1_schema, ds1));

  const Schema gt_schema = MakeGoogleTraceSchema();
  GoogleTraceOptions gt;
  gt.num_events = 5000;
  gt.seed = 11;
  ExpectStreamsIdentical(GenerateGoogleTrace(gt_schema, gt),
                         GenerateGoogleTrace(gt_schema, gt));
}

TEST(DeterminismTest, KnapsackSelectionIsDeterministic) {
  // Seed-generated instances; the selections (not just their totals) must
  // repeat exactly for both solvers.
  Rng rng(31);
  std::vector<KnapsackItem> items;
  for (int i = 0; i < 64; ++i) {
    items.push_back({rng.UniformDouble(0.0, 1.0), rng.UniformDouble(0.0, 1.0)});
  }
  const double threshold = 4.0;
  const std::vector<size_t> dp1 = SolveCoveringKnapsackDP(items, threshold);
  const std::vector<size_t> dp2 = SolveCoveringKnapsackDP(items, threshold);
  EXPECT_EQ(dp1, dp2);
  EXPECT_FALSE(dp1.empty());
  EXPECT_GT(TotalWeight(items, dp1), threshold);

  const std::vector<size_t> g1 = SolveCoveringKnapsackGreedy(items, threshold);
  const std::vector<size_t> g2 = SolveCoveringKnapsackGreedy(items, threshold);
  EXPECT_EQ(g1, g2);
  EXPECT_FALSE(g1.empty());
}

std::vector<std::string> MatchKeys(const std::vector<Match>& matches) {
  std::vector<std::string> keys;
  keys.reserve(matches.size());
  for (const Match& m : matches) keys.push_back(m.Key());
  return keys;
}

/// One full pipeline pass: generate, train, ground truth, hybrid
/// latency-bound run, and a randomized fixed-ratio run.
struct PipelineOutcome {
  std::vector<std::string> truth_keys;
  ExperimentResult hybrid;
  ExperimentResult random_input;
};

PipelineOutcome RunPipeline() {
  const Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = 6000;
  gen.seed = 5;
  const EventStream stream = GenerateDs1(schema, gen);
  const EventStream train = stream.Prefix(3000);

  auto q = queries::Q1("4ms");
  EXPECT_TRUE(q.ok());
  HarnessOptions options;
  options.seed = 7;
  ExperimentHarness harness(&schema, *q, options);
  EXPECT_TRUE(harness.Prepare(train, stream).ok());

  PipelineOutcome out;
  out.truth_keys = MatchKeys(harness.truth_run().matches);
  out.hybrid = harness.RunBound(StrategyKind::kHybrid, 0.5);
  out.random_input = harness.RunFixed(StrategyKind::kRI, 0.3);
  return out;
}

void ExpectResultsIdentical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(MatchKeys(a.raw.matches), MatchKeys(b.raw.matches));
  EXPECT_EQ(a.raw.dropped_events, b.raw.dropped_events);
  EXPECT_EQ(a.raw.shed_pms, b.raw.shed_pms);
  EXPECT_EQ(a.raw.processed_events, b.raw.processed_events);
  EXPECT_EQ(a.raw.engine_stats.pms_created, b.raw.engine_stats.pms_created);
  EXPECT_EQ(a.raw.engine_stats.matches_emitted, b.raw.engine_stats.matches_emitted);
  EXPECT_EQ(a.raw.engine_stats.total_cost, b.raw.engine_stats.total_cost);
  EXPECT_EQ(a.quality.recall, b.quality.recall);
  EXPECT_EQ(a.quality.precision, b.quality.precision);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
}

TEST(DeterminismTest, FullPipelineReproducesFromSeed) {
  const PipelineOutcome first = RunPipeline();
  const PipelineOutcome second = RunPipeline();

  EXPECT_FALSE(first.truth_keys.empty());
  EXPECT_EQ(first.truth_keys, second.truth_keys);
  // The shedding runs must have actually shed for the comparison to bite.
  EXPECT_GT(first.random_input.raw.dropped_events, 0u);
  ExpectResultsIdentical(first.hybrid, second.hybrid);
  ExpectResultsIdentical(first.random_input, second.random_input);
}

TEST(DeterminismTest, ShardedRunIsRepeatable) {
  const Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = 4000;
  gen.seed = 3;
  const EventStream stream = GenerateDs1(schema, gen);

  auto q = queries::Q1();
  ASSERT_TRUE(q.ok());
  auto nfa = Nfa::Compile(*q, &schema);
  ASSERT_TRUE(nfa.ok());

  ShardRuntimeOptions opts;
  opts.num_shards = 4;
  opts.partition_attr = schema.AttributeIndex("ID");
  auto runtime = ShardRuntime::Create(*nfa, opts);
  ASSERT_TRUE(runtime.ok());

  auto r1 = (*runtime)->Run(stream);
  auto r2 = (*runtime)->Run(stream);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_FALSE(r1->matches.empty());
  EXPECT_EQ(MatchKeys(r1->matches), MatchKeys(r2->matches));
  EXPECT_EQ(r1->stats.pms_created, r2->stats.pms_created);
  EXPECT_EQ(r1->stats.total_cost, r2->stats.total_cost);
  for (int i = 0; i < opts.num_shards; ++i) {
    EXPECT_EQ(r1->shards[static_cast<size_t>(i)].events_routed,
              r2->shards[static_cast<size_t>(i)].events_routed);
  }
}

}  // namespace
}  // namespace cepshed
