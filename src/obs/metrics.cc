// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/obs/metrics.h"

#include <algorithm>

namespace cepshed {
namespace obs {

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  uint64_t rank = static_cast<uint64_t>(clamped * static_cast<double>(count - 1)) + 1;
  uint64_t cumulative = 0;
  for (int i = 0; i < LogHistogram::kNumBuckets; ++i) {
    cumulative += buckets[static_cast<size_t>(i)];
    if (cumulative >= rank) {
      // Geometric bucket midpoint; cap at the observed max so the top
      // bucket cannot report beyond any recorded value.
      const double mid =
          std::sqrt(LogHistogram::BucketLower(i) * LogHistogram::BucketUpper(i));
      return max > 0.0 ? std::min(mid, max) : mid;
    }
  }
  return max;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (buckets.empty()) buckets.assign(LogHistogram::kNumBuckets, 0);
  for (size_t i = 0; i < other.buckets.size(); ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

HistogramSnapshot LogHistogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kNumBuckets);
  for (int i = 0; i < kNumBuckets; ++i) {
    snap.buckets[static_cast<size_t>(i)] =
        buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[static_cast<size_t>(i)];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = DoubleOf(max_bits_.load(std::memory_order_relaxed));
  return snap;
}

void LogHistogram::Reset() {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0.0, std::memory_order_relaxed);
  max_bits_.store(0, std::memory_order_relaxed);
}

double LogHistogram::BucketLower(int idx) {
  const int octave = idx / kSubBuckets;
  const int sub = idx % kSubBuckets;
  // Bucket [lower, upper) spans mantissa [0.5 + sub/64, 0.5 + (sub+1)/64)
  // at exponent kMinExp + octave + 1 (see BucketIndex).
  const double mant = 0.5 + static_cast<double>(sub) / (2.0 * kSubBuckets);
  return std::ldexp(mant, kMinExp + octave + 1);
}

double LogHistogram::BucketUpper(int idx) {
  const int octave = idx / kSubBuckets;
  const int sub = idx % kSubBuckets;
  const double mant = 0.5 + static_cast<double>(sub + 1) / (2.0 * kSubBuckets);
  return std::ldexp(mant, kMinExp + octave + 1);
}

ShardObsSnapshot SnapshotShard(const ShardObs& o) {
  ShardObsSnapshot s;
  s.events_routed = o.events_routed.Load();
  s.events_processed = o.events_processed.Load();
  s.events_dropped_shedder = o.events_dropped_shedder.Load();
  s.events_dropped_guard = o.events_dropped_guard.Load();
  s.events_lost = o.events_lost.Load();
  s.matches_emitted = o.matches_emitted.Load();
  s.pms_shed = o.pms_shed.Load();
  s.shed_triggers = o.shed_triggers.Load();
  s.shed_adapt_folds = o.shed_adapt_folds.Load();
  s.pms_ranked = o.pms_ranked.Load();
  s.knapsack_solves = o.knapsack_solves.Load();
  s.guard_transitions = o.guard_transitions.Load();
  s.queue_push_timeouts = o.queue_push_timeouts.Load();
  s.migrations_total = o.migrations_total.Load();
  s.migrated_pms = o.migrated_pms.Load();
  s.migrated_bytes = o.migrated_bytes.Load();
  s.expiry_reaped = o.expiry_reaped.Load();
  s.wheel_cascades = o.wheel_cascades.Load();
  for (int c = 0; c < ShardObs::kNumClasses; ++c) {
    s.shed_by_class[c] = o.shed_by_class[c].Load();
  }
  s.guard_level = o.guard_level.Load();
  s.live_shards = o.live_shards.Load();
  s.arena_legacy_bytes = o.arena_legacy_bytes.Load();
  s.state_bytes = o.state_bytes.Load();
  s.arena_live_bytes = o.arena_live_bytes.Load();
  s.arena_capacity_bytes = o.arena_capacity_bytes.Load();
  s.flat_cache_entries = o.flat_cache_entries.Load();
  s.wheel_entries = o.wheel_entries.Load();
  s.event_cost = o.event_cost.Snapshot();
  s.migration_us = o.migration_us.Snapshot();
  s.queue_wait_us = o.queue_wait_us.Snapshot();
  s.shed_trigger_us = o.shed_trigger_us.Snapshot();
  s.knapsack_us = o.knapsack_us.Snapshot();
  s.audit = o.audit.Snapshot();
  return s;
}

void ShardObsSnapshot::Merge(const ShardObsSnapshot& other) {
  events_routed += other.events_routed;
  events_processed += other.events_processed;
  events_dropped_shedder += other.events_dropped_shedder;
  events_dropped_guard += other.events_dropped_guard;
  events_lost += other.events_lost;
  matches_emitted += other.matches_emitted;
  pms_shed += other.pms_shed;
  shed_triggers += other.shed_triggers;
  shed_adapt_folds += other.shed_adapt_folds;
  pms_ranked += other.pms_ranked;
  knapsack_solves += other.knapsack_solves;
  guard_transitions += other.guard_transitions;
  queue_push_timeouts += other.queue_push_timeouts;
  migrations_total += other.migrations_total;
  migrated_pms += other.migrated_pms;
  migrated_bytes += other.migrated_bytes;
  expiry_reaped += other.expiry_reaped;
  wheel_cascades += other.wheel_cascades;
  for (int c = 0; c < ShardObs::kNumClasses; ++c) {
    shed_by_class[c] += other.shed_by_class[c];
  }
  guard_level = std::max(guard_level, other.guard_level);
  // Run-level reshard gauges are recorded on shard 0 only; max keeps the
  // merged view equal to that shard's value instead of summing zeros.
  live_shards = std::max(live_shards, other.live_shards);
  arena_legacy_bytes = std::max(arena_legacy_bytes, other.arena_legacy_bytes);
  // Footprint gauges sum: the merged view is the global memory holding.
  state_bytes += other.state_bytes;
  arena_live_bytes += other.arena_live_bytes;
  arena_capacity_bytes += other.arena_capacity_bytes;
  flat_cache_entries += other.flat_cache_entries;
  wheel_entries += other.wheel_entries;
  event_cost.Merge(other.event_cost);
  migration_us.Merge(other.migration_us);
  queue_wait_us.Merge(other.queue_wait_us);
  shed_trigger_us.Merge(other.shed_trigger_us);
  knapsack_us.Merge(other.knapsack_us);
  audit.insert(audit.end(), other.audit.begin(), other.audit.end());
  std::stable_sort(audit.begin(), audit.end(),
                   [](const AuditEntry& a, const AuditEntry& b) {
                     if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
                     if (a.shard != b.shard) return a.shard < b.shard;
                     return a.index < b.index;
                   });
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot snap;
  snap.shards.reserve(shards_.size());
  for (const std::unique_ptr<ShardObs>& s : shards_) {
    snap.shards.push_back(SnapshotShard(*s));
  }
  snap.total.event_cost.buckets.assign(LogHistogram::kNumBuckets, 0);
  snap.total.migration_us.buckets.assign(LogHistogram::kNumBuckets, 0);
  snap.total.queue_wait_us.buckets.assign(LogHistogram::kNumBuckets, 0);
  snap.total.shed_trigger_us.buckets.assign(LogHistogram::kNumBuckets, 0);
  snap.total.knapsack_us.buckets.assign(LogHistogram::kNumBuckets, 0);
  for (const ShardObsSnapshot& s : snap.shards) snap.total.Merge(s);
  return snap;
}

}  // namespace obs
}  // namespace cepshed
