// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Unit tests for the predicate expression AST: evaluation semantics, null
// propagation, selector resolution, analysis helpers.

#include "src/cep/expr.h"

#include <gtest/gtest.h>

#include "src/cep/pattern.h"
#include "tests/test_util.h"

namespace cepshed {
namespace {

using testing::MakeAbcdSchema;
using testing::MakeEvent;

class ExprTest : public ::testing::Test {
 protected:
  ExprTest() : schema_(MakeAbcdSchema()) {
    elements_ = {
        {"a", "A", 0, false, false, 1, 1},
        {"b", "B", 1, true, false, 1, 100},
        {"c", "C", 2, false, false, 1, 1},
    };
  }

  // Builds a context with a bound to one event and b bound to `b_events`.
  // The owners_ vector keeps the events alive; bindings span raw pointers,
  // mirroring the engine's flattened view.
  void Bind(EvalContext* ctx, const EventPtr& a, const std::vector<EventPtr>& bs) {
    owners_ = bs;
    owners_.push_back(a);
    a_store_ = {a.get()};
    b_store_.clear();
    for (const EventPtr& b : bs) b_store_.push_back(b.get());
    ctx->num_elements = 3;
    ctx->bindings[0] = {a_store_.data(), 1};
    ctx->bindings[1] = {b_store_.data(), static_cast<uint32_t>(b_store_.size())};
  }

  ExprPtr Resolved(ExprPtr e) {
    EXPECT_TRUE(e->Resolve(elements_, schema_).ok());
    return e;
  }

  Schema schema_;
  std::vector<PatternElement> elements_;
  std::vector<EventPtr> owners_;
  std::vector<const Event*> a_store_;
  std::vector<const Event*> b_store_;
};

TEST_F(ExprTest, LiteralEvaluatesToItself) {
  EvalContext ctx;
  EXPECT_EQ(Expr::Literal(Value(7))->Eval(ctx, nullptr).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Expr::Literal(Value(2.5))->Eval(ctx, nullptr).AsDouble(), 2.5);
}

TEST_F(ExprTest, ArithmeticIntAndDouble) {
  EvalContext ctx;
  auto lit = [](int64_t v) { return Expr::Literal(Value(v)); };
  EXPECT_EQ(Expr::Binary(BinOp::kAdd, lit(2), lit(3))->Eval(ctx, nullptr).AsInt(), 5);
  EXPECT_EQ(Expr::Binary(BinOp::kSub, lit(2), lit(3))->Eval(ctx, nullptr).AsInt(), -1);
  EXPECT_EQ(Expr::Binary(BinOp::kMul, lit(4), lit(3))->Eval(ctx, nullptr).AsInt(), 12);
  EXPECT_EQ(Expr::Binary(BinOp::kDiv, lit(7), lit(2))->Eval(ctx, nullptr).AsInt(), 3);
  EXPECT_EQ(Expr::Binary(BinOp::kMod, lit(7), lit(2))->Eval(ctx, nullptr).AsInt(), 1);
  EXPECT_DOUBLE_EQ(Expr::Binary(BinOp::kDiv, Expr::Literal(Value(7.0)), lit(2))
                       ->Eval(ctx, nullptr)
                       .AsDouble(),
                   3.5);
}

TEST_F(ExprTest, DivisionByZeroIsNull) {
  EvalContext ctx;
  auto lit = [](int64_t v) { return Expr::Literal(Value(v)); };
  EXPECT_TRUE(Expr::Binary(BinOp::kDiv, lit(1), lit(0))->Eval(ctx, nullptr).is_null());
  EXPECT_TRUE(Expr::Binary(BinOp::kMod, lit(1), lit(0))->Eval(ctx, nullptr).is_null());
}

TEST_F(ExprTest, NullPropagatesThroughArithmetic) {
  EvalContext ctx;
  auto e = Expr::Binary(BinOp::kAdd, Expr::Literal(Value()), Expr::Literal(Value(1)));
  EXPECT_TRUE(e->Eval(ctx, nullptr).is_null());
  EXPECT_FALSE(e->EvalBool(ctx, nullptr));
}

TEST_F(ExprTest, Comparisons) {
  EvalContext ctx;
  auto lit = [](int64_t v) { return Expr::Literal(Value(v)); };
  EXPECT_TRUE(Expr::Compare(CmpOp::kEq, lit(2), lit(2))->EvalBool(ctx, nullptr));
  EXPECT_TRUE(Expr::Compare(CmpOp::kNe, lit(2), lit(3))->EvalBool(ctx, nullptr));
  EXPECT_TRUE(Expr::Compare(CmpOp::kLt, lit(2), lit(3))->EvalBool(ctx, nullptr));
  EXPECT_TRUE(Expr::Compare(CmpOp::kLe, lit(3), lit(3))->EvalBool(ctx, nullptr));
  EXPECT_TRUE(Expr::Compare(CmpOp::kGt, lit(4), lit(3))->EvalBool(ctx, nullptr));
  EXPECT_TRUE(Expr::Compare(CmpOp::kGe, lit(3), lit(3))->EvalBool(ctx, nullptr));
  EXPECT_FALSE(Expr::Compare(CmpOp::kEq, lit(2), lit(3))->EvalBool(ctx, nullptr));
}

TEST_F(ExprTest, BooleanConnectives) {
  EvalContext ctx;
  auto t = Expr::Literal(Value(1));
  auto f = Expr::Literal(Value(0));
  EXPECT_TRUE(Expr::And({t, t})->EvalBool(ctx, nullptr));
  EXPECT_FALSE(Expr::And({t, f})->EvalBool(ctx, nullptr));
  EXPECT_TRUE(Expr::Or({f, t})->EvalBool(ctx, nullptr));
  EXPECT_FALSE(Expr::Or({f, f})->EvalBool(ctx, nullptr));
  EXPECT_TRUE(Expr::Not(f)->EvalBool(ctx, nullptr));
}

TEST_F(ExprTest, SqrtAndAvgN) {
  EvalContext ctx;
  EXPECT_DOUBLE_EQ(
      Expr::Func(FuncKind::kSqrt, Expr::Literal(Value(16)))->Eval(ctx, nullptr).ToDouble(),
      4.0);
  EXPECT_TRUE(Expr::Func(FuncKind::kSqrt, Expr::Literal(Value(-1)))
                  ->Eval(ctx, nullptr)
                  .is_null());
  EXPECT_DOUBLE_EQ(Expr::AvgN({Expr::Literal(Value(2)), Expr::Literal(Value(4))})
                       ->Eval(ctx, nullptr)
                       .AsDouble(),
                   3.0);
}

TEST_F(ExprTest, SqrtCostsMoreThanAddition) {
  EvalContext ctx;
  double sqrt_cost = 0.0;
  double add_cost = 0.0;
  Expr::Func(FuncKind::kSqrt, Expr::Literal(Value(4)))->Eval(ctx, &sqrt_cost);
  Expr::Binary(BinOp::kAdd, Expr::Literal(Value(1)), Expr::Literal(Value(2)))
      ->Eval(ctx, &add_cost);
  EXPECT_GT(sqrt_cost, add_cost);
}

TEST_F(ExprTest, InSetMembership) {
  EvalContext ctx;
  auto e = Expr::InSet(Expr::Literal(Value(8)), {Value(7), Value(8), Value(9)});
  EXPECT_TRUE(e->EvalBool(ctx, nullptr));
  auto e2 = Expr::InSet(Expr::Literal(Value(5)), {Value(7), Value(8), Value(9)});
  EXPECT_FALSE(e2->EvalBool(ctx, nullptr));
}

TEST_F(ExprTest, AttrRefSelectorsOnBoundElements) {
  EvalContext ctx;
  auto a = MakeEvent(schema_, "A", 0, 0, /*id=*/1, /*v=*/10);
  auto b1 = MakeEvent(schema_, "B", 1, 1, 2, 20);
  auto b2 = MakeEvent(schema_, "B", 2, 2, 3, 30);
  Bind(&ctx, a, {b1, b2});

  auto val = [&](ExprPtr e) { return Resolved(e)->Eval(ctx, nullptr).AsInt(); };
  EXPECT_EQ(val(Expr::Attr("a", RefSelector::kSingle, "V")), 10);
  EXPECT_EQ(val(Expr::Attr("b", RefSelector::kFirst, "V")), 20);
  EXPECT_EQ(val(Expr::Attr("b", RefSelector::kLast, "V")), 30);
  // Plain reference to a Kleene variable resolves to its latest binding.
  EXPECT_EQ(val(Expr::Attr("b", RefSelector::kSingle, "V")), 30);
}

TEST_F(ExprTest, IterSelectorsAgainstCurrentEvent) {
  EvalContext ctx;
  auto a = MakeEvent(schema_, "A", 0, 0, 1, 10);
  auto b1 = MakeEvent(schema_, "B", 1, 1, 2, 20);
  Bind(&ctx, a, {b1});
  auto current = MakeEvent(schema_, "B", 2, 2, 3, 30);
  ctx.current = current.get();
  ctx.current_elem = 1;

  auto prev = Resolved(Expr::Attr("b", RefSelector::kIterPrev, "V"));
  auto curr = Resolved(Expr::Attr("b", RefSelector::kIterCurr, "V"));
  EXPECT_EQ(prev->Eval(ctx, nullptr).AsInt(), 20);
  EXPECT_EQ(curr->Eval(ctx, nullptr).AsInt(), 30);
}

TEST_F(ExprTest, AggregatesOverKleeneBinding) {
  EvalContext ctx;
  auto a = MakeEvent(schema_, "A", 0, 0, 1, 10);
  auto b1 = MakeEvent(schema_, "B", 1, 1, 2, 20);
  auto b2 = MakeEvent(schema_, "B", 2, 2, 3, 40);
  Bind(&ctx, a, {b1, b2});

  auto agg = [&](AggKind k) {
    return Resolved(Expr::Aggregate(k, "b", "V"))->Eval(ctx, nullptr).ToDouble();
  };
  EXPECT_DOUBLE_EQ(agg(AggKind::kAvg), 30.0);
  EXPECT_DOUBLE_EQ(agg(AggKind::kSum), 60.0);
  EXPECT_DOUBLE_EQ(agg(AggKind::kMin), 20.0);
  EXPECT_DOUBLE_EQ(agg(AggKind::kMax), 40.0);
  EXPECT_DOUBLE_EQ(agg(AggKind::kCount), 2.0);
}

TEST_F(ExprTest, ResolveRejectsUnknownNames) {
  auto bad_var = Expr::Attr("z", RefSelector::kSingle, "V");
  EXPECT_FALSE(bad_var->Resolve(elements_, schema_).ok());
  auto bad_attr = Expr::Attr("a", RefSelector::kSingle, "nope");
  EXPECT_FALSE(bad_attr->Resolve(elements_, schema_).ok());
}

TEST_F(ExprTest, ResolveRejectsIterOnNonKleene) {
  auto e = Expr::Attr("a", RefSelector::kIterPrev, "V");
  EXPECT_FALSE(e->Resolve(elements_, schema_).ok());
}

TEST_F(ExprTest, ResolveRejectsAggregateOnNonKleene) {
  auto e = Expr::Aggregate(AggKind::kAvg, "a", "V");
  EXPECT_FALSE(e->Resolve(elements_, schema_).ok());
}

TEST_F(ExprTest, AnalysisHelpers) {
  auto e = Resolved(Expr::Compare(CmpOp::kEq, Expr::Attr("a", RefSelector::kSingle, "ID"),
                                  Expr::Attr("c", RefSelector::kSingle, "ID")));
  EXPECT_EQ(e->MaxElemRef(), 2);
  EXPECT_TRUE(e->RefsElem(0));
  EXPECT_FALSE(e->RefsElem(1));
  EXPECT_FALSE(e->HasIterPrevRef(1));

  auto iter = Resolved(Expr::Compare(CmpOp::kEq, Expr::Attr("b", RefSelector::kIterCurr, "V"),
                                     Expr::Attr("b", RefSelector::kIterPrev, "V")));
  EXPECT_TRUE(iter->HasIterPrevRef(1));
}

TEST_F(ExprTest, CloneReplacingSelectorRewritesOnlyTarget) {
  auto e = Resolved(Expr::Compare(CmpOp::kEq, Expr::Attr("b", RefSelector::kIterPrev, "V"),
                                  Expr::Attr("a", RefSelector::kSingle, "V")));
  auto clone = e->CloneReplacingSelector(1, RefSelector::kIterPrev, RefSelector::kLast);
  std::vector<const Expr*> refs;
  clone->CollectAttrRefs(&refs);
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0]->selector(), RefSelector::kLast);
  EXPECT_EQ(refs[1]->selector(), RefSelector::kSingle);
  // Original untouched.
  EXPECT_TRUE(e->HasIterPrevRef(1));
}

TEST_F(ExprTest, ToStringRendersReadably) {
  auto e = Expr::Compare(
      CmpOp::kEq,
      Expr::Binary(BinOp::kAdd, Expr::Attr("a", RefSelector::kSingle, "V"),
                   Expr::Attr("b", RefSelector::kSingle, "V")),
      Expr::Attr("c", RefSelector::kSingle, "V"));
  EXPECT_EQ(e->ToString(), "(a.V+b.V)=c.V");
}

}  // namespace
}  // namespace cepshed
