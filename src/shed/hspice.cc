// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/shed/hspice.h"

#include <algorithm>
#include <numeric>

#include "src/cep/engine.h"
#include "src/shed/registry.h"

namespace cepshed {

// --- HspiceTable --------------------------------------------------------

Status HspiceTable::Train(std::shared_ptr<const Nfa> nfa,
                          const OfflineStats& stats) {
  if (nfa == nullptr) return Status::InvalidArgument("hspice: null nfa");
  nfa_ = std::move(nfa);
  num_types_ = static_cast<int>(stats.type_utility.size());
  num_states_ = nfa_->num_states();
  if (num_types_ <= 0 || num_states_ <= 0) {
    return Status::InvalidArgument("hspice: empty offline statistics");
  }
  type_share_ = stats.type_share;
  type_share_.resize(static_cast<size_t>(num_types_), 0.0);

  const size_t cells =
      static_cast<size_t>(num_types_) * static_cast<size_t>(num_states_);
  std::vector<double> completed(cells, 0.0);
  std::vector<double> created(cells, 0.0);
  for (const PmRecord& rec : stats.records) {
    if (rec.last_event_type < 0 || rec.last_event_type >= num_types_ ||
        rec.state < 0 || rec.state >= num_states_) {
      continue;
    }
    const size_t idx = Index(rec.last_event_type, rec.state);
    created[idx] += 1.0;
    const float contrib = std::accumulate(rec.contrib_by_slice.begin(),
                                          rec.contrib_by_slice.end(), 0.0f);
    if (contrib > 0.0f) completed[idx] += 1.0;
  }

  utility_.assign(cells, 0.0);
  for (int t = 0; t < num_types_; ++t) {
    for (int s = 0; s < num_states_; ++s) {
      const size_t idx = Index(t, s);
      if (created[idx] > 0.0) {
        utility_[idx] = completed[idx] / created[idx];
      } else {
        // Never observed at this state in training: back off to the
        // type-level utility so unseen combinations are not treated as
        // provably worthless.
        utility_[idx] = stats.type_utility[static_cast<size_t>(t)];
      }
    }
  }
  RebuildThresholds();
  return Status::OK();
}

double HspiceTable::Utility(int type, int state) const {
  if (type < 0 || type >= num_types_ || state < 0 || state >= num_states_) {
    return 0.0;
  }
  return utility_[Index(type, state)];
}

void HspiceTable::SetUtility(int type, int state, double u) {
  if (type < 0 || type >= num_types_ || state < 0 || state >= num_states_) return;
  utility_[Index(type, state)] = u;
}

double HspiceTable::StaticEventUtility(int type) const {
  if (nfa_ == nullptr) return 0.0;
  double best = 0.0;
  for (int s : nfa_->StatesForType(type)) best = std::max(best, Utility(type, s));
  return best;
}

double HspiceTable::ThresholdFor(double fraction) const {
  if (fraction <= 0.0 || sorted_.empty()) return -1.0;
  double cum = 0.0;
  for (const auto& [u, share] : sorted_) {
    cum += share;
    if (cum >= fraction) return u;
  }
  return sorted_.back().first;
}

void HspiceTable::RebuildThresholds() {
  sorted_.clear();
  sorted_.reserve(static_cast<size_t>(num_types_));
  for (int t = 0; t < num_types_; ++t) {
    sorted_.emplace_back(StaticEventUtility(t),
                         type_share_[static_cast<size_t>(t)]);
  }
  std::sort(sorted_.begin(), sorted_.end());
}

// --- HspiceShedder ------------------------------------------------------

HspiceShedder::HspiceShedder(const HspiceTable& table, double theta,
                             uint64_t trigger_delay, uint64_t seed)
    : table_(table),
      controller_(DropRateController(theta, trigger_delay)),
      created_inc_(256, 2),
      completed_inc_(256, 2),
      rng_(seed) {
  occupied_.assign(static_cast<size_t>(table_.num_states()), false);
}

HspiceShedder::HspiceShedder(const HspiceTable& table, double fraction,
                             uint64_t seed)
    : table_(table),
      fixed_fraction_(fraction),
      created_inc_(256, 2),
      completed_inc_(256, 2),
      rng_(seed) {
  occupied_.assign(static_cast<size_t>(table_.num_states()), false);
  threshold_ = table_.ThresholdFor(fraction);
  planned_fraction_ = fraction;
}

double HspiceShedder::theta() const {
  return controller_ ? controller_->theta() : -1.0;
}

void HspiceShedder::Bind(Engine* engine) {
  Shedder::Bind(engine);
  const int num_states = table_.num_states();
  // Online adaptation: count creations and completions per (type, state)
  // key. The sketches absorb unbounded key churn at fixed memory; the
  // fold blends their ratio into the table.
  engine->set_pm_created_hook(
      [this, num_states](const PartialMatch& pm, const PartialMatch*) {
        if (pm.is_witness || pm.LastEvent() == nullptr) return;
        const uint64_t key =
            static_cast<uint64_t>(pm.LastEvent()->type()) *
                static_cast<uint64_t>(num_states) +
            static_cast<uint64_t>(pm.state);
        created_inc_.Add(key);
      });
  engine->set_match_hook(
      [this, num_states](const Match& m, const PartialMatch*) {
        // Credit every bound event at its slot: each represents a partial
        // match at that state (with that last-event type) that completed.
        for (size_t slot = 0; slot < m.slot_end.size(); ++slot) {
          const auto [begin, end] = m.SlotRange(slot);
          for (uint32_t i = begin; i < end; ++i) {
            const uint64_t key =
                static_cast<uint64_t>(m.events[i]->type()) *
                    static_cast<uint64_t>(num_states) +
                static_cast<uint64_t>(slot);
            completed_inc_.Add(key);
          }
        }
      });
}

bool HspiceShedder::Feasible(int state) const {
  if (state == 0) return true;  // starts a fresh pattern instance
  if (engine_ == nullptr) return true;
  if (occupied_[static_cast<size_t>(state - 1)]) return true;
  // A Kleene component with an open instance keeps consuming its type.
  if (table_.nfa() != nullptr && table_.nfa()->state(state).kleene &&
      occupied_[static_cast<size_t>(state)]) {
    return true;
  }
  return false;
}

void HspiceShedder::RefreshOccupancy() {
  if (engine_ == nullptr) return;
  const PartialMatchStore& store = engine_->store();
  const int n = std::min(table_.num_states(), store.num_states());
  for (int s = 0; s < n; ++s) {
    bool any = false;
    for (const auto& pm : store.bucket(s)) {
      if (pm->alive) {
        any = true;
        break;
      }
    }
    occupied_[static_cast<size_t>(s)] = any;
  }
}

double HspiceShedder::RuntimeUtility(int type) const {
  if (table_.nfa() == nullptr) return table_.StaticEventUtility(type);
  double best = 0.0;
  bool feasible_somewhere = false;
  for (int s : table_.nfa()->StatesForType(type)) {
    if (!Feasible(s)) continue;
    feasible_somewhere = true;
    best = std::max(best, table_.Utility(type, s));
  }
  // No state can consume the event right now: worthless at this instant,
  // whatever its historic utility.
  return feasible_somewhere ? best : 0.0;
}

bool HspiceShedder::FilterEvent(const Event& event) {
  if (threshold_ < 0.0) return false;
  const double u = RuntimeUtility(event.type());
  if (u < threshold_) {
    return DropEvent(static_cast<int>(event.type()), last_mu_, event.seq(),
                     event.timestamp());
  }
  if (u == threshold_ && planned_fraction_ > 0.0 &&
      rng_.Bernoulli(0.5 * planned_fraction_)) {
    // Tie-breaking keeps the realized rate near the target when the
    // utility distribution is coarse.
    return DropEvent(static_cast<int>(event.type()), last_mu_, event.seq(),
                     event.timestamp());
  }
  return false;
}

void HspiceShedder::MaybeFold() {
  if (created_inc_.TotalMass() <= 0.0) return;
  const int num_states = table_.num_states();
  bool changed = false;
  for (int t = 0; t < table_.num_types(); ++t) {
    for (int s = 0; s < num_states; ++s) {
      const uint64_t key = static_cast<uint64_t>(t) *
                               static_cast<uint64_t>(num_states) +
                           static_cast<uint64_t>(s);
      const double created = created_inc_.Estimate(key);
      if (created < kMinFoldObservations) continue;
      const double p =
          std::min(1.0, completed_inc_.Estimate(key) / created);
      table_.SetUtility(
          t, s, (1.0 - kFoldWeight) * table_.Utility(t, s) + kFoldWeight * p);
      changed = true;
    }
  }
  created_inc_.Clear();
  completed_inc_.Clear();
  if (!changed) return;
  table_.RebuildThresholds();
  // The quantile moved under the current plan: re-derive the cutoff.
  if (planned_fraction_ > 0.0) threshold_ = table_.ThresholdFor(planned_fraction_);
  if (obs_ != nullptr) obs_->shed_adapt_folds.Add();
}

void HspiceShedder::AfterEvent(Timestamp, double mu) {
  last_mu_ = mu;
  ++events_seen_;
  if (events_seen_ % kRefreshPeriod == 0) RefreshOccupancy();
  if (events_seen_ % kFoldPeriod == 0) MaybeFold();
  if (!controller_) return;
  const double rate = controller_->Update(mu);
  if (rate != planned_fraction_) {
    planned_fraction_ = rate;
    threshold_ = table_.ThresholdFor(rate);
  }
}

void HspiceShedder::Reset() {
  Shedder::Reset();
  last_mu_ = 0.0;
  events_seen_ = 0;
  std::fill(occupied_.begin(), occupied_.end(), false);
  created_inc_.Clear();
  completed_inc_.Clear();
  if (controller_) {
    controller_->Reset();
    planned_fraction_ = 0.0;
    threshold_ = -1.0;
  } else {
    planned_fraction_ = fixed_fraction_;
    threshold_ = table_.ThresholdFor(fixed_fraction_);
  }
}

// --- Registry ----------------------------------------------------------

CEPSHED_SHEDDER_LINK_TOKEN(Hspice)

namespace {

const ShedderRegistrar kHspiceRegistrar{
    "hspice", [](const ShedderConfig& config,
                 const ShedderContext& ctx) -> Result<std::unique_ptr<Shedder>> {
      CEPSHED_RETURN_NOT_OK(config.ExpectKeys({"theta", "fraction", "delay", "seed"}));
      CEPSHED_ASSIGN_OR_RETURN(ResolvedMode mode, ResolveMode(config, ctx));
      if (!mode.fixed() && !mode.bound()) {
        return Status::InvalidArgument(
            "shedder \"hspice\" needs a latency bound (theta=...) or a "
            "fixed ratio (fraction=...)");
      }
      if (ctx.hspice == nullptr || !ctx.hspice->trained()) {
        return Status::InvalidArgument(
            "shedder \"hspice\" needs a trained (type, state) utility "
            "table (construct it through a prepared harness)");
      }
      if (mode.fixed()) {
        return std::unique_ptr<Shedder>(
            new HspiceShedder(*ctx.hspice, mode.fraction, mode.seed));
      }
      return std::unique_ptr<Shedder>(
          new HspiceShedder(*ctx.hspice, mode.theta, mode.delay, mode.seed));
    }};

}  // namespace

}  // namespace cepshed
