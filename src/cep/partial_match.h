// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Partial matches and their store — the *state* of CEP query evaluation
// (P(k) in the paper). State-based load shedding operates directly on this
// store; the cost model annotates each partial match with its class.
//
// Representation: bindings are stored as an immutable, arena-allocated
// singly-linked chain (newest event first). Extending a match — the hot
// path of Kleene and long-pattern evaluation — allocates exactly one node
// and shares the entire parent prefix, so a clone is O(1) instead of the
// O(L) vector copy a flat layout needs. Chains are reference-counted per
// node: a node is freed only when no child chain and no PartialMatch tail
// points at it, so evicting one match never invalidates the prefix of a
// sibling.

#ifndef CEPSHED_CEP_PARTIAL_MATCH_H_
#define CEPSHED_CEP_PARTIAL_MATCH_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/cep/event.h"
#include "src/common/time.h"

namespace cepshed {

class BindingArena;

/// \brief One link of a shared-prefix binding chain.
///
/// `depth` is the 1-based length of the chain ending at this node, i.e.
/// the node holds the event at flat index `depth - 1`. `refs` counts the
/// owners: child nodes whose `prev` is this node, plus PartialMatch tails.
struct BindingNode {
  EventPtr event;
  /// Previous binding in the chain; doubles as the free-list link while
  /// the node is unallocated.
  BindingNode* prev = nullptr;
  /// First node of the pattern slot this binding belongs to (self when the
  /// binding opened the slot). Slot boundaries are thereby O(1) reachable
  /// from any node, so the engine can assemble an evaluation context by
  /// jumping segment to segment — O(#slots) — instead of flattening the
  /// whole chain, which is O(length) and was the hidden per-candidate cost
  /// that a copy-on-write clone path otherwise re-pays at evaluation time.
  const BindingNode* slot_start = nullptr;
  /// The arena whose blocks hold this node. After a shard migration a
  /// chain can span arenas (the adopted prefix lives in the donor's arena,
  /// extensions in the adopter's), so release must recycle each node into
  /// its home arena or the donor's live-node accounting never drains.
  BindingArena* home = nullptr;
  uint32_t refs = 0;
  uint32_t depth = 0;
};

/// \brief Block allocator + free list for BindingNode chains.
///
/// Nodes are handed out from fixed-size blocks and recycled through a free
/// list; blocks are only released when the arena is destroyed, so freed
/// nodes are immediately reusable capacity. Allocation (and therefore
/// chain extension and ref acquisition) is confined to the arena's home
/// shard thread, matching the engine's thread-confinement contract.
/// *Release* is not: after an elastic reshard, partial matches adopted by
/// another shard keep referencing chain nodes in this arena and recycle
/// them from the adopter's thread. The free list is therefore an atomic
/// Treiber stack — many concurrent pushers, but only the home thread ever
/// pops, which makes the CAS pop ABA-safe — and the live-node counter is
/// atomic. Per-node `refs` stay plain: hash partitioning keeps the chain
/// sets of matches owned by different shards disjoint (all events of a
/// match share the partition key), so no two threads ever touch the same
/// node's count.
class BindingArena {
 public:
  BindingArena() = default;
  BindingArena(const BindingArena&) = delete;
  BindingArena& operator=(const BindingArena&) = delete;

  /// Allocates a node binding `event` after `prev` (nullptr = chain head)
  /// and acquires a reference on `prev` on the new node's behalf. The
  /// returned node starts with one reference, owned by the caller.
  /// `new_slot` marks the binding as opening a fresh pattern slot (chain
  /// heads always do); otherwise it continues `prev`'s slot. Home-thread
  /// only.
  BindingNode* Extend(BindingNode* prev, const EventPtr& event,
                      bool new_slot = false) {
    BindingNode* node = Allocate();
    node->event = event;
    node->prev = prev;
    node->slot_start = (new_slot || prev == nullptr) ? node : prev->slot_start;
    node->home = this;
    node->refs = 1;
    node->depth = prev != nullptr ? prev->depth + 1 : 1;
    if (prev != nullptr) ++prev->refs;
    live_nodes_.fetch_add(1, std::memory_order_relaxed);
    return node;
  }

  /// Releases one reference on `node`, cascading along the prefix: every
  /// node whose reference count reaches zero is recycled *into its home
  /// arena* and its `prev` released in turn. Nodes still referenced by
  /// sibling chains survive. Static because a migrated chain may span
  /// arenas — the entry point does not determine where nodes return.
  static void Unref(BindingNode* node) {
    while (node != nullptr) {
      assert(node->refs > 0);
      if (--node->refs > 0) return;
      BindingNode* prev = node->prev;
      node->event.reset();  // drop the event share now, not at reuse
      node->home->Recycle(node);
      node = prev;
    }
  }

  /// Number of nodes currently referenced by some chain.
  size_t live_nodes() const { return live_nodes_.load(std::memory_order_relaxed); }
  /// Bytes attributed to live nodes. Each shared node is counted exactly
  /// once no matter how many matches reference its prefix, and exactly one
  /// arena — its home — reports it, however the chains were migrated.
  size_t LiveBytes() const { return live_nodes() * sizeof(BindingNode); }
  /// Bytes the arena holds from the allocator (blocks are retained for
  /// reuse; this never shrinks). Home-thread only.
  size_t CapacityBytes() const {
    return blocks_.size() * kBlockNodes * sizeof(BindingNode);
  }

 private:
  static constexpr size_t kBlockNodes = 512;

  /// Pushes a freed node onto the atomic free list (any thread).
  void Recycle(BindingNode* node) {
    BindingNode* head = free_list_.load(std::memory_order_relaxed);
    do {
      node->prev = head;
    } while (!free_list_.compare_exchange_weak(head, node,
                                               std::memory_order_release,
                                               std::memory_order_relaxed));
    live_nodes_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Home-thread only. The single-popper discipline makes the naive CAS
  /// pop safe: a node on the stack can only be removed here, so its link
  /// cannot be altered between the head load and the exchange.
  BindingNode* Allocate() {
    BindingNode* head = free_list_.load(std::memory_order_acquire);
    while (head != nullptr &&
           !free_list_.compare_exchange_weak(head, head->prev,
                                             std::memory_order_acquire,
                                             std::memory_order_acquire)) {
    }
    if (head != nullptr) return head;
    if (next_in_block_ == kBlockNodes) {
      blocks_.emplace_back(new BindingNode[kBlockNodes]);
      next_in_block_ = 0;
    }
    return &blocks_.back()[next_in_block_++];
  }

  std::vector<std::unique_ptr<BindingNode[]>> blocks_;
  std::atomic<BindingNode*> free_list_{nullptr};
  size_t next_in_block_ = kBlockNodes;
  std::atomic<size_t> live_nodes_{0};
};

/// \brief One partial match: a prefix binding of the pattern's positive
/// components, or a negation witness.
///
/// Partial matches are immutable once stored: extending a match clones it
/// (skip-till-any-match keeps the original); the clone shares the parent's
/// whole binding chain and adds one node. `alive` is a tombstone used by
/// window eviction and state-based shedding; dead matches are reclaimed by
/// the store's periodic compaction. Killing a match releases its chain
/// immediately (the memory signal must drop when the shedder acts) but
/// keeps `Length()` and `slot_end` readable for audit trails.
struct PartialMatch {
  /// Unique id (monotonic per engine), used for lineage tracking.
  uint64_t id = 0;
  /// Id of the partial match this one was cloned from (0 = stream-created).
  uint64_t parent_id = 0;
  /// Index of the positive component currently being filled. Equals the
  /// NFA state of the match.
  int state = 0;
  /// Prefix end offsets (into the flattened binding order) per positive
  /// slot filled so far. slot_end.size() == state for completed slots
  /// plus, for Kleene, the in-progress slot is represented by bindings
  /// beyond slot_end.back().
  std::vector<uint32_t> slot_end;
  /// Timestamp of the first bound event (window anchor).
  Timestamp start_ts = 0;
  /// Timestamp of the latest bound event.
  Timestamp last_ts = 0;
  /// Cost model class within the match's state (-1 = unclassified).
  int32_t class_label = -1;
  /// Tombstone: false once evicted or shed.
  bool alive = true;
  /// True for negation witnesses (single-event vetoes).
  bool is_witness = false;
  /// Pattern element index of the negated component (witnesses only).
  int negated_elem = -1;
  /// Sequence number of the first bound event (count-window anchor).
  uint64_t start_seq = 0;

  /// \name Expiry-wheel linkage (owned by the store's ExpiryWheel).
  ///
  /// A match's expiry deadline is fixed at creation (start anchor +
  /// window), so the store threads every live match onto a timing wheel
  /// through these intrusive links and finds the expired ones without
  /// scanning the live set. The linkage is store-internal transient state:
  /// it is never transferred by move (only store-owned matches are linked,
  /// and those live behind unique_ptr indirection and never move as
  /// objects).
  ///@{
  static constexpr int8_t kWheelNotQueued = -1;
  static constexpr int8_t kWheelOverdue = -2;
  /// Expiry deadline as a wheel key (monotone in deadline order).
  uint64_t wheel_deadline = 0;
  PartialMatch* wheel_next = nullptr;
  PartialMatch* wheel_prev = nullptr;
  /// Slot index within wheel_level (meaningless for sentinel levels).
  uint16_t wheel_slot = 0;
  /// Wheel level holding this match, or kWheelNotQueued / kWheelOverdue.
  int8_t wheel_level = kWheelNotQueued;
  ///@}

  PartialMatch() = default;
  ~PartialMatch() { ReleaseChain(); }

  // Chains are uniquely owned through the tail reference, so matches move
  // but never copy.
  PartialMatch(const PartialMatch&) = delete;
  PartialMatch& operator=(const PartialMatch&) = delete;
  PartialMatch(PartialMatch&& o) noexcept { *this = std::move(o); }
  PartialMatch& operator=(PartialMatch&& o) noexcept {
    if (this == &o) return *this;
    ReleaseChain();
    id = o.id;
    parent_id = o.parent_id;
    state = o.state;
    slot_end = std::move(o.slot_end);
    start_ts = o.start_ts;
    last_ts = o.last_ts;
    class_label = o.class_label;
    alive = o.alive;
    is_witness = o.is_witness;
    negated_elem = o.negated_elem;
    start_seq = o.start_seq;
    tail_ = o.tail_;
    length_ = o.length_;
    arena_ = o.arena_;
    o.tail_ = nullptr;
    o.length_ = 0;
    o.arena_ = nullptr;
    return *this;
  }

  /// Newest node of the binding chain (nullptr when empty or released).
  const BindingNode* tail() const { return tail_; }

  /// Total number of bound events. Stays valid after ReleaseChain so dead
  /// matches remain auditable.
  uint32_t Length() const { return length_; }

  /// Events bound to the in-progress (Kleene) component.
  uint32_t OpenCount() const {
    const uint32_t closed = slot_end.empty() ? 0 : slot_end.back();
    return length_ - closed;
  }

  /// The latest bound event (nullptr for empty/released chains).
  const Event* LastEvent() const {
    return tail_ != nullptr ? tail_->event.get() : nullptr;
  }

  /// The event at flat index `index` — O(L - index) chain walk; meant for
  /// diagnostics and tests, not the evaluation hot path (the engine keeps
  /// a flattened view for that).
  const Event* EventAt(uint32_t index) const {
    const BindingNode* node = tail_;
    while (node != nullptr && node->depth > index + 1) node = node->prev;
    return node != nullptr ? node->event.get() : nullptr;
  }

  /// Appends `event` to this match's chain, sharing `parent`'s chain as
  /// the prefix (parent may be nullptr for stream-created matches). Also
  /// copies the parent's slot_end. O(1) in the parent length. `new_slot`
  /// marks the event as opening a fresh pattern slot rather than extending
  /// the parent's in-progress one.
  void ExtendFrom(BindingArena* arena, const PartialMatch* parent,
                  const EventPtr& event, bool new_slot = false) {
    assert(tail_ == nullptr);
    arena_ = arena;
    BindingNode* base =
        parent != nullptr ? parent->tail_ : nullptr;
    tail_ = arena->Extend(base, event, new_slot);
    length_ = (parent != nullptr ? parent->length_ : 0) + 1;
    if (parent != nullptr) slot_end = parent->slot_end;
  }

  /// Appends one more event to this match's own chain (builders/tests).
  void Append(BindingArena* arena, const EventPtr& event,
              bool new_slot = false) {
    arena_ = arena;
    BindingNode* node = arena->Extend(tail_, event, new_slot);
    if (tail_ != nullptr) BindingArena::Unref(tail_);  // ownership moved to node
    tail_ = node;
    ++length_;
  }

  /// Marks the current slot complete at the current length.
  void CloseSlot() { slot_end.push_back(length_); }

  /// Writes the bound events in stream order into *out (resized to
  /// Length()). The raw-pointer overload is the engine's flatten path; the
  /// EventPtr overload is used when the result must own the events (match
  /// emission).
  void FlattenTo(std::vector<const Event*>* out) const {
    out->resize(length_);
    for (const BindingNode* n = tail_; n != nullptr; n = n->prev) {
      (*out)[n->depth - 1] = n->event.get();
    }
  }
  void FlattenTo(std::vector<EventPtr>* out) const {
    out->resize(length_);
    for (const BindingNode* n = tail_; n != nullptr; n = n->prev) {
      (*out)[n->depth - 1] = n->event;
    }
  }

  /// Releases this match's reference on its chain; shared prefix nodes
  /// survive as long as any sibling still references them. Length() and
  /// slot_end stay readable. Each node returns to its home arena, so this
  /// is correct for chains spanning arenas after a migration.
  void ReleaseChain() {
    if (tail_ != nullptr) BindingArena::Unref(tail_);
    tail_ = nullptr;
  }

  /// True if the match has aged out of the window at time `now`. The
  /// paper's WITHIN is inclusive: a completion exactly at the boundary
  /// still matches, so expiry is strict (`>`); ExpiredByCount mirrors
  /// this for count-based windows.
  bool Expired(Timestamp now, Duration window) const {
    return now - start_ts > window;
  }
  /// True if the match has aged out of a count-based window at stream
  /// position `seq`.
  bool ExpiredByCount(uint64_t seq, uint64_t count_window) const {
    return seq - start_seq > count_window;
  }

 private:
  BindingNode* tail_ = nullptr;
  uint32_t length_ = 0;
  BindingArena* arena_ = nullptr;
};

/// \brief Hierarchical timing wheel over partial-match expiry deadlines
/// (DESIGN.md §3.9).
///
/// Eight levels of 256 slots each cover the full 64-bit key space; an
/// entry sits at the coarsest level where its deadline still disagrees
/// with the wheel's current time, and cascades toward level 0 as the wheel
/// advances. Advancing to threshold T detaches only the slots the time
/// hands actually crossed, so a reap costs O(expired + cascaded) plus a
/// bounded slot walk — never O(live). Entries are intrusively linked
/// through PartialMatch::wheel_* (O(1) unlink when shedding or migration
/// kills a match out from under the wheel), per-slot lists are FIFO so
/// reap order is deterministic, and every detached entry's deadline is
/// checked exactly — slot residency is a search accelerator, never a
/// correctness authority (multi-revolution jumps alias slots).
///
/// Out-of-order timestamps park entries whose deadline is already behind
/// the wheel on an overdue list that every reap rechecks, mirroring the
/// scan path's behavior of evicting them at the next sweep whose `now`
/// passes the deadline. The wheel's clock never moves backwards.
class ExpiryWheel {
 public:
  static constexpr int kLevels = 8;
  static constexpr int kSlotBits = 8;
  static constexpr int kSlots = 1 << kSlotBits;
  static constexpr int kWords = kSlots / 64;

  /// Links `pm` under its deadline key. The match must not be queued.
  void Enqueue(PartialMatch* pm, uint64_t deadline);

  /// Detaches `pm` if queued (no-op otherwise). O(1).
  void Unlink(PartialMatch* pm);

  /// Advances the wheel to `threshold` and appends every queued match
  /// with deadline strictly below it to *out (detached, in deterministic
  /// level/slot/FIFO order). A threshold at or behind the current time
  /// only rechecks the overdue list. Returns the number reaped.
  size_t Reap(uint64_t threshold, std::vector<PartialMatch*>* out);

  /// Resets the wheel structure (links are NOT cleared on the matches —
  /// callers reset or destroy them wholesale, as PartialMatchStore::Clear
  /// does). The cascade counter survives: it is exported as a monotone
  /// observability counter.
  void Clear();

  /// Queued matches (live matches when driven by PartialMatchStore).
  size_t entries() const { return entries_; }
  /// Total re-placements of surviving entries during advances (monotone).
  uint64_t cascades() const { return cascades_; }
  /// Current wheel time (the largest reap threshold seen).
  uint64_t now() const { return now_; }

 private:
  struct Slot {
    PartialMatch* head = nullptr;
    PartialMatch* tail = nullptr;
  };

  void Place(PartialMatch* pm);
  static void PushBack(Slot* slot, PartialMatch* pm);

  Slot slots_[kLevels][kSlots];
  uint64_t occupied_[kLevels][kWords] = {};
  /// Entries enqueued with a deadline already behind now_ (out-of-order
  /// event time); rechecked exactly on every reap.
  Slot overdue_;
  uint64_t now_ = 0;
  size_t entries_ = 0;
  uint64_t cascades_ = 0;
  /// Scratch for entries surviving an advance; re-placed only after the
  /// slot walk finishes so nothing is visited twice within one reap.
  std::vector<PartialMatch*> cascade_scratch_;
};

/// \brief Buckets of partial matches per NFA state, plus negation
/// witnesses, with tombstone-based removal.
class PartialMatchStore {
 public:
  using Bucket = std::vector<std::unique_ptr<PartialMatch>>;

  /// Constructs a store for `num_states` positive components and
  /// `num_elements` total pattern components (witness buckets are indexed
  /// by pattern element).
  PartialMatchStore(int num_states, int num_elements);

  /// The arena this store's binding chains allocate from. Matches queued
  /// for insertion must already allocate from this arena. (Chains adopted
  /// from another shard keep their prefixes in that shard's arena; see
  /// AdoptForeignArenas.)
  BindingArena& arena() { return *arena_; }
  const BindingArena& arena() const { return *arena_; }

  /// Shared ownership of the primary arena, for handing to stores that
  /// adopt chains allocated here: the arena must outlive every foreign
  /// reference into it, whichever store is destroyed first.
  std::shared_ptr<BindingArena> shared_arena() const { return arena_; }

  /// Registers arenas that chains adopted into this store may reference
  /// (the donor's primary arena plus anything the donor itself adopted).
  /// Duplicates and the store's own arena are skipped; drained foreign
  /// arenas are pruned opportunistically.
  void AdoptForeignArenas(const std::vector<std::shared_ptr<BindingArena>>& arenas);

  /// Drops foreign arenas with no live nodes left. An arena still in use
  /// as some other store's primary stays alive through that store's
  /// reference; pruning here only releases this store's lifetime pin.
  void PruneForeignArenas();

  /// Live/capacity bytes in adopted foreign arenas still pinned by this
  /// store. Diagnostic only — live bytes are *reported* by each arena's
  /// home store (see LiveBytes), so summing gauges across shards stays
  /// duplicate-free.
  size_t ForeignArenaLiveBytes() const;
  size_t num_foreign_arenas() const { return foreign_arenas_.size(); }
  const std::vector<std::shared_ptr<BindingArena>>& foreign_arenas() const {
    return foreign_arenas_;
  }

  /// Moves every live match (regulars into *regulars, witnesses into
  /// *witnesses) satisfying `pred` out of the store, preserving bucket
  /// order. The moved matches keep their chains — no copy, no release;
  /// accounting is adjusted as if they were never here. Tombstoned entries
  /// are left behind for Compact. Callers holding indexes must rebuild.
  void ExtractIf(const std::function<bool(const PartialMatch&)>& pred,
                 std::vector<std::unique_ptr<PartialMatch>>* regulars,
                 std::vector<std::unique_ptr<PartialMatch>>* witnesses);

  /// Inserts a match into the bucket of its state; returns a stable pointer.
  PartialMatch* Add(std::unique_ptr<PartialMatch> pm);

  /// Inserts a negation witness for the given pattern element.
  PartialMatch* AddWitness(std::unique_ptr<PartialMatch> pm);

  /// The bucket of the given NFA state.
  Bucket& bucket(int state) { return buckets_[static_cast<size_t>(state)]; }
  const Bucket& bucket(int state) const { return buckets_[static_cast<size_t>(state)]; }
  int num_states() const { return static_cast<int>(buckets_.size()); }

  /// The witness bucket of the given pattern element.
  Bucket& witnesses(int elem) { return witness_buckets_[static_cast<size_t>(elem)]; }
  const Bucket& witnesses(int elem) const {
    return witness_buckets_[static_cast<size_t>(elem)];
  }
  int num_witness_buckets() const { return static_cast<int>(witness_buckets_.size()); }

  /// Tombstones a match (no-op if already dead) and releases its binding
  /// chain back to the arena; prefix nodes shared with siblings survive.
  void Kill(PartialMatch* pm);

  /// Number of live regular partial matches.
  size_t NumAlive() const { return num_alive_; }
  /// Number of live negation witnesses.
  size_t NumAliveWitnesses() const { return num_alive_witnesses_; }
  /// Number of tombstoned entries awaiting compaction.
  size_t NumDead() const { return num_dead_; }

  /// Chain-independent footprint of one match: the struct itself, the
  /// slot_end payload at its allocated *capacity* (vectors grow by
  /// doubling; charging size() undercounts the real footprint), and
  /// allocator slack. Events themselves are shared with the stream and
  /// not charged.
  static size_t FixedBytes(const PartialMatch& pm) {
    return sizeof(PartialMatch) + pm.slot_end.capacity() * sizeof(uint32_t) +
           kPerMatchOverheadBytes;
  }

  /// Deterministic *marginal* memory estimate of one match: FixedBytes
  /// plus the exclusive suffix of its chain — the nodes that would return
  /// to the arena if this match alone were killed. Shared prefix nodes
  /// are charged to no single match (they are in ApproxLiveBytes once);
  /// the shedder's kill loop self-corrects as siblings die and their
  /// prefixes become exclusive.
  static size_t ApproxBytes(const PartialMatch& pm) {
    size_t exclusive = 0;
    for (const BindingNode* n = pm.tail(); n != nullptr && n->refs == 1;
         n = n->prev) {
      ++exclusive;
    }
    return FixedBytes(pm) + exclusive * sizeof(BindingNode);
  }

  /// Estimated bytes held by live matches and witnesses — the memory
  /// signal the overload guard enforces its budget against. O(1): the
  /// fixed per-match part is maintained incrementally by
  /// Add/AddWitness/Kill, and the arena counts every live chain node
  /// exactly once regardless of prefix sharing. Chain nodes of adopted
  /// matches are charged to their home arena's store, keeping the global
  /// sum deduplicated across shards.
  size_t ApproxLiveBytes() const {
    return fixed_live_bytes_ + arena_->LiveBytes();
  }

  /// Tombstones every live match (regular and witness) whose window has
  /// elapsed at `now`; returns the number evicted.
  size_t EvictExpired(Timestamp now, Duration window);

  /// \name Deadline-ordered expiry (DESIGN.md §3.9)
  ///
  /// A match's deadline is fixed at creation: start_ts + window for time
  /// windows, start_seq + count_window for count windows. Once configured
  /// with use_wheel, every Add/AddWitness enqueues the match on the
  /// hierarchical timing wheel and ReapExpired kills exactly the set a
  /// full scan (EvictExpired / an ExpiredByCount sweep) would kill — in
  /// O(expired) instead of O(live). Kill, ExtractIf, and Clear keep the
  /// wheel consistent, so matches shed or migrated out from under it are
  /// simply no longer there to reap.
  ///@{
  /// Fixes the window semantics and enables (or disables) the wheel.
  /// Call before the first Add; typically once, at engine construction.
  void ConfigureExpiry(Duration window, uint64_t count_window, bool use_wheel);
  bool wheel_enabled() const { return wheel_enabled_; }
  /// Kills every live match whose window has elapsed at time `now` /
  /// stream position `seq` (whichever the configured window mode uses);
  /// returns the number killed. Requires wheel_enabled().
  size_t ReapExpired(Timestamp now, uint64_t seq);
  /// Matches killed by ReapExpired since construction (monotone).
  uint64_t ExpiryReapedTotal() const { return expiry_reaped_total_; }
  /// Cascade re-placements performed by the wheel (monotone).
  uint64_t WheelCascadesTotal() const { return wheel_.cascades(); }
  /// Matches currently queued on the wheel (== live matches + witnesses
  /// when the wheel is enabled).
  size_t WheelEntries() const { return wheel_.entries(); }
  /// The deadline key of one match under the configured window mode
  /// (exposed for tests; monotone in expiry order).
  uint64_t DeadlineKey(const PartialMatch& pm) const;
  ///@}

  /// Applies `fn` to every live regular match.
  void ForEachAlive(const std::function<void(PartialMatch*)>& fn);
  /// Applies `fn` to every live witness.
  void ForEachAliveWitness(const std::function<void(PartialMatch*)>& fn);

  /// Physically removes tombstoned matches. Pointers to dead matches become
  /// dangling; callers holding indexes must rebuild them (the engine does).
  /// Pointers to live matches are never invalidated (unique_ptr
  /// indirection keeps them stable across the bucket moves).
  void Compact();

  /// Fraction of dead entries, used to decide when to compact.
  double DeadFraction() const;

  /// Kills everything (used between experiment runs). Arena blocks are
  /// retained as reusable capacity.
  void Clear();

 private:
  /// Unique-ptr indirection plus typical allocator rounding per entry.
  static constexpr size_t kPerMatchOverheadBytes = 32;

  // Declared before the buckets: match destructors release chains into
  // the arenas, so both the primary arena and any adopted foreign arenas
  // must outlive every bucket.
  std::shared_ptr<BindingArena> arena_ = std::make_shared<BindingArena>();
  std::vector<std::shared_ptr<BindingArena>> foreign_arenas_;
  std::vector<Bucket> buckets_;
  std::vector<Bucket> witness_buckets_;
  size_t num_alive_ = 0;
  size_t num_alive_witnesses_ = 0;
  size_t num_dead_ = 0;
  size_t fixed_live_bytes_ = 0;
  /// Deadline-ordered expiry state (see ConfigureExpiry).
  ExpiryWheel wheel_;
  bool wheel_enabled_ = false;
  Duration expiry_window_ = 0;
  uint64_t expiry_count_window_ = 0;
  uint64_t expiry_reaped_total_ = 0;
  std::vector<PartialMatch*> reap_scratch_;
};

}  // namespace cepshed

#endif  // CEPSHED_CEP_PARTIAL_MATCH_H_
