// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/shed/baselines.h"

#include <algorithm>
#include <numeric>

namespace cepshed {

// --- RI ----------------------------------------------------------------

RandomInputShedder::RandomInputShedder(double theta, uint64_t trigger_delay,
                                       uint64_t seed)
    : controller_(DropRateController(theta, trigger_delay)), rng_(seed) {}

RandomInputShedder::RandomInputShedder(double fraction, uint64_t seed)
    : fixed_fraction_(fraction), rng_(seed) {}

double RandomInputShedder::theta() const {
  return controller_ ? controller_->theta() : -1.0;
}

bool RandomInputShedder::FilterEvent(const Event&) {
  const double p = fixed_fraction_ >= 0.0 ? fixed_fraction_ : rate_;
  if (p > 0.0 && rng_.Bernoulli(p)) return DropEvent();
  return false;
}

void RandomInputShedder::AfterEvent(Timestamp, double mu) {
  if (controller_) rate_ = controller_->Update(mu);
}

void RandomInputShedder::Reset() {
  Shedder::Reset();
  rate_ = 0.0;
  if (controller_) controller_->Reset();
}

// --- SI ----------------------------------------------------------------

SelectivityInputShedder::SelectivityInputShedder(const OfflineStats& stats,
                                                 double theta, uint64_t trigger_delay,
                                                 uint64_t seed)
    : type_utility_(stats.type_utility),
      type_share_(stats.type_share),
      controller_(DropRateController(theta, trigger_delay)),
      rng_(seed) {
  drop_prob_.assign(type_utility_.size(), 0.0);
}

SelectivityInputShedder::SelectivityInputShedder(const OfflineStats& stats,
                                                 double fraction, uint64_t seed)
    : type_utility_(stats.type_utility),
      type_share_(stats.type_share),
      fixed_fraction_(fraction),
      rng_(seed) {
  drop_prob_.assign(type_utility_.size(), 0.0);
  RebuildPlan(fraction);
}

double SelectivityInputShedder::theta() const {
  return controller_ ? controller_->theta() : -1.0;
}

void SelectivityInputShedder::RebuildPlan(double fraction) {
  planned_fraction_ = fraction;
  std::fill(drop_prob_.begin(), drop_prob_.end(), 0.0);
  if (fraction <= 0.0) return;
  // Types in increasing utility order; drop whole low-utility types first,
  // then a probabilistic share of the marginal type.
  std::vector<size_t> order(type_utility_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (type_utility_[a] != type_utility_[b]) {
      return type_utility_[a] < type_utility_[b];
    }
    return type_share_[a] > type_share_[b];
  });
  double remaining = fraction;
  for (size_t t : order) {
    if (remaining <= 0.0) break;
    const double share = type_share_[t];
    if (share <= 0.0) continue;
    if (share <= remaining) {
      drop_prob_[t] = 1.0;
      remaining -= share;
    } else {
      drop_prob_[t] = remaining / share;
      remaining = 0.0;
    }
  }
}

bool SelectivityInputShedder::FilterEvent(const Event& event) {
  const size_t t = static_cast<size_t>(event.type());
  if (t >= drop_prob_.size()) return false;
  const double p = drop_prob_[t];
  if (p >= 1.0) return DropEvent();
  if (p > 0.0 && rng_.Bernoulli(p)) return DropEvent();
  return false;
}

void SelectivityInputShedder::AfterEvent(Timestamp, double mu) {
  if (!controller_) return;
  const double rate = controller_->Update(mu);
  if (rate != planned_fraction_) RebuildPlan(rate);
}

void SelectivityInputShedder::Reset() {
  Shedder::Reset();
  if (controller_) {
    controller_->Reset();
    RebuildPlan(0.0);
  } else {
    RebuildPlan(fixed_fraction_);
  }
}

// --- RS ----------------------------------------------------------------

RandomStateShedder::RandomStateShedder(LatencyBoundMode mode, uint64_t seed)
    : trigger_(OverloadTrigger(mode.theta, mode.trigger_delay)), rng_(seed) {}

RandomStateShedder::RandomStateShedder(FixedRatioMode mode, uint64_t seed)
    : fixed_fraction_(mode.fraction),
      period_(mode.period == 0 ? 1 : mode.period),
      rng_(seed) {}

double RandomStateShedder::theta() const {
  return trigger_ ? trigger_->theta() : -1.0;
}

void RandomStateShedder::ShedFraction(double fraction) {
  if (fraction <= 0.0) return;
  engine_->store().ForEachAlive([&](PartialMatch* pm) {
    if (rng_.Bernoulli(fraction)) KillPm(pm);
  });
  engine_->store().ForEachAliveWitness([&](PartialMatch* pm) {
    if (rng_.Bernoulli(fraction)) KillPm(pm);
  });
}

void RandomStateShedder::AfterEvent(Timestamp, double mu) {
  if (trigger_) {
    const double v = trigger_->Check(mu);
    if (v > 0.0) ShedFraction(v);
    return;
  }
  if (++events_seen_ % period_ == 0) ShedFraction(fixed_fraction_);
}

void RandomStateShedder::Reset() {
  Shedder::Reset();
  events_seen_ = 0;
  if (trigger_) trigger_->Reset();
}

// --- SS ----------------------------------------------------------------

SelectivityStateShedder::SelectivityStateShedder(const OfflineStats& stats,
                                                 LatencyBoundMode mode, uint64_t seed)
    : state_completion_(stats.state_completion),
      trigger_(OverloadTrigger(mode.theta, mode.trigger_delay)),
      rng_(seed) {}

SelectivityStateShedder::SelectivityStateShedder(const OfflineStats& stats,
                                                 FixedRatioMode mode, uint64_t seed)
    : state_completion_(stats.state_completion),
      fixed_fraction_(mode.fraction),
      period_(mode.period == 0 ? 1 : mode.period),
      rng_(seed) {}

double SelectivityStateShedder::theta() const {
  return trigger_ ? trigger_->theta() : -1.0;
}

void SelectivityStateShedder::ShedFraction(double fraction) {
  if (fraction <= 0.0) return;
  const size_t alive =
      engine_->store().NumAlive() + engine_->store().NumAliveWitnesses();
  size_t target = static_cast<size_t>(fraction * static_cast<double>(alive) + 0.5);
  if (target == 0) return;

  // Witnesses have zero completion probability: shed them first.
  engine_->store().ForEachAliveWitness([&](PartialMatch* pm) {
    if (target == 0) return;
    KillPm(pm);
    --target;
  });
  if (target == 0) return;

  // States in increasing completion probability.
  std::vector<int> order(state_completion_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return state_completion_[static_cast<size_t>(a)] <
           state_completion_[static_cast<size_t>(b)];
  });
  for (int s : order) {
    if (target == 0) break;
    for (auto& pm : engine_->store().bucket(s)) {
      if (target == 0) break;
      if (!pm->alive) continue;
      KillPm(pm.get());
      --target;
    }
  }
}

void SelectivityStateShedder::AfterEvent(Timestamp, double mu) {
  if (trigger_) {
    const double v = trigger_->Check(mu);
    if (v > 0.0) ShedFraction(v);
    return;
  }
  if (++events_seen_ % period_ == 0) ShedFraction(fixed_fraction_);
}

void SelectivityStateShedder::Reset() {
  Shedder::Reset();
  events_seen_ = 0;
  if (trigger_) trigger_->Reset();
}

}  // namespace cepshed
