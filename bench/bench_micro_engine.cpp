// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Micro benchmarks (google-benchmark): engine throughput with and without
// join indexes, per query, plus parser speed. Complements the figure
// benches with wall-clock numbers.

#include <benchmark/benchmark.h>

#include "src/cep/engine.h"
#include "src/obs/metrics.h"
#include "src/query/parser.h"
#include "src/workload/ds1.h"
#include "src/workload/queries.h"

namespace cepshed {
namespace {

void BM_EngineQ1(benchmark::State& state) {
  const Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = 20000;
  const EventStream stream = GenerateDs1(schema, gen);
  auto nfa = Nfa::Compile(*queries::Q1("4ms"), &schema);
  EngineOptions opts;
  opts.use_join_index = state.range(0) != 0;
  for (auto _ : state) {
    Engine engine(*nfa, opts);
    std::vector<Match> out;
    for (const EventPtr& e : stream) engine.Process(e, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_EngineQ1)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// BM_EngineQ1 with the full per-event obs record path enabled — exactly
/// what ShedRunner/ShardState add per event: two counters, the cost
/// histogram, and the matches-emitted delta. The CI overhead gate compares
/// this against BM_EngineQ1 (same Arg) and fails above 5%.
void BM_EngineQ1Metrics(benchmark::State& state) {
  const Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = 20000;
  const EventStream stream = GenerateDs1(schema, gen);
  auto nfa = Nfa::Compile(*queries::Q1("4ms"), &schema);
  EngineOptions opts;
  opts.use_join_index = state.range(0) != 0;
  obs::MetricsRegistry registry;
  registry.EnsureShards(1);
  obs::ShardObs* obs = registry.shard(0);
  for (auto _ : state) {
    Engine engine(*nfa, opts);
    std::vector<Match> out;
    size_t matches_seen = 0;
    for (const EventPtr& e : stream) {
      const double cost = engine.Process(e, &out);
      obs->events_routed.Add();
      obs->events_processed.Add();
      obs->event_cost.Record(cost);
      if (out.size() != matches_seen) {
        obs->matches_emitted.Add(out.size() - matches_seen);
        matches_seen = out.size();
      }
    }
    benchmark::DoNotOptimize(out.size());
    benchmark::DoNotOptimize(obs->events_processed.Load());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_EngineQ1Metrics)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_EngineQ2Kleene(benchmark::State& state) {
  const Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = 10000;
  gen.event_gap = 2;
  const EventStream stream = GenerateDs1(schema, gen);
  auto nfa = Nfa::Compile(*queries::Q2(static_cast<int>(state.range(0)), "1ms"), &schema);
  for (auto _ : state) {
    Engine engine(*nfa, EngineOptions{});
    std::vector<Match> out;
    for (const EventPtr& e : stream) engine.Process(e, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_EngineQ2Kleene)->Arg(1)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_ParseQuery(benchmark::State& state) {
  const std::string text =
      "PATTERN SEQ(A a, A+{1,4} b[], B c, C d) "
      "WHERE a.ID = b[i].ID AND a.ID = c.ID AND b[i].V = a.V AND a.V + c.V = d.V "
      "WITHIN 1ms";
  for (auto _ : state) {
    auto q = ParseQuery(text);
    benchmark::DoNotOptimize(q.ok());
  }
}
BENCHMARK(BM_ParseQuery);

void BM_NfaCompile(benchmark::State& state) {
  const Schema schema = MakeDs1Schema();
  const Query query = *queries::Q1("4ms");
  for (auto _ : state) {
    auto nfa = Nfa::Compile(query, &schema);
    benchmark::DoNotOptimize(nfa.ok());
  }
}
BENCHMARK(BM_NfaCompile);

}  // namespace
}  // namespace cepshed

BENCHMARK_MAIN();
