// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Shard-scaling benchmark: throughput of the sharded runtime versus the
// single-threaded engine over shard counts {1, 2, 4, 8}, for both routing
// modes, on DS1/Q1 and the Google-trace churn query. Each row reports the
// parallel run, the same plan replayed sequentially (RunSequential —
// isolates queue/merge overhead from parallel speedup), and the match
// count so exactness regressions are visible in the numbers themselves.
//
// Speedup is bounded by the physical core count: on a single-core host
// every configuration degenerates to sequential throughput minus queue
// overhead; run on a multicore machine to observe scaling.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/cep/nfa.h"
#include "src/obs/export.h"
#include "src/runtime/shard_runtime.h"

namespace cepshed {
namespace {

double BaselineEps(const Schema& schema, const EventStream& stream,
                   const Query& query, size_t* matches) {
  auto nfa = Nfa::Compile(query, &schema);
  if (!nfa.ok()) std::abort();
  Engine engine(*nfa, EngineOptions{});
  std::vector<Match> out;
  const auto t0 = std::chrono::steady_clock::now();
  for (const EventPtr& e : stream) engine.Process(e, &out);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  *matches = out.size();
  return static_cast<double>(stream.size()) / secs;
}

void RunCase(const std::string& name, const Schema& schema,
             const EventStream& stream, const Query& query, ShardRouting routing,
             int partition_attr, Duration slice_stride) {
  size_t base_matches = 0;
  const double base_eps = BaselineEps(schema, stream, query, &base_matches);
  std::printf("%s,engine,1,%.0f,1.00,%zu\n", name.c_str(), base_eps, base_matches);

  for (const int shards : {1, 2, 4, 8}) {
    auto nfa = Nfa::Compile(query, &schema);
    if (!nfa.ok()) std::abort();
    ShardRuntimeOptions opts;
    opts.num_shards = shards;
    opts.routing = routing;
    opts.partition_attr = partition_attr;
    opts.slice_stride = slice_stride;
    obs::MetricsRegistry registry;
    opts.metrics = &registry;
    auto runtime = ShardRuntime::Create(*nfa, opts);
    if (!runtime.ok()) {
      std::fprintf(stderr, "%s shards=%d: %s\n", name.c_str(), shards,
                   runtime.status().ToString().c_str());
      continue;
    }
    auto parallel = (*runtime)->Run(stream);
    // Snapshot before the replay: the registry is shared by both runs, so
    // this captures the parallel run alone.
    const obs::RegistrySnapshot snap = registry.Snapshot();
    auto replay = (*runtime)->RunSequential(stream);
    if (!parallel.ok() || !replay.ok()) std::abort();
    std::printf("# obs %s shards=%d: routed=%llu processed=%llu "
                "queue_waits=%llu cost_p99=%.3f\n",
                name.c_str(), shards,
                static_cast<unsigned long long>(snap.total.events_routed),
                static_cast<unsigned long long>(snap.total.events_processed),
                static_cast<unsigned long long>(snap.total.queue_push_timeouts),
                snap.total.event_cost.Quantile(0.99));
    if (const char* path = std::getenv("CEPSHED_METRICS_OUT")) {
      obs::WriteMetricsFile(path, snap);  // last case wins
    }
    const double par_eps = static_cast<double>(stream.size()) / parallel->wall_seconds;
    const double seq_eps = static_cast<double>(stream.size()) / replay->wall_seconds;
    std::printf("%s,sharded,%d,%.0f,%.2f,%zu\n", name.c_str(), shards, par_eps,
                par_eps / base_eps, parallel->matches.size());
    std::printf("%s,sharded-replay,%d,%.0f,%.2f,%zu\n", name.c_str(), shards, seq_eps,
                seq_eps / base_eps, replay->matches.size());
  }
}

}  // namespace
}  // namespace cepshed

int main() {
  using namespace cepshed;
  std::printf("# shard scaling — %u hardware threads\n",
              std::thread::hardware_concurrency());
  bench::Header("Shard scaling", "throughput vs shard count",
                "case,mode,shards,events_per_sec,speedup_vs_engine,matches");

  {
    const Schema schema = MakeDs1Schema();
    Ds1Options gen;
    gen.num_events = 60000;
    gen.seed = 51;
    const EventStream stream = GenerateDs1(schema, gen);
    const Query q1 = *queries::Q1("4ms");
    RunCase("ds1_q1_hash", schema, stream, q1, ShardRouting::kHashPartition,
            schema.AttributeIndex("ID"), 0);
    RunCase("ds1_q1_slice", schema, stream, q1, ShardRouting::kWindowSlice, -1,
            Millis(4));
  }
  {
    const Schema schema = MakeGoogleTraceSchema();
    GoogleTraceOptions gen;
    gen.num_events = 60000;
    gen.seed = 52;
    const EventStream stream = GenerateGoogleTrace(schema, gen);
    RunCase("google_churn_hash", schema, stream, *queries::GoogleTaskChurn(),
            ShardRouting::kHashPartition, schema.AttributeIndex("task"), 0);
  }
  return 0;
}
