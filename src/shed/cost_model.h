// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// The paper's cost model for hybrid load shedding (§IV-A, §V):
//  - partial matches are abstracted into classes: per NFA state, k-means
//    clusters over their (contribution, consumption) ground truth, with k
//    chosen by the gap statistic;
//  - a decision tree per state maps a match's predicate attributes to its
//    class immediately at creation;
//  - class estimates (90th-percentile contribution/consumption) are kept
//    per time slice of the match's age, and adapted online by streaming
//    counts folded as Gamma_new = (1-w) Gamma_old + w Gamma_incremented.
//
// The consumption side Gamma- is measured in the abstract work units that
// Expr::Eval accumulates. The predicate bytecode VM (src/cep/pred_vm.h)
// charges exactly the same units on every path — that parity is a hard
// contract (fuzzed in tests/expr_vm_test.cc), so estimates trained with
// either evaluator stay valid under the other and the Fig. 11 Omega
// ablation is unaffected by EngineOptions::use_pred_vm.

#ifndef CEPSHED_SHED_COST_MODEL_H_
#define CEPSHED_SHED_COST_MODEL_H_

#include <memory>
#include <vector>

#include "src/cep/engine.h"
#include "src/cep/nfa.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/ml/decision_tree.h"
#include "src/ml/regression_tree.h"
#include "src/shed/offline_estimator.h"
#include "src/sketch/count_min.h"

namespace cepshed {

/// \brief Cost model configuration.
struct CostModelOptions {
  /// Temporal abstraction: slices the query window is split into (§V-A).
  int num_time_slices = 4;
  /// Gap-statistic search range for the per-state cluster count.
  int k_min = 2;
  int k_max = 10;
  /// Explicit per-state cluster counts (bypasses the gap statistic; used
  /// by the Fig. 13 sensitivity grid). Empty = estimate.
  std::vector<int> fixed_k_per_state;
  /// Class value = this percentile of the member matches' values (§V-B).
  double percentile = 0.90;
  /// Online adaptation weight w.
  double adapt_w = 0.5;
  /// Explicit resource cost Omega vs. plain counting (Fig. 11 ablation).
  bool use_resource_cost = true;
  /// Decision tree depth; 0 = number of clusters of the state (the
  /// paper's §V-B balanced-tree rule). The default follows the paper's
  /// §VI-G experiment setting (max length 10): class boundaries such as
  /// a.V + b.V = c.V need a staircase of axis-aligned splits, which a
  /// clusters-deep tree is too shallow to express.
  int tree_max_depth = 10;
  /// Count-min sketch geometry for the streaming increment counts.
  size_t sketch_width = 2048;
  size_t sketch_depth = 3;
  /// Disable to freeze the trained estimates (ablations).
  bool enable_online_adaptation = true;
  /// Cap on records per state used for clustering / gap statistic
  /// (deterministic stride subsampling keeps training fast).
  size_t max_cluster_samples = 8000;
  /// Cap on records per state used for classifier training.
  size_t max_tree_samples = 60000;
};

/// \brief The trained, adaptable cost model.
class CostModel {
 public:
  CostModel(std::shared_ptr<const Nfa> nfa, CostModelOptions options);

  /// Trains clusters, class estimates, and classifiers from offline stats.
  Status Train(const OfflineStats& stats, Rng* rng);

  bool trained() const { return trained_; }
  int num_states() const { return nfa_->num_states(); }
  int num_slices() const { return options_.num_time_slices; }
  /// Clusters (classes) of the given state.
  int NumClasses(int state) const {
    return trained_ ? static_cast<int>(states_[static_cast<size_t>(state)].num_classes)
                    : 1;
  }

  /// Classifies a partial match (used as the engine's classifier hook).
  int32_t Classify(const PartialMatch& pm) const;

  /// Classifies the prefix of a complete match that was a partial match at
  /// `state` (1..slot_end.size()): same features and tree as Classify on
  /// the materialized prefix, but read directly off the match — the
  /// online-adaptation path must not rebuild per-ancestor event vectors.
  int32_t ClassifyPrefix(const Match& match, int state) const;

  /// Classifies an incoming event as the hypothetical partial match it
  /// would create/extend into `state` (used by the input filter rho_I).
  int32_t ClassifyEvent(const Event& event, int state) const;

  /// Age slice of a duration since a match's first event.
  int SliceOfAge(Duration age) const;

  /// Estimated future contribution of a class at an age slice (the
  /// paper's percentile-based class value).
  double Contribution(int state, int32_t cls, int slice) const;
  /// Estimated future consumption of a class at an age slice.
  double Consumption(int state, int32_t cls, int slice) const;
  /// Maximum future contribution observed for the class in training: zero
  /// means *provably* worthless on historic data. Shedding decisions that
  /// claim to be recall-free (standing filters) must check this, not the
  /// percentile, or classes whose value sits in a rare minority of
  /// members get starved.
  double ContributionMax(int state, int32_t cls, int slice) const;

  /// A single utility score for an incoming event: the best contribution
  /// estimate among the states the event could create state in. Drives the
  /// fixed-ratio HyI strategy.
  double EventUtility(const Event& event) const;

  /// The NFA states a new partial match would be at after consuming an
  /// event of `type` (fill -> state+1, Kleene -> same state).
  std::vector<int> ResultStatesForType(int type) const;

  // --- Online adaptation (§V-B) -------------------------------------------

  /// Engine hook: a partial match was created; charge consumption
  /// increments to its parent's class.
  void OnPmCreated(const PartialMatch& pm, const PartialMatch* parent, Timestamp now);
  /// Engine hook: a complete match was emitted; credit contribution to the
  /// parent's class.
  void OnMatch(const Match& match, const PartialMatch* parent, Timestamp now);
  /// Folds the streaming increments into the estimates at slice
  /// boundaries. `engine` supplies the live class populations.
  void MaybeFold(Timestamp now, Engine* engine);

  /// Seconds spent in Train (the paper reports 0.75 - 4.5 s).
  double train_seconds() const { return train_seconds_; }
  /// Chosen cluster count per state (diagnostics).
  std::vector<int> ChosenClusterCounts() const;
  /// Match-partition tree accessor (diagnostics/tests).
  const RegressionTree& pm_tree(int state) const {
    return states_[static_cast<size_t>(state)].pm_tree;
  }
  /// Event classifier accessor (diagnostics/tests).
  const DecisionTree& event_tree(int state) const {
    return states_[static_cast<size_t>(state)].event_tree;
  }

  const Nfa& nfa() const { return *nfa_; }
  const CostModelOptions& options() const { return options_; }

 private:
  struct StateModel {
    size_t num_classes = 1;
    /// Partition of the feature space into cost-homogeneous groups: a
    /// regression tree on (features) -> (contribution, consumption).
    RegressionTree pm_tree;
    /// Cluster (= class) of each pm_tree leaf.
    std::vector<int> class_of_leaf;
    /// Event classifier over last-event features (for rho_I class checks).
    DecisionTree event_tree;
    /// Event-value regressor: expected contribution of a match created by
    /// an event with these attributes. Class-level estimates are too
    /// coarse for rho_I at mid-pattern states (every event-attribute
    /// bucket can be majority-worthless while carrying all the value).
    RegressionTree event_value_tree;
    /// cls * num_slices + slice -> estimate.
    std::vector<double> contrib;
    std::vector<double> consum;
    /// cls * num_slices + slice -> maximum training contribution.
    std::vector<double> contrib_max;
  };

  /// Shared tail of Classify/ClassifyPrefix: feature vector -> class.
  int32_t ClassifyFeatures(const StateModel& sm, const std::vector<float>& f) const;

  size_t TableIndex(int32_t cls, int slice) const {
    return static_cast<size_t>(cls) * static_cast<size_t>(options_.num_time_slices) +
           static_cast<size_t>(slice);
  }
  uint64_t SketchKey(int state, int32_t cls, int slice) const {
    return (static_cast<uint64_t>(state) * 1024 + static_cast<uint64_t>(cls)) * 64 +
           static_cast<uint64_t>(slice);
  }

  std::shared_ptr<const Nfa> nfa_;
  CostModelOptions options_;
  Duration slice_len_;
  bool trained_ = false;
  /// Per event type: offline probability of participating in a match.
  /// Completing event types carry no stored-state class, so their utility
  /// for the input filter comes from here.
  std::vector<double> type_utility_;
  /// Event types that can complete the pattern directly.
  std::vector<bool> completing_type_;
  double train_seconds_ = 0.0;
  std::vector<StateModel> states_;
  CountMinSketch contrib_inc_;
  CountMinSketch consum_inc_;
  /// Partial matches created per key during the current fold interval —
  /// normalizes the increments to per-match averages.
  CountMinSketch created_inc_;
  Timestamp next_fold_ts_ = 0;
};

}  // namespace cepshed

#endif  // CEPSHED_SHED_COST_MODEL_H_
