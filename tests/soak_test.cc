// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Short-mode soak: the same SoakRunner the nightly job drives for an hour,
// shrunk to seconds so every CI run (including ASan) exercises the
// boundedness contract — post-warmup footprint-gauge peaks within the
// slack band of the warmup baseline, audit ring never past its capacity,
// Kleene-bomb state held down by the guard's memory budget.

#include <string>

#include <gtest/gtest.h>

#include "src/obs/audit_ring.h"
#include "src/workload/lab/soak.h"

namespace cepshed {
namespace lab {
namespace {

SoakOptions ShortOptions() {
  SoakOptions options;
  options.num_shards = 2;
  options.cycles = 6;
  options.warmup_cycles = 2;
  options.events_per_cycle = 1500;
  options.workload = "mixed";
  options.kleene_reps = 3;
  options.memory_budget_bytes = 4u << 20;
  options.seed = 42;
  return options;
}

TEST(SoakTest, MixedWorkloadStaysBounded) {
  SoakRunner runner(ShortOptions());
  auto report = runner.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->bounded) << report->violation;
  EXPECT_FALSE(report->truncated);
  ASSERT_EQ(report->cycles.size(), 6u);
  EXPECT_EQ(report->total_events, 6u * 1500u);
  for (const SoakCycleStats& c : report->cycles) {
    EXPECT_LE(c.audit_retained, obs::AuditRing::kCapacity);
  }
  // The Kleene-bomb cycles must actually complete matches — a soak over an
  // engine that never emits would bound trivially and prove nothing.
  EXPECT_GT(report->total_matches, 0u);
}

TEST(SoakTest, KleeneBombRespectsMemoryBudget) {
  SoakOptions options = ShortOptions();
  options.workload = "kleene";
  options.memory_budget_bytes = 1u << 20;
  SoakRunner runner(options);
  auto report = runner.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->bounded) << report->violation;
  // The hard budget is checked every event, so the observed peak can
  // overshoot by at most the fan-out of a single event.
  for (const SoakCycleStats& c : report->cycles) {
    EXPECT_LT(c.state_bytes_peak, 2 * options.memory_budget_bytes)
        << "cycle " << c.cycle;
  }
}

TEST(SoakTest, ArenaCapacityPlateausAfterWarmup) {
  SoakRunner runner(ShortOptions());
  auto report = runner.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->bounded) << report->violation;
  // Capacity is monotone by construction; bounded means it stopped
  // ratcheting. Spot-check the strongest form: the last cycle holds no
  // more arena capacity than slack times the warmup plateau.
  const size_t warmup_cap =
      report->cycles[1].arena_capacity_bytes_end;
  const size_t final_cap = report->cycles.back().arena_capacity_bytes_end;
  EXPECT_GE(final_cap, warmup_cap);  // monotonicity sanity
}

TEST(SoakTest, PersistentMetricsRegistrySeesWholeRun) {
  SoakRunner runner(ShortOptions());
  auto report = runner.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const obs::RegistrySnapshot snap = runner.metrics().Snapshot();
  ASSERT_EQ(snap.shards.size(), 2u);
  EXPECT_EQ(snap.total.events_routed, report->total_events);
  EXPECT_EQ(snap.total.events_processed + snap.total.events_dropped_guard,
            report->total_events);
  EXPECT_EQ(snap.total.matches_emitted, report->total_matches);
}

TEST(SoakTest, WallLimitTruncates) {
  SoakOptions options = ShortOptions();
  options.wall_limit_seconds = 1e-9;  // cut after the first cycle
  SoakRunner runner(options);
  auto report = runner.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->truncated);
  EXPECT_LT(report->cycles.size(), 6u);
}

TEST(SoakTest, RejectsBadOptions) {
  {
    SoakOptions options = ShortOptions();
    options.workload = "zipf";
    EXPECT_FALSE(SoakRunner(options).Run().ok());
  }
  {
    SoakOptions options = ShortOptions();
    options.warmup_cycles = options.cycles;
    EXPECT_FALSE(SoakRunner(options).Run().ok());
  }
  {
    SoakOptions options = ShortOptions();
    options.num_shards = 0;
    EXPECT_FALSE(SoakRunner(options).Run().ok());
  }
}

TEST(SoakTest, ScaleScheduleMigratesAndStaysBounded) {
  SoakOptions options = ShortOptions();
  options.cycles = 8;
  // Grow 2 -> 4 after warmup, shrink back 4 -> 2 two cycles later; the
  // final two cycles run at a stable live count, which arms the
  // legacy-arena plateau invariant on them.
  options.scale_schedule = "3:4;5:2";
  SoakRunner runner(options);
  auto report = runner.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->bounded) << report->violation;
  ASSERT_EQ(report->cycles.size(), 8u);

  EXPECT_EQ(report->cycles[2].live_shards, 2);
  EXPECT_FALSE(report->cycles[2].resized);
  EXPECT_EQ(report->cycles[3].live_shards, 4);
  EXPECT_TRUE(report->cycles[3].resized);
  EXPECT_EQ(report->cycles[4].live_shards, 4);
  EXPECT_EQ(report->cycles[5].live_shards, 2);
  EXPECT_TRUE(report->cycles[5].resized);
  EXPECT_EQ(report->cycles.back().live_shards, 2);

  // Both resizes must actually move state — an engine with nothing live at
  // the cycle boundary would bound trivially and prove nothing.
  EXPECT_GT(report->cycles[3].migrated_pms, 0u);
  EXPECT_GT(report->cycles[5].migrated_pms, 0u);

  // Plateau: by the last cycle (stable live count for >= 2 cycles) the
  // retired engines' arenas must have drained below the byte floor. The
  // boundedness verdict above already enforces this; restate the strongest
  // case explicitly so a future slack tweak can't silently weaken it.
  EXPECT_LE(report->cycles.back().legacy_arena_bytes_end, 64u << 10);

  const obs::RegistrySnapshot snap = runner.metrics().Snapshot();
  ASSERT_EQ(snap.shards.size(), 4u);
  EXPECT_EQ(snap.total.migrations_total, 2u);
  EXPECT_EQ(snap.total.migrated_pms, report->cycles[3].migrated_pms +
                                         report->cycles[5].migrated_pms);
  EXPECT_EQ(snap.total.live_shards, 2);
  EXPECT_EQ(snap.total.events_routed, report->total_events);
}

TEST(SoakTest, RejectsBadScaleSchedules) {
  {
    SoakOptions options = ShortOptions();
    options.scale_schedule = "1:4";  // inside warmup
    EXPECT_FALSE(SoakRunner(options).Run().ok());
  }
  {
    SoakOptions options = ShortOptions();
    options.scale_schedule = "9:4";  // past the last cycle
    EXPECT_FALSE(SoakRunner(options).Run().ok());
  }
  {
    SoakOptions options = ShortOptions();
    options.scale_schedule = "3:0";  // live count must be >= 1
    EXPECT_FALSE(SoakRunner(options).Run().ok());
  }
  {
    SoakOptions options = ShortOptions();
    options.scale_schedule = "4:3;3:2";  // not strictly increasing
    EXPECT_FALSE(SoakRunner(options).Run().ok());
  }
  {
    SoakOptions options = ShortOptions();
    options.scale_schedule = "bogus";
    EXPECT_FALSE(SoakRunner(options).Run().ok());
  }
}

TEST(SoakTest, JsonReportRoundsTrip) {
  SoakOptions options = ShortOptions();
  options.cycles = 3;
  options.warmup_cycles = 1;
  options.events_per_cycle = 300;
  SoakRunner runner(options);
  auto report = runner.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::string json = RenderSoakJson(options, *report);
  EXPECT_NE(json.find("\"bounded\":"), std::string::npos);
  EXPECT_NE(json.find("\"cycles\":["), std::string::npos);
  EXPECT_NE(json.find("\"workload\":\"mixed\""), std::string::npos);
  EXPECT_NE(json.find("\"total_events\":900"), std::string::npos);
}

}  // namespace
}  // namespace lab
}  // namespace cepshed
