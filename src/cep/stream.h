// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Event streams: an in-memory, time-ordered sequence of events plus a
// builder used by the workload generators.

#ifndef CEPSHED_CEP_STREAM_H_
#define CEPSHED_CEP_STREAM_H_

#include <memory>
#include <vector>

#include "src/cep/event.h"
#include "src/cep/schema.h"
#include "src/common/result.h"

namespace cepshed {

/// \brief A finite, time-ordered event stream over a fixed schema.
///
/// Streams are materialized in memory: the paper's experiments replay fixed
/// stream prefixes S(..k), and ground-truth runs must see the exact same
/// sequence as shedding runs.
class EventStream {
 public:
  /// Constructs an empty stream over the given schema (not owned; must
  /// outlive the stream).
  explicit EventStream(const Schema* schema) : schema_(schema) {}

  /// Appends an event; enforces non-decreasing timestamps.
  Status Append(EventPtr event);

  /// Convenience: builds and appends an event with the next sequence
  /// number. `attrs` is indexed by schema attribute index.
  Status Emit(int type, Timestamp timestamp, std::vector<Value> attrs);

  /// Number of events.
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  /// The i-th event.
  const EventPtr& operator[](size_t i) const { return events_[i]; }
  /// The schema of this stream.
  const Schema& schema() const { return *schema_; }

  /// Iteration support.
  std::vector<EventPtr>::const_iterator begin() const { return events_.begin(); }
  std::vector<EventPtr>::const_iterator end() const { return events_.end(); }

  /// Returns the prefix of the first `k` events as a new stream sharing the
  /// same event objects.
  EventStream Prefix(size_t k) const;

  /// Counts the events of the given type id.
  size_t CountType(int type) const;

 private:
  const Schema* schema_;
  std::vector<EventPtr> events_;
};

}  // namespace cepshed

#endif  // CEPSHED_CEP_STREAM_H_
