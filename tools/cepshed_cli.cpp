// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// cepshed_cli: evaluate a SASE-style query over a CSV event trace, with
// optional hybrid load shedding under a latency bound.
//
//   cepshed_cli --schema schema.txt --query query.sase --input trace.csv
//               [--train historic.csv --strategy hybrid --bound 0.5
//                --stat avg|p95|p99] [--matches out.csv] [--pm-series]
//               [--shards N --partition ATTR | --shards N --slice-stride US]
//               [--lenient] [--mmap]
//               [--fault-schedule SPEC --fault-seed N]
//               [--guard-theta COST --memory-budget-mb MB]
//               [--metrics-out FILE[.json|.prom] --metrics-interval SEC]
//               [--record-trace FILE] [--trace-prefix N]
//               [--scale-schedule SPEC] [--min-shards N] [--max-shards N]
//
// Trace record/replay (the adversarial lab's regression loop):
// --record-trace captures every ingested event into a binary trace file
// (src/workload/lab/trace.h) — on the sharded path including the router's
// shard targets. An --input ending in ".trace" is replayed from such a
// capture: the schema embedded in the file is used and --schema may be
// omitted. --trace-prefix N replays only the first N events of a capture,
// which is how a failing trace is minimized (bisect N until the failure
// disappears).
//
// Elastic resharding: --scale-schedule applies scripted resize anchors
// ("resize:at=900,delta=+2;resize:at=2000,delta=-1" — the fault DSL) and
// requires --max-shards for the grow headroom. --max-shards *without* a
// scale schedule arms the dynamic ReshardController instead: the runtime
// scales between --min-shards and --max-shards off queue depth and guard
// level. Both start from --shards and need --partition (partial-match
// ownership follows the key hash). A dynamic run is load-dependent, but
// --record-trace captures every executed resize; replaying that .trace
// re-applies the recorded schedule as scripted anchors, making the replay
// bit-for-bit deterministic.
//
// --metrics-out exports the run's observability snapshot (per-shard event
// counters, shed counts by class, guard-level transitions, latency
// histograms, and the shed-decision audit trail) as Prometheus text, or as
// JSON when FILE ends in ".json". With --metrics-interval N the file is
// additionally rewritten every N seconds while the run is in flight, so a
// long run can be watched live (`watch cat metrics.prom`).
//
// --lenient skips malformed input rows (counted and reported) instead of
// failing the load. --mmap loads CSV input through the memory-mapped
// zero-copy reader (src/workload/csv_mmap.h) — same stream, faster load;
// useful for multi-gigabyte traces. The fault/guard flags apply to the sharded path:
// --fault-schedule replays a deterministic fault schedule (see
// src/fault/fault_injector.h for the DSL, e.g.
// "burst:at=1000,count=500,factor=30;death:shard=0,at=2000"), and either
// --guard-theta (latency bound, cost units) or --memory-budget-mb
// (partial-match state cap per shard) arms the per-shard overload guard.
//
// Schema file format (one declaration per line, '#' comments):
//   type BikeTrip
//   attr bike int
//   attr start int
//   attr end int
//
// The input/train CSVs use the same format WriteCsv produces:
//   type,timestamp,<attr1>,<attr2>,...

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>

#include "src/obs/export.h"
#include "src/runtime/experiment.h"
#include "src/runtime/shard_runtime.h"
#include "src/query/parser.h"
#include "src/workload/csv.h"
#include "src/workload/csv_mmap.h"
#include "src/workload/lab/trace.h"

using namespace cepshed;

namespace {

struct CliArgs {
  std::string schema_path;
  std::string query_path;
  std::string input_path;
  std::string train_path;
  std::string matches_path;
  std::string strategy = "none";
  /// Registry strategy spec (NAME[:key=value,...]); supersedes --strategy.
  std::string shedder;
  std::string stat = "avg";
  double bound = 0.5;
  bool pm_series = false;
  int shards = 1;
  std::string partition_attr;
  long long slice_stride_us = 0;
  bool lenient = false;
  bool mmap_input = false;
  std::string fault_schedule;
  unsigned long long fault_seed = 0;
  double guard_theta = 0.0;
  double memory_budget_mb = 0.0;
  std::string metrics_out;
  double metrics_interval_sec = 0.0;
  std::string record_trace;
  unsigned long long trace_prefix = 0;
  std::string scale_schedule;
  int min_shards = 1;
  int max_shards = 0;
};

bool IsTracePath(const std::string& path) {
  const std::string suffix = ".trace";
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: cepshed_cli --schema FILE --query FILE --input FILE\n"
               "                   [--train FILE] [--strategy none|ri|si|rs|ss|hybrid]\n"
               "                   [--shedder NAME[:key=value,...]]\n"
               "                   [--bound FRACTION] [--stat avg|p95|p99]\n"
               "                   [--matches FILE] [--pm-series]\n"
               "                   [--shards N (--partition ATTR | --slice-stride US)]\n"
               "                   [--lenient] [--mmap]\n"
               "                   [--fault-schedule SPEC] [--fault-seed N]\n"
               "                   [--guard-theta COST] [--memory-budget-mb MB]\n"
               "                   [--metrics-out FILE] [--metrics-interval SEC]\n"
               "                   [--record-trace FILE] [--trace-prefix N]\n"
               "                   [--scale-schedule SPEC --max-shards N]\n"
               "                   [--min-shards N] [--max-shards N]\n"
               "an --input ending in .trace is replayed from a recorded capture\n"
               "(embedded schema; --schema optional); --max-shards without a\n"
               "--scale-schedule arms the dynamic reshard controller\n");
}

Result<CliArgs> ParseArgs(int argc, char** argv) {
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) return Status::InvalidArgument(flag + " needs a value");
      return std::string(argv[++i]);
    };
    if (flag == "--schema") {
      CEPSHED_ASSIGN_OR_RETURN(args.schema_path, next());
    } else if (flag == "--query") {
      CEPSHED_ASSIGN_OR_RETURN(args.query_path, next());
    } else if (flag == "--input") {
      CEPSHED_ASSIGN_OR_RETURN(args.input_path, next());
    } else if (flag == "--train") {
      CEPSHED_ASSIGN_OR_RETURN(args.train_path, next());
    } else if (flag == "--matches") {
      CEPSHED_ASSIGN_OR_RETURN(args.matches_path, next());
    } else if (flag == "--strategy") {
      CEPSHED_ASSIGN_OR_RETURN(args.strategy, next());
    } else if (flag == "--shedder") {
      CEPSHED_ASSIGN_OR_RETURN(args.shedder, next());
    } else if (flag == "--stat") {
      CEPSHED_ASSIGN_OR_RETURN(args.stat, next());
    } else if (flag == "--bound") {
      std::string v;
      CEPSHED_ASSIGN_OR_RETURN(v, next());
      args.bound = std::stod(v);
    } else if (flag == "--pm-series") {
      args.pm_series = true;
    } else if (flag == "--shards") {
      std::string v;
      CEPSHED_ASSIGN_OR_RETURN(v, next());
      args.shards = std::stoi(v);
      if (args.shards < 1) return Status::InvalidArgument("--shards must be >= 1");
    } else if (flag == "--partition") {
      CEPSHED_ASSIGN_OR_RETURN(args.partition_attr, next());
    } else if (flag == "--slice-stride") {
      std::string v;
      CEPSHED_ASSIGN_OR_RETURN(v, next());
      args.slice_stride_us = std::stoll(v);
      if (args.slice_stride_us <= 0) {
        return Status::InvalidArgument("--slice-stride must be positive microseconds");
      }
    } else if (flag == "--lenient") {
      args.lenient = true;
    } else if (flag == "--mmap") {
      args.mmap_input = true;
    } else if (flag == "--fault-schedule") {
      CEPSHED_ASSIGN_OR_RETURN(args.fault_schedule, next());
    } else if (flag == "--fault-seed") {
      std::string v;
      CEPSHED_ASSIGN_OR_RETURN(v, next());
      args.fault_seed = std::stoull(v);
    } else if (flag == "--guard-theta") {
      std::string v;
      CEPSHED_ASSIGN_OR_RETURN(v, next());
      args.guard_theta = std::stod(v);
      if (args.guard_theta <= 0.0) {
        return Status::InvalidArgument("--guard-theta must be positive cost units");
      }
    } else if (flag == "--memory-budget-mb") {
      std::string v;
      CEPSHED_ASSIGN_OR_RETURN(v, next());
      args.memory_budget_mb = std::stod(v);
      if (args.memory_budget_mb <= 0.0) {
        return Status::InvalidArgument("--memory-budget-mb must be positive");
      }
    } else if (flag == "--record-trace") {
      CEPSHED_ASSIGN_OR_RETURN(args.record_trace, next());
    } else if (flag == "--trace-prefix") {
      std::string v;
      CEPSHED_ASSIGN_OR_RETURN(v, next());
      args.trace_prefix = std::stoull(v);
      if (args.trace_prefix == 0) {
        return Status::InvalidArgument("--trace-prefix must be a positive event count");
      }
    } else if (flag == "--scale-schedule") {
      CEPSHED_ASSIGN_OR_RETURN(args.scale_schedule, next());
    } else if (flag == "--min-shards") {
      std::string v;
      CEPSHED_ASSIGN_OR_RETURN(v, next());
      args.min_shards = std::stoi(v);
      if (args.min_shards < 1) {
        return Status::InvalidArgument("--min-shards must be >= 1");
      }
    } else if (flag == "--max-shards") {
      std::string v;
      CEPSHED_ASSIGN_OR_RETURN(v, next());
      args.max_shards = std::stoi(v);
      if (args.max_shards < 1) {
        return Status::InvalidArgument("--max-shards must be >= 1");
      }
    } else if (flag == "--metrics-out") {
      CEPSHED_ASSIGN_OR_RETURN(args.metrics_out, next());
    } else if (flag == "--metrics-interval") {
      std::string v;
      CEPSHED_ASSIGN_OR_RETURN(v, next());
      args.metrics_interval_sec = std::stod(v);
      if (args.metrics_interval_sec <= 0.0) {
        return Status::InvalidArgument("--metrics-interval must be positive seconds");
      }
    } else if (flag == "--help" || flag == "-h") {
      Usage();
      std::exit(0);
    } else {
      return Status::InvalidArgument("unknown flag " + flag);
    }
  }
  if (args.query_path.empty() || args.input_path.empty()) {
    return Status::InvalidArgument("--query and --input are required");
  }
  if (args.schema_path.empty() && !IsTracePath(args.input_path)) {
    return Status::InvalidArgument(
        "--schema is required (only a .trace input embeds its schema)");
  }
  if (args.trace_prefix > 0 && !IsTracePath(args.input_path)) {
    return Status::InvalidArgument("--trace-prefix requires a .trace input");
  }
  if (!args.record_trace.empty() && !IsTracePath(args.record_trace)) {
    return Status::InvalidArgument("--record-trace file must end in .trace");
  }
  if (args.metrics_interval_sec > 0.0 && args.metrics_out.empty()) {
    return Status::InvalidArgument("--metrics-interval requires --metrics-out");
  }
  if (!args.scale_schedule.empty() && args.max_shards == 0) {
    return Status::InvalidArgument(
        "--scale-schedule requires --max-shards (the grow headroom: workers "
        "are provisioned for it up front)");
  }
  if (args.max_shards > 0 && args.max_shards < args.shards) {
    return Status::InvalidArgument("--max-shards must be >= --shards");
  }
  if (args.min_shards > args.shards) {
    return Status::InvalidArgument("--min-shards must be <= --shards");
  }
  if (!args.shedder.empty() && args.strategy != "none") {
    return Status::InvalidArgument(
        "--shedder and --strategy are mutually exclusive (--shedder reaches "
        "every registered strategy, including the --strategy names)");
  }
  return args;
}

Result<Schema> LoadSchema(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::InvalidArgument("cannot open " + path);
  Schema schema;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ss(line);
    std::string kind;
    if (!(ss >> kind) || kind[0] == '#') continue;
    if (kind == "type") {
      std::string name;
      if (!(ss >> name)) return Status::ParseError("schema line " + std::to_string(line_no));
      CEPSHED_RETURN_NOT_OK(schema.AddEventType(name).status());
    } else if (kind == "attr") {
      std::string name;
      std::string type;
      if (!(ss >> name >> type)) {
        return Status::ParseError("schema line " + std::to_string(line_no));
      }
      ValueType vt;
      if (type == "int") {
        vt = ValueType::kInt;
      } else if (type == "double") {
        vt = ValueType::kDouble;
      } else if (type == "string") {
        vt = ValueType::kString;
      } else {
        return Status::ParseError("schema line " + std::to_string(line_no) +
                                  ": unknown attribute type '" + type + "'");
      }
      CEPSHED_RETURN_NOT_OK(schema.AddAttribute(name, vt).status());
    } else {
      return Status::ParseError("schema line " + std::to_string(line_no) +
                                ": expected 'type' or 'attr'");
    }
  }
  return schema;
}

Result<std::string> LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::InvalidArgument("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteMatches(const std::vector<Match>& matches, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::InvalidArgument("cannot open " + path);
  out << "match,detected_at,event_seqs\n";
  for (size_t i = 0; i < matches.size(); ++i) {
    out << i << "," << matches[i].detected_at << ",";
    for (size_t j = 0; j < matches[i].events.size(); ++j) {
      if (j > 0) out << ":";
      out << matches[i].events[j]->seq();
    }
    out << "\n";
  }
  return Status::OK();
}

/// Owns the --metrics-out lifecycle: an optional background thread rewrites
/// the snapshot file every interval while the run is in flight; Finish()
/// (idempotent) stops it and writes the final snapshot.
class MetricsExporter {
 public:
  MetricsExporter(obs::MetricsRegistry* registry, std::string path, double interval_sec)
      : registry_(registry), path_(std::move(path)) {
    if (interval_sec > 0.0) {
      writer_ = std::thread([this, interval_sec] {
        std::unique_lock<std::mutex> lock(mu_);
        while (!cv_.wait_for(lock, std::chrono::duration<double>(interval_sec),
                             [this] { return done_; })) {
          obs::WriteMetricsFile(path_, registry_->Snapshot());
        }
      });
    }
  }
  ~MetricsExporter() { Finish(); }

  /// Returns false when the final write fails.
  bool Finish() {
    if (finished_) return last_write_ok_;
    finished_ = true;
    if (writer_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        done_ = true;
      }
      cv_.notify_all();
      writer_.join();
    }
    last_write_ok_ = obs::WriteMetricsFile(path_, registry_->Snapshot());
    return last_write_ok_;
  }

 private:
  obs::MetricsRegistry* registry_;
  std::string path_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  bool finished_ = false;
  bool last_write_ok_ = false;
  std::thread writer_;
};

Status Run(const CliArgs& args) {
  CEPSHED_ASSIGN_OR_RETURN(std::string query_text, LoadFile(args.query_path));
  CEPSHED_ASSIGN_OR_RETURN(Query query, ParseQuery(query_text));
  CsvReadOptions read_options;
  read_options.lenient = args.lenient;
  CsvReadStats read_stats;

  // The input is either a CSV over a schema file or a recorded .trace
  // capture, which carries its own schema.
  Schema csv_schema;
  std::unique_ptr<EventStream> csv_input;
  std::unique_ptr<lab::TraceData> capture;
  if (IsTracePath(args.input_path)) {
    CEPSHED_ASSIGN_OR_RETURN(lab::TraceData data,
                             lab::ReadTrace(args.input_path, args.trace_prefix));
    capture = std::make_unique<lab::TraceData>(std::move(data));
  } else {
    CEPSHED_ASSIGN_OR_RETURN(csv_schema, LoadSchema(args.schema_path));
    // --mmap reads through the zero-copy mapped reader; the two readers
    // are differential-tested to produce identical streams, so the flag
    // only changes how fast the trace loads, never what it contains.
    CEPSHED_ASSIGN_OR_RETURN(
        EventStream stream,
        args.mmap_input
            ? ReadCsvMappedFile(csv_schema, args.input_path, read_options,
                                &read_stats)
            : ReadCsvFile(csv_schema, args.input_path, read_options,
                          &read_stats));
    csv_input = std::make_unique<EventStream>(std::move(stream));
  }
  const Schema& schema = capture != nullptr ? *capture->schema : csv_schema;
  const EventStream& input = capture != nullptr ? capture->stream : *csv_input;
  std::printf("query:  %s\n", query.ToString().c_str());
  std::printf("input:  %zu events from %s", input.size(), args.input_path.c_str());
  if (capture != nullptr && args.trace_prefix > 0) {
    std::printf("  (trace prefix of %llu)", args.trace_prefix);
  }
  if (read_stats.malformed_rows > 0) {
    std::printf("  (%llu malformed rows skipped)",
                static_cast<unsigned long long>(read_stats.malformed_rows));
  }
  std::printf("\n");

  obs::MetricsRegistry metrics;
  std::unique_ptr<MetricsExporter> exporter;
  if (!args.metrics_out.empty()) {
    exporter = std::make_unique<MetricsExporter>(&metrics, args.metrics_out,
                                                 args.metrics_interval_sec);
  }
  auto finish_metrics = [&]() -> Status {
    if (exporter == nullptr) return Status::OK();
    if (!exporter->Finish()) {
      return Status::InvalidArgument("cannot write " + args.metrics_out);
    }
    std::printf("wrote %s\n", args.metrics_out.c_str());
    return Status::OK();
  };

  // A replayed capture that resized re-applies its recorded scale schedule
  // as scripted anchors: the replay is deterministic where the dynamic
  // controller was not.
  const std::string replay_schedule =
      capture != nullptr ? lab::ResizeScheduleSpec(capture->resizes) : std::string();
  const bool elastic = !args.scale_schedule.empty() || args.max_shards > 0 ||
                       !replay_schedule.empty();
  const bool wants_guard = args.guard_theta > 0.0 || args.memory_budget_mb > 0.0;
  if ((!args.fault_schedule.empty() || wants_guard) && args.shards <= 1 &&
      !elastic) {
    return Status::InvalidArgument(
        "--fault-schedule / --guard-theta / --memory-budget-mb apply to the "
        "sharded path; add --shards N with a routing mode");
  }

  if (args.shards > 1 || elastic) {
    if (args.strategy != "none" || !args.shedder.empty()) {
      return Status::InvalidArgument(
          "--shards currently applies to raw evaluation only (--strategy none); "
          "sharded shedding runs through ShardRuntime's shedder factory");
    }
    CEPSHED_ASSIGN_OR_RETURN(auto nfa, Nfa::Compile(query, &schema));
    ShardRuntimeOptions opts;
    opts.num_shards = args.shards;
    if (!args.partition_attr.empty()) {
      opts.routing = ShardRouting::kHashPartition;
      opts.partition_attr = schema.AttributeIndex(args.partition_attr);
      if (opts.partition_attr < 0) {
        return Status::InvalidArgument("unknown partition attribute " +
                                       args.partition_attr);
      }
    } else if (args.slice_stride_us > 0) {
      opts.routing = ShardRouting::kWindowSlice;
      opts.slice_stride = static_cast<Duration>(args.slice_stride_us);
    } else {
      return Status::InvalidArgument(
          "--shards needs a routing mode: --partition ATTR or --slice-stride US");
    }
    // Scripted resizes ride the fault DSL: --scale-schedule and a replayed
    // capture's recorded schedule are appended to the fault spec.
    std::string spec = args.fault_schedule;
    for (const std::string& extra : {args.scale_schedule, replay_schedule}) {
      if (extra.empty()) continue;
      if (!spec.empty()) spec += ';';
      spec += extra;
    }
    FaultInjector faults;
    if (!spec.empty()) {
      CEPSHED_ASSIGN_OR_RETURN(faults, FaultInjector::Parse(spec, args.fault_seed));
      opts.faults = &faults;
      std::printf("faults: %s (seed %llu)\n", faults.ToString().c_str(),
                  static_cast<unsigned long long>(faults.seed()));
    }
    if (elastic) {
      opts.reshard.min_shards = args.min_shards;
      opts.reshard.max_shards = args.max_shards;
      // A recorded schedule may scale past the replay flags: widen the
      // provisioned headroom to cover it.
      for (const lab::TraceResize& r :
           capture != nullptr ? capture->resizes : std::vector<lab::TraceResize>()) {
        opts.reshard.max_shards =
            std::max(opts.reshard.max_shards, std::max(r.old_shards, r.new_shards));
      }
      // Scripted anchors own the schedule; only a bare --max-shards arms
      // the dynamic controller.
      opts.reshard.enabled =
          args.max_shards > 0 && args.scale_schedule.empty() && replay_schedule.empty();
      std::printf("elastic: %s, shards %d..%d\n",
                  opts.reshard.enabled ? "dynamic controller" : "scripted schedule",
                  opts.reshard.min_shards,
                  std::max(opts.reshard.max_shards, args.shards));
    }
    if (wants_guard) {
      opts.guard.enabled = true;
      opts.guard.theta = args.guard_theta;
      opts.guard.memory_budget_bytes =
          static_cast<size_t>(args.memory_budget_mb * 1024.0 * 1024.0);
      opts.guard.seed = args.fault_seed != 0 ? args.fault_seed : opts.guard.seed;
      std::printf("guard:  theta %.2f, memory budget %.1f MB\n", args.guard_theta,
                  args.memory_budget_mb);
    }
    if (exporter != nullptr) opts.metrics = &metrics;
    // The ingest tap sees every event after routing, so the capture holds
    // the router's shard targets alongside the stream.
    std::unique_ptr<lab::TraceWriter> recorder;
    Status record_status = Status::OK();
    if (!args.record_trace.empty()) {
      CEPSHED_ASSIGN_OR_RETURN(
          recorder,
          lab::TraceWriter::Open(args.record_trace, schema, /*with_routes=*/true));
      opts.ingest_tap = [&recorder, &record_status](const EventPtr& event,
                                                    const std::vector<int>& targets) {
        if (!record_status.ok()) return;
        record_status = recorder->Append(*event, targets);
      };
      opts.resize_tap = [&recorder](uint64_t seq, int old_shards, int new_shards) {
        recorder->RecordResize(seq, old_shards, new_shards);
      };
    }
    CEPSHED_ASSIGN_OR_RETURN(auto runtime, ShardRuntime::Create(nfa, opts));
    CEPSHED_ASSIGN_OR_RETURN(ShardRunResult result, runtime->Run(input));
    if (recorder != nullptr) {
      CEPSHED_RETURN_NOT_OK(record_status);
      CEPSHED_RETURN_NOT_OK(recorder->Close());
      std::printf("recorded %llu events to %s\n",
                  static_cast<unsigned long long>(recorder->num_events()),
                  args.record_trace.c_str());
    }
    std::printf("shards: %d (%s routing)\n", args.shards,
                opts.routing == ShardRouting::kHashPartition ? "hash" : "slice");
    std::printf("matches: %zu in %.3fs\n", result.matches.size(), result.wall_seconds);
    for (size_t i = 0; i < result.shards.size(); ++i) {
      const ShardResult& s = result.shards[i];
      std::printf("  shard %zu: routed %llu, processed %llu, peak state %zu", i,
                  static_cast<unsigned long long>(s.events_routed),
                  static_cast<unsigned long long>(s.events_processed), s.stats.peak_pms);
      if (s.worker_restarts > 0 || s.abandoned) {
        std::printf(", restarts %llu%s",
                    static_cast<unsigned long long>(s.worker_restarts),
                    s.abandoned ? ", ABANDONED" : "");
      }
      if (opts.guard.enabled) {
        std::printf(", guard peak %s",
                    GuardLevelName(static_cast<GuardLevel>(s.guard_peak_level)));
      }
      std::printf("\n");
    }
    if (result.resizes > 0) {
      std::printf("elastic: %llu resizes, migrated %llu partial matches (%llu bytes), "
                  "final live shards %d\n",
                  static_cast<unsigned long long>(result.resizes),
                  static_cast<unsigned long long>(result.migrated_pms),
                  static_cast<unsigned long long>(result.migrated_bytes),
                  result.final_live_shards);
    }
    if (result.lost_events > 0 || result.worker_restarts > 0 ||
        result.shards_abandoned > 0) {
      std::printf("degraded: lost %llu events, %llu worker restarts, %d shards abandoned\n",
                  static_cast<unsigned long long>(result.lost_events),
                  static_cast<unsigned long long>(result.worker_restarts),
                  result.shards_abandoned);
    }
    if (opts.guard.enabled) {
      std::printf("guard:  dropped %llu events, trimmed %llu + evicted %llu partial matches\n",
                  static_cast<unsigned long long>(result.guard_input_drops),
                  static_cast<unsigned long long>(result.guard_trims),
                  static_cast<unsigned long long>(result.guard_evictions));
    }
    if (!args.matches_path.empty()) {
      CEPSHED_RETURN_NOT_OK(WriteMatches(result.matches, args.matches_path));
      std::printf("wrote %s\n", args.matches_path.c_str());
    }
    return finish_metrics();
  }

  // Single-engine paths ingest the whole input stream, so the capture is
  // simply the stream itself (no routes).
  if (!args.record_trace.empty()) {
    CEPSHED_RETURN_NOT_OK(lab::WriteTrace(input, args.record_trace));
    std::printf("recorded %zu events to %s\n", input.size(), args.record_trace.c_str());
  }

  if (args.strategy == "none" && args.shedder.empty()) {
    CEPSHED_ASSIGN_OR_RETURN(auto nfa, Nfa::Compile(query, &schema));
    Engine engine(nfa, EngineOptions{});
    obs::ShardObs* obs = nullptr;
    if (exporter != nullptr) {
      metrics.EnsureShards(1);
      obs = metrics.shard(0);
    }
    std::vector<Match> matches;
    size_t matches_seen = 0;
    const size_t stride = args.pm_series ? std::max<size_t>(1, input.size() / 50) : 0;
    for (size_t i = 0; i < input.size(); ++i) {
      const double cost = engine.Process(input[i], &matches);
      if (obs != nullptr) {
        obs->events_routed.Add();
        obs->events_processed.Add();
        obs->event_cost.Record(cost);
        if (matches.size() != matches_seen) {
          obs->matches_emitted.Add(matches.size() - matches_seen);
          matches_seen = matches.size();
        }
      }
      if (stride > 0 && i % stride == 0) {
        std::printf("pm-series,%zu,%zu\n", i, engine.NumPartialMatches());
      }
    }
    std::printf("matches: %zu  (peak state: %zu partial matches)\n", matches.size(),
                engine.stats().peak_pms);
    if (!args.matches_path.empty()) {
      CEPSHED_RETURN_NOT_OK(WriteMatches(matches, args.matches_path));
      std::printf("wrote %s\n", args.matches_path.c_str());
    }
    return finish_metrics();
  }

  if (args.train_path.empty()) {
    return Status::InvalidArgument("--strategy / --shedder require --train (historic "
                                   "data for the cost model and ground truth "
                                   "calibration)");
  }
  CEPSHED_ASSIGN_OR_RETURN(EventStream train,
                           ReadCsvFile(schema, args.train_path, read_options));

  // --strategy names are a subset of the registry; both flags resolve to a
  // registry spec and share the run path below.
  std::string spec = args.shedder;
  if (spec.empty()) {
    if (args.strategy != "ri" && args.strategy != "si" && args.strategy != "rs" &&
        args.strategy != "ss" && args.strategy != "hybrid") {
      return Status::InvalidArgument("unknown strategy " + args.strategy);
    }
    spec = args.strategy;
  }
  LatencyStat stat;
  if (args.stat == "avg") {
    stat = LatencyStat::kAverage;
  } else if (args.stat == "p95") {
    stat = LatencyStat::kP95;
  } else if (args.stat == "p99") {
    stat = LatencyStat::kP99;
  } else {
    return Status::InvalidArgument("unknown stat " + args.stat);
  }

  HarnessOptions harness_options;
  if (exporter != nullptr) harness_options.metrics = &metrics;
  ExperimentHarness harness(&schema, query, harness_options);
  CEPSHED_RETURN_NOT_OK(harness.Prepare(train, input));
  std::printf("trained cost model in %.2fs; exhaustive: %zu matches, %s latency %.1f\n",
              harness.model().train_seconds(), harness.truth().size(), args.stat.c_str(),
              harness.BaselineLatency(stat));

  CEPSHED_ASSIGN_OR_RETURN(
      const ExperimentResult r,
      harness.RunBoundSpec(spec, args.bound, stat,
                           args.pm_series ? std::max<size_t>(1, input.size() / 50) : 0));
  std::printf("strategy %s @ bound %.2f:\n", r.name.c_str(), args.bound);
  std::printf("  recall      %.2f%%\n", 100.0 * r.quality.recall);
  std::printf("  precision   %.2f%%\n", 100.0 * r.quality.precision);
  std::printf("  throughput  %.0f events/s\n", r.throughput_eps);
  std::printf("  dropped     %llu events (%.1f%%)\n",
              static_cast<unsigned long long>(r.raw.dropped_events),
              100.0 * r.shed_event_ratio);
  std::printf("  shed        %llu partial matches (%.1f%%)\n",
              static_cast<unsigned long long>(r.raw.shed_pms), 100.0 * r.shed_pm_ratio);
  std::printf("  violations  %.1f%% of bound checks\n", 100.0 * r.bound_violation_ratio);
  if (args.pm_series) {
    for (size_t i = 0; i < r.raw.pm_series.size(); ++i) {
      std::printf("pm-series,%zu,%zu\n", i * r.raw.pm_series_stride, r.raw.pm_series[i]);
    }
  }
  if (!args.matches_path.empty()) {
    CEPSHED_RETURN_NOT_OK(WriteMatches(r.raw.matches, args.matches_path));
    std::printf("wrote %s\n", args.matches_path.c_str());
  }
  return finish_metrics();
}

}  // namespace

int main(int argc, char** argv) {
  auto args = ParseArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().ToString().c_str());
    Usage();
    return 2;
  }
  const Status st = Run(*args);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
