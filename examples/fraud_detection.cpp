// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Fraud-detection example (the paper's §II-A finance scenario): flag cards
// that are charged in two different cities within minutes — a classic
// "impossible travel" pattern — while a data-breach exploitation spike
// multiplies the transaction rate. Fraud clearance has a tight latency
// budget (the paper cites ~25ms per transaction), so the engine resorts
// to hybrid best-effort processing during the spike.
//
//   $ ./examples/fraud_detection

#include <cstdio>

#include "src/common/rng.h"
#include "src/runtime/experiment.h"
#include "src/query/parser.h"

using namespace cepshed;

namespace {

Schema MakeTxSchema() {
  Schema schema;
  (void)schema.AddEventType("Tx");
  (void)schema.AddAttribute("card", ValueType::kInt);
  (void)schema.AddAttribute("city", ValueType::kInt);
  (void)schema.AddAttribute("amount", ValueType::kInt);
  return schema;
}

/// Transactions from `num_cards` cards. Legit cards stay in one home city;
/// a small set of breached cards is charged from many cities. During the
/// breach window the rate spikes 5x.
EventStream GenerateTransactions(const Schema& schema, size_t n, uint64_t seed) {
  EventStream stream(&schema);
  Rng rng(seed);
  const int num_cards = 500;
  const int num_cities = 40;
  const int breached_cards = 25;
  std::vector<int> home(num_cards);
  for (auto& h : home) h = static_cast<int>(rng.UniformInt(0, num_cities - 1));

  Timestamp now = 0;
  for (size_t i = 0; i < n; ++i) {
    const bool spike = i > n / 3 && i < 2 * n / 3;  // breach exploitation
    now += std::max<Timestamp>(1, static_cast<Timestamp>(
                                      rng.Exponential(spike ? 1.0 / 40 : 1.0 / 200)));
    const bool breached = spike && rng.Bernoulli(0.3);
    const int card = breached
                         ? static_cast<int>(rng.UniformInt(0, breached_cards - 1))
                         : static_cast<int>(rng.UniformInt(0, num_cards - 1));
    const int city = breached ? static_cast<int>(rng.UniformInt(0, num_cities - 1))
                              : home[static_cast<size_t>(card)];
    std::vector<Value> attrs(schema.num_attributes());
    attrs[0] = Value(static_cast<int64_t>(card));
    attrs[1] = Value(static_cast<int64_t>(city));
    attrs[2] = Value(rng.UniformInt(1, 500));
    (void)stream.Emit(schema.EventTypeId("Tx"), now, std::move(attrs));
  }
  return stream;
}

}  // namespace

int main() {
  const Schema schema = MakeTxSchema();
  const EventStream train = GenerateTransactions(schema, 25000, 1);
  const EventStream live = GenerateTransactions(schema, 25000, 2);

  // Same card, different cities, within the travel-impossible window.
  Result<Query> query = ParseQuery(
      "PATTERN SEQ(Tx a, Tx b) "
      "WHERE a.card = b.card AND a.city != b.city "
      "WITHIN 25ms");
  if (!query.ok()) {
    std::fprintf(stderr, "query error: %s\n", query.status().ToString().c_str());
    return 1;
  }
  query->name = "impossible-travel";
  std::printf("Query: %s\n\n", query->ToString().c_str());

  ExperimentHarness harness(&schema, *query, HarnessOptions{});
  if (Status st = harness.Prepare(train, live); !st.ok()) {
    std::fprintf(stderr, "prepare error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Exhaustive processing: %zu suspicious pairs, avg latency %.0f units.\n\n",
              harness.truth().size(), harness.BaselineLatency());

  std::printf("Clearing transactions at half the exhaustive latency budget:\n");
  std::printf("%-8s %8s %10s %14s\n", "strategy", "recall", "precision", "violations");
  for (StrategyKind kind :
       {StrategyKind::kRI, StrategyKind::kRS, StrategyKind::kHybrid}) {
    const ExperimentResult r = harness.RunBound(kind, 0.5);
    std::printf("%-8s %7.1f%% %9.1f%% %13.1f%%\n", r.name.c_str(),
                100.0 * r.quality.recall, 100.0 * r.quality.precision,
                100.0 * r.bound_violation_ratio);
  }
  std::printf(
      "\nThe cost model concentrates effort on cards whose partial matches\n"
      "still can complete (breached, multi-city cards), so most frauds are\n"
      "flagged although a third of the work is shed.\n");
  return 0;
}
