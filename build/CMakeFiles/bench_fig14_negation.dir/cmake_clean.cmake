file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_negation.dir/bench/bench_fig14_negation.cpp.o"
  "CMakeFiles/bench_fig14_negation.dir/bench/bench_fig14_negation.cpp.o.d"
  "bench/bench_fig14_negation"
  "bench/bench_fig14_negation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_negation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
