#!/usr/bin/env python3
"""CI gate: metrics record-path overhead on the engine hot loop.

Reads a google-benchmark JSON file containing BM_EngineQ1/N and
BM_EngineQ1Metrics/N (aggregate or raw repetitions), compares the
per-arg minimum real_time of the metrics-on arm against the metrics-off
baseline, and fails when the overhead exceeds the threshold. Minimum is
used rather than mean/median: it is the statistic least sensitive to
noisy-neighbour drift on shared CI runners.

Usage: check_metrics_overhead.py BENCH_JSON [--max-overhead-pct 5.0]
"""

import argparse
import json
import re
import sys


def collect(benchmarks):
    """Map (family, arg) -> min real_time over repetitions."""
    best = {}
    for b in benchmarks:
        # Skip aggregate rows other than min-like ones; raw rows have
        # run_type "iteration". Accept both raw rows and "_mean"/"_median"
        # aggregates, keeping the smallest value seen per series.
        name = b["name"]
        m = re.match(r"^(BM_EngineQ1(?:Metrics)?)/(\d+)(?:_(\w+))?$", name)
        if not m:
            continue
        family, arg, agg = m.group(1), int(m.group(2)), m.group(3)
        if agg in ("stddev", "cv"):
            continue
        key = (family, arg)
        t = float(b["real_time"])
        if key not in best or t < best[key]:
            best[key] = t
    return best


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("bench_json")
    ap.add_argument("--max-overhead-pct", type=float, default=5.0)
    args = ap.parse_args()

    with open(args.bench_json) as f:
        data = json.load(f)
    best = collect(data.get("benchmarks", []))

    failed = False
    checked = 0
    for (family, arg), base in sorted(best.items()):
        if family != "BM_EngineQ1":
            continue
        metrics = best.get(("BM_EngineQ1Metrics", arg))
        if metrics is None:
            print(f"warning: no BM_EngineQ1Metrics/{arg} row", file=sys.stderr)
            continue
        checked += 1
        pct = (metrics / base - 1.0) * 100.0
        verdict = "OK" if pct <= args.max_overhead_pct else "FAIL"
        print(f"arg={arg}: baseline={base:.3f} metrics={metrics:.3f} "
              f"overhead={pct:+.2f}% [{verdict}]")
        if pct > args.max_overhead_pct:
            failed = True

    if checked == 0:
        print("error: no comparable benchmark pairs found", file=sys.stderr)
        return 2
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
