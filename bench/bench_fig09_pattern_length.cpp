// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Fig. 9 of the paper: impact of the queried pattern length. Q2's Kleene
// limit is varied so that the pattern length ranges from 4 to 8, under a
// 50% bound on the 95th-percentile latency (DS1).

#include "bench/bench_util.h"

using namespace cepshed;
using namespace cepshed::bench;

int main() {
  Header("Fig. 9a+9b", "DS1/Q2, pattern length 4-8, 50% bound on the 95th-pct latency",
         kResultColumns);
  for (int length : {4, 5, 6, 7, 8}) {
    // Pattern = A a, A+{1,L-3} b[], B c, C d -> length = 3 + Kleene limit.
    const int kleene_limit = length - 3;
    Ds1Options gen;
    gen.num_events = 20000;
    gen.event_gap = 2;  // Q2's 1ms window needs a dense stream
    auto exp = PrepareDs1(*queries::Q2(kleene_limit, "1ms"), gen);
    for (StrategyKind kind : BoundStrategies()) {
      const ExperimentResult r = exp.harness->RunBound(kind, 0.5, LatencyStat::kP95);
      PrintResultRow(std::to_string(length), r);
    }
  }
  return 0;
}
