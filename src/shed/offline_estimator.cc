// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/shed/offline_estimator.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>

namespace cepshed {

std::vector<float> ExtractFeatures(const Event& event, const Nfa& nfa) {
  const std::vector<int>& attrs = nfa.PredicateAttrs();
  std::vector<float> features;
  features.reserve(attrs.size());
  for (int a : attrs) {
    const Value& v = event.attr(a);
    switch (v.type()) {
      case ValueType::kInt:
        features.push_back(static_cast<float>(v.AsInt()));
        break;
      case ValueType::kDouble:
        features.push_back(static_cast<float>(v.AsDouble()));
        break;
      case ValueType::kString:
        // Categorical attributes enter the tree as stable hash buckets.
        features.push_back(static_cast<float>(v.Hash() % 1024));
        break;
      case ValueType::kNull:
        features.push_back(-1.0f);
        break;
    }
  }
  return features;
}

std::vector<float> ExtractStateFeatures(const PartialMatch& pm, const Nfa& nfa) {
  const std::vector<int>& attrs = nfa.PredicateAttrs();
  const size_t per_event = attrs.size();
  // Slots 0..state inclusive; the in-progress slot may be empty. Only the
  // *last* event of each slot feeds the features, and slot ends are
  // non-decreasing, so one reverse walk over the shared-prefix binding
  // chain visits every needed node (depth d holds flat index d-1) without
  // materializing the whole match.
  const size_t slots = static_cast<size_t>(pm.state) + 1;
  std::vector<float> features(slots * per_event, -1.0f);
  const BindingNode* node = pm.tail();
  for (size_t slot = slots; slot-- > 0;) {
    const uint32_t end =
        slot < pm.slot_end.size() ? pm.slot_end[slot] : pm.Length();
    const uint32_t begin =
        slot == 0 ? 0
                  : (slot - 1 < pm.slot_end.size() ? pm.slot_end[slot - 1]
                                                   : pm.Length());
    if (end <= begin) continue;
    while (node != nullptr && node->depth > end) node = node->prev;
    if (node == nullptr) break;
    const std::vector<float> ev = ExtractFeatures(*node->event, nfa);
    std::copy(ev.begin(), ev.end(),
              features.begin() + static_cast<ptrdiff_t>(slot * per_event));
  }
  return features;
}

Result<OfflineStats> EstimateOffline(std::shared_ptr<const Nfa> nfa,
                                     const EventStream& history, int num_slices,
                                     bool use_resource_cost,
                                     const EngineOptions& engine_options) {
  if (num_slices < 1) {
    return Status::InvalidArgument("offline estimation: num_slices must be >= 1");
  }
  const auto t0 = std::chrono::steady_clock::now();

  OfflineStats stats;
  stats.num_slices = num_slices;
  stats.slice_len =
      std::max<Duration>(1, nfa->window() / static_cast<Duration>(num_slices));
  stats.num_events = history.size();

  Engine engine(nfa, engine_options);
  std::unordered_map<uint64_t, size_t> index_of;  // pm id -> records index
  std::unordered_set<uint64_t> participating_events;

  auto slice_of = [&](Timestamp start_ts, Timestamp now) {
    const Duration age = now - start_ts;
    int s = static_cast<int>(age / stats.slice_len);
    if (s < 0) s = 0;
    if (s >= num_slices) s = num_slices - 1;
    return static_cast<size_t>(s);
  };

  engine.set_pm_created_hook([&](const PartialMatch& pm, const PartialMatch* parent) {
    if (pm.is_witness) return;
    PmRecord rec;
    rec.id = pm.id;
    rec.parent_id = parent != nullptr ? parent->id : 0;
    rec.state = pm.state;
    rec.features = ExtractStateFeatures(pm, *nfa);
    rec.event_features = ExtractFeatures(*pm.LastEvent(), *nfa);
    rec.last_event_type = static_cast<int>(pm.LastEvent()->type());
    rec.contrib_by_slice.assign(static_cast<size_t>(num_slices), 0.0f);
    rec.consum_by_slice.assign(static_cast<size_t>(num_slices), 0.0f);
    rec.own_omega =
        use_resource_cost
            ? static_cast<float>(engine_options.costs.per_clone_base +
                                 engine_options.costs.per_clone_event *
                                     static_cast<double>(pm.Length()))
            : 1.0f;
    rec.start_ts = pm.start_ts;
    rec.birth_ts = pm.last_ts;
    rec.consum_by_slice[0] = rec.own_omega;  // its own footprint
    index_of.emplace(rec.id, stats.records.size());
    stats.records.push_back(std::move(rec));

    // Charge the new match's creation cost to every ancestor, at the age
    // slice the ancestor had at this moment: shedding the ancestor before
    // that slice would have prevented the derivation (Gamma- of Eq. 4).
    uint64_t ancestor = stats.records.back().parent_id;
    const float omega = stats.records.back().own_omega;
    const Timestamp now = pm.last_ts;
    while (ancestor != 0) {
      auto it = index_of.find(ancestor);
      if (it == index_of.end()) break;
      PmRecord& anc = stats.records[it->second];
      anc.consum_by_slice[slice_of(anc.start_ts, now)] += omega;
      ancestor = anc.parent_id;
    }
  });

  if (use_resource_cost) {
    // The dominating share of Gamma-: the work spent evaluating query
    // predicates against a stored match every time an event probes it.
    // Charged to the match itself at its current age slice; ancestors are
    // charged at the slice they had when the probed match was *born* —
    // shedding an ancestor after the derivation no longer saves this work.
    engine.set_pm_probed_hook(
        [&](const PartialMatch& pm, double cost, Timestamp now) {
          auto self = index_of.find(pm.id);
          if (self == index_of.end()) return;
          PmRecord& rec = stats.records[self->second];
          rec.consum_by_slice[slice_of(rec.start_ts, now)] +=
              static_cast<float>(cost);
          const Timestamp birth = rec.birth_ts;
          uint64_t ancestor = rec.parent_id;
          while (ancestor != 0) {
            auto it = index_of.find(ancestor);
            if (it == index_of.end()) break;
            PmRecord& anc = stats.records[it->second];
            anc.consum_by_slice[slice_of(anc.start_ts, birth)] +=
                static_cast<float>(cost);
            ancestor = anc.parent_id;
          }
        });
  }

  engine.set_match_hook([&](const Match& match, const PartialMatch* parent) {
    ++stats.num_matches;
    for (const EventPtr& e : match.events) participating_events.insert(e->seq());
    // Credit the complete match to every ancestor (the contribution
    // Gamma+ of Eq. 3).
    uint64_t ancestor = parent != nullptr ? parent->id : 0;
    const Timestamp now = match.detected_at;
    while (ancestor != 0) {
      auto it = index_of.find(ancestor);
      if (it == index_of.end()) break;
      PmRecord& anc = stats.records[it->second];
      anc.contrib_by_slice[slice_of(anc.start_ts, now)] += 1.0f;
      ancestor = anc.parent_id;
    }
  });

  std::vector<Match> sink;
  for (const EventPtr& e : history) {
    engine.Process(e, &sink);
    sink.clear();
  }

  // Per-type selectivity statistics for the SI baseline.
  const size_t num_types = nfa->schema().num_event_types();
  std::vector<size_t> type_count(num_types, 0);
  std::vector<size_t> type_hits(num_types, 0);
  for (const EventPtr& e : history) {
    ++type_count[static_cast<size_t>(e->type())];
    if (participating_events.count(e->seq()) > 0) {
      ++type_hits[static_cast<size_t>(e->type())];
    }
  }
  stats.type_utility.assign(num_types, 0.0);
  stats.type_share.assign(num_types, 0.0);
  for (size_t t = 0; t < num_types; ++t) {
    if (type_count[t] > 0) {
      stats.type_utility[t] =
          static_cast<double>(type_hits[t]) / static_cast<double>(type_count[t]);
    }
    if (!history.empty()) {
      stats.type_share[t] =
          static_cast<double>(type_count[t]) / static_cast<double>(history.size());
    }
  }

  // Per-state completion probability for the SS baseline.
  std::vector<size_t> state_pms(static_cast<size_t>(nfa->num_states()), 0);
  std::vector<size_t> state_completed(static_cast<size_t>(nfa->num_states()), 0);
  for (const PmRecord& rec : stats.records) {
    ++state_pms[static_cast<size_t>(rec.state)];
    float total = 0.0f;
    for (float c : rec.contrib_by_slice) total += c;
    if (total > 0.0f) ++state_completed[static_cast<size_t>(rec.state)];
  }
  stats.state_completion.assign(static_cast<size_t>(nfa->num_states()), 0.0);
  for (int s = 0; s < nfa->num_states(); ++s) {
    if (state_pms[static_cast<size_t>(s)] > 0) {
      stats.state_completion[static_cast<size_t>(s)] =
          static_cast<double>(state_completed[static_cast<size_t>(s)]) /
          static_cast<double>(state_pms[static_cast<size_t>(s)]);
    }
  }

  stats.replay_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return stats;
}

}  // namespace cepshed
