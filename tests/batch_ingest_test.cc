// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Batched ingest hot path: the ring queue's batch claim/drain operations
// and the engine's BeginBatch/ProcessBatch column-mask fast path. The
// engine tests are sequential-equivalence differentials — the batched path
// must reproduce the scalar Process path's matches, stats, and abstract
// cost units EXACTLY (cost parity is a hard contract; the batched fused
// compare charges the same 2x basic units the VM superinstruction does).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/cep/engine.h"
#include "src/cep/nfa.h"
#include "src/cep/schema.h"
#include "src/cep/stream.h"
#include "src/query/parser.h"
#include "src/runtime/ring_queue.h"
#include "src/workload/ds1.h"

namespace cepshed {
namespace {

// --- RingQueue batch operations --------------------------------------------

TEST(RingQueueBatchTest, PushPopBasicFifo) {
  RingQueue<int> q(8);
  int in[5] = {1, 2, 3, 4, 5};
  EXPECT_EQ(q.TryPushBatch(in, 5), 5u);
  int out[8] = {};
  EXPECT_EQ(q.TryPopBatch(out, 3), 3u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
  EXPECT_EQ(out[2], 3);
  EXPECT_EQ(q.TryPopBatch(out, 8), 2u);
  EXPECT_EQ(out[0], 4);
  EXPECT_EQ(out[1], 5);
  EXPECT_EQ(q.TryPopBatch(out, 8), 0u);
}

TEST(RingQueueBatchTest, ShortPushWhenFull) {
  RingQueue<int> q(4);
  ASSERT_EQ(q.capacity(), 4u);
  int in[6] = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(q.TryPushBatch(in, 6), 4u);  // prefix lands, caller keeps 4,5
  EXPECT_EQ(q.TryPushBatch(in + 4, 2), 0u);
  int out[4] = {};
  EXPECT_EQ(q.TryPopBatch(out, 2), 2u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(q.TryPushBatch(in + 4, 2), 2u);
  EXPECT_EQ(q.TryPopBatch(out, 4), 4u);
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out[3], 5);
}

TEST(RingQueueBatchTest, WrapAroundKeepsFifo) {
  RingQueue<int> q(8);
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    int in[3] = {next_in, next_in + 1, next_in + 2};
    ASSERT_EQ(q.TryPushBatch(in, 3), 3u);
    next_in += 3;
    int out[3] = {};
    ASSERT_EQ(q.TryPopBatch(out, 3), 3u);
    for (int v : out) ASSERT_EQ(v, next_out++);
  }
}

TEST(RingQueueBatchTest, ClosedQueueRejectsPushAndDrainsPop) {
  RingQueue<int> q(8);
  int in[3] = {7, 8, 9};
  ASSERT_EQ(q.TryPushBatch(in, 3), 3u);
  q.Close();
  EXPECT_EQ(q.TryPushBatch(in, 3), 0u);
  int out[8] = {};
  EXPECT_EQ(q.PopBatch(out, 8), 3u);  // drains the pre-close backlog
  EXPECT_EQ(out[2], 9);
  EXPECT_EQ(q.PopBatch(out, 8), 0u);  // closed and drained
}

TEST(RingQueueBatchTest, MoveOnlyPayload) {
  RingQueue<std::unique_ptr<int>> q(4);
  std::unique_ptr<int> in[2];
  in[0] = std::make_unique<int>(1);
  in[1] = std::make_unique<int>(2);
  ASSERT_EQ(q.TryPushBatch(in, 2), 2u);
  EXPECT_EQ(in[0], nullptr);  // enqueued elements are moved from
  std::unique_ptr<int> out[2];
  ASSERT_EQ(q.TryPopBatch(out, 2), 2u);
  EXPECT_EQ(*out[0], 1);
  EXPECT_EQ(*out[1], 2);
}

TEST(RingQueueBatchTest, SpscStressStaysFifo) {
  constexpr int kTotal = 100000;
  RingQueue<int> q(64);
  std::thread producer([&] {
    std::mt19937 rng(1);
    int next = 0;
    int buf[17];
    while (next < kTotal) {
      const int want = std::min<int>(1 + static_cast<int>(rng() % 17),
                                     kTotal - next);
      for (int i = 0; i < want; ++i) buf[i] = next + i;
      size_t sent = 0;
      while (sent < static_cast<size_t>(want)) {
        sent += q.TryPushBatch(buf + sent, static_cast<size_t>(want) - sent);
      }
      next += want;
    }
    q.Close();
  });
  std::mt19937 rng(2);
  int expected = 0;
  int out[23];
  for (;;) {
    const size_t n = q.PopBatch(out, 1 + rng() % 23);
    if (n == 0) break;
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], expected++);
  }
  producer.join();
  EXPECT_EQ(expected, kTotal);
}

TEST(RingQueueBatchTest, MpmcStressLosesNothing) {
  constexpr int kPerProducer = 50000;
  RingQueue<int> q(32);
  std::atomic<int> producers_left{2};
  auto produce = [&](int base) {
    int buf[11];
    int next = 0;
    while (next < kPerProducer) {
      const int want = std::min(11, kPerProducer - next);
      for (int i = 0; i < want; ++i) buf[i] = base + next + i;
      size_t sent = 0;
      while (sent < static_cast<size_t>(want)) {
        sent += q.TryPushBatch(buf + sent, static_cast<size_t>(want) - sent);
      }
      next += want;
    }
    if (producers_left.fetch_sub(1) == 1) q.Close();
  };
  std::vector<char> seen(2 * kPerProducer, 0);
  std::atomic<int> received{0};
  auto consume = [&] {
    int out[13];
    for (;;) {
      const size_t n = q.PopBatch(out, 13);
      if (n == 0) return;
      for (size_t i = 0; i < n; ++i) {
        const int v = out[i];
        ASSERT_GE(v, 0);
        ASSERT_LT(v, 2 * kPerProducer);
        // Each slot written exactly once: no duplicate deliveries.
        ASSERT_EQ(seen[static_cast<size_t>(v)]++, 0);
      }
      received.fetch_add(static_cast<int>(n));
    }
  };
  std::thread p1(produce, 0), p2(produce, kPerProducer);
  std::thread c1(consume), c2(consume);
  p1.join();
  p2.join();
  c1.join();
  c2.join();
  EXPECT_EQ(received.load(), 2 * kPerProducer);
}

// --- Engine batched-vs-scalar equivalence ----------------------------------

Query ParseOrDie(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().message();
  return *q;
}

struct EngineRun {
  std::vector<Match> matches;
  EngineStats stats;
  double cost = 0.0;
};

EngineRun RunScalar(const std::shared_ptr<const Nfa>& nfa,
                    const EventStream& stream) {
  Engine engine(nfa, EngineOptions{});
  EngineRun run;
  for (const EventPtr& e : stream) run.cost += engine.Process(e, &run.matches);
  run.stats = engine.stats();
  return run;
}

EngineRun RunBatched(const std::shared_ptr<const Nfa>& nfa,
                     const EventStream& stream, size_t chunk) {
  Engine engine(nfa, EngineOptions{});
  EngineRun run;
  std::vector<EventPtr> events(stream.begin(), stream.end());
  for (size_t base = 0; base < events.size(); base += chunk) {
    const size_t n = std::min(chunk, events.size() - base);
    run.cost += engine.ProcessBatch(events.data() + base, n, &run.matches);
  }
  run.stats = engine.stats();
  return run;
}

void ExpectRunsEqual(const EngineRun& a, const EngineRun& b) {
  // Cost parity is exact, but it is pinned on the engine's own accumulator
  // (stats.total_cost, EXPECT_EQ below): both paths feed it one per-event
  // cost at a time in the same order. The harness-side sums differ in
  // association — RunScalar adds per event while RunBatched adds per-chunk
  // subtotals returned by ProcessBatch — so over ~10^5 additions `cost`
  // accumulates rounding drift even though every per-event cost is equal.
  EXPECT_NEAR(a.cost, b.cost, 1e-9 * std::abs(a.cost) + 1e-12);
  EXPECT_EQ(a.stats.events_processed, b.stats.events_processed);
  EXPECT_EQ(a.stats.pms_created, b.stats.pms_created);
  EXPECT_EQ(a.stats.witnesses_created, b.stats.witnesses_created);
  EXPECT_EQ(a.stats.matches_emitted, b.stats.matches_emitted);
  EXPECT_EQ(a.stats.matches_vetoed, b.stats.matches_vetoed);
  EXPECT_EQ(a.stats.pms_evicted, b.stats.pms_evicted);
  EXPECT_EQ(a.stats.predicate_evals, b.stats.predicate_evals);
  EXPECT_EQ(a.stats.candidates_scanned, b.stats.candidates_scanned);
  EXPECT_EQ(a.stats.index_probes, b.stats.index_probes);
  EXPECT_EQ(a.stats.peak_pms, b.stats.peak_pms);
  EXPECT_EQ(a.stats.total_cost, b.stats.total_cost);
  ASSERT_EQ(a.matches.size(), b.matches.size());
  for (size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].detected_at, b.matches[i].detected_at);
    EXPECT_EQ(a.matches[i].Key(), b.matches[i].Key());
  }
}

class EngineBatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    schema_ = new Schema(MakeDs1Schema());
    Ds1Options options;
    options.num_events = 4000;
    options.event_gap = 10;
    options.seed = 7;
    stream_ = new EventStream(GenerateDs1(*schema_, options));
  }
  static void TearDownTestSuite() {
    delete stream_;
    delete schema_;
  }

  static std::shared_ptr<const Nfa> CompileOrDie(const Query& query) {
    auto nfa = Nfa::Compile(query, schema_);
    EXPECT_TRUE(nfa.ok()) << nfa.status().message();
    return *nfa;
  }

  void ExpectBatchedEqualsScalar(const std::shared_ptr<const Nfa>& nfa) {
    const EngineRun scalar = RunScalar(nfa, *stream_);
    ASSERT_GT(scalar.stats.events_processed, 0u);
    for (const size_t chunk : {size_t{1}, size_t{7}, size_t{64}, size_t{1024}}) {
      SCOPED_TRACE("chunk=" + std::to_string(chunk));
      ExpectRunsEqual(scalar, RunBatched(nfa, *stream_, chunk));
    }
  }

  static Schema* schema_;
  static EventStream* stream_;
};

Schema* EngineBatchTest::schema_ = nullptr;
EventStream* EngineBatchTest::stream_ = nullptr;

TEST_F(EngineBatchTest, LiteralFilterIsBatchedAndEquivalent) {
  auto nfa = CompileOrDie(ParseOrDie(
      "PATTERN SEQ(A a, B b) WHERE a.V > 3 AND a.ID = b.ID WITHIN 2ms"));
  Engine probe(nfa, EngineOptions{});
  EXPECT_GE(probe.BatchablePrograms(), 1u);
  ExpectBatchedEqualsScalar(nfa);
}

TEST_F(EngineBatchTest, EveryCompareOpIsEquivalent) {
  for (const char* op : {"=", "!=", "<", "<=", ">", ">="}) {
    SCOPED_TRACE(op);
    auto nfa = CompileOrDie(ParseOrDie(
        std::string("PATTERN SEQ(A a, B b) WHERE a.V ") + op +
        " 5 AND b.V >= 2 AND a.ID = b.ID WITHIN 2ms"));
    Engine probe(nfa, EngineOptions{});
    EXPECT_GE(probe.BatchablePrograms(), 2u);
    ExpectBatchedEqualsScalar(nfa);
  }
}

TEST_F(EngineBatchTest, KleeneIterationLiteralIsBatchedAndEquivalent) {
  auto nfa = CompileOrDie(ParseOrDie(
      "PATTERN SEQ(A a, A+{1,3} b[], B c) "
      "WHERE a.ID = b[i].ID AND b[i].V > 2 AND a.ID = c.ID WITHIN 2ms"));
  Engine probe(nfa, EngineOptions{});
  EXPECT_GE(probe.BatchablePrograms(), 1u);
  ExpectBatchedEqualsScalar(nfa);
}

TEST_F(EngineBatchTest, PaperQ1HasNoBatchableProgramsButStaysEquivalent) {
  // Q1's predicates are all attr-vs-attr — the batch plan is empty and
  // ProcessBatch must degrade to exactly the scalar path.
  auto nfa = CompileOrDie(ParseOrDie(
      "PATTERN SEQ(A a, B b, C c) "
      "WHERE a.ID = b.ID AND a.ID = c.ID AND a.V + b.V = c.V WITHIN 8ms"));
  Engine probe(nfa, EngineOptions{});
  EXPECT_EQ(probe.BatchablePrograms(), 0u);
  ExpectBatchedEqualsScalar(nfa);
}

TEST_F(EngineBatchTest, NullAndMixedTypeColumnsStayEquivalent) {
  Schema schema;
  (void)schema.AddEventType("A");
  (void)schema.AddEventType("B");
  (void)schema.AddAttribute("I", ValueType::kInt);
  (void)schema.AddAttribute("D", ValueType::kDouble);
  EventStream stream(&schema);
  std::mt19937_64 rng(99);
  Timestamp ts = 0;
  for (int i = 0; i < 2000; ++i) {
    ts += static_cast<Timestamp>(rng() % 3);
    std::vector<Value> attrs(2);
    if (rng() % 5 != 0) attrs[0] = Value(static_cast<int64_t>(rng() % 8));
    if (rng() % 5 != 0) {
      attrs[1] = Value(static_cast<double>(rng() % 40) / 8.0);
    }
    ASSERT_TRUE(stream.Emit(static_cast<int>(rng() % 2), ts, std::move(attrs))
                    .ok());
  }
  auto query = ParseQuery(
      "PATTERN SEQ(A a, B b) WHERE a.I >= 2 AND b.D < 2.5 AND a.I = b.I "
      "WITHIN 200us");
  ASSERT_TRUE(query.ok()) << query.status().message();
  auto nfa = Nfa::Compile(*query, &schema);
  ASSERT_TRUE(nfa.ok()) << nfa.status().message();
  Engine probe(*nfa, EngineOptions{});
  EXPECT_GE(probe.BatchablePrograms(), 2u);
  const EngineRun scalar = RunScalar(*nfa, stream);
  for (const size_t chunk : {size_t{1}, size_t{16}, size_t{64}}) {
    SCOPED_TRACE("chunk=" + std::to_string(chunk));
    ExpectRunsEqual(scalar, RunBatched(*nfa, stream, chunk));
  }
}

TEST_F(EngineBatchTest, NonBatchEventsAndEndBatchStayEquivalent) {
  auto nfa = CompileOrDie(ParseOrDie(
      "PATTERN SEQ(A a, B b) WHERE a.V > 3 AND a.ID = b.ID WITHIN 2ms"));
  const EngineRun scalar = RunScalar(nfa, *stream_);

  // A batch window announced over the first half, then deactivated early;
  // later events flow through plain Process outside any batch. The consult
  // guard must never misattribute an event to a stale window.
  Engine engine(nfa, EngineOptions{});
  EngineRun run;
  std::vector<EventPtr> events(stream_->begin(), stream_->end());
  const size_t half = events.size() / 2;
  engine.BeginBatch(events.data(), half);
  for (size_t i = 0; i < half / 2; ++i) {
    run.cost += engine.Process(events[i], &run.matches);
  }
  engine.EndBatch();  // deactivate mid-window
  for (size_t i = half / 2; i < events.size(); ++i) {
    run.cost += engine.Process(events[i], &run.matches);
  }
  run.stats = engine.stats();
  ExpectRunsEqual(scalar, run);
}

TEST_F(EngineBatchTest, ResetClearsTheBatchWindow) {
  auto nfa = CompileOrDie(ParseOrDie(
      "PATTERN SEQ(A a, B b) WHERE a.V > 3 AND a.ID = b.ID WITHIN 2ms"));
  Engine engine(nfa, EngineOptions{});
  std::vector<EventPtr> events(stream_->begin(), stream_->end());
  std::vector<Match> warmup;
  engine.ProcessBatch(events.data(), std::min<size_t>(64, events.size()),
                      &warmup);
  engine.BeginBatch(events.data(), std::min<size_t>(64, events.size()));
  engine.Reset();

  EngineRun run;
  for (const EventPtr& e : *stream_) run.cost += engine.Process(e, &run.matches);
  run.stats = engine.stats();
  ExpectRunsEqual(RunScalar(nfa, *stream_), run);
}

}  // namespace
}  // namespace cepshed
