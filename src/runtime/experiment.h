// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// The experiment harness shared by the benchmark binaries: trains the cost
// model on a historic prefix, establishes the no-shedding ground truth and
// baseline latency, then runs any strategy in latency-bound or fixed-ratio
// mode and reports recall / precision / throughput / shed ratios — the
// measurements of §VI.

#ifndef CEPSHED_RUNTIME_EXPERIMENT_H_
#define CEPSHED_RUNTIME_EXPERIMENT_H_

#include <memory>
#include <string>

#include "src/cep/engine.h"
#include "src/cep/nfa.h"
#include "src/obs/metrics.h"
#include "src/runtime/latency_monitor.h"
#include "src/runtime/metrics.h"
#include "src/shed/controller.h"
#include "src/shed/cost_model.h"
#include "src/shed/hspice.h"
#include "src/shed/offline_estimator.h"
#include "src/shed/positional.h"
#include "src/shed/pspice.h"
#include "src/shed/registry.h"
#include "src/shed/shedding_set.h"

namespace cepshed {

/// \brief Strategy selector for harness runs.
enum class StrategyKind : int {
  kNone,    ///< no shedding (ground truth)
  kRI,      ///< random input
  kSI,      ///< selectivity-based input
  kRS,      ///< random state
  kSS,      ///< selectivity-based state
  kHybrid,  ///< the paper's hybrid (input + state via the cost model)
  kHyI,     ///< cost-model input only
  kHyS,     ///< cost-model state only
  kPI,      ///< eSPICE-style positional input shedding (related work §VII)
};

const char* StrategyName(StrategyKind kind);

/// \brief Harness configuration.
struct HarnessOptions {
  LatencyMonitor::Options latency;
  EngineOptions engine;
  CostModelOptions cost_model;
  /// Trigger delay j (events) for the hybrid strategy. Should be at least
  /// the latency monitor window so shedding effects materialize in mu
  /// before the next decision (the hybrid's standing filters keep acting
  /// in between).
  uint64_t trigger_delay = 1000;
  /// Trigger delay for the baseline strategies, whose corrections are
  /// one-shot: they must re-fire faster to enforce the bound at all.
  uint64_t baseline_trigger_delay = 250;
  /// Shedding period (events) for fixed-ratio state strategies.
  uint64_t state_shed_period = 500;
  KnapsackMode solver = KnapsackMode::kDP;
  uint64_t seed = 7;
  /// Optional observability registry (not owned, may be null). Harness
  /// runs are single-engine, so every strategy run records into slot 0:
  /// per-event counters, the cost histogram, shed-decision audit entries.
  obs::MetricsRegistry* metrics = nullptr;
};

/// \brief Outcome of one strategy run.
struct ExperimentResult {
  std::string name;
  QualityMetrics quality;
  /// Wall-clock throughput in events/s.
  double throughput_eps = 0.0;
  double shed_event_ratio = 0.0;
  double shed_pm_ratio = 0.0;
  /// Fraction of (post-warmup) events whose smoothed latency violated the
  /// bound (latency-bound runs only).
  double bound_violation_ratio = 0.0;
  double avg_latency = 0.0;
  RunResult raw;
};

/// \brief Drives all experiments for one (query, dataset) pair.
class ExperimentHarness {
 public:
  /// The schema must outlive the harness.
  ExperimentHarness(const Schema* schema, Query query, HarnessOptions options);

  /// Compiles the query, replays `train` for offline estimation + cost
  /// model training, and runs the no-shedding ground truth over `test`.
  Status Prepare(const EventStream& train, const EventStream& test);

  /// No-shedding latency statistic of the ground-truth run: the overall
  /// average, 95th or 99th percentile per `stat`. Bounds theta are defined
  /// as fractions of this.
  double BaselineLatency(LatencyStat stat = LatencyStat::kAverage) const;

  /// Ground-truth matches of the test stream.
  const GroundTruth& truth() const { return truth_; }
  const RunResult& truth_run() const { return truth_run_; }
  const OfflineStats& offline() const { return offline_; }
  const CostModel& model() const { return *model_; }
  const std::shared_ptr<const Nfa>& nfa() const { return nfa_; }

  /// Latency-bound mode: theta = bound_fraction x BaselineLatency(stat).
  ExperimentResult RunBound(StrategyKind kind, double bound_fraction,
                            LatencyStat stat = LatencyStat::kAverage,
                            size_t pm_sample_stride = 0);

  /// Fixed-ratio mode (§VI-C): drop/shed `ratio` of events or matches.
  ExperimentResult RunFixed(StrategyKind kind, double ratio,
                            size_t pm_sample_stride = 0);

  /// Latency-bound run of any registered strategy spec
  /// (`name[:key=value,...]`, see ShedderRegistry). The enum overloads
  /// above delegate here; the spec path additionally reaches strategies
  /// without an enum value (hspice, pspice, plug-ins).
  Result<ExperimentResult> RunBoundSpec(const std::string& spec,
                                        double bound_fraction,
                                        LatencyStat stat = LatencyStat::kAverage,
                                        size_t pm_sample_stride = 0);

  /// Fixed-ratio run of any registered strategy spec.
  Result<ExperimentResult> RunFixedSpec(const std::string& spec, double ratio,
                                        size_t pm_sample_stride = 0);

  /// The registry context for the given operating point: every trained
  /// ingredient this harness prepared, borrowed. Valid until the next
  /// Prepare; exposed so callers driving their own engines (shard
  /// runtimes, tests) can construct registry strategies consistently.
  ShedderContext MakeContext(double theta, double fraction,
                             uint64_t seed) const;

  /// Re-runs the ground truth engine (e.g., after option changes).
  Status RefreshTruth();

  const HarnessOptions& options() const { return options_; }
  /// Mutable access before Prepare (e.g., per-experiment cost model
  /// settings).
  HarnessOptions* mutable_options() { return &options_; }

  const PositionalUtility& positional() const { return *positional_; }
  const HspiceTable& hspice() const { return *hspice_; }
  const PspiceModel& pspice() const { return *pspice_; }

 private:
  ExperimentResult RunWith(Shedder* shedder, CostModel* model,
                           size_t pm_sample_stride);
  Result<ExperimentResult> RunSpec(const std::string& spec, double theta,
                                   double fraction, uint64_t seed,
                                   size_t pm_sample_stride);
  /// Stable strategy id for run-seed derivation: legacy names keep their
  /// StrategyKind enum value so seeds (and thus recorded results) match
  /// the pre-registry harness; unknown names hash.
  static uint64_t SeedId(const std::string& name);

  const Schema* schema_;
  Query query_;
  HarnessOptions options_;
  std::shared_ptr<const Nfa> nfa_;
  std::unique_ptr<CostModel> model_;  // master (copied per run)
  OfflineStats offline_;
  EventStream train_;
  EventStream test_;
  /// Sorted training event utilities (rho_I quantile cutoff scale).
  std::vector<double> utility_samples_;
  /// Positional utility table for the PI baseline (trained in Prepare).
  std::unique_ptr<PositionalUtility> positional_;
  /// Per-(type, state) utility table for hSPICE (trained in Prepare).
  std::unique_ptr<HspiceTable> hspice_;
  /// Per-state completion model for pSPICE (trained in Prepare).
  std::unique_ptr<PspiceModel> pspice_;
  GroundTruth truth_;
  RunResult truth_run_;
  bool prepared_ = false;
};

}  // namespace cepshed

#endif  // CEPSHED_RUNTIME_EXPERIMENT_H_
