// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/cep/stream.h"

namespace cepshed {

Status EventStream::Append(EventPtr event) {
  if (!events_.empty() && event->timestamp() < events_.back()->timestamp()) {
    return Status::InvalidArgument("stream timestamps must be non-decreasing");
  }
  events_.push_back(std::move(event));
  return Status::OK();
}

Status EventStream::Emit(int type, Timestamp timestamp, std::vector<Value> attrs) {
  if (type < 0 || static_cast<size_t>(type) >= schema_->num_event_types()) {
    return Status::InvalidArgument("unknown event type id " + std::to_string(type));
  }
  return Append(std::make_shared<Event>(type, timestamp, events_.size(), std::move(attrs)));
}

EventStream EventStream::Prefix(size_t k) const {
  EventStream out(schema_);
  const size_t n = k < events_.size() ? k : events_.size();
  out.events_.assign(events_.begin(), events_.begin() + static_cast<ptrdiff_t>(n));
  return out;
}

size_t EventStream::CountType(int type) const {
  size_t n = 0;
  for (const auto& e : events_) {
    if (e->type() == type) ++n;
  }
  return n;
}

}  // namespace cepshed
