// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// RAII wall-clock trace hook: times a scope and records the elapsed
// microseconds into a LogHistogram on destruction. A null histogram makes
// the timer a no-op without reading the clock, so instrumented call sites
// cost one branch when observability is off.

#ifndef CEPSHED_OBS_SCOPED_TIMER_H_
#define CEPSHED_OBS_SCOPED_TIMER_H_

#include <chrono>

#include "src/obs/metrics.h"

namespace cepshed {
namespace obs {

class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(LogHistogram* hist) : hist_(hist) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimerUs() {
    if (hist_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_->Record(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }

  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

 private:
  LogHistogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace cepshed

#endif  // CEPSHED_OBS_SCOPED_TIMER_H_
