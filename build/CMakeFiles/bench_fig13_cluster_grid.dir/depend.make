# Empty dependencies file for bench_fig13_cluster_grid.
# This may be replaced when dependencies are built.
