# Empty compiler generated dependencies file for cepshed.
# This may be replaced when dependencies are built.
