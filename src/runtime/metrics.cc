// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/runtime/metrics.h"

namespace cepshed {

GroundTruth::GroundTruth(const std::vector<Match>& matches) {
  detected_at_.reserve(matches.size());
  for (const Match& m : matches) detected_at_.emplace(m.Key(), m.detected_at);
}

QualityMetrics ComputeQuality(const std::vector<Match>& found, const GroundTruth& truth) {
  QualityMetrics q;
  q.truth_size = truth.size();
  q.found = found.size();
  for (const Match& m : found) {
    if (truth.Contains(m.Key())) {
      ++q.true_positives;
    } else {
      ++q.false_positives;
    }
  }
  q.recall = q.truth_size == 0
                 ? 1.0
                 : static_cast<double>(q.true_positives) / static_cast<double>(q.truth_size);
  q.precision = q.found == 0
                    ? 1.0
                    : static_cast<double>(q.true_positives) / static_cast<double>(q.found);
  return q;
}

QualityMetrics ComputeQualityInRange(const std::vector<Match>& found,
                                     const GroundTruth& truth, Timestamp t_begin,
                                     Timestamp t_end) {
  QualityMetrics q;
  for (const auto& [key, ts] : truth.entries()) {
    if (ts >= t_begin && ts < t_end) ++q.truth_size;
  }
  for (const Match& m : found) {
    if (m.detected_at < t_begin || m.detected_at >= t_end) continue;
    ++q.found;
    // A true positive must correspond to a truth entry *in this bucket*:
    // under shedding-induced detection delay a match can be found in a later
    // bucket than the truth detected it in, and counting it against this
    // bucket's truth_size would let recall exceed 1.
    if (truth.Contains(m.Key())) {
      const Timestamp truth_ts = truth.DetectedAt(m.Key());
      if (truth_ts >= t_begin && truth_ts < t_end) {
        ++q.true_positives;
      } else {
        ++q.false_positives;
      }
    } else {
      ++q.false_positives;
    }
  }
  q.recall = q.truth_size == 0
                 ? 1.0
                 : static_cast<double>(q.true_positives) / static_cast<double>(q.truth_size);
  q.precision = q.found == 0
                    ? 1.0
                    : static_cast<double>(q.true_positives) / static_cast<double>(q.found);
  return q;
}

}  // namespace cepshed
