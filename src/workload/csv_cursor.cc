// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/workload/csv_cursor.h"

#include <charconv>

namespace cepshed {

std::string& CsvRowSplitter::NextScratch() {
  if (scratch_used_ == scratch_.size()) scratch_.emplace_back();
  return scratch_[scratch_used_++];
}

bool CsvRowSplitter::Split(std::string_view row,
                          std::vector<std::string_view>* cells) {
  cells->clear();
  scratch_used_ = 0;
  size_t i = 0;
  for (;;) {
    if (i < row.size() && row[i] == '"') {
      // Quoted cell: scan to the closing quote, watching for "" escapes.
      size_t j = i + 1;
      bool escaped = false;
      for (;;) {
        if (j >= row.size()) return false;  // unterminated quote
        if (row[j] == '"') {
          if (j + 1 < row.size() && row[j + 1] == '"') {
            escaped = true;
            j += 2;
            continue;
          }
          break;  // closing quote
        }
        ++j;
      }
      const std::string_view content = row.substr(i + 1, j - (i + 1));
      if (!escaped) {
        cells->push_back(content);
      } else {
        std::string& s = NextScratch();
        s.clear();
        for (size_t k = 0; k < content.size(); ++k) {
          s.push_back(content[k]);
          if (content[k] == '"') ++k;  // collapse the "" pair
        }
        cells->push_back(s);
      }
      i = j + 1;
      if (i == row.size()) return true;
      if (row[i] != ',') return false;  // text after the closing quote
      ++i;
    } else {
      const size_t comma = row.find(',', i);
      if (comma == std::string_view::npos) {
        cells->push_back(row.substr(i));
        return true;
      }
      cells->push_back(row.substr(i, comma - i));
      i = comma + 1;
    }
  }
}

bool ParseCsvInt(std::string_view cell, int64_t* out) {
  if (cell.empty()) return false;
  const char* first = cell.data();
  const char* last = first + cell.size();
  const auto [ptr, ec] = std::from_chars(first, last, *out, 10);
  return ec == std::errc() && ptr == last;
}

bool ParseCsvDouble(std::string_view cell, double* out) {
  if (cell.empty()) return false;
  const char* first = cell.data();
  const char* last = first + cell.size();
  const auto [ptr, ec] =
      std::from_chars(first, last, *out, std::chars_format::general);
  return ec == std::errc() && ptr == last;
}

Status ValidateCsvHeader(const Schema& schema,
                         const std::vector<std::string_view>& header) {
  if (header.size() != 2 + schema.num_attributes() || header[0] != "type" ||
      header[1] != "timestamp") {
    return Status::InvalidArgument("CSV header does not match the schema");
  }
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    if (header[a + 2] != schema.attribute(static_cast<int>(a)).name) {
      return Status::InvalidArgument(
          "CSV column '" + std::string(header[a + 2]) +
          "' does not match attribute '" +
          schema.attribute(static_cast<int>(a)).name + "'");
    }
  }
  return Status::OK();
}

Status ParseCsvRow(const Schema& schema,
                   const std::vector<std::string_view>& cells,
                   size_t expected_cells, size_t line_no, int* type,
                   Timestamp* ts, std::vector<Value>* attrs) {
  if (cells.size() != expected_cells) {
    return Status::ParseError("CSV line " + std::to_string(line_no) +
                              ": wrong number of cells");
  }
  *type = schema.EventTypeId(cells[0]);
  if (*type < 0) {
    return Status::ParseError("CSV line " + std::to_string(line_no) +
                              ": unknown type '" + std::string(cells[0]) + "'");
  }
  if (!ParseCsvInt(cells[1], ts)) {
    return Status::ParseError("CSV line " + std::to_string(line_no) +
                              ": bad timestamp '" + std::string(cells[1]) +
                              "'");
  }
  attrs->assign(schema.num_attributes(), Value());
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const std::string_view cell = cells[a + 2];
    if (cell.empty()) continue;
    switch (schema.attribute(static_cast<int>(a)).type) {
      case ValueType::kInt: {
        int64_t v = 0;
        if (!ParseCsvInt(cell, &v)) {
          return Status::ParseError("CSV line " + std::to_string(line_no) +
                                    ": bad int '" + std::string(cell) + "'");
        }
        (*attrs)[a] = Value(v);
        break;
      }
      case ValueType::kDouble: {
        double v = 0.0;
        if (!ParseCsvDouble(cell, &v)) {
          return Status::ParseError("CSV line " + std::to_string(line_no) +
                                    ": bad double '" + std::string(cell) + "'");
        }
        (*attrs)[a] = Value(v);
        break;
      }
      default:
        (*attrs)[a] = Value(std::string(cell));
        break;
    }
  }
  return Status::OK();
}

}  // namespace cepshed
