// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/sketch/p2_quantile.h"

#include <algorithm>
#include <cmath>

namespace cepshed {

P2Quantile::P2Quantile(double q) : q_(q) { Reset(); }

void P2Quantile::Reset() {
  count_ = 0;
  desired_[0] = 1;
  desired_[1] = 1 + 2 * q_;
  desired_[2] = 1 + 4 * q_;
  desired_[3] = 3 + 2 * q_;
  desired_[4] = 5;
  increments_[0] = 0;
  increments_[1] = q_ / 2;
  increments_[2] = q_;
  increments_[3] = (1 + q_) / 2;
  increments_[4] = 1;
  for (int i = 0; i < 5; ++i) {
    heights_[i] = 0;
    positions_[i] = i + 1;
    evidence_[i] = MarkerEvidence{};
  }
}

double P2Quantile::Parabolic(int i, double d) const {
  return heights_[i] +
         d / (positions_[i + 1] - positions_[i - 1]) *
             ((positions_[i] - positions_[i - 1] + d) *
                  (heights_[i + 1] - heights_[i]) /
                  (positions_[i + 1] - positions_[i]) +
              (positions_[i + 1] - positions_[i] - d) *
                  (heights_[i] - heights_[i - 1]) /
                  (positions_[i] - positions_[i - 1]));
}

double P2Quantile::Linear(int i, double d) const {
  const int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) /
                           (positions_[j] - positions_[i]);
}

void P2Quantile::ObserveEvidence(int i, double x) {
  // An observation equal to the marker height means the marker sits on real
  // data; any accumulated suspicion about it is void.
  if (x == heights_[i]) {
    evidence_[i] = MarkerEvidence{};
    return;
  }
  MarkerEvidence& e = evidence_[i];
  ++e.total;
  if (x < heights_[i]) {
    ++e.below;
    if (e.lo_run > 0 && x == e.lo_value) {
      ++e.lo_run;
    } else {
      e.lo_value = x;
      e.lo_run = 1;
    }
  } else {
    if (e.hi_run > 0 && x == e.hi_value) {
      ++e.hi_run;
    } else {
      e.hi_value = x;
      e.hi_run = 1;
    }
  }

  // Only act once enough observations have landed near this marker that the
  // empirical below-fraction is meaningful; extreme-quantile markers see
  // interior observations rarely, so the floor scales with 1 / P(inside).
  const double p_inside = increments_[i + 1] - increments_[i - 1];
  const double n_min = std::max(64.0, 8.0 / std::max(p_inside, 1e-6));
  if (static_cast<double>(e.total) < n_min) return;

  const double frac_below =
      static_cast<double>(e.below) / static_cast<double>(e.total);
  const double se =
      std::sqrt(std::max(increments_[i] * (1 - increments_[i]), 1e-12) /
                static_cast<double>(e.total));
  const size_t persist = std::max(static_cast<size_t>(n_min), count_ / 4);
  const size_t above = e.total - e.below;

  // Snap a starved marker onto a persistent atom: the empirical rank of the
  // marker height is >3 sigma away from its target quantile, and (nearly)
  // every observation on the heavy side is one identical value that has
  // persisted for a quarter of the stream. Continuous streams never trip
  // this (a run of bit-identical doubles has vanishing probability).
  if (frac_below - increments_[i] > 3 * se && e.lo_run >= persist &&
      e.lo_run >= static_cast<size_t>(0.9 * static_cast<double>(e.below))) {
    heights_[i] = std::clamp(e.lo_value, heights_[i - 1], heights_[i + 1]);
    evidence_[i] = MarkerEvidence{};
  } else if (increments_[i] - frac_below > 3 * se && e.hi_run >= persist &&
             e.hi_run >=
                 static_cast<size_t>(0.9 * static_cast<double>(above))) {
    heights_[i] = std::clamp(e.hi_value, heights_[i - 1], heights_[i + 1]);
    evidence_[i] = MarkerEvidence{};
  }
}

void P2Quantile::Add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }

  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  // Tie-aware cell selection: when `x` equals a run of tied marker heights,
  // the textbook scan credits only the cell above the run, starving the tied
  // markers' positions. Route the observation to the first tied marker whose
  // position is behind its desired position instead.
  if (x == heights_[k]) {
    int first_tied = k;
    while (first_tied > 0 && heights_[first_tied - 1] == x) --first_tied;
    for (int j = first_tied; j <= k; ++j) {
      if (desired_[j] > positions_[j]) {
        k = j > 0 ? j - 1 : 0;
        break;
      }
    }
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    if ((d >= 1 && positions_[i + 1] - positions_[i] > 1) ||
        (d <= -1 && positions_[i - 1] - positions_[i] < -1)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      double candidate = Parabolic(i, sign);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = Linear(i, sign);
      }
      // The parabolic formula can produce non-monotone heights on degenerate
      // marker spacings; clamping keeps the height vector a valid quantile
      // staircase.
      heights_[i] = std::clamp(heights_[i], heights_[i - 1], heights_[i + 1]);
      positions_[i] += sign;
    }
  }
  ++count_;

  for (int i = 1; i <= 3; ++i) ObserveEvidence(i, x);
}

double P2Quantile::Value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact quantile over the few observations seen so far.
    double sorted[5];
    std::copy(heights_, heights_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    const double idx = q_ * static_cast<double>(count_ - 1);
    const size_t lo = static_cast<size_t>(idx);
    const size_t hi = std::min(lo + 1, count_ - 1);
    const double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1 - frac) + sorted[hi] * frac;
  }
  return heights_[2];
}

}  // namespace cepshed
