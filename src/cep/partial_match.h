// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Partial matches and their store — the *state* of CEP query evaluation
// (P(k) in the paper). State-based load shedding operates directly on this
// store; the cost model annotates each partial match with its class.

#ifndef CEPSHED_CEP_PARTIAL_MATCH_H_
#define CEPSHED_CEP_PARTIAL_MATCH_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/cep/event.h"
#include "src/common/time.h"

namespace cepshed {

/// \brief One partial match: a prefix binding of the pattern's positive
/// components, or a negation witness.
///
/// Partial matches are immutable once stored: extending a match clones it
/// (skip-till-any-match keeps the original). `alive` is a tombstone used by
/// window eviction and state-based shedding; dead matches are reclaimed by
/// the store's periodic compaction.
struct PartialMatch {
  /// Unique id (monotonic per engine), used for lineage tracking.
  uint64_t id = 0;
  /// Id of the partial match this one was cloned from (0 = stream-created).
  uint64_t parent_id = 0;
  /// Index of the positive component currently being filled. Equals the
  /// NFA state of the match.
  int state = 0;
  /// Events bound so far, grouped by positive slot.
  std::vector<EventPtr> events;
  /// Prefix end offsets into `events` per positive slot filled so far.
  /// slot_end.size() == state for completed slots plus, for Kleene, the
  /// in-progress slot is represented by events beyond slot_end.back().
  std::vector<uint32_t> slot_end;
  /// Timestamp of the first bound event (window anchor).
  Timestamp start_ts = 0;
  /// Timestamp of the latest bound event.
  Timestamp last_ts = 0;
  /// Cost model class within the match's state (-1 = unclassified).
  int32_t class_label = -1;
  /// Tombstone: false once evicted or shed.
  bool alive = true;
  /// True for negation witnesses (single-event vetoes).
  bool is_witness = false;
  /// Pattern element index of the negated component (witnesses only).
  int negated_elem = -1;

  /// Events bound to the in-progress (Kleene) component.
  uint32_t OpenCount() const {
    const uint32_t closed = slot_end.empty() ? 0 : slot_end.back();
    return static_cast<uint32_t>(events.size()) - closed;
  }
  /// Total number of bound events.
  uint32_t Length() const { return static_cast<uint32_t>(events.size()); }
  /// Sequence number of the first bound event (count-window anchor).
  uint64_t start_seq = 0;
  /// True if the match has aged out of the window at time `now`.
  bool Expired(Timestamp now, Duration window) const {
    return now - start_ts > window;
  }
  /// True if the match has aged out of a count-based window at stream
  /// position `seq`.
  bool ExpiredByCount(uint64_t seq, uint64_t count_window) const {
    return seq - start_seq > count_window;
  }
};

/// \brief Buckets of partial matches per NFA state, plus negation
/// witnesses, with tombstone-based removal.
class PartialMatchStore {
 public:
  using Bucket = std::vector<std::unique_ptr<PartialMatch>>;

  /// Constructs a store for `num_states` positive components and
  /// `num_elements` total pattern components (witness buckets are indexed
  /// by pattern element).
  PartialMatchStore(int num_states, int num_elements);

  /// Inserts a match into the bucket of its state; returns a stable pointer.
  PartialMatch* Add(std::unique_ptr<PartialMatch> pm);

  /// Inserts a negation witness for the given pattern element.
  PartialMatch* AddWitness(std::unique_ptr<PartialMatch> pm);

  /// The bucket of the given NFA state.
  Bucket& bucket(int state) { return buckets_[static_cast<size_t>(state)]; }
  const Bucket& bucket(int state) const { return buckets_[static_cast<size_t>(state)]; }
  int num_states() const { return static_cast<int>(buckets_.size()); }

  /// The witness bucket of the given pattern element.
  Bucket& witnesses(int elem) { return witness_buckets_[static_cast<size_t>(elem)]; }
  const Bucket& witnesses(int elem) const {
    return witness_buckets_[static_cast<size_t>(elem)];
  }
  int num_witness_buckets() const { return static_cast<int>(witness_buckets_.size()); }

  /// Tombstones a match (no-op if already dead).
  void Kill(PartialMatch* pm);

  /// Number of live regular partial matches.
  size_t NumAlive() const { return num_alive_; }
  /// Number of live negation witnesses.
  size_t NumAliveWitnesses() const { return num_alive_witnesses_; }
  /// Number of tombstoned entries awaiting compaction.
  size_t NumDead() const { return num_dead_; }

  /// Deterministic per-match memory estimate (struct + event-pointer and
  /// offset payload + allocator slack). Events themselves are shared with
  /// the stream and not charged.
  static size_t ApproxBytes(const PartialMatch& pm) {
    return sizeof(PartialMatch) + pm.events.size() * sizeof(EventPtr) +
           pm.slot_end.size() * sizeof(uint32_t) + kPerMatchOverheadBytes;
  }

  /// Estimated bytes held by live matches and witnesses — the memory
  /// signal the overload guard enforces its budget against. O(1);
  /// maintained incrementally by Add/AddWitness/Kill (matches are
  /// immutable once stored, so the insert-time estimate stays exact).
  size_t ApproxLiveBytes() const { return approx_live_bytes_; }

  /// Tombstones every live match (regular and witness) whose window has
  /// elapsed at `now`; returns the number evicted.
  size_t EvictExpired(Timestamp now, Duration window);

  /// Applies `fn` to every live regular match.
  void ForEachAlive(const std::function<void(PartialMatch*)>& fn);
  /// Applies `fn` to every live witness.
  void ForEachAliveWitness(const std::function<void(PartialMatch*)>& fn);

  /// Physically removes tombstoned matches. Pointers to dead matches become
  /// dangling; callers holding indexes must rebuild them (the engine does).
  void Compact();

  /// Fraction of dead entries, used to decide when to compact.
  double DeadFraction() const;

  /// Kills everything (used between experiment runs).
  void Clear();

 private:
  /// Unique-ptr indirection plus typical allocator rounding per entry.
  static constexpr size_t kPerMatchOverheadBytes = 32;

  std::vector<Bucket> buckets_;
  std::vector<Bucket> witness_buckets_;
  size_t num_alive_ = 0;
  size_t num_alive_witnesses_ = 0;
  size_t num_dead_ = 0;
  size_t approx_live_bytes_ = 0;
};

}  // namespace cepshed

#endif  // CEPSHED_CEP_PARTIAL_MATCH_H_
