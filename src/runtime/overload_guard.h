// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// The overload guard: a per-shard watchdog that turns *observed* overload
// signals — latency-bound headroom, queue fill, and partial-match memory —
// into a hysteresis degradation ladder:
//
//   normal ──► shedding ──► panic ──► emergency
//     ▲            │           │          │
//     └────────────┴───────────┴──────────┘  (stepwise recovery)
//
//   shedding   rho_I via the DropRateController (violation-proportional
//              drop rate) plus periodic rho_S trims of the lowest-utility
//              partial matches;
//   panic      every droppable input event is discarded (the engine only
//              pays the filter cost, so the latency signal can decay);
//   emergency  utility-ordered partial-match eviction down to the
//              low-watermark of the memory budget — degradation stays
//              principled: the matches estimated least likely to
//              contribute results die first, and negation witnesses are
//              never touched (so degraded output stays a subset of the
//              fault-free output).
//
// Escalation requires `escalate_after` consecutive hot checks and recovery
// `recover_after` consecutive cool ones, with a dead zone between the hot
// and cool thresholds — the ladder cannot flap on a boundary signal. The
// memory budget additionally acts as a hard cap checked every event:
// crossing it evicts immediately, whatever the ladder state.
//
// Drop decisions are a pure hash of (seed, event sequence number) at the
// current rate, so a degraded run is reproducible given the same rate
// trajectory, and shards with the same seed shed consistently.
//
// Thread confinement matches the shard runtime: one guard per shard,
// driven only from that shard's consumer thread.

#ifndef CEPSHED_RUNTIME_OVERLOAD_GUARD_H_
#define CEPSHED_RUNTIME_OVERLOAD_GUARD_H_

#include <cstdint>

#include "src/cep/engine.h"
#include "src/obs/metrics.h"
#include "src/shed/baselines.h"

namespace cepshed {

/// \brief Rungs of the degradation ladder.
enum class GuardLevel : int {
  kNormal = 0,
  kShedding = 1,
  kPanic = 2,
  kEmergency = 3,
};

/// Human-readable level name ("normal", "shedding", ...).
const char* GuardLevelName(GuardLevel level);

/// \brief Per-shard overload watchdog (see file comment).
class OverloadGuard {
 public:
  struct Options {
    /// Master switch; a disabled guard costs one branch per event.
    bool enabled = false;
    /// Latency bound theta in cost units; <= 0 disables the latency
    /// signal (queue/memory pressure still drive the ladder).
    double theta = 0.0;
    /// Post-trigger delay of the drop-rate controller (events).
    uint64_t trigger_delay = 256;
    /// The latency signal cools only below hysteresis * theta.
    double latency_hysteresis = 0.85;
    /// Queue-fill fraction that reads as hot / cool.
    double queue_high = 0.75;
    double queue_low = 0.25;
    /// Hard partial-match memory budget in bytes (0 = unlimited).
    size_t memory_budget_bytes = 0;
    /// Budget fraction that reads as hot / the eviction target.
    double memory_high = 0.90;
    double memory_low = 0.60;
    /// Events between ladder evaluations (signals are sampled every
    /// event; level moves only at checks).
    uint64_t check_every = 32;
    /// Consecutive hot checks before escalating one rung.
    uint64_t escalate_after = 2;
    /// Consecutive cool checks before recovering one rung.
    uint64_t recover_after = 6;
    /// Input-drop probability at kShedding when theta <= 0 (with a bound,
    /// the DropRateController's violation-proportional rate is used).
    double shedding_drop_rate = 0.5;
    /// Input-drop probability at kPanic and kEmergency.
    double panic_drop_rate = 1.0;
    /// Fraction of live partial matches trimmed (lowest utility first) on
    /// each hot check at kShedding and above.
    double trim_fraction = 0.05;
    /// Hash seed of the per-event drop decisions.
    uint64_t seed = 0x6f76657264ULL;
  };

  /// Counters published per run (all monotonic except the level fields).
  struct Stats {
    uint64_t escalations = 0;
    uint64_t de_escalations = 0;
    /// rho_I drops decided by the guard.
    uint64_t input_drops = 0;
    /// Partial matches killed by shedding-level trims.
    uint64_t trims = 0;
    /// Partial matches killed by emergency / hard-budget evictions.
    uint64_t emergency_evictions = 0;
    /// Times the hard memory budget tripped mid-check-interval.
    uint64_t budget_trips = 0;
    /// High-water mark of the state-memory estimate.
    size_t peak_state_bytes = 0;
    GuardLevel level = GuardLevel::kNormal;
    GuardLevel peak_level = GuardLevel::kNormal;
    /// Observe() calls when the level last changed (recovery-time metric).
    uint64_t last_level_change_event = 0;
    uint64_t events_observed = 0;
  };

  explicit OverloadGuard(Options options);

  /// Binds the engine whose state the guard may evict. Must be called
  /// before the first Observe on a live stream.
  void Attach(Engine* engine) { engine_ = engine; }

  /// Optional principled eviction order (e.g. the cost model's
  /// contribution estimate); default is Engine::DefaultPmUtility.
  void set_utility(Engine::PmUtilityFn fn) { utility_ = std::move(fn); }

  /// rho_I: true when the arriving event (identified by its stream
  /// sequence number) must be discarded at the current ladder level.
  bool ShouldDropInput(uint64_t seq);

  /// Feeds one event's observations: the smoothed latency mu, the shard
  /// queue occupancy, and the event-time clock (already skewed by any
  /// injected fault; the guard tolerates non-monotonic values). Runs the
  /// hard-budget check every event and the ladder evaluation every
  /// check_every events.
  void Observe(double mu, size_t queue_size, size_t queue_capacity, Timestamp now);

  GuardLevel level() const { return stats_.level; }
  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }
  bool enabled() const { return options_.enabled; }
  /// Current rho_I drop probability (diagnostics).
  double drop_rate() const { return drop_rate_; }

  /// Attaches the shard's observability sink (optional; not owned). Ladder
  /// transitions are then counted, mirrored into the guard-level gauge,
  /// and recorded in the shed-decision audit ring.
  void set_obs(obs::ShardObs* o, int shard_id = 0) {
    obs_ = o;
    obs_shard_ = shard_id;
  }

  /// Clears counters and returns to kNormal (between runs).
  void Reset();

 private:
  void Evaluate(double mu, double queue_fill);
  void SetLevel(GuardLevel level);
  void UpdateDropRate(double mu);
  /// Evicts down to memory_low * budget (hard-budget and emergency path).
  void EvictToBudget();
  /// Sheds trim_fraction of the live matches, lowest utility first.
  void TrimState();

  Options options_;
  Engine* engine_ = nullptr;
  obs::ShardObs* obs_ = nullptr;
  int obs_shard_ = 0;
  /// Last Observe context (audit trail for SetLevel transitions).
  double last_mu_ = 0.0;
  Timestamp last_now_ = 0;
  Engine::PmUtilityFn utility_;
  /// Violation-proportional rho_I rate when a latency bound is set.
  std::optional<DropRateController> controller_;
  double drop_rate_ = 0.0;
  uint64_t drop_cut_ = 0;
  uint64_t hot_streak_ = 0;
  uint64_t cool_streak_ = 0;
  uint64_t since_check_ = 0;
  Stats stats_;
};

}  // namespace cepshed

#endif  // CEPSHED_RUNTIME_OVERLOAD_GUARD_H_
