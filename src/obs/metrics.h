// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Lock-free, shard-local metrics substrate. Each shard worker owns one
// ShardObs and records into it with relaxed atomics — no locks, no
// allocation, no contention on the hot path (the router and exporter only
// read). Snapshots are plain structs that merge associatively, so the
// router can aggregate per-shard views into a run-level view at any time,
// including mid-run.
//
// Histograms are log-bucketed: 32 sub-buckets per power of two, i.e. a
// relative bucket width of at most ~3.1%, which bounds the quantile
// estimation error well inside the 5% agreement required against the
// exact percentiles — without storing samples (fixed 16 KiB per
// histogram).

#ifndef CEPSHED_OBS_METRICS_H_
#define CEPSHED_OBS_METRICS_H_

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/obs/audit_ring.h"

namespace cepshed {
namespace obs {

/// \brief Monotonic counter; relaxed-atomic, safe to read concurrently.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Load() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-write-wins gauge (e.g. the current guard level).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t Load() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Mergeable plain-data view of a LogHistogram.
struct HistogramSnapshot {
  std::vector<uint64_t> buckets;  // dense, LogHistogram::kNumBuckets
  uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;

  /// Quantile estimate (bucket geometric midpoint); 0 when empty.
  double Quantile(double q) const;
  double Mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
  /// Element-wise accumulate (merge is associative and commutative).
  void Merge(const HistogramSnapshot& other);
};

/// \brief Log-bucketed histogram of positive values; p50/p95/p99/max
/// without storing samples. Record is lock-free and allocation-free.
class LogHistogram {
 public:
  /// Sub-buckets per power of two (relative width <= 1/kSubBuckets).
  static constexpr int kSubBuckets = 32;
  /// frexp-exponent clamp range: values in (2^-32, 2^32) get full
  /// resolution, values outside land in the edge buckets.
  static constexpr int kMinExp = -32;
  static constexpr int kMaxExp = 32;
  static constexpr int kNumBuckets = (kMaxExp - kMinExp) * kSubBuckets;

  void Record(double v) {
    const int idx = BucketIndex(v);
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    // Monotone max over the positive-double bit pattern (order-preserving).
    const uint64_t bits = BitsOf(v < 0 ? 0.0 : v);
    uint64_t seen = max_bits_.load(std::memory_order_relaxed);
    while (bits > seen &&
           !max_bits_.compare_exchange_weak(seen, bits,
                                            std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot Snapshot() const;
  /// Total recordings. Derived from the buckets (the hot path does not
  /// maintain a separate count — one fewer atomic RMW per Record).
  uint64_t Count() const {
    uint64_t n = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      n += buckets_[i].load(std::memory_order_relaxed);
    }
    return n;
  }
  void Reset();

  /// Bucket index of a value; non-positive and subnormal-small values land
  /// in bucket 0, huge values in the last bucket.
  static int BucketIndex(double v) {
    if (!(v > 0.0)) return 0;
    int exp;
    const double mant = std::frexp(v, &exp);  // mant in [0.5, 1)
    if (exp <= kMinExp) return 0;
    if (exp > kMaxExp) return kNumBuckets - 1;
    const int sub = static_cast<int>((mant - 0.5) * (2 * kSubBuckets));
    return (exp - kMinExp - 1) * kSubBuckets +
           (sub >= kSubBuckets ? kSubBuckets - 1 : sub);
  }
  /// Inclusive lower / exclusive upper value bound of a bucket.
  static double BucketLower(int idx);
  static double BucketUpper(int idx);

 private:
  static uint64_t BitsOf(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double DoubleOf(uint64_t bits) {
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<double> sum_{0.0};
  std::atomic<uint64_t> max_bits_{0};

  friend class LogHistogramTestPeer;
};

/// Shed-decision classes with no model class label map to this bucket.
inline constexpr int kUnclassified = 0;

/// \brief All metrics one shard records. Fixed layout — no string lookups
/// on the hot path. The shard worker writes, everyone else only reads.
struct ShardObs {
  /// Number of per-class shed counters; class labels >= this are clamped
  /// into the last bucket.
  static constexpr int kNumClasses = 8;

  Counter events_routed;
  Counter events_processed;
  Counter events_dropped_shedder;
  Counter events_dropped_guard;
  Counter events_lost;
  Counter matches_emitted;
  Counter pms_shed;
  Counter shed_triggers;
  /// Online-adaptation folds executed by learned shedders (hSPICE table
  /// blends, pSPICE leaf re-estimates).
  Counter shed_adapt_folds;
  /// Partial matches scored and ranked by pSPICE's kill selection.
  Counter pms_ranked;
  Counter knapsack_solves;
  Counter guard_transitions;
  Counter queue_push_timeouts;
  /// Elastic-reshard accounting. The per-shard counters (migrated_pms /
  /// migrated_bytes) are recorded on the *donor* shard; the run-level
  /// series (migrations_total, live_shards, arena_legacy_bytes,
  /// migration_us) live on shard 0's slot. All are written by the router
  /// at migration barriers, when every worker is parked — the single-
  /// writer discipline holds because workers never touch these fields.
  Counter migrations_total;
  Counter migrated_pms;
  Counter migrated_bytes;
  /// Partial matches killed by the deadline-ordered expiry reap (the
  /// timing-wheel replacement for the O(live) sweep; DESIGN.md §3.9).
  Counter expiry_reaped;
  /// Timing-wheel cascade re-placements (entries migrating toward finer
  /// levels as the wheel advances). A high ratio of cascades to reaps
  /// means deadlines far exceed the advance stride.
  Counter wheel_cascades;
  Counter shed_by_class[kNumClasses];
  Gauge guard_level;
  /// Current number of live (routable) shards; static runs report
  /// num_shards for the whole run.
  Gauge live_shards;
  /// Live chain-node bytes still held by the arenas of retired shards
  /// (shard ids >= live_shards). The soak harness asserts this returns to
  /// its plateau after every shrink — a leak here means migrated state is
  /// pinning donor arenas forever.
  Gauge arena_legacy_bytes;
  /// State-footprint gauges, set by the shard worker after each consumed
  /// event (last-write-wins). The soak harness asserts these stay bounded
  /// over arbitrarily long runs — leak and creep detection.
  Gauge state_bytes;           // engine's live partial-match byte estimate
  Gauge arena_live_bytes;      // binding-arena live chain-node bytes
  Gauge arena_capacity_bytes;  // binding-arena bytes held from the allocator
  Gauge flat_cache_entries;    // engine flatten-cache population
  Gauge wheel_entries;         // matches queued on the expiry wheel

  LogHistogram event_cost;        // per-event engine cost (cost units)
  LogHistogram migration_us;      // stop-the-world reshard pause (wall-clock)
  LogHistogram queue_wait_us;     // router wait on a full shard queue
  LogHistogram shed_trigger_us;   // whole shedder re-plan (wall-clock)
  LogHistogram knapsack_us;       // knapsack solve inside the re-plan

  AuditRing audit;

  /// Class-label clamp shared by every per-class site.
  static int ClassBucket(int cls) {
    if (cls < 0) return kUnclassified;
    return cls < kNumClasses ? cls : kNumClasses - 1;
  }
  void CountShedClass(int cls) { shed_by_class[ClassBucket(cls)].Add(); }
};

/// \brief Plain-data view of one shard's metrics.
struct ShardObsSnapshot {
  uint64_t events_routed = 0;
  uint64_t events_processed = 0;
  uint64_t events_dropped_shedder = 0;
  uint64_t events_dropped_guard = 0;
  uint64_t events_lost = 0;
  uint64_t matches_emitted = 0;
  uint64_t pms_shed = 0;
  uint64_t shed_triggers = 0;
  uint64_t shed_adapt_folds = 0;
  uint64_t pms_ranked = 0;
  uint64_t knapsack_solves = 0;
  uint64_t guard_transitions = 0;
  uint64_t queue_push_timeouts = 0;
  uint64_t migrations_total = 0;
  uint64_t migrated_pms = 0;
  uint64_t migrated_bytes = 0;
  uint64_t expiry_reaped = 0;
  uint64_t wheel_cascades = 0;
  uint64_t shed_by_class[ShardObs::kNumClasses] = {};
  int64_t guard_level = 0;
  int64_t live_shards = 0;
  int64_t arena_legacy_bytes = 0;
  int64_t state_bytes = 0;
  int64_t arena_live_bytes = 0;
  int64_t arena_capacity_bytes = 0;
  int64_t flat_cache_entries = 0;
  int64_t wheel_entries = 0;
  HistogramSnapshot event_cost;
  HistogramSnapshot migration_us;
  HistogramSnapshot queue_wait_us;
  HistogramSnapshot shed_trigger_us;
  HistogramSnapshot knapsack_us;
  std::vector<AuditEntry> audit;

  void Merge(const ShardObsSnapshot& other);
};

/// \brief Merged view of a whole run: per-shard snapshots plus their sum.
struct RegistrySnapshot {
  std::vector<ShardObsSnapshot> shards;
  ShardObsSnapshot total;  // merge of all shards (audit entries time-sorted)
};

/// \brief Owns one ShardObs per shard. Shards are created before workers
/// start; workers then touch only their own slot, so the slot vector needs
/// no lock. Lives as long as the run(s) it observes.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(int num_shards = 0) { EnsureShards(num_shards); }

  /// Grows to at least n slots. Not safe concurrently with Record calls —
  /// call before workers start (the runtimes do).
  void EnsureShards(int n) {
    while (static_cast<int>(shards_.size()) < n) {
      shards_.push_back(std::make_unique<ShardObs>());
    }
  }

  ShardObs* shard(int i) { return shards_[static_cast<size_t>(i)].get(); }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  RegistrySnapshot Snapshot() const;

 private:
  std::vector<std::unique_ptr<ShardObs>> shards_;
};

ShardObsSnapshot SnapshotShard(const ShardObs& o);

}  // namespace obs
}  // namespace cepshed

#endif  // CEPSHED_OBS_METRICS_H_
