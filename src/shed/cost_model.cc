// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/shed/cost_model.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>

#include "src/ml/gap_statistic.h"
#include "src/ml/kmeans.h"

namespace cepshed {

namespace {

double Percentile(std::vector<double>* values, double pct) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  const size_t idx = std::min(
      values->size() - 1,
      static_cast<size_t>(pct * static_cast<double>(values->size() - 1) + 0.5));
  return (*values)[idx];
}

}  // namespace

CostModel::CostModel(std::shared_ptr<const Nfa> nfa, CostModelOptions options)
    : nfa_(std::move(nfa)),
      options_(options),
      contrib_inc_(options.sketch_width, options.sketch_depth, /*seed=*/0xc0),
      consum_inc_(options.sketch_width, options.sketch_depth, /*seed=*/0xc1),
      created_inc_(options.sketch_width, options.sketch_depth, /*seed=*/0xc2) {
  if (options_.num_time_slices < 1) options_.num_time_slices = 1;
  slice_len_ = std::max<Duration>(
      1, nfa_->window() / static_cast<Duration>(options_.num_time_slices));
  states_.resize(static_cast<size_t>(nfa_->num_states()));
  // Initialize one catch-all class per state so the model is usable (as a
  // uniform prior) before training.
  for (auto& sm : states_) {
    sm.num_classes = 1;
    sm.contrib.assign(static_cast<size_t>(options_.num_time_slices), 1.0);
    sm.consum.assign(static_cast<size_t>(options_.num_time_slices), 1.0);
  }
}

int CostModel::SliceOfAge(Duration age) const {
  int s = static_cast<int>(age / slice_len_);
  if (s < 0) s = 0;
  if (s >= options_.num_time_slices) s = options_.num_time_slices - 1;
  return s;
}

Status CostModel::Train(const OfflineStats& stats, Rng* rng) {
  const auto t0 = std::chrono::steady_clock::now();
  if (stats.num_slices != options_.num_time_slices) {
    return Status::InvalidArgument(
        "offline stats were collected with a different number of time slices");
  }

  // Group record indices by state.
  std::vector<std::vector<size_t>> by_state(states_.size());
  for (size_t i = 0; i < stats.records.size(); ++i) {
    by_state[static_cast<size_t>(stats.records[i].state)].push_back(i);
  }

  const int slices = options_.num_time_slices;
  for (int s = 0; s < nfa_->num_states(); ++s) {
    StateModel& sm = states_[static_cast<size_t>(s)];
    const auto& idxs = by_state[static_cast<size_t>(s)];
    if (idxs.empty()) {
      sm.num_classes = 1;
      sm.contrib.assign(static_cast<size_t>(slices), 0.0);
      sm.consum.assign(static_cast<size_t>(slices), 0.0);
      sm.pm_tree = RegressionTree();
      sm.event_tree = DecisionTree();
      continue;
    }

    // --- Data abstraction (§V-A): partition the matches of this state by
    // their predicate attributes into groups with homogeneous expected
    // contribution/consumption (a multi-target regression tree — the
    // decision-tree classifier of §V-B fitted directly to the cost
    // values; irrelevant attributes produce no variance reduction and are
    // ignored), then cluster the groups into the cost-model classes.
    const size_t tree_stride = std::max<size_t>(
        1, idxs.size() / std::max<size_t>(1, options_.max_tree_samples));
    std::vector<std::vector<double>> x_full;
    std::vector<std::vector<double>> y;
    std::vector<size_t> sampled;  // index into idxs
    for (size_t j = 0; j < idxs.size(); j += tree_stride) {
      const PmRecord& rec = stats.records[idxs[j]];
      x_full.emplace_back(rec.features.begin(), rec.features.end());
      double c = 0.0;
      double w = 0.0;
      for (float v : rec.contrib_by_slice) c += v;
      for (float v : rec.consum_by_slice) w += v;
      y.push_back({c, w});
      sampled.push_back(j);
    }
    RegressionTree::Options ropts;
    ropts.max_depth = options_.tree_max_depth > 0 ? options_.tree_max_depth : 10;
    ropts.min_samples_leaf = static_cast<int>(
        std::max<size_t>(8, x_full.size() / 2048));
    CEPSHED_RETURN_NOT_OK(sm.pm_tree.Fit(x_full, y, ropts));

    // Cluster the leaves by (mean contribution, mean consumption),
    // weighted by leaf population.
    std::vector<std::vector<double>> points;
    std::vector<double> weights;
    double max_contrib = 1e-12;
    double max_consum = 1e-12;
    for (size_t l = 0; l < sm.pm_tree.num_leaves(); ++l) {
      const RegressionTree::Leaf& leaf = sm.pm_tree.leaf(static_cast<int>(l));
      points.push_back({leaf.mean[0], leaf.mean[1]});
      weights.push_back(static_cast<double>(leaf.count));
      max_contrib = std::max(max_contrib, leaf.mean[0]);
      max_consum = std::max(max_consum, leaf.mean[1]);
    }
    for (auto& p : points) {
      p[0] /= max_contrib;
      p[1] /= max_consum;
    }

    // Number of clusters: fixed override or gap statistic.
    int k;
    if (static_cast<size_t>(s) < options_.fixed_k_per_state.size() &&
        options_.fixed_k_per_state[static_cast<size_t>(s)] > 0) {
      k = options_.fixed_k_per_state[static_cast<size_t>(s)];
    } else {
      GapStatisticOptions gopts;
      gopts.k_min = options_.k_min;
      gopts.k_max = options_.k_max;
      CEPSHED_ASSIGN_OR_RETURN(GapStatisticResult gap,
                               EstimateClusters(points, gopts, rng));
      k = gap.best_k;
    }
    CEPSHED_ASSIGN_OR_RETURN(KMeansResult km, KMeansWeighted(points, weights, k, rng));
    sm.num_classes = km.centroids.size();
    sm.class_of_leaf.assign(points.size(), 0);
    for (size_t l = 0; l < points.size(); ++l) {
      sm.class_of_leaf[l] = km.labels[l];
    }

    // Label of each sampled training record = its leaf's cluster.
    std::vector<int> labels(sampled.size(), 0);
    for (size_t j = 0; j < sampled.size(); ++j) {
      labels[j] = sm.class_of_leaf[static_cast<size_t>(sm.pm_tree.training_leaves()[j])];
    }

    // Class estimates: percentile of the *future* (suffix) contribution and
    // consumption per age slice.
    sm.contrib.assign(sm.num_classes * static_cast<size_t>(slices), 0.0);
    sm.consum.assign(sm.num_classes * static_cast<size_t>(slices), 0.0);
    sm.contrib_max.assign(sm.num_classes * static_cast<size_t>(slices), 0.0);
    for (size_t cls = 0; cls < sm.num_classes; ++cls) {
      for (int sl = 0; sl < slices; ++sl) {
        std::vector<double> contribs;
        std::vector<double> consums;
        double c_max = 0.0;
        for (size_t j = 0; j < sampled.size(); ++j) {
          if (labels[j] != static_cast<int>(cls)) continue;
          const PmRecord& rec = stats.records[idxs[sampled[j]]];
          double c = 0.0;
          double w = 0.0;
          for (int sl2 = sl; sl2 < slices; ++sl2) {
            c += rec.contrib_by_slice[static_cast<size_t>(sl2)];
            w += rec.consum_by_slice[static_cast<size_t>(sl2)];
          }
          contribs.push_back(c);
          consums.push_back(w);
          c_max = std::max(c_max, c);
        }
        sm.contrib[TableIndex(static_cast<int32_t>(cls), sl)] =
            Percentile(&contribs, options_.percentile);
        sm.consum[TableIndex(static_cast<int32_t>(cls), sl)] =
            Percentile(&consums, options_.percentile);
        sm.contrib_max[TableIndex(static_cast<int32_t>(cls), sl)] = c_max;
      }
    }

    // Event classifier for rho_I class checks: last-event features ->
    // class label; plus an event-value regressor for per-event utility.
    std::vector<std::vector<double>> x_event;
    std::vector<std::vector<double>> y_event;
    x_event.reserve(sampled.size());
    y_event.reserve(sampled.size());
    for (size_t j = 0; j < sampled.size(); ++j) {
      const PmRecord& rec = stats.records[idxs[sampled[j]]];
      x_event.emplace_back(rec.event_features.begin(), rec.event_features.end());
      y_event.push_back({y[j][0]});
    }
    DecisionTree::Options topts;
    topts.max_depth = options_.tree_max_depth > 0 ? options_.tree_max_depth : 10;
    CEPSHED_RETURN_NOT_OK(sm.event_tree.Fit(x_event, labels, topts));
    RegressionTree::Options evopts;
    evopts.max_depth = topts.max_depth;
    evopts.min_samples_leaf = ropts.min_samples_leaf;
    CEPSHED_RETURN_NOT_OK(sm.event_value_tree.Fit(x_event, y_event, evopts));
  }

  type_utility_ = stats.type_utility;
  completing_type_.assign(nfa_->schema().num_event_types(), false);
  for (size_t t = 0; t < completing_type_.size(); ++t) {
    for (int st2 : nfa_->StatesForType(static_cast<int>(t))) {
      if (!nfa_->state(st2).kleene && st2 + 1 == nfa_->num_states()) {
        completing_type_[t] = true;
      }
      if (nfa_->state(st2).kleene && st2 + 1 == nfa_->num_states()) {
        completing_type_[t] = true;  // trailing Kleene emits on extension
      }
    }
  }

  trained_ = true;
  next_fold_ts_ = 0;
  train_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return Status::OK();
}

int32_t CostModel::Classify(const PartialMatch& pm) const {
  if (!trained_ || pm.Length() == 0) return 0;
  return ClassifyFeatures(states_[static_cast<size_t>(pm.state)],
                          ExtractStateFeatures(pm, *nfa_));
}

int32_t CostModel::ClassifyPrefix(const Match& match, int state) const {
  if (!trained_ || state < 1 ||
      static_cast<size_t>(state) > match.slot_end.size()) {
    return 0;
  }
  // Features of the prefix partial match at `state`: the last event of
  // each closed slot 0..state-1, with the (empty) in-progress slot left
  // at the -1 sentinel — byte-identical to ExtractStateFeatures on the
  // materialized prefix, without rebuilding a PartialMatch per ancestor.
  const std::vector<int>& attrs = nfa_->PredicateAttrs();
  const size_t per_event = attrs.size();
  const size_t slots = static_cast<size_t>(state) + 1;
  std::vector<float> features(slots * per_event, -1.0f);
  uint32_t begin = 0;
  for (size_t slot = 0; slot + 1 < slots; ++slot) {
    const uint32_t end = match.slot_end[slot];
    if (end > begin) {
      const std::vector<float> ev = ExtractFeatures(*match.events[end - 1], *nfa_);
      std::copy(ev.begin(), ev.end(),
                features.begin() + static_cast<ptrdiff_t>(slot * per_event));
    }
    begin = end;
  }
  return ClassifyFeatures(states_[static_cast<size_t>(state)], features);
}

int32_t CostModel::ClassifyFeatures(const StateModel& sm,
                                    const std::vector<float>& f) const {
  if (!sm.pm_tree.fitted()) return 0;
  std::vector<double> fd(f.begin(), f.end());
  const int leaf = sm.pm_tree.PredictLeaf(fd);
  if (leaf < 0 || static_cast<size_t>(leaf) >= sm.class_of_leaf.size()) return 0;
  return sm.class_of_leaf[static_cast<size_t>(leaf)];
}

int32_t CostModel::ClassifyEvent(const Event& event, int state) const {
  if (!trained_) return 0;
  if (state < 0 || state >= nfa_->num_states()) return 0;
  const StateModel& sm = states_[static_cast<size_t>(state)];
  if (!sm.event_tree.fitted()) return 0;
  const std::vector<float> f = ExtractFeatures(event, *nfa_);
  std::vector<double> fd(f.begin(), f.end());
  return sm.event_tree.Predict(fd);
}

double CostModel::Contribution(int state, int32_t cls, int slice) const {
  const StateModel& sm = states_[static_cast<size_t>(state)];
  if (cls < 0 || static_cast<size_t>(cls) >= sm.num_classes) cls = 0;
  if (slice < 0) slice = 0;
  if (slice >= options_.num_time_slices) slice = options_.num_time_slices - 1;
  return sm.contrib[TableIndex(cls, slice)];
}

double CostModel::Consumption(int state, int32_t cls, int slice) const {
  const StateModel& sm = states_[static_cast<size_t>(state)];
  if (cls < 0 || static_cast<size_t>(cls) >= sm.num_classes) cls = 0;
  if (slice < 0) slice = 0;
  if (slice >= options_.num_time_slices) slice = options_.num_time_slices - 1;
  return sm.consum[TableIndex(cls, slice)];
}

double CostModel::ContributionMax(int state, int32_t cls, int slice) const {
  const StateModel& sm = states_[static_cast<size_t>(state)];
  if (sm.contrib_max.empty()) return trained_ ? 0.0 : 1.0;
  if (cls < 0 || static_cast<size_t>(cls) >= sm.num_classes) cls = 0;
  if (slice < 0) slice = 0;
  if (slice >= options_.num_time_slices) slice = options_.num_time_slices - 1;
  return sm.contrib_max[TableIndex(cls, slice)];
}

std::vector<int> CostModel::ResultStatesForType(int type) const {
  std::vector<int> out;
  for (int s : nfa_->StatesForType(type)) {
    if (nfa_->state(s).kleene) {
      out.push_back(s);
    } else if (s + 1 < nfa_->num_states()) {
      out.push_back(s + 1);
    }
  }
  return out;
}

double CostModel::EventUtility(const Event& event) const {
  double best = 0.0;
  std::vector<double> features;
  for (int s : ResultStatesForType(event.type())) {
    const StateModel& sm = states_[static_cast<size_t>(s)];
    if (!sm.event_value_tree.fitted()) continue;
    if (features.empty()) {
      const std::vector<float> f = ExtractFeatures(event, *nfa_);
      features.assign(f.begin(), f.end());
    }
    // Blend the (static) trained event-value prediction with the *adapted*
    // estimate of the class the event maps to: after a distribution
    // change, the class estimates carry the updated signal while the tree
    // provides the fine-grained ranking within the trained regime.
    best = std::max(best, sm.event_value_tree.Predict(features)[0]);
    best = std::max(best, Contribution(s, ClassifyEvent(event, s), 0));
  }
  // An event that can complete the pattern converts already-paid work into
  // results directly; dropping it forfeits finished matches. Rank such
  // events far above any stored-state class (scaled by how often the type
  // participates in matches at all).
  const size_t t = static_cast<size_t>(event.type());
  if (t < completing_type_.size() && completing_type_[t] &&
      t < type_utility_.size() && type_utility_[t] > 0.0) {
    constexpr double kCompletionBoost = 1e6;
    best = std::max(best, kCompletionBoost * type_utility_[t]);
  }
  return best;
}

void CostModel::OnPmCreated(const PartialMatch& pm, const PartialMatch* parent,
                            Timestamp now) {
  if (!options_.enable_online_adaptation || !trained_) return;
  if (pm.is_witness) return;
  // The new match itself is an instance of its class (normalizer).
  const int32_t own_cls = pm.class_label < 0 ? 0 : pm.class_label;
  created_inc_.Add(SketchKey(pm.state, own_cls, SliceOfAge(now - pm.start_ts)), 1.0);
  if (parent == nullptr) return;
  const int slice = SliceOfAge(now - parent->start_ts);
  const double omega =
      options_.use_resource_cost
          ? 1.0 + nfa_->state(pm.state).bind_cost + 0.1 * pm.Length()
          : 1.0;
  consum_inc_.Add(SketchKey(parent->state, parent->class_label, slice), omega);
}

void CostModel::OnMatch(const Match& match, const PartialMatch* parent, Timestamp now) {
  if (!options_.enable_online_adaptation || !trained_) return;
  (void)parent;
  // Credit every ancestor of the completing chain (Gamma+ of Eq. 3). The
  // ancestors are exactly the match's prefixes; their classes follow from
  // the (deterministic) classifier, their age slices from the shared
  // window anchor.
  if (match.events.empty() || match.slot_end.empty()) return;
  const Timestamp start_ts = match.events.front()->timestamp();
  const int slice = SliceOfAge(now - start_ts);
  for (size_t j = 1; j < match.slot_end.size(); ++j) {
    const int32_t cls = ClassifyPrefix(match, static_cast<int>(j));
    contrib_inc_.Add(SketchKey(static_cast<int>(j), cls, slice), 1.0);
  }
}

void CostModel::MaybeFold(Timestamp now, Engine* engine) {
  if (!options_.enable_online_adaptation || !trained_) return;
  if (next_fold_ts_ == 0) {
    next_fold_ts_ = now + slice_len_;
    return;
  }
  if (now < next_fold_ts_) return;
  next_fold_ts_ = now + slice_len_;

  // Live population per (state, class, slice) normalizes the increments to
  // per-match averages.
  std::vector<std::vector<double>> population(states_.size());
  for (size_t s = 0; s < states_.size(); ++s) {
    population[s].assign(
        states_[s].num_classes * static_cast<size_t>(options_.num_time_slices), 0.0);
  }
  engine->store().ForEachAlive([&](PartialMatch* pm) {
    const size_t s = static_cast<size_t>(pm->state);
    int32_t cls = pm->class_label;
    if (cls < 0 || static_cast<size_t>(cls) >= states_[s].num_classes) cls = 0;
    const int slice = SliceOfAge(now - pm->start_ts);
    population[s][TableIndex(cls, slice)] += 1.0;
  });

  const double w = options_.adapt_w;
  const int slices = options_.num_time_slices;
  std::vector<double> c_avg(static_cast<size_t>(slices));
  std::vector<double> w_avg(static_cast<size_t>(slices));
  std::vector<double> obs(static_cast<size_t>(slices));
  for (int s = 0; s < nfa_->num_states(); ++s) {
    StateModel& sm = states_[static_cast<size_t>(s)];
    for (size_t cls = 0; cls < sm.num_classes; ++cls) {
      // Per-slice increment averages for this class over the interval.
      for (int sl = 0; sl < slices; ++sl) {
        const uint64_t key = SketchKey(s, static_cast<int32_t>(cls), sl);
        const double live = population[static_cast<size_t>(s)][TableIndex(
            static_cast<int32_t>(cls), sl)];
        const double created = created_inc_.Estimate(key);
        // Normalize by the larger of the live and freshly created
        // populations; a post-shedding instantaneous count alone would
        // inflate per-match increments arbitrarily.
        const double n = std::max({1.0, live, created});
        c_avg[static_cast<size_t>(sl)] = contrib_inc_.Estimate(key) / n;
        w_avg[static_cast<size_t>(sl)] = consum_inc_.Estimate(key) / n;
        obs[static_cast<size_t>(sl)] = live + created;
      }
      // The estimates are *future* (suffix) values: what a match of this
      // class at age slice sl will still contribute/consume. One fold
      // interval corresponds to one slice of aging, so the suffix sum of
      // the per-slice averages is scale-compatible with the offline
      // lifetime estimates.
      double c_suffix = 0.0;
      double w_suffix = 0.0;
      double obs_suffix = 0.0;
      for (int sl = slices - 1; sl >= 0; --sl) {
        c_suffix += c_avg[static_cast<size_t>(sl)];
        w_suffix += w_avg[static_cast<size_t>(sl)];
        obs_suffix += obs[static_cast<size_t>(sl)];
        if (obs_suffix == 0.0) continue;  // no signal: keep trained values
        const size_t t = TableIndex(static_cast<int32_t>(cls), sl);
        sm.contrib[t] = (1.0 - w) * sm.contrib[t] + w * c_suffix;
        sm.consum[t] = (1.0 - w) * sm.consum[t] + w * w_suffix;
      }
    }
  }
  contrib_inc_.Clear();
  consum_inc_.Clear();
  created_inc_.Clear();
}

std::vector<int> CostModel::ChosenClusterCounts() const {
  std::vector<int> out;
  out.reserve(states_.size());
  for (const auto& sm : states_) out.push_back(static_cast<int>(sm.num_classes));
  return out;
}

}  // namespace cepshed
