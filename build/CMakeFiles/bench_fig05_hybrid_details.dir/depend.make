# Empty dependencies file for bench_fig05_hybrid_details.
# This may be replaced when dependencies are built.
