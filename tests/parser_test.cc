// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Unit tests for the SASE-style query language front end.

#include "src/query/parser.h"

#include <gtest/gtest.h>

#include "src/query/lexer.h"
#include "src/workload/citibike.h"
#include "src/workload/ds1.h"
#include "src/workload/ds2.h"
#include "src/workload/google_trace.h"
#include "src/workload/queries.h"

namespace cepshed {
namespace {

TEST(LexerTest, TokenizesOperatorsAndLiterals) {
  auto tokens = Tokenize("a.V + 3 <= 4.5 AND x != 'str'");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const auto& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds[0], TokenKind::kIdent);
  EXPECT_EQ(kinds[1], TokenKind::kDot);
  EXPECT_EQ(kinds[2], TokenKind::kIdent);
  EXPECT_EQ(kinds[3], TokenKind::kPlus);
  EXPECT_EQ(kinds[4], TokenKind::kInt);
  EXPECT_EQ(kinds[5], TokenKind::kLe);
  EXPECT_EQ(kinds[6], TokenKind::kDouble);
  EXPECT_EQ(kinds[8], TokenKind::kIdent);
  EXPECT_EQ(kinds[9], TokenKind::kNe);
  EXPECT_EQ(kinds[10], TokenKind::kString);
}

TEST(LexerTest, UnicodeOperators) {
  auto tokens = Tokenize("¬B ∈ ≤ ≥ ≠");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kBang);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kIn);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kLe);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kGe);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kNe);
}

TEST(LexerTest, CommentsAreSkipped) {
  auto tokens = Tokenize("a -- comment\nb // other\nc");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);  // a b c END
}

TEST(LexerTest, RejectsUnknownCharacter) {
  EXPECT_FALSE(Tokenize("a # b").ok());
  EXPECT_FALSE(Tokenize("'unterminated").ok());
}

TEST(ParserTest, ParsesSimpleSequence) {
  auto q = ParseQuery("PATTERN SEQ(A a, B b) WHERE a.ID = b.ID WITHIN 5ms");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->elements.size(), 2u);
  EXPECT_EQ(q->elements[0].event_type, "A");
  EXPECT_EQ(q->elements[0].variable, "a");
  EXPECT_FALSE(q->elements[0].kleene);
  EXPECT_EQ(q->predicates.size(), 1u);
  EXPECT_EQ(q->window, Millis(5));
}

TEST(ParserTest, ParsesKleeneWithBounds) {
  auto q = ParseQuery("PATTERN SEQ(A+{2,5} a[], B b) WITHIN 1ms");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->elements[0].kleene);
  EXPECT_EQ(q->elements[0].min_reps, 2);
  EXPECT_EQ(q->elements[0].max_reps, 5);
}

TEST(ParserTest, ParsesUnboundedKleene) {
  auto q = ParseQuery("PATTERN SEQ(A+ a[], B b) WITHIN 1ms");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->elements[0].kleene);
  EXPECT_EQ(q->elements[0].min_reps, 1);
}

TEST(ParserTest, ParsesNegation) {
  auto q = ParseQuery("PATTERN SEQ(A a, !B b, C c) WHERE a.ID=b.ID WITHIN 1ms");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->elements[1].negated);
  auto q2 = ParseQuery("PATTERN SEQ(A a, NOT B b, C c) WITHIN 1ms");
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(q2->elements[1].negated);
}

TEST(ParserTest, ParsesIterationSelectors) {
  auto q = ParseQuery(
      "PATTERN SEQ(T+ a[], T b) "
      "WHERE a[i+1].s = a[i].e AND a[last].k = b.k AND a[first].s = 0 "
      "WITHIN 1h");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->predicates.size(), 3u);
  EXPECT_EQ(q->predicates[0]->ToString(), "a[i+1].s=a[i].e");
}

TEST(ParserTest, ParsesInSet) {
  auto q = ParseQuery("PATTERN SEQ(T a) WHERE a.end IN {7,8,9} WITHIN 1h");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->predicates[0]->kind(), ExprKind::kInSet);
}

TEST(ParserTest, ParsesAggregatesAndFunctions) {
  auto q = ParseQuery(
      "PATTERN SEQ(A+ a[], B b) "
      "WHERE AVG(a[].V) >= 4 AND SUM(a[].V) < 100 AND SQRT(b.V) > 1 "
      "AND AVG(SQRT(b.V * b.V), b.V) <= 10 "
      "WITHIN 2ms");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->predicates.size(), 4u);
}

TEST(ParserTest, DurationUnits) {
  EXPECT_EQ(ParseQuery("PATTERN SEQ(A a) WITHIN 5us")->window, 5);
  EXPECT_EQ(ParseQuery("PATTERN SEQ(A a) WITHIN 5ms")->window, Millis(5));
  EXPECT_EQ(ParseQuery("PATTERN SEQ(A a) WITHIN 5s")->window, Seconds(5));
  EXPECT_EQ(ParseQuery("PATTERN SEQ(A a) WITHIN 5min")->window, Minutes(5));
  EXPECT_EQ(ParseQuery("PATTERN SEQ(A a) WITHIN 2h")->window, Hours(2));
}

TEST(ParserTest, OperatorPrecedence) {
  auto q = ParseQuery("PATTERN SEQ(A a) WHERE a.V + 2 * 3 = 7 WITHIN 1ms");
  ASSERT_TRUE(q.ok());
  // 2*3 binds tighter: (a.V + (2*3)) = 7.
  EXPECT_EQ(q->predicates[0]->ToString(), "(a.V+(2*3))=7");
}

TEST(ParserTest, ArithmeticPrecedenceAndAssociativity) {
  // * / % bind tighter than + -; both tiers are left-associative.
  auto q = ParseQuery(
      "PATTERN SEQ(A a, B b, C c) "
      "WHERE a.V + b.V * 2 = c.V AND a.V - 1 - 2 = 0 AND a.V * 2 % 3 = 1 "
      "AND (a.V + 1) * 2 = 4 "
      "WITHIN 1ms");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->predicates.size(), 4u);
  EXPECT_EQ(q->predicates[0]->ToString(), "(a.V+(b.V*2))=c.V");
  EXPECT_EQ(q->predicates[1]->ToString(), "((a.V-1)-2)=0");
  EXPECT_EQ(q->predicates[2]->ToString(), "((a.V*2)%3)=1");
  EXPECT_EQ(q->predicates[3]->ToString(), "((a.V+1)*2)=4");
}

TEST(ParserTest, TopLevelAndSplitsButParenthesizedBooleansNest) {
  // The top-level WHERE conjunction becomes the predicate list; inside
  // parentheses AND binds tighter than OR.
  auto q = ParseQuery(
      "PATTERN SEQ(A a) "
      "WHERE a.V > 0 AND (a.V = 1 OR a.V = 2 AND a.V = 3) "
      "WITHIN 1ms");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->predicates.size(), 2u);
  EXPECT_EQ(q->predicates[1]->ToString(), "(a.V=1 OR (a.V=2 AND a.V=3))");
  EXPECT_EQ(q->predicates[1]->kind(), ExprKind::kOr);
}

TEST(ParserTest, UnaryMinusDesugarsToZeroMinus) {
  auto q = ParseQuery(
      "PATTERN SEQ(A a) WHERE -a.V < 3 AND a.V * -2 = -4 WITHIN 1ms");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->predicates.size(), 2u);
  // `-x` is sugar for `0 - x` on non-literals...
  const ExprPtr& neg = q->predicates[0]->children()[0];
  ASSERT_EQ(neg->kind(), ExprKind::kBinary);
  EXPECT_EQ(neg->bin_op(), BinOp::kSub);
  EXPECT_EQ(neg->children()[0]->literal().AsInt(), 0);
  EXPECT_EQ(q->predicates[0]->ToString(), "(0-a.V)<3");
  EXPECT_EQ(q->predicates[1]->ToString(), "(a.V*(0-2))=(0-4)");
  // ...and parenthesized double negation just nests (`--` cannot chain).
  auto q2 = ParseQuery("PATTERN SEQ(A a) WHERE a.V = -(-3) WITHIN 1ms");
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a) WHERE a.V = --3 WITHIN 1ms").ok());
  ASSERT_TRUE(q2.ok()) << q2.status();
  EXPECT_EQ(q2->predicates[0]->ToString(), "a.V=(0-(0-3))");
}

TEST(ParserTest, NegativeLiteralsInSets) {
  auto q = ParseQuery("PATTERN SEQ(A a) WHERE a.V IN {-1, 2, -3.5} WITHIN 1ms");
  ASSERT_TRUE(q.ok()) << q.status();
  const Expr& in = *q->predicates[0];
  ASSERT_EQ(in.kind(), ExprKind::kInSet);
  ASSERT_EQ(in.set_values().size(), 3u);
  EXPECT_EQ(in.set_values()[0].AsInt(), -1);
  EXPECT_DOUBLE_EQ(in.set_values()[2].AsDouble(), -3.5);
  // Strings cannot be negated.
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a) WHERE a.V IN {-'x'} WITHIN 1ms").ok());
}

TEST(ParserTest, SetMembershipNestsInsideBooleansAndOverExpressions) {
  // The membership subject may be a computed expression, and IN may appear
  // under NOT and inside parenthesized disjunctions with mixed-type sets.
  auto q = ParseQuery(
      "PATTERN SEQ(A a) "
      "WHERE a.V + 1 IN {1, 2} AND NOT a.V IN {3} "
      "AND (a.V IN {1} OR a.V IN {2.5, 'x'}) "
      "WITHIN 1ms");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->predicates.size(), 3u);
  EXPECT_EQ(q->predicates[0]->ToString(), "(a.V+1) IN {1,2}");
  ASSERT_EQ(q->predicates[1]->kind(), ExprKind::kNot);
  EXPECT_EQ(q->predicates[1]->children()[0]->kind(), ExprKind::kInSet);
  EXPECT_EQ(q->predicates[2]->ToString(), "(a.V IN {1} OR a.V IN {2.5,x})");
}

TEST(ParserTest, SqrtArgumentCornerCases) {
  // The argument is a full expression, even a disjunction.
  auto q = ParseQuery(
      "PATTERN SEQ(A a) WHERE SQRT(a.V + 1) > 0 AND SQRT(a.V OR 1) >= 0 WITHIN 1ms");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->predicates[0]->ToString(), "SQRT((a.V+1))>0");
  // Empty or unterminated argument lists are rejected.
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a) WHERE SQRT() > 0 WITHIN 1ms").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a) WHERE SQRT(a.V > 0 WITHIN 1ms").ok());
}

TEST(ParserTest, AvgDisambiguatesAggregateFromNAryForm) {
  // AVG(b[].V) folds a Kleene binding (aggregate node); AVG(x, y) is the
  // n-ary scalar mean. SUM/MIN/MAX/COUNT only accept the Kleene form.
  auto q = ParseQuery(
      "PATTERN SEQ(A a, B+ b[], C c) "
      "WHERE AVG(b[].V) <= 5 AND AVG(a.V, c.V) <= 5 AND COUNT(b[].V) > 1 "
      "WITHIN 1ms");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->predicates.size(), 3u);
  EXPECT_EQ(q->predicates[0]->children()[0]->kind(), ExprKind::kAggregate);
  const Expr& avgn = *q->predicates[1]->children()[0];
  ASSERT_EQ(avgn.kind(), ExprKind::kFunc);
  EXPECT_EQ(avgn.func(), FuncKind::kAvgN);
  EXPECT_EQ(avgn.children().size(), 2u);
  EXPECT_EQ(q->predicates[2]->children()[0]->agg(), AggKind::kCount);
  // Corner cases: empty AVG, scalar SUM, and mixing the Kleene form with
  // extra scalar arguments are all malformed.
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a) WHERE AVG() > 0 WITHIN 1ms").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a) WHERE SUM(a.V) > 0 WITHIN 1ms").ok());
  EXPECT_FALSE(ParseQuery(
                   "PATTERN SEQ(A a, B+ b[]) WHERE AVG(b[].V, a.V) > 0 WITHIN 1ms")
                   .ok());
}

TEST(ParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseQuery("SEQ(A a) WITHIN 1ms").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ() WITHIN 1ms").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a) WITHIN").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a) WITHIN 5 parsecs").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a) WHERE WITHIN 1ms").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a) WITHIN 1ms trailing").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a[]) WITHIN 1ms").ok());  // [] without +
}

// The paper's queries all parse and validate against their schemas.

TEST(PaperQueriesTest, Q1Validates) {
  const Schema schema = MakeDs1Schema();
  auto q = queries::Q1();
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->Validate(schema).ok());
}

TEST(PaperQueriesTest, Q2Validates) {
  const Schema schema = MakeDs1Schema();
  auto q = queries::Q2(3);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->Validate(schema).ok());
  EXPECT_EQ(q->elements[1].max_reps, 3);
}

TEST(PaperQueriesTest, Q3Validates) {
  const Schema schema = MakeDs2Schema();
  auto q = queries::Q3();
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->Validate(schema).ok());
}

TEST(PaperQueriesTest, Q4ValidatesAndIsNegated) {
  const Schema schema = MakeDs1Schema();
  auto q = queries::Q4();
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->Validate(schema).ok());
  EXPECT_TRUE(q->elements[1].negated);
}

TEST(PaperQueriesTest, CitibikeHotPathsValidates) {
  const Schema schema = MakeCitibikeSchema();
  auto q = queries::CitibikeHotPaths(5);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->Validate(schema).ok());
  EXPECT_EQ(q->elements[0].min_reps, 5);
  EXPECT_EQ(q->window, Hours(1));
}

TEST(PaperQueriesTest, GoogleTaskChurnValidates) {
  const Schema schema = MakeGoogleTraceSchema();
  auto q = queries::GoogleTaskChurn();
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->Validate(schema).ok());
  EXPECT_EQ(q->elements.size(), 7u);
}

}  // namespace
}  // namespace cepshed
