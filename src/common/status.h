// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Status-based error handling (no exceptions cross the public API).
// Modeled after the idiom used by RocksDB and Apache Arrow.

#ifndef CEPSHED_COMMON_STATUS_H_
#define CEPSHED_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace cepshed {

/// \brief Machine-readable error categories carried by a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kParseError = 7,
  kResourceExhausted = 8,
  kUnavailable = 9,
};

/// \brief Returns a short human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of an operation: either OK, or an error code plus message.
///
/// Functions that can fail return Status (or Result<T> when they also
/// produce a value). The CEPSHED_RETURN_NOT_OK macro propagates errors.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument error.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// Returns a NotFound error.
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  /// Returns an AlreadyExists error.
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  /// Returns an OutOfRange error.
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  /// Returns an Unimplemented error.
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  /// Returns an Internal error.
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Returns a ParseError (query language front end).
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  /// Returns a ResourceExhausted error.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// Returns an Unavailable error (a component died or timed out; the
  /// operation may succeed after recovery).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The error message (empty for OK).
  const std::string& message() const { return msg_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller.
#define CEPSHED_RETURN_NOT_OK(expr)              \
  do {                                           \
    ::cepshed::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (false)

}  // namespace cepshed

#endif  // CEPSHED_COMMON_STATUS_H_
