file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_latency_bounds.dir/bench/bench_fig04_latency_bounds.cpp.o"
  "CMakeFiles/bench_fig04_latency_bounds.dir/bench/bench_fig04_latency_bounds.cpp.o.d"
  "bench/bench_fig04_latency_bounds"
  "bench/bench_fig04_latency_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_latency_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
