// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Golden-trace regression tests: the workload generators are documented as
// deterministic, portable functions of their options (the Rng is a
// fixed-algorithm xoshiro256**, not std::mt19937), and everything
// downstream leans on that — recorded traces, differential runs, the
// paper-figure benches, and the adversarial lab all assume a seed pins a
// stream forever. These tests freeze that contract: an FNV-1a checksum
// over a canonical byte serialization of the first N events of every
// generator, per seed. If a generator change breaks the encoding of
// history, the checksum here moves and the change must be called out as a
// stream-format break (and recorded traces regenerated) rather than slip
// in silently.

#include <algorithm>
#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

#include "src/cep/stream.h"
#include "src/workload/citibike.h"
#include "src/workload/ds1.h"
#include "src/workload/ds2.h"
#include "src/workload/google_trace.h"
#include "src/workload/lab/hostile.h"

namespace cepshed {
namespace {

// --- canonical event checksum ------------------------------------------

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t Fold(uint64_t h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t FoldU64(uint64_t h, uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  return Fold(h, bytes, 8);
}

uint64_t FoldDouble(uint64_t h, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return FoldU64(h, bits);
}

/// Checksums the first `n` events (or all, if fewer) byte-canonically:
/// every field is folded in a fixed little-endian order, so the value is
/// identical on any platform the Rng is stable on.
uint64_t ChecksumStream(const EventStream& stream, size_t n) {
  uint64_t h = kFnvOffset;
  const size_t limit = std::min(n, stream.size());
  for (size_t i = 0; i < limit; ++i) {
    const Event& e = *stream[i];
    h = FoldU64(h, static_cast<uint64_t>(e.type()));
    h = FoldU64(h, static_cast<uint64_t>(e.timestamp()));
    h = FoldU64(h, e.seq());
    for (size_t a = 0; a < e.num_attrs(); ++a) {
      const Value& v = e.attr(static_cast<int>(a));
      h = FoldU64(h, static_cast<uint64_t>(v.type()));
      switch (v.type()) {
        case ValueType::kNull:
          break;
        case ValueType::kInt:
          h = FoldU64(h, static_cast<uint64_t>(v.AsInt()));
          break;
        case ValueType::kDouble:
          h = FoldDouble(h, v.AsDouble());
          break;
        case ValueType::kString:
          h = FoldU64(h, v.AsString().size());
          h = Fold(h, v.AsString().data(), v.AsString().size());
          break;
      }
    }
  }
  return h;
}

constexpr size_t kGoldenEvents = 2000;

// --- the pinned values --------------------------------------------------
// Regenerate with: the EXPECT failures below print actual vs pinned.

struct Golden {
  uint64_t seed;
  uint64_t checksum;
};

TEST(GoldenTraceTest, Ds1) {
  const Schema schema = MakeDs1Schema();
  const Golden golden[] = {
      {1, 0x025fa653de502b92ULL},
      {7, 0xc59f4b77932f3aedULL},
  };
  for (const Golden& g : golden) {
    Ds1Options options;
    options.num_events = kGoldenEvents;
    options.seed = g.seed;
    const EventStream stream = GenerateDs1(schema, options);
    EXPECT_EQ(ChecksumStream(stream, kGoldenEvents), g.checksum)
        << "ds1 seed " << g.seed;
  }
}

TEST(GoldenTraceTest, Ds2) {
  const Schema schema = MakeDs2Schema();
  const Golden golden[] = {
      {2, 0x5ff9fb81b892bef6ULL},
      {9, 0x6f510b61afba70d1ULL},
  };
  for (const Golden& g : golden) {
    Ds2Options options;
    options.num_events = kGoldenEvents;
    options.seed = g.seed;
    const EventStream stream = GenerateDs2(schema, options);
    EXPECT_EQ(ChecksumStream(stream, kGoldenEvents), g.checksum)
        << "ds2 seed " << g.seed;
  }
}

TEST(GoldenTraceTest, Citibike) {
  const Schema schema = MakeCitibikeSchema();
  const Golden golden[] = {
      {3, 0x8b47cf96afa49f31ULL},
      {12, 0x5a83c6c0f053b403ULL},
  };
  for (const Golden& g : golden) {
    CitibikeOptions options;
    options.num_events = kGoldenEvents;
    options.seed = g.seed;
    const EventStream stream = GenerateCitibike(schema, options);
    EXPECT_EQ(ChecksumStream(stream, kGoldenEvents), g.checksum)
        << "citibike seed " << g.seed;
  }
}

TEST(GoldenTraceTest, GoogleTrace) {
  const Schema schema = MakeGoogleTraceSchema();
  const Golden golden[] = {
      {4, 0x597164f5287eae09ULL},
      {21, 0xb7a3b0e505bc61d6ULL},
  };
  for (const Golden& g : golden) {
    GoogleTraceOptions options;
    options.num_events = kGoldenEvents;
    options.seed = g.seed;
    const EventStream stream = GenerateGoogleTrace(schema, options);
    EXPECT_EQ(ChecksumStream(stream, kGoldenEvents), g.checksum)
        << "google_trace seed " << g.seed;
  }
}

TEST(GoldenTraceTest, HostileGenerators) {
  const Schema schema = MakeDs1Schema();
  {
    lab::DriftOptions options;
    options.num_events = kGoldenEvents;
    const EventStream stream = lab::GenerateDriftStream(schema, options);
    EXPECT_EQ(ChecksumStream(stream, kGoldenEvents), 0xf2d474de5bf5500fULL)
        << "drift";
  }
  {
    lab::BurstOptions options;
    options.num_events = kGoldenEvents;
    options.anchor_schedule = "burst:at=500,count=600,factor=8";
    const auto stream = lab::GenerateBurstStream(schema, options);
    ASSERT_TRUE(stream.ok());
    EXPECT_EQ(ChecksumStream(*stream, kGoldenEvents), 0x739f0b46b0fff561ULL)
        << "burst";
  }
  {
    lab::KleeneBombOptions options;
    options.num_events = kGoldenEvents;
    const EventStream stream = lab::GenerateKleeneBomb(schema, options);
    EXPECT_EQ(ChecksumStream(stream, kGoldenEvents), 0x17d252a7fe9a4062ULL)
        << "kleene";
  }
}

/// Distinct seeds must yield distinct streams — a collapsed generator
/// would make every per-seed golden value above vacuous.
TEST(GoldenTraceTest, SeedsProduceDistinctStreams) {
  const Schema schema = MakeDs1Schema();
  Ds1Options a, b;
  a.num_events = b.num_events = 500;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(ChecksumStream(GenerateDs1(schema, a), 500),
            ChecksumStream(GenerateDs1(schema, b), 500));
}

}  // namespace
}  // namespace cepshed
