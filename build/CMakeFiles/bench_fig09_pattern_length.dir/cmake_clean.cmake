file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_pattern_length.dir/bench/bench_fig09_pattern_length.cpp.o"
  "CMakeFiles/bench_fig09_pattern_length.dir/bench/bench_fig09_pattern_length.cpp.o.d"
  "bench/bench_fig09_pattern_length"
  "bench/bench_fig09_pattern_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_pattern_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
