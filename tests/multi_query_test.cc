// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Tests for multi-query processing under a shared latency budget.

#include "src/runtime/multi_query.h"

#include <gtest/gtest.h>

#include "src/workload/ds1.h"
#include "src/workload/queries.h"

namespace cepshed {
namespace {

class MultiQueryTest : public ::testing::Test {
 protected:
  MultiQueryTest() : schema_(MakeDs1Schema()) {}

  EventStream MakeStream(uint64_t seed, size_t n = 10000) {
    Ds1Options opts;
    opts.num_events = n;
    opts.seed = seed;
    return GenerateDs1(schema_, opts);
  }

  std::vector<WeightedQuery> TwoQueries(double w1 = 1.0, double w2 = 1.0) {
    Query q1 = *queries::Q1("8ms");
    Query q4 = *queries::Q4("8ms");
    return {{q1, w1}, {q4, w2}};
  }

  Schema schema_;
};

TEST_F(MultiQueryTest, RejectsEmptyAndBadWeights) {
  MultiQueryRunner empty(&schema_, {});
  EXPECT_FALSE(empty.Prepare(MakeStream(1, 500)).ok());
  MultiQueryRunner bad(&schema_, {{*queries::Q1("8ms"), 0.0}});
  EXPECT_FALSE(bad.Prepare(MakeStream(1, 500)).ok());
}

TEST_F(MultiQueryTest, ExhaustiveRunMatchesSingleQueryEngines) {
  const EventStream train = MakeStream(71, 6000);
  const EventStream test = MakeStream(72, 6000);
  MultiQueryRunner runner(&schema_, TwoQueries());
  ASSERT_TRUE(runner.Prepare(train).ok());
  auto multi = runner.Run(test, /*theta=*/0.0);
  ASSERT_TRUE(multi.ok());

  // Each query's matches equal an isolated engine's matches.
  for (size_t q = 0; q < 2; ++q) {
    const Query query = q == 0 ? *queries::Q1("8ms") : *queries::Q4("8ms");
    auto nfa = Nfa::Compile(query, &schema_);
    ASSERT_TRUE(nfa.ok());
    Engine engine(*nfa, EngineOptions{});
    std::vector<Match> solo;
    for (const EventPtr& e : test) engine.Process(e, &solo);
    EXPECT_EQ(multi->queries[q].matches.size(), solo.size()) << "query " << q;
  }
}

TEST_F(MultiQueryTest, SharedBudgetReducesTotalLatency) {
  const EventStream train = MakeStream(73, 8000);
  const EventStream test = MakeStream(74, 8000);
  MultiQueryRunner runner(&schema_, TwoQueries());
  ASSERT_TRUE(runner.Prepare(train).ok());
  auto full = runner.Run(test, 0.0);
  ASSERT_TRUE(full.ok());
  const double budget = 0.5 * full->total_avg_latency;
  auto shed = runner.Run(test, budget);
  ASSERT_TRUE(shed.ok());
  EXPECT_LT(shed->total_avg_latency, full->total_avg_latency);
  // Something was actually shed.
  uint64_t total_shed = 0;
  for (const auto& pq : shed->queries) total_shed += pq.shed_pms + pq.dropped_events;
  EXPECT_GT(total_shed, 0u);
}

TEST_F(MultiQueryTest, WeightsShiftTheBudgetBetweenQueries) {
  const EventStream train = MakeStream(75, 8000);
  const EventStream test = MakeStream(76, 8000);

  MultiQueryRunner favored(&schema_, TwoQueries(/*w1=*/8.0, /*w2=*/1.0));
  ASSERT_TRUE(favored.Prepare(train).ok());
  MultiQueryRunner disfavored(&schema_, TwoQueries(/*w1=*/1.0, /*w2=*/8.0));
  ASSERT_TRUE(disfavored.Prepare(train).ok());

  auto full = favored.Run(test, 0.0);
  ASSERT_TRUE(full.ok());
  const double budget = 0.5 * full->total_avg_latency;

  auto q1_favored = favored.Run(test, budget);
  auto q1_disfavored = disfavored.Run(test, budget);
  ASSERT_TRUE(q1_favored.ok());
  ASSERT_TRUE(q1_disfavored.ok());
  // With a larger weight, Q1 keeps more of its matches.
  EXPECT_GE(q1_favored->queries[0].matches.size(),
            q1_disfavored->queries[0].matches.size());
}

TEST_F(MultiQueryTest, BaselineCostsAreExposed) {
  const EventStream train = MakeStream(77, 4000);
  MultiQueryRunner runner(&schema_, TwoQueries());
  ASSERT_TRUE(runner.Prepare(train).ok());
  EXPECT_GT(runner.BaselineCost(0), 0.0);
  EXPECT_GT(runner.BaselineCost(1), 0.0);
}

}  // namespace
}  // namespace cepshed
