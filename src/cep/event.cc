// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/cep/event.h"

#include <sstream>

namespace cepshed {

std::string Event::ToString(const Schema& schema) const {
  std::ostringstream os;
  os << schema.EventTypeName(type_) << "@" << timestamp_ << "{";
  bool first = true;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].is_null()) continue;
    if (!first) os << ",";
    first = false;
    os << schema.attribute(static_cast<int>(i)).name << "=" << attrs_[i].ToString();
  }
  os << "}";
  return os.str();
}

}  // namespace cepshed
