// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Fig. 16 of the paper: the cluster-monitoring case study. Listing 3's
// task-churn pattern (submit, schedule+evict on one machine, reschedule+
// evict on another, reschedule on a third, fail; within 1h) over the
// synthetic Google cluster trace, under latency bounds.

#include "bench/bench_util.h"

using namespace cepshed;
using namespace cepshed::bench;

int main() {
  GoogleTraceOptions gen;
  gen.num_events = 30000;
  auto exp = PrepareGoogle(*queries::GoogleTaskChurn(), gen);

  std::printf("# no-shedding avg latency = %.1f cost units, truth = %zu matches\n",
              exp.harness->BaselineLatency(), exp.harness->truth().size());

  Header("Fig. 16a+16b", "Google cluster task churn, bounds on the average latency",
         kResultColumns);
  for (double bound : {0.8, 0.6, 0.4, 0.2}) {
    for (StrategyKind kind : BoundStrategies()) {
      const ExperimentResult r = exp.harness->RunBound(kind, bound);
      PrintResultRow(std::to_string(bound).substr(0, 3), r);
    }
  }
  return 0;
}
