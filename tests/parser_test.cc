// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Unit tests for the SASE-style query language front end.

#include "src/query/parser.h"

#include <gtest/gtest.h>

#include "src/query/lexer.h"
#include "src/workload/citibike.h"
#include "src/workload/ds1.h"
#include "src/workload/ds2.h"
#include "src/workload/google_trace.h"
#include "src/workload/queries.h"

namespace cepshed {
namespace {

TEST(LexerTest, TokenizesOperatorsAndLiterals) {
  auto tokens = Tokenize("a.V + 3 <= 4.5 AND x != 'str'");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const auto& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds[0], TokenKind::kIdent);
  EXPECT_EQ(kinds[1], TokenKind::kDot);
  EXPECT_EQ(kinds[2], TokenKind::kIdent);
  EXPECT_EQ(kinds[3], TokenKind::kPlus);
  EXPECT_EQ(kinds[4], TokenKind::kInt);
  EXPECT_EQ(kinds[5], TokenKind::kLe);
  EXPECT_EQ(kinds[6], TokenKind::kDouble);
  EXPECT_EQ(kinds[8], TokenKind::kIdent);
  EXPECT_EQ(kinds[9], TokenKind::kNe);
  EXPECT_EQ(kinds[10], TokenKind::kString);
}

TEST(LexerTest, UnicodeOperators) {
  auto tokens = Tokenize("¬B ∈ ≤ ≥ ≠");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kBang);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kIn);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kLe);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kGe);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kNe);
}

TEST(LexerTest, CommentsAreSkipped) {
  auto tokens = Tokenize("a -- comment\nb // other\nc");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);  // a b c END
}

TEST(LexerTest, RejectsUnknownCharacter) {
  EXPECT_FALSE(Tokenize("a # b").ok());
  EXPECT_FALSE(Tokenize("'unterminated").ok());
}

TEST(ParserTest, ParsesSimpleSequence) {
  auto q = ParseQuery("PATTERN SEQ(A a, B b) WHERE a.ID = b.ID WITHIN 5ms");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->elements.size(), 2u);
  EXPECT_EQ(q->elements[0].event_type, "A");
  EXPECT_EQ(q->elements[0].variable, "a");
  EXPECT_FALSE(q->elements[0].kleene);
  EXPECT_EQ(q->predicates.size(), 1u);
  EXPECT_EQ(q->window, Millis(5));
}

TEST(ParserTest, ParsesKleeneWithBounds) {
  auto q = ParseQuery("PATTERN SEQ(A+{2,5} a[], B b) WITHIN 1ms");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->elements[0].kleene);
  EXPECT_EQ(q->elements[0].min_reps, 2);
  EXPECT_EQ(q->elements[0].max_reps, 5);
}

TEST(ParserTest, ParsesUnboundedKleene) {
  auto q = ParseQuery("PATTERN SEQ(A+ a[], B b) WITHIN 1ms");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->elements[0].kleene);
  EXPECT_EQ(q->elements[0].min_reps, 1);
}

TEST(ParserTest, ParsesNegation) {
  auto q = ParseQuery("PATTERN SEQ(A a, !B b, C c) WHERE a.ID=b.ID WITHIN 1ms");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->elements[1].negated);
  auto q2 = ParseQuery("PATTERN SEQ(A a, NOT B b, C c) WITHIN 1ms");
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(q2->elements[1].negated);
}

TEST(ParserTest, ParsesIterationSelectors) {
  auto q = ParseQuery(
      "PATTERN SEQ(T+ a[], T b) "
      "WHERE a[i+1].s = a[i].e AND a[last].k = b.k AND a[first].s = 0 "
      "WITHIN 1h");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->predicates.size(), 3u);
  EXPECT_EQ(q->predicates[0]->ToString(), "a[i+1].s=a[i].e");
}

TEST(ParserTest, ParsesInSet) {
  auto q = ParseQuery("PATTERN SEQ(T a) WHERE a.end IN {7,8,9} WITHIN 1h");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->predicates[0]->kind(), ExprKind::kInSet);
}

TEST(ParserTest, ParsesAggregatesAndFunctions) {
  auto q = ParseQuery(
      "PATTERN SEQ(A+ a[], B b) "
      "WHERE AVG(a[].V) >= 4 AND SUM(a[].V) < 100 AND SQRT(b.V) > 1 "
      "AND AVG(SQRT(b.V * b.V), b.V) <= 10 "
      "WITHIN 2ms");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->predicates.size(), 4u);
}

TEST(ParserTest, DurationUnits) {
  EXPECT_EQ(ParseQuery("PATTERN SEQ(A a) WITHIN 5us")->window, 5);
  EXPECT_EQ(ParseQuery("PATTERN SEQ(A a) WITHIN 5ms")->window, Millis(5));
  EXPECT_EQ(ParseQuery("PATTERN SEQ(A a) WITHIN 5s")->window, Seconds(5));
  EXPECT_EQ(ParseQuery("PATTERN SEQ(A a) WITHIN 5min")->window, Minutes(5));
  EXPECT_EQ(ParseQuery("PATTERN SEQ(A a) WITHIN 2h")->window, Hours(2));
}

TEST(ParserTest, OperatorPrecedence) {
  auto q = ParseQuery("PATTERN SEQ(A a) WHERE a.V + 2 * 3 = 7 WITHIN 1ms");
  ASSERT_TRUE(q.ok());
  // 2*3 binds tighter: (a.V + (2*3)) = 7.
  EXPECT_EQ(q->predicates[0]->ToString(), "(a.V+(2*3))=7");
}

TEST(ParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseQuery("SEQ(A a) WITHIN 1ms").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ() WITHIN 1ms").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a) WITHIN").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a) WITHIN 5 parsecs").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a) WHERE WITHIN 1ms").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a) WITHIN 1ms trailing").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a[]) WITHIN 1ms").ok());  // [] without +
}

// The paper's queries all parse and validate against their schemas.

TEST(PaperQueriesTest, Q1Validates) {
  const Schema schema = MakeDs1Schema();
  auto q = queries::Q1();
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->Validate(schema).ok());
}

TEST(PaperQueriesTest, Q2Validates) {
  const Schema schema = MakeDs1Schema();
  auto q = queries::Q2(3);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->Validate(schema).ok());
  EXPECT_EQ(q->elements[1].max_reps, 3);
}

TEST(PaperQueriesTest, Q3Validates) {
  const Schema schema = MakeDs2Schema();
  auto q = queries::Q3();
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->Validate(schema).ok());
}

TEST(PaperQueriesTest, Q4ValidatesAndIsNegated) {
  const Schema schema = MakeDs1Schema();
  auto q = queries::Q4();
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->Validate(schema).ok());
  EXPECT_TRUE(q->elements[1].negated);
}

TEST(PaperQueriesTest, CitibikeHotPathsValidates) {
  const Schema schema = MakeCitibikeSchema();
  auto q = queries::CitibikeHotPaths(5);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->Validate(schema).ok());
  EXPECT_EQ(q->elements[0].min_reps, 5);
  EXPECT_EQ(q->window, Hours(1));
}

TEST(PaperQueriesTest, GoogleTaskChurnValidates) {
  const Schema schema = MakeGoogleTraceSchema();
  auto q = queries::GoogleTaskChurn();
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->Validate(schema).ok());
  EXPECT_EQ(q->elements.size(), 7u);
}

}  // namespace
}  // namespace cepshed
