// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Sequential-equivalence differential harness for the sharded runtime.
// Every seeded, generator-driven stream is replayed three ways:
//
//   1. the plain sequential engine (via ShedRunner) — the semantic ground
//      truth f_Q of the paper;
//   2. ShardRuntime::Run — N worker threads behind ring queues;
//   3. ShardRuntime::RunSequential — the identical sharded plan replayed
//      on one thread.
//
// For exact plans (hash routing over partition-correlated queries; window
// slicing for any-match time-window queries) 1 and 2 must produce the same
// match set and consistent stats; 2 and 3 must agree byte for byte — any
// divergence there is nondeterminism introduced by the parallel path
// itself. The grid covers queries × selection policies × shard counts
// {1,2,4,8} × shedding on/off.
//
// Shedding runs use a content-hash shedder: rho_I drops an event iff a
// hash of its stream sequence number falls under a threshold, and rho_S
// kills a partial match iff a hash folded over its bound events' sequence
// numbers does. Such decisions are pure functions of content, so they
// commute with any partitioning — sharded-with-shedding must equal
// sequential-with-shedding exactly.

#include "src/runtime/shard_runtime.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <cstdio>

#include "src/cep/engine.h"
#include "src/cep/nfa.h"
#include "src/cep/stream.h"
#include "src/query/parser.h"
#include "src/shed/controller.h"
#include "src/shed/shedder.h"
#include "src/workload/ds1.h"
#include "src/workload/google_trace.h"
#include "src/workload/lab/trace.h"
#include "src/workload/queries.h"

namespace cepshed {
namespace {

constexpr int kShardCounts[] = {1, 2, 4, 8};

uint64_t MixSeq(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic content-hash shedder (see file header). Decisions depend
/// only on event sequence numbers, never on shard-local state, so N
/// instances with the same seed behave as one global shedder.
class HashDropShedder : public Shedder {
 public:
  HashDropShedder(uint64_t seed, double event_drop_frac, double pm_drop_frac)
      : seed_(seed), event_cut_(Cut(event_drop_frac)), pm_cut_(Cut(pm_drop_frac)) {}

  std::string Name() const override { return "HashDrop"; }

  bool FilterEvent(const Event& event) override {
    if (event_cut_ != 0 && MixSeq(seed_ ^ event.seq()) < event_cut_) {
      return DropEvent();
    }
    return false;
  }

  void AfterEvent(Timestamp, double) override {
    if (pm_cut_ == 0) return;
    engine_->store().ForEachAlive([&](PartialMatch* pm) {
      // The hash folds event seqs in stream order, so flatten the chain
      // first — walking it newest-first would change every decision.
      pm->FlattenTo(&scratch_);
      uint64_t h = seed_ ^ 0x5bf03635aca73f4cULL;
      for (const Event* e : scratch_) h = MixSeq(h ^ e->seq());
      if (h < pm_cut_) KillPm(pm);
    });
  }

 private:
  static uint64_t Cut(double frac) {
    if (frac <= 0.0) return 0;
    return static_cast<uint64_t>(
        frac * static_cast<double>(std::numeric_limits<uint64_t>::max()));
  }

  uint64_t seed_;
  uint64_t event_cut_;
  uint64_t pm_cut_;
  std::vector<const Event*> scratch_;
};

constexpr uint64_t kShedSeed = 17;
constexpr double kEventDropFrac = 0.12;
constexpr double kPmDropFrac = 0.10;

/// One cell of the differential grid.
struct DiffConfig {
  std::string name;
  const Schema* schema = nullptr;
  const EventStream* stream = nullptr;
  Query query;
  ShardRouting routing = ShardRouting::kHashPartition;
  std::string partition_attr;  // resolved against `schema`
  Duration slice_stride = 0;
};

/// Matches in the merge's canonical order: (detection time, identity).
struct CanonMatch {
  Timestamp ts;
  std::string key;
  bool operator==(const CanonMatch& o) const = default;
  bool operator<(const CanonMatch& o) const {
    if (ts != o.ts) return ts < o.ts;
    return key < o.key;
  }
};

std::vector<CanonMatch> Canon(const std::vector<Match>& matches) {
  std::vector<CanonMatch> out;
  out.reserve(matches.size());
  for (const Match& m : matches) out.push_back({m.detected_at, m.Key()});
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectStatsEqual(const EngineStats& a, const EngineStats& b) {
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.pms_created, b.pms_created);
  EXPECT_EQ(a.witnesses_created, b.witnesses_created);
  EXPECT_EQ(a.matches_emitted, b.matches_emitted);
  EXPECT_EQ(a.matches_vetoed, b.matches_vetoed);
  EXPECT_EQ(a.pms_evicted, b.pms_evicted);
  EXPECT_EQ(a.predicate_evals, b.predicate_evals);
  EXPECT_EQ(a.candidates_scanned, b.candidates_scanned);
  EXPECT_EQ(a.index_probes, b.index_probes);
  EXPECT_EQ(a.peak_pms, b.peak_pms);
  EXPECT_EQ(a.total_cost, b.total_cost);
}

/// Byte-for-byte equality of two sharded runs (everything but wall time).
void ExpectRunsIdentical(const ShardRunResult& a, const ShardRunResult& b) {
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.routed_events, b.routed_events);
  EXPECT_EQ(a.dropped_events, b.dropped_events);
  EXPECT_EQ(a.shed_pms, b.shed_pms);
  ExpectStatsEqual(a.stats, b.stats);

  ASSERT_EQ(a.matches.size(), b.matches.size());
  for (size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].detected_at, b.matches[i].detected_at);
    EXPECT_EQ(a.matches[i].Key(), b.matches[i].Key());
  }

  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (size_t i = 0; i < a.shards.size(); ++i) {
    SCOPED_TRACE("shard " + std::to_string(i));
    EXPECT_EQ(a.shards[i].events_routed, b.shards[i].events_routed);
    EXPECT_EQ(a.shards[i].events_dropped, b.shards[i].events_dropped);
    EXPECT_EQ(a.shards[i].events_processed, b.shards[i].events_processed);
    EXPECT_EQ(a.shards[i].shed_pms, b.shards[i].shed_pms);
    EXPECT_EQ(a.shards[i].avg_latency, b.shards[i].avg_latency);
    ExpectStatsEqual(a.shards[i].stats, b.shards[i].stats);
  }
}

/// Ground-truth run on one global engine with one (optional) shedder.
RunResult SequentialReference(const std::shared_ptr<const Nfa>& nfa,
                              const EventStream& stream, bool shed,
                              const EngineOptions& options = EngineOptions{}) {
  Engine engine(nfa, options);
  NoShedder none;
  HashDropShedder drop(kShedSeed, kEventDropFrac, kPmDropFrac);
  Shedder* shedder = shed ? static_cast<Shedder*>(&drop) : &none;
  ShedRunner runner(&engine, shedder, LatencyMonitor::Options{});
  return runner.Run(stream);
}

void RunDifferential(const DiffConfig& config) {
  auto nfa = Nfa::Compile(config.query, config.schema);
  ASSERT_TRUE(nfa.ok()) << nfa.status().message();

  const int attr = config.partition_attr.empty()
                       ? -1
                       : config.schema->AttributeIndex(config.partition_attr);

  for (const bool shed : {false, true}) {
    const RunResult expected = SequentialReference(*nfa, *config.stream, shed);
    // A degenerate reference would make the equivalence vacuous.
    ASSERT_GT(expected.matches.size(), 0u)
        << config.name << ": reference run produced no matches";
    const std::vector<CanonMatch> expected_canon = Canon(expected.matches);

    {
      // (C) Expiry-mechanism differential: the deadline-ordered timing
      // wheel (default) and the legacy O(live) scans must be byte-identical
      // — matches, every stat, and total cost — with and without shedding.
      EngineOptions scan;
      scan.use_expiry_wheel = false;
      scan.use_strict_gen_list = false;
      const RunResult scanned =
          SequentialReference(*nfa, *config.stream, shed, scan);
      EXPECT_EQ(Canon(scanned.matches), expected_canon);
      ExpectStatsEqual(scanned.engine_stats, expected.engine_stats);
      EXPECT_EQ(scanned.dropped_events, expected.dropped_events);
      EXPECT_EQ(scanned.shed_pms, expected.shed_pms);
    }

    for (const int num_shards : kShardCounts) {
      SCOPED_TRACE(config.name + " shards=" + std::to_string(num_shards) +
                   (shed ? " shed" : " no-shed"));

      ShardRuntimeOptions opts;
      opts.num_shards = num_shards;
      opts.routing = config.routing;
      opts.partition_attr = attr;
      opts.slice_stride = config.slice_stride;
      auto runtime = ShardRuntime::Create(*nfa, opts);
      ASSERT_TRUE(runtime.ok()) << runtime.status().message();

      ShardRuntime::ShedderFactory factory;
      if (shed) {
        factory = [](int) {
          return std::make_unique<HashDropShedder>(kShedSeed, kEventDropFrac,
                                                   kPmDropFrac);
        };
      }

      auto parallel = (*runtime)->Run(*config.stream, factory);
      ASSERT_TRUE(parallel.ok()) << parallel.status().message();
      auto replay = (*runtime)->RunSequential(*config.stream, factory);
      ASSERT_TRUE(replay.ok()) << replay.status().message();

      // (B) The parallel path is deterministic: Run == RunSequential.
      ExpectRunsIdentical(*parallel, *replay);

      // Routing accounting is consistent.
      EXPECT_EQ(parallel->total_events, config.stream->size());
      uint64_t routed = 0;
      for (const ShardResult& s : parallel->shards) {
        EXPECT_EQ(s.events_routed, s.events_processed + s.events_dropped);
        routed += s.events_routed;
      }
      EXPECT_EQ(routed, parallel->routed_events);
      if (config.routing == ShardRouting::kHashPartition) {
        EXPECT_EQ(parallel->routed_events, config.stream->size());
      } else {
        EXPECT_GE(parallel->routed_events, config.stream->size());
      }

      // (A) The sharded plan is exact: same match set as the sequential
      // engine, with or without (content-deterministic) shedding.
      EXPECT_EQ(Canon(parallel->matches), expected_canon);
      // The merge emits matches already in canonical order.
      EXPECT_EQ(Canon(parallel->matches), Canon(std::vector<Match>(parallel->matches)));

      if (config.routing == ShardRouting::kHashPartition) {
        // Each event is processed exactly once, so summed engine counters
        // must reproduce the global engine's.
        EXPECT_EQ(parallel->stats.matches_emitted,
                  expected.engine_stats.matches_emitted);
        EXPECT_EQ(parallel->stats.pms_created, expected.engine_stats.pms_created);
        EXPECT_EQ(parallel->stats.witnesses_created,
                  expected.engine_stats.witnesses_created);
        EXPECT_EQ(parallel->stats.events_processed,
                  expected.engine_stats.events_processed);
        EXPECT_EQ(parallel->dropped_events, expected.dropped_events);
        EXPECT_EQ(parallel->shed_pms, expected.shed_pms);
      } else {
        // Slice routing replicates events, so raw counters differ; after
        // dedup the emitted-match counter must still agree.
        EXPECT_EQ(parallel->stats.matches_emitted,
                  expected.engine_stats.matches_emitted);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Fixtures: seeded generator streams shared across the grid.

class DifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds1_schema_ = new Schema(MakeDs1Schema());
    Ds1Options ds1;
    ds1.num_events = 3000;
    ds1.event_gap = 10;
    ds1.seed = 7;
    ds1_stream_ = new EventStream(GenerateDs1(*ds1_schema_, ds1));

    google_schema_ = new Schema(MakeGoogleTraceSchema());
    GoogleTraceOptions gt;
    gt.num_events = 8000;
    gt.seed = 4;
    google_stream_ = new EventStream(GenerateGoogleTrace(*google_schema_, gt));
  }

  static void TearDownTestSuite() {
    delete ds1_stream_;
    delete ds1_schema_;
    delete google_stream_;
    delete google_schema_;
  }

  static Query ParseOrDie(const std::string& text) {
    auto q = ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().message();
    return *q;
  }

  /// A fully ID-correlated Kleene query (unlike the paper's Q2, whose last
  /// element is only value-correlated and therefore not hash-shardable).
  static Query CorrelatedKleene() {
    return ParseOrDie(
        "PATTERN SEQ(A a, A+{1,3} b[], B c, C d) "
        "WHERE a.ID = b[i].ID AND a.ID = c.ID AND a.ID = d.ID "
        "AND a.V + c.V = d.V WITHIN 2ms");
  }

  static DiffConfig Ds1Config(std::string name, Query query,
                              ShardRouting routing = ShardRouting::kHashPartition) {
    DiffConfig c;
    c.name = std::move(name);
    c.schema = ds1_schema_;
    c.stream = ds1_stream_;
    c.query = std::move(query);
    c.routing = routing;
    if (routing == ShardRouting::kHashPartition) c.partition_attr = "ID";
    return c;
  }

  static Schema* ds1_schema_;
  static EventStream* ds1_stream_;
  static Schema* google_schema_;
  static EventStream* google_stream_;
};

Schema* DifferentialTest::ds1_schema_ = nullptr;
EventStream* DifferentialTest::ds1_stream_ = nullptr;
Schema* DifferentialTest::google_schema_ = nullptr;
EventStream* DifferentialTest::google_stream_ = nullptr;

// --- hash partitioning, one test per (query, policy) grid row ---

TEST_F(DifferentialTest, HashQ1AnyMatch) {
  auto q = queries::Q1();
  ASSERT_TRUE(q.ok());
  RunDifferential(Ds1Config("Q1/any/hash", *q));
}

TEST_F(DifferentialTest, HashQ1NextMatch) {
  auto q = queries::Q1();
  ASSERT_TRUE(q.ok());
  q->policy = SelectionPolicy::kSkipTillNextMatch;
  RunDifferential(Ds1Config("Q1/next/hash", *q));
}

TEST_F(DifferentialTest, HashKleeneAnyMatch) {
  RunDifferential(Ds1Config("Kleene/any/hash", CorrelatedKleene()));
}

TEST_F(DifferentialTest, HashKleeneNextMatch) {
  Query q = CorrelatedKleene();
  q.policy = SelectionPolicy::kSkipTillNextMatch;
  RunDifferential(Ds1Config("Kleene/next/hash", q));
}

TEST_F(DifferentialTest, HashLiteralFilterAnyMatch) {
  // Attr-vs-literal predicates are the shapes the engine's batched column
  // masks cover, so this row exercises BeginBatch windows end to end:
  // Run's PopBatch worker loop vs RunSequential's chunked drain vs the
  // unbatched sequential reference must all agree exactly.
  RunDifferential(Ds1Config(
      "LiteralFilter/any/hash",
      ParseOrDie("PATTERN SEQ(A a, B b, C c) "
                 "WHERE a.V > 3 AND c.V <= 9 AND a.ID = b.ID AND a.ID = c.ID "
                 "WITHIN 8ms")));
}

TEST_F(DifferentialTest, HashNegationAnyMatch) {
  auto q = queries::Q4();
  ASSERT_TRUE(q.ok());
  RunDifferential(Ds1Config("Q4/any/hash", *q));
}

TEST_F(DifferentialTest, HashCountWindowAnyMatch) {
  auto q = queries::Q1();
  ASSERT_TRUE(q.ok());
  // Count windows expire by absolute stream position, which events carry
  // with them into the shards — hash plans stay exact.
  q->count_window = 256;
  RunDifferential(Ds1Config("Q1/count/any/hash", *q));
}

TEST_F(DifferentialTest, HashGoogleChurnAnyMatch) {
  auto q = queries::GoogleTaskChurn();
  ASSERT_TRUE(q.ok());
  DiffConfig c;
  c.name = "GoogleChurn/any/hash";
  c.schema = google_schema_;
  c.stream = google_stream_;
  c.query = *q;
  c.routing = ShardRouting::kHashPartition;
  c.partition_attr = "task";
  RunDifferential(c);
}

// --- record/replay: the trace recorder feeds the differential harness ---

/// The lab's end-to-end loop on the hardest query shape: Kleene closure
/// AND a negated element AND shedding, recorded from a live sharded run
/// through the ingest tap, then replayed from the trace file. The replayed
/// stream must (a) reproduce the recording run bit for bit and (b) pass
/// the full differential grid — i.e. a trace capture is a first-class
/// workload, not a lossy log.
TEST_F(DifferentialTest, KleeneNegationShedReplayedFromRecordedTrace) {
  Query query = ParseOrDie(
      "PATTERN SEQ(A a, A+{1,2} b[], !B nb, C c) "
      "WHERE a.ID = b[i].ID AND a.ID = nb.ID AND a.ID = c.ID "
      "AND a.V + nb.V = c.V WITHIN 2ms");
  auto nfa = Nfa::Compile(query, ds1_schema_);
  ASSERT_TRUE(nfa.ok()) << nfa.status().message();

  // Record a live 4-shard shedded run of the fixture stream.
  const std::string path = ::testing::TempDir() + "/differential.trace";
  auto writer = lab::TraceWriter::Open(path, *ds1_schema_);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ShardRuntimeOptions opts;
  opts.num_shards = 4;
  opts.partition_attr = ds1_schema_->AttributeIndex("ID");
  opts.ingest_tap = [&](const EventPtr& event, const std::vector<int>&) {
    ASSERT_TRUE((*writer)->Append(*event).ok());
  };
  auto runtime = ShardRuntime::Create(*nfa, opts);
  ASSERT_TRUE(runtime.ok()) << runtime.status().message();
  const ShardRuntime::ShedderFactory factory = [](int) {
    return std::make_unique<HashDropShedder>(kShedSeed, kEventDropFrac,
                                             kPmDropFrac);
  };
  auto recorded = (*runtime)->RunSequential(*ds1_stream_, factory);
  ASSERT_TRUE(recorded.ok()) << recorded.status().message();
  ASSERT_TRUE((*writer)->Close().ok());
  ASSERT_GT(recorded->matches.size(), 0u) << "degenerate recording";
  ASSERT_GT(recorded->stats.matches_vetoed, 0u) << "negation never engaged";
  ASSERT_GT(recorded->dropped_events, 0u) << "shedding never engaged";

  auto capture = lab::ReadTrace(path);
  ASSERT_TRUE(capture.ok()) << capture.status().ToString();
  ASSERT_EQ(capture->stream.size(), ds1_stream_->size());

  // (a) Replaying the capture reproduces the recorded run exactly.
  opts.ingest_tap = nullptr;
  auto replay_runtime = ShardRuntime::Create(*nfa, opts);
  ASSERT_TRUE(replay_runtime.ok());
  auto replayed = (*replay_runtime)->RunSequential(capture->stream, factory);
  ASSERT_TRUE(replayed.ok()) << replayed.status().message();
  ExpectRunsIdentical(*recorded, *replayed);

  // (b) The replayed stream passes the whole differential grid, against
  // the schema reconstructed from the trace file itself.
  DiffConfig c;
  c.name = "KleeneNeg/any/hash/replayed";
  c.schema = capture->schema.get();
  c.stream = &capture->stream;
  c.query = query;
  c.routing = ShardRouting::kHashPartition;
  c.partition_attr = "ID";
  RunDifferential(c);
  std::remove(path.c_str());
}

// --- window-slice routing ---

TEST_F(DifferentialTest, SliceQ1AnyMatch) {
  auto q = queries::Q1();
  ASSERT_TRUE(q.ok());
  DiffConfig c = Ds1Config("Q1/any/slice", *q, ShardRouting::kWindowSlice);
  c.slice_stride = Millis(4);  // duplication factor 3
  RunDifferential(c);
}

TEST_F(DifferentialTest, SliceKleeneAnyMatch) {
  DiffConfig c =
      Ds1Config("Kleene/any/slice", CorrelatedKleene(), ShardRouting::kWindowSlice);
  c.slice_stride = Millis(1);
  RunDifferential(c);
}

TEST_F(DifferentialTest, SliceNegationAnyMatch) {
  auto q = queries::Q4();
  ASSERT_TRUE(q.ok());
  DiffConfig c = Ds1Config("Q4/any/slice", *q, ShardRouting::kWindowSlice);
  c.slice_stride = Millis(4);
  RunDifferential(c);
}

// ---------------------------------------------------------------------------
// Static plan validation: inexact plans must be rejected, not silently run.

class ShardPlanTest : public DifferentialTest {};

TEST_F(ShardPlanTest, PartitionCorrelationAnalysis) {
  const int id = ds1_schema_->AttributeIndex("ID");
  const int v = ds1_schema_->AttributeIndex("V");

  auto q1 = Nfa::Compile(*queries::Q1(), ds1_schema_);
  ASSERT_TRUE(q1.ok());
  EXPECT_TRUE(ShardRuntime::IsPartitionCorrelated(**q1, id));
  // a.V + b.V = c.V is not an equality *correlation* on V.
  EXPECT_FALSE(ShardRuntime::IsPartitionCorrelated(**q1, v));

  // Q2's final element correlates on V only — not shardable on ID.
  auto q2 = Nfa::Compile(*queries::Q2(2), ds1_schema_);
  ASSERT_TRUE(q2.ok());
  EXPECT_FALSE(ShardRuntime::IsPartitionCorrelated(**q2, id));

  // The negated element of Q4 is correlated, so witnesses stay local.
  auto q4 = Nfa::Compile(*queries::Q4(), ds1_schema_);
  ASSERT_TRUE(q4.ok());
  EXPECT_TRUE(ShardRuntime::IsPartitionCorrelated(**q4, id));

  auto kleene = Nfa::Compile(CorrelatedKleene(), ds1_schema_);
  ASSERT_TRUE(kleene.ok());
  EXPECT_TRUE(ShardRuntime::IsPartitionCorrelated(**kleene, id));

  auto churn = Nfa::Compile(*queries::GoogleTaskChurn(), google_schema_);
  ASSERT_TRUE(churn.ok());
  EXPECT_TRUE(ShardRuntime::IsPartitionCorrelated(
      **churn, google_schema_->AttributeIndex("task")));
  // Machines change across the churn chain: not a partition key.
  EXPECT_FALSE(ShardRuntime::IsPartitionCorrelated(
      **churn, google_schema_->AttributeIndex("machine")));
}

TEST_F(ShardPlanTest, RejectsInexactPlans) {
  auto nfa = Nfa::Compile(*queries::Q1(), ds1_schema_);
  ASSERT_TRUE(nfa.ok());

  {  // hash routing without a partition attribute
    ShardRuntimeOptions opts;
    opts.num_shards = 4;
    EXPECT_FALSE(ShardRuntime::Create(*nfa, opts).ok());
  }
  {  // hash routing on an uncorrelated attribute
    ShardRuntimeOptions opts;
    opts.num_shards = 4;
    opts.partition_attr = ds1_schema_->AttributeIndex("V");
    EXPECT_FALSE(ShardRuntime::Create(*nfa, opts).ok());
  }
  {  // strict contiguity is inherently global
    Query q = *queries::Q1();
    q.policy = SelectionPolicy::kStrictContiguity;
    auto strict = Nfa::Compile(q, ds1_schema_);
    ASSERT_TRUE(strict.ok());
    ShardRuntimeOptions opts;
    opts.num_shards = 2;
    opts.partition_attr = ds1_schema_->AttributeIndex("ID");
    EXPECT_FALSE(ShardRuntime::Create(*strict, opts).ok());
  }
  {  // slice routing under a selective policy
    Query q = *queries::Q1();
    q.policy = SelectionPolicy::kSkipTillNextMatch;
    auto next = Nfa::Compile(q, ds1_schema_);
    ASSERT_TRUE(next.ok());
    ShardRuntimeOptions opts;
    opts.num_shards = 2;
    opts.routing = ShardRouting::kWindowSlice;
    EXPECT_FALSE(ShardRuntime::Create(*next, opts).ok());
  }
  {  // slice routing with a count window
    Query q = *queries::Q1();
    q.count_window = 128;
    auto count = Nfa::Compile(q, ds1_schema_);
    ASSERT_TRUE(count.ok());
    ShardRuntimeOptions opts;
    opts.num_shards = 2;
    opts.routing = ShardRouting::kWindowSlice;
    EXPECT_FALSE(ShardRuntime::Create(*count, opts).ok());
  }
  {  // a single shard is always exact, whatever the plan
    ShardRuntimeOptions opts;
    opts.num_shards = 1;
    EXPECT_TRUE(ShardRuntime::Create(*nfa, opts).ok());
  }
}

}  // namespace
}  // namespace cepshed
