// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Shared helpers for the figure benchmarks: dataset/harness construction
// and uniform table output. Every figure bench prints one CSV-ish block
// per sub-figure, headed by a `# Fig. N` marker, so EXPERIMENTS.md and
// plotting scripts can consume the output directly.

#ifndef CEPSHED_BENCH_BENCH_UTIL_H_
#define CEPSHED_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/runtime/experiment.h"
#include "src/workload/citibike.h"
#include "src/workload/ds1.h"
#include "src/workload/ds2.h"
#include "src/workload/google_trace.h"
#include "src/workload/queries.h"

namespace cepshed::bench {

/// The five latency-bound strategies of the paper's comparisons.
inline const std::vector<StrategyKind>& BoundStrategies() {
  static const std::vector<StrategyKind> kAll = {
      StrategyKind::kRI, StrategyKind::kSI, StrategyKind::kRS, StrategyKind::kSS,
      StrategyKind::kHybrid};
  return kAll;
}

/// Prints the block header for a (sub-)figure.
inline void Header(const std::string& fig, const std::string& what,
                   const std::string& columns) {
  std::printf("\n# %s — %s\n%s\n", fig.c_str(), what.c_str(), columns.c_str());
}

/// A prepared harness plus the streams it was prepared with.
struct PreparedExperiment {
  Schema schema;
  std::unique_ptr<EventStream> train;
  std::unique_ptr<EventStream> test;
  std::unique_ptr<ExperimentHarness> harness;
};

/// DS1 + Q1-style setup used by most controlled experiments.
inline PreparedExperiment PrepareDs1(const Query& query, Ds1Options gen,
                                     HarnessOptions options = {},
                                     uint64_t train_seed = 11,
                                     uint64_t test_seed = 12) {
  PreparedExperiment out;
  out.schema = MakeDs1Schema();
  gen.seed = train_seed;
  out.train = std::make_unique<EventStream>(GenerateDs1(out.schema, gen));
  gen.seed = test_seed;
  out.test = std::make_unique<EventStream>(GenerateDs1(out.schema, gen));
  out.harness = std::make_unique<ExperimentHarness>(&out.schema, query, options);
  const Status st = out.harness->Prepare(*out.train, *out.test);
  if (!st.ok()) {
    std::fprintf(stderr, "harness prepare failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  return out;
}

/// DS2 + Q3 setup.
inline PreparedExperiment PrepareDs2(const Query& query, Ds2Options gen,
                                     HarnessOptions options = {}) {
  PreparedExperiment out;
  out.schema = MakeDs2Schema();
  gen.seed = 21;
  out.train = std::make_unique<EventStream>(GenerateDs2(out.schema, gen));
  gen.seed = 22;
  out.test = std::make_unique<EventStream>(GenerateDs2(out.schema, gen));
  out.harness = std::make_unique<ExperimentHarness>(&out.schema, query, options);
  const Status st = out.harness->Prepare(*out.train, *out.test);
  if (!st.ok()) {
    std::fprintf(stderr, "harness prepare failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  return out;
}

/// Synthetic citibike setup (Listing 1).
inline PreparedExperiment PrepareCitibike(const Query& query, CitibikeOptions gen,
                                          HarnessOptions options = {}) {
  PreparedExperiment out;
  out.schema = MakeCitibikeSchema();
  gen.seed = 31;
  out.train = std::make_unique<EventStream>(GenerateCitibike(out.schema, gen));
  gen.seed = 32;
  out.test = std::make_unique<EventStream>(GenerateCitibike(out.schema, gen));
  out.harness = std::make_unique<ExperimentHarness>(&out.schema, query, options);
  const Status st = out.harness->Prepare(*out.train, *out.test);
  if (!st.ok()) {
    std::fprintf(stderr, "harness prepare failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  return out;
}

/// Synthetic Google cluster setup (Listing 3).
inline PreparedExperiment PrepareGoogle(const Query& query, GoogleTraceOptions gen,
                                        HarnessOptions options = {}) {
  PreparedExperiment out;
  out.schema = MakeGoogleTraceSchema();
  gen.seed = 41;
  out.train = std::make_unique<EventStream>(GenerateGoogleTrace(out.schema, gen));
  gen.seed = 42;
  out.test = std::make_unique<EventStream>(GenerateGoogleTrace(out.schema, gen));
  out.harness = std::make_unique<ExperimentHarness>(&out.schema, query, options);
  const Status st = out.harness->Prepare(*out.train, *out.test);
  if (!st.ok()) {
    std::fprintf(stderr, "harness prepare failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  return out;
}

/// Prints the standard recall/throughput/shed-ratio row.
inline void PrintResultRow(const std::string& x, const ExperimentResult& r) {
  std::printf("%s,%s,%.4f,%.0f,%.4f,%.4f,%.4f\n", x.c_str(), r.name.c_str(),
              r.quality.recall, r.throughput_eps, r.shed_event_ratio, r.shed_pm_ratio,
              r.bound_violation_ratio);
}

inline const char* kResultColumns =
    "x,strategy,recall,throughput_eps,shed_event_ratio,shed_pm_ratio,violation_ratio";

}  // namespace cepshed::bench

#endif  // CEPSHED_BENCH_BENCH_UTIL_H_
