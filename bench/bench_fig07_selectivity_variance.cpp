// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Fig. 7 of the paper: impact of the variance of query selectivity. The
// distribution of attribute V of C events is U(2, x) for x in [2, 10]: at
// x = 2 the utility of an input event is precisely assessable (only
// a.V = b.V = 1 can complete) and hybrid shedding discards aggressively
// at input level; at x = 10 it resorts to state-level granularity.

#include "bench/bench_util.h"

using namespace cepshed;
using namespace cepshed::bench;

int main() {
  Header("Fig. 7a+7b", "DS1/Q1, C.V ~ U(2,x), 50% bound on the 95th-pct latency",
         kResultColumns);
  for (int x : {2, 4, 6, 8, 10}) {
    Ds1Options gen;
    gen.num_events = 25000;
    gen.c_v_min = 2;
    gen.c_v_max = x;
    auto exp = PrepareDs1(*queries::Q1("8ms"), gen);
    for (StrategyKind kind : BoundStrategies()) {
      const ExperimentResult r = exp.harness->RunBound(kind, 0.5, LatencyStat::kP95);
      PrintResultRow(std::to_string(x), r);
    }
  }
  return 0;
}
