// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// A bounded lock-free ring queue (Vyukov's bounded MPMC design: one
// sequence counter per slot) used as the per-shard event channel of the
// sharded runtime. The runtime uses it in SPSC form — the router thread is
// the only producer and the shard worker the only consumer — but the slot
// sequencing makes every operation safe under arbitrary producer/consumer
// counts, which is what the stress test exercises.
//
// Blocking semantics: Push spins (with yields) while the queue is full and
// fails only once the queue is closed; Pop spins while the queue is empty
// and fails once the queue is closed *and* drained, so a consumer always
// sees every element pushed before Close().
//
// A plain blocking Push can spin forever when the consumer thread dies
// without closing the queue. PushFor is the bounded variant: it gives up
// after a deadline (or immediately once the queue is closed) so the
// producer can check consumer liveness and recover instead of deadlocking
// (the sharded runtime turns persistent unavailability into
// Status::Unavailable).

#ifndef CEPSHED_RUNTIME_RING_QUEUE_H_
#define CEPSHED_RUNTIME_RING_QUEUE_H_

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

namespace cepshed {

/// \brief Outcome of a bounded-wait queue push.
enum class QueuePushResult : int {
  kOk = 0,       ///< element enqueued
  kClosed = 1,   ///< queue closed before the element could be enqueued
  kTimedOut = 2  ///< queue stayed full past the deadline (consumer stalled
                 ///< or dead); the element was not consumed
};

template <typename T>
class RingQueue {
 public:
  /// Constructs a queue holding at most `capacity` elements (rounded up to
  /// a power of two, minimum 2).
  explicit RingQueue(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_ = std::vector<Slot>(cap);
    mask_ = cap - 1;
    for (size_t i = 0; i < cap; ++i) {
      slots_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  RingQueue(const RingQueue&) = delete;
  RingQueue& operator=(const RingQueue&) = delete;

  /// Non-blocking push; returns false when the queue is full or closed.
  bool TryPush(T value) { return TryPushRef(value); }

  /// Non-blocking pop; returns false when the queue is empty.
  bool TryPop(T* out) {
    size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const size_t seq = slot.sequence.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          *out = std::move(slot.value);
          slot.value = T();
          slot.sequence.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // empty: slot not yet published by a producer
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Non-blocking batch push: enqueues a prefix of values[0..n), claiming
  /// a contiguous run of free slots with a single CAS on the tail.
  /// Returns the count enqueued — short (possibly 0) when the queue fills
  /// or is closed. Moves only the elements actually enqueued; the caller
  /// still owns the rest.
  size_t TryPushBatch(T* values, size_t n) {
    if (n == 0) return 0;
    size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      if (closed_.load(std::memory_order_relaxed)) return 0;
      // Count consecutive free slots starting at pos. A slot is free for
      // this lap when its sequence equals its position; sequences only
      // grow, so slots observed free stay free until a producer claims
      // them — and claiming moves the tail, which fails our CAS.
      size_t k = 0;
      while (k < n) {
        const Slot& slot = slots_[(pos + k) & mask_];
        const size_t seq = slot.sequence.load(std::memory_order_acquire);
        if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + k) != 0)
          break;
        ++k;
      }
      if (k == 0) {
        const size_t seq =
            slots_[pos & mask_].sequence.load(std::memory_order_acquire);
        if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos) < 0) {
          return 0;  // full: slot still holds an unconsumed element
        }
        pos = tail_.load(std::memory_order_relaxed);  // raced; reload
        continue;
      }
      if (tail_.compare_exchange_weak(pos, pos + k,
                                      std::memory_order_relaxed)) {
        for (size_t j = 0; j < k; ++j) {
          Slot& slot = slots_[(pos + j) & mask_];
          slot.value = std::move(values[j]);
          slot.sequence.store(pos + j + 1, std::memory_order_release);
        }
        return k;
      }
    }
  }

  /// Non-blocking batch pop: dequeues up to `max` elements into
  /// out[0..). Returns the count dequeued (0 when the queue is empty).
  size_t TryPopBatch(T* out, size_t max) {
    if (max == 0) return 0;
    size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      // Count consecutive published slots starting at pos.
      size_t k = 0;
      while (k < max) {
        const Slot& slot = slots_[(pos + k) & mask_];
        const size_t seq = slot.sequence.load(std::memory_order_acquire);
        if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + k + 1) !=
            0)
          break;
        ++k;
      }
      if (k == 0) {
        const size_t seq =
            slots_[pos & mask_].sequence.load(std::memory_order_acquire);
        if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1) < 0) {
          return 0;  // empty: slot not yet published by a producer
        }
        pos = head_.load(std::memory_order_relaxed);  // raced; reload
        continue;
      }
      if (head_.compare_exchange_weak(pos, pos + k,
                                      std::memory_order_relaxed)) {
        for (size_t j = 0; j < k; ++j) {
          Slot& slot = slots_[(pos + j) & mask_];
          out[j] = std::move(slot.value);
          slot.value = T();
          slot.sequence.store(pos + j + mask_ + 1, std::memory_order_release);
        }
        return k;
      }
    }
  }

  /// Blocking batch pop: waits until at least one element is available,
  /// then dequeues up to `max`. Returns 0 iff the queue is closed and
  /// fully drained (mirrors Pop).
  size_t PopBatch(T* out, size_t max) {
    Backoff backoff;
    for (;;) {
      const size_t k = TryPopBatch(out, max);
      if (k != 0) return k;
      if (closed_.load(std::memory_order_acquire)) {
        // Drain anything published between the last TryPopBatch and the
        // close.
        return TryPopBatch(out, max);
      }
      backoff.Pause();
    }
  }

  /// Blocking push: spins/yields while full. Returns false iff the queue
  /// was closed before the element could be enqueued.
  bool Push(T value) {
    return PushFor(std::move(value), -1) == QueuePushResult::kOk;
  }

  /// Bounded-wait push (see PushForRef). Taking the element by value, a
  /// kTimedOut/kClosed result leaves the caller's move-only payload
  /// consumed; callers that must retry the *same* element use PushForRef.
  QueuePushResult PushFor(T value, int64_t timeout_us) {
    return PushForRef(value, timeout_us);
  }

  /// Bounded-wait push: spins/yields while full for at most `timeout_us`
  /// microseconds (negative = forever). Moves from `value` only on kOk; on
  /// kTimedOut the element was not enqueued and the caller still owns it —
  /// typically it checks whether the consumer is alive and either retries
  /// with the same element or abandons the queue.
  QueuePushResult PushForRef(T& value, int64_t timeout_us) {
    // TryPushRef moves from `value` only on success, so a full-queue retry
    // re-offers the original element rather than a moved-from husk.
    Backoff backoff;
    // The deadline is materialized lazily: the uncontended fast path never
    // reads the clock.
    std::chrono::steady_clock::time_point deadline{};
    bool have_deadline = false;
    int pauses = 0;
    while (!TryPushRef(value)) {
      if (closed_.load(std::memory_order_acquire)) return QueuePushResult::kClosed;
      if (timeout_us >= 0 && ++pauses >= kPausesPerClockCheck) {
        pauses = 0;
        const auto now = std::chrono::steady_clock::now();
        if (!have_deadline) {
          deadline = now + std::chrono::microseconds(timeout_us);
          have_deadline = true;
        } else if (now >= deadline) {
          return QueuePushResult::kTimedOut;
        }
      }
      backoff.Pause();
    }
    return QueuePushResult::kOk;
  }

  /// Blocking pop: spins/yields while empty. Returns false iff the queue
  /// is closed and fully drained.
  bool Pop(T* out) {
    Backoff backoff;
    while (!TryPop(out)) {
      if (closed_.load(std::memory_order_acquire)) {
        // Drain anything published between the last TryPop and the close.
        return TryPop(out);
      }
      backoff.Pause();
    }
    return true;
  }

  /// Marks the queue closed: pending Pops drain the remaining elements and
  /// then fail; Pushes fail immediately.
  void Close() { closed_.store(true, std::memory_order_release); }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Power-of-two slot count.
  size_t capacity() const { return mask_ + 1; }

  /// Approximate occupancy (racy by nature; diagnostics only).
  size_t SizeApprox() const {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

 private:
  /// Push core; consumes `value` only when it actually lands in a slot.
  bool TryPushRef(T& value) {
    size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      if (closed_.load(std::memory_order_relaxed)) return false;
      Slot& slot = slots_[pos & mask_];
      const size_t seq = slot.sequence.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          slot.value = std::move(value);
          slot.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // full: slot still holds an unconsumed element
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  struct Slot {
    std::atomic<size_t> sequence{0};
    T value{};
  };

  /// Spin-then-yield backoff: short busy loops keep SPSC handoff latency
  /// low; yielding keeps an oversubscribed box (more shards than cores)
  /// from livelocking.
  class Backoff {
   public:
    void Pause() {
      if (++spins_ < 64) return;
      std::this_thread::yield();
    }

   private:
    int spins_ = 0;
  };

  static constexpr size_t kCacheLine = 64;
  /// Clock reads are amortized over this many backoff pauses; with the
  /// 64-spin-then-yield backoff a check happens at least once per yield
  /// cycle, keeping timeout precision within a few scheduler quanta.
  static constexpr int kPausesPerClockCheck = 64;

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<size_t> head_{0};
  alignas(kCacheLine) std::atomic<size_t> tail_{0};
  alignas(kCacheLine) std::atomic<bool> closed_{false};
};

}  // namespace cepshed

#endif  // CEPSHED_RUNTIME_RING_QUEUE_H_
