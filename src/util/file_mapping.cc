// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/util/file_mapping.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>

namespace cepshed {

FileMapping::~FileMapping() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

FileMapping::FileMapping(FileMapping&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

FileMapping& FileMapping::operator=(FileMapping&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

Result<FileMapping> FileMapping::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::InvalidArgument("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument("not a regular file: " + path);
  }
  FileMapping m;
  m.size_ = static_cast<size_t>(st.st_size);
  if (m.size_ > 0) {
    void* p = ::mmap(nullptr, m.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      ::close(fd);
      return Status::Internal("mmap failed for " + path);
    }
    m.data_ = p;
    ::madvise(p, m.size_, MADV_SEQUENTIAL);
  }
  ::close(fd);
  return m;
}

}  // namespace cepshed
