// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/workload/lab/soak.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>
#include <utility>

#include "src/cep/engine.h"
#include "src/cep/nfa.h"
#include "src/runtime/latency_monitor.h"
#include "src/runtime/overload_guard.h"
#include "src/runtime/shard_runtime.h"
#include "src/workload/ds1.h"
#include "src/workload/lab/hostile.h"
#include "src/workload/queries.h"

namespace cepshed {
namespace lab {

namespace {

/// One long-lived shard: the whole point of the soak is that these survive
/// across cycles.
struct SoakShard {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<OverloadGuard> guard;
  LatencyMonitor monitor;
};

/// Gauge floors below which "slack * baseline" would be vacuously tight: a
/// baseline of zero (quiet warmup) must not turn any later activity into a
/// violation. Spikes past these floors still have to stay within slack of
/// the (floored) baseline.
constexpr size_t kBytesFloor = 64u << 10;   // 64 KiB
constexpr size_t kEntriesFloor = 256;

Result<EventStream> GenerateCycle(const Schema& schema, const std::string& kind,
                                  const SoakOptions& options, int cycle,
                                  Timestamp ts_origin) {
  const uint64_t seed = options.seed + 7919u * static_cast<uint64_t>(cycle + 1);
  if (kind == "drift") {
    DriftOptions d;
    d.num_events = options.events_per_cycle;
    d.drift_begin = options.events_per_cycle / 4;
    d.drift_end = (3 * options.events_per_cycle) / 4;
    d.type_weights_start[0] = 1.0;
    d.type_weights_end[0] = 3.0;  // A-heavy tail: more open partial matches
    d.ts_origin = ts_origin;
    d.seed = seed;
    return GenerateDriftStream(schema, d);
  }
  if (kind == "burst") {
    BurstOptions b;
    b.num_events = options.events_per_cycle;
    b.num_shards = options.num_shards;
    b.target_shard = cycle % std::max(1, options.num_shards);
    std::ostringstream sched;
    sched << "burst:at=" << options.events_per_cycle / 4
          << ",count=" << options.events_per_cycle / 2 << ",factor=8";
    b.anchor_schedule = sched.str();
    b.ts_origin = ts_origin;
    b.seed = seed;
    return GenerateBurstStream(schema, b);
  }
  if (kind == "kleene") {
    KleeneBombOptions k;
    k.num_events = options.events_per_cycle;
    k.ts_origin = ts_origin;
    k.seed = seed;
    return GenerateKleeneBomb(schema, k);
  }
  return Status::InvalidArgument("soak: unknown workload '" + kind + "'");
}

std::string CycleKind(const SoakOptions& options, int cycle) {
  if (options.workload != "mixed") return options.workload;
  static const char* kRotation[] = {"kleene", "burst", "drift"};
  return kRotation[cycle % 3];
}

/// Parses "CYCLE:LIVE;CYCLE:LIVE" into (cycle -> live) pairs.
Result<std::vector<std::pair<int, int>>> ParseScaleSchedule(
    const SoakOptions& options) {
  std::vector<std::pair<int, int>> schedule;
  std::istringstream in(options.scale_schedule);
  std::string entry;
  while (std::getline(in, entry, ';')) {
    if (entry.empty()) continue;
    const size_t colon = entry.find(':');
    int cycle = -1;
    int live = -1;
    try {
      if (colon != std::string::npos) {
        cycle = std::stoi(entry.substr(0, colon));
        live = std::stoi(entry.substr(colon + 1));
      }
    } catch (...) {
      cycle = -1;  // fall through to the error below
    }
    if (colon == std::string::npos || cycle < 0 || live < 1) {
      return Status::InvalidArgument(
          "soak: bad scale-schedule entry '" + entry +
          "' (want CYCLE:LIVE with CYCLE >= 0 and LIVE >= 1)");
    }
    if (cycle < options.warmup_cycles) {
      return Status::InvalidArgument(
          "soak: scale-schedule resizes cycle " + std::to_string(cycle) +
          " inside warmup (the boundedness baseline is established at "
          "num_shards)");
    }
    if (cycle >= options.cycles) {
      return Status::InvalidArgument(
          "soak: scale-schedule cycle " + std::to_string(cycle) +
          " is past the last cycle");
    }
    if (!schedule.empty() && cycle <= schedule.back().first) {
      return Status::InvalidArgument(
          "soak: scale-schedule cycles must be strictly increasing");
    }
    schedule.push_back({cycle, live});
  }
  return schedule;
}

/// The engine-level mirror of ShardRuntime::MigrateState: moves every
/// partial match whose hash owner under `new_live` differs from its
/// current engine, donor by donor — chains by reference, recipients pin
/// the donors' arenas. Returns the number of partial matches moved.
uint64_t MigrateSoakState(std::vector<SoakShard>* shards, int old_live,
                          int new_live, int id_attr,
                          obs::MetricsRegistry* registry) {
  std::vector<std::vector<MigratedState>> transfer(shards->size());
  uint64_t moved_pms = 0;
  for (int d = 0; d < old_live; ++d) {
    Engine* donor = (*shards)[static_cast<size_t>(d)].engine.get();
    for (int r = 0; r < new_live; ++r) {
      if (r == d) continue;
      MigratedState moved = donor->ExtractPartialMatches(
          [id_attr, r, new_live](const PartialMatch& pm) {
            const Event* e = pm.LastEvent();
            if (e == nullptr) return false;
            return ShardRuntime::ShardOfKey(e->attr(id_attr), new_live) == r;
          });
      if (moved.empty()) continue;
      moved_pms += moved.size();
      registry->shard(d)->migrated_pms.Add(moved.size());
      registry->shard(d)->migrated_bytes.Add(moved.approx_bytes);
      transfer[static_cast<size_t>(r)].push_back(std::move(moved));
    }
  }
  for (size_t r = 0; r < transfer.size(); ++r) {
    for (MigratedState& moved : transfer[r]) {
      (*shards)[r].engine->AdoptPartialMatches(std::move(moved));
    }
  }
  return moved_pms;
}

}  // namespace

SoakRunner::SoakRunner(SoakOptions options) : options_(std::move(options)) {
  registry_.EnsureShards(std::max(1, options_.num_shards));
}

Result<SoakReport> SoakRunner::Run() {
  if (options_.num_shards < 1) {
    return Status::InvalidArgument("soak: num_shards must be >= 1");
  }
  if (options_.cycles < 1 || options_.warmup_cycles < 1 ||
      options_.warmup_cycles >= options_.cycles) {
    return Status::InvalidArgument(
        "soak: need 1 <= warmup_cycles < cycles");
  }
  if (options_.workload != "mixed" && options_.workload != "drift" &&
      options_.workload != "burst" && options_.workload != "kleene") {
    return Status::InvalidArgument("soak: unknown workload '" +
                                   options_.workload + "'");
  }

  auto schedule_or = ParseScaleSchedule(options_);
  if (!schedule_or.ok()) return schedule_or.status();
  const std::vector<std::pair<int, int>>& schedule = *schedule_or;

  const Schema schema = MakeDs1Schema();
  CEPSHED_ASSIGN_OR_RETURN(Query query,
                           queries::Q2(options_.kleene_reps, options_.window));
  CEPSHED_ASSIGN_OR_RETURN(std::shared_ptr<Nfa> nfa,
                           Nfa::Compile(std::move(query), &schema));
  const int id_attr = schema.AttributeIndex("ID");

  // Provision engines for the widest point of the schedule up front —
  // scale-up re-activates a parked engine, it never constructs one
  // mid-run (mirrors the runtime's logical-retirement model).
  const int num_shards = options_.num_shards;
  int effective_max = num_shards;
  for (const auto& [cycle, target] : schedule) {
    effective_max = std::max(effective_max, target);
  }
  registry_.EnsureShards(effective_max);
  std::vector<SoakShard> shards(static_cast<size_t>(effective_max));
  for (int s = 0; s < effective_max; ++s) {
    SoakShard& shard = shards[static_cast<size_t>(s)];
    shard.engine = std::make_unique<Engine>(nfa, EngineOptions{});
    OverloadGuard::Options g;
    g.enabled = true;
    g.theta = options_.guard_theta;
    g.memory_budget_bytes = options_.memory_budget_bytes;
    g.seed = options_.seed ^ (0x6f766572ULL + static_cast<uint64_t>(s));
    shard.guard = std::make_unique<OverloadGuard>(g);
    shard.guard->Attach(shard.engine.get());
    shard.guard->set_obs(registry_.shard(s), s);
  }

  SoakReport report;
  const auto run_start = std::chrono::steady_clock::now();
  Timestamp ts_origin = 0;
  std::vector<Match> scratch;
  int live = num_shards;
  size_t next_resize = 0;
  registry_.shard(0)->live_shards.Set(live);

  for (int cycle = 0; cycle < options_.cycles; ++cycle) {
    const std::string kind = CycleKind(options_, cycle);
    CEPSHED_ASSIGN_OR_RETURN(
        EventStream stream, GenerateCycle(schema, kind, options_, cycle, ts_origin));

    SoakCycleStats stats;
    stats.cycle = cycle;
    stats.workload = kind;

    if (next_resize < schedule.size() &&
        schedule[next_resize].first == cycle) {
      const int new_live = schedule[next_resize].second;
      ++next_resize;
      if (new_live != live) {
        stats.migrated_pms =
            MigrateSoakState(&shards, live, new_live, id_attr, &registry_);
        stats.resized = true;
        live = new_live;
        registry_.shard(0)->migrations_total.Add();
        registry_.shard(0)->live_shards.Set(live);
      }
    }
    stats.live_shards = live;
    const auto cycle_start = std::chrono::steady_clock::now();

    for (const EventPtr& event : stream) {
      const int s = ShardRuntime::ShardOfKey(event->attr(id_attr), live);
      SoakShard& shard = shards[static_cast<size_t>(s)];
      obs::ShardObs* obs = registry_.shard(s);
      obs->events_routed.Add();
      ++stats.events;

      if (shard.guard->ShouldDropInput(event->seq())) {
        obs->events_dropped_guard.Add();
        ++stats.guard_drops;
        shard.guard->Observe(shard.monitor.Current(), 0, 0, event->timestamp());
        continue;
      }

      scratch.clear();
      const double cost = shard.engine->Process(event, &scratch);
      shard.monitor.Record(cost);
      obs->events_processed.Add();
      obs->event_cost.Record(cost);
      if (!scratch.empty()) {
        obs->matches_emitted.Add(scratch.size());
        stats.matches += scratch.size();
      }
      shard.guard->Observe(shard.monitor.Current(), 0, 0, event->timestamp());

      const Engine& e = *shard.engine;
      const size_t state = e.ApproxStateBytes();
      const size_t live = e.store().arena().LiveBytes();
      const size_t flat = e.FlatCacheSize();
      obs->state_bytes.Set(static_cast<int64_t>(state));
      obs->arena_live_bytes.Set(static_cast<int64_t>(live));
      obs->arena_capacity_bytes.Set(
          static_cast<int64_t>(e.store().arena().CapacityBytes()));
      obs->flat_cache_entries.Set(static_cast<int64_t>(flat));
      stats.state_bytes_peak = std::max(stats.state_bytes_peak, state);
      stats.arena_live_bytes_peak = std::max(stats.arena_live_bytes_peak, live);
      stats.flat_cache_peak = std::max(stats.flat_cache_peak, flat);
    }

    // Watermark vacuum at the cycle boundary. Expiry is otherwise driven
    // by Process, so a shard whose guard sheds 100% of its input would
    // never sweep its window again: state frozen, memory signal frozen,
    // guard pinned at its rung — an expiry-starvation livelock (and, after
    // a shrink, retired arenas that never drain). The stream's clock
    // advances regardless of what any one shard processes; model that.
    if (stream.size() > 0) {
      const Timestamp watermark = stream[stream.size() - 1]->timestamp();
      for (int s = 0; s < effective_max; ++s) {
        shards[static_cast<size_t>(s)].engine->Vacuum(watermark);
      }
    }

    for (int s = 0; s < effective_max; ++s) {
      const SoakShard& shard = shards[static_cast<size_t>(s)];
      stats.arena_capacity_bytes_end =
          std::max(stats.arena_capacity_bytes_end,
                   shard.engine->store().arena().CapacityBytes());
      stats.audit_retained = std::max(
          stats.audit_retained, registry_.shard(s)->audit.Snapshot().size());
      stats.evictions += shard.guard->stats().trims +
                         shard.guard->stats().emergency_evictions;
      // Retired engines keep their arenas alive only while recipients still
      // reference chain nodes allocated there; this sum is the leak gauge.
      if (s >= live) {
        stats.legacy_arena_bytes_end +=
            shard.engine->store().arena().LiveBytes();
      }
    }
    registry_.shard(0)->arena_legacy_bytes.Set(
        static_cast<int64_t>(stats.legacy_arena_bytes_end));
    stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      cycle_start)
            .count();

    report.total_events += stats.events;
    report.total_matches += stats.matches;
    report.cycles.push_back(std::move(stats));

    if (stream.size() > 0) {
      // Chain cycles on one event-time axis so window expiry keeps working.
      ts_origin = stream[stream.size() - 1]->timestamp() + 1;
    }

    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      run_start)
            .count();
    if (options_.wall_limit_seconds > 0 &&
        elapsed >= options_.wall_limit_seconds &&
        cycle + 1 < options_.cycles) {
      report.truncated = true;
      break;
    }
  }
  report.total_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start)
          .count();

  // Boundedness: baseline = per-gauge max over the warmup cycles; every
  // later cycle must stay within slack * max(baseline, floor).
  const int warmup =
      std::min(options_.warmup_cycles, static_cast<int>(report.cycles.size()));
  size_t base_state = 0, base_live = 0, base_cap = 0, base_flat = 0;
  for (int c = 0; c < warmup; ++c) {
    const SoakCycleStats& w = report.cycles[static_cast<size_t>(c)];
    base_state = std::max(base_state, w.state_bytes_peak);
    base_live = std::max(base_live, w.arena_live_bytes_peak);
    base_cap = std::max(base_cap, w.arena_capacity_bytes_end);
    base_flat = std::max(base_flat, w.flat_cache_peak);
  }
  const auto allowed = [&](size_t baseline, size_t floor) {
    return static_cast<size_t>(options_.slack *
                               static_cast<double>(std::max(baseline, floor)));
  };
  const auto fail = [&](const SoakCycleStats& c, const char* gauge,
                        size_t value, size_t limit) {
    if (!report.bounded) return;  // keep the first violation
    std::ostringstream msg;
    msg << "cycle " << c.cycle << " (" << c.workload << "): " << gauge << " = "
        << value << " exceeds " << limit << " (slack " << options_.slack
        << " over warmup baseline)";
    report.bounded = false;
    report.violation = msg.str();
  };
  for (size_t i = static_cast<size_t>(warmup); i < report.cycles.size(); ++i) {
    const SoakCycleStats& c = report.cycles[i];
    if (c.state_bytes_peak > allowed(base_state, kBytesFloor)) {
      fail(c, "state_bytes_peak", c.state_bytes_peak,
           allowed(base_state, kBytesFloor));
    }
    if (c.arena_live_bytes_peak > allowed(base_live, kBytesFloor)) {
      fail(c, "arena_live_bytes_peak", c.arena_live_bytes_peak,
           allowed(base_live, kBytesFloor));
    }
    if (c.arena_capacity_bytes_end > allowed(base_cap, kBytesFloor)) {
      fail(c, "arena_capacity_bytes_end", c.arena_capacity_bytes_end,
           allowed(base_cap, kBytesFloor));
    }
    if (c.flat_cache_peak > allowed(base_flat, kEntriesFloor)) {
      fail(c, "flat_cache_peak", c.flat_cache_peak,
           allowed(base_flat, kEntriesFloor));
    }
    if (c.audit_retained > obs::AuditRing::kCapacity) {
      fail(c, "audit_retained", c.audit_retained, obs::AuditRing::kCapacity);
    }
    // Migration-leak invariant: a shrink leaves recipients holding chain
    // nodes homed in retired arenas, which is fine *transiently* — windows
    // expire within a cycle. Once the live count has been stable for this
    // cycle and the previous one, anything still owed to a retired arena
    // is a leaked reference.
    const SoakCycleStats& prev = report.cycles[i - 1];
    if (!c.resized && !prev.resized &&
        c.legacy_arena_bytes_end > kBytesFloor) {
      fail(c, "legacy_arena_bytes_end", c.legacy_arena_bytes_end, kBytesFloor);
    }
  }
  return report;
}

std::string RenderSoakJson(const SoakOptions& options, const SoakReport& report) {
  std::ostringstream out;
  out << "{\"options\":{\"num_shards\":" << options.num_shards
      << ",\"cycles\":" << options.cycles
      << ",\"events_per_cycle\":" << options.events_per_cycle
      << ",\"workload\":\"" << options.workload << "\""
      << ",\"kleene_reps\":" << options.kleene_reps
      << ",\"window\":\"" << options.window << "\""
      << ",\"guard_theta\":" << options.guard_theta
      << ",\"memory_budget_bytes\":" << options.memory_budget_bytes
      << ",\"warmup_cycles\":" << options.warmup_cycles
      << ",\"slack\":" << options.slack
      << ",\"seed\":" << options.seed
      << ",\"scale_schedule\":\"" << options.scale_schedule << "\"}";
  out << ",\"bounded\":" << (report.bounded ? "true" : "false");
  out << ",\"truncated\":" << (report.truncated ? "true" : "false");
  out << ",\"violation\":\"" << report.violation << "\"";
  out << ",\"total_events\":" << report.total_events;
  out << ",\"total_matches\":" << report.total_matches;
  out << ",\"total_wall_seconds\":" << report.total_wall_seconds;
  out << ",\"cycles\":[";
  for (size_t i = 0; i < report.cycles.size(); ++i) {
    const SoakCycleStats& c = report.cycles[i];
    if (i > 0) out << ",";
    out << "{\"cycle\":" << c.cycle << ",\"workload\":\"" << c.workload << "\""
        << ",\"events\":" << c.events << ",\"matches\":" << c.matches
        << ",\"guard_drops\":" << c.guard_drops
        << ",\"evictions\":" << c.evictions
        << ",\"state_bytes_peak\":" << c.state_bytes_peak
        << ",\"arena_live_bytes_peak\":" << c.arena_live_bytes_peak
        << ",\"arena_capacity_bytes_end\":" << c.arena_capacity_bytes_end
        << ",\"flat_cache_peak\":" << c.flat_cache_peak
        << ",\"audit_retained\":" << c.audit_retained
        << ",\"live_shards\":" << c.live_shards
        << ",\"resized\":" << (c.resized ? "true" : "false")
        << ",\"migrated_pms\":" << c.migrated_pms
        << ",\"legacy_arena_bytes_end\":" << c.legacy_arena_bytes_end
        << ",\"wall_seconds\":" << c.wall_seconds << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace lab
}  // namespace cepshed
