// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/shed/shedding_set.h"

#include <map>

#include "src/opt/knapsack.h"

namespace cepshed {

namespace {

// Per-witness bookkeeping cost charged as consumption (storage plus
// amortized veto checks).
constexpr double kWitnessOmega = 0.5;

}  // namespace

std::vector<SheddingSetItem> SelectSheddingSet(Engine* engine, const CostModel& model,
                                               double violation, Timestamp now,
                                               KnapsackMode mode) {
  if (violation <= 0.0) return {};
  if (violation > 0.999) violation = 0.999;

  // Group live matches by (state, class, slice).
  struct GroupKey {
    int state;
    int32_t cls;
    int slice;
    bool operator<(const GroupKey& o) const {
      if (state != o.state) return state < o.state;
      if (cls != o.cls) return cls < o.cls;
      return slice < o.slice;
    }
  };
  std::map<GroupKey, size_t> counts;
  engine->store().ForEachAlive([&](PartialMatch* pm) {
    int32_t cls = pm->class_label;
    if (cls < 0) cls = 0;
    const int slice = model.SliceOfAge(now - pm->start_ts);
    ++counts[GroupKey{pm->state, cls, slice}];
  });
  std::vector<size_t> witness_counts(
      static_cast<size_t>(engine->store().num_witness_buckets()), 0);
  engine->store().ForEachAliveWitness(
      [&](PartialMatch* pm) { ++witness_counts[static_cast<size_t>(pm->negated_elem)]; });

  std::vector<SheddingSetItem> groups;
  double total_plus = 0.0;
  double total_minus = 0.0;
  for (const auto& [key, n] : counts) {
    SheddingSetItem item;
    item.state = key.state;
    item.cls = key.cls;
    item.slice = key.slice;
    item.pm_count = n;
    item.delta_plus =
        static_cast<double>(n) * model.Contribution(key.state, key.cls, key.slice);
    item.delta_minus =
        static_cast<double>(n) * model.Consumption(key.state, key.cls, key.slice);
    total_plus += item.delta_plus;
    total_minus += item.delta_minus;
    groups.push_back(item);
  }
  for (size_t ne = 0; ne < witness_counts.size(); ++ne) {
    if (witness_counts[ne] == 0) continue;
    SheddingSetItem item;
    item.is_witness_group = true;
    item.negated_elem = static_cast<int>(ne);
    item.pm_count = witness_counts[ne];
    item.delta_plus = 0.0;  // witnesses never generate matches
    item.delta_minus = static_cast<double>(witness_counts[ne]) * kWitnessOmega;
    total_minus += item.delta_minus;
    groups.push_back(item);
  }
  if (groups.empty() || total_minus <= 0.0) return {};

  // Normalize to the relative shares of Eqs. (5) and (7).
  std::vector<KnapsackItem> items;
  items.reserve(groups.size());
  for (auto& g : groups) {
    g.delta_plus = total_plus > 0.0 ? g.delta_plus / total_plus : 0.0;
    g.delta_minus /= total_minus;
    items.push_back(KnapsackItem{g.delta_plus, g.delta_minus});
  }

  const std::vector<size_t> chosen =
      mode == KnapsackMode::kDP ? SolveCoveringKnapsackDP(items, violation)
                                : SolveCoveringKnapsackGreedy(items, violation);
  std::vector<bool> in_selection(groups.size(), false);
  for (size_t i : chosen) in_selection[i] = true;
  // Zero-contribution groups are free under the objective (Eq. 8
  // minimizes the Delta+ sum): among optimal solutions, prefer the one
  // with maximal savings by always including them.
  for (size_t i = 0; i < groups.size(); ++i) {
    if (groups[i].delta_plus <= 1e-12) in_selection[i] = true;
  }
  std::vector<SheddingSetItem> selected;
  for (size_t i = 0; i < groups.size(); ++i) {
    if (in_selection[i]) selected.push_back(groups[i]);
  }
  return selected;
}

}  // namespace cepshed
