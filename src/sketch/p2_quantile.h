// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// The P^2 (piecewise-parabolic) streaming quantile estimator of Jain &
// Chlamtac (1985). Used for the 95th/99th-percentile latency bounds of the
// paper's experiments and for quantile-threshold input shedding.
//
// The textbook algorithm assumes a continuous input distribution. CEP
// latencies are deterministic cost units, i.e. *atomic* distributions, on
// which the textbook marker updates degenerate: observations tied with a run
// of equal marker heights all land in the highest tied cell, starving the
// middle markers, and parabolic/linear interpolation then places marker
// heights inside empty value gaps, so Value() can drift far from any
// observed value. This implementation hardens the marker updates against
// that failure mode (see Add) while remaining bit-identical to the textbook
// algorithm on continuous streams.

#ifndef CEPSHED_SKETCH_P2_QUANTILE_H_
#define CEPSHED_SKETCH_P2_QUANTILE_H_

#include <cstddef>

namespace cepshed {

/// \brief Streaming estimator of a single quantile in O(1) space.
class P2Quantile {
 public:
  /// `q` in (0, 1), e.g. 0.95 for the 95th percentile.
  explicit P2Quantile(double q);

  /// Folds in one observation.
  void Add(double x);

  /// Current estimate (exact until five observations are seen).
  double Value() const;

  /// Observations seen.
  size_t Count() const { return count_; }

  void Reset();

 private:
  // Per-interior-marker evidence used to detect a persistent atom (a single
  // value carrying nearly all probability mass on one side of the marker).
  // `lo_run` / `hi_run` count the current run of *consecutive identical*
  // observations below / at-or-above the marker height.
  struct MarkerEvidence {
    size_t total = 0;   // observations accumulated since last reset
    size_t below = 0;   // of which strictly below heights_[i]
    double lo_value = 0;
    double hi_value = 0;
    size_t lo_run = 0;
    size_t hi_run = 0;
  };

  double Parabolic(int i, double d) const;
  double Linear(int i, double d) const;
  void ObserveEvidence(int i, double x);

  double q_;
  double heights_[5];
  double positions_[5];
  double desired_[5];
  double increments_[5];
  MarkerEvidence evidence_[5];
  size_t count_ = 0;
};

}  // namespace cepshed

#endif  // CEPSHED_SKETCH_P2_QUANTILE_H_
