// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Fig. 10 of the paper: temporal granularity of the cost model. DS1/Q1
// with a 2ms window under a 20% bound on the 95th-percentile latency,
// varying the number of time slices of the hybrid strategy (annotated
// Hybrid-1TS .. Hybrid-6TS in the paper) against the baselines.

#include "bench/bench_util.h"

using namespace cepshed;
using namespace cepshed::bench;

int main() {
  Header("Fig. 10a+10b", "DS1/Q1 (2ms window), 40% bound on the 95th-pct latency",
         kResultColumns);

  // Baselines once (they have no time-slice knob).
  {
    Ds1Options gen;
    gen.num_events = 25000;
    auto exp = PrepareDs1(*queries::Q1("2ms"), gen);
    for (StrategyKind kind :
         {StrategyKind::kRI, StrategyKind::kSI, StrategyKind::kRS, StrategyKind::kSS}) {
      PrintResultRow("-", exp.harness->RunBound(kind, 0.4, LatencyStat::kP95));
    }
  }

  for (int slices : {1, 2, 3, 4, 5, 6}) {
    Ds1Options gen;
    gen.num_events = 25000;
    HarnessOptions opts;
    opts.cost_model.num_time_slices = slices;
    auto exp = PrepareDs1(*queries::Q1("2ms"), gen, opts);
    ExperimentResult r = exp.harness->RunBound(StrategyKind::kHybrid, 0.4, LatencyStat::kP95);
    r.name = "Hybrid-" + std::to_string(slices) + "TS";
    PrintResultRow(std::to_string(slices), r);
  }
  return 0;
}
