// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Predicate compilation: lowers resolved WHERE-clause Expr trees into flat
// postfix bytecode executed by a tight switch-dispatch stack VM. The lowering
// runs once at NFA-compile time and performs
//
//  - constant folding (a pure-constant subtree collapses to one kConst whose
//    attached cost is exactly what the interpreter would have charged),
//  - short-circuit jumps for AND / OR / the n-ary-AVG non-numeric bailout,
//  - schema-driven type specialization: when the static types of both
//    operands are known from the schema, dedicated i64/f64 opcodes are
//    emitted whose fast path skips Value variant dispatch entirely (a tag
//    guard falls back to the generic handler, so mis-typed or null payloads
//    still evaluate with interpreter semantics), and
//  - common-subexpression sharing of attribute loads: every distinct
//    (element, selector, attribute) reference in the query gets one register;
//    repeated loads within one evaluation context (across a state's
//    bind/iter/close predicate lists) hit the register instead of re-walking
//    the binding.
//
// The VM accumulates the same abstract cost units as Expr::Eval on every
// path — the units feed the cost model's Gamma-, the offline estimator, and
// pm_probed_hook, so parity is a hard contract (fuzzed in expr_vm_test).
// Aggregates over Kleene bindings are not lowered; predicates containing
// them keep the interpreter, which remains the reference semantics.

#ifndef CEPSHED_CEP_PRED_VM_H_
#define CEPSHED_CEP_PRED_VM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/cep/expr.h"
#include "src/cep/schema.h"

namespace cepshed {

/// \brief A typed VM stack/register slot: the unboxed form of a Value.
///
/// Strings are borrowed (`s` points into the evaluated event's attribute or
/// the module's constant pool), so a slot is trivially copyable and carries
/// no destructor — the core advantage over the tagged Value variant on the
/// evaluation hot path.
struct VmSlot {
  static constexpr uint8_t kNull = 0;
  static constexpr uint8_t kInt = 1;
  static constexpr uint8_t kDouble = 2;
  static constexpr uint8_t kStr = 3;
  union {
    int64_t i;
    double d;
    const std::string* s;
  };
  uint8_t tag;
};

/// \brief Bytecode operations. Typed variants (…II / …DD) carry a tag guard
/// and fall back to the generic handler on mismatch.
enum class VmOp : uint8_t {
  kConst,     ///< push const_slots[a]; cost += costs[b] (folded-subtree cost)
  kPushNull,  ///< push null
  kPushBool,  ///< push int a (0/1)
  kAddCost,   ///< cost += costs[b]
  kLoadAttr,  ///< push attribute load a (register-cached); cost += basic
  // Arithmetic (cost += basic each).
  kAdd, kSub, kMul, kDiv, kMod,
  kAddII, kSubII, kMulII, kDivII, kModII,
  kAddDD, kSubDD, kMulDD, kDivDD,
  // Comparisons (cost += basic each).
  kEq, kNe, kLt, kLe, kGt, kGe,
  kEqII, kNeII, kLtII, kLeII, kGtII, kGeII,
  kEqDD, kNeDD, kLtDD, kLeDD, kGtDD, kGeDD,
  kNot,          ///< pop; push int !truthy
  kJmp,          ///< pc = a
  kJmpFalse,     ///< pop; if !truthy pc = a
  kJmpTrue,      ///< pop; if truthy pc = a
  kSqrt,         ///< pop; non-numeric -> null, else cost += sqrt-cost, eval
  kAbs,          ///< pop; non-numeric -> null, else cost += basic, eval
  kCheckNumJmp,  ///< if top non-numeric: pop 1+b slots, pc = a
  kAvgFin,       ///< pop a numeric slots, push their mean (f64)
  kInSet,        ///< cost += basic; pop; null -> null, else membership in set a
  // Fused compares (superinstructions): the dominant predicate shapes
  // `attr CMP attr` and `attr CMP literal` execute as a single dispatch that
  // performs the register-cached load(s) and the tag-guarded compare. Cost is
  // identical to the unfused sequence: basic per load plus basic for the
  // compare (AC literals carry zero folded cost by construction).
  kFEqAA, kFNeAA, kFLtAA, kFLeAA, kFGtAA, kFGeAA,  ///< load a CMP load b
  kFEqAC, kFNeAC, kFLtAC, kFLeAC, kFGtAC, kFGeAC,  ///< load a CMP const b
  kHalt,         ///< stop; result is the top of stack
};

/// \brief One fixed-width instruction. `a` is the primary operand (constant /
/// load / set index, jump target, arity), `b` the secondary (cost-pool index,
/// extra pop count).
struct VmInsn {
  VmOp op;
  uint16_t a = 0;
  uint16_t b = 0;
};

/// \brief One resolved attribute reference: which element's binding to read,
/// with which selector, and which schema attribute. Doubles as the register
/// id for load caching.
struct VmAttrLoad {
  int16_t elem = -1;
  int16_t attr = -1;
  RefSelector selector = RefSelector::kSingle;
};

/// \brief Per-engine mutable VM state: the attribute-load register file.
///
/// Registers are validated against an epoch the engine bumps whenever the
/// evaluation context changes (Engine::FillContext / per negation witness),
/// so loads repeated across one context's predicate lists are fetched once.
/// Engine-local, matching the engine's thread-confinement contract; the
/// module itself is immutable and shared.
class PredVmContext {
 public:
  /// Sizes the register file for a module with `num_loads` attribute loads.
  void Prepare(size_t num_loads) {
    regs_.assign(num_loads, VmSlot{{0}, VmSlot::kNull});
    epochs_.assign(num_loads, 0);
    epoch_ = 1;
  }

  /// Invalidates all cached loads (the evaluation context changed).
  void Invalidate() { ++epoch_; }

 private:
  friend class PredVmModule;
  std::vector<VmSlot> regs_;
  std::vector<uint64_t> epochs_;  ///< register valid iff epochs_[r] == epoch_
  uint64_t epoch_ = 1;
};

/// \brief The compiled predicate programs of one query. Immutable after
/// PredVmBuilder::Build; shared by every engine evaluating the query.
class PredVmModule {
 public:
  /// Evaluates program `prog` as a boolean predicate (interpreter truthiness:
  /// null and non-numerics are false). Adds the abstract work units performed
  /// to *cost if non-null — identical units to Expr::EvalBool.
  bool EvalBool(int prog, const EvalContext& ctx, PredVmContext* vmc,
                double* cost) const;

  /// Evaluates program `prog` to a Value (join-index build keys).
  Value Eval(int prog, const EvalContext& ctx, PredVmContext* vmc,
             double* cost) const;

  size_t num_loads() const { return loads_.size(); }
  int num_programs() const { return static_cast<int>(programs_.size()); }

  /// \brief Shape of a program that is exactly one fused attr-vs-constant
  /// compare — the batchable form Engine::BeginBatch precomputes over an
  /// event column: which element/attribute the single load reads, with
  /// which selector, and the compare against which constant.
  struct FusedAcSpec {
    int16_t elem = -1;
    int16_t attr = -1;
    RefSelector selector = RefSelector::kSingle;
    CmpOp op = CmpOp::kEq;
    VmSlot constant{{0}, VmSlot::kNull};
  };

  /// Fills *spec and returns true iff `prog` is a single fused AC compare.
  bool FusedAcProgram(int prog, FusedAcSpec* spec) const;

  /// The boolean outcome FusedCompare would produce for one lhs slot
  /// against `constant` (truthiness applied; no cost or register effects)
  /// — the reference semantics the engine's batched column kernels must
  /// reproduce bit for bit.
  static bool FusedAcResult(const VmSlot& lhs, const VmSlot& constant,
                            CmpOp op);

  /// Renders program `prog` one instruction per line, for diagnostics.
  std::string Disassemble(int prog) const;

 private:
  friend class PredVmBuilder;
  struct Program {
    std::vector<VmInsn> code;
  };

  PredVmModule() = default;

  VmSlot Run(const Program& p, const EvalContext& ctx, PredVmContext* vmc,
             double* cost) const;
  VmSlot CachedLoad(uint16_t r, const EvalContext& ctx, PredVmContext* vmc,
                    double* c) const;
  VmSlot FusedCompare(const VmInsn& in, const EvalContext& ctx,
                      PredVmContext* vmc, double* c) const;

  std::vector<VmAttrLoad> loads_;
  std::vector<Value> const_values_;
  std::vector<VmSlot> const_slots_;  ///< unboxed const_values_ (built last)
  std::vector<double> costs_;        ///< cost immediates (folded-subtree costs)
  std::vector<std::vector<Value>> set_values_;
  std::vector<std::vector<VmSlot>> set_slots_;
  std::vector<Program> programs_;
};

/// \brief Lowers resolved Expr trees into a shared PredVmModule. All
/// programs of one query go through one builder so attribute-load registers
/// are shared across them (cross-predicate CSE).
class PredVmBuilder {
 public:
  explicit PredVmBuilder(const Schema* schema) : schema_(schema) {}

  /// Lowers one resolved expression; returns its program index, or -1 when
  /// the expression is not compilable (contains an aggregate, is unresolved,
  /// or exceeds the VM's stack/code limits) and must keep the interpreter.
  int Add(const Expr& expr);

  /// Finalizes and returns the module. The builder is exhausted afterwards.
  std::shared_ptr<const PredVmModule> Build();

 private:
  struct EmitState;

  /// Static operand types inferred from the schema; specialization hints
  /// only — runtime tags are always guarded.
  enum class StaticType { kUnknown, kInt, kDouble, kString };

  StaticType EmitExpr(const Expr& e, EmitState* st);
  void EmitConst(Value v, double folded_cost, EmitState* st);
  uint16_t InternLoad(const Expr& ref);
  uint16_t InternCost(double cost);

  const Schema* schema_;
  std::unique_ptr<PredVmModule> module_{new PredVmModule()};
  std::map<std::tuple<int, int, int>, uint16_t> load_ids_;
  bool built_ = false;
};

}  // namespace cepshed

#endif  // CEPSHED_CEP_PRED_VM_H_
