# Empty dependencies file for bench_fig11_resource_costs.
# This may be replaced when dependencies are built.
