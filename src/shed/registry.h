// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// The shedding-strategy plug-in registry: strategies are constructed by
// name plus a "k=v,..." config string, through factories registered from
// their own translation units via static initializers. The harness, the
// multi-query runner and the CLI resolve strategies through this registry
// only — adding a strategy means adding one .cc file with a registrar, not
// touching controller/experiment/CLI code.
//
// Spec grammar:  NAME[:key=value[,key=value...]]
// e.g.           "ri", "hybrid:theta=12.5", "hspice:seed=42,delay=100"
// Names are case-insensitive; unknown names and malformed or unknown keys
// are InvalidArgument (the CLI surfaces them verbatim).

#ifndef CEPSHED_SHED_REGISTRY_H_
#define CEPSHED_SHED_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/cep/stream.h"
#include "src/common/result.h"
#include "src/shed/shedder.h"
#include "src/shed/shedding_set.h"

namespace cepshed {

class CostModel;
class HspiceTable;
class PositionalUtility;
class PspiceModel;
struct OfflineStats;

/// \brief Parsed "key=value,..." strategy configuration. Typed getters
/// return the default when the key is absent and InvalidArgument when the
/// value does not parse; factories call ExpectKeys so a typo'd key fails
/// loudly instead of being silently ignored.
class ShedderConfig {
 public:
  /// Splits "NAME[:k=v,...]" into the lowercased name and its config.
  /// Fails on empty names, empty keys, duplicate keys, and pairs without
  /// '='.
  static Result<std::pair<std::string, ShedderConfig>> ParseSpec(
      const std::string& spec);

  bool Has(const std::string& key) const;
  Result<double> GetDouble(const std::string& key, double def) const;
  Result<uint64_t> GetUint(const std::string& key, uint64_t def) const;

  /// Fails if the config holds any key outside `allowed`.
  Status ExpectKeys(std::initializer_list<const char*> allowed) const;

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// \brief Everything a factory may draw on: the operating point the caller
/// computed (bound or ratio, delays, seed) plus the trained substrate the
/// harness prepared. All pointers are borrowed and may be null — factories
/// fail with InvalidArgument when a required ingredient is missing, so a
/// context-free caller (e.g. a shard-runtime factory lambda) can still
/// construct the strategies that need none.
struct ShedderContext {
  /// Latency bound theta in cost units; <= 0 means not operating in
  /// latency-bound mode (a "theta" config key overrides).
  double theta = -1.0;
  /// Fixed-ratio fraction; < 0 means not operating in fixed-ratio mode (a
  /// "fraction" config key overrides). When both theta and fraction are
  /// given, fraction wins — mirroring the two harness entry points.
  double fixed_fraction = -1.0;
  /// Post-trigger delay for the one-shot baseline strategies.
  uint64_t trigger_delay = 250;
  /// Post-trigger delay for strategies with standing filters (hybrid).
  uint64_t hybrid_trigger_delay = 1000;
  /// Shedding period (events) for fixed-ratio state strategies.
  uint64_t state_shed_period = 500;
  uint64_t seed = 7;
  KnapsackMode solver = KnapsackMode::kDP;

  // Trained substrate (borrowed; factories copy what a run mutates).
  const OfflineStats* offline = nullptr;
  const CostModel* model = nullptr;
  const PositionalUtility* positional = nullptr;
  const HspiceTable* hspice = nullptr;
  const PspiceModel* pspice = nullptr;
  /// Sorted per-event training utilities (hybrid rho_I quantile scale).
  const std::vector<double>* utility_samples = nullptr;
  /// Training stream (fixed-ratio threshold calibration).
  const EventStream* train = nullptr;
};

/// \brief Name -> factory map, a Meyer singleton filled by static
/// registrars before main() runs.
class ShedderRegistry {
 public:
  using Factory = std::function<Result<std::unique_ptr<Shedder>>(
      const ShedderConfig&, const ShedderContext&)>;

  static ShedderRegistry& Instance();

  /// Registers a factory under a lowercase name; duplicate registration is
  /// a programming error and aborts.
  void Register(const std::string& name, Factory factory);

  /// Parses `spec` and constructs the strategy. Unknown names list the
  /// registered alternatives in the error message.
  Result<std::unique_ptr<Shedder>> Create(const std::string& spec,
                                          const ShedderContext& ctx) const;

  bool Has(const std::string& name) const;
  /// Registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Factory> factories_;
};

/// \brief The operating point shared by every strategy factory, resolved
/// from config keys with context fallbacks. Fixed-ratio wins when both a
/// ratio and a bound are present (matching the harness's two entry
/// points); a strategy with neither is rejected by the factory.
struct ResolvedMode {
  double theta = -1.0;
  double fraction = -1.0;
  uint64_t delay = 250;
  uint64_t period = 500;
  uint64_t seed = 7;
  bool fixed() const { return fraction >= 0.0; }
  bool bound() const { return !fixed() && theta > 0.0; }
};

/// Reads the common keys (theta, fraction, delay, period, seed) over the
/// context defaults. Does not call ExpectKeys — factories do, with their
/// full key set.
Result<ResolvedMode> ResolveMode(const ShedderConfig& config,
                                 const ShedderContext& ctx);

/// \brief One static instance per registered strategy (namespace scope in
/// the strategy's .cc).
struct ShedderRegistrar {
  ShedderRegistrar(const char* name, ShedderRegistry::Factory factory) {
    ShedderRegistry::Instance().Register(name, std::move(factory));
  }
};

/// Static-archive linking drops object files nothing references, taking
/// their registrars' static initializers with them. Each registering TU
/// defines one link token with this macro (inside namespace cepshed) and
/// registry.cc references them all, which forces every strategy TU into
/// any binary that uses the registry.
#define CEPSHED_SHEDDER_LINK_TOKEN(ident) \
  bool CepshedShedderLink_##ident() { return true; }

}  // namespace cepshed

#endif  // CEPSHED_SHED_REGISTRY_H_
