file(REMOVE_RECURSE
  "CMakeFiles/debug_hybrid.dir/debug_hybrid.cpp.o"
  "CMakeFiles/debug_hybrid.dir/debug_hybrid.cpp.o.d"
  "debug_hybrid"
  "debug_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
