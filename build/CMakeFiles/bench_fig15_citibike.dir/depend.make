# Empty dependencies file for bench_fig15_citibike.
# This may be replaced when dependencies are built.
