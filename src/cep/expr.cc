// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/cep/expr.h"

#include <cmath>
#include <sstream>

#include "src/cep/pattern.h"

namespace cepshed {

namespace {

// Shorthands for the shared work-unit constants (declared in expr.h so the
// bytecode VM charges the same units).
constexpr double kCostBasic = kExprCostBasic;
constexpr double kCostSqrt = kExprCostSqrt;

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
  }
  return "?";
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

const char* AggName(AggKind agg) {
  switch (agg) {
    case AggKind::kAvg: return "AVG";
    case AggKind::kSum: return "SUM";
    case AggKind::kMin: return "MIN";
    case AggKind::kMax: return "MAX";
    case AggKind::kCount: return "COUNT";
  }
  return "?";
}

const char* SelectorSuffix(RefSelector sel) {
  switch (sel) {
    case RefSelector::kSingle: return "";
    case RefSelector::kIterPrev: return "[i]";
    case RefSelector::kIterCurr: return "[i+1]";
    case RefSelector::kFirst: return "[first]";
    case RefSelector::kLast: return "[last]";
  }
  return "";
}

}  // namespace

ExprPtr Expr::Literal(Value v) {
  auto e = Ptr(new Expr(ExprKind::kLiteral));
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Attr(std::string var, RefSelector selector, std::string attr) {
  auto e = Ptr(new Expr(ExprKind::kAttrRef));
  e->var_name_ = std::move(var);
  e->selector_ = selector;
  e->attr_name_ = std::move(attr);
  return e;
}

ExprPtr Expr::Binary(BinOp op, Ptr lhs, Ptr rhs) {
  auto e = Ptr(new Expr(ExprKind::kBinary));
  e->bin_op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Compare(CmpOp op, Ptr lhs, Ptr rhs) {
  auto e = Ptr(new Expr(ExprKind::kCompare));
  e->cmp_op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::And(std::vector<Ptr> children) {
  auto e = Ptr(new Expr(ExprKind::kAnd));
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::Or(std::vector<Ptr> children) {
  auto e = Ptr(new Expr(ExprKind::kOr));
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::Not(Ptr child) {
  auto e = Ptr(new Expr(ExprKind::kNot));
  e->children_ = {std::move(child)};
  return e;
}

ExprPtr Expr::Func(FuncKind func, Ptr arg) {
  auto e = Ptr(new Expr(ExprKind::kFunc));
  e->func_ = func;
  e->children_ = {std::move(arg)};
  return e;
}

ExprPtr Expr::AvgN(std::vector<Ptr> children) {
  auto e = Ptr(new Expr(ExprKind::kFunc));
  e->func_ = FuncKind::kAvgN;
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::InSet(Ptr child, std::vector<Value> values) {
  auto e = Ptr(new Expr(ExprKind::kInSet));
  e->children_ = {std::move(child)};
  e->set_values_ = std::move(values);
  return e;
}

ExprPtr Expr::Aggregate(AggKind agg, std::string var, std::string attr) {
  auto e = Ptr(new Expr(ExprKind::kAggregate));
  e->agg_ = agg;
  e->var_name_ = std::move(var);
  e->attr_name_ = std::move(attr);
  return e;
}

Status Expr::Resolve(const std::vector<PatternElement>& elements, const Schema& schema) {
  if (resolved_) return Status::OK();
  if (kind_ == ExprKind::kAttrRef || kind_ == ExprKind::kAggregate) {
    elem_index_ = -1;
    for (size_t i = 0; i < elements.size(); ++i) {
      if (elements[i].variable == var_name_) {
        elem_index_ = static_cast<int>(i);
        break;
      }
    }
    if (elem_index_ < 0) {
      return Status::InvalidArgument("unknown pattern variable '" + var_name_ + "'");
    }
    attr_index_ = schema.AttributeIndex(attr_name_);
    if (attr_index_ < 0) {
      return Status::InvalidArgument("unknown attribute '" + attr_name_ + "'");
    }
    const bool kleene = elements[static_cast<size_t>(elem_index_)].kleene;
    if (kind_ == ExprKind::kAttrRef) {
      if (!kleene && selector_ != RefSelector::kSingle) {
        return Status::InvalidArgument("indexed reference on non-Kleene variable '" +
                                       var_name_ + "'");
      }
      if (kleene && selector_ == RefSelector::kSingle) {
        // Plain `a` on a Kleene variable means its latest binding.
        selector_ = RefSelector::kLast;
      }
    } else if (!kleene) {
      return Status::InvalidArgument("aggregate over non-Kleene variable '" +
                                     var_name_ + "'");
    }
  }
  for (const Ptr& child : children_) {
    CEPSHED_RETURN_NOT_OK(child->Resolve(elements, schema));
  }
  resolved_ = true;
  return Status::OK();
}

Value Expr::EvalAttr(const EvalContext& ctx) const {
  const int e = elem_index_;
  if (e == ctx.negated_elem && ctx.negated != nullptr) {
    return ctx.negated->attr(attr_index_);
  }
  const ElemBinding& b =
      (e >= 0 && e < ctx.num_elements) ? ctx.bindings[e] : ElemBinding{};
  if (e == ctx.current_elem && ctx.current != nullptr) {
    switch (selector_) {
      case RefSelector::kSingle:
      case RefSelector::kIterCurr:
      case RefSelector::kLast:
        return ctx.current->attr(attr_index_);
      case RefSelector::kIterPrev:
        if (b.count == 0) return Value();  // first iteration: see HasIterPrevRef
        return b.Last()->attr(attr_index_);
      case RefSelector::kFirst:
        if (b.count == 0) return ctx.current->attr(attr_index_);
        return b.First()->attr(attr_index_);
    }
    return Value();
  }
  if (b.count == 0) return Value();
  switch (selector_) {
    case RefSelector::kSingle:
    case RefSelector::kFirst:
      return b.First()->attr(attr_index_);
    case RefSelector::kLast:
    case RefSelector::kIterCurr:
      return b.Last()->attr(attr_index_);
    case RefSelector::kIterPrev:
      return b.PrevLast()->attr(attr_index_);
  }
  return Value();
}

Value Expr::EvalAggregate(const EvalContext& ctx, double* cost) const {
  const int e = elem_index_;
  const ElemBinding& b =
      (e >= 0 && e < ctx.num_elements) ? ctx.bindings[e] : ElemBinding{};
  const bool include_current = (e == ctx.current_elem && ctx.current != nullptr);
  const uint32_t n = b.count + (include_current ? 1u : 0u);
  if (cost != nullptr) *cost += kCostBasic * (1 + n);
  if (agg_ == AggKind::kCount) return Value(static_cast<int64_t>(n));
  if (n == 0) return Value();
  double sum = 0.0;
  double mn = 0.0;
  double mx = 0.0;
  bool first = true;
  auto fold = [&](const Value& v) {
    const double d = v.ToDouble();
    sum += d;
    if (first || d < mn) mn = d;
    if (first || d > mx) mx = d;
    first = false;
  };
  for (uint32_t i = 0; i < b.count; ++i) fold(b.events[i]->attr(attr_index_));
  if (include_current) fold(ctx.current->attr(attr_index_));
  switch (agg_) {
    case AggKind::kAvg: return Value(sum / n);
    case AggKind::kSum: return Value(sum);
    case AggKind::kMin: return Value(mn);
    case AggKind::kMax: return Value(mx);
    case AggKind::kCount: break;  // handled above
  }
  return Value();
}

Value Expr::Eval(const EvalContext& ctx, double* cost) const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kAttrRef:
      if (cost != nullptr) *cost += kCostBasic;
      return EvalAttr(ctx);
    case ExprKind::kBinary: {
      if (cost != nullptr) *cost += kCostBasic;
      const Value lhs = children_[0]->Eval(ctx, cost);
      const Value rhs = children_[1]->Eval(ctx, cost);
      if (lhs.is_null() || rhs.is_null()) return Value();
      if (lhs.type() == ValueType::kInt && rhs.type() == ValueType::kInt) {
        const int64_t a = lhs.AsInt();
        const int64_t b = rhs.AsInt();
        switch (bin_op_) {
          case BinOp::kAdd: return Value(a + b);
          case BinOp::kSub: return Value(a - b);
          case BinOp::kMul: return Value(a * b);
          case BinOp::kDiv: return b == 0 ? Value() : Value(a / b);
          case BinOp::kMod: return b == 0 ? Value() : Value(a % b);
        }
        return Value();
      }
      if (!lhs.is_numeric() || !rhs.is_numeric()) return Value();
      const double a = lhs.ToDouble();
      const double b = rhs.ToDouble();
      switch (bin_op_) {
        case BinOp::kAdd: return Value(a + b);
        case BinOp::kSub: return Value(a - b);
        case BinOp::kMul: return Value(a * b);
        case BinOp::kDiv: return b == 0.0 ? Value() : Value(a / b);
        case BinOp::kMod: return b == 0.0 ? Value() : Value(std::fmod(a, b));
      }
      return Value();
    }
    case ExprKind::kCompare: {
      if (cost != nullptr) *cost += kCostBasic;
      const Value lhs = children_[0]->Eval(ctx, cost);
      const Value rhs = children_[1]->Eval(ctx, cost);
      if (cmp_op_ == CmpOp::kEq) return Value(static_cast<int64_t>(lhs.Equals(rhs)));
      if (cmp_op_ == CmpOp::kNe) {
        if (lhs.is_null() || rhs.is_null()) return Value();
        return Value(static_cast<int64_t>(!lhs.Equals(rhs)));
      }
      const int c = lhs.Compare(rhs);
      if (c == -2) return Value();
      switch (cmp_op_) {
        case CmpOp::kLt: return Value(static_cast<int64_t>(c < 0));
        case CmpOp::kLe: return Value(static_cast<int64_t>(c <= 0));
        case CmpOp::kGt: return Value(static_cast<int64_t>(c > 0));
        case CmpOp::kGe: return Value(static_cast<int64_t>(c >= 0));
        default: return Value();
      }
    }
    case ExprKind::kAnd: {
      for (const Ptr& child : children_) {
        if (!child->EvalBool(ctx, cost)) return Value(static_cast<int64_t>(0));
      }
      return Value(static_cast<int64_t>(1));
    }
    case ExprKind::kOr: {
      for (const Ptr& child : children_) {
        if (child->EvalBool(ctx, cost)) return Value(static_cast<int64_t>(1));
      }
      return Value(static_cast<int64_t>(0));
    }
    case ExprKind::kNot:
      return Value(static_cast<int64_t>(!children_[0]->EvalBool(ctx, cost)));
    case ExprKind::kFunc: {
      if (func_ == FuncKind::kAvgN) {
        if (cost != nullptr) *cost += kCostBasic;
        double sum = 0.0;
        for (const Ptr& child : children_) {
          const Value v = child->Eval(ctx, cost);
          if (!v.is_numeric()) return Value();
          sum += v.ToDouble();
        }
        return children_.empty() ? Value() : Value(sum / static_cast<double>(children_.size()));
      }
      const Value v = children_[0]->Eval(ctx, cost);
      if (!v.is_numeric()) return Value();
      switch (func_) {
        case FuncKind::kSqrt: {
          if (cost != nullptr) *cost += kCostSqrt;
          const double d = v.ToDouble();
          return d < 0.0 ? Value() : Value(std::sqrt(d));
        }
        case FuncKind::kAbs:
          if (cost != nullptr) *cost += kCostBasic;
          return v.type() == ValueType::kInt ? Value(std::abs(v.AsInt()))
                                             : Value(std::fabs(v.ToDouble()));
        case FuncKind::kAvgN:
          break;  // handled above
      }
      return Value();
    }
    case ExprKind::kInSet: {
      if (cost != nullptr) *cost += kCostBasic;
      const Value v = children_[0]->Eval(ctx, cost);
      if (v.is_null()) return Value();
      for (const Value& member : set_values_) {
        if (v.Equals(member)) return Value(static_cast<int64_t>(1));
      }
      return Value(static_cast<int64_t>(0));
    }
    case ExprKind::kAggregate:
      return EvalAggregate(ctx, cost);
  }
  return Value();
}

bool Expr::EvalBool(const EvalContext& ctx, double* cost) const {
  const Value v = Eval(ctx, cost);
  if (v.is_null()) return false;
  switch (v.type()) {
    case ValueType::kInt: return v.AsInt() != 0;
    case ValueType::kDouble: return v.AsDouble() != 0.0;
    default: return false;
  }
}

int Expr::MaxElemRef() const {
  int max_ref = -1;
  if (kind_ == ExprKind::kAttrRef || kind_ == ExprKind::kAggregate) {
    max_ref = elem_index_;
  }
  for (const Ptr& child : children_) {
    const int c = child->MaxElemRef();
    if (c > max_ref) max_ref = c;
  }
  return max_ref;
}

bool Expr::RefsElem(int elem) const {
  if ((kind_ == ExprKind::kAttrRef || kind_ == ExprKind::kAggregate) &&
      elem_index_ == elem) {
    return true;
  }
  for (const Ptr& child : children_) {
    if (child->RefsElem(elem)) return true;
  }
  return false;
}

bool Expr::HasAggregate() const {
  if (kind_ == ExprKind::kAggregate) return true;
  for (const Ptr& child : children_) {
    if (child->HasAggregate()) return true;
  }
  return false;
}

bool Expr::HasIterPrevRef(int elem) const {
  if (kind_ == ExprKind::kAttrRef && elem_index_ == elem &&
      selector_ == RefSelector::kIterPrev) {
    return true;
  }
  for (const Ptr& child : children_) {
    if (child->HasIterPrevRef(elem)) return true;
  }
  return false;
}

void Expr::CollectAttrRefs(std::vector<const Expr*>* out) const {
  if (kind_ == ExprKind::kAttrRef) out->push_back(this);
  for (const Ptr& child : children_) child->CollectAttrRefs(out);
}

ExprPtr Expr::CloneReplacingSelector(int elem, RefSelector from, RefSelector to) const {
  auto clone = Ptr(new Expr(kind_));
  clone->literal_ = literal_;
  clone->var_name_ = var_name_;
  clone->attr_name_ = attr_name_;
  clone->selector_ = selector_;
  clone->elem_index_ = elem_index_;
  clone->attr_index_ = attr_index_;
  clone->bin_op_ = bin_op_;
  clone->cmp_op_ = cmp_op_;
  clone->func_ = func_;
  clone->agg_ = agg_;
  clone->set_values_ = set_values_;
  clone->resolved_ = resolved_;
  if (kind_ == ExprKind::kAttrRef && elem_index_ == elem && selector_ == from) {
    clone->selector_ = to;
  }
  clone->children_.reserve(children_.size());
  for (const Ptr& child : children_) {
    clone->children_.push_back(child->CloneReplacingSelector(elem, from, to));
  }
  return clone;
}

double Expr::StaticCost() const {
  double c = kind_ == ExprKind::kFunc && func_ == FuncKind::kSqrt ? kCostSqrt
                                                                  : kCostBasic;
  for (const Ptr& child : children_) c += child->StaticCost();
  return c;
}

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case ExprKind::kLiteral:
      os << literal_.ToString();
      break;
    case ExprKind::kAttrRef:
      os << var_name_ << SelectorSuffix(selector_) << "." << attr_name_;
      break;
    case ExprKind::kBinary:
      os << "(" << children_[0]->ToString() << BinOpName(bin_op_)
         << children_[1]->ToString() << ")";
      break;
    case ExprKind::kCompare:
      os << children_[0]->ToString() << CmpOpName(cmp_op_) << children_[1]->ToString();
      break;
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const char* sep = kind_ == ExprKind::kAnd ? " AND " : " OR ";
      os << "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) os << sep;
        os << children_[i]->ToString();
      }
      os << ")";
      break;
    }
    case ExprKind::kNot:
      os << "NOT " << children_[0]->ToString();
      break;
    case ExprKind::kFunc:
      if (func_ == FuncKind::kAvgN) {
        os << "AVG(";
        for (size_t i = 0; i < children_.size(); ++i) {
          if (i > 0) os << ", ";
          os << children_[i]->ToString();
        }
        os << ")";
      } else {
        os << (func_ == FuncKind::kSqrt ? "SQRT(" : "ABS(")
           << children_[0]->ToString() << ")";
      }
      break;
    case ExprKind::kInSet: {
      os << children_[0]->ToString() << " IN {";
      for (size_t i = 0; i < set_values_.size(); ++i) {
        if (i > 0) os << ",";
        os << set_values_[i].ToString();
      }
      os << "}";
      break;
    }
    case ExprKind::kAggregate:
      os << AggName(agg_) << "(" << var_name_ << "[]." << attr_name_ << ")";
      break;
  }
  return os.str();
}

}  // namespace cepshed
