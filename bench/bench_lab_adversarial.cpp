// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Adversarial-lab drift benchmark: quantifies what the hostile drift
// generator does to a *frozen* offline cost model versus the online-
// adapting one. Both arms train on the same stationary prefix regime and
// run the hybrid strategy under the same 40% average-latency bound over
// the same drifting test stream (C.V slides from [2,10] to [12,20] and
// the type mix tilts C-heavy across the drift window). The only
// difference is CostModelOptions::enable_online_adaptation.
//
// The static arm's utility classes mis-rank events once the drift
// completes, so its post-drift recall collapses; the adaptive arm's
// sketch-driven updates track the move. scripts/check_adversarial.py
// gates that separation from the JSON this binary writes (argv[1],
// default BENCH_lab.json) so the adaptation path cannot silently rot.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/workload/lab/hostile.h"

using namespace cepshed;
using namespace cepshed::bench;

namespace {

constexpr size_t kTrainEvents = 20000;
constexpr size_t kTestEvents = 30000;
constexpr size_t kDriftBegin = 10000;
constexpr size_t kDriftEnd = 20000;
constexpr Duration kGap = 10;  // us between events
constexpr double kBound = 0.4;

lab::DriftOptions BaseOptions() {
  lab::DriftOptions options;
  options.event_gap = kGap;
  options.c_v_min_start = 2;
  options.c_v_max_start = 10;
  options.c_v_min_end = 12;
  options.c_v_max_end = 20;
  options.type_weights_start[2] = 1.0;
  options.type_weights_end[2] = 2.0;  // drift also tilts the mix C-heavy
  return options;
}

struct ArmResult {
  std::string name;
  double recall_overall = 0.0;
  double recall_pre = 0.0;
  double recall_post = 0.0;
  double shed_event_ratio = 0.0;
  double violation_ratio = 0.0;
};

ArmResult RunArm(const std::string& name, bool adapt, const EventStream& train,
                 const EventStream& test) {
  PreparedExperiment exp;
  exp.schema = MakeDs1Schema();
  exp.harness = std::make_unique<ExperimentHarness>(&exp.schema, *queries::Q1("10ms"),
                                                    HarnessOptions{});
  exp.harness->mutable_options()->cost_model.enable_online_adaptation = adapt;
  if (!exp.harness->Prepare(train, test).ok()) std::abort();

  const ExperimentResult r = exp.harness->RunBound(StrategyKind::kHybrid, kBound);

  ArmResult arm;
  arm.name = name;
  arm.recall_overall = r.quality.recall;
  // Pre-drift: everything detected before the drift started. Post-drift:
  // the settled far-side regime, where a frozen model is most wrong.
  arm.recall_pre =
      ComputeQualityInRange(r.raw.matches, exp.harness->truth(), 0,
                            static_cast<Timestamp>(kDriftBegin) * kGap)
          .recall;
  arm.recall_post =
      ComputeQualityInRange(r.raw.matches, exp.harness->truth(),
                            static_cast<Timestamp>(kDriftEnd) * kGap,
                            static_cast<Timestamp>(kTestEvents) * kGap)
          .recall;
  arm.shed_event_ratio = r.shed_event_ratio;
  arm.violation_ratio = r.bound_violation_ratio;
  return arm;
}

void AppendArm(std::string* json, const ArmResult& arm, bool last) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    \"%s\": {\"recall_overall\": %.6f, \"recall_pre\": %.6f, "
                "\"recall_post\": %.6f, \"shed_event_ratio\": %.6f, "
                "\"violation_ratio\": %.6f}%s\n",
                arm.name.c_str(), arm.recall_overall, arm.recall_pre,
                arm.recall_post, arm.shed_event_ratio, arm.violation_ratio,
                last ? "" : ",");
  *json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_lab.json";

  const Schema schema = MakeDs1Schema();

  // Train on the stationary pre-drift regime: the drift window is pushed
  // past the end of the stream, so the generator emits the start
  // distribution throughout.
  lab::DriftOptions train_gen = BaseOptions();
  train_gen.num_events = kTrainEvents;
  train_gen.drift_begin = kTrainEvents;
  train_gen.drift_end = kTrainEvents + 1;
  train_gen.seed = 51;
  const EventStream train = lab::GenerateDriftStream(schema, train_gen);

  lab::DriftOptions test_gen = BaseOptions();
  test_gen.num_events = kTestEvents;
  test_gen.drift_begin = kDriftBegin;
  test_gen.drift_end = kDriftEnd;
  test_gen.seed = 52;
  const EventStream test = lab::GenerateDriftStream(schema, test_gen);

  Header("Lab drift", "DS1-schema drift stream, hybrid @ 40% avg-latency bound",
         "arm,recall_overall,recall_pre,recall_post,shed_event_ratio,violation_ratio");

  const ArmResult arms[] = {
      RunArm("static", /*adapt=*/false, train, test),
      RunArm("adaptive", /*adapt=*/true, train, test),
  };
  for (const ArmResult& arm : arms) {
    std::printf("%s,%.4f,%.4f,%.4f,%.4f,%.4f\n", arm.name.c_str(),
                arm.recall_overall, arm.recall_pre, arm.recall_post,
                arm.shed_event_ratio, arm.violation_ratio);
  }

  std::string json = "{\n";
  json += "  \"bench\": \"lab_adversarial_drift\",\n";
  json += "  \"bound_fraction\": 0.4,\n";
  json += "  \"drift\": {\"begin_event\": 10000, \"end_event\": 20000, "
          "\"test_events\": 30000},\n";
  json += "  \"arms\": {\n";
  AppendArm(&json, arms[0], /*last=*/false);
  AppendArm(&json, arms[1], /*last=*/true);
  json += "  }\n}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("# wrote %s\n", out_path.c_str());
  return 0;
}
