# Empty dependencies file for bench_fig06_shed_selection.
# This may be replaced when dependencies are built.
