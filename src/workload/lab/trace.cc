// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/workload/lab/trace.h"

#include <cstring>

namespace cepshed {
namespace lab {

namespace {

constexpr char kMagic[8] = {'C', 'E', 'P', 'T', 'R', 'C', '0', '1'};
constexpr uint32_t kFlagRoutes = 1u;
constexpr uint32_t kFlagResizes = 2u;
/// Byte offsets of the flags/count/checksum header fields patched on Close.
constexpr std::streamoff kFlagsOffset = 8;
constexpr std::streamoff kCountOffset = 12;
constexpr std::streamoff kChecksumOffset = 20;

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t Fnv1a(uint64_t h, const char* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 8);
}

void PutDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, const std::string& s) {
  PutVarint(out, s.size());
  out->append(s);
}

/// Bounds-checked cursor over the raw file bytes. Every read reports
/// corruption as a ParseError instead of walking off the buffer.
class Cursor {
 public:
  Cursor(const std::string& data, size_t pos) : data_(data), pos_(pos) {}

  size_t pos() const { return pos_; }
  bool AtEnd() const { return pos_ >= data_.size(); }

  Result<uint64_t> Varint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= data_.size() || shift > 63) {
        return Status::ParseError("trace: truncated varint at byte " +
                                  std::to_string(pos_));
      }
      const uint8_t b = static_cast<uint8_t>(data_[pos_++]);
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  Result<uint32_t> U32() {
    if (pos_ + 4 > data_.size()) return Truncated();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<uint64_t> U64() {
    if (pos_ + 8 > data_.size()) return Truncated();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<double> Double() {
    uint64_t bits;
    CEPSHED_ASSIGN_OR_RETURN(bits, U64());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Result<uint8_t> Byte() {
    if (pos_ >= data_.size()) return Truncated();
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<std::string> String() {
    uint64_t len;
    CEPSHED_ASSIGN_OR_RETURN(len, Varint());
    if (pos_ + len > data_.size()) return Truncated();
    std::string s = data_.substr(pos_, len);
    pos_ += len;
    return s;
  }

 private:
  Status Truncated() const {
    return Status::ParseError("trace: truncated at byte " + std::to_string(pos_));
  }

  const std::string& data_;
  size_t pos_;
};

void SerializeEvent(const Event& event, const std::vector<int>* route,
                    std::string* out) {
  PutVarint(out, static_cast<uint64_t>(event.type()));
  PutVarint(out, ZigZag(event.timestamp()));
  PutVarint(out, event.seq());
  PutVarint(out, event.num_attrs());
  for (size_t a = 0; a < event.num_attrs(); ++a) {
    const Value& v = event.attr(static_cast<int>(a));
    out->push_back(static_cast<char>(v.type()));
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kInt:
        PutVarint(out, ZigZag(v.AsInt()));
        break;
      case ValueType::kDouble:
        PutDouble(out, v.AsDouble());
        break;
      case ValueType::kString:
        PutString(out, v.AsString());
        break;
    }
  }
  if (route != nullptr) {
    PutVarint(out, route->size());
    for (int shard : *route) PutVarint(out, static_cast<uint64_t>(shard));
  }
}

}  // namespace

Result<std::unique_ptr<TraceWriter>> TraceWriter::Open(const std::string& path,
                                                       const Schema& schema,
                                                       bool with_routes) {
  std::unique_ptr<TraceWriter> writer(new TraceWriter());
  writer->path_ = path;
  writer->with_routes_ = with_routes;
  writer->file_.open(path, std::ios::binary | std::ios::trunc | std::ios::in |
                               std::ios::out);
  if (!writer->file_.is_open()) {
    return Status::InvalidArgument("cannot create trace file " + path);
  }

  std::string header;
  header.append(kMagic, sizeof(kMagic));
  PutU32(&header, with_routes ? kFlagRoutes : 0u);
  PutU64(&header, 0);  // count, patched on Close
  PutU64(&header, 0);  // checksum, patched on Close
  PutU32(&header, static_cast<uint32_t>(schema.num_event_types()));
  for (size_t t = 0; t < schema.num_event_types(); ++t) {
    PutString(&header, schema.EventTypeName(static_cast<int>(t)));
  }
  PutU32(&header, static_cast<uint32_t>(schema.num_attributes()));
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const AttributeDef& def = schema.attribute(static_cast<int>(a));
    header.push_back(static_cast<char>(def.type));
    PutString(&header, def.name);
  }
  writer->file_.write(header.data(), static_cast<std::streamsize>(header.size()));
  if (!writer->file_) return Status::InvalidArgument("cannot write " + path);
  writer->checksum_ = kFnvOffset;
  return writer;
}

Status TraceWriter::AppendSerialized(const std::string& body) {
  if (closed_) return Status::InvalidArgument("trace writer already closed");
  file_.write(body.data(), static_cast<std::streamsize>(body.size()));
  if (!file_) return Status::InvalidArgument("cannot write " + path_);
  checksum_ = Fnv1a(checksum_, body.data(), body.size());
  ++num_events_;
  return Status::OK();
}

Status TraceWriter::Append(const Event& event) {
  if (with_routes_) {
    return Status::InvalidArgument(
        "trace was opened with routes; use the route overload");
  }
  std::string body;
  SerializeEvent(event, nullptr, &body);
  return AppendSerialized(body);
}

Status TraceWriter::Append(const Event& event, const std::vector<int>& route) {
  if (!with_routes_) {
    return Status::InvalidArgument(
        "trace was opened without routes; use the plain overload");
  }
  std::string body;
  SerializeEvent(event, &route, &body);
  return AppendSerialized(body);
}

void TraceWriter::RecordResize(uint64_t seq, int old_shards, int new_shards) {
  resizes_.push_back({seq, old_shards, new_shards});
}

Status TraceWriter::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  if (!resizes_.empty()) {
    // The resize section trails the events and is folded into the same
    // running checksum, so corruption anywhere in the file is caught.
    std::string section;
    PutVarint(&section, resizes_.size());
    for (const TraceResize& r : resizes_) {
      PutVarint(&section, r.seq);
      PutVarint(&section, static_cast<uint64_t>(r.old_shards));
      PutVarint(&section, static_cast<uint64_t>(r.new_shards));
    }
    file_.write(section.data(), static_cast<std::streamsize>(section.size()));
    checksum_ = Fnv1a(checksum_, section.data(), section.size());
    std::string flags;
    PutU32(&flags, (with_routes_ ? kFlagRoutes : 0u) | kFlagResizes);
    file_.seekp(kFlagsOffset);
    file_.write(flags.data(), static_cast<std::streamsize>(flags.size()));
  }
  std::string patch;
  PutU64(&patch, num_events_);
  PutU64(&patch, checksum_);
  file_.seekp(kCountOffset);
  file_.write(patch.data(), static_cast<std::streamsize>(patch.size()));
  file_.flush();
  if (!file_) return Status::InvalidArgument("cannot finalize " + path_);
  file_.close();
  return Status::OK();
}

TraceWriter::~TraceWriter() {
  // Deliberately no auto-Close: a writer that never reached Close leaves
  // the zero count/checksum in place, so the reader rejects the capture
  // instead of replaying a silently truncated run.
  if (file_.is_open()) file_.close();
}

Result<TraceData> ReadTrace(const std::string& path, size_t max_events) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::InvalidArgument("cannot open trace " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());

  if (data.size() < sizeof(kMagic) ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("not a CepShed trace (bad magic): " + path);
  }
  Cursor cur(data, sizeof(kMagic));
  uint32_t flags;
  uint64_t count;
  uint64_t checksum;
  CEPSHED_ASSIGN_OR_RETURN(flags, cur.U32());
  CEPSHED_ASSIGN_OR_RETURN(count, cur.U64());
  CEPSHED_ASSIGN_OR_RETURN(checksum, cur.U64());
  if (count == 0 && checksum == 0 && data.size() > kChecksumOffset + 8 + 8) {
    // Placeholder header with trailing bytes: the recorder never Closed.
    return Status::ParseError("trace was never finalized (missing Close): " + path);
  }
  const bool has_routes = (flags & kFlagRoutes) != 0;

  auto schema = std::make_unique<Schema>();
  uint32_t num_types;
  CEPSHED_ASSIGN_OR_RETURN(num_types, cur.U32());
  for (uint32_t t = 0; t < num_types; ++t) {
    std::string name;
    CEPSHED_ASSIGN_OR_RETURN(name, cur.String());
    CEPSHED_RETURN_NOT_OK(schema->AddEventType(std::move(name)).status());
  }
  uint32_t num_attrs;
  CEPSHED_ASSIGN_OR_RETURN(num_attrs, cur.U32());
  for (uint32_t a = 0; a < num_attrs; ++a) {
    uint8_t tag;
    CEPSHED_ASSIGN_OR_RETURN(tag, cur.Byte());
    std::string name;
    CEPSHED_ASSIGN_OR_RETURN(name, cur.String());
    CEPSHED_RETURN_NOT_OK(
        schema->AddAttribute(std::move(name), static_cast<ValueType>(tag)).status());
  }

  const size_t event_section_start = cur.pos();
  TraceData trace(std::move(schema));
  const uint64_t want = max_events > 0 && max_events < count
                            ? static_cast<uint64_t>(max_events)
                            : count;
  for (uint64_t i = 0; i < want; ++i) {
    uint64_t type_v;
    uint64_t ts_v;
    uint64_t seq;
    uint64_t nattrs;
    CEPSHED_ASSIGN_OR_RETURN(type_v, cur.Varint());
    CEPSHED_ASSIGN_OR_RETURN(ts_v, cur.Varint());
    CEPSHED_ASSIGN_OR_RETURN(seq, cur.Varint());
    CEPSHED_ASSIGN_OR_RETURN(nattrs, cur.Varint());
    std::vector<Value> attrs;
    attrs.reserve(nattrs);
    for (uint64_t a = 0; a < nattrs; ++a) {
      uint8_t tag;
      CEPSHED_ASSIGN_OR_RETURN(tag, cur.Byte());
      switch (static_cast<ValueType>(tag)) {
        case ValueType::kNull:
          attrs.emplace_back();
          break;
        case ValueType::kInt: {
          uint64_t v;
          CEPSHED_ASSIGN_OR_RETURN(v, cur.Varint());
          attrs.emplace_back(UnZigZag(v));
          break;
        }
        case ValueType::kDouble: {
          double v;
          CEPSHED_ASSIGN_OR_RETURN(v, cur.Double());
          attrs.emplace_back(v);
          break;
        }
        case ValueType::kString: {
          std::string v;
          CEPSHED_ASSIGN_OR_RETURN(v, cur.String());
          attrs.emplace_back(std::move(v));
          break;
        }
        default:
          return Status::ParseError("trace: unknown value tag " +
                                    std::to_string(tag) + " in event " +
                                    std::to_string(i));
      }
    }
    // Append (not Emit) preserves the recorded sequence numbers: shedders
    // and guards hash event.seq(), so replay fidelity depends on it.
    CEPSHED_RETURN_NOT_OK(trace.stream.Append(std::make_shared<Event>(
        static_cast<int>(type_v), UnZigZag(ts_v), seq, std::move(attrs))));
    if (has_routes) {
      uint64_t nroutes;
      CEPSHED_ASSIGN_OR_RETURN(nroutes, cur.Varint());
      std::vector<int> route;
      route.reserve(nroutes);
      for (uint64_t r = 0; r < nroutes; ++r) {
        uint64_t shard;
        CEPSHED_ASSIGN_OR_RETURN(shard, cur.Varint());
        route.push_back(static_cast<int>(shard));
      }
      trace.routes.push_back(std::move(route));
    }
  }

  if (want == count) {
    if ((flags & kFlagResizes) != 0) {
      uint64_t nresizes;
      CEPSHED_ASSIGN_OR_RETURN(nresizes, cur.Varint());
      trace.resizes.reserve(nresizes);
      for (uint64_t r = 0; r < nresizes; ++r) {
        TraceResize resize;
        CEPSHED_ASSIGN_OR_RETURN(resize.seq, cur.Varint());
        uint64_t old_shards;
        uint64_t new_shards;
        CEPSHED_ASSIGN_OR_RETURN(old_shards, cur.Varint());
        CEPSHED_ASSIGN_OR_RETURN(new_shards, cur.Varint());
        resize.old_shards = static_cast<int>(old_shards);
        resize.new_shards = static_cast<int>(new_shards);
        if (resize.old_shards < 1 || resize.new_shards < 1 ||
            resize.old_shards == resize.new_shards) {
          return Status::ParseError("trace: nonsensical resize " +
                                    std::to_string(old_shards) + " -> " +
                                    std::to_string(new_shards) + " at entry " +
                                    std::to_string(r));
        }
        trace.resizes.push_back(resize);
      }
    }
    if (!cur.AtEnd()) {
      return Status::ParseError("trace: " +
                                std::to_string(data.size() - cur.pos()) +
                                " trailing bytes after the last event");
    }
    const uint64_t actual = Fnv1a(kFnvOffset, data.data() + event_section_start,
                                  data.size() - event_section_start);
    if (actual != checksum) {
      return Status::ParseError("trace checksum mismatch (corrupt capture): " +
                                path);
    }
  }
  return trace;
}

Status WriteTrace(const EventStream& stream, const std::string& path) {
  std::unique_ptr<TraceWriter> writer;
  CEPSHED_ASSIGN_OR_RETURN(writer, TraceWriter::Open(path, stream.schema(), false));
  for (const EventPtr& event : stream) {
    CEPSHED_RETURN_NOT_OK(writer->Append(*event));
  }
  return writer->Close();
}

std::string ResizeScheduleSpec(const std::vector<TraceResize>& resizes) {
  std::string spec;
  for (const TraceResize& r : resizes) {
    if (!spec.empty()) spec += ';';
    spec += "resize:at=" + std::to_string(r.seq) +
            ",delta=" + std::to_string(r.new_shards - r.old_shards);
  }
  return spec;
}

}  // namespace lab
}  // namespace cepshed
