// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Synthetic bike-sharing trip stream standing in for the citibike dataset
// [11] the paper evaluates (the real October-2018 CSVs are not available
// offline; see DESIGN.md §3 on why this substitution preserves the
// relevant behaviour). The generator reproduces the properties the
// paper's 'hot paths' query (Listing 1) exercises:
//  - trips chain per bike: a trip starts where the bike's previous trip
//    ended, so `a[i+1].start = a[i].end` holds along real chains;
//  - rush-hour spikes multiply the trip rate and bias destinations toward
//    the hot stations {7,8,9}, producing the partial-match explosion of
//    Fig. 1;
//  - a categorical user type (subscriber/customer) correlates with
//    chain length, giving the SI/SS baselines something to exploit.

#ifndef CEPSHED_WORKLOAD_CITIBIKE_H_
#define CEPSHED_WORKLOAD_CITIBIKE_H_

#include <string>

#include "src/cep/schema.h"
#include "src/cep/stream.h"
#include "src/common/rng.h"
#include "src/workload/csv.h"

namespace cepshed {

/// Builds the citibike schema: type BikeTrip; attributes bike, start, end,
/// user (0 = subscriber, 1 = customer).
Schema MakeCitibikeSchema();

/// \brief Generator configuration.
struct CitibikeOptions {
  size_t num_events = 40000;
  int num_stations = 50;
  int num_bikes = 100;
  /// Mean microseconds between trips off-peak. The default spreads 40k
  /// trips over roughly 40 hours, giving each bike ~10 trips per one-hour
  /// window off-peak (4x that in rush hours) — enough for the hot-path
  /// chains of Listing 1 without drowning the engine.
  double base_gap = 3.6e6;
  /// Rush hours multiply the trip rate by this factor...
  double rush_rate_factor = 4.0;
  /// ...for windows of this length...
  Duration rush_length = Minutes(30);
  /// ...every this often.
  Duration rush_period = Hours(3);
  /// Probability that a trip ends at a hot station {7,8,9} off-peak /
  /// during rush hours.
  double hot_end_prob = 0.1;
  double hot_end_prob_rush = 0.35;
  /// Fraction of subscriber trips (user = 0). Subscribers commute and
  /// chain; customers joyride (their bike is "teleported" afterwards,
  /// breaking chains).
  double subscriber_fraction = 0.7;
  uint64_t seed = 3;
};

/// Generates a synthetic citibike trip stream.
EventStream GenerateCitibike(const Schema& schema, const CitibikeOptions& options);

/// Loads a real citibike trip export (WriteCsv layout over
/// MakeCitibikeSchema()) leniently: malformed rows — wrong arity, garbled
/// numbers, out-of-order timestamps — are skipped and counted in *stats
/// (may be null) instead of failing the load. `schema` must outlive the
/// returned stream.
Result<EventStream> LoadCitibikeCsv(const Schema& schema, const std::string& path,
                                    CsvReadStats* stats = nullptr);

}  // namespace cepshed

#endif  // CEPSHED_WORKLOAD_CITIBIKE_H_
