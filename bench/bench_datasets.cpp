// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Table II of the paper: the generated datasets. Prints the generator
// configurations and verifies the realized distributions of a sample.

#include <map>

#include "bench/bench_util.h"

using namespace cepshed;
using namespace cepshed::bench;

int main() {
  Header("Table II", "generated dataset DS1", "attribute,distribution,realized");
  {
    const Schema schema = MakeDs1Schema();
    Ds1Options opts;
    opts.num_events = 50000;
    const EventStream stream = GenerateDs1(schema, opts);
    std::map<int, size_t> type_counts;
    double v_sum = 0;
    for (const EventPtr& e : stream) {
      ++type_counts[e->type()];
      v_sum += static_cast<double>(e->attr(schema.AttributeIndex("V")).AsInt());
    }
    std::printf("Type,U({A;B;C;D}),shares");
    for (auto& [t, c] : type_counts) {
      std::printf(" %s=%.3f", schema.EventTypeName(t).c_str(),
                  static_cast<double>(c) / static_cast<double>(stream.size()));
    }
    std::printf("\nID,U(1;10),-\n");
    std::printf("V,U(1;10),mean=%.2f (expect 5.50)\n",
                v_sum / static_cast<double>(stream.size()));
  }

  Header("Table II", "generated dataset DS2", "attribute,distribution,realized");
  {
    const Schema schema = MakeDs2Schema();
    Ds2Options opts;
    opts.num_events = 50000;
    const EventStream stream = GenerateDs2(schema, opts);
    size_t xy_low = 0;
    size_t xy_total = 0;
    std::map<double, size_t> bv;
    size_t b_total = 0;
    const int x_attr = schema.AttributeIndex("x");
    const int v_attr = schema.AttributeIndex("v");
    for (const EventPtr& e : stream) {
      const Value& x = e->attr(x_attr);
      if (!x.is_null()) {
        ++xy_total;
        if (x.ToDouble() <= 2.0) ++xy_low;
      }
      if (e->type() == schema.EventTypeId("B")) {
        ++b_total;
        ++bv[e->attr(v_attr).ToDouble()];
      }
    }
    std::printf("A.x;A.y;B.x;B.y,P(0<X<=2)=33%% P(2<X<=4)=67%%,P(X<=2)=%.3f\n",
                static_cast<double>(xy_low) / static_cast<double>(xy_total));
    std::printf("B.v,P(2)=33%% P(5)=67%%,P(2)=%.3f\n",
                static_cast<double>(bv[2.0]) / static_cast<double>(b_total));
  }

  Header("Substituted datasets", "synthetic stands-ins for the real-world traces",
         "dataset,events,types,notes");
  {
    const Schema schema = MakeCitibikeSchema();
    CitibikeOptions opts;
    const EventStream stream = GenerateCitibike(schema, opts);
    std::printf("citibike-synth,%zu,BikeTrip,chained trips + rush-hour spikes\n",
                stream.size());
  }
  {
    const Schema schema = MakeGoogleTraceSchema();
    GoogleTraceOptions opts;
    const EventStream stream = GenerateGoogleTrace(schema, opts);
    std::printf("google-synth,%zu,Submit/Schedule/Evict/Fail/Finish,"
                "lifecycle chains + eviction storms\n",
                stream.size());
  }
  return 0;
}
